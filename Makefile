GO ?= go

.PHONY: all build test generate bench bench-smoke bench-kernel bench-codec bench-path bench-svc bench-shard bench-xl bench-baseline bench-baseline-codec bench-baseline-path bench-baseline-svc bench-baseline-shard bench-baseline-xl bench-regression sweep sweep-large sweep-xl sweep-churn linkcheck profile fig fuzz cover fmt vet repolint lint check clean help

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Regenerate every committed sdlgen package from its .svc spec (the CI
# freshness gate runs this and requires a clean diff; see DESIGN.md §1.9).
generate:
	$(GO) generate ./examples/...

bench:
	$(GO) test -bench . -run XXX .

# One iteration of every benchmark — the CI smoke.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run XXX ./...

# The kernel benchmark suite at the CI gate's repetition count.
bench-kernel:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim

# The codec benchmark suite at the CI gate's repetition count.
bench-codec:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/codec

# The end-to-end delivery-path benchmark suite (routing/demux plane) at
# the CI gate's repetition count.
bench-path:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/delivery

# The service-port façade overhead suite (typed port call vs raw
# platform invoke) at the CI gate's repetition count.
bench-svc:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/svc

# The sharded-engine suite (group façade overhead at K=1, boundary
# protocol cost at K>1) at the CI gate's repetition count.
bench-shard:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim/shard

# The XL fan-out suite (federated broker tree vs flat baseline at 65,536
# sinks) at the CI gate's repetition count.
bench-xl:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/fanout

# Refresh the committed kernel benchmark baseline (commit the result).
bench-baseline:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim | \
		$(GO) run ./cmd/benchcmp -record -out BENCH_kernel.json

# Refresh the committed codec benchmark baseline (commit the result).
bench-baseline-codec:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/codec | \
		$(GO) run ./cmd/benchcmp -record -out BENCH_codec.json \
			-note "Refresh with: make bench-baseline-codec (see README, Performance & CI gates)."

# Refresh the committed delivery-path benchmark baseline (commit the result).
bench-baseline-path:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/delivery | \
		$(GO) run ./cmd/benchcmp -record -out BENCH_path.json \
			-note "Refresh with: make bench-baseline-path (see README, Performance & CI gates)."

# Refresh the committed service-port benchmark baseline (commit the result).
bench-baseline-svc:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/svc | \
		$(GO) run ./cmd/benchcmp -record -out BENCH_svc.json \
			-note "Refresh with: make bench-baseline-svc (see README, Performance & CI gates)."

# Refresh the committed sharded-engine benchmark baseline (commit the result).
bench-baseline-shard:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim/shard | \
		$(GO) run ./cmd/benchcmp -record -out BENCH_shard.json \
			-note "Refresh with: make bench-baseline-shard (see README, Performance & CI gates)."

# Refresh the committed XL fan-out benchmark baseline (commit the result).
bench-baseline-xl:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/fanout | \
		$(GO) run ./cmd/benchcmp -record -out BENCH_xl.json \
			-note "Refresh with: make bench-baseline-xl (see README, Performance & CI gates)."

# The CI bench-regression gates, locally.
bench-regression:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim | \
		$(GO) run ./cmd/benchcmp -baseline BENCH_kernel.json -threshold 1.20 -normalize Calibrate
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/codec | \
		$(GO) run ./cmd/benchcmp -baseline BENCH_codec.json -threshold 1.20 -normalize Calibrate
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/delivery | \
		$(GO) run ./cmd/benchcmp -baseline BENCH_path.json -threshold 1.20 -normalize Calibrate
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/svc | \
		$(GO) run ./cmd/benchcmp -baseline BENCH_svc.json -threshold 1.20 -normalize Calibrate
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim/shard | \
		$(GO) run ./cmd/benchcmp -baseline BENCH_shard.json -threshold 1.20 -normalize Calibrate
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/fanout | \
		$(GO) run ./cmd/benchcmp -baseline BENCH_xl.json -threshold 1.20 -normalize Calibrate

# The CI fuzz job, locally (bounded).
fuzz:
	$(GO) test -fuzz FuzzKernelOrdering -fuzztime 60s -run XXX ./internal/sim
	$(GO) test -fuzz FuzzCodecRoundTrip -fuzztime 60s -run XXX ./internal/codec
	$(GO) test -fuzz FuzzSDLRoundTrip -fuzztime 60s -run XXX ./internal/sdl

# Coverage profile + per-function summary (the CI coverage job).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# The default 120-scenario cross-product sweep (table to stdout).
sweep:
	$(GO) run ./cmd/sweep

# The large-client band: every solution at clients {64,128,256},
# loss {0,1}% — the fan-out regime the dense routing plane pays for.
sweep-large:
	$(GO) run ./cmd/sweep -clients 64,128,256 -loss 0,0.01 -cycles 4

# The million-client band: a 1,048,576-subscriber federated fan-out and
# a 100,000-client floor-control run on the sharded engine (see
# runner.XLBand and EXPERIMENTS.md for runtimes). XLSCALE divides the
# populations — CI smoke uses XLSCALE=1024.
XLSCALE ?= 1
sweep-xl:
	$(GO) run ./cmd/sweep -band xl -shards 4 -xlscale $(XLSCALE)

# The crash/restart robustness band: every solution under crash-rate ×
# MTTR × rebind-policy churn, gated on zero safety violations (see
# runner.ChurnBand and DESIGN.md §1.8).
sweep-churn:
	$(GO) run ./cmd/sweep -band churn

# Check every relative link and heading anchor in the top-level docs.
linkcheck:
	$(GO) run ./cmd/linkcheck README.md DESIGN.md EXPERIMENTS.md ROADMAP.md

# CPU + allocation profiles of the full 120-scenario sweep (writes
# cpu.pprof and mem.pprof; inspect with `go tool pprof cpu.pprof`).
profile:
	$(GO) run ./cmd/sweep -quiet -format csv -out /dev/null \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof — inspect with: go tool pprof -top cpu.pprof"

# Regenerate every paper figure.
fig:
	$(GO) run ./cmd/benchfig

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# The repository's own analyzer suite (see DESIGN.md §1.5): determinism,
# map-iteration-order, pooled-buffer aliasing, and hot-path allocation
# checks. Equivalent to: go vet -vettool=bin/repolint ./...
repolint:
	$(GO) build -o bin/repolint ./cmd/repolint
	./bin/repolint ./...

# The full static-analysis gate: repolint + go vet, plus staticcheck
# when installed (CI always runs it).
lint: repolint vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

check: vet build test
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

clean:
	$(GO) clean ./...
	rm -f benchfig floorctl mdagen sdlc svcverify sweep
	rm -rf bin

help:
	@echo "check            vet + build + test + gofmt (the tier-1 gate)"
	@echo "lint             repolint + vet (+ staticcheck when installed)"
	@echo "repolint         build and run the custom analyzer suite over ./..."
	@echo "test             go test ./..."
	@echo "generate         regenerate sdlgen packages from their .svc specs"
	@echo "bench-smoke      one iteration of every benchmark"
	@echo "bench-regression compare kernel/codec/path/svc/shard benches against baselines"
	@echo "bench-baseline*  refresh a committed benchmark baseline"
	@echo "sweep            the 120-scenario cross-product sweep"
	@echo "sweep-large      the large-client fan-out band"
	@echo "sweep-xl         the million-client band (XLSCALE=n divides populations)"
	@echo "sweep-churn      the crash/restart robustness band (availability + safety gate)"
	@echo "linkcheck        verify relative links + anchors in the top-level docs"
	@echo "profile          CPU+alloc profiles of the full sweep"
	@echo "fuzz             bounded kernel + codec + SDL fuzzing"
	@echo "cover            coverage profile + per-function summary"
	@echo "fig              regenerate every paper figure"
