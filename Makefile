GO ?= go

.PHONY: all build test bench bench-smoke bench-kernel bench-baseline bench-regression sweep fig fmt vet check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -run XXX .

# One iteration of every benchmark — the CI smoke.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run XXX ./...

# The kernel benchmark suite at the CI gate's repetition count.
bench-kernel:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim

# Refresh the committed benchmark baseline (commit the result).
bench-baseline:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim | \
		$(GO) run ./cmd/benchcmp -record -out BENCH_kernel.json

# The CI bench-regression gate, locally.
bench-regression:
	$(GO) test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim | \
		$(GO) run ./cmd/benchcmp -baseline BENCH_kernel.json -threshold 1.20 -normalize Calibrate

# The default 120-scenario cross-product sweep (table to stdout).
sweep:
	$(GO) run ./cmd/sweep

# Regenerate every paper figure.
fig:
	$(GO) run ./cmd/benchfig

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

check: vet build test
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

clean:
	$(GO) clean ./...
	rm -f benchfig floorctl mdagen sdlc svcverify sweep
