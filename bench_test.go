package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chat"
	"repro/internal/experiments"
	"repro/internal/floorcontrol"
	"repro/internal/runner"
)

// benchExperiment runs one figure generator per iteration. The benchmark
// time therefore measures the full regeneration cost of the figure; the
// figure's content (the paper-facing result) is printed once via
// cmd/benchfig or the experiments tests.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	gen, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen(42); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// One bench target per paper figure (F1–F12) and ablation (A1–A3) — the
// regeneration entry points promised in DESIGN.md §3.

func BenchmarkFig1DistributedSystem(b *testing.B)     { benchExperiment(b, "F1") }
func BenchmarkFig2ProtocolParadigm(b *testing.B)      { benchExperiment(b, "F2") }
func BenchmarkFig3MiddlewareParadigm(b *testing.B)    { benchExperiment(b, "F3") }
func BenchmarkFig4MiddlewareSolutions(b *testing.B)   { benchExperiment(b, "F4") }
func BenchmarkFig5ServiceConformance(b *testing.B)    { benchExperiment(b, "F5") }
func BenchmarkFig6ProtocolSolutions(b *testing.B)     { benchExperiment(b, "F6") }
func BenchmarkFig7Scattering(b *testing.B)            { benchExperiment(b, "F7") }
func BenchmarkFig8MiddlewareView(b *testing.B)        { benchExperiment(b, "F8") }
func BenchmarkFig9InteractionSystemView(b *testing.B) { benchExperiment(b, "F9") }
func BenchmarkFig10Trajectory(b *testing.B)           { benchExperiment(b, "F10") }
func BenchmarkFig11Milestones(b *testing.B)           { benchExperiment(b, "F11") }
func BenchmarkFig12Recursion(b *testing.B)            { benchExperiment(b, "F12") }
func BenchmarkAblationPollingSweep(b *testing.B)      { benchExperiment(b, "A1") }
func BenchmarkAblationScaling(b *testing.B)           { benchExperiment(b, "A2") }
func BenchmarkAblationLoss(b *testing.B)              { benchExperiment(b, "A3") }

// BenchmarkSolutionWorkload benchmarks one standard workload per solution
// (all ten implementations), reporting simulated wire messages and
// acquisition latency as custom metrics so `go test -bench` output carries
// the paper-facing numbers alongside wall-clock cost.
func BenchmarkSolutionWorkload(b *testing.B) {
	names := make([]string, 0, 10)
	for _, s := range floorcontrol.Solutions() {
		names = append(names, s.Name())
	}
	for _, s := range floorcontrol.MDASolutions() {
		names = append(names, s.Name())
	}
	for _, name := range names {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var msgs, latencyUS float64
			for i := 0; i < b.N; i++ {
				res, err := floorcontrol.RunWorkload(floorcontrol.Config{
					Solution:    name,
					Subscribers: 4,
					Resources:   2,
					Cycles:      6,
					Seed:        42,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.ConformanceErr != nil {
					b.Fatalf("conformance: %v", res.ConformanceErr)
				}
				msgs = float64(res.NetMessages)
				latencyUS = float64(res.AcquireLatency.Mean()) / float64(time.Microsecond)
			}
			b.ReportMetric(msgs, "wire-msgs")
			b.ReportMetric(latencyUS, "acquire-µs")
		})
	}
}

// BenchmarkContentionSweep exercises the high-contention regime (the
// mutual-exclusion core of the paper's example) for the two flagship
// solutions.
func BenchmarkContentionSweep(b *testing.B) {
	for _, name := range []string{"mw-callback", "proto-callback"} {
		for _, subs := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/subs-%d", name, subs), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := floorcontrol.RunWorkload(floorcontrol.Config{
						Solution:    name,
						Subscribers: subs,
						Resources:   1,
						Cycles:      4,
						Seed:        42,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Completed != res.Expected {
						b.Fatalf("completed %d/%d", res.Completed, res.Expected)
					}
				}
			})
		}
	}
}

// BenchmarkCaseStudyChat exercises the second case study (ordered chat,
// internal/chat) on both implementation paths: the sequencer protocol and
// the PIM deployed through the MDA trajectory.
func BenchmarkCaseStudyChat(b *testing.B) {
	for _, platform := range []string{"", "rpc-corba-like", "queue-mq-like"} {
		name := "sequencer-protocol"
		if platform != "" {
			name = "mda-" + platform
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chat.Run(chat.Config{
					Participants: 4,
					MessagesEach: 5,
					Seed:         42,
					Platform:     platform,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.ConformanceErr != nil {
					b.Fatal(res.ConformanceErr)
				}
			}
		})
	}
}

// BenchmarkCaseStudyChatReport regenerates the C1 case-study table.
func BenchmarkCaseStudyChatReport(b *testing.B) { benchExperiment(b, "C1") }

// sweepBenchMatrix is the fixed scenario matrix of the sweep benchmarks:
// all ten solutions × subscribers {2,4,8} × loss {0,5%} = 60 scenarios.
func sweepBenchMatrix() []runner.Scenario {
	return runner.Matrix{
		Subscribers: []int{2, 4, 8},
		LossRates:   []float64{0, 0.05},
		Cycles:      4,
	}.Scenarios()
}

// benchSweep runs the full 60-scenario matrix once per iteration on the
// given worker count (0 = GOMAXPROCS). BenchmarkSweepSequential vs
// BenchmarkSweepParallel is the headline parallel-runner comparison; the
// two aggregate bit-identical reports (see
// runner.TestSweepDeterministicAcrossWorkerCounts), so the benchmark pair
// isolates pure scheduling speedup.
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	scenarios := sweepBenchMatrix()
	b.ReportAllocs()
	var kernelEvents float64
	for i := 0; i < b.N; i++ {
		rep, err := runner.Sweep(scenarios, runner.Options{Workers: workers, BaseSeed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			b.Fatal(err)
		}
		kernelEvents = rep.TotalMetric("kernel_events")
	}
	b.ReportMetric(float64(len(scenarios)), "scenarios")
	b.ReportMetric(kernelEvents, "kernel-events")
}

func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B)   { benchSweep(b, 0) }

// BenchmarkKernelEventThroughput is the macro view of the sim-kernel hot
// path the whole harness runs on: one full floor-control workload per
// iteration, reporting simulated kernel events per wall-clock second.
// The micro benchmarks (and the CI regression gate over them) live in
// internal/sim; this one shows what they buy end to end.
func BenchmarkKernelEventThroughput(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := floorcontrol.RunWorkload(floorcontrol.Config{
			Solution:    "proto-callback",
			Subscribers: 8,
			Resources:   2,
			Cycles:      6,
			Seed:        42,
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.KernelEvents
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(events)/elapsed, "kernel-events/s")
	}
}
