// Command benchcmp records and compares `go test -bench` results against
// a committed JSON baseline — the repository's benchmark-regression gate.
//
// Record a baseline (aggregates -count repetitions by geometric mean):
//
//	go test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim |
//	    go run ./cmd/benchcmp -record -out BENCH_kernel.json
//
// Compare a fresh run against the baseline (exit status 1 on regression):
//
//	go test -run XXX -bench . -benchtime 500ms -count 6 ./internal/sim |
//	    go run ./cmd/benchcmp -baseline BENCH_kernel.json -threshold 1.20 -normalize Calibrate
//
// Two gates are applied:
//
//   - the geometric mean of per-benchmark time ratios (new/old) must not
//     exceed -threshold;
//   - a benchmark whose baseline allocs/op is 0 must still report 0
//     (allocation regressions are deterministic, so they gate exactly).
//
// With -normalize NAME, every ratio is divided by the ratio of the named
// calibration benchmark (a fixed arithmetic workload), which factors raw
// machine speed out of cross-host comparisons: only changes in *shape*
// relative to the calibration workload count.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference.
type Baseline struct {
	// Note documents how to refresh the file.
	Note string `json:"note"`
	// Go and CPU record the environment the baseline was taken on.
	Go  string `json:"go,omitempty"`
	CPU string `json:"cpu,omitempty"`
	// Benchmarks maps benchmark name (without the "Benchmark" prefix and
	// GOMAXPROCS suffix) to its aggregated result.
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Result is one benchmark's aggregated measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Samples     int     `json:"samples"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` output, returning per-name samples
// plus the cpu header value when present. Measurement lines are scanned
// as (value, unit) field pairs after the iteration count, so custom
// b.ReportMetric columns between ns/op and allocs/op are handled.
func parseBench(r io.Reader) (map[string][]Result, string, error) {
	samples := make(map[string][]Result)
	var cpu string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(v)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), "")
		var ns, allocs float64
		haveNs := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("benchcmp: bad value %q in %q: %w", fields[i], line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				ns, haveNs = v, true
			case "allocs/op":
				allocs = v
			}
		}
		if !haveNs {
			continue
		}
		samples[name] = append(samples[name], Result{NsPerOp: ns, AllocsPerOp: allocs})
	}
	return samples, cpu, sc.Err()
}

// aggregate folds repeated samples of one benchmark: geometric mean of
// times (robust against multiplicative noise), maximum of allocs (they
// are deterministic; any nonzero sample is a real allocation).
func aggregate(samples map[string][]Result) map[string]Result {
	out := make(map[string]Result, len(samples))
	for name, ss := range samples {
		logSum, allocs := 0.0, 0.0
		for _, s := range ss {
			logSum += math.Log(s.NsPerOp)
			allocs = math.Max(allocs, s.AllocsPerOp)
		}
		out[name] = Result{
			NsPerOp:     math.Exp(logSum / float64(len(ss))),
			AllocsPerOp: allocs,
			Samples:     len(ss),
		}
	}
	return out
}

func readInput(args []string) (io.ReadCloser, error) {
	if len(args) == 0 || args[0] == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(args[0])
}

func main() {
	record := flag.Bool("record", false, "write a new baseline instead of comparing")
	out := flag.String("out", "BENCH_kernel.json", "baseline file to write with -record")
	note := flag.String("note", "Refresh with: make bench-baseline (see README, Performance & CI gates).",
		"note stored in the baseline with -record (how to refresh it)")
	baselinePath := flag.String("baseline", "", "baseline file to compare against")
	threshold := flag.Float64("threshold", 1.20, "maximum allowed geomean time ratio (new/old)")
	normalize := flag.String("normalize", "", "benchmark name whose ratio normalizes all others (machine-speed calibration)")
	flag.Parse()

	in, err := readInput(flag.Args())
	if err != nil {
		fatal(err)
	}
	defer in.Close()
	samples, cpu, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("benchcmp: no benchmark results in input"))
	}
	current := aggregate(samples)

	if *record {
		b := Baseline{
			Note:       *note,
			Go:         runtime.Version(),
			CPU:        cpu,
			Benchmarks: current,
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcmp: recorded %d benchmarks to %s\n", len(current), *out)
		return
	}

	if *baselinePath == "" {
		fatal(fmt.Errorf("benchcmp: need -record or -baseline"))
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("benchcmp: parse %s: %w", *baselinePath, err))
	}

	// Machine-speed calibration factor: divide every ratio by the
	// calibration benchmark's own ratio.
	calFactor := 1.0
	if *normalize != "" {
		cur, okC := current[*normalize]
		old, okO := base.Benchmarks[*normalize]
		if !okC || !okO {
			fatal(fmt.Errorf("benchcmp: calibration benchmark %q missing from %s", *normalize,
				map[bool]string{true: "baseline", false: "current run"}[okC]))
		}
		calFactor = cur.NsPerOp / old.NsPerOp
		fmt.Printf("calibration %s: %.4g → %.4g ns/op (machine factor %.3f)\n",
			*normalize, old.NsPerOp, cur.NsPerOp, calFactor)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if name == *normalize {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	logSum, compared := 0.0, 0
	var allocRegressions, missing []string
	fmt.Printf("%-28s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, name := range names {
		old := base.Benchmarks[name]
		cur, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		ratio := cur.NsPerOp / old.NsPerOp / calFactor
		logSum += math.Log(ratio)
		compared++
		fmt.Printf("%-28s %12.4g %12.4g %8.3f\n", name, old.NsPerOp, cur.NsPerOp, ratio)
		if old.AllocsPerOp == 0 && cur.AllocsPerOp > 0 {
			allocRegressions = append(allocRegressions,
				fmt.Sprintf("%s: %.3g allocs/op (baseline 0)", name, cur.AllocsPerOp))
		}
	}
	var unbaselined []string
	for name := range current {
		if name == *normalize {
			continue
		}
		if _, ok := base.Benchmarks[name]; !ok {
			unbaselined = append(unbaselined, name)
		}
	}
	sort.Strings(unbaselined)
	for _, name := range unbaselined {
		fmt.Printf("note: %s not in baseline (add it with -record)\n", name)
	}

	failed := false
	if len(missing) > 0 {
		fmt.Printf("FAIL: baseline benchmarks missing from run: %s\n", strings.Join(missing, ", "))
		failed = true
	}
	for _, r := range allocRegressions {
		fmt.Printf("FAIL: allocation regression: %s\n", r)
		failed = true
	}
	if compared > 0 {
		geomean := math.Exp(logSum / float64(compared))
		fmt.Printf("geomean ratio over %d benchmarks: %.3f (threshold %.2f)\n", compared, geomean, *threshold)
		switch {
		case geomean > *threshold:
			fmt.Printf("FAIL: geomean %.3f exceeds threshold %.2f — performance regression\n", geomean, *threshold)
			failed = true
		case geomean < 1 / *threshold:
			fmt.Printf("note: geomean %.3f is a >%.0f%% improvement — refresh the baseline to tighten the gate\n",
				geomean, (*threshold-1)*100)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcmp: OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
