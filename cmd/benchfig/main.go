// Command benchfig regenerates the paper's figures (and the ablations) as
// measured tables.
//
// Usage:
//
//	benchfig               # all experiments, in parallel
//	benchfig -fig F4       # one experiment
//	benchfig -seed 7       # different deterministic base seed
//	benchfig -parallel 1   # sequential regeneration (same output)
//	benchfig -list         # list experiment ids
//
// The -seed flag is the sweep base seed: each experiment runs with a seed
// derived from (base seed, experiment ID), so output is identical whatever
// the worker count, and `benchfig -fig F4` matches F4's section of the
// full output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.String("fig", "all", "experiment id (F1..F12, A1..A3, C1) or 'all'")
	seed := flag.Int64("seed", 42, "base simulation seed (per-experiment seeds are derived from it)")
	parallel := flag.Int("parallel", 0, "worker count for regenerating all experiments (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *fig != "all" {
		gen, ok := experiments.ByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: unknown experiment %q (try -list)\n", *fig)
			return 2
		}
		rep, err := gen(runner.DeriveSeed(*seed, *fig))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", *fig, err)
			return 1
		}
		fmt.Println(rep)
		return 0
	}
	report, err := runner.Sweep(runner.FigureScenarios(experiments.All()), runner.Options{
		Workers:  *parallel,
		BaseSeed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		return 1
	}
	code := 0
	for _, s := range report.Scenarios {
		if s.Err != "" {
			fmt.Fprintf(os.Stderr, "benchfig: %s: %s\n", s.ID, s.Err)
			code = 1
			continue
		}
		fmt.Println(s.Outcome.Text)
	}
	return code
}
