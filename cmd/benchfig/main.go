// Command benchfig regenerates the paper's figures (and the ablations) as
// measured tables.
//
// Usage:
//
//	benchfig               # all experiments
//	benchfig -fig F4       # one experiment
//	benchfig -seed 7       # different deterministic seed
//	benchfig -list         # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.String("fig", "all", "experiment id (F1..F12, A1..A3) or 'all'")
	seed := flag.Int64("seed", 42, "simulation seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return 0
	}
	if *fig != "all" {
		gen, ok := experiments.ByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: unknown experiment %q (try -list)\n", *fig)
			return 2
		}
		rep, err := gen(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", *fig, err)
			return 1
		}
		fmt.Println(rep)
		return 0
	}
	for _, e := range experiments.All() {
		rep, err := e.Gen(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Println(rep)
	}
	return 0
}
