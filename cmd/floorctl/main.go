// Command floorctl runs one floor-control solution under a configurable
// workload and reports its measured footprint and conformance verdict.
// Middleware solutions execute against typed service ports
// (internal/svc); protocol solutions against the core.Provider service
// boundary — the same workload driver exercises both.
//
// Usage:
//
//	floorctl -solution proto-callback -subs 4 -resources 2 -cycles 6
//	floorctl -solution mda-queue-mq-like -loss 0.2 -trace
//	floorctl -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/floorcontrol"
)

func main() {
	os.Exit(run())
}

func run() int {
	solution := flag.String("solution", "proto-callback", "solution name (see -list)")
	subs := flag.Int("subs", 3, "number of subscribers")
	resources := flag.Int("resources", 2, "number of shared resources")
	cycles := flag.Int("cycles", 5, "acquire/hold/release cycles per subscriber")
	think := flag.Duration("think", 20*time.Millisecond, "mean think time")
	hold := flag.Duration("hold", 10*time.Millisecond, "mean hold time")
	poll := flag.Duration("poll", 10*time.Millisecond, "poll interval (polling solutions)")
	hop := flag.Duration("hop", 2*time.Millisecond, "token hop delay (token solutions)")
	latency := flag.Duration("latency", time.Millisecond, "link latency")
	loss := flag.Float64("loss", 0, "datagram loss rate [0,1)")
	seed := flag.Int64("seed", 1, "simulation seed")
	trace := flag.Bool("trace", false, "print the recorded service trace")
	list := flag.Bool("list", false, "list solution names and exit")
	flag.Parse()

	if *list {
		for _, s := range floorcontrol.Solutions() {
			fmt.Printf("%-16s %-12s %-9s %s\n", s.Name(), s.Paradigm(), s.Style(), s.Figure())
		}
		for _, s := range floorcontrol.MDASolutions() {
			fmt.Printf("%-16s %-12s %-9s %s\n", s.Name(), s.Paradigm(), s.Style(), s.Figure())
		}
		return 0
	}

	res, err := floorcontrol.RunWorkload(floorcontrol.Config{
		Solution:      *solution,
		Subscribers:   *subs,
		Resources:     *resources,
		Cycles:        *cycles,
		ThinkTime:     *think,
		HoldTime:      *hold,
		PollInterval:  *poll,
		TokenHopDelay: *hop,
		Latency:       *latency,
		LossRate:      *loss,
		Seed:          *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "floorctl: %v\n", err)
		return 1
	}

	fmt.Printf("solution:          %s (%s paradigm, %s style, %s)\n", res.Solution, res.Paradigm, res.Style, res.Figure)
	fmt.Printf("cycles completed:  %d/%d\n", res.Completed, res.Expected)
	fmt.Printf("virtual duration:  %v\n", res.VirtualDuration.Round(time.Microsecond))
	fmt.Printf("acquire latency:   %s\n", res.AcquireLatency.Summary())
	fmt.Printf("paradigm messages: %d\n", res.ParadigmMessages)
	fmt.Printf("network messages:  %d (%d bytes)\n", res.NetMessages, res.NetBytes)
	fmt.Printf("kernel events:     %d\n", res.KernelEvents)
	fmt.Printf("fairness (Jain):   %.3f across %d subscribers\n", res.FairnessIndex, len(res.LatencyBySubscriber))
	sc := res.Scattering
	fmt.Printf("scattering:        app=%d controller=%d system=%d index=%.2f\n",
		sc.AppPartOps, sc.ControllerOps, sc.InteractionSystemOps, sc.Index())
	if res.ConformanceErr != nil {
		fmt.Printf("conformance:       VIOLATION — %v\n", res.ConformanceErr)
	} else {
		fmt.Printf("conformance:       conforms (%d events checked online)\n", len(res.Trace))
	}
	if *trace {
		fmt.Println("\nservice trace:")
		fmt.Print(res.Trace)
	}
	if res.ConformanceErr != nil || res.Completed != res.Expected {
		return 1
	}
	return 0
}
