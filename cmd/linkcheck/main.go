// Command linkcheck validates relative links and heading anchors in
// markdown documentation (see internal/doccheck). CI and `make
// linkcheck` run it over the top-level docs; it exits non-zero and
// prints one line per broken link when anything dangles.
//
// Usage:
//
//	linkcheck README.md DESIGN.md EXPERIMENTS.md ROADMAP.md
package main

import (
	"fmt"
	"os"

	"repro/internal/doccheck"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck file.md [file.md ...]")
		return 2
	}
	problems, err := doccheck.CheckFiles(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
		return 1
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links\n", len(problems))
		return 1
	}
	return 0
}
