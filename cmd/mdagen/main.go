// Command mdagen walks the model-driven design trajectory for the
// floor-control PIM: it prints the milestones, the abstract-platform
// realization decision for a chosen concrete platform (direct vs
// recursive), and optionally executes the resulting PSI to prove it
// conforms to the service definition.
//
// Usage:
//
//	mdagen                          # trajectory to every concrete platform
//	mdagen -target rpc-rmi-like     # one target, with realization detail
//	mdagen -target queue-mq-like -run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/floorcontrol"
	"repro/internal/mda"
)

func main() {
	os.Exit(run())
}

func run() int {
	target := flag.String("target", "", "concrete platform (empty = all)")
	execute := flag.Bool("run", false, "execute the deployed PSI under a workload and verify conformance")
	seed := flag.Int64("seed", 1, "simulation seed for -run")
	flag.Parse()

	pim := floorcontrol.PIM(floorcontrol.ResourceNames(2))
	fmt.Println("platform-independent service design (PIM):")
	fmt.Printf("  name: %s\n", pim.Name)
	fmt.Printf("  abstract platform: %s requiring %v\n\n", pim.Abstract.Name, pim.Abstract.Requires)
	fmt.Println("service definition (paradigm-independent reference point):")
	fmt.Println(indent(pim.Service.Document(), "  "))

	targets := mda.ConcretePlatforms()
	if *target != "" {
		p, ok := mda.ConcretePlatformByName(*target)
		if !ok {
			fmt.Fprintf(os.Stderr, "mdagen: unknown platform %q; known:\n", *target)
			for _, t := range targets {
				fmt.Fprintf(os.Stderr, "  %s\n", t.Name)
			}
			return 2
		}
		targets = []mda.ConcretePlatform{p}
	}

	for _, t := range targets {
		steps, realization, err := mda.PlanTrajectory(pim, t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdagen: %s: %v\n", t.Name, err)
			return 1
		}
		fmt.Printf("— trajectory to %s —\n", t.Name)
		for i, s := range steps {
			fmt.Printf("  %d. %-38s %s\n", i+1, s.Milestone, s.Detail)
		}
		fmt.Print(indent(realization.Describe(), "  "))
		if *execute {
			res, err := floorcontrol.RunWorkload(floorcontrol.Config{
				Solution: "mda-" + t.Name,
				Seed:     *seed,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "mdagen: run on %s: %v\n", t.Name, err)
				return 1
			}
			verdict := "conforms"
			if res.ConformanceErr != nil {
				verdict = "VIOLATION: " + res.ConformanceErr.Error()
			}
			fmt.Printf("  PSI executed: %d/%d cycles, %d wire msgs, acquire %s — %s\n",
				res.Completed, res.Expected, res.NetMessages, res.AcquireLatency.Summary(), verdict)
			if res.ConformanceErr != nil {
				return 1
			}
		}
		fmt.Println()
	}
	return 0
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if start < i {
				out += prefix + s[start:i]
			}
			if i < len(s) {
				out += "\n"
			}
			start = i + 1
		}
	}
	return out
}
