// Command repolint runs the repository's custom static-analysis suite
// (internal/analysis/repolint): simdeterminism, mapiter, poolalias,
// hotpathalloc, and allowcheck. It is the compile-time gate for the
// invariants the sweep and bench harnesses otherwise only catch at
// runtime — see DESIGN.md §1.5.
//
// Usage:
//
//	go build -o bin/repolint ./cmd/repolint
//	bin/repolint ./...                       # analyze packages
//	bin/repolint help [analyzer]             # describe the suite
//
// The binary is a go/analysis unitchecker: invoked with package
// patterns it re-executes itself through the build system as
//
//	go vet -vettool=bin/repolint ./...
//
// which is also available directly for editor/CI integration. Exit
// status is non-zero if any diagnostic is reported.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/repolint"
)

func main() {
	args := os.Args[1:]

	// When go vet drives us it probes `-V=full` and `-flags`, then
	// invokes the tool once per package with a *.cfg argument; `help`
	// is the unitchecker's own subcommand. Everything else is driver
	// mode.
	if len(args) > 0 && (strings.HasPrefix(args[0], "-") ||
		strings.HasSuffix(args[len(args)-1], ".cfg") || args[0] == "help") {
		unitchecker.Main(repolint.All()...) // exits
	}

	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: repolint <package pattern>...  (e.g. repolint ./...)")
		fmt.Fprintln(os.Stderr, "       repolint help [analyzer]")
		os.Exit(2)
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint: cannot locate own binary:", err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "repolint: go vet:", err)
		os.Exit(2)
	}
}
