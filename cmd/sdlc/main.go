// Command sdlc is the service-definition-language compiler: it parses a
// .svc file (see internal/sdl), validates it, prints the canonical form
// or the Figure-5-style service document, and can check a recorded trace
// against the specification — the tooling face of the paper's proposed
// modelling language.
//
// Usage:
//
//	sdlc -spec examples/specs/floorcontrol.svc
//	sdlc -spec examples/specs/floorcontrol.svc -doc
//	sdlc -spec examples/specs/floorcontrol.svc -check trace.txt
//	sdlc -example > my-service.svc
//
// Trace files contain one primitive execution per line:
//
//	<role>:<sap-id> <primitive> [<param>=<value> ...]   # comments allowed
//
// Values parse as int, bool, or string (in that order).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/examples/specs"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sdl"
)

func main() {
	os.Exit(run())
}

func run() int {
	specPath := flag.String("spec", "", "service definition file (.svc)")
	doc := flag.Bool("doc", false, "print the Figure-5-style service document instead of canonical SDL")
	check := flag.String("check", "", "trace file to check against the specification")
	example := flag.Bool("example", false, "print the committed example definition (examples/specs/floorcontrol.svc) and exit")
	flag.Parse()

	if *example {
		fmt.Print(specs.FloorControl)
		return 0
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "sdlc: -spec required (or -example)")
		return 2
	}
	src, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdlc: %v\n", err)
		return 1
	}
	document, spec, perr := sdl.Parse(string(src))
	if perr != nil {
		fmt.Fprintf(os.Stderr, "sdlc: %s: %v\n", *specPath, perr)
		return 1
	}
	switch {
	case *check != "":
		return checkTrace(spec, *check)
	case *doc:
		fmt.Print(spec.Document())
	default:
		fmt.Print(sdl.Format(document))
	}
	return 0
}

// wallClock satisfies core.Clock for offline trace checking, where event
// times come from the file order, not a simulation.
type lineClock struct{ line int }

func (c *lineClock) Now() time.Duration { return time.Duration(c.line) }

func checkTrace(spec *core.ServiceSpec, path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdlc: %v\n", err)
		return 1
	}
	defer f.Close()

	clock := &lineClock{}
	obs, err := core.NewObserver(spec, clock, core.WithEventValidation())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdlc: %v\n", err)
		return 1
	}
	scanner := bufio.NewScanner(f)
	lineNo := 0
	violations := 0
	for scanner.Scan() {
		lineNo++
		clock.line = lineNo
		line := strings.TrimSpace(scanner.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		sap, prim, params, perr := parseTraceLine(line)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "sdlc: %s:%d: %v\n", path, lineNo, perr)
			return 1
		}
		if verr := obs.Observe(sap, prim, params); verr != nil {
			fmt.Printf("%s:%d: VIOLATION: %v\n", path, lineNo, verr)
			violations++
		}
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "sdlc: %v\n", err)
		return 1
	}
	if err := obs.Complete(); err != nil {
		// Report only end-of-trace findings not already printed.
		for _, v := range obs.Violations() {
			if viol, ok := core.AsViolation(v); ok && viol.Event == nil {
				fmt.Printf("%s:end: VIOLATION: %v\n", path, v)
				violations++
			}
		}
	}
	if violations > 0 {
		fmt.Printf("%d violation(s) in %d events\n", violations, obs.EventCount())
		return 1
	}
	fmt.Printf("trace conforms: %d events, all constraints satisfied\n", obs.EventCount())
	return 0
}

// parseTraceLine parses "<role>:<id> <primitive> [k=v ...]".
func parseTraceLine(line string) (core.SAP, string, codec.Record, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return core.SAP{}, "", nil, fmt.Errorf("want '<role>:<id> <primitive> [k=v ...]', got %q", line)
	}
	role, id, ok := strings.Cut(fields[0], ":")
	if !ok || role == "" || id == "" {
		return core.SAP{}, "", nil, fmt.Errorf("bad SAP %q (want role:id)", fields[0])
	}
	params := codec.Record{}
	for _, kv := range fields[2:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return core.SAP{}, "", nil, fmt.Errorf("bad parameter %q (want k=v)", kv)
		}
		params[k] = parseValue(v)
	}
	return core.SAP{Role: role, ID: id}, fields[1], params, nil
}

func parseValue(v string) codec.Value {
	if n, err := strconv.ParseInt(v, 10, 64); err == nil {
		return n
	}
	if b, err := strconv.ParseBool(v); err == nil {
		return b
	}
	return v
}
