// Command svcverify performs the formal assessment the paper calls for:
// it executes a floor-control solution (middleware solutions run over
// typed internal/svc service ports, protocol solutions over the
// core.Provider boundary), checks the run online against the service
// constraints, and checks the recorded trace offline against the
// generated service LTS (trace refinement).
//
// Usage:
//
//	svcverify -solution proto-token
//	svcverify -solution mw-polling -subs 2 -resources 1 -cycles 4
//	svcverify -all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/floorcontrol"
	"repro/internal/lts"
)

func main() {
	os.Exit(run())
}

func run() int {
	solution := flag.String("solution", "proto-callback", "solution to verify")
	subs := flag.Int("subs", 2, "subscribers (LTS state space is exponential; keep small)")
	resources := flag.Int("resources", 1, "resources")
	cycles := flag.Int("cycles", 3, "cycles per subscriber")
	seed := flag.Int64("seed", 1, "simulation seed")
	all := flag.Bool("all", false, "verify every solution, including the MDA trajectory deployments")
	dot := flag.Bool("dot", false, "print the service LTS in Graphviz dot format and exit")
	flag.Parse()

	names := []string{*solution}
	if *all {
		names = names[:0]
		for _, s := range floorcontrol.Solutions() {
			names = append(names, s.Name())
		}
		for _, s := range floorcontrol.MDASolutions() {
			names = append(names, s.Name())
		}
	}

	spec := floorcontrol.ServiceLTS(
		floorcontrol.SubscriberNames(*subs),
		floorcontrol.ResourceNames(*resources))
	if *dot {
		fmt.Print(spec.DOT())
		return 0
	}
	fmt.Printf("service LTS: %d states, %d transitions (for %d subscribers × %d resources)\n\n",
		spec.NumStates(), spec.NumTransitions(), *subs, *resources)

	failures := 0
	for _, name := range names {
		res, err := floorcontrol.RunWorkload(floorcontrol.Config{
			Solution:    name,
			Subscribers: *subs,
			Resources:   *resources,
			Cycles:      *cycles,
			Seed:        *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "svcverify: %s: %v\n", name, err)
			failures++
			continue
		}
		online := "pass"
		if res.ConformanceErr != nil {
			online = "FAIL: " + res.ConformanceErr.Error()
		}
		offline := "pass"
		impl := traceLTS(res)
		r := lts.TraceRefines(impl, spec)
		if !r.Holds {
			offline = fmt.Sprintf("FAIL at %v", r.Counterexample)
		}
		fmt.Printf("%-22s events=%-4d online(constraints)=%s offline(trace⊑LTS)=%s (explored %d product states)\n",
			name, len(res.Trace), online, offline, r.StatesExplored)
		if res.ConformanceErr != nil || !r.Holds {
			failures++
		}
	}
	if failures > 0 {
		fmt.Printf("\n%d verification failure(s)\n", failures)
		return 1
	}
	fmt.Println("\nall verifications passed")
	return 0
}

// traceLTS turns an executed trace into a linear LTS for refinement.
func traceLTS(res *floorcontrol.Result) *lts.LTS {
	b := lts.NewBuilder(res.Solution + "-trace")
	prev := b.State("t0")
	for i, label := range res.Trace.Labels() {
		next := b.State(fmt.Sprintf("t%d", i+1))
		b.Transition(prev, label, next)
		prev = next
	}
	b.Final(prev)
	return b.MustBuild()
}
