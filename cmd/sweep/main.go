// Command sweep runs cross-product floor-control workload sweeps on the
// parallel scenario runner and emits the aggregated report as a table,
// JSON, or CSV.
//
// Usage:
//
//	sweep                                  # default 120-scenario matrix
//	sweep -parallel 1                      # sequential; bit-identical output
//	sweep -solutions mw-token,proto-token  # restrict the solution dimension
//	sweep -loss 0,0.05 -subs 4,16          # restrict swept dimensions
//	sweep -clients 64,128,256              # large-client band (overrides -subs)
//	sweep -band xl -shards 4               # million-client band (see runner.XLBand)
//	sweep -band xl -xlscale 1024           # scaled-down xl smoke (same code paths)
//	sweep -band churn                      # crash/restart robustness band (runner.ChurnBand)
//	sweep -band churn -crash 1,10 -mttr 100ms  # override the churn dimensions
//	sweep -bandfile examples/bands/default.band  # file-defined band (see internal/bandfile)
//	sweep -shards 4                        # sharded engine; byte-identical output
//	sweep -format csv -out sweep.csv       # machine-readable output
//	sweep -cpuprofile cpu.pprof            # profile the sweep (see make profile)
//
// The default matrix is all 10 solutions × loss {0, 1, 5, 10}% × clients
// {2, 8, 32} (runner.DefaultBand). Every scenario's seed is derived from
// the base seed and the scenario ID, so the report is bit-identical for
// any -parallel value — and, because -shards only selects the execution
// engine, for any shard count.
// Table output additionally shows per-scenario wall time (never part of
// the machine-readable renderings).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/floorcontrol"
	"repro/internal/runner"
)

func main() {
	os.Exit(run())
}

func run() int {
	solutions := flag.String("solutions", "all", "comma-separated solution names, or 'all'")
	subs := flag.String("subs", "2,8,32", "comma-separated subscriber (client) counts")
	clients := flag.String("clients", "", "override -subs (alias emphasizing deployment size, e.g. the 64,128,256 large-client band)")
	resources := flag.String("resources", "2", "comma-separated resource counts")
	loss := flag.String("loss", "0,0.01,0.05,0.1", "comma-separated link loss rates (fractions)")
	cycles := flag.Int("cycles", 6, "acquire/hold/release cycles per subscriber")
	shards := flag.Int("shards", 0, "sim kernels per scenario (0 or 1 = single kernel; results are identical for any value)")
	band := flag.String("band", "", "named scenario band: default, large, xl, or churn (overrides the dimension flags)")
	bandfile := flag.String("bandfile", "", "band definition file (.band, see internal/bandfile; overrides the dimension flags)")
	xlscale := flag.Int("xlscale", 1, "population divisor for -band xl (CI smoke runs use e.g. 1024)")
	crash := flag.String("crash", "", "comma-separated crash rates (crashes/s per node) for -band churn; empty = band defaults")
	mttr := flag.String("mttr", "", "comma-separated mean times to repair (durations, e.g. 50ms,200ms) for -band churn; empty = band defaults")
	seed := flag.Int64("seed", 42, "base sweep seed (per-scenario seeds are derived from it)")
	parallel := flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	format := flag.String("format", "table", "output format: table, json, or csv")
	out := flag.String("out", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list solution names and exit")
	quiet := flag.Bool("quiet", false, "suppress the run summary on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the sweep to this file")
	flag.Parse()

	if *list {
		for _, name := range floorcontrol.AllSolutionNames() {
			fmt.Println(name)
		}
		return 0
	}

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "sweep: -shards: value %d is negative\n", *shards)
		return 2
	}
	if *xlscale < 1 {
		fmt.Fprintf(os.Stderr, "sweep: -xlscale: value %d is not positive\n", *xlscale)
		return 2
	}
	if *bandfile != "" {
		if *band != "" {
			fmt.Fprintln(os.Stderr, "sweep: -band and -bandfile are mutually exclusive")
			return 2
		}
		if *crash != "" || *mttr != "" {
			fmt.Fprintln(os.Stderr, "sweep: -crash/-mttr only apply to -band churn; band files carry their own crash/mttr statements")
			return 2
		}
	}
	var scenarios []runner.Scenario
	switch *band {
	case "":
		// Dimension flags below assemble the matrix.
	case "default":
		spec := runner.DefaultBand()
		spec.Shards = *shards
		scenarios = spec.Scenarios()
	case "large":
		m := runner.LargeClientBand()
		m.Shards = *shards
		scenarios = m.Scenarios()
	case "xl":
		scenarios = runner.XLBand(*xlscale, *shards)
	case "churn":
		rates, err := parseRates(*crash)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: -crash: %v\n", err)
			return 2
		}
		mttrs, err := parseDurations(*mttr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: -mttr: %v\n", err)
			return 2
		}
		scenarios = runner.ChurnBandWith(rates, mttrs, *shards)
	default:
		fmt.Fprintf(os.Stderr, "sweep: -band: unknown band %q (default, large, xl, churn)\n", *band)
		return 2
	}
	if *band != "churn" && (*crash != "" || *mttr != "") {
		fmt.Fprintln(os.Stderr, "sweep: -crash/-mttr only apply to -band churn")
		return 2
	}
	if *bandfile != "" {
		src, err := os.ReadFile(*bandfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: -bandfile: %v\n", err)
			return 1
		}
		if scenarios, err = runner.BandFileScenarios(string(src), *shards); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", *bandfile, err)
			return 2
		}
	}
	matrix := runner.Matrix{Cycles: *cycles, Shards: *shards}
	if sols := strings.TrimSpace(*solutions); sols != "all" {
		seen := make(map[string]struct{})
		for _, s := range strings.Split(sols, ",") {
			s = strings.TrimSpace(s)
			if _, ok := floorcontrol.SolutionByName(s); !ok {
				fmt.Fprintf(os.Stderr, "sweep: -solutions: unknown solution %q (try -list)\n", s)
				return 2
			}
			if _, dup := seen[s]; dup {
				fmt.Fprintf(os.Stderr, "sweep: -solutions: duplicate value %q\n", s)
				return 2
			}
			seen[s] = struct{}{}
			matrix.Solutions = append(matrix.Solutions, s)
		}
	}
	var err error
	clientCSV, clientFlag := *subs, "-subs"
	if strings.TrimSpace(*clients) != "" {
		clientCSV, clientFlag = *clients, "-clients"
	}
	if matrix.Subscribers, err = parseInts(clientCSV); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", clientFlag, err)
		return 2
	}
	if matrix.Resources, err = parseInts(*resources); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: -resources: %v\n", err)
		return 2
	}
	if matrix.LossRates, err = parseFloats(*loss); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: -loss: %v\n", err)
		return 2
	}

	if scenarios == nil {
		scenarios = matrix.Scenarios()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	report, err := runner.Sweep(scenarios, runner.Options{Workers: *parallel, BaseSeed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: -memprofile: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: -memprofile: %v\n", err)
			f.Close()
			return 1
		}
		f.Close()
	}

	var rendered []byte
	switch *format {
	case "table":
		// The interactive table includes per-scenario wall time so the
		// cost of heavy bands (e.g. -clients 64,128,256) is visible; the
		// machine-readable renderings stay wall-clock-free and therefore
		// byte-identical across worker counts.
		rendered = []byte(report.TableString(true))
	case "json":
		rendered, err = report.JSON()
	case "csv":
		rendered, err = report.CSV()
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown format %q (table, json, csv)\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: render: %v\n", err)
		return 1
	}

	if *out == "" {
		if _, err := os.Stdout.Write(rendered); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: write: %v\n", err)
			return 1
		}
	} else if err := os.WriteFile(*out, rendered, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		return 1
	}

	if !*quiet {
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintf(os.Stderr, "sweep: %d scenarios on %d workers in %s\n",
			len(scenarios), workers, elapsed.Round(time.Millisecond))
		if rss, ok := peakRSS(); ok {
			fmt.Fprintf(os.Stderr, "sweep: peak RSS %.1f MiB\n", float64(rss)/(1<<20))
		}
	}
	if serr := report.Err(); serr != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", serr)
		return 1
	}
	return 0
}

// peakRSS reads the process's peak resident set size (VmHWM) from
// /proc/self/status. Best-effort and Linux-only: callers print it when
// available and stay silent otherwise. It backs the xl band's O(1)
// memory-per-client claim with a measured number.
func peakRSS() (uint64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}

// parseRates parses the -crash list: positive crash rates, no duplicates.
// Empty input means "use the band defaults" and returns nil.
func parseRates(csv string) ([]float64, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("crash rate %g is not positive", v)
		}
		for _, prev := range out {
			if prev == v {
				return nil, fmt.Errorf("duplicate value %g", v)
			}
		}
		out = append(out, v)
	}
	return out, nil
}

// parseDurations parses the -mttr list: positive durations, no
// duplicates. Empty input means "use the band defaults" and returns nil.
func parseDurations(csv string) ([]time.Duration, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]time.Duration, 0, len(parts))
	for _, p := range parts {
		v, err := time.ParseDuration(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("mttr %s is not positive", v)
		}
		for _, prev := range out {
			if prev == v {
				return nil, fmt.Errorf("duplicate value %s", v)
			}
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d is not positive", v)
		}
		for _, prev := range out {
			if prev == v {
				return nil, fmt.Errorf("duplicate value %d", v)
			}
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		if v < 0 || v >= 1 {
			return nil, fmt.Errorf("loss rate %g is outside [0, 1)", v)
		}
		for _, prev := range out {
			if prev == v {
				return nil, fmt.Errorf("duplicate value %g", v)
			}
		}
		out = append(out, v)
	}
	return out, nil
}
