// Package repro is a full, executable reproduction of "The role of the
// service concept in model-driven applications development" (Almeida, van
// Sinderen, Ferreira Pires, Quartel — Middleware 2003).
//
// The paper is conceptual; this repository makes it runnable. It contains
// a deterministic discrete-event simulation substrate, a simulated
// network, a protocol framework (entities, PDUs, layering, a go-back-N
// reliability layer), a component middleware platform (RPC, one-way
// messages, queues, pub/sub — internally mapped onto implicit wire
// protocols), the service concept as a machine-checkable artifact
// (specifications, constraints, online conformance observation, LTS trace
// refinement), the paper's floor-control running example in all six
// design alternatives, and an MDA engine that realizes one
// platform-independent design on four concrete platforms, recursively
// synthesizing abstract-platform service logic where concepts are
// missing.
//
// Start with README.md, DESIGN.md (system inventory and experiment
// index), EXPERIMENTS.md (paper-vs-measured record), the examples/
// directory, cmd/benchfig which regenerates every figure, and cmd/sweep
// which runs cross-product workload sweeps on the parallel scenario
// runner (internal/runner).
package repro
