// Chat: the repository's second case study run end to end — a totally
// ordered multiparty chat service (internal/chat) designed with the same
// method as the paper's floor-control example: a service definition with
// a custom application-defined constraint, a sequencer protocol behind the
// service boundary, and (with -platform) the same logic deployed through
// the MDA trajectory onto a concrete middleware platform (where every
// interaction rides the typed service ports of internal/svc).
//
//	go run ./examples/chat
//	go run ./examples/chat -participants 5 -loss 0.2
//	go run ./examples/chat -platform queue-mq-like
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/chat"
)

func main() {
	participants := flag.Int("participants", 3, "group size")
	messages := flag.Int("messages", 4, "utterances per participant")
	loss := flag.Float64("loss", 0.1, "datagram loss rate (masked by the reliability layer)")
	platform := flag.String("platform", "", "deploy the chat PIM on a concrete platform (rpc-corba-like, rpc-rmi-like, msg-jms-like, queue-mq-like); empty = sequencer protocol")
	seed := flag.Int64("seed", 7, "simulation seed")
	flag.Parse()

	fmt.Println(chat.Spec().Document())

	res, err := chat.Run(chat.Config{
		Participants: *participants,
		MessagesEach: *messages,
		LossRate:     *loss,
		Jitter:       time.Millisecond,
		Seed:         *seed,
		Platform:     *platform,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chat:", err)
		os.Exit(1)
	}

	how := "sequencer protocol over reliable datagrams"
	if *platform != "" {
		how = "chat PIM deployed on " + *platform + " via the MDA trajectory"
	}
	fmt.Printf("ran as: %s\n", how)
	fmt.Printf("said %d utterances; %d deliveries across %d participants:\n",
		res.Said, res.Delivered, len(res.PerParticipant))
	participantsHeard := make([]string, 0, len(res.PerParticipant))
	for p := range res.PerParticipant {
		participantsHeard = append(participantsHeard, p)
	}
	sort.Strings(participantsHeard)
	for _, p := range participantsHeard {
		fmt.Printf("  %s heard %d\n", p, res.PerParticipant[p])
	}
	fmt.Printf("own-message delivery latency: %s\n", res.DeliveryLatency.Summary())
	fmt.Printf("network: %d datagrams sent, %d dropped by %.0f%% loss (masked below the service)\n",
		res.NetMessages, res.NetDropped, *loss*100)
	if res.ConformanceErr != nil {
		fmt.Println("conformance: VIOLATION —", res.ConformanceErr)
		os.Exit(1)
	}
	fmt.Println("conformance: total order, no spurious delivery, and self-delivery liveness all verified")
}
