// Tests of the kitchen-sink generated package: every parameter kind
// survives the record and wire codecs, decode rejects mistyped values,
// and the empty-parameter primitive round-trips over RPC.
package allkinds_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/examples/gen/allkinds"
	"repro/examples/specs"
	"repro/internal/codec"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sdl"
	"repro/internal/sim"
)

// TestSpecMatchesCommittedSource pins generated spec against the .svc
// source, as for floorcontrol.
func TestSpecMatchesCommittedSource(t *testing.T) {
	spec := allkinds.Spec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
	_, parsed, err := sdl.Parse(specs.AllKinds)
	if err != nil {
		t.Fatalf("parse committed source: %v", err)
	}
	if got, want := spec.Document(), parsed.Document(); got != want {
		t.Fatalf("generated spec diverges from committed source\ngenerated:\n%s\nsource:\n%s", got, want)
	}
}

// TestRecordRoundTrip pins Encode/Decode inverse-ness for every kind,
// including the list conversion through []codec.Value.
func TestRecordRoundTrip(t *testing.T) {
	p := allkinds.OpenParams{
		Id:     "sess-1",
		Seq:    41,
		Urgent: true,
		Tags:   []string{"a", "b"},
	}
	got, err := allkinds.DecodeOpenParams(allkinds.EncodeOpenParams(p))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip changed params: %+v != %+v", got, p)
	}
	// Absent parameters decode to zero values.
	zero, err := allkinds.DecodeOpenParams(codec.Record{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zero, allkinds.OpenParams{}) {
		t.Fatalf("empty record decoded to %+v", zero)
	}
	// Int accepts the narrower machine types the codec may produce.
	widened, err := allkinds.DecodeOpenParams(codec.Record{"seq": int32(7)})
	if err != nil {
		t.Fatal(err)
	}
	if widened.Seq != 7 {
		t.Fatalf("int32 seq decoded to %d", widened.Seq)
	}
}

// TestDecodeErrors pins the mistyped-parameter rejections per kind.
func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		rec  codec.Record
		want string
	}{
		{"string", codec.Record{"id": 7}, "want string"},
		{"int", codec.Record{"seq": "x"}, "want int"},
		{"bool", codec.Record{"urgent": "yes"}, "want bool"},
		{"list", codec.Record{"tags": 3}, `parameter "tags"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := allkinds.DecodeOpenParams(tc.rec)
			if err == nil {
				t.Fatal("mistyped parameter accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestWireParity pins the schema fast path against the generic message
// codec for every primitive, covering sorted-field emission and the
// list value conversion.
func TestWireParity(t *testing.T) {
	check := func(name string, fast []byte, fastErr error, msg codec.Message) {
		t.Helper()
		if fastErr != nil {
			t.Fatalf("%s: append: %v", name, fastErr)
		}
		want, err := codec.EncodeMessage(msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if !bytes.Equal(fast, want) {
			t.Fatalf("%s: schema path and message codec disagree", name)
		}
	}
	open := allkinds.OpenParams{Id: "s", Seq: 2, Urgent: true, Tags: []string{"x", "y"}}
	fast, err := allkinds.AppendOpenParams(nil, open)
	check("open", fast, err, allkinds.OpenMessage(open))

	opened := allkinds.OpenedParams{Id: "s", Seq: 2}
	fast, err = allkinds.AppendOpenedParams(nil, opened)
	check("opened", fast, err, allkinds.OpenedMessage(opened))

	cl := allkinds.CloseParams{Id: "s"}
	fast, err = allkinds.AppendCloseParams(nil, cl)
	check("close", fast, err, allkinds.CloseMessage(cl))

	ping := allkinds.PingParams{}
	fast, err = allkinds.AppendPingParams(nil, ping)
	check("ping", fast, err, allkinds.PingMessage(ping))
}

// sessions implements the Provider face with trivial recording
// handlers.
type sessions struct {
	opens  []allkinds.OpenParams
	closes []string
	pings  int
}

func (s *sessions) Open(p allkinds.OpenParams, respond func(allkinds.Ack, error)) {
	s.opens = append(s.opens, p)
	respond(allkinds.Ack{}, nil)
}

func (s *sessions) Close(p allkinds.CloseParams, respond func(allkinds.Ack, error)) {
	s.closes = append(s.closes, p.Id)
	respond(allkinds.Ack{}, nil)
}

func (s *sessions) Ping(allkinds.PingParams, func(allkinds.Ack, error)) {}

// TestProviderRoundTrip exports the Provider face and drives every
// from-user primitive — including the parameterless one — through its
// generated port.
func TestProviderRoundTrip(t *testing.T) {
	k := sim.NewKernel(sim.WithSeed(5))
	net := network.New(k, network.WithDefaultLink(network.LinkConfig{Latency: time.Millisecond}))
	transport := protocol.NewReliableDatagram(k, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{})
	plat := middleware.New(k, transport, middleware.ProfileCORBALike, "mw-broker")
	b, err := allkinds.Bind(plat, middleware.PatternRPC)
	if err != nil {
		t.Fatal(err)
	}
	prov := &sessions{}
	if _, err := allkinds.ExportProvider(b, "sessions", "node-s", prov); err != nil {
		t.Fatal(err)
	}
	openPort, err := allkinds.NewOpenPort(b, "sessions")
	if err != nil {
		t.Fatal(err)
	}
	closePort, err := allkinds.NewClosePort(b, "sessions")
	if err != nil {
		t.Fatal(err)
	}
	pingPort, err := allkinds.NewPingPort(b, "sessions")
	if err != nil {
		t.Fatal(err)
	}
	ack := func(allkinds.Ack, error) {}
	open := allkinds.OpenParams{Id: "s1", Seq: 1, Urgent: true, Tags: []string{"t"}}
	if err := openPort.Call("node-c", open, ack); err != nil {
		t.Fatal(err)
	}
	if err := closePort.Call("node-c", allkinds.CloseParams{Id: "s1"}, ack); err != nil {
		t.Fatal(err)
	}
	if err := pingPort.Call("node-c", allkinds.PingParams{}, ack); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(prov.opens) != 1 || !reflect.DeepEqual(prov.opens[0], open) {
		t.Fatalf("provider saw opens %+v", prov.opens)
	}
	if len(prov.closes) != 1 || prov.closes[0] != "s1" {
		t.Fatalf("provider saw closes %v", prov.closes)
	}
}
