package allkinds

//go:generate go run repro/cmd/sdlgen -spec ../../specs/allkinds.svc -out . -pkg allkinds
