package floorcontrol

//go:generate go run repro/cmd/sdlgen -spec ../../specs/floorcontrol.svc -out . -pkg floorcontrol
