// End-to-end tests of the committed generated package: the spec literal
// matches the committed .svc source, a typed RPC round-trips through a
// simulated platform, and the schema wire path is byte-identical to the
// generic message codec.
package floorcontrol_test

import (
	"bytes"
	"testing"
	"time"

	"repro/examples/gen/floorcontrol"
	"repro/examples/specs"
	"repro/internal/codec"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sdl"
	"repro/internal/sim"
	"repro/internal/svc"
)

// stack builds kernel + platform on a lossless 1ms network.
func stack(t testing.TB, profile middleware.Profile) (*sim.Kernel, *middleware.Platform) {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(5))
	net := network.New(k, network.WithDefaultLink(network.LinkConfig{Latency: time.Millisecond}))
	transport := protocol.NewReliableDatagram(k, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{})
	return k, middleware.New(k, transport, profile, "mw-broker")
}

// TestSpecMatchesCommittedSource pins that the generated spec literal
// and the committed .svc source compile to the same service document:
// the two commitments cannot drift apart silently.
func TestSpecMatchesCommittedSource(t *testing.T) {
	spec := floorcontrol.Spec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("generated spec invalid: %v", err)
	}
	_, parsed, err := sdl.Parse(specs.FloorControl)
	if err != nil {
		t.Fatalf("parse committed source: %v", err)
	}
	if got, want := spec.Document(), parsed.Document(); got != want {
		t.Fatalf("generated spec diverges from committed source\ngenerated:\n%s\nsource:\n%s", got, want)
	}
}

// provider grants every request by oneway-delivering granted to the
// consumer object, and records what it saw.
type provider struct {
	granted  *svc.Sink[floorcontrol.GrantedParams]
	requests []string
	frees    []string
	sendErr  error
}

func (p *provider) Request(req floorcontrol.RequestParams, respond func(floorcontrol.Ack, error)) {
	p.requests = append(p.requests, req.Resid)
	respond(floorcontrol.Ack{}, nil)
	if err := p.granted.Send("node-p", floorcontrol.GrantedParams{Resid: req.Resid}); err != nil {
		p.sendErr = err
	}
}

func (p *provider) Free(req floorcontrol.FreeParams, respond func(floorcontrol.Ack, error)) {
	p.frees = append(p.frees, req.Resid)
	respond(floorcontrol.Ack{}, nil)
}

type consumer struct{ granted []string }

func (c *consumer) Granted(g floorcontrol.GrantedParams, respond func(floorcontrol.Ack, error)) {
	c.granted = append(c.granted, g.Resid)
	respond(floorcontrol.Ack{}, nil)
}

// TestTypedRoundTrip drives one full request → granted → free cycle
// through the generated ports over a simulated RPC+oneway platform.
func TestTypedRoundTrip(t *testing.T) {
	k, plat := stack(t, middleware.ProfileCORBALike)
	b, err := floorcontrol.Bind(plat, middleware.PatternRPC, middleware.PatternOneway)
	if err != nil {
		t.Fatal(err)
	}
	cons := &consumer{}
	if _, err := floorcontrol.ExportConsumer(b, "user-1", "node-c", cons); err != nil {
		t.Fatal(err)
	}
	sink, err := floorcontrol.NewGrantedSink(b, "user-1")
	if err != nil {
		t.Fatal(err)
	}
	prov := &provider{granted: sink}
	if _, err := floorcontrol.ExportProvider(b, "floor", "node-p", prov); err != nil {
		t.Fatal(err)
	}
	reqPort, err := floorcontrol.NewRequestPort(b, "floor")
	if err != nil {
		t.Fatal(err)
	}
	freePort, err := floorcontrol.NewFreePort(b, "floor")
	if err != nil {
		t.Fatal(err)
	}

	acks := 0
	var callErr error
	record := func(_ floorcontrol.Ack, err error) {
		acks++
		if err != nil {
			callErr = err
		}
	}
	if err := reqPort.Call("node-c", floorcontrol.RequestParams{Resid: "cam-1"}, record); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := freePort.Call("node-c", floorcontrol.FreeParams{Resid: "cam-1"}, record); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}

	if callErr != nil {
		t.Fatalf("call error: %v", callErr)
	}
	if prov.sendErr != nil {
		t.Fatalf("granted send error: %v", prov.sendErr)
	}
	if acks != 2 {
		t.Fatalf("got %d acks, want 2", acks)
	}
	if len(prov.requests) != 1 || prov.requests[0] != "cam-1" {
		t.Fatalf("provider saw requests %v, want [cam-1]", prov.requests)
	}
	if len(cons.granted) != 1 || cons.granted[0] != "cam-1" {
		t.Fatalf("consumer saw grants %v, want [cam-1]", cons.granted)
	}
	if len(prov.frees) != 1 || prov.frees[0] != "cam-1" {
		t.Fatalf("provider saw frees %v, want [cam-1]", prov.frees)
	}
}

// TestTopicRoundTrip drives granted events through the generated topic
// sink and zero-copy source over a pub/sub profile.
func TestTopicRoundTrip(t *testing.T) {
	k, plat := stack(t, middleware.ProfileJMSLike)
	b, err := floorcontrol.Bind(plat, middleware.PatternPubSub)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	src, err := floorcontrol.NewGrantedTopicSource(b, "grants", "sub-1",
		func(g floorcontrol.GrantedParams) { got = append(got, g.Resid) })
	if err != nil {
		t.Fatal(err)
	}
	sink, err := floorcontrol.NewGrantedTopicSink(b, "grants")
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Send("pub", floorcontrol.GrantedParams{Resid: "cam-2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "cam-2" {
		t.Fatalf("subscriber got %v, want [cam-2]", got)
	}
	if src.Received() != 1 || src.Dropped() != 0 {
		t.Fatalf("source counters %d/%d, want 1/0", src.Received(), src.Dropped())
	}
}

// TestWireParity pins that the schema fast path emits exactly the bytes
// of the generic message codec for every primitive.
func TestWireParity(t *testing.T) {
	check := func(name string, fast []byte, fastErr error, msg codec.Message) {
		t.Helper()
		if fastErr != nil {
			t.Fatalf("%s: append: %v", name, fastErr)
		}
		want, err := codec.EncodeMessage(msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if !bytes.Equal(fast, want) {
			t.Fatalf("%s: schema path and message codec disagree", name)
		}
	}
	req := floorcontrol.RequestParams{Resid: "cam-1"}
	fast, err := floorcontrol.AppendRequestParams(nil, req)
	check("request", fast, err, floorcontrol.RequestMessage(req))

	g := floorcontrol.GrantedParams{Resid: "cam-1"}
	fast, err = floorcontrol.AppendGrantedParams(nil, g)
	check("granted", fast, err, floorcontrol.GrantedMessage(g))

	fr := floorcontrol.FreeParams{Resid: "cam-1"}
	fast, err = floorcontrol.AppendFreeParams(nil, fr)
	check("free", fast, err, floorcontrol.FreeMessage(fr))
}
