// Genfloor: drive the sdlgen-generated floor-control binding end to
// end — the toolchain counterpart of examples/quickstart. Where
// quickstart programs against the hand-written internal/floorcontrol
// package, this example uses only the package generated from
// examples/specs/floorcontrol.svc: typed ports for request/free, a
// typed oneway sink for granted, and the Provider/Consumer faces.
//
//	go run ./examples/genfloor
package main

import (
	"fmt"
	"os"
	"time"

	"repro/examples/gen/floorcontrol"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/svc"
)

// controller is the provider face: it grants every request immediately
// (one subscriber, no contention) and records the traffic.
type controller struct {
	granted *svc.Sink[floorcontrol.GrantedParams]
	grants  int
	frees   int
	err     error
}

func (c *controller) Request(req floorcontrol.RequestParams, respond func(floorcontrol.Ack, error)) {
	respond(floorcontrol.Ack{}, nil)
	c.grants++
	if err := c.granted.Send("node-ctl", floorcontrol.GrantedParams{Resid: req.Resid}); err != nil {
		c.err = err
	}
}

func (c *controller) Free(floorcontrol.FreeParams, func(floorcontrol.Ack, error)) {
	c.frees++
}

// user is the consumer face: on each grant it holds the floor for one
// virtual millisecond, then frees it and requests again.
type user struct {
	k       *sim.Kernel
	request *svc.Port[floorcontrol.RequestParams, floorcontrol.Ack]
	free    *svc.Port[floorcontrol.FreeParams, floorcontrol.Ack]
	cycles  int
	target  int
	err     error
}

func (u *user) Granted(g floorcontrol.GrantedParams, respond func(floorcontrol.Ack, error)) {
	respond(floorcontrol.Ack{}, nil)
	u.k.ScheduleFunc(time.Millisecond, func() {
		if err := u.free.Call("node-user", floorcontrol.FreeParams{Resid: g.Resid}, u.onAck); err != nil {
			u.err = err
			return
		}
		u.cycles++
		if u.cycles < u.target {
			if err := u.request.Call("node-user", floorcontrol.RequestParams{Resid: g.Resid}, u.onAck); err != nil {
				u.err = err
			}
		}
	})
}

func (u *user) onAck(floorcontrol.Ack, error) {}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genfloor:", err)
		os.Exit(1)
	}
}

func run() error {
	// The generated package carries the full service definition.
	fmt.Println(floorcontrol.Spec().Document())

	// Simulated platform: 1ms network, reliable datagrams, CORBA-like
	// profile (RPC + oneway).
	k := sim.NewKernel(sim.WithSeed(7))
	net := network.New(k, network.WithDefaultLink(network.LinkConfig{Latency: time.Millisecond}))
	transport := protocol.NewReliableDatagram(k, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{})
	plat := middleware.New(k, transport, middleware.ProfileCORBALike, "mw-broker")

	b, err := floorcontrol.Bind(plat, middleware.PatternRPC, middleware.PatternOneway)
	if err != nil {
		return err
	}

	// Consumer side: the subscriber object plus its typed ports.
	u := &user{k: k, target: 3}
	if _, err := floorcontrol.ExportConsumer(b, "user-1", "node-user", u); err != nil {
		return err
	}
	if u.request, err = floorcontrol.NewRequestPort(b, "controller"); err != nil {
		return err
	}
	if u.free, err = floorcontrol.NewFreePort(b, "controller"); err != nil {
		return err
	}

	// Provider side: the controller object plus its grant sink.
	ctl := &controller{}
	if ctl.granted, err = floorcontrol.NewGrantedSink(b, "user-1"); err != nil {
		return err
	}
	if _, err := floorcontrol.ExportProvider(b, "controller", "node-ctl", ctl); err != nil {
		return err
	}

	if err := u.request.Call("node-user", floorcontrol.RequestParams{Resid: "camera"}, u.onAck); err != nil {
		return err
	}
	if _, err := k.Run(); err != nil {
		return err
	}
	if u.err != nil {
		return u.err
	}
	if ctl.err != nil {
		return ctl.err
	}

	fmt.Printf("completed %d acquire/hold/release cycles in %v of virtual time\n", u.cycles, k.Now())
	fmt.Printf("controller: %d grants, %d frees\n", ctl.grants, ctl.frees)
	if u.cycles != u.target || ctl.grants != u.target || ctl.frees != u.target {
		return fmt.Errorf("expected %d full cycles", u.target)
	}
	fmt.Println("generated binding round-trips: typed ports, sinks, and exports all via sdlgen output")
	return nil
}
