// Paradigms: the paper's §4–§5 comparison as a runnable program. All six
// floor-control solutions — middleware-centred (Figure 4, programming
// against typed internal/svc service ports) and protocol-centred
// (Figure 6) — execute under an identical workload; the
// program reports their measured footprint, the scattering of interaction
// functionality (Figure 7), and the conformance verdict for each.
//
//	go run ./examples/paradigms
//	go run ./examples/paradigms -subs 6 -cycles 8 -loss 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/floorcontrol"
	"repro/internal/metrics"
)

func main() {
	subs := flag.Int("subs", 4, "subscribers")
	resources := flag.Int("resources", 2, "shared resources")
	cycles := flag.Int("cycles", 6, "cycles per subscriber")
	loss := flag.Float64("loss", 0, "datagram loss rate")
	seed := flag.Int64("seed", 42, "simulation seed")
	flag.Parse()

	table := metrics.NewTable(
		fmt.Sprintf("floor-control: %d subscribers × %d cycles over %d resources (loss %.0f%%)",
			*subs, *cycles, *resources, *loss*100),
		"solution", "paradigm", "figure", "net msgs", "lat mean", "lat p95", "scattering", "verdict")

	for _, s := range floorcontrol.Solutions() {
		res, err := floorcontrol.RunWorkload(floorcontrol.Config{
			Solution:    s.Name(),
			Subscribers: *subs,
			Resources:   *resources,
			Cycles:      *cycles,
			LossRate:    *loss,
			Seed:        *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "paradigms:", err)
			os.Exit(1)
		}
		verdict := "conforms"
		if res.ConformanceErr != nil {
			verdict = "VIOLATION"
		}
		table.AddRow(
			res.Solution,
			string(res.Paradigm),
			res.Figure,
			fmt.Sprintf("%d", res.NetMessages),
			res.AcquireLatency.Mean().Round(10*time.Microsecond).String(),
			res.AcquireLatency.P95().Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.2f", res.Scattering.Index()),
			verdict,
		)
	}
	fmt.Println(table)
	fmt.Println("scattering 1.00 = interaction functionality inside application parts (middleware paradigm, Figure 7);")
	fmt.Println("scattering 0.00 = concentrated in a separately designed interaction system behind the service boundary.")
}
