// Quickstart: run one floor-control solution and check it against the
// service definition — the smallest end-to-end use of the library. Every
// solution programs against the service concept: protocol solutions via
// core.Provider, middleware solutions via typed internal/svc ports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/floorcontrol"
)

func main() {
	// The floor-control service definition (paper, Figure 5): three
	// primitives and their local/remote constraints.
	spec := floorcontrol.Spec()
	fmt.Println(spec.Document())

	// Execute the callback protocol solution (Figure 6(a)) under a small
	// workload: 3 subscribers × 5 acquire/hold/release cycles over 2
	// shared resources, on a simulated 1ms network.
	res, err := floorcontrol.RunWorkload(floorcontrol.Config{
		Solution: "proto-callback",
		Seed:     1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}

	fmt.Printf("completed %d/%d cycles in %v of virtual time\n",
		res.Completed, res.Expected, res.VirtualDuration)
	fmt.Printf("acquire latency: %s\n", res.AcquireLatency.Summary())
	fmt.Printf("wire footprint: %d PDUs, %d datagrams, %d bytes\n",
		res.ParadigmMessages, res.NetMessages, res.NetBytes)
	if res.ConformanceErr != nil {
		fmt.Println("conformance: VIOLATION —", res.ConformanceErr)
		os.Exit(1)
	}
	fmt.Printf("conformance: every one of the %d observed primitives satisfied the service constraints\n",
		len(res.Trace))
}
