// Package specs holds the committed service-definition sources (.svc,
// see internal/sdl). Each spec has exactly one source of truth here:
// cmd/sdlc -example prints it, the sdlgen golden tests compile it, and
// the generated packages under examples/gen are produced from it (the
// CI freshness gate regenerates and diffs).
package specs

import _ "embed"

// FloorControl is the floor-control service definition
// (floorcontrol.svc): the paper's running example. sdlgen compiles it
// into examples/gen/floorcontrol.
//
//go:embed floorcontrol.svc
var FloorControl string

// AllKinds is the kitchen-sink definition (allkinds.svc): every
// parameter kind and constraint form, used as the generator's
// compile-coverage input. sdlgen compiles it into examples/gen/allkinds.
//
//go:embed allkinds.svc
var AllKinds string
