// Trajectory: the paper's §6 model-driven trajectory end to end. One
// platform-independent service design (PIM) of the floor-control service
// is realized on four concrete platforms — directly where the platform
// conforms to the abstract-platform definition, recursively (Figure 12)
// where it does not — and every resulting PSI is executed and verified
// against the same service definition. Each deployment interacts with
// its platform exclusively through typed internal/svc ports.
//
//	go run ./examples/trajectory
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/floorcontrol"
	"repro/internal/mda"
	"repro/internal/metrics"
)

func main() {
	pim := floorcontrol.PIM(floorcontrol.ResourceNames(2))
	fmt.Printf("PIM %q: service %q over abstract platform %q requiring %v\n\n",
		pim.Name, pim.Service.Name, pim.Abstract.Name, pim.Abstract.Requires)

	table := metrics.NewTable("one PIM, four platform-specific implementations",
		"platform", "class", "realization", "adapter (abstract-platform service logic)",
		"net msgs", "lat mean", "verdict")

	for _, target := range mda.ConcretePlatforms() {
		steps, realization, err := mda.PlanTrajectory(pim, target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trajectory:", err)
			os.Exit(1)
		}
		fmt.Printf("trajectory to %s (%d milestones):\n", target.Name, len(steps))
		for _, s := range steps {
			fmt.Printf("  %-38s %s\n", s.Milestone, s.Detail)
		}
		fmt.Println()

		sol := &floorcontrol.MDASolution{Target: target}
		res, err := floorcontrol.RunWorkloadWith(sol, floorcontrol.Config{Seed: 42})
		if err != nil {
			fmt.Fprintln(os.Stderr, "trajectory:", err)
			os.Exit(1)
		}
		kind, adapter := "direct", "-"
		if !realization.Direct {
			kind = "recursive"
			adapter = sol.Deployment().MessagingName()
		}
		verdict := "conforms"
		if res.ConformanceErr != nil {
			verdict = "VIOLATION"
		}
		table.AddRow(target.Name, target.Class, kind, adapter,
			fmt.Sprintf("%d", res.NetMessages),
			res.AcquireLatency.Mean().Round(10*time.Microsecond).String(),
			verdict)
	}
	fmt.Println(table)
	fmt.Println("the same service logic and the same user parts ran in every row;")
	fmt.Println("recursive rows pay the adapter's wire amplification but preserve the service.")
}
