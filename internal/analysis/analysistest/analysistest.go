// Package analysistest runs a go/analysis analyzer over golden test
// packages and compares its diagnostics against `// want` comments —
// a self-contained stand-in for golang.org/x/tools/go/analysis/analysistest,
// which cannot be vendored here (it drags in go/packages and the
// whole loader; this repo vendors only the analysis core that the Go
// toolchain itself ships). The contract it implements is the familiar
// one:
//
//   - test packages live under <dir>/src/<import/path>/*.go, GOPATH
//     style; imports between test packages resolve within src/, and
//     standard-library imports resolve from GOROOT source
//   - a comment `// want "rx"` (one or more quoted or backquoted Go
//     strings) on a line asserts that the analyzer reports, on exactly
//     that line, diagnostics matching each regular expression
//   - every diagnostic must be matched by a want and every want by a
//     diagnostic, or the test fails with a location-by-location report
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the package with the given import path from dir/src,
// applies analyzer a (and its Requires closure), and checks the
// diagnostics against the package's // want comments.
func Run(t *testing.T, dir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	l := loaderFor(dir)
	if _, err := l.Import(importPath); err != nil {
		t.Fatalf("loading %s from %s: %v", importPath, dir, err)
	}
	diags, err := runAnalyzer(l, importPath, a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}
	checkWants(t, l, importPath, diags)
}

// loader type-checks GOPATH-style test packages rooted at srcRoot,
// falling back to compiling the standard library from GOROOT source
// for everything else. Loaded packages are cached, and loaders
// themselves are cached per root: the expensive part is type-checking
// stdlib dependencies (fmt pulls in a few dozen packages), which this
// amortizes across all tests in the process.
type loader struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	mu      sync.Mutex
	pkgs    map[string]*loadedPkg
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

var (
	loadersMu sync.Mutex
	loaders   = make(map[string]*loader)
)

func loaderFor(dir string) *loader {
	loadersMu.Lock()
	defer loadersMu.Unlock()
	if l, ok := loaders[dir]; ok {
		return l
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		srcRoot: filepath.Join(dir, "src"),
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*loadedPkg),
	}
	loaders[dir] = l
	return l
}

// Import implements types.Importer over the test src tree.
func (l *loader) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	if p, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return p.pkg, nil
	}
	l.mu.Unlock()
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return l.load(path, dir)
	}
	return l.std.Import(path)
}

func (l *loader) load(path, dir string) (*types.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.pkgs[path] = &loadedPkg{pkg: pkg, files: files, info: info}
	l.mu.Unlock()
	return pkg, nil
}

// runAnalyzer executes a and its Requires closure over the loaded
// package, returning only a's own diagnostics.
func runAnalyzer(l *loader, path string, a *analysis.Analyzer) ([]analysis.Diagnostic, error) {
	lp := l.pkgs[path]
	if lp == nil {
		return nil, fmt.Errorf("package %s not loaded", path)
	}
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var exec func(an *analysis.Analyzer) error
	exec = func(an *analysis.Analyzer) error {
		if _, done := results[an]; done {
			return nil
		}
		for _, req := range an.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       l.fset,
			Files:      lp.files,
			Pkg:        lp.pkg,
			TypesInfo:  lp.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				if an == a {
					diags = append(diags, d)
				}
			},
			ReadFile: os.ReadFile,
			// The repolint suite uses no facts; these stubs keep any
			// accidental use loud instead of a nil-call panic.
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { panic("facts unsupported in this harness") },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { panic("facts unsupported in this harness") },
			ExportObjectFact:  func(types.Object, analysis.Fact) { panic("facts unsupported in this harness") },
			ExportPackageFact: func(analysis.Fact) { panic("facts unsupported in this harness") },
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := an.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", an.Name, err)
		}
		results[an] = res
		return nil
	}
	if err := exec(a); err != nil {
		return nil, err
	}
	return diags, nil
}

// wantMarker locates the start of a want expectation inside a comment:
// the word "want" followed by a quoted or backquoted regexp.
var wantMarker = regexp.MustCompile("\\bwant [\"`]")

// want is one expectation parsed from a `// want "rx"` comment.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

func checkWants(t *testing.T, l *loader, path string, diags []analysis.Diagnostic) {
	t.Helper()
	lp := l.pkgs[path]
	var wants []*want
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may appear mid-comment: a line whose only
				// comment is a //repolint: directive states its
				// expectation inside that same comment, e.g.
				//   //repolint:allow bogus -- want `unknown repolint check`
				loc := wantMarker.FindStringIndex(c.Text)
				if loc == nil {
					continue
				}
				rest := c.Text[loc[1]-1:]
				pos := l.fset.Position(c.Pos())
				patterns, err := parseQuoted(rest)
				if err != nil {
					t.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					continue
				}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx, raw: p})
				}
			}
		}
	}

	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseQuoted extracts the leading sequence of Go-quoted strings from
// s, e.g. `"a" "b" trailing prose` → ["a", "b"]. Parsing stops at the
// first token that is not a quoted string, so a want expectation may be
// followed by explanatory text.
func parseQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			break
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			return nil, err
		}
		out = append(out, unq)
		s = s[len(prefix):]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}
