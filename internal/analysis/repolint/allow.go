package repolint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Check names understood by //repolint:allow, mapped to the analyzer
// that reports them. allowcheck validates allow directives against this
// registry, so adding a check here is what makes it suppressible.
var Checks = map[string]string{
	"wallclock":   "simdeterminism",
	"globalrand":  "simdeterminism",
	"env":         "simdeterminism",
	"mapiter":     "mapiter",
	"poolalias":   "poolalias",
	"bufleak":     "poolalias",
	"alloc":       "hotpathalloc",
	"legacycodec": "legacycodec",
	"allowdecl":   "allowcheck",
}

const (
	directivePrefix  = "//repolint:"
	allowDirective   = "allow"
	hotpathDirective = "hotpath"
)

// parseDirective splits a comment's text into a repolint directive name
// and its argument string. ok is false for non-repolint comments.
// Following the convention for tool directives (like //go:build), only
// comments with no space between // and the directive are recognized.
func parseDirective(text string) (name, args string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, args, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(args), true
}

// parseAllowArgs splits the argument string of an allow directive into
// check names, dropping the optional "-- reason" trailer.
func parseAllowArgs(args string) []string {
	if before, _, found := strings.Cut(args, "--"); found {
		args = strings.TrimSpace(before)
	}
	return strings.Fields(args)
}

// Allows indexes every //repolint:allow directive in a package by file
// and line, so analyzers can ask "is this check suppressed at this
// position" in O(1).
type Allows struct {
	fset *token.FileSet
	// byLine maps filename → line → check names allowed there. A
	// comment alone on its line also registers the following line.
	byLine map[string]map[int][]string
	// generated holds the filenames carrying a standard "Code generated
	// ... DO NOT EDIT." marker; diagnostics in them are suppressed
	// wholesale — the fix belongs in the generator, and a human cannot
	// annotate a file that is overwritten on every regeneration.
	generated map[string]bool
}

// CollectAllows builds the allow index for a pass. Analyzers call this
// once in their Run and route every diagnostic through Allows.Report.
func CollectAllows(pass *analysis.Pass) *Allows {
	a := &Allows{
		fset:      pass.Fset,
		byLine:    make(map[string]map[int][]string),
		generated: make(map[string]bool),
	}
	for _, f := range pass.Files {
		if ast.IsGenerated(f) {
			a.generated[a.fset.Position(f.Pos()).Filename] = true
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args, ok := parseDirective(c.Text)
				if !ok || name != allowDirective {
					continue
				}
				checks := parseAllowArgs(args)
				if len(checks) == 0 {
					continue // allowcheck reports the malformed directive
				}
				pos := a.fset.Position(c.Pos())
				lines := a.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					a.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], checks...)
				// A directive standing alone on its line covers the
				// next line, the way lint suppressions conventionally
				// sit above the statement they annotate.
				if a.aloneOnLine(f, c) {
					lines[pos.Line+1] = append(lines[pos.Line+1], checks...)
				}
			}
		}
	}
	return a
}

// aloneOnLine reports whether comment c is the only thing on its line.
// A trailing directive (code before it on the line) covers only its own
// line; a standalone directive also covers the next. The test: no AST
// node ends in the span between the line start and the comment.
func (a *Allows) aloneOnLine(f *ast.File, c *ast.Comment) bool {
	tf := a.fset.File(c.Pos())
	if tf == nil {
		return a.fset.Position(c.Pos()).Column == 1
	}
	lineStart := tf.LineStart(a.fset.Position(c.Pos()).Line)
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if n.End() > lineStart && n.End() <= c.Pos() {
			alone = false
			return false
		}
		return true
	})
	return alone
}

// Allowed reports whether check is suppressed at pos, either by an
// allow directive on the line or because the file is generated.
func (a *Allows) Allowed(pos token.Pos, check string) bool {
	p := a.fset.Position(pos)
	if a.generated[p.Filename] {
		return true
	}
	lines := a.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, c := range lines[p.Line] {
		if c == check {
			return true
		}
	}
	return false
}

// Report emits a diagnostic for check at pos unless an allow directive
// suppresses it. The message is prefixed with the check name so the
// matching //repolint:allow annotation is discoverable from the error.
func (a *Allows) Report(pass *analysis.Pass, pos token.Pos, check, format string, args ...any) {
	if a.Allowed(pos, check) {
		return
	}
	pass.Report(analysis.Diagnostic{
		Pos:      pos,
		Category: check,
		Message:  check + ": " + fmt.Sprintf(format, args...),
	})
}

// isTestFile reports whether the file containing pos is a _test.go
// file. The analyzers skip test files: tests may legitimately use wall
// clocks, ambient randomness, and unsorted iteration.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
