package repolint

import (
	"reflect"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text       string
		name, args string
		ok         bool
	}{
		{"//repolint:allow wallclock", "allow", "wallclock", true},
		{"//repolint:allow wallclock env -- reason text", "allow", "wallclock env -- reason text", true},
		{"//repolint:hotpath", "hotpath", "", true},
		{"//repolint:allow", "allow", "", true},
		{"// repolint:allow wallclock", "", "", false}, // space after //: a plain comment, per tool-directive convention
		{"// ordinary comment", "", "", false},
		{"//go:build linux", "", "", false},
	}
	for _, c := range cases {
		name, args, ok := parseDirective(c.text)
		if name != c.name || args != c.args || ok != c.ok {
			t.Errorf("parseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, name, args, ok, c.name, c.args, c.ok)
		}
	}
}

func TestParseAllowArgs(t *testing.T) {
	cases := []struct {
		args string
		want []string
	}{
		{"wallclock", []string{"wallclock"}},
		{"wallclock env", []string{"wallclock", "env"}},
		{"wallclock -- telemetry only, excluded from reports", []string{"wallclock"}},
		{"-- reason with no checks", nil},
		{"", nil},
	}
	for _, c := range cases {
		got := parseAllowArgs(c.args)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseAllowArgs(%q) = %v, want %v", c.args, got, c.want)
		}
	}
}

// TestChecksRegistry pins the allow-grammar surface: every check name
// the documentation promises is registered, and nothing else is.
func TestChecksRegistry(t *testing.T) {
	want := map[string]string{
		"wallclock":   "simdeterminism",
		"globalrand":  "simdeterminism",
		"env":         "simdeterminism",
		"mapiter":     "mapiter",
		"poolalias":   "poolalias",
		"bufleak":     "poolalias",
		"alloc":       "hotpathalloc",
		"legacycodec": "legacycodec",
		"allowdecl":   "allowcheck",
	}
	if !reflect.DeepEqual(Checks, want) {
		t.Errorf("Checks registry = %v, want %v", Checks, want)
	}
}
