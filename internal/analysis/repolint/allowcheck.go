package repolint

import (
	"go/ast"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Allowcheck validates the //repolint: directives themselves, so a
// typo in an allow comment fails the build instead of silently
// suppressing nothing:
//
//   - an unknown check name in //repolint:allow is reported
//   - an allow directive with no check names is reported
//   - an unknown directive (//repolint:anything-else) is reported
//   - a //repolint:hotpath comment anywhere but a function declaration
//     doc comment is reported (it would otherwise be dead)
//
// Check: allowdecl (and yes, an allowcheck diagnostic can itself be
// suppressed with //repolint:allow allowdecl, which is occasionally
// needed in this suite's own test data).
var Allowcheck = &analysis.Analyzer{
	Name:     "allowcheck",
	Doc:      "validate //repolint: directive grammar and check names (check: allowdecl)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAllowcheck,
}

func runAllowcheck(pass *analysis.Pass) (any, error) {
	allows := CollectAllows(pass)

	// Collect the comment groups that are doc comments of function
	// declarations: the only place a hotpath directive is live.
	funcDocs := make(map[*ast.CommentGroup]bool)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		if doc := n.(*ast.FuncDecl).Doc; doc != nil {
			funcDocs[doc] = true
		}
	})

	known := make([]string, 0, len(Checks))
	for name := range Checks {
		known = append(known, name)
	}
	sort.Strings(known)
	knownList := strings.Join(known, ", ")

	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				switch name {
				case allowDirective:
					checks := parseAllowArgs(args)
					if len(checks) == 0 {
						allows.Report(pass, c.Pos(), "allowdecl",
							"repolint:allow directive names no checks; write //repolint:allow <check> [-- reason] (known checks: %s)", knownList)
					}
					for _, check := range checks {
						if _, ok := Checks[check]; !ok {
							allows.Report(pass, c.Pos(), "allowdecl",
								"unknown repolint check %q in allow directive (known checks: %s)", check, knownList)
						}
					}
				case hotpathDirective:
					if !funcDocs[cg] {
						allows.Report(pass, c.Pos(), "allowdecl",
							"repolint:hotpath directive is only effective in the doc comment of a function declaration")
					}
				default:
					allows.Report(pass, c.Pos(), "allowdecl",
						"unknown repolint directive %q; known directives: allow, hotpath", name)
				}
			}
		}
	}
	return nil, nil
}
