package repolint

import "golang.org/x/tools/go/analysis"

// All returns the full repolint suite in the order cmd/repolint runs
// it. The slice is freshly allocated; callers may append.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Simdeterminism,
		Mapiter,
		Poolalias,
		Hotpathalloc,
		Legacycodec,
		Allowcheck,
	}
}
