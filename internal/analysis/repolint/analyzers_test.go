package repolint_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/repolint"
)

// Each golden package under testdata/src pairs true positives with the
// nearest true negative and an //repolint:allow suppression, so these
// tests pin down both edges of every check.

func TestSimdeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", "repro/internal/sim", repolint.Simdeterminism)
}

// TestGeneratedFilesSkipped proves the generated-file exemption: a file
// with a standard "Code generated ... DO NOT EDIT." marker draws no
// diagnostics even inside the deterministic package set, while its
// hand-written sibling in the same package is checked as usual.
func TestGeneratedFilesSkipped(t *testing.T) {
	analysistest.Run(t, "testdata", "repro/internal/sim/gen", repolint.Simdeterminism)
}

// TestSimdeterminismScope proves the analyzer is scoped by import path:
// the same constructs draw no diagnostics outside the deterministic
// package set.
func TestSimdeterminismScope(t *testing.T) {
	analysistest.Run(t, "testdata", "example.com/free", repolint.Simdeterminism)
}

func TestMapiter(t *testing.T) {
	analysistest.Run(t, "testdata", "example.com/report", repolint.Mapiter)
}

func TestPoolalias(t *testing.T) {
	analysistest.Run(t, "testdata", "example.com/mw", repolint.Poolalias)
}

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, "testdata", "example.com/hot", repolint.Hotpathalloc)
}

func TestAllowcheck(t *testing.T) {
	analysistest.Run(t, "testdata", "example.com/allowdecl", repolint.Allowcheck)
}

func TestLegacycodec(t *testing.T) {
	analysistest.Run(t, "testdata", "example.com/legacy", repolint.Legacycodec)
}

// TestLegacycodecScope proves internal/codec itself is exempt: the
// package that implements the legacy plane calls it freely.
func TestLegacycodecScope(t *testing.T) {
	analysistest.Run(t, "testdata", "repro/internal/codec", repolint.Legacycodec)
}

// TestAll pins the suite composition: six analyzers, stable order,
// every check name routed to the analyzer that implements it.
func TestAll(t *testing.T) {
	all := repolint.All()
	want := []string{"simdeterminism", "mapiter", "poolalias", "hotpathalloc", "legacycodec", "allowcheck"}
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	byName := make(map[string]bool, len(all))
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		byName[a.Name] = true
	}
	for check, analyzer := range repolint.Checks {
		if !byName[analyzer] {
			t.Errorf("check %q maps to analyzer %q, which All() does not include", check, analyzer)
		}
	}
}
