// Package repolint is a suite of golang.org/x/tools/go/analysis analyzers
// that enforce this repository's determinism, aliasing, and hot-path
// invariants at compile time. Every result the reproduction publishes
// rests on invariants that used to be enforced only at runtime — the
// sweep-CSV byte-determinism check, the pooled-buffer aliasing contracts
// of DESIGN.md §1.2–1.3, and the 0-alloc hot paths gated by benchcmp.
// These analyzers turn violations of those contracts into `go vet`-time
// errors with source locations.
//
// The suite (see DESIGN.md §1.5 for the full contract of each):
//
//   - simdeterminism — in the deterministic packages (sim, protocol,
//     network, middleware, svc, floorcontrol, mda, runner, metrics),
//     forbid wall-clock time, ambient process randomness, and
//     environment reads. Checks: wallclock, globalrand, env.
//   - mapiter — flag a `range` over a map whose body feeds
//     order-sensitive output (slice appends, float accumulation,
//     writes, channel sends) with no subsequent sort. Check: mapiter.
//   - poolalias — enforce the borrowed-buffer aliasing contracts: a
//     []byte received through network.Handler, protocol.Receiver, a
//     codec.Visitor method, or a codec.MsgView accessor must not be
//     retained; every codec.GetBuffer must be released or handed off.
//     Checks: poolalias, bufleak.
//   - hotpathalloc — in functions annotated //repolint:hotpath, reject
//     allocating constructs (closures, fmt, interface boxing, map
//     literals, un-presized appends into fresh slices). Check: alloc.
//   - legacycodec — outside internal/codec, flag references to the
//     deprecated reflective entry points codec.Encode, codec.Decode,
//     and codec.DecodeMessage; new code goes through the compiled
//     schema and zero-copy MsgView planes. Check: legacycodec.
//   - allowcheck — validate the //repolint: directives themselves:
//     unknown check names, empty allow lists, misplaced hotpath
//     annotations. Check: allowdecl.
//
// # Directive grammar
//
// Two comment directives, both line comments beginning exactly with
// "//repolint:" (no space before "repolint"):
//
//	//repolint:allow <check> [<check>...] [-- reason]
//	//repolint:hotpath [reason]
//
// An allow directive suppresses the named checks' diagnostics on the
// line the comment sits on (trailing comment) and, when the comment
// stands alone on its line, on the line immediately below it. Nothing
// else: an allow two lines up does not apply. The optional free-text
// reason after " -- " is for the reader; analyzers ignore it.
//
// A hotpath directive is only meaningful in the doc comment of a
// function or method declaration; it opts that function into the
// hotpathalloc checks.
package repolint
