package repolint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Hotpathalloc rejects allocating constructs in functions annotated
// //repolint:hotpath — the paths the benchcmp 0-alloc gates protect
// (kernel dispatch, codec encode/decode, dense delivery, the svc call
// path). The bench gate tells you *that* a path started allocating;
// this analyzer tells you *where*, at vet time. Flagged constructs:
//
//   - function literals (closure headers allocate when they capture
//     and escape; a hot path should use predeclared funcs or methods)
//   - any call into package fmt (all of fmt allocates)
//   - map and chan construction (literals or make)
//   - append into a slice declared in the function without capacity
//     (grows by reallocation on the steady-state path)
//   - interface boxing: passing, assigning, returning, or converting a
//     concrete non-pointer value where an interface is expected
//
// A guarded cold path inside a hot function (error construction behind
// an if that never runs in the steady state) is annotated with
// //repolint:allow alloc -- <why> rather than restructured, keeping the
// annotation next to the allocation it justifies.
var Hotpathalloc = &analysis.Analyzer{
	Name:     "hotpathalloc",
	Doc:      "reject allocating constructs in //repolint:hotpath functions (check: alloc)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotpathalloc,
}

func runHotpathalloc(pass *analysis.Pass) (any, error) {
	allows := CollectAllows(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || !isHotpath(decl) || isTestFile(pass.Fset, decl.Pos()) {
			return
		}
		checkHotBody(pass, allows, decl)
	})
	return nil, nil
}

// isHotpath reports whether the declaration's doc comment carries the
// //repolint:hotpath directive.
func isHotpath(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if name, _, ok := parseDirective(c.Text); ok && name == hotpathDirective {
			return true
		}
	}
	return false
}

func checkHotBody(pass *analysis.Pass, allows *Allows, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	body := decl.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			allows.Report(pass, n.Pos(), "alloc",
				"closure literal in hot path %s may allocate its header and captures", decl.Name.Name)
			return false // a closure's own body is not the annotated hot path
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					allows.Report(pass, n.Pos(), "alloc",
						"map literal allocates in hot path %s", decl.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, allows, decl, n)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				lt := info.TypeOf(n.Lhs[i])
				checkBoxing(pass, allows, decl, lt, rhs)
			}
		case *ast.ReturnStmt:
			sig, ok := info.Defs[decl.Name].(*types.Func)
			if !ok {
				break
			}
			results := sig.Type().(*types.Signature).Results()
			if len(n.Results) == results.Len() {
				for i, res := range n.Results {
					checkBoxing(pass, allows, decl, results.At(i).Type(), res)
				}
			}
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, allows *Allows, decl *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Conversion to an interface type: any(x) / error(x) / Iface(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			checkBoxing(pass, allows, decl, tv.Type, call.Args[0])
		}
		return
	}

	// Builtins: make(map/chan), un-presized append.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					if tv, ok := info.Types[call.Args[0]]; ok {
						switch tv.Type.Underlying().(type) {
						case *types.Map:
							allows.Report(pass, call.Pos(), "alloc",
								"make(map) allocates in hot path %s", decl.Name.Name)
						case *types.Chan:
							allows.Report(pass, call.Pos(), "alloc",
								"make(chan) allocates in hot path %s", decl.Name.Name)
						}
					}
				}
			case "append":
				if len(call.Args) > 0 {
					checkFreshAppend(pass, allows, decl, call.Args[0])
				}
			}
			return
		}
	}

	// fmt is wholesale off the hot path.
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		allows.Report(pass, call.Pos(), "alloc",
			"fmt.%s allocates in hot path %s", fn.Name(), decl.Name.Name)
		return
	}

	// Interface boxing at call arguments.
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkBoxing(pass, allows, decl, pt, arg)
	}
}

// checkBoxing reports when expr, of concrete non-pointer type, meets an
// interface-typed slot. Pointers, interfaces, nil, and functions fit in
// the interface word without copying the value to the heap.
func checkBoxing(pass *analysis.Pass, allows *Allows, decl *ast.FuncDecl, target types.Type, expr ast.Expr) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	at := pass.TypesInfo.TypeOf(expr)
	if at == nil {
		return
	}
	if tv, ok := pass.TypesInfo.Types[expr]; ok && (tv.IsNil() || tv.Value != nil) {
		// nil fits the interface word; constants (panic("…"), errors’
		// sentinel strings) get a static read-only representation from
		// the compiler and do not heap-allocate when boxed.
		return
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return
	case *types.Tuple:
		// Multi-value RHS (comma-ok assertion, multi-return): the
		// values were already interface-shaped or are handled at the
		// producing call.
		return
	}
	allows.Report(pass, expr.Pos(), "alloc",
		"%s value boxed into %s interface allocates in hot path %s", at, target, decl.Name.Name)
}

// checkFreshAppend reports appends whose destination slice was declared
// inside the annotated function without pre-sized capacity.
func checkFreshAppend(pass *analysis.Pass, allows *Allows, decl *ast.FuncDecl, dst ast.Expr) {
	id, ok := dst.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || obj.Pos() < decl.Body.Pos() || obj.Pos() > decl.Body.End() {
		return // parameter, receiver, or outer state: the caller sized it
	}
	if freshSlice(pass, decl.Body, obj) {
		allows.Report(pass, id.Pos(), "alloc",
			"append into %q, declared in hot path %s without capacity, grows by reallocation; pre-size with make(_, 0, n) or reuse a pooled slice", obj.Name(), decl.Name.Name)
	}
}

// freshSlice reports whether obj's declaration inside body carries no
// capacity: `var s []T`, `s := []T{}`, or `s := []T(nil)`. A
// `make([]T, n[, c])` or any other initializer is presumed sized.
func freshSlice(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	fresh := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.ObjectOf(name) != obj {
					continue
				}
				if len(n.Values) == 0 {
					fresh = true // var s []T
				} else if i < len(n.Values) {
					fresh = freshInitializer(pass, n.Values[i])
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.TypesInfo.Defs[id] != obj || i >= len(n.Rhs) {
					continue
				}
				fresh = freshInitializer(pass, n.Rhs[i])
			}
		}
		return !fresh
	})
	return fresh
}

// freshInitializer reports whether v initializes a slice with no
// usable capacity: []T{}, []T(nil), or nil.
func freshInitializer(pass *analysis.Pass, v ast.Expr) bool {
	switch v := v.(type) {
	case *ast.CompositeLit:
		return len(v.Elts) == 0
	case *ast.Ident:
		return v.Name == "nil"
	case *ast.CallExpr: // []T(nil) conversion
		if tv, ok := pass.TypesInfo.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			if inner, ok := pass.TypesInfo.Types[v.Args[0]]; ok && inner.IsNil() {
				return true
			}
		}
	}
	return false
}
