package repolint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Legacycodec flags references to the deprecated reflective codec entry
// points from production code outside internal/codec. Encode, Decode,
// and DecodeMessage predate the schema and MsgView planes: they walk
// dynamically typed Value trees and materialize every field on the
// heap, which is exactly the per-message cost the compiled-schema
// encoders and zero-copy views were built to remove. The functions stay
// exported for the reflective tooling surface (LTS exploration, test
// fixtures), so deprecation markers alone cannot stop new production
// call sites from creeping back in — this check does.
var Legacycodec = &analysis.Analyzer{
	Name:     "legacycodec",
	Doc:      "flag deprecated codec.Encode/Decode/DecodeMessage uses outside internal/codec (check: legacycodec)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runLegacycodec,
}

// codecPkgPath is the package whose deprecated surface this check
// guards; references from inside it (and its tests anywhere) stay
// legal.
const codecPkgPath = "repro/internal/codec"

// legacyCodecFuncs are the deprecated package-level entry points. The
// streaming and buffer-reuse forms (DecodePrefix, Append) are not
// legacy: they are the primitives the modern planes are built from.
var legacyCodecFuncs = map[string]string{
	"Encode":        "encode through a compiled schema (codec.CompileSchema + Encoder), or codec.Append for one-off dynamic values",
	"Decode":        "read through the zero-copy view plane (codec.ParseMessage / MsgView), or codec.DecodePrefix for streaming callers",
	"DecodeMessage": "call codec.ParseMessage and read fields through the MsgView, materializing with (MsgView).Message only where needed",
}

func runLegacycodec(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if path == codecPkgPath || strings.HasPrefix(path, codecPkgPath+"/") {
		return nil, nil
	}
	allows := CollectAllows(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if isTestFile(pass.Fset, sel.Pos()) {
			return // tests may exercise the deprecated surface directly
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != codecPkgPath {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return
		}
		hint, legacy := legacyCodecFuncs[fn.Name()]
		if !legacy {
			return
		}
		allows.Report(pass, sel.Pos(), "legacycodec",
			"codec.%s is deprecated; %s", fn.Name(), hint)
	})
	return nil, nil
}
