package repolint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Mapiter flags `range` over a map whose body feeds order-sensitive
// output — the exact class of bug that once made the fairness index
// depend on Go's randomized map iteration order until the sweep's
// byte-equality check caught it. Order-sensitive sinks are: appending
// to a slice declared outside the loop, accumulating into a float or
// string declared outside the loop (float addition is not associative;
// string concatenation is not commutative), calls that write or encode
// (io writers, fmt printing), and channel sends.
//
// An append sink is forgiven when the same slice is passed to a
// sort.* / slices.Sort* call later in the enclosing function — the
// collect-keys-then-sort idiom is the recommended fix, not a violation.
var Mapiter = &analysis.Analyzer{
	Name:     "mapiter",
	Doc:      "flag map iteration feeding ordered output without a subsequent sort (check: mapiter)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMapiter,
}

// writeMethods are method names whose call inside a map-range body is
// treated as emitting ordered output.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteAll": true, "Encode": true,
}

func runMapiter(pass *analysis.Pass) (any, error) {
	allows := CollectAllows(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rs := n.(*ast.RangeStmt)
		if isTestFile(pass.Fset, rs.Pos()) {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		body := enclosingFuncBody(stack)
		checkMapRangeBody(pass, allows, rs, body)
		return true
	})
	return nil, nil
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal on the stack, or nil at package scope.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

func checkMapRangeBody(pass *analysis.Pass, allows *Allows, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.TypesInfo
	declaredOutside := func(e ast.Expr) (types.Object, bool) {
		var obj types.Object
		switch e := e.(type) {
		case *ast.Ident:
			obj = info.ObjectOf(e)
		case *ast.SelectorExpr:
			obj = info.ObjectOf(e.Sel) // field or method target: lives outside by construction
		default:
			return nil, false
		}
		if obj == nil {
			return nil, false
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return obj, false // declared inside the loop: scoped per-iteration, order-safe
		}
		return obj, true
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(info, call) || i >= len(n.Lhs) {
						continue
					}
					obj, outside := declaredOutside(n.Lhs[i])
					if !outside {
						continue
					}
					if funcBody != nil && sortedAfter(pass, funcBody, rs.End(), obj) {
						continue
					}
					allows.Report(pass, n.Pos(), "mapiter",
						"append to %q inside a map range feeds ordered output in iteration order; sort it afterwards or iterate sorted keys", obj.Name())
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) != 1 {
					break
				}
				t := info.TypeOf(n.Lhs[0])
				if t == nil {
					break
				}
				b, ok := t.Underlying().(*types.Basic)
				if !ok || b.Info()&(types.IsFloat|types.IsString) == 0 {
					break // integer accumulation commutes exactly; floats and strings do not
				}
				if obj, outside := declaredOutside(n.Lhs[0]); outside {
					kind := "float"
					if b.Info()&types.IsString != 0 {
						kind = "string"
					}
					allows.Report(pass, n.Pos(), "mapiter",
						"%s accumulation into %q inside a map range depends on iteration order; iterate sorted keys", kind, obj.Name())
				}
			}
		case *ast.SendStmt:
			allows.Report(pass, n.Pos(), "mapiter",
				"channel send inside a map range publishes values in iteration order; iterate sorted keys")
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
					(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
					allows.Report(pass, n.Pos(), "mapiter",
						"fmt.%s inside a map range emits output in iteration order; iterate sorted keys", fn.Name())
				} else if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && writeMethods[fn.Name()] {
					allows.Report(pass, n.Pos(), "mapiter",
						"%s call inside a map range writes output in iteration order; iterate sorted keys", fn.Name())
				}
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// sortedAfter reports whether obj is passed to a sort.* or slices.Sort*
// call located after pos within body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		isSort := (fn.Pkg().Path() == "sort") ||
			(fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
