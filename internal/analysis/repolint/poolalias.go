package repolint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Poolalias enforces the pooled-buffer aliasing contracts documented in
// DESIGN.md §1.2–1.3 and at the top of internal/codec/view.go:
//
//   - A []byte received through a network.Handler or protocol.Receiver
//     parameter, a codec.Visitor method (Str/Bytes/Key), or a
//     codec.MsgView borrowing accessor (Name/Str/Bytes/Raw) aliases a
//     pooled delivery buffer. It is valid only until the function
//     returns, so it must not be stored in a struct field or global,
//     sent on a channel, captured by a goroutine closure, or returned —
//     retain with an explicit copy (append/copy/string). Check:
//     poolalias.
//   - Every codec.GetBuffer result must reach a Release on some path in
//     the same function, or be handed off (passed, stored, returned,
//     sent, or captured — APIs that receive a *codec.Buffer take
//     ownership). A buffer that is neither released nor handed off is
//     leaked from the pool. Check: bufleak.
//
// The analysis is function-local and deliberately conservative: it
// reports only retention through the specific sinks above, so a clean
// report is not a proof, but every report is a contract violation (or
// carries an //repolint:allow with its justification).
var Poolalias = &analysis.Analyzer{
	Name:     "poolalias",
	Doc:      "enforce pooled-buffer aliasing contracts: no retention of borrowed []byte, GetBuffer must be released or handed off (checks: poolalias, bufleak)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runPoolalias,
}

// Paths of the packages whose types define the borrowing contracts.
const (
	codecPath    = "repro/internal/codec"
	networkPath  = "repro/internal/network"
	protocolPath = "repro/internal/protocol"
)

// msgViewBorrowers are the MsgView accessors documented to return
// slices aliasing the input buffer (the materializing accessors
// Record/Value/Message copy and are exempt).
var msgViewBorrowers = map[string]bool{
	"Name": true, "Str": true, "Bytes": true, "Raw": true,
}

// visitorBorrowMethods are the codec.Visitor methods whose []byte
// argument aliases the input buffer.
var visitorBorrowMethods = map[string]bool{
	"Str": true, "Bytes": true, "Key": true,
}

func runPoolalias(pass *analysis.Pass) (any, error) {
	allows := CollectAllows(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var sig *types.Signature
		var funcName string
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				sig, _ = obj.Type().(*types.Signature)
			}
			funcName = fn.Name.Name
		case *ast.FuncLit:
			body = fn.Body
			sig, _ = pass.TypesInfo.TypeOf(fn).(*types.Signature)
		}
		if body == nil || sig == nil || isTestFile(pass.Fset, n.Pos()) {
			return
		}
		borrowed := borrowedParams(sig, funcName)
		collectViewBorrows(pass, body, borrowed)
		if len(borrowed) > 0 {
			checkRetention(pass, allows, body, borrowed)
		}
		checkBufferLeaks(pass, allows, body)
	})
	return nil, nil
}

// borrowedParams returns the []byte parameter objects of fn when its
// signature is one of the borrowing callback shapes:
//
//	func(src network.NodeID, payload []byte)   — network.Handler
//	func(src protocol.Addr, pdu []byte)        — protocol.Receiver
//	method Str/Bytes/Key([]byte) error         — codec.Visitor
//
// Matching is structural (parameter types, not the named function
// type), so implementations are caught wherever they are declared.
func borrowedParams(sig *types.Signature, name string) map[types.Object]bool {
	borrowed := make(map[types.Object]bool)
	p := sig.Params()
	handlerShape := p.Len() == 2 && sig.Results().Len() == 0 && isByteSlice(p.At(1).Type()) &&
		(isNamed(p.At(0).Type(), networkPath, "NodeID") || isNamed(p.At(0).Type(), protocolPath, "Addr"))
	visitorShape := sig.Recv() != nil && visitorBorrowMethods[name] &&
		p.Len() == 1 && isByteSlice(p.At(0).Type()) &&
		sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type())
	if handlerShape {
		borrowed[p.At(1)] = true
	}
	if visitorShape {
		borrowed[p.At(0)] = true
	}
	// Also mark SlotHandler-shaped callbacks: func(src network.Slot, payload []byte).
	if p.Len() == 2 && sig.Results().Len() == 0 && isByteSlice(p.At(1).Type()) && isNamed(p.At(0).Type(), networkPath, "Slot") {
		borrowed[p.At(1)] = true
	}
	return borrowed
}

// collectViewBorrows adds objects bound to the result of a borrowing
// MsgView accessor call: `b, ok := view.Str("x")` marks b. Nested
// function literals are skipped — each literal gets its own analysis
// visit with its own borrow set.
func collectViewBorrows(pass *analysis.Pass, body *ast.BlockStmt, borrowed map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || !msgViewBorrowers[fn.Name()] {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !isNamed(deref(sig.Recv().Type()), codecPath, "MsgView") {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				borrowed[obj] = true
			}
		}
		return true
	})
}

// checkRetention reports each sink through which a borrowed []byte
// escapes the function without a copy.
func checkRetention(pass *analysis.Pass, allows *Allows, body *ast.BlockStmt, borrowed map[types.Object]bool) {
	refersToBorrowed := func(e ast.Expr) (types.Object, bool) {
		return findBorrowedRef(pass.TypesInfo, e, borrowed)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				obj, ok := refersToBorrowed(rhs)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					allows.Report(pass, n.Pos(), "poolalias",
						"%q aliases a pooled delivery buffer and must not be stored in field %q; retain with an explicit copy (append/copy/string)", obj.Name(), lhs.Sel.Name)
				case *ast.Ident:
					if v, ok := pass.TypesInfo.ObjectOf(lhs).(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
						allows.Report(pass, n.Pos(), "poolalias",
							"%q aliases a pooled delivery buffer and must not be stored in package variable %q; retain with an explicit copy", obj.Name(), v.Name())
					}
				case *ast.IndexExpr:
					allows.Report(pass, n.Pos(), "poolalias",
						"%q aliases a pooled delivery buffer and must not be stored in a container; retain with an explicit copy", obj.Name())
				}
			}
		case *ast.SendStmt:
			if obj, ok := refersToBorrowed(n.Value); ok {
				allows.Report(pass, n.Pos(), "poolalias",
					"%q aliases a pooled delivery buffer and must not be sent on a channel; retain with an explicit copy", obj.Name())
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj, ok := refersToBorrowed(res); ok {
					allows.Report(pass, n.Pos(), "poolalias",
						"%q aliases a pooled delivery buffer and must not be returned; retain with an explicit copy", obj.Name())
				}
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if obj, ok := refersToBorrowed(arg); ok {
					allows.Report(pass, n.Pos(), "poolalias",
						"%q aliases a pooled delivery buffer and must not be passed to a goroutine; retain with an explicit copy", obj.Name())
				}
			}
		case *ast.FuncLit:
			// A closure capturing a borrowed slice may run after the
			// buffer is recycled. The immediately-invoked form
			// func(){...}() runs before return and is exempted by the
			// caller check below; anything else is a retention risk.
			if isIIFE(body, n) {
				return true
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil && borrowed[obj] {
					allows.Report(pass, id.Pos(), "poolalias",
						"%q aliases a pooled delivery buffer and must not be captured by an escaping closure; retain with an explicit copy", obj.Name())
				}
				return true
			})
			return false // reported once; don't re-descend via outer walk sinks
		}
		return true
	})
}

// findBorrowedRef reports whether expr references a borrowed object
// outside of a sanctioned copying construct. Occurrences inside
// append(dst, b...) spread position, copy(dst, b), string(b), and
// scalar element reads b[i] are copies and do not count; append(dst, b)
// without the ellipsis stores the slice header itself and does.
func findBorrowedRef(info *types.Info, expr ast.Expr, borrowed map[types.Object]bool) (types.Object, bool) {
	var found types.Object
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "append":
						// append(dst, b...) spreads b's bytes into dst:
						// a copy. append(b, x) aliases b's array, and
						// append(dst, b) (element append, e.g. into a
						// [][]byte) stores the header: both alias.
						if n.Ellipsis.IsValid() && len(n.Args) > 0 {
							ast.Inspect(n.Args[0], walk)
							return false
						}
					case "copy", "len", "cap":
						return false
					}
				}
			}
			// string(b) conversion copies.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return false
				}
			}
		case *ast.IndexExpr:
			// b[i] reads one element by value: not an alias. (A
			// sub-slice b[i:j] is a SliceExpr and still aliases.)
			if id, ok := n.X.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && borrowed[obj] {
					return false
				}
			}
		case *ast.Ident:
			if obj := info.ObjectOf(n); obj != nil && borrowed[obj] {
				found = obj
			}
		}
		return true
	}
	ast.Inspect(expr, walk)
	return found, found != nil
}

// isIIFE reports whether lit is immediately invoked — the callee of a
// plain call expression within body. A `go func(){…}()` does not
// count: it runs after the caller may have returned the buffer.
// A `defer func(){…}()` does: defers run before the function hands
// control (and the buffer) back to its caller.
func isIIFE(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		return true
	})
	iife := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == lit && !goCalls[call] {
			iife = true
		}
		return !iife
	})
	return iife
}

// checkBufferLeaks reports codec.GetBuffer results that are neither
// released nor handed off anywhere in the function. Nested function
// literals are skipped — each gets its own analysis visit.
func checkBufferLeaks(pass *analysis.Pass, allows *Allows, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isPkgFunc(info, call, codecPath, "GetBuffer") {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			allows.Report(pass, as.Pos(), "bufleak",
				"result of codec.GetBuffer is discarded and can never be released")
			return true
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if !releasedOrHandedOff(info, body, as, obj) {
			allows.Report(pass, as.Pos(), "bufleak",
				"%q from codec.GetBuffer is neither released nor handed off in this function; add %s.Release() (deferred, or on every path) or pass the buffer to an owner", id.Name, id.Name)
		}
		return true
	})
}

// releasedOrHandedOff scans the function body after the GetBuffer
// assignment for a Release call on obj, or any construct that moves
// the buffer out of this function's hands: appearing in a call
// argument, return value, channel send, closure body, or the
// right-hand side of an assignment to anything other than the buffer's
// own fields. Self-mutation (`buf.B = append(buf.B[:0], …)`) is the
// normal fill pattern and does not count as a handoff, so a buffer
// that is acquired, filled, and then forgotten is still reported.
func releasedOrHandedOff(info *types.Info, body *ast.BlockStmt, get *ast.AssignStmt, obj types.Object) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok || (n != nil && n.End() <= get.End()) {
			return !ok
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, isSel := n.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Release" {
				if id, isID := sel.X.(*ast.Ident); isID && info.ObjectOf(id) == obj {
					ok = true
					return false
				}
			}
			for _, arg := range n.Args {
				if identUnder(info, arg, obj) {
					ok = true // buffer (or its bytes) given to a callee or builtin
					return false
				}
			}
		case *ast.ReturnStmt, *ast.SendStmt:
			if identUnder(info, n, obj) {
				ok = true
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !identUnder(info, rhs, obj) {
					continue
				}
				if i < len(n.Lhs) && isFieldOf(info, n.Lhs[i], obj) {
					// buf.B = …: filling the buffer, not moving it.
					// Keep scanning, but do not descend into this
					// statement (the RHS references obj by design).
					continue
				}
				ok = true // stored somewhere else: ownership moved
				return false
			}
			if identUnder(info, n, obj) {
				// Only self-mutations reference obj here; skip the
				// subtree so the RHS call doesn't read as a handoff.
				selfOnly := true
				for i := range n.Rhs {
					if identUnder(info, n.Rhs[i], obj) && (i >= len(n.Lhs) || !isFieldOf(info, n.Lhs[i], obj)) {
						selfOnly = false
					}
				}
				if selfOnly {
					return false
				}
			}
		case *ast.FuncLit:
			if identUnder(info, n.Body, obj) {
				ok = true // captured: the closure owns the release
				return false
			}
			return false
		}
		return true
	})
	return ok
}

// isFieldOf reports whether e is a selector (or index/slice of a
// selector) rooted at obj, e.g. buf.B or buf.B[:0].
func isFieldOf(info *types.Info, e ast.Expr, obj types.Object) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				return info.ObjectOf(id) == obj
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// identUnder reports whether any identifier below n resolves to obj.
func identUnder(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// --- small type helpers shared by the suite ---

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isNamed reports whether t (or its alias target) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func isErrorType(t types.Type) bool {
	return t.String() == "error"
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}
