package repolint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Simdeterminism forbids wall-clock time, ambient process randomness,
// and environment reads inside the deterministic packages. Everything
// those packages compute must be a pure function of the scenario
// parameters and the kernel seed — that is what makes the 120-scenario
// sweep CSV byte-identical at any worker count. Simulated time comes
// from sim.Kernel.Now; randomness from the kernel-seeded *rand.Rand.
var Simdeterminism = &analysis.Analyzer{
	Name:     "simdeterminism",
	Doc:      "forbid wall-clock, ambient randomness, and env reads in deterministic packages (checks: wallclock, globalrand, env)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runSimdeterminism,
}

// deterministicPkgs are the packages whose outputs feed the
// byte-deterministic sweep. Matched on the import path itself or any
// subpackage of it.
var deterministicPkgs = []string{
	"repro/internal/sim",
	"repro/internal/protocol",
	"repro/internal/network",
	"repro/internal/fault",
	"repro/internal/middleware",
	"repro/internal/svc",
	"repro/internal/floorcontrol",
	"repro/internal/mda",
	"repro/internal/runner",
	"repro/internal/metrics",
}

func isDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// wallclockFuncs are the package time functions that read or depend on
// the process clock. Pure construction and arithmetic (time.Duration,
// time.Unix, ParseDuration, …) stay legal.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors are the math/rand and math/rand/v2 package functions
// that build an explicitly seeded generator rather than drawing from
// the ambient one; they are the only package-level rand functions the
// deterministic packages may call.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// envFuncs are the os functions that read ambient process environment.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

func runSimdeterminism(pass *analysis.Pass) (any, error) {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	allows := CollectAllows(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if isTestFile(pass.Fset, sel.Pos()) {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // methods (e.g. (*rand.Rand).Intn) are fine: the receiver carries the seed
		}
		name := fn.Name()
		switch fn.Pkg().Path() {
		case "time":
			if wallclockFuncs[name] {
				allows.Report(pass, sel.Pos(), "wallclock",
					"time.%s reads the wall clock in deterministic package %s; use the sim kernel clock (sim.Kernel.Now / Schedule)", name, pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if !randConstructors[name] {
				allows.Report(pass, sel.Pos(), "globalrand",
					"%s.%s draws from ambient process randomness in deterministic package %s; use the kernel-seeded *rand.Rand (sim.Kernel.Rand)", fn.Pkg().Path(), name, pass.Pkg.Path())
			}
		case "os":
			if envFuncs[name] {
				allows.Report(pass, sel.Pos(), "env",
					"os.%s reads ambient environment in deterministic package %s; thread configuration through scenario parameters", name, pass.Pkg.Path())
			}
		}
	})
	return nil, nil
}
