// Package allowdecl is golden test data for the allowcheck analyzer:
// the //repolint: directives themselves are validated, so a typo fails
// the build instead of silently suppressing nothing.
package allowdecl

func directives() {
	x := 1
	_ = x //repolint:allow wallclck -- typo'd check name; want `unknown repolint check "wallclck"`
	_ = x //repolint:allow -- names nothing; want `repolint:allow directive names no checks`
	_ = x //repolint:frobnicate want `unknown repolint directive "frobnicate"`
	//repolint:hotpath is dead here; want `only effective in the doc comment of a function declaration`
	_ = x //repolint:allow mapiter -- a valid directive draws no diagnostic
}

// annotated carries the hotpath directive where it is live: in a
// function declaration's doc comment. No diagnostic.
//
//repolint:hotpath
func annotated() {}

//repolint:allow allowdecl -- the validator's own diagnostics are suppressible too
//repolint:bogus
func suppressed() {}
