// Package free is golden test data for the simdeterminism analyzer's
// scoping: its import path is outside the deterministic set, so the
// very constructs flagged in repro/internal/sim are legal here and the
// analyzer must stay silent.
package free

import (
	"math/rand"
	"os"
	"time"
)

func unconstrained() {
	_ = time.Now()
	_ = rand.Intn(4)
	_ = os.Getenv("HOME")
}
