// Package hot is golden test data for the hotpathalloc analyzer:
// allocating constructs inside //repolint:hotpath functions.
package hot

import "fmt"

//repolint:hotpath
func hotMapLit() map[int]bool {
	return map[int]bool{} // want `alloc: map literal allocates in hot path hotMapLit`
}

//repolint:hotpath
func hotMakeMap() map[int]bool {
	return make(map[int]bool) // want `alloc: make\(map\) allocates in hot path hotMakeMap`
}

//repolint:hotpath
func hotMakeChan() chan int {
	return make(chan int, 1) // want `alloc: make\(chan\) allocates in hot path hotMakeChan`
}

//repolint:hotpath
func hotClosure(x int) func() int {
	f := func() int { return x } // want `alloc: closure literal in hot path hotClosure`
	return f
}

//repolint:hotpath
func hotFmt(x int) string {
	return fmt.Sprint(x) // want `alloc: fmt\.Sprint allocates in hot path hotFmt`
}

//repolint:hotpath
func hotAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `alloc: append into "out", declared in hot path hotAppend without capacity`
	}
	return out
}

// hotAppendSized pre-sizes the destination: append never reallocates on
// the steady-state path, so no diagnostic.
//
//repolint:hotpath
func hotAppendSized(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// hotAppendParam appends into a caller-provided slice: the caller sized
// it, so no diagnostic.
//
//repolint:hotpath
func hotAppendParam(dst []byte, x byte) []byte {
	return append(dst, x)
}

//repolint:hotpath
func hotBoxReturn(x int) any {
	return x // want `alloc: int value boxed into .* interface allocates in hot path hotBoxReturn`
}

//repolint:hotpath
func hotBoxAssign(x int) {
	var i interface{}
	i = x // want `alloc: int value boxed into .* interface allocates in hot path hotBoxAssign`
	_ = i
}

//repolint:hotpath
func hotBoxConvert(x int) any {
	return any(x) // want `alloc: int value boxed into .* interface allocates in hot path hotBoxConvert`
}

type point struct{ x, y int }

// hotPointer: a pointer fits in the interface word without copying the
// value to the heap, so no diagnostic.
//
//repolint:hotpath
func hotPointer(p *point) any {
	return p
}

// cold is not annotated: the same constructs are legal here.
func cold(xs []int) []int {
	var out []int
	m := map[int]bool{}
	for _, x := range xs {
		out = append(out, x)
		m[x] = true
	}
	_ = fmt.Sprint(len(m))
	return out
}

//repolint:hotpath
func hotSuppressed(x int) any {
	return x //repolint:allow alloc -- cold error path; golden test of the escape hatch
}

//repolint:hotpath
func hotWrongAllow(x int) any {
	return x //repolint:allow mapiter -- the wrong check must not mask this; want `alloc: int value boxed`
}
