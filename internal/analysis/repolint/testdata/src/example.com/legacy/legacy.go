// Package legacy is golden test data for the legacycodec analyzer:
// calls to the deprecated reflective codec entry points next to the
// modern planes that replace them, function-value references, and an
// //repolint:allow suppression.
package legacy

import (
	"repro/internal/codec"
)

func encodeLegacy(v codec.Value) ([]byte, error) {
	return codec.Encode(v) // want `legacycodec: codec.Encode is deprecated; encode through a compiled schema`
}

func decodeLegacy(data []byte) (codec.Value, error) {
	return codec.Decode(data) // want `legacycodec: codec.Decode is deprecated; read through the zero-copy view plane`
}

func parseLegacy(data []byte) (codec.Message, error) {
	return codec.DecodeMessage(data) // want `legacycodec: codec.DecodeMessage is deprecated; call codec.ParseMessage`
}

// funcValue proves references are flagged, not just direct calls: a
// stored function value escapes the same deprecated surface.
var funcValue = codec.DecodeMessage // want `legacycodec: codec.DecodeMessage is deprecated`

// modernPlanes exercises the nearest true negatives: the streaming and
// buffer-reuse primitives the modern planes are built from draw no
// diagnostics.
func modernPlanes(buf, data []byte, v codec.Value) {
	buf, _ = codec.Append(buf, v)
	_, _, _ = codec.DecodePrefix(data)
	_, _ = codec.ParseMessage(buf)
}

// allowed shows the suppression path for the one legitimate production
// use (reflective tooling that genuinely needs dynamic values).
func allowed(data []byte) (codec.Value, error) {
	return codec.Decode(data) //repolint:allow legacycodec -- reflective tooling needs the dynamic tree
}
