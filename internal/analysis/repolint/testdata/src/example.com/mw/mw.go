// Package mw is golden test data for the poolalias analyzer: handlers,
// visitors, and MsgView consumers that retain borrowed []byte slices,
// next to the copy idioms that legalize retention, and GetBuffer
// acquisitions that leak, release, or hand off.
package mw

import (
	"repro/internal/codec"
	"repro/internal/network"
	"repro/internal/protocol"
)

type sink struct {
	last []byte
	note string
	ch   chan []byte
	m    map[string][]byte
}

var lastSeen []byte

func (s *sink) storeField(src network.NodeID, payload []byte) {
	s.last = payload // want `poolalias: "payload" aliases a pooled delivery buffer and must not be stored in field "last"`
}

func storeGlobal(src network.NodeID, payload []byte) {
	lastSeen = payload // want `poolalias: "payload" .* must not be stored in package variable "lastSeen"`
}

func (s *sink) storeContainer(src network.NodeID, payload []byte) {
	s.m[string(src)] = payload // want `poolalias: "payload" .* must not be stored in a container`
}

func (s *sink) publish(src protocol.Addr, pdu []byte) {
	s.ch <- pdu // want `poolalias: "pdu" .* must not be sent on a channel`
}

func spawn(src network.NodeID, payload []byte) {
	go consume(payload) // want `poolalias: "payload" .* must not be passed to a goroutine`
}

func consume(b []byte) {}

var callbacks []func()

func register(f func()) { callbacks = append(callbacks, f) }

func (s *sink) capture(src network.NodeID, payload []byte) {
	register(func() {
		s.last = payload // want `poolalias: "payload" .* must not be captured by an escaping closure`
	})
}

// inline: an immediately-invoked literal runs before the handler
// returns, while the buffer is still valid — exempt.
func (s *sink) inline(src network.NodeID, payload []byte) {
	n := 0
	func() { n = len(payload) }()
	_ = n
}

// keep shows every sanctioned retention idiom: spread-append copy,
// string conversion, and scalar element reads.
func (s *sink) keep(src network.NodeID, payload []byte) {
	s.last = append([]byte(nil), payload...)
	s.note = string(payload)
	n := len(payload)
	first := payload[0]
	_, _ = n, first
}

// onSlot covers the dense-plane SlotHandler shape, and the
// element-append form append(dst, b) that stores the slice header.
var slotSeen [][]byte

func onSlot(src network.Slot, payload []byte) {
	slotSeen = append(slotSeen, payload) // want `poolalias: "payload" .* must not be stored in package variable "slotSeen"`
}

// firstName borrows from a MsgView accessor and returns the alias.
func firstName(v *codec.MsgView) []byte {
	b, _ := v.Str("name")
	return b // want `poolalias: "b" .* must not be returned`
}

// collector implements the codec.Visitor borrowing methods.
type collector struct {
	keys [][]byte
	key  []byte
	n    int
}

func (c *collector) Str(b []byte) error {
	c.keys = append(c.keys, b) // want `poolalias: "b" .* must not be stored in field "keys"`
	return nil
}

func (c *collector) Bytes(b []byte) error {
	c.n += len(b)
	return nil
}

func (c *collector) Key(b []byte) error {
	c.key = append(c.key[:0], b...)
	return nil
}

func (s *sink) allowed(src network.NodeID, payload []byte) {
	s.last = payload //repolint:allow poolalias -- caller consumes synchronously; golden test of the escape hatch
}

// --- bufleak ---

func leak() {
	buf := codec.GetBuffer() // want `bufleak: "buf" from codec\.GetBuffer is neither released nor handed off`
	buf.B = append(buf.B[:0], 'x')
}

func releases() {
	buf := codec.GetBuffer()
	defer buf.Release()
	buf.B = append(buf.B[:0], 'x')
}

func handsOff(send func(*codec.Buffer)) {
	buf := codec.GetBuffer()
	buf.B = append(buf.B[:0], 'y')
	send(buf)
}

type pending struct{ buf *codec.Buffer }

var inflight []pending

func storesOwner() {
	buf := codec.GetBuffer()
	inflight = append(inflight, pending{buf: buf})
}

func discards() {
	_ = codec.GetBuffer() // want `bufleak: result of codec\.GetBuffer is discarded`
}

func suppressedLeak() {
	buf := codec.GetBuffer() //repolint:allow bufleak -- released by the test harness; golden test of the escape hatch
	buf.B = buf.B[:0]
}
