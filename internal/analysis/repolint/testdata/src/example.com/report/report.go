// Package report is golden test data for the mapiter analyzer: range
// over a map feeding ordered output (slice appends, float/string
// accumulation, writes, prints, channel sends) without a subsequent
// sort.
package report

import (
	"fmt"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `mapiter: append to "out" inside a map range`
	}
	return out
}

// goodSortedAfter is the sanctioned collect-then-sort idiom: the append
// inside the range is forgiven because the slice is sorted afterwards.
func goodSortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `mapiter: float accumulation into "sum"`
	}
	return sum
}

func badString(m map[string]string) string {
	s := ""
	for _, v := range m {
		s += v // want `mapiter: string accumulation into "s"`
	}
	return s
}

// goodInt: integer accumulation commutes exactly, so iteration order
// cannot change the result.
func goodInt(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// goodLocal: a per-iteration accumulator is scoped to one key and
// order-safe.
func goodLocal(m map[string]float64) {
	for _, v := range m {
		x := 0.0
		x += v
		_ = x
	}
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `mapiter: fmt\.Println inside a map range`
	}
}

func badWrite(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `mapiter: WriteString call inside a map range`
	}
}

func badSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `mapiter: channel send inside a map range`
	}
}

// goodSlice: ranging a slice is ordered; only map ranges are flagged.
func goodSlice(xs []int, ch chan int) {
	for _, v := range xs {
		ch <- v
	}
}

func suppressed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //repolint:allow mapiter -- order is irrelevant in this debug dump
	}
}
