// Package codec is a type stub for the poolalias golden tests: the
// pooled Buffer with its Release contract and the borrowing MsgView
// accessors, signature-compatible with the real package.
package codec

// Buffer is a pooled byte buffer.
type Buffer struct{ B []byte }

// GetBuffer acquires a buffer from the pool.
func GetBuffer() *Buffer { return &Buffer{} }

// Release returns the buffer to the pool.
func (b *Buffer) Release() {}

// MsgView is a zero-copy view over an encoded message.
type MsgView struct{ raw []byte }

// Name returns the message name, aliasing the input buffer.
func (v *MsgView) Name() []byte { return v.raw }

// Str returns a string field's bytes, aliasing the input buffer.
func (v *MsgView) Str(field string) ([]byte, bool) { return v.raw, true }

// Bytes returns a bytes field, aliasing the input buffer.
func (v *MsgView) Bytes(field string) ([]byte, bool) { return v.raw, true }

// Raw returns the field's raw encoding, aliasing the input buffer.
func (v *MsgView) Raw(field string) ([]byte, bool) { return v.raw, true }

// Value is the dynamically typed value the legacy plane traffics in.
type Value = any

// Message is a materialized name + fields pair.
type Message struct{ Name string }

// Encode returns the canonical encoding of v.
//
// Deprecated: stub of the deprecated reflective encoder.
func Encode(v Value) ([]byte, error) { return nil, nil }

// Decode decodes exactly one value.
//
// Deprecated: stub of the deprecated reflective decoder.
func Decode(data []byte) (Value, error) { return nil, nil }

// DecodeMessage parses a wire-form message.
//
// Deprecated: stub of the deprecated materializing parser.
func DecodeMessage(data []byte) (Message, error) { return Message{}, nil }

// Append encodes v into buf; it is a modern primitive, not legacy.
func Append(buf []byte, v Value) ([]byte, error) { return buf, nil }

// DecodePrefix decodes one value from the front of data; modern.
func DecodePrefix(data []byte) (Value, int, error) { return nil, 0, nil }

// ParseMessage returns a zero-copy view; the modern read plane.
func ParseMessage(data []byte) (MsgView, error) { return MsgView{}, nil }

// roundTrip exercises the deprecated surface from inside the package
// itself: the legacycodec scope test runs on this package and expects
// no diagnostics (internal/codec implements the legacy plane, so its
// own references are definitionally legal).
func roundTrip(v Value) (Value, error) {
	b, err := Encode(v)
	if err != nil {
		return nil, err
	}
	if _, err := DecodeMessage(b); err != nil {
		return nil, err
	}
	return Decode(b)
}
