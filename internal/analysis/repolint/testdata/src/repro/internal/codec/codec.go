// Package codec is a type stub for the poolalias golden tests: the
// pooled Buffer with its Release contract and the borrowing MsgView
// accessors, signature-compatible with the real package.
package codec

// Buffer is a pooled byte buffer.
type Buffer struct{ B []byte }

// GetBuffer acquires a buffer from the pool.
func GetBuffer() *Buffer { return &Buffer{} }

// Release returns the buffer to the pool.
func (b *Buffer) Release() {}

// MsgView is a zero-copy view over an encoded message.
type MsgView struct{ raw []byte }

// Name returns the message name, aliasing the input buffer.
func (v *MsgView) Name() []byte { return v.raw }

// Str returns a string field's bytes, aliasing the input buffer.
func (v *MsgView) Str(field string) ([]byte, bool) { return v.raw, true }

// Bytes returns a bytes field, aliasing the input buffer.
func (v *MsgView) Bytes(field string) ([]byte, bool) { return v.raw, true }

// Raw returns the field's raw encoding, aliasing the input buffer.
func (v *MsgView) Raw(field string) ([]byte, bool) { return v.raw, true }
