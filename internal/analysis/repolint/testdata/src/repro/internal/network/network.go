// Package network is a type stub for the poolalias golden tests: it
// declares just the names the analyzer matches structurally.
package network

// NodeID identifies a node.
type NodeID string

// Slot is a dense node index.
type Slot int32

// Handler receives a datagram; payload aliases a pooled buffer.
type Handler func(src NodeID, payload []byte)

// SlotHandler is the dense-plane variant of Handler.
type SlotHandler func(src Slot, payload []byte)
