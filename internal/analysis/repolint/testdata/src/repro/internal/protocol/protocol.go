// Package protocol is a type stub for the poolalias golden tests.
package protocol

// Addr addresses a protocol endpoint.
type Addr struct{ Node string }

// Receiver receives a PDU; pdu aliases a pooled buffer.
type Receiver func(src Addr, pdu []byte)
