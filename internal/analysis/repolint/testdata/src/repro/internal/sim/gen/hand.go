// Package gen is golden test data for the generated-file exemption:
// the sibling file carries a "Code generated" marker and is skipped
// wholesale; this hand-written file is checked as usual.
package gen

import "time"

func handViolation() time.Time {
	return time.Now() // want `wallclock: time\.Now reads the wall clock`
}
