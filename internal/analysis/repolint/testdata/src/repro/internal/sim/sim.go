// Package sim is golden test data for the simdeterminism analyzer: it
// carries the import path of a deterministic package, so wall-clock,
// ambient-randomness, and environment reads must all be reported.
package sim

import (
	"math/rand"
	"os"
	"time"
)

func violations() {
	_ = time.Now()               // want `wallclock: time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `wallclock: time\.Sleep reads the wall clock`
	_ = rand.Intn(4)             // want `globalrand: math/rand\.Intn draws from ambient process randomness`
	_ = os.Getenv("SEED")        // want `env: os\.Getenv reads ambient environment`
	_, _ = os.LookupEnv("SEED")  // want `env: os\.LookupEnv reads ambient environment`
}

// legal exercises the constructs the analyzer must NOT flag: pure time
// arithmetic, explicitly seeded generators, and methods on them.
func legal(d time.Duration) time.Duration {
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(4)
	u := time.Unix(0, d.Nanoseconds())
	return u.Sub(time.Unix(0, 0))
}

func suppressed() {
	_ = time.Now() //repolint:allow wallclock -- golden test of the trailing escape hatch
	//repolint:allow wallclock -- a standalone directive covers the next line
	_ = time.Now()
	_ = time.Now() // want `wallclock: time\.Now` -- two lines below the standalone directive: not covered
	_ = time.Now() //repolint:allow env -- the wrong check name must not mask this; want `wallclock: time\.Now`
}
