// Package bandfile implements the scenario-band file format: the
// declarative face of the sweep bands cmd/sweep runs. Where internal/sdl
// makes the service definition a data file, bandfile does the same for
// the experiment matrix — a .band file names the swept dimensions and
// the runner expands it to the exact scenario list the built-in band
// constructors produce.
//
// A band file holds one or more band blocks:
//
//	band default {
//	  description "headline sweep: every solution under loss and fan-out"
//	  kind matrix
//	  solutions all
//	  clients 2, 8, 32
//	  loss 0, 0.01, 0.05, 0.1
//	  cycles 6
//	}
//
//	band churn {
//	  kind churn
//	  crash 0.5, 2, 5
//	  mttr 50 ms, 200 ms, 500 ms
//	  rebind auto
//	}
//
// Matrix bands sweep solutions × clients × resources × loss; churn bands
// sweep solutions × rebind policy × crash rate × MTTR. Statements that
// only make sense for churn bands (crash, mttr, rebind, deadline) are
// rejected in matrix bands at parse time, mirroring cmd/sweep's flag
// guard. Comments run from '#' or '//' to end of line. Durations are
// "<number> <unit>" with unit us, ms, or s, as in the service definition
// language.
//
// Parse checks form (grammar, duplicate statements, duplicate band
// names); value semantics (positive counts, loss in [0,1), known
// solution names) are checked by the consumer, runner.BandFileScenarios,
// with the same rules the cmd/sweep dimension flags enforce.
package bandfile

import (
	"fmt"
	"math"
	"strconv"
	"time"
	"unicode"
)

// Band kinds.
const (
	KindMatrix = "matrix"
	KindChurn  = "churn"
)

// RebindAuto is the rebind sentinel: no-rebind for every solution plus
// failover for the solutions that support it.
const RebindAuto = "auto"

// File is a parsed band file.
type File struct {
	Bands []Band
}

// Band is one parsed band block. Nil dimension slices mean "defaulted":
// the expander substitutes the same defaults the built-in band
// constructors use.
type Band struct {
	Name        string
	Description string
	// Kind is KindMatrix or KindChurn; an omitted kind statement means
	// matrix.
	Kind string
	// Solutions is nil for "all".
	Solutions []string
	Clients   []int
	Resources []int
	Loss      []float64
	Cycles    int
	// Churn-only dimensions.
	Crash  []float64
	MTTR   []time.Duration
	Rebind []string
	// Deadline is the churn acquire deadline; zero means the band
	// default.
	Deadline time.Duration
}

// SyntaxError reports a lexical or parse error with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("bandfile: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLBrace
	tokRBrace
	tokComma
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer tokenizes band-file source.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *lexer) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for {
		c, ok := l.peekByte()
		if !ok || c == '\n' {
			return
		}
		l.advance()
	}
}

// isIdentRune matches identifier constituents; dashes keep solution
// names ("mw-token") natural.
func isIdentRune(c byte, first bool) bool {
	r := rune(c)
	if unicode.IsLetter(r) || c == '_' {
		return true
	}
	if first {
		return false
	}
	return unicode.IsDigit(r) || c == '-'
}

func (l *lexer) next() (token, *SyntaxError) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	switch c {
	case '{':
		l.advance()
		return token{tokLBrace, "{", line, col}, nil
	case '}':
		l.advance()
		return token{tokRBrace, "}", line, col}, nil
	case ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case '"':
		return l.lexString(line, col)
	}
	if c >= '0' && c <= '9' {
		return l.lexNumber(line, col)
	}
	if isIdentRune(c, true) {
		return l.lexIdent(line, col)
	}
	return token{}, l.errorf("unexpected character %q", rune(c))
}

func (l *lexer) lexString(line, col int) (token, *SyntaxError) {
	l.advance() // opening quote
	start := l.pos
	for {
		c, ok := l.peekByte()
		if !ok || c == '\n' {
			return token{}, &SyntaxError{Line: line, Col: col, Msg: "unterminated string"}
		}
		l.advance()
		if c == '"' {
			return token{tokString, l.src[start : l.pos-1], line, col}, nil
		}
	}
}

// lexNumber scans an unsigned decimal with an optional fraction
// ("32", "0.01").
func (l *lexer) lexNumber(line, col int) (token, *SyntaxError) {
	start := l.pos
	for {
		c, ok := l.peekByte()
		if !ok || c < '0' || c > '9' {
			break
		}
		l.advance()
	}
	if c, ok := l.peekByte(); ok && c == '.' {
		l.advance()
		digits := 0
		for {
			c, ok := l.peekByte()
			if !ok || c < '0' || c > '9' {
				break
			}
			l.advance()
			digits++
		}
		if digits == 0 {
			return token{}, &SyntaxError{Line: line, Col: col, Msg: "number has no digits after '.'"}
		}
	}
	return token{tokNumber, l.src[start:l.pos], line, col}, nil
}

func (l *lexer) lexIdent(line, col int) (token, *SyntaxError) {
	start := l.pos
	first := true
	for {
		c, ok := l.peekByte()
		if !ok || !isIdentRune(c, first) {
			break
		}
		l.advance()
		first = false
	}
	return token{tokIdent, l.src[start:l.pos], line, col}, nil
}

// parser consumes the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokenKind) (token, *SyntaxError) {
	t := p.next()
	if t.kind != kind {
		return token{}, p.errorf(t, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	return t, nil
}

// Parse parses band-file source into its file form.
func Parse(src string) (*File, error) {
	toks, lerr := lexAll(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	f := &File{}
	seen := make(map[string]struct{})
	for p.peek().kind != tokEOF {
		b, err := p.parseBand()
		if err != nil {
			return nil, err
		}
		if _, dup := seen[b.Name]; dup {
			return nil, &SyntaxError{Line: 1, Col: 1, Msg: fmt.Sprintf("band %q declared twice", b.Name)}
		}
		seen[b.Name] = struct{}{}
		f.Bands = append(f.Bands, *b)
	}
	if len(f.Bands) == 0 {
		return nil, &SyntaxError{Line: 1, Col: 1, Msg: "file declares no bands"}
	}
	return f, nil
}

func lexAll(src string) ([]token, *SyntaxError) {
	l := &lexer{src: src, line: 1, col: 1}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (p *parser) parseBand() (*Band, *SyntaxError) {
	kw := p.next()
	if kw.kind != tokIdent || kw.text != "band" {
		return nil, p.errorf(kw, "expected 'band', found %s %q", kw.kind, kw.text)
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	b := &Band{Name: name.text, Kind: KindMatrix}
	seen := make(map[string]token)
	kindSet := false
	for {
		t := p.next()
		if t.kind == tokRBrace {
			break
		}
		if t.kind != tokIdent {
			return nil, p.errorf(t, "expected a statement or '}', found %s %q", t.kind, t.text)
		}
		if prev, dup := seen[t.text]; dup {
			return nil, p.errorf(t, "duplicate %q statement (first at %d:%d)", t.text, prev.line, prev.col)
		}
		seen[t.text] = t
		if serr := p.parseStatement(b, t, &kindSet); serr != nil {
			return nil, serr
		}
	}
	if b.Kind == KindMatrix {
		// Mirror cmd/sweep's "-crash/-mttr only apply to -band churn"
		// guard at the file level.
		for _, stmt := range []string{"crash", "mttr", "rebind", "deadline"} {
			if t, present := seen[stmt]; present {
				return nil, p.errorf(t, "%q only applies to churn bands (band %q is a matrix band)", stmt, b.Name)
			}
		}
	}
	return b, nil
}

func (p *parser) parseStatement(b *Band, kw token, kindSet *bool) *SyntaxError {
	switch kw.text {
	case "description":
		t, err := p.expect(tokString)
		if err != nil {
			return err
		}
		b.Description = t.text
	case "kind":
		t, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if t.text != KindMatrix && t.text != KindChurn {
			return p.errorf(t, "unknown band kind %q (matrix, churn)", t.text)
		}
		b.Kind = t.text
		*kindSet = true
	case "solutions":
		names, err := p.parseIdentList()
		if err != nil {
			return err
		}
		if len(names) == 1 && names[0] == "all" {
			b.Solutions = nil
		} else {
			b.Solutions = names
		}
	case "clients":
		v, err := p.parseIntList()
		if err != nil {
			return err
		}
		b.Clients = v
	case "resources":
		v, err := p.parseIntList()
		if err != nil {
			return err
		}
		b.Resources = v
	case "loss":
		v, err := p.parseFloatList()
		if err != nil {
			return err
		}
		b.Loss = v
	case "cycles":
		t, err := p.expect(tokNumber)
		if err != nil {
			return err
		}
		n, aerr := p.atoi(t)
		if aerr != nil {
			return aerr
		}
		b.Cycles = n
	case "crash":
		v, err := p.parseFloatList()
		if err != nil {
			return err
		}
		b.Crash = v
	case "mttr":
		v, err := p.parseDurationList()
		if err != nil {
			return err
		}
		b.MTTR = v
	case "rebind":
		names, err := p.parseIdentList()
		if err != nil {
			return err
		}
		if len(names) == 1 && names[0] == RebindAuto {
			b.Rebind = nil
		} else {
			b.Rebind = names
		}
	case "deadline":
		d, err := p.parseDuration()
		if err != nil {
			return err
		}
		b.Deadline = d
	default:
		return p.errorf(kw, "unknown statement %q", kw.text)
	}
	return nil
}

func (p *parser) atoi(t token) (int, *SyntaxError) {
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errorf(t, "number %q out of range", t.text)
	}
	return n, nil
}

func (p *parser) parseIdentList() ([]string, *SyntaxError) {
	var out []string
	for {
		t, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		out = append(out, t.text)
		if p.peek().kind != tokComma {
			return out, nil
		}
		p.next()
	}
}

func (p *parser) parseIntList() ([]int, *SyntaxError) {
	var out []int
	for {
		t, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		n, aerr := p.atoi(t)
		if aerr != nil {
			return nil, aerr
		}
		out = append(out, n)
		if p.peek().kind != tokComma {
			return out, nil
		}
		p.next()
	}
}

func (p *parser) parseFloatList() ([]float64, *SyntaxError) {
	var out []float64
	for {
		t, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		v, perr := strconv.ParseFloat(t.text, 64)
		if perr != nil {
			return nil, p.errorf(t, "number %q out of range", t.text)
		}
		out = append(out, v)
		if p.peek().kind != tokComma {
			return out, nil
		}
		p.next()
	}
}

func (p *parser) parseDurationList() ([]time.Duration, *SyntaxError) {
	var out []time.Duration
	for {
		d, err := p.parseDuration()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
		if p.peek().kind != tokComma {
			return out, nil
		}
		p.next()
	}
}

// parseDuration parses "<number> <unit>" with unit us, ms, or s.
func (p *parser) parseDuration() (time.Duration, *SyntaxError) {
	numTok, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	n, aerr := p.atoi(numTok)
	if aerr != nil {
		return 0, aerr
	}
	unitTok, err := p.expect(tokIdent)
	if err != nil {
		return 0, err
	}
	var unit time.Duration
	switch unitTok.text {
	case "us":
		unit = time.Microsecond
	case "ms":
		unit = time.Millisecond
	case "s":
		unit = time.Second
	default:
		return 0, p.errorf(unitTok, "unknown duration unit %q (us, ms, s)", unitTok.text)
	}
	if int64(n) > math.MaxInt64/int64(unit) {
		return 0, p.errorf(numTok, "duration %s %s overflows", numTok.text, unitTok.text)
	}
	return time.Duration(n) * unit, nil
}
