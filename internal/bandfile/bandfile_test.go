package bandfile

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestParseFullBand pins every statement form in one block.
func TestParseFullBand(t *testing.T) {
	src := `# comment
band everything {
  description "all statements" // trailing comment
  kind churn
  solutions mw-callback, mw-polling
  crash 0.5, 2
  mttr 50 ms, 1 s, 250 us
  rebind none, failover
  deadline 8 s
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := Band{
		Name:        "everything",
		Description: "all statements",
		Kind:        KindChurn,
		Solutions:   []string{"mw-callback", "mw-polling"},
		Crash:       []float64{0.5, 2},
		MTTR:        []time.Duration{50 * time.Millisecond, time.Second, 250 * time.Microsecond},
		Rebind:      []string{"none", "failover"},
		Deadline:    8 * time.Second,
	}
	if len(f.Bands) != 1 || !reflect.DeepEqual(f.Bands[0], want) {
		t.Fatalf("parsed %+v, want %+v", f.Bands[0], want)
	}
}

// TestParseDefaults pins the defaulted forms: omitted kind is matrix,
// "solutions all" and "rebind auto" normalize to nil.
func TestParseDefaults(t *testing.T) {
	f, err := Parse("band b {\n  solutions all\n  clients 2, 8\n  loss 0, 0.01\n  cycles 6\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	b := f.Bands[0]
	if b.Kind != KindMatrix {
		t.Fatalf("omitted kind parsed as %q", b.Kind)
	}
	if b.Solutions != nil {
		t.Fatalf("'solutions all' parsed as %v, want nil", b.Solutions)
	}
	if !reflect.DeepEqual(b.Clients, []int{2, 8}) || !reflect.DeepEqual(b.Loss, []float64{0, 0.01}) || b.Cycles != 6 {
		t.Fatalf("dimensions parsed as %+v", b)
	}

	f, err = Parse("band c {\n  kind churn\n  rebind auto\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Bands[0].Rebind != nil {
		t.Fatalf("'rebind auto' parsed as %v, want nil", f.Bands[0].Rebind)
	}
}

// TestParseErrors pins grammar-level rejections with positions.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing band keyword", "bond b {}\n", "expected 'band'"},
		{"missing name", "band {\n}\n", "expected identifier"},
		{"missing brace", "band b\n", "expected '{'"},
		{"unterminated block", "band b {\n  cycles 6\n", "expected a statement or '}'"},
		{"duplicate statement", "band b {\n  cycles 6\n  cycles 7\n}\n", "duplicate \"cycles\" statement"},
		{"bad kind", "band b {\n  kind jumbo\n}\n", "unknown band kind"},
		{"bad duration unit", "band b {\n  kind churn\n  mttr 50 h\n}\n", "unknown duration unit"},
		{"number overflow", "band b {\n  kind churn\n  deadline 99999999999999999999 s\n}\n", "out of range"},
		{"duration overflow", "band b {\n  kind churn\n  deadline 9223372036854775807 s\n}\n", "overflows"},
		{"bare dot number", "band b {\n  loss 1.\n}\n", "no digits after"},
		{"unterminated string", "band b {\n  description \"oops\n}\n", "unterminated string"},
		{"stray character", "band b {\n  loss 0;\n}\n", "unexpected character"},
		{"trailing comma", "band b {\n  clients 2,\n}\n", "expected number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("invalid source accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			serr, ok := err.(*SyntaxError)
			if !ok || serr.Line == 0 {
				t.Fatalf("error %v carries no position", err)
			}
		})
	}
}
