// Package chat is the repository's second case study (the paper's
// conclusions list "demonstrating its applicability through case studies"
// as the next step): a totally ordered multiparty chat service designed
// with the same method as floor control —
//
//  1. a service definition: say/deliver primitives at participant SAPs
//     with ordering constraints, including a custom application-defined
//     TotalOrder constraint (core.Constraint is an open interface);
//  2. an interaction system behind the service boundary: a sequencer
//     protocol over the reliable-datagram lower service;
//  3. a platform-independent service design (PIM) of the same logic over
//     abstract directed messaging, deployable on every concrete platform
//     of the Figure 10 trajectory;
//  4. conformance checking of every implementation against the same
//     specification.
package chat

import (
	"fmt"

	"repro/internal/core"
)

// Role and primitive names of the ordered-chat service.
const (
	RoleParticipant = "participant"
	PrimSay         = "say"
	PrimDeliver     = "deliver"
)

// Parameter names.
const (
	ParamMsgID   = "msgid"
	ParamText    = "text"
	ParamSpeaker = "speaker"
)

// ParticipantSAP names the SAP of one participant.
func ParticipantSAP(id string) core.SAP { return core.SAP{Role: RoleParticipant, ID: id} }

// Spec returns the ordered-chat service definition: every utterance is
// eventually delivered to every participant, deliveries never precede
// their utterance, and all participants observe one shared total order.
func Spec() *core.ServiceSpec {
	return &core.ServiceSpec{
		Name:        "ordered-chat",
		Description: "multiparty chat with totally ordered delivery",
		Roles:       []core.RoleDef{{Name: RoleParticipant, Min: 2}},
		Primitives: []core.PrimitiveDef{
			{Name: PrimSay, Direction: core.FromUser, Params: []core.ParamDef{
				{Name: ParamMsgID, Kind: core.KindString},
				{Name: ParamText, Kind: core.KindString},
			}},
			{Name: PrimDeliver, Direction: core.ToUser, Params: []core.ParamDef{
				{Name: ParamMsgID, Kind: core.KindString},
				{Name: ParamText, Kind: core.KindString},
				{Name: ParamSpeaker, Kind: core.KindString},
			}},
		},
		Constraints: []core.Constraint{
			&core.Precedes{
				ConstraintName:   "no-spurious-delivery",
				ConstraintDesc:   "a message is only delivered after it was said (any SAP)",
				ScopeKind:        core.ScopeRemote,
				Trigger:          PrimSay,
				Enabled:          PrimDeliver,
				Key:              core.KeyParam(ParamMsgID),
				AllowPendingMany: true,
				NonConsuming:     true,
			},
			&TotalOrder{},
			&core.EventuallyFollows{
				ConstraintName: "say-eventually-self-delivered",
				ConstraintDesc: "every speaker eventually hears its own utterance",
				ScopeKind:      core.ScopeLocal,
				Trigger:        PrimSay,
				Response:       PrimDeliver,
				Key:            core.KeySAPAndParam(ParamMsgID),
			},
		},
	}
}

// TotalOrder is the case study's application-defined constraint: the
// msgid sequences delivered at any two SAPs must be prefix-compatible
// (one shared total order), and at the end of the window every SAP must
// have seen the full sequence.
type TotalOrder struct{}

var _ core.Constraint = (*TotalOrder)(nil)

// Name implements core.Constraint.
func (*TotalOrder) Name() string { return "total-order-delivery" }

// Scope implements core.Constraint.
func (*TotalOrder) Scope() core.Scope { return core.ScopeRemote }

// Description implements core.Constraint.
func (*TotalOrder) Description() string {
	return "all participants observe deliveries in one shared total order"
}

// NewMonitor implements core.Constraint.
func (*TotalOrder) NewMonitor() core.Monitor {
	return &orderMonitor{perSAP: make(map[core.SAP][]string)}
}

type orderMonitor struct {
	global []string
	perSAP map[core.SAP][]string
}

func (m *orderMonitor) Observe(e core.Event) error {
	if e.Primitive != PrimDeliver {
		return nil
	}
	id, _ := e.Params[ParamMsgID].(string)
	seq := append(m.perSAP[e.SAP], id)
	m.perSAP[e.SAP] = seq
	i := len(seq) - 1
	if i == len(m.global) {
		m.global = append(m.global, id)
	}
	if i >= len(m.global) || m.global[i] != id {
		ev := e
		return &core.ViolationError{
			Constraint: "total-order-delivery",
			Event:      &ev,
			Detail:     fmt.Sprintf("position %d saw %q, global order has %q", i, id, m.global[i]),
		}
	}
	return nil
}

func (m *orderMonitor) AtEnd() error {
	for sap, seq := range m.perSAP {
		if len(seq) != len(m.global) {
			return &core.ViolationError{
				Constraint: "total-order-delivery",
				Detail:     fmt.Sprintf("%s delivered %d of %d messages", sap, len(seq), len(m.global)),
			}
		}
	}
	return nil
}
