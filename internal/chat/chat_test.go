package chat

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/mda"
	"repro/internal/sim"
)

func TestSpecValid(t *testing.T) {
	if err := Spec().Validate(); err != nil {
		t.Fatalf("spec invalid: %v", err)
	}
	doc := Spec().Document()
	for _, want := range []string{"say(msgid: string, text: string)", "total-order-delivery"} {
		if !strings.Contains(doc, want) {
			t.Fatalf("document missing %q:\n%s", want, doc)
		}
	}
}

func TestProtocolRunConforms(t *testing.T) {
	res, err := Run(Config{Participants: 3, MessagesEach: 4, Seed: 7, LossRate: 0.1, Jitter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConformanceErr != nil {
		t.Fatalf("conformance: %v\ntrace:\n%s", res.ConformanceErr, res.Trace)
	}
	want := 3 * 4
	if res.Said != want {
		t.Fatalf("said %d, want %d", res.Said, want)
	}
	if res.Delivered != want*3 {
		t.Fatalf("delivered %d, want %d", res.Delivered, want*3)
	}
	for p, n := range res.PerParticipant {
		if n != want {
			t.Fatalf("%s heard %d of %d", p, n, want)
		}
	}
	if res.DeliveryLatency.Count() != want {
		t.Fatalf("latency samples %d, want %d", res.DeliveryLatency.Count(), want)
	}
}

func TestMDARunsOnAllPlatforms(t *testing.T) {
	for _, target := range mda.ConcretePlatforms() {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			res, err := Run(Config{Participants: 3, MessagesEach: 3, Seed: 9, Platform: target.Name})
			if err != nil {
				t.Fatal(err)
			}
			if res.ConformanceErr != nil {
				t.Fatalf("conformance on %s: %v", target.Name, res.ConformanceErr)
			}
			if res.Delivered != 3*3*3 {
				t.Fatalf("delivered %d", res.Delivered)
			}
		})
	}
}

func TestMDAAdapterOverheadShapeForChat(t *testing.T) {
	direct, err := Run(Config{Seed: 3, Platform: "msg-jms-like"})
	if err != nil {
		t.Fatal(err)
	}
	recursive, err := Run(Config{Seed: 3, Platform: "queue-mq-like"})
	if err != nil {
		t.Fatal(err)
	}
	if recursive.NetMessages <= direct.NetMessages {
		t.Fatalf("recursive realization (%d msgs) should exceed direct (%d msgs)",
			recursive.NetMessages, direct.NetMessages)
	}
}

func TestPIMTrajectory(t *testing.T) {
	pim := PIM()
	if err := pim.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, target := range mda.ConcretePlatforms() {
		steps, _, err := mda.PlanTrajectory(pim, target)
		if err != nil {
			t.Fatalf("%s: %v", target.Name, err)
		}
		if len(steps) != 5 {
			t.Fatalf("%s: %d steps", target.Name, len(steps))
		}
	}
}

func TestPIMRequiresTwoSAPs(t *testing.T) {
	_, err := PIM().Build(mda.Plan{SAPs: []core.SAP{ParticipantSAP("p1")}})
	if err == nil {
		t.Fatal("single-SAP chat accepted")
	}
}

func TestUnknownPlatform(t *testing.T) {
	if _, err := Run(Config{Platform: "nope"}); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestTotalOrderMonitorDetectsDivergence(t *testing.T) {
	m := (&TotalOrder{}).NewMonitor()
	deliver := func(sap, id string) error {
		return m.Observe(core.Event{
			SAP:       ParticipantSAP(sap),
			Primitive: PrimDeliver,
			Params:    codec.Record{ParamMsgID: id},
		})
	}
	if err := deliver("p1", "a"); err != nil {
		t.Fatal(err)
	}
	if err := deliver("p1", "b"); err != nil {
		t.Fatal(err)
	}
	if err := deliver("p2", "a"); err != nil {
		t.Fatal(err)
	}
	// p2 sees "c" where the global order has "b": divergence.
	if err := deliver("p2", "c"); err == nil {
		t.Fatal("order divergence not flagged")
	}
}

func TestTotalOrderMonitorDetectsIncompleteness(t *testing.T) {
	m := (&TotalOrder{}).NewMonitor()
	events := []struct{ sap, id string }{
		{"p1", "a"}, {"p1", "b"}, {"p2", "a"}, // p2 never hears "b"
	}
	for _, e := range events {
		if err := m.Observe(core.Event{
			SAP:       ParticipantSAP(e.sap),
			Primitive: PrimDeliver,
			Params:    codec.Record{ParamMsgID: e.id},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AtEnd(); err == nil {
		t.Fatal("incomplete delivery not flagged at end")
	}
}

func TestSequencerEntityRejectsBadPDU(t *testing.T) {
	k := sim.NewKernel()
	e := NewSequencerEntity(nil)
	// Unattached entity: exercise the input validation only.
	if err := e.FromUser(PrimSay, nil); err == nil {
		t.Fatal("sequencer accepted a service user")
	}
	if err := e.FromPeer("x", codec.NewMessage("bogus", nil)); err == nil {
		t.Fatal("sequencer accepted bogus PDU")
	}
	p := NewParticipantEntity(SequencerAddr)
	if err := p.FromUser("bogus", nil); err == nil {
		t.Fatal("participant accepted bogus primitive")
	}
	if err := p.FromPeer("x", codec.NewMessage("bogus", nil)); err == nil {
		t.Fatal("participant accepted bogus PDU")
	}
	_ = k
}

// Property: for any seed, group size and mild loss, every run is
// conformant and everybody hears everything.
func TestPropertyChatAlwaysConverges(t *testing.T) {
	prop := func(seed int64, group uint8, msgs uint8, lossTenths uint8) bool {
		res, err := Run(Config{
			Participants: int(group%3) + 2,
			MessagesEach: int(msgs%3) + 1,
			Seed:         seed,
			LossRate:     float64(lossTenths%4) / 10,
			Jitter:       2 * time.Millisecond,
		})
		if err != nil {
			return false
		}
		return res.ConformanceErr == nil && res.Delivered == res.Said*len(res.PerParticipant)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChatProtocol(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Participants: 4, MessagesEach: 5, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if res.ConformanceErr != nil {
			b.Fatal(res.ConformanceErr)
		}
	}
}
