package chat

import (
	"fmt"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/mda"
	"repro/internal/middleware"
)

// PIM returns the platform-independent service design of the ordered-chat
// service: the same sequencer logic as the protocol solution, expressed
// over abstract directed messaging. Through the Figure 10 trajectory it
// deploys on all four concrete platforms, with recursion bridging the
// RMI-like and MQ-like concept gaps — a second, independent exercise of
// the MDA engine.
func PIM() *mda.PIM {
	return &mda.PIM{
		Name:    "ordered-chat-pim",
		Service: Spec(),
		Abstract: mda.AbstractPlatform{
			Name:     "directed-messaging",
			Requires: []mda.Concept{mda.ConceptAsyncMessage},
		},
		Build: func(plan mda.Plan) (*mda.Logic, error) {
			if len(plan.SAPs) < 2 {
				return nil, fmt.Errorf("chat: PIM needs at least two SAPs")
			}
			logic := &mda.Logic{
				Components: make(map[mda.ComponentID]mda.Component),
				Placement:  make(map[mda.ComponentID]middleware.Addr),
				SAPBinding: make(map[core.SAP]mda.ComponentID),
			}
			const seq = mda.ComponentID("sequencer")
			var members []mda.ComponentID
			for _, sap := range plan.SAPs {
				id := mda.ComponentID("member:" + sap.ID)
				members = append(members, id)
				logic.Components[id] = &memberLogic{sequencer: seq}
				logic.Placement[id] = middleware.Addr(sap.ID)
				logic.SAPBinding[sap] = id
			}
			logic.Components[seq] = &sequencerLogic{members: members}
			logic.Placement[seq] = middleware.Addr(SequencerAddr)
			return logic, nil
		},
	}
}

// sequencerLogic is the sequencer as platform-independent service logic.
type sequencerLogic struct {
	ctx     *mda.LogicContext
	members []mda.ComponentID
}

var _ mda.Component = (*sequencerLogic)(nil)

// Start implements mda.Component.
func (s *sequencerLogic) Start(ctx *mda.LogicContext) error {
	s.ctx = ctx
	return nil
}

// FromUser implements mda.Component.
func (s *sequencerLogic) FromUser(primitive string, _ codec.Record) error {
	return fmt.Errorf("chat: sequencer logic has no service user (got %q)", primitive)
}

// OnMessage implements mda.Component.
func (s *sequencerLogic) OnMessage(from mda.ComponentID, msg codec.Message) error {
	if msg.Name != pduSubmit {
		return fmt.Errorf("chat: unexpected message %q at sequencer logic", msg.Name)
	}
	speaker := strings.TrimPrefix(string(from), "member:")
	out := codec.NewMessage(pduOrdered, codec.Record{
		ParamMsgID:   msg.Fields[ParamMsgID],
		ParamText:    msg.Fields[ParamText],
		ParamSpeaker: speaker,
	})
	for _, m := range s.members {
		if err := s.ctx.Send(m, out); err != nil {
			return err
		}
	}
	return nil
}

// memberLogic binds one SAP to the sequencer.
type memberLogic struct {
	ctx       *mda.LogicContext
	sequencer mda.ComponentID
}

var _ mda.Component = (*memberLogic)(nil)

// Start implements mda.Component.
func (m *memberLogic) Start(ctx *mda.LogicContext) error {
	m.ctx = ctx
	return nil
}

// FromUser implements mda.Component.
func (m *memberLogic) FromUser(primitive string, params codec.Record) error {
	if primitive != PrimSay {
		return fmt.Errorf("chat: unexpected primitive %q", primitive)
	}
	return m.ctx.Send(m.sequencer, codec.NewMessage(pduSubmit, params))
}

// OnMessage implements mda.Component.
func (m *memberLogic) OnMessage(_ mda.ComponentID, msg codec.Message) error {
	if msg.Name != pduOrdered {
		return fmt.Errorf("chat: unexpected message %q at member logic", msg.Name)
	}
	m.ctx.DeliverToUser(PrimDeliver, msg.Fields)
	return nil
}
