package chat

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// SequencerAddr is the hosting address of the sequencer entity.
const SequencerAddr protocol.Addr = "sequencer"

// PDU names of the sequencer protocol.
const (
	pduSubmit  = "submit"
	pduOrdered = "ordered"
)

// SequencerEntity is the protocol's central entity: it imposes the total
// order by broadcasting utterances in arrival order.
type SequencerEntity struct {
	ctx     *protocol.Context
	members []protocol.Addr
}

var _ protocol.Entity = (*SequencerEntity)(nil)

// NewSequencerEntity creates the sequencer for a fixed member set.
func NewSequencerEntity(members []protocol.Addr) *SequencerEntity {
	return &SequencerEntity{members: append([]protocol.Addr(nil), members...)}
}

// Init implements protocol.Entity.
func (e *SequencerEntity) Init(ctx *protocol.Context) error {
	e.ctx = ctx
	return nil
}

// FromUser implements protocol.Entity; the sequencer serves no SAP.
func (e *SequencerEntity) FromUser(primitive string, _ codec.Record) error {
	return fmt.Errorf("chat: sequencer has no service user (got %q)", primitive)
}

// FromPeer implements protocol.Entity. The ordered broadcast is encoded
// once and fanned out to every member through SendPDUMulti, instead of
// re-marshalling the same PDU per member.
func (e *SequencerEntity) FromPeer(src protocol.Addr, pdu codec.Message) error {
	if pdu.Name != pduSubmit {
		return fmt.Errorf("chat: unexpected PDU %q at sequencer", pdu.Name)
	}
	bcast := codec.NewMessage(pduOrdered, codec.Record{
		ParamMsgID:   pdu.Fields[ParamMsgID],
		ParamText:    pdu.Fields[ParamText],
		ParamSpeaker: string(src),
	})
	return e.ctx.SendPDUMulti(e.members, bcast)
}

// ParticipantEntity translates between chat primitives and the sequencer
// protocol at one SAP.
type ParticipantEntity struct {
	ctx       *protocol.Context
	sequencer protocol.Addr
}

var _ protocol.Entity = (*ParticipantEntity)(nil)

// NewParticipantEntity creates a participant entity bound to a sequencer.
func NewParticipantEntity(sequencer protocol.Addr) *ParticipantEntity {
	return &ParticipantEntity{sequencer: sequencer}
}

// Init implements protocol.Entity.
func (e *ParticipantEntity) Init(ctx *protocol.Context) error {
	e.ctx = ctx
	return nil
}

// FromUser implements protocol.Entity.
func (e *ParticipantEntity) FromUser(primitive string, params codec.Record) error {
	if primitive != PrimSay {
		return fmt.Errorf("chat: unexpected primitive %q", primitive)
	}
	return e.ctx.SendPDU(e.sequencer, codec.NewMessage(pduSubmit, params))
}

// FromPeer implements protocol.Entity.
func (e *ParticipantEntity) FromPeer(_ protocol.Addr, pdu codec.Message) error {
	if pdu.Name != pduOrdered {
		return fmt.Errorf("chat: unexpected PDU %q at participant", pdu.Name)
	}
	e.ctx.DeliverToUser(PrimDeliver, pdu.Fields)
	return nil
}

// BuildProtocol assembles the sequencer protocol over lower for the given
// participant ids, returning the service boundary (bound per SAP) and the
// layer for statistics.
func BuildProtocol(tb sim.Timebase, lower protocol.LowerService, participants []string) (core.Provider, *protocol.Layer, error) {
	layer := protocol.NewLayer("ordered-chat", tb, lower)
	members := make([]protocol.Addr, len(participants))
	for i, p := range participants {
		members[i] = protocol.Addr(p)
	}
	if err := layer.AddEntity(SequencerAddr, NewSequencerEntity(members)); err != nil {
		return nil, nil, fmt.Errorf("chat: add sequencer: %w", err)
	}
	for _, m := range members {
		if err := layer.AddEntity(m, NewParticipantEntity(SequencerAddr)); err != nil {
			return nil, nil, fmt.Errorf("chat: add participant %q: %w", m, err)
		}
	}
	binding := protocol.NewServiceBinding(layer)
	for i, p := range participants {
		if err := binding.Bind(ParticipantSAP(p), members[i]); err != nil {
			return nil, nil, fmt.Errorf("chat: bind %q: %w", p, err)
		}
	}
	return binding, layer, nil
}
