package chat

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/mda"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Config parameterizes one chat workload.
type Config struct {
	// Participants is the group size (>= 2).
	Participants int
	// MessagesEach is how many utterances each participant submits.
	MessagesEach int
	// Spread is the window over which utterances are scheduled.
	Spread time.Duration
	// Latency, Jitter and LossRate configure the network links.
	Latency  time.Duration
	Jitter   time.Duration
	LossRate float64
	// Seed fixes the run.
	Seed int64
	// Platform, when non-empty, deploys the chat PIM on that concrete
	// platform (MDA path) instead of the hand-built sequencer protocol.
	Platform string
}

func (c *Config) applyDefaults() {
	if c.Participants < 2 {
		c.Participants = 3
	}
	if c.MessagesEach <= 0 {
		c.MessagesEach = 4
	}
	if c.Spread <= 0 {
		c.Spread = 50 * time.Millisecond
	}
	if c.Latency <= 0 {
		c.Latency = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result reports one chat run.
type Result struct {
	Said           int
	Delivered      int
	PerParticipant map[string]int
	// DeliveryLatency measures say→own-delivery.
	DeliveryLatency metrics.Histogram
	NetMessages     uint64
	NetDropped      uint64
	ConformanceErr  error
	Trace           core.Trace
}

// Run executes the ordered-chat service under load and verifies it
// against Spec. With cfg.Platform set, the PIM is deployed through the
// MDA trajectory; otherwise the sequencer protocol runs directly.
func Run(cfg Config) (*Result, error) {
	cfg.applyDefaults()
	kernel := sim.NewKernel(sim.WithSeed(cfg.Seed))
	net := network.New(kernel, network.WithDefaultLink(network.LinkConfig{
		Latency:  cfg.Latency,
		Jitter:   cfg.Jitter,
		LossRate: cfg.LossRate,
	}))
	// The retransmission timer is sized to the configured link latency
	// (a few RTTs) so loss recovery does not dwarf delivery latency.
	lower := protocol.NewReliableDatagram(kernel, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{
		RetransmitTimeout: 4 * (cfg.Latency + cfg.Jitter),
	})

	participants := make([]string, cfg.Participants)
	saps := make([]core.SAP, cfg.Participants)
	for i := range participants {
		participants[i] = fmt.Sprintf("p%d", i+1)
		saps[i] = ParticipantSAP(participants[i])
	}

	var provider core.Provider
	if cfg.Platform != "" {
		target, ok := mda.ConcretePlatformByName(cfg.Platform)
		if !ok {
			return nil, fmt.Errorf("chat: unknown platform %q", cfg.Platform)
		}
		dep, err := mda.Deploy(kernel, lower, PIM(), target, mda.Plan{SAPs: saps})
		if err != nil {
			return nil, fmt.Errorf("chat: deploy: %w", err)
		}
		provider = dep
	} else {
		binding, _, err := BuildProtocol(kernel, lower, participants)
		if err != nil {
			return nil, err
		}
		provider = binding
	}

	observer, err := core.NewObserver(Spec(), kernel, core.WithEventValidation())
	if err != nil {
		return nil, err
	}
	observed := observedProvider{inner: provider, obs: observer}

	res := &Result{PerParticipant: make(map[string]int, cfg.Participants)}
	saidAt := make(map[string]time.Duration)
	for i, sap := range saps {
		sap := sap
		pid := participants[i]
		observed.Attach(sap, func(prim string, params codec.Record) {
			if prim != PrimDeliver {
				return
			}
			res.Delivered++
			res.PerParticipant[sap.ID]++
			id, _ := params[ParamMsgID].(string)
			speaker, _ := params[ParamSpeaker].(string)
			if speaker == sap.ID {
				if t0, ok := saidAt[id]; ok {
					res.DeliveryLatency.Add(kernel.Now() - t0)
				}
			}
		})
		for m := 0; m < cfg.MessagesEach; m++ {
			m := m
			kernel.ScheduleFunc(time.Duration(kernel.Rand().Int63n(int64(cfg.Spread))), func() {
				id := fmt.Sprintf("%s-%d", pid, m)
				saidAt[id] = kernel.Now()
				params := codec.Record{
					ParamMsgID: id,
					ParamText:  fmt.Sprintf("hello %d from %s", m, pid),
				}
				if err := observed.Submit(sap, PrimSay, params); err != nil {
					panic(fmt.Sprintf("chat: say: %v", err))
				}
				res.Said++
			})
		}
	}

	if _, err := kernel.Run(); err != nil && !errors.Is(err, sim.ErrStopped) {
		return nil, err
	}
	res.ConformanceErr = observer.Complete()
	res.Trace = observer.Trace()
	st := net.Stats()
	res.NetMessages = st.Sent
	res.NetDropped = st.Dropped
	return res, nil
}

// observedProvider mirrors floorcontrol.ObserveProvider for this package.
type observedProvider struct {
	inner core.Provider
	obs   *core.Observer
}

func (o observedProvider) Submit(sap core.SAP, primitive string, params codec.Record) error {
	_ = o.obs.Observe(sap, primitive, params) //nolint:errcheck // violations surface via Complete
	return o.inner.Submit(sap, primitive, params)
}

func (o observedProvider) Attach(sap core.SAP, handler func(string, codec.Record)) {
	o.inner.Attach(sap, func(primitive string, params codec.Record) {
		_ = o.obs.Observe(sap, primitive, params) //nolint:errcheck
		handler(primitive, params)
	})
}
