package codec

import (
	"testing"
)

// The benchmarks below are the codec's permanent performance surface:
// cmd/benchcmp compares their results against the committed
// BENCH_codec.json baseline in the CI bench-regression job. Names are
// load-bearing — renaming one silently drops it from the gate until the
// baseline is refreshed (make bench-baseline-codec).
//
// The representative message is a middleware pub/sub event as fanned out
// by Platform.Publish: topic + name + a three-field application record —
// the shape every subscriber decodes once per delivery.

// BenchmarkCalibrate is the fixed arithmetic workload cmd/benchcmp uses
// (-normalize Calibrate) to factor machine speed out of cross-host
// comparisons. It must stay identical to its internal/sim twin.
func BenchmarkCalibrate(b *testing.B) {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	benchSink = x
}

var benchSink uint64

var benchSchema = CompileSchema("mw.event", "topic", "name", "fields")

const (
	benchTopic = "floor/resource-3"
	benchName  = "request"
)

func benchFieldsRecord() Record {
	return Record{"subid": "subscriber-17", "resid": "resource-3", "seq": int64(12345)}
}

// benchWire returns the canonical wire form of the representative
// message (identical whichever encoder produced it).
func benchWire(b *testing.B) []byte {
	b.Helper()
	data, err := EncodeMessage(NewMessage(benchName, benchFieldsRecord()))
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// benchEventWire is the full pub/sub envelope: fields is the nested
// application record.
func benchEventWire(b *testing.B) []byte {
	b.Helper()
	data, err := EncodeMessage(NewMessage("mw.event", Record{
		"topic": benchTopic, "name": benchName, "fields": benchFieldsRecord(),
	}))
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkEncodeMessage is the legacy boxed encode path (pre-PR
// baseline for the schema path's speedup).
func BenchmarkEncodeMessage(b *testing.B) {
	m := NewMessage(benchName, benchFieldsRecord())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeMessage(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeMessage is the legacy boxed decode path.
func BenchmarkDecodeMessage(b *testing.B) {
	data := benchWire(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMessage(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemaEncode is the compiled-schema encode of the event
// envelope into a reused buffer, with the nested record spliced raw —
// the middleware fan-out path. Steady state must be 0 allocs/op.
func BenchmarkSchemaEncode(b *testing.B) {
	inner, err := Encode(benchFieldsRecord())
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := benchSchema.Encoder(buf[:0])
		e.Raw("fields", inner)
		e.Str("name", benchName)
		e.Str("topic", benchTopic)
		out, err := e.Finish()
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// BenchmarkViewDecode parses the event envelope and reads every field
// through the zero-copy view. Steady state must be 0 allocs/op.
func BenchmarkViewDecode(b *testing.B) {
	data := benchEventWire(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := ParseMessage(data)
		if err != nil {
			b.Fatal(err)
		}
		topic, ok := v.Str("topic")
		if !ok || len(topic) == 0 {
			b.Fatal("missing topic")
		}
		if _, ok := v.Str("name"); !ok {
			b.Fatal("missing name")
		}
		if _, ok := v.Raw("fields"); !ok {
			b.Fatal("missing fields")
		}
	}
}

// BenchmarkCodecRoundTrip is the acceptance benchmark: encode one
// representative middleware message through the compiled schema into a
// pooled buffer, then decode it through the view, per op. Steady state
// must be 0 allocs/op and ≥2× faster than the legacy
// EncodeMessage+DecodeMessage pair (BenchmarkLegacyRoundTrip).
func BenchmarkCodecRoundTrip(b *testing.B) {
	inner, err := Encode(benchFieldsRecord())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := GetBuffer()
		e := benchSchema.Encoder(buf.B[:0])
		e.Raw("fields", inner)
		e.Str("name", benchName)
		e.Str("topic", benchTopic)
		wire, err := e.Finish()
		if err != nil {
			b.Fatal(err)
		}
		v, err := ParseMessage(wire)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := v.Str("topic"); !ok {
			b.Fatal("missing topic")
		}
		if _, ok := v.Raw("fields"); !ok {
			b.Fatal("missing fields")
		}
		buf.B = wire
		buf.Release()
	}
}

// BenchmarkLegacyRoundTrip is the boxed EncodeMessage+DecodeMessage pair
// on the same envelope — the pre-PR data plane, kept as the comparison
// point for BenchmarkCodecRoundTrip.
func BenchmarkLegacyRoundTrip(b *testing.B) {
	m := NewMessage("mw.event", Record{
		"topic": benchTopic, "name": benchName, "fields": benchFieldsRecord(),
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := EncodeMessage(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeMessage(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeIntoVisitor walks the envelope through the streaming
// visitor without materializing. Steady state must be 0 allocs/op.
func BenchmarkDecodeIntoVisitor(b *testing.B) {
	data := benchEventWire(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A message is two concatenated values: name, then fields.
		n, err := DecodePrefixInto(data, nopVis)
		if err != nil {
			b.Fatal(err)
		}
		if err := DecodeInto(data[n:], nopVis); err != nil {
			b.Fatal(err)
		}
	}
}
