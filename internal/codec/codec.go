// Package codec implements the binary wire encoding used throughout the
// repository: protocol entities encode PDUs with it, and the middleware
// platform uses it to marshal application-level data types (the
// "facilities to define application-level information attributes and to
// exchange values of these attributes" the paper attributes to middleware
// infrastructures, §4.1).
//
// The format is a compact, self-describing TLV encoding:
//
//	value  := tag payload
//	tag    := one byte (see the tag* constants)
//	uvarint lengths and counts, zig-zag varints for signed integers
//
// Records encode their fields sorted by name so that encoding is canonical:
// equal values produce identical bytes, which the conformance machinery
// relies on when comparing traces.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"
)

// Errors returned by decoding. Decode wraps them with positional context;
// match with errors.Is.
var (
	ErrTruncated   = errors.New("codec: truncated input")
	ErrBadTag      = errors.New("codec: unknown tag")
	ErrDepth       = errors.New("codec: nesting too deep")
	ErrUnsupported = errors.New("codec: unsupported Go type")
	ErrTrailing    = errors.New("codec: trailing bytes after value")
	ErrSize        = errors.New("codec: declared size exceeds input")
	// ErrNonCanonical is reported by ParseMessage for messages whose
	// top-level field keys are not strictly ascending — input no encoder
	// in this codec can produce (see MsgView).
	ErrNonCanonical = errors.New("codec: record keys not in canonical order")
)

// maxDepth bounds nesting of lists and records to keep decoding of
// malicious or corrupted input from exhausting the stack.
const maxDepth = 32

const (
	tagNil    = 0x00
	tagFalse  = 0x01
	tagTrue   = 0x02
	tagInt    = 0x03 // zig-zag varint
	tagUint   = 0x04 // uvarint
	tagFloat  = 0x05 // 8 bytes IEEE-754 big endian
	tagString = 0x06 // uvarint length + bytes
	tagBytes  = 0x07 // uvarint length + bytes
	tagList   = 0x08 // uvarint count + values
	tagRecord = 0x09 // uvarint count + (string key, value) pairs
)

// Value is the universe of encodable values. Supported dynamic types:
// nil, bool, int, int32, int64, uint32, uint64, float64, string, []byte,
// []Value and map[string]Value. Anything else fails with ErrUnsupported.
type Value = any

// List is a convenience alias for ordered collections of values.
type List = []Value

// Record is a convenience alias for named fields. Field order does not
// matter: encoding sorts keys.
type Record = map[string]Value

// Append encodes v and appends it to buf, returning the extended slice.
func Append(buf []byte, v Value) ([]byte, error) {
	return appendValue(buf, v, 0)
}

// Encode returns the canonical encoding of v.
//
// Deprecated: Encode allocates a fresh buffer and walks a dynamically
// typed Value tree. New code should encode through a compiled schema
// (CompileSchema + (*Schema).Encoder), which validates field names and
// order at compile time and reuses pooled buffers; for one-off dynamic
// values, Append into a caller-managed buffer. Kept for the reflective
// tooling surface (LTS exploration, test fixtures); repolint flags new
// uses outside internal/codec.
func Encode(v Value) ([]byte, error) {
	return Append(nil, v)
}

// MustEncode is Encode for values known statically to be encodable; it
// panics on error. Use it only with literals.
func MustEncode(v Value) []byte {
	b, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return b
}

func appendValue(buf []byte, v Value, depth int) ([]byte, error) {
	if depth > maxDepth {
		return nil, ErrDepth
	}
	switch x := v.(type) {
	case nil:
		return append(buf, tagNil), nil
	case bool:
		if x {
			return append(buf, tagTrue), nil
		}
		return append(buf, tagFalse), nil
	case int:
		return appendInt(buf, int64(x)), nil
	case int32:
		return appendInt(buf, int64(x)), nil
	case int64:
		return appendInt(buf, x), nil
	case uint32:
		return appendUint(buf, uint64(x)), nil
	case uint64:
		return appendUint(buf, x), nil
	case float64:
		buf = append(buf, tagFloat)
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], math.Float64bits(x))
		return append(buf, tmp[:]...), nil
	case string:
		buf = append(buf, tagString)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		return append(buf, x...), nil
	case []byte:
		buf = append(buf, tagBytes)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		return append(buf, x...), nil
	case []Value:
		buf = append(buf, tagList)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		var err error
		for _, elem := range x {
			if buf, err = appendValue(buf, elem, depth+1); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case map[string]Value:
		buf = append(buf, tagRecord)
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		// Sort keys on the stack for typical (small) records; only
		// oversized ones pay for a heap slice.
		var arr [16]string
		keys := arr[:0]
		if len(x) > len(arr) {
			keys = make([]string, 0, len(x))
		}
		for k := range x {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		var err error
		for _, k := range keys {
			buf = append(buf, tagString)
			buf = binary.AppendUvarint(buf, uint64(len(k)))
			buf = append(buf, k...)
			if buf, err = appendValue(buf, x[k], depth+1); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupported, v)
	}
}

func appendInt(buf []byte, x int64) []byte {
	buf = append(buf, tagInt)
	return binary.AppendUvarint(buf, zigzag(x))
}

func appendUint(buf []byte, x uint64) []byte {
	buf = append(buf, tagUint)
	return binary.AppendUvarint(buf, x)
}

func zigzag(x int64) uint64   { return uint64((x << 1) ^ (x >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Decode decodes exactly one value from data and fails with ErrTrailing if
// bytes remain. Integers decode as int64, unsigned integers as uint64.
//
// Deprecated: Decode materializes the whole value tree on the heap. New
// code should read wire bytes through the zero-copy view plane
// (ParseMessage / MsgView), which also enforces canonical key order;
// DecodePrefix remains for streaming callers. Kept for the reflective
// tooling surface; repolint flags new uses outside internal/codec.
func Decode(data []byte) (Value, error) {
	v, n, err := decodeValue(data, 0)
	if err != nil {
		return nil, err
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d of %d bytes consumed", ErrTrailing, n, len(data))
	}
	return v, nil
}

// DecodePrefix decodes one value from the front of data and returns the
// number of bytes consumed.
func DecodePrefix(data []byte) (Value, int, error) {
	return decodeValue(data, 0)
}

func decodeValue(data []byte, depth int) (Value, int, error) {
	if depth > maxDepth {
		return nil, 0, ErrDepth
	}
	if len(data) == 0 {
		return nil, 0, ErrTruncated
	}
	tag := data[0]
	rest := data[1:]
	switch tag {
	case tagNil:
		return nil, 1, nil
	case tagFalse:
		return false, 1, nil
	case tagTrue:
		return true, 1, nil
	case tagInt:
		u, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, 0, ErrTruncated
		}
		return unzigzag(u), 1 + n, nil
	case tagUint:
		u, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, 0, ErrTruncated
		}
		return u, 1 + n, nil
	case tagFloat:
		if len(rest) < 8 {
			return nil, 0, ErrTruncated
		}
		return math.Float64frombits(binary.BigEndian.Uint64(rest)), 9, nil
	case tagString:
		s, n, err := decodeLenPrefixed(rest)
		if err != nil {
			return nil, 0, err
		}
		return string(s), 1 + n, nil
	case tagBytes:
		s, n, err := decodeLenPrefixed(rest)
		if err != nil {
			return nil, 0, err
		}
		out := make([]byte, len(s))
		copy(out, s)
		return out, 1 + n, nil
	case tagList:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, 0, ErrTruncated
		}
		if count > uint64(len(rest)) {
			return nil, 0, fmt.Errorf("%w: list of %d elements in %d bytes", ErrSize, count, len(rest))
		}
		consumed := 1 + n
		list := make([]Value, 0, count)
		for i := uint64(0); i < count; i++ {
			v, m, err := decodeValue(data[consumed:], depth+1)
			if err != nil {
				return nil, 0, fmt.Errorf("list element %d: %w", i, err)
			}
			list = append(list, v)
			consumed += m
		}
		return list, consumed, nil
	case tagRecord:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, 0, ErrTruncated
		}
		if count > uint64(len(rest)) {
			return nil, 0, fmt.Errorf("%w: record of %d fields in %d bytes", ErrSize, count, len(rest))
		}
		consumed := 1 + n
		rec := make(map[string]Value, count)
		for i := uint64(0); i < count; i++ {
			if consumed >= len(data) || data[consumed] != tagString {
				return nil, 0, fmt.Errorf("record field %d: %w (key must be string)", i, ErrBadTag)
			}
			key, kn, err := decodeLenPrefixed(data[consumed+1:])
			if err != nil {
				return nil, 0, fmt.Errorf("record field %d key: %w", i, err)
			}
			consumed += 1 + kn
			v, m, err := decodeValue(data[consumed:], depth+1)
			if err != nil {
				return nil, 0, fmt.Errorf("record field %q: %w", key, err)
			}
			rec[string(key)] = v
			consumed += m
		}
		return rec, consumed, nil
	default:
		return nil, 0, fmt.Errorf("%w: 0x%02x", ErrBadTag, tag)
	}
}

// decodeLenPrefixed returns the payload of a uvarint-length-prefixed field
// and the bytes consumed (length prefix + payload).
func decodeLenPrefixed(data []byte) ([]byte, int, error) {
	size, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, ErrTruncated
	}
	if size > uint64(len(data)-n) {
		return nil, 0, fmt.Errorf("%w: need %d bytes, have %d", ErrSize, size, len(data)-n)
	}
	return data[n : n+int(size)], n + int(size), nil
}

// Equal reports whether two values have identical canonical encodings.
// It is the equality notion used by trace comparison.
func Equal(a, b Value) bool {
	ea, err := Encode(a)
	if err != nil {
		return false
	}
	eb, err := Encode(b)
	if err != nil {
		return false
	}
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}
