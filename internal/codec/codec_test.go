package codec

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	data, err := Encode(v)
	if err != nil {
		t.Fatalf("Encode(%v): %v", v, err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(Encode(%v)): %v", v, err)
	}
	return out
}

func TestRoundTripScalars(t *testing.T) {
	tests := []struct {
		name string
		in   Value
		want Value
	}{
		{"nil", nil, nil},
		{"true", true, true},
		{"false", false, false},
		{"int zero", int64(0), int64(0)},
		{"int positive", int64(12345), int64(12345)},
		{"int negative", int64(-99999), int64(-99999)},
		{"int min", int64(math.MinInt64), int64(math.MinInt64)},
		{"int max", int64(math.MaxInt64), int64(math.MaxInt64)},
		{"plain int widens", int(7), int64(7)},
		{"int32 widens", int32(-5), int64(-5)},
		{"uint zero", uint64(0), uint64(0)},
		{"uint max", uint64(math.MaxUint64), uint64(math.MaxUint64)},
		{"uint32 widens", uint32(9), uint64(9)},
		{"float", 3.25, 3.25},
		{"float neg zero", math.Copysign(0, -1), math.Copysign(0, -1)},
		{"string empty", "", ""},
		{"string", "floor-control", "floor-control"},
		{"string unicode", "prótocol — 服务", "prótocol — 服务"},
		{"bytes", []byte{0, 1, 2, 255}, []byte{0, 1, 2, 255}},
		{"bytes empty", []byte{}, []byte{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := roundTrip(t, tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Fatalf("round trip = %#v, want %#v", got, tt.want)
			}
		})
	}
}

func TestRoundTripNaN(t *testing.T) {
	got := roundTrip(t, math.NaN())
	f, ok := got.(float64)
	if !ok || !math.IsNaN(f) {
		t.Fatalf("NaN round trip = %#v", got)
	}
}

func TestRoundTripComposites(t *testing.T) {
	in := Record{
		"resid": "res-1",
		"subid": int64(4),
		"nested": List{
			"a", int64(1), true, nil,
			Record{"deep": List{[]byte{9}}},
		},
		"empty-list": List{},
		"empty-rec":  Record{},
	}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, Value(in)) {
		t.Fatalf("round trip = %#v, want %#v", got, in)
	}
}

func TestCanonicalRecordEncoding(t *testing.T) {
	a := Record{"x": int64(1), "y": int64(2), "z": "s"}
	b := Record{"z": "s", "y": int64(2), "x": int64(1)}
	ea, eb := MustEncode(a), MustEncode(b)
	if !reflect.DeepEqual(ea, eb) {
		t.Fatal("record encoding not canonical under key order")
	}
}

func TestUnsupportedType(t *testing.T) {
	_, err := Encode(struct{ X int }{1})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
	_, err = Encode(Record{"k": make(chan int)})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("nested err = %v, want ErrUnsupported", err)
	}
}

func TestDepthLimit(t *testing.T) {
	var v Value = "leaf"
	for i := 0; i < maxDepth+2; i++ {
		v = List{v}
	}
	if _, err := Encode(v); !errors.Is(err, ErrDepth) {
		t.Fatalf("encode err = %v, want ErrDepth", err)
	}
	// Hand-roll a deep encoding to hit the decode-side limit: each level is
	// tagList + count 1.
	var data []byte
	for i := 0; i < maxDepth+2; i++ {
		data = append(data, tagList, 1)
	}
	data = append(data, tagNil)
	if _, err := Decode(data); !errors.Is(err, ErrDepth) {
		t.Fatalf("decode err = %v, want ErrDepth", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad tag", []byte{0xEE}, ErrBadTag},
		{"truncated string", []byte{tagString, 10, 'a'}, ErrSize},
		{"truncated float", []byte{tagFloat, 1, 2}, ErrTruncated},
		{"truncated varint", []byte{tagInt}, ErrTruncated},
		{"list size lies", []byte{tagList, 100}, ErrSize},
		{"record size lies", []byte{tagRecord, 100}, ErrSize},
		{"record non-string key", []byte{tagRecord, 1, tagInt, 2, tagNil}, ErrBadTag},
		{"trailing", append(MustEncode(int64(1)), 0x00), ErrTrailing},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.data); !errors.Is(err, tt.want) {
				t.Fatalf("Decode(% x) err = %v, want %v", tt.data, err, tt.want)
			}
		})
	}
}

func TestDecodePrefix(t *testing.T) {
	buf := MustEncode(int64(7))
	buf = append(buf, MustEncode("next")...)
	v, n, err := DecodePrefix(buf)
	if err != nil {
		t.Fatalf("DecodePrefix: %v", err)
	}
	if v != int64(7) {
		t.Fatalf("v = %v, want 7", v)
	}
	v2, _, err := DecodePrefix(buf[n:])
	if err != nil || v2 != "next" {
		t.Fatalf("second value = %v, %v", v2, err)
	}
}

// TestDecodePrefixPositions pins the byte positions DecodePrefix
// reports: exact consumed counts on success, zero consumed on failure,
// and the position embedded in Decode's ErrTrailing message.
func TestDecodePrefixPositions(t *testing.T) {
	values := []struct {
		name string
		v    Value
	}{
		{"nil", nil},
		{"bool", true},
		{"int", int64(-300)},
		{"uint", uint64(1 << 40)},
		{"float", 1.5},
		{"string", "abcdef"},
		{"bytes", []byte{1, 2, 3}},
		{"list", List{int64(1), "x"}},
		{"record", Record{"k": List{nil}}},
	}
	for _, tt := range values {
		t.Run(tt.name, func(t *testing.T) {
			enc := MustEncode(tt.v)
			// Appending a second value must not disturb the first value's
			// reported length.
			data := append(append([]byte{}, enc...), MustEncode("tail")...)
			_, n, err := DecodePrefix(data)
			if err != nil {
				t.Fatalf("DecodePrefix: %v", err)
			}
			if n != len(enc) {
				t.Fatalf("consumed %d bytes, want %d", n, len(enc))
			}
			// Every strict prefix of a single value is truncated or
			// otherwise invalid, and reports zero consumed bytes.
			for cut := 0; cut < len(enc); cut++ {
				v, n, err := DecodePrefix(enc[:cut])
				if err == nil {
					t.Fatalf("DecodePrefix(%x) = %v, want error", enc[:cut], v)
				}
				if n != 0 {
					t.Fatalf("failed DecodePrefix consumed %d bytes, want 0", n)
				}
			}
		})
	}
}

func TestDecodeTrailingReportsPosition(t *testing.T) {
	enc := MustEncode(int64(7))
	data := append(append([]byte{}, enc...), 0xAA, 0xBB)
	_, err := Decode(data)
	if !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
	want := fmt.Sprintf("%d of %d bytes consumed", len(enc), len(data))
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %q, want position %q", err, want)
	}
}

func TestDepthLimitBoundary(t *testing.T) {
	// Exactly maxDepth nested lists decode; one more trips ErrDepth. The
	// error context names the failing element chain.
	build := func(depth int) []byte {
		var data []byte
		for i := 0; i < depth; i++ {
			data = append(data, tagList, 1)
		}
		return append(data, tagNil)
	}
	if _, err := Decode(build(maxDepth)); err != nil {
		t.Fatalf("depth %d should decode: %v", maxDepth, err)
	}
	_, err := Decode(build(maxDepth + 1))
	if !errors.Is(err, ErrDepth) {
		t.Fatalf("depth %d err = %v, want ErrDepth", maxDepth+1, err)
	}
	if !strings.Contains(err.Error(), "list element 0") {
		t.Fatalf("err = %q, want nesting context", err)
	}
	// The same boundary holds for the non-materializing walkers.
	if _, err := skipValue(build(maxDepth), 0); err != nil {
		t.Fatalf("skipValue at depth %d: %v", maxDepth, err)
	}
	if _, err := skipValue(build(maxDepth+1), 0); !errors.Is(err, ErrDepth) {
		t.Fatalf("skipValue err = %v, want ErrDepth", err)
	}
	if err := DecodeInto(build(maxDepth+1), nopVis); !errors.Is(err, ErrDepth) {
		t.Fatalf("DecodeInto err = %v, want ErrDepth", err)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Record{"a": int64(1)}, Record{"a": int64(1)}) {
		t.Fatal("equal records reported unequal")
	}
	if Equal(Record{"a": int64(1)}, Record{"a": int64(2)}) {
		t.Fatal("unequal records reported equal")
	}
	if Equal(make(chan int), make(chan int)) {
		t.Fatal("unencodable values must compare unequal")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := NewMessage("request", Record{"subid": "s1", "resid": "r1"})
	data, err := EncodeMessage(m)
	if err != nil {
		t.Fatalf("EncodeMessage: %v", err)
	}
	got, err := DecodeMessage(data)
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	if got.Name != "request" || !reflect.DeepEqual(got.Fields, m.Fields) {
		t.Fatalf("round trip = %v, want %v", got, m)
	}
}

func TestMessageNilFields(t *testing.T) {
	data, err := EncodeMessage(Message{Name: "free"})
	if err != nil {
		t.Fatalf("EncodeMessage: %v", err)
	}
	got, err := DecodeMessage(data)
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	if got.Fields == nil || len(got.Fields) != 0 {
		t.Fatalf("fields = %#v, want empty map", got.Fields)
	}
}

func TestMessageDecodeErrors(t *testing.T) {
	if _, err := DecodeMessage(nil); err == nil {
		t.Fatal("expected error on empty message")
	}
	// A message whose "name" is an int.
	bad := MustEncode(int64(1))
	bad = append(bad, MustEncode(Record{})...)
	if _, err := DecodeMessage(bad); err == nil || !strings.Contains(err.Error(), "not string") {
		t.Fatalf("err = %v, want non-string name error", err)
	}
	// Trailing garbage.
	good, _ := EncodeMessage(NewMessage("x", nil))
	if _, err := DecodeMessage(append(good, 0)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
}

func TestMessageString(t *testing.T) {
	m := NewMessage("granted", Record{"resid": "r1", "at": int64(5)})
	got := m.String()
	if got != "granted(at=5, resid=r1)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestMessageGet(t *testing.T) {
	m := NewMessage("op", Record{"k": "v"})
	if v, ok := m.Get("k"); !ok || v != "v" {
		t.Fatalf("Get(k) = %v, %v", v, ok)
	}
	if _, ok := m.Get("missing"); ok {
		t.Fatal("Get(missing) reported present")
	}
}

func TestStringListRoundTrip(t *testing.T) {
	in := []string{"r1", "r2", "r3"}
	v := roundTrip(t, Value(StringList(in)))
	out, err := ToStringSlice(v)
	if err != nil {
		t.Fatalf("ToStringSlice: %v", err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %v, want %v", out, in)
	}
}

func TestToStringSliceErrors(t *testing.T) {
	if _, err := ToStringSlice("not a list"); err == nil {
		t.Fatal("expected error for non-list")
	}
	if _, err := ToStringSlice(List{int64(1)}); err == nil {
		t.Fatal("expected error for non-string element")
	}
}

// Property: every generated value round-trips to a codec-equal value.
func TestPropertyRoundTrip(t *testing.T) {
	prop := func(i int64, u uint64, f float64, s string, b []byte, flag bool) bool {
		in := Record{
			"i": i, "u": u, "f": f, "s": s, "b": b, "flag": flag,
			"list": List{i, s, flag},
		}
		if math.IsNaN(f) {
			return true // NaN != NaN; covered by TestRoundTripNaN
		}
		data, err := Encode(in)
		if err != nil {
			return false
		}
		out, err := Decode(data)
		if err != nil {
			return false
		}
		return Equal(in, out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding never panics on arbitrary bytes.
func TestPropertyDecodeNeverPanics(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Decode(data)        //nolint:errcheck // errors are expected
		_, _ = DecodeMessage(data) //nolint:errcheck
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: integers round-trip exactly through zig-zag.
func TestPropertyZigzag(t *testing.T) {
	prop := func(x int64) bool { return unzigzag(zigzag(x)) == x }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// The package benchmarks (the CI-gated performance surface) live in
// bench_test.go.
