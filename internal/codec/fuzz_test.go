package codec

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCodecRoundTrip is the codec's wire-compatibility fuzz target, run
// bounded in CI (see .github/workflows/ci.yml, fuzz job):
//
//   - decoding arbitrary bytes must never panic, whichever decoder is
//     used (Decode, DecodeMessage, ParseMessage, DecodeInto, skipValue);
//   - any accepted input is canonical-after-one-trip: re-encoding the
//     decoded value must be byte-identical under both the legacy encoder
//     and the schema-compiled encoder, and the decode planes (boxed,
//     view, visitor) must agree — the view plane being strictly stricter
//     only about canonical key order.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(MustEncode(int64(-5)))
	f.Add(MustEncode(Record{"a": uint64(1), "b": List{"x", nil, true}}))
	seedMsg, _ := EncodeMessage(NewMessage("mw.event", Record{
		"topic": "t1", "name": "update", "fields": Record{"resid": "r1", "seq": int64(9)},
	}))
	f.Add(seedMsg)
	f.Add([]byte{tagRecord, 2, tagString, 1, 'a', tagNil, tagString, 1, 'a', tagNil})
	f.Add([]byte{tagList, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Never panic, all decode planes.
		v, decodeErr := Decode(data)
		_, _ = DecodeMessage(data)   //nolint:errcheck // errors expected
		_, _ = skipValue(data, 0)    //nolint:errcheck
		_ = DecodeInto(data, nopVis) //nolint:errcheck

		// The structural walkers must accept exactly what Decode accepts.
		if n, err := skipValue(data, 0); decodeErr == nil {
			if err != nil || n != len(data) {
				t.Fatalf("skipValue (%d, %v) disagrees with successful Decode of % x", n, err, data)
			}
		}
		if err := DecodeInto(data, nopVis); (decodeErr == nil) != (err == nil) {
			t.Fatalf("DecodeInto %v disagrees with Decode %v on % x", err, decodeErr, data)
		}

		if decodeErr == nil {
			// Encode→decode→re-encode is byte-identical: one trip through
			// the decoder canonicalizes (sorts keys, collapses duplicates),
			// after which encoding is a fixed point.
			re1, err := Encode(v)
			if err != nil {
				t.Fatalf("re-encode of decoded value %#v failed: %v", v, err)
			}
			v2, err := Decode(re1)
			if err != nil {
				t.Fatalf("decode of re-encoded % x failed: %v", re1, err)
			}
			re2, err := Encode(v2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(re1, re2) {
				t.Fatalf("encode→decode→re-encode not byte-identical:\n re1 %x\n re2 %x", re1, re2)
			}
		}

		// Message plane: the view parser accepts a subset of the legacy
		// parser (it additionally rejects non-canonical key order, which
		// no encoder produces); on the shared accepted set both decode
		// identically, and accepted messages re-encode identically
		// through the legacy path AND through a schema compiled from the
		// decoded shape.
		m, msgErr := DecodeMessage(data)
		view, viewErr := ParseMessage(data)
		if viewErr == nil && msgErr != nil {
			t.Fatalf("ParseMessage accepted % x, DecodeMessage rejected: %v", data, msgErr)
		}
		if msgErr == nil && viewErr != nil && !errors.Is(viewErr, ErrNonCanonical) {
			t.Fatalf("ParseMessage rejected legacy-accepted % x with %v (want ErrNonCanonical)", data, viewErr)
		}
		if msgErr == nil && viewErr == nil {
			re1, err := EncodeMessage(m)
			if err != nil {
				t.Fatalf("re-encode message failed: %v", err)
			}
			m2, err := DecodeMessage(re1)
			if err != nil {
				t.Fatalf("decode of re-encoded message failed: %v", err)
			}
			re2, err := EncodeMessage(m2)
			if err != nil {
				t.Fatalf("second message re-encode failed: %v", err)
			}
			if !bytes.Equal(re1, re2) {
				t.Fatalf("message encode→decode→re-encode not byte-identical:\n re1 %x\n re2 %x", re1, re2)
			}
			vm, err := view.Message()
			if err != nil {
				t.Fatalf("view materialization failed on accepted message: %v", err)
			}
			if !Equal(Value(vm.Fields), Value(m.Fields)) || vm.Name != m.Name {
				t.Fatalf("view materialized %v, legacy %v", vm, m)
			}
			// Schema-compiled encoding agrees with the legacy encoder on
			// the canonicalized message. Wire-valid empty keys cannot name
			// schema fields; skip those shapes.
			names := make([]string, 0, len(m.Fields))
			for k := range m.Fields {
				if k == "" {
					return
				}
				names = append(names, k)
			}
			s := CompileSchema(m.Name, names...)
			e := s.Encoder(nil)
			for _, fn := range s.Fields() {
				e.Value(fn, m.Fields[fn])
			}
			se, err := e.Finish()
			if err != nil {
				t.Fatalf("schema re-encode failed: %v", err)
			}
			if !bytes.Equal(se, re1) {
				t.Fatalf("schema re-encode differs from legacy:\nlegacy %x\nschema %x", re1, se)
			}
		}
	})
}

// nopVis discards every visitor event.
var nopVis Visitor = nopVisitor{}

type nopVisitor struct{}

func (nopVisitor) Nil() error            { return nil }
func (nopVisitor) Bool(bool) error       { return nil }
func (nopVisitor) Int(int64) error       { return nil }
func (nopVisitor) Uint(uint64) error     { return nil }
func (nopVisitor) Float(float64) error   { return nil }
func (nopVisitor) Str([]byte) error      { return nil }
func (nopVisitor) Bytes([]byte) error    { return nil }
func (nopVisitor) ListStart(int) error   { return nil }
func (nopVisitor) ListEnd() error        { return nil }
func (nopVisitor) RecordStart(int) error { return nil }
func (nopVisitor) Key([]byte) error      { return nil }
func (nopVisitor) RecordEnd() error      { return nil }
