package codec

import (
	"fmt"
	"sort"
	"strings"
)

// Message is a named record: the shape of every PDU on the wire and of
// every marshalled middleware invocation. Name identifies the message type
// (for a PDU, its type; for an invocation, the operation).
type Message struct {
	Name   string
	Fields Record
}

// NewMessage returns a message with an initialized (possibly empty) field
// map.
func NewMessage(name string, fields Record) Message {
	if fields == nil {
		fields = Record{}
	}
	return Message{Name: name, Fields: fields}
}

// Get returns a named field and whether it was present.
func (m Message) Get(field string) (Value, bool) {
	v, ok := m.Fields[field]
	return v, ok
}

// String renders the message compactly for logs and test failures, with
// fields in sorted order.
func (m Message) String() string {
	keys := make([]string, 0, len(m.Fields))
	for k := range m.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(m.Name)
	sb.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%v", k, m.Fields[k])
	}
	sb.WriteByte(')')
	return sb.String()
}

// EncodeMessage produces the canonical wire form of m: the name as a
// string value followed by the fields as a record.
func EncodeMessage(m Message) ([]byte, error) {
	return AppendMessage(nil, m)
}

// AppendMessage appends the canonical wire form of m to buf, returning
// the extended slice — EncodeMessage into a caller-supplied (typically
// pooled) buffer. For fixed message shapes, a compiled Schema encodes
// the same bytes without building the Fields map at all.
func AppendMessage(buf []byte, m Message) ([]byte, error) {
	buf, err := Append(buf, m.Name)
	if err != nil {
		return nil, fmt.Errorf("encode message name: %w", err)
	}
	fields := m.Fields
	if fields == nil {
		fields = Record{}
	}
	buf, err = Append(buf, fields)
	if err != nil {
		return nil, fmt.Errorf("encode message %q: %w", m.Name, err)
	}
	return buf, nil
}

// DecodeMessage parses the wire form produced by EncodeMessage.
//
// Deprecated: DecodeMessage heap-allocates the field Record on every
// parse. New code should call ParseMessage, whose MsgView reads fields
// in place without copying and rejects non-canonical key order; call
// (MsgView).Message only at the point a materialized Message is truly
// needed. Kept for the reflective tooling surface; repolint flags new
// uses outside internal/codec.
func DecodeMessage(data []byte) (Message, error) {
	nameV, n, err := DecodePrefix(data)
	if err != nil {
		return Message{}, fmt.Errorf("decode message name: %w", err)
	}
	name, ok := nameV.(string)
	if !ok {
		return Message{}, fmt.Errorf("decode message: name is %T, not string", nameV)
	}
	fieldsV, m, err := DecodePrefix(data[n:])
	if err != nil {
		return Message{}, fmt.Errorf("decode message %q fields: %w", name, err)
	}
	if n+m != len(data) {
		return Message{}, fmt.Errorf("decode message %q: %w", name, ErrTrailing)
	}
	fields, ok := fieldsV.(map[string]Value)
	if !ok {
		return Message{}, fmt.Errorf("decode message %q: fields are %T, not record", name, fieldsV)
	}
	return Message{Name: name, Fields: fields}, nil
}

// StringList converts a slice of strings to a List value; it is the wire
// shape used for resource-identifier sets in the token-based solutions.
func StringList(items []string) List {
	out := make(List, len(items))
	for i, s := range items {
		out[i] = s
	}
	return out
}

// ToStringSlice converts a decoded List of strings back into []string.
func ToStringSlice(v Value) ([]string, error) {
	list, ok := v.([]Value)
	if !ok {
		return nil, fmt.Errorf("codec: %T is not a list", v)
	}
	out := make([]string, len(list))
	for i, elem := range list {
		s, ok := elem.(string)
		if !ok {
			return nil, fmt.Errorf("codec: list element %d is %T, not string", i, elem)
		}
		out[i] = s
	}
	return out, nil
}
