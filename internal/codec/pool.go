package codec

import "sync"

// Buffer is a pooled scratch buffer for encoding and for carrying wire
// bytes through a delivery pipeline. The data plane (network delivery,
// middleware fan-out, reliability PDUs) threads Buffers through a
// publish→deliver→decode cycle so the steady state allocates nothing.
//
// Usage:
//
//	buf := codec.GetBuffer()
//	buf.B = append(buf.B[:0], ...)   // or hand buf.B[:0] to an Encoder
//	...
//	buf.Release()
//
// After Release the buffer (and any slice aliasing buf.B) must not be
// touched: it will be handed to an unrelated caller.
type Buffer struct {
	B []byte
}

// maxPooledCap bounds the capacity of buffers returned to the pool, so a
// single oversized message does not pin a large allocation forever.
const maxPooledCap = 64 << 10

var bufferPool = sync.Pool{
	New: func() any { return &Buffer{B: make([]byte, 0, 512)} },
}

// GetBuffer takes a scratch buffer from the pool. The returned buffer has
// unspecified length and at least some capacity; callers should start
// from buf.B[:0].
func GetBuffer() *Buffer {
	return bufferPool.Get().(*Buffer)
}

// Release returns the buffer to the pool. Oversized buffers are dropped
// rather than pooled.
func (b *Buffer) Release() {
	if b == nil || cap(b.B) > maxPooledCap {
		return
	}
	b.B = b.B[:0]
	bufferPool.Put(b)
}
