package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
)

// Schema is a compiled message layout: the message name and its field
// set, with the canonical (sorted) field order and every tag/key byte
// sequence precomputed at compile time. Encoding through a Schema is a
// straight append of precomputed headers and scalar payloads into a
// caller-supplied buffer — no map construction, no per-call sorting, no
// boxing — and produces bytes identical to EncodeMessage of the
// equivalent Message.
//
// Compile schemas once (package-level vars) and reuse them for every
// message of that shape:
//
//	var schemaData = codec.CompileSchema("rdp.data", "seq", "payload")
//
//	e := schemaData.Encoder(buf[:0])
//	e.Bytes("payload", payload) // fields appended in canonical order
//	e.Uint("seq", seq)
//	wire, err := e.Finish()
type Schema struct {
	name string
	// header is the precomputed wire prefix: the encoded name value
	// followed by the record tag and field count.
	header []byte
	// fields are in canonical (sorted) order; each key holds the complete
	// encoded field key (tagString + uvarint length + name bytes).
	fields []schemaField
}

type schemaField struct {
	name string
	key  []byte
}

// CompileSchema compiles the layout of a message with the given name and
// exact field set. Field names may be given in any order; the schema
// stores them in canonical (sorted) order, which is also the order an
// Encoder requires them to be appended in (see Schema.Fields). It panics
// on duplicate or empty field names — schemas describe fixed wire shapes
// and are compiled from literals at init time.
func CompileSchema(name string, fieldNames ...string) *Schema {
	sorted := slices.Clone(fieldNames)
	slices.Sort(sorted)
	s := &Schema{name: name, fields: make([]schemaField, 0, len(sorted))}
	s.header = append(s.header, tagString)
	s.header = binary.AppendUvarint(s.header, uint64(len(name)))
	s.header = append(s.header, name...)
	s.header = append(s.header, tagRecord)
	s.header = binary.AppendUvarint(s.header, uint64(len(sorted)))
	for i, f := range sorted {
		if f == "" {
			panic(fmt.Sprintf("codec: schema %q: empty field name", name))
		}
		if i > 0 && sorted[i-1] == f {
			panic(fmt.Sprintf("codec: schema %q: duplicate field %q", name, f))
		}
		key := make([]byte, 0, 2+len(f))
		key = append(key, tagString)
		key = binary.AppendUvarint(key, uint64(len(f)))
		key = append(key, f...)
		s.fields = append(s.fields, schemaField{name: f, key: key})
	}
	return s
}

// Name returns the message name the schema encodes.
func (s *Schema) Name() string { return s.name }

// Fields returns the field names in canonical (encoding) order. The
// slice is shared; callers must not modify it.
func (s *Schema) Fields() []string {
	out := make([]string, len(s.fields))
	for i, f := range s.fields {
		out[i] = f.name
	}
	return out
}

// Encoder starts encoding one message with this schema, appending to buf
// (pass buf[:0] to reuse an existing allocation). Fields must then be
// appended in the schema's canonical order, each with the typed method
// matching its value; Finish returns the extended buffer.
//
// The Encoder is a value type designed to live on the caller's stack: the
// steady-state encode path performs zero heap allocations.
func (s *Schema) Encoder(buf []byte) Encoder {
	return Encoder{s: s, buf: append(buf, s.header...)}
}

// Encoder appends one message's fields in canonical order. Methods
// record the first error and make the rest of the encode a no-op; Finish
// reports it.
type Encoder struct {
	s    *Schema
	buf  []byte
	next int
	err  error
}

// field validates ordering and appends the precomputed key bytes.
//
//repolint:hotpath
func (e *Encoder) field(name string) bool {
	if e.err != nil {
		return false
	}
	if e.next >= len(e.s.fields) || e.s.fields[e.next].name != name {
		e.err = fmt.Errorf("codec: schema %q: field %q out of order or unknown (expect %q)", //repolint:allow alloc -- cold: schema misuse is a programming error
			e.s.name, name, e.expect())
		return false
	}
	e.buf = append(e.buf, e.s.fields[e.next].key...)
	e.next++
	return true
}

func (e *Encoder) expect() string {
	if e.next < len(e.s.fields) {
		return e.s.fields[e.next].name
	}
	return "<no more fields>"
}

// Uint appends an unsigned integer field.
//
//repolint:hotpath
func (e *Encoder) Uint(name string, v uint64) {
	if e.field(name) {
		e.buf = append(e.buf, tagUint)
		e.buf = binary.AppendUvarint(e.buf, v)
	}
}

// Int appends a signed integer field.
//
//repolint:hotpath
func (e *Encoder) Int(name string, v int64) {
	if e.field(name) {
		e.buf = append(e.buf, tagInt)
		e.buf = binary.AppendUvarint(e.buf, zigzag(v))
	}
}

// Bool appends a boolean field.
//
//repolint:hotpath
func (e *Encoder) Bool(name string, v bool) {
	if e.field(name) {
		if v {
			e.buf = append(e.buf, tagTrue)
		} else {
			e.buf = append(e.buf, tagFalse)
		}
	}
}

// Float appends a float64 field.
//
//repolint:hotpath
func (e *Encoder) Float(name string, v float64) {
	if e.field(name) {
		e.buf = appendFloat(e.buf, v)
	}
}

// Str appends a string field.
//
//repolint:hotpath
func (e *Encoder) Str(name, v string) {
	if e.field(name) {
		e.buf = append(e.buf, tagString)
		e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
		e.buf = append(e.buf, v...)
	}
}

// Bytes appends a byte-slice field. A nil slice encodes as empty bytes,
// exactly as EncodeMessage does.
//
//repolint:hotpath
func (e *Encoder) Bytes(name string, v []byte) {
	if e.field(name) {
		e.buf = append(e.buf, tagBytes)
		e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
		e.buf = append(e.buf, v...)
	}
}

// Value appends an arbitrary encodable value (nested records and lists
// included) through the generic encoder. It is the bridge for dynamic
// payloads carried inside a schema-framed message; unlike the typed
// methods it may allocate while sorting nested record keys.
func (e *Encoder) Value(name string, v Value) {
	if e.field(name) {
		buf, err := appendValue(e.buf, v, 1)
		if err != nil {
			e.err = fmt.Errorf("codec: schema %q: field %q: %w", e.s.name, name, err)
			return
		}
		e.buf = buf
	}
}

// Raw appends a field whose value is already in wire form (one complete
// TLV value, e.g. obtained from MsgView.Raw). The bytes are spliced in
// verbatim — the zero-copy path for forwarding a decoded field without
// rematerializing it. The caller is responsible for tlv being a single
// well-formed value; Raw rejects only the obviously malformed.
func (e *Encoder) Raw(name string, tlv []byte) {
	if e.field(name) {
		if len(tlv) == 0 {
			e.err = fmt.Errorf("codec: schema %q: field %q: empty raw value", e.s.name, name)
			return
		}
		e.buf = append(e.buf, tlv...)
	}
}

// Finish completes the message and returns the extended buffer. It fails
// if any schema field was not appended or any append errored.
func (e *Encoder) Finish() ([]byte, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.next != len(e.s.fields) {
		return nil, fmt.Errorf("codec: schema %q: missing field %q", e.s.name, e.s.fields[e.next].name)
	}
	return e.buf, nil
}

// appendFloat appends the float tag and payload without boxing.
//
//repolint:hotpath
func appendFloat(buf []byte, v float64) []byte {
	buf = append(buf, tagFloat)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(buf, tmp[:]...)
}
