package codec

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSchemaEncodeMatchesEncodeMessage(t *testing.T) {
	s := CompileSchema("rdp.data", "seq", "payload")
	e := s.Encoder(nil)
	e.Bytes("payload", []byte{1, 2, 3})
	e.Uint("seq", 42)
	got, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	want, err := EncodeMessage(NewMessage("rdp.data", Record{
		"seq":     uint64(42),
		"payload": []byte{1, 2, 3},
	}))
	if err != nil {
		t.Fatalf("EncodeMessage: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("schema bytes differ:\n got %x\nwant %x", got, want)
	}
}

func TestSchemaAllValueKinds(t *testing.T) {
	s := CompileSchema("m", "b", "f", "i", "n", "s", "t", "u", "v")
	e := s.Encoder(nil)
	e.Bool("b", true)
	e.Float("f", 3.5)
	e.Int("i", -7)
	e.Bytes("n", nil)
	e.Str("s", "x")
	e.Bool("t", false)
	e.Uint("u", math.MaxUint64)
	e.Value("v", List{"a", int64(1)})
	got, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	want := MustEncode("m")
	wantFields, _ := Encode(Record{
		"b": true, "f": 3.5, "i": int64(-7), "n": []byte{}, "s": "x",
		"t": false, "u": uint64(math.MaxUint64), "v": List{"a", int64(1)},
	})
	want = append(want, wantFields...)
	if !bytes.Equal(got, want) {
		t.Fatalf("schema bytes differ:\n got %x\nwant %x", got, want)
	}
	// And the legacy decoder accepts it.
	m, err := DecodeMessage(got)
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	if m.Name != "m" || len(m.Fields) != 8 {
		t.Fatalf("decoded %v", m)
	}
}

func TestSchemaFieldOrderEnforced(t *testing.T) {
	s := CompileSchema("m", "a", "b")
	e := s.Encoder(nil)
	e.Uint("b", 1) // out of order: canonical order is a, b
	e.Uint("a", 2)
	if _, err := e.Finish(); err == nil {
		t.Fatal("expected order error")
	}
	e = s.Encoder(nil)
	e.Uint("a", 1)
	if _, err := e.Finish(); err == nil || !strings.Contains(err.Error(), "missing field") {
		t.Fatalf("err = %v, want missing field", err)
	}
	e = s.Encoder(nil)
	e.Uint("a", 1)
	e.Uint("nope", 2)
	if _, err := e.Finish(); err == nil {
		t.Fatal("expected unknown-field error")
	}
}

func TestSchemaRawSplice(t *testing.T) {
	inner := MustEncode(Record{"k": "v", "n": int64(3)})
	s := CompileSchema("fwd", "fields", "topic")
	e := s.Encoder(nil)
	e.Raw("fields", inner)
	e.Str("topic", "t1")
	got, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	want, _ := EncodeMessage(NewMessage("fwd", Record{
		"fields": Record{"k": "v", "n": int64(3)},
		"topic":  "t1",
	}))
	if !bytes.Equal(got, want) {
		t.Fatalf("raw splice bytes differ:\n got %x\nwant %x", got, want)
	}
	e = s.Encoder(nil)
	e.Raw("fields", nil)
	e.Str("topic", "t1")
	if _, err := e.Finish(); err == nil {
		t.Fatal("expected error for empty raw value")
	}
}

func TestSchemaEncoderReusesBuffer(t *testing.T) {
	s := CompileSchema("m", "x")
	buf := make([]byte, 0, 128)
	e := s.Encoder(buf)
	e.Uint("x", 1)
	out, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("encoder did not append into the supplied buffer")
	}
}

func TestCompileSchemaPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"duplicate": func() { CompileSchema("m", "a", "a") },
		"empty":     func() { CompileSchema("m", "") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := CompileSchema("m", "b", "a")
	if s.Name() != "m" {
		t.Fatalf("Name = %q", s.Name())
	}
	if f := s.Fields(); len(f) != 2 || f[0] != "a" || f[1] != "b" {
		t.Fatalf("Fields = %v, want canonical order", f)
	}
}

// randomValue builds a random encodable value tree (bounded depth).
func randomValue(rng *rand.Rand, depth int) Value {
	kind := rng.Intn(9)
	if depth <= 0 && kind >= 7 {
		kind = rng.Intn(7)
	}
	switch kind {
	case 0:
		return nil
	case 1:
		return rng.Intn(2) == 0
	case 2:
		return rng.Int63() - rng.Int63()
	case 3:
		return uint64(rng.Int63())
	case 4:
		return rng.NormFloat64()
	case 5:
		return randString(rng)
	case 6:
		b := make([]byte, rng.Intn(8))
		rng.Read(b)
		return b
	case 7:
		n := rng.Intn(4)
		l := make(List, n)
		for i := range l {
			l[i] = randomValue(rng, depth-1)
		}
		return l
	default:
		n := rng.Intn(4)
		r := Record{}
		for i := 0; i < n; i++ {
			r[randString(rng)] = randomValue(rng, depth-1)
		}
		return r
	}
}

func randString(rng *rand.Rand) string {
	const alphabet = "abcdefgh_-0123"
	b := make([]byte, 1+rng.Intn(8))
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// Property: for randomized records, schema-compiled encoding produces
// exactly the bytes of the legacy map-based Encode path.
func TestPropertySchemaMatchesLegacyEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		nf := 1 + rng.Intn(6)
		fields := Record{}
		for len(fields) < nf {
			fields[randString(rng)] = randomValue(rng, 2)
		}
		names := make([]string, 0, nf)
		for k := range fields {
			names = append(names, k)
		}
		name := "msg-" + randString(rng)
		s := CompileSchema(name, names...)
		e := s.Encoder(nil)
		for _, f := range s.Fields() {
			e.Value(f, fields[f])
		}
		got, err := e.Finish()
		if err != nil {
			t.Fatalf("iter %d: Finish: %v", iter, err)
		}
		want, err := EncodeMessage(NewMessage(name, fields))
		if err != nil {
			t.Fatalf("iter %d: EncodeMessage: %v", iter, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d: schema encoding diverges from legacy:\nfields %v\n got %x\nwant %x",
				iter, fields, got, want)
		}
	}
}
