package codec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// This file is the allocation-free decode plane: MsgView walks a message
// in place without materializing boxed Value trees, and DecodeInto drives
// a Visitor over any value for callers that need the full structure.
//
// ALIASING RULES: every []byte returned by a MsgView accessor (Name, Str,
// Bytes, Raw) and passed to a Visitor (Str, Bytes, Key) aliases the input
// buffer. It is valid only until the caller returns control to whoever
// owns that buffer — for wire messages, until the delivery callback
// returns (the network recycles delivery buffers). Retain with an
// explicit copy. Materializing accessors (Record, Message, Value) copy
// and are safe to retain.

// RawNil is the complete wire encoding of the nil value — the fallback
// for splicing an absent field into an Encoder with Raw. Callers must
// not modify it.
var RawNil = []byte{tagNil}

// skipValue returns the length of the single value at the front of data
// without materializing it.
func skipValue(data []byte, depth int) (int, error) {
	if depth > maxDepth {
		return 0, ErrDepth
	}
	if len(data) == 0 {
		return 0, ErrTruncated
	}
	rest := data[1:]
	switch tag := data[0]; tag {
	case tagNil, tagFalse, tagTrue:
		return 1, nil
	case tagInt, tagUint:
		_, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrTruncated
		}
		return 1 + n, nil
	case tagFloat:
		if len(rest) < 8 {
			return 0, ErrTruncated
		}
		return 9, nil
	case tagString, tagBytes:
		_, n, err := decodeLenPrefixed(rest)
		if err != nil {
			return 0, err
		}
		return 1 + n, nil
	case tagList:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrTruncated
		}
		if count > uint64(len(rest)) {
			return 0, fmt.Errorf("%w: list of %d elements in %d bytes", ErrSize, count, len(rest))
		}
		consumed := 1 + n
		for i := uint64(0); i < count; i++ {
			m, err := skipValue(data[consumed:], depth+1)
			if err != nil {
				return 0, fmt.Errorf("list element %d: %w", i, err)
			}
			consumed += m
		}
		return consumed, nil
	case tagRecord:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrTruncated
		}
		if count > uint64(len(rest)) {
			return 0, fmt.Errorf("%w: record of %d fields in %d bytes", ErrSize, count, len(rest))
		}
		consumed := 1 + n
		for i := uint64(0); i < count; i++ {
			if consumed >= len(data) || data[consumed] != tagString {
				return 0, fmt.Errorf("record field %d: %w (key must be string)", i, ErrBadTag)
			}
			_, kn, err := decodeLenPrefixed(data[consumed+1:])
			if err != nil {
				return 0, fmt.Errorf("record field %d key: %w", i, err)
			}
			consumed += 1 + kn
			m, err := skipValue(data[consumed:], depth+1)
			if err != nil {
				return 0, fmt.Errorf("record field %d: %w", i, err)
			}
			consumed += m
		}
		return consumed, nil
	default:
		return 0, fmt.Errorf("%w: 0x%02x", ErrBadTag, tag)
	}
}

// MsgView is a zero-copy window on one encoded message (the wire form of
// EncodeMessage). ParseMessage validates the whole message once; the
// typed accessors then read individual fields directly from the wire
// bytes without allocating. See the package aliasing rules above.
type MsgView struct {
	name   []byte
	pairs  []byte // the field pairs, immediately after the record header
	fields int
}

// ParseMessage validates data as one complete message and returns a view
// over it. The message is fully structure-checked here (well-formed
// values, string keys, no trailing bytes), so accessor misses mean
// "field absent or wrong type", never "corrupt input".
//
// ParseMessage additionally requires the top-level field keys to be in
// canonical form — strictly ascending, hence unique — which is the only
// form any encoder in this package produces. Non-canonical messages fail
// with ErrNonCanonical (the legacy DecodeMessage tolerates them by map
// overwrite); this is what lets the sorted-order early exit in field
// lookup be exact rather than heuristic.
func ParseMessage(data []byte) (MsgView, error) {
	if len(data) == 0 || data[0] != tagString {
		return MsgView{}, fmt.Errorf("decode message name: %w", errOrTruncated(data))
	}
	name, n, err := decodeLenPrefixed(data[1:])
	if err != nil {
		return MsgView{}, fmt.Errorf("decode message name: %w", err)
	}
	rest := data[1+n:]
	if len(rest) == 0 || rest[0] != tagRecord {
		return MsgView{}, fmt.Errorf("decode message %q: fields are not a record: %w", name, errOrTruncated(rest))
	}
	count, cn := binary.Uvarint(rest[1:])
	if cn <= 0 {
		return MsgView{}, fmt.Errorf("decode message %q fields: %w", name, ErrTruncated)
	}
	if count > uint64(len(rest)) {
		return MsgView{}, fmt.Errorf("decode message %q fields: %w: record of %d fields in %d bytes",
			name, ErrSize, count, len(rest))
	}
	pairs := rest[1+cn:]
	p := pairs
	var prev []byte
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 || p[0] != tagString {
			return MsgView{}, fmt.Errorf("decode message %q field %d: %w (key must be string)", name, i, ErrBadTag)
		}
		key, kn, err := decodeLenPrefixed(p[1:])
		if err != nil {
			return MsgView{}, fmt.Errorf("decode message %q field %d key: %w", name, i, err)
		}
		if i > 0 && bytes.Compare(prev, key) >= 0 {
			return MsgView{}, fmt.Errorf("decode message %q: key %q after %q: %w", name, key, prev, ErrNonCanonical)
		}
		prev = key
		p = p[1+kn:]
		m, err := skipValue(p, 1)
		if err != nil {
			return MsgView{}, fmt.Errorf("decode message %q field %q: %w", name, key, err)
		}
		p = p[m:]
	}
	if len(p) != 0 {
		return MsgView{}, fmt.Errorf("decode message %q: %w", name, ErrTrailing)
	}
	return MsgView{name: name, pairs: pairs, fields: int(count)}, nil
}

// errOrTruncated distinguishes "nothing there" from "wrong tag".
func errOrTruncated(data []byte) error {
	if len(data) == 0 {
		return ErrTruncated
	}
	return fmt.Errorf("%w: 0x%02x", ErrBadTag, data[0])
}

// Name returns the message name as raw bytes aliasing the input. Compare
// with string(v.Name()) == "x" or switch on string(v.Name()) — the
// compiler performs both without allocating.
func (v *MsgView) Name() []byte { return v.name }

// NameIs reports whether the message name equals s.
func (v *MsgView) NameIs(s string) bool { return string(v.name) == s }

// Len returns the number of fields.
func (v *MsgView) Len() int { return v.fields }

// lookup returns the raw TLV bytes of the named field. Keys are sorted
// on the wire, so the scan stops early once past name. The structure was
// validated by ParseMessage, so navigation errors cannot occur.
//
//repolint:hotpath
func (v *MsgView) lookup(name string) []byte {
	p := v.pairs
	for i := 0; i < v.fields; i++ {
		key, kn, err := decodeLenPrefixed(p[1:]) // p[0] == tagString, validated
		if err != nil {
			return nil
		}
		p = p[1+kn:]
		n, err := skipValue(p, 0)
		if err != nil {
			return nil
		}
		switch compareKey(key, name) {
		case 0:
			return p[:n]
		case 1:
			return nil // sorted: name cannot appear later
		}
		p = p[n:]
	}
	return nil
}

// compareKey orders a wire key against a field name without converting
// either (bytes.Compare would need an allocating []byte(name)).
//
//repolint:hotpath
func compareKey(key []byte, name string) int {
	n := len(key)
	if len(name) < n {
		n = len(name)
	}
	for i := 0; i < n; i++ {
		if key[i] != name[i] {
			if key[i] < name[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(key) < len(name):
		return -1
	case len(key) > len(name):
		return 1
	}
	return 0
}

// Uint returns a tagUint field.
//
//repolint:hotpath
func (v *MsgView) Uint(name string) (uint64, bool) {
	raw := v.lookup(name)
	if len(raw) == 0 || raw[0] != tagUint {
		return 0, false
	}
	u, n := binary.Uvarint(raw[1:])
	return u, n > 0
}

// Int returns a tagInt field.
//
//repolint:hotpath
func (v *MsgView) Int(name string) (int64, bool) {
	raw := v.lookup(name)
	if len(raw) == 0 || raw[0] != tagInt {
		return 0, false
	}
	u, n := binary.Uvarint(raw[1:])
	return unzigzag(u), n > 0
}

// Bool returns a boolean field.
//
//repolint:hotpath
func (v *MsgView) Bool(name string) (val, ok bool) {
	raw := v.lookup(name)
	if len(raw) == 0 {
		return false, false
	}
	switch raw[0] {
	case tagTrue:
		return true, true
	case tagFalse:
		return false, true
	}
	return false, false
}

// Float returns a tagFloat field.
//
//repolint:hotpath
func (v *MsgView) Float(name string) (float64, bool) {
	raw := v.lookup(name)
	if len(raw) != 9 || raw[0] != tagFloat {
		return 0, false
	}
	return math.Float64frombits(binary.BigEndian.Uint64(raw[1:])), true
}

// Str returns the payload of a string field, aliasing the input buffer.
//
//repolint:hotpath
func (v *MsgView) Str(name string) ([]byte, bool) {
	raw := v.lookup(name)
	if len(raw) == 0 || raw[0] != tagString {
		return nil, false
	}
	s, _, err := decodeLenPrefixed(raw[1:])
	return s, err == nil
}

// Bytes returns the payload of a bytes field, aliasing the input buffer.
//
//repolint:hotpath
func (v *MsgView) Bytes(name string) ([]byte, bool) {
	raw := v.lookup(name)
	if len(raw) == 0 || raw[0] != tagBytes {
		return nil, false
	}
	s, _, err := decodeLenPrefixed(raw[1:])
	return s, err == nil
}

// Raw returns the complete TLV encoding of the named field's value,
// aliasing the input buffer — ready to splice into an Encoder with Raw.
//
//repolint:hotpath
func (v *MsgView) Raw(name string) ([]byte, bool) {
	raw := v.lookup(name)
	return raw, raw != nil
}

// Record materializes a nested record field as a boxed Record (copying;
// safe to retain).
func (v *MsgView) Record(name string) (Record, bool) {
	raw := v.lookup(name)
	if len(raw) == 0 || raw[0] != tagRecord {
		return nil, false
	}
	val, _, err := decodeValue(raw, 0)
	if err != nil {
		return nil, false
	}
	rec, ok := val.(map[string]Value)
	return rec, ok
}

// Value materializes any field as a boxed Value (copying).
func (v *MsgView) Value(name string) (Value, bool) {
	raw := v.lookup(name)
	if raw == nil {
		return nil, false
	}
	val, _, err := decodeValue(raw, 0)
	if err != nil {
		return nil, false
	}
	return val, true
}

// Message materializes the whole view as a boxed Message — the
// compatibility bridge to APIs that take codec.Message.
func (v *MsgView) Message() (Message, error) {
	rec := make(Record, v.fields)
	p := v.pairs
	for i := 0; i < v.fields; i++ {
		key, kn, err := decodeLenPrefixed(p[1:])
		if err != nil {
			return Message{}, err
		}
		p = p[1+kn:]
		val, n, err := decodeValue(p, 1)
		if err != nil {
			return Message{}, fmt.Errorf("decode message %q field %q: %w", v.name, key, err)
		}
		rec[string(key)] = val
		p = p[n:]
	}
	return Message{Name: string(v.name), Fields: rec}, nil
}

// Visitor receives the structure of a value during DecodeInto, in wire
// order, without any boxing. Str, Bytes and Key arguments alias the
// input buffer (see the aliasing rules at the top of this file). Any
// non-nil error aborts the walk and is returned by DecodeInto.
type Visitor interface {
	Nil() error
	Bool(v bool) error
	Int(v int64) error
	Uint(v uint64) error
	Float(v float64) error
	Str(v []byte) error
	Bytes(v []byte) error
	// ListStart/ListEnd bracket a list's count elements.
	ListStart(count int) error
	ListEnd() error
	// RecordStart/RecordEnd bracket a record; Key precedes each value.
	RecordStart(count int) error
	Key(k []byte) error
	RecordEnd() error
}

// DecodeInto walks exactly one encoded value, feeding its structure to
// vis without materializing anything, and fails with ErrTrailing if
// bytes remain. It is the streaming counterpart of Decode.
func DecodeInto(data []byte, vis Visitor) error {
	n, err := decodeIntoValue(data, vis, 0)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("%w: %d of %d bytes consumed", ErrTrailing, n, len(data))
	}
	return nil
}

// DecodePrefixInto walks one value from the front of data into vis and
// returns the number of bytes consumed.
func DecodePrefixInto(data []byte, vis Visitor) (int, error) {
	return decodeIntoValue(data, vis, 0)
}

func decodeIntoValue(data []byte, vis Visitor, depth int) (int, error) {
	if depth > maxDepth {
		return 0, ErrDepth
	}
	if len(data) == 0 {
		return 0, ErrTruncated
	}
	rest := data[1:]
	switch tag := data[0]; tag {
	case tagNil:
		return 1, vis.Nil()
	case tagFalse:
		return 1, vis.Bool(false)
	case tagTrue:
		return 1, vis.Bool(true)
	case tagInt:
		u, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrTruncated
		}
		return 1 + n, vis.Int(unzigzag(u))
	case tagUint:
		u, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrTruncated
		}
		return 1 + n, vis.Uint(u)
	case tagFloat:
		if len(rest) < 8 {
			return 0, ErrTruncated
		}
		return 9, vis.Float(math.Float64frombits(binary.BigEndian.Uint64(rest)))
	case tagString:
		s, n, err := decodeLenPrefixed(rest)
		if err != nil {
			return 0, err
		}
		return 1 + n, vis.Str(s)
	case tagBytes:
		s, n, err := decodeLenPrefixed(rest)
		if err != nil {
			return 0, err
		}
		return 1 + n, vis.Bytes(s)
	case tagList:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrTruncated
		}
		if count > uint64(len(rest)) {
			return 0, fmt.Errorf("%w: list of %d elements in %d bytes", ErrSize, count, len(rest))
		}
		if err := vis.ListStart(int(count)); err != nil {
			return 0, err
		}
		consumed := 1 + n
		for i := uint64(0); i < count; i++ {
			m, err := decodeIntoValue(data[consumed:], vis, depth+1)
			if err != nil {
				return 0, fmt.Errorf("list element %d: %w", i, err)
			}
			consumed += m
		}
		return consumed, vis.ListEnd()
	case tagRecord:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, ErrTruncated
		}
		if count > uint64(len(rest)) {
			return 0, fmt.Errorf("%w: record of %d fields in %d bytes", ErrSize, count, len(rest))
		}
		if err := vis.RecordStart(int(count)); err != nil {
			return 0, err
		}
		consumed := 1 + n
		for i := uint64(0); i < count; i++ {
			if consumed >= len(data) || data[consumed] != tagString {
				return 0, fmt.Errorf("record field %d: %w (key must be string)", i, ErrBadTag)
			}
			key, kn, err := decodeLenPrefixed(data[consumed+1:])
			if err != nil {
				return 0, fmt.Errorf("record field %d key: %w", i, err)
			}
			if err := vis.Key(key); err != nil {
				return 0, err
			}
			consumed += 1 + kn
			m, err := decodeIntoValue(data[consumed:], vis, depth+1)
			if err != nil {
				return 0, fmt.Errorf("record field %q: %w", key, err)
			}
			consumed += m
		}
		return consumed, vis.RecordEnd()
	default:
		return 0, fmt.Errorf("%w: 0x%02x", ErrBadTag, tag)
	}
}
