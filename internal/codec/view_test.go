package codec

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func mustParse(t *testing.T, data []byte) MsgView {
	t.Helper()
	v, err := ParseMessage(data)
	if err != nil {
		t.Fatalf("ParseMessage: %v", err)
	}
	return v
}

func TestViewTypedAccessors(t *testing.T) {
	data, err := EncodeMessage(NewMessage("probe", Record{
		"u":   uint64(99),
		"i":   int64(-4),
		"f":   2.5,
		"yes": true,
		"no":  false,
		"s":   "hello",
		"b":   []byte{7, 8},
		"nil": nil,
		"rec": Record{"inner": int64(1)},
	}))
	if err != nil {
		t.Fatalf("EncodeMessage: %v", err)
	}
	v := mustParse(t, data)
	if !v.NameIs("probe") || string(v.Name()) != "probe" {
		t.Fatalf("name = %q", v.Name())
	}
	if v.Len() != 9 {
		t.Fatalf("Len = %d", v.Len())
	}
	if u, ok := v.Uint("u"); !ok || u != 99 {
		t.Fatalf("Uint(u) = %d, %v", u, ok)
	}
	if i, ok := v.Int("i"); !ok || i != -4 {
		t.Fatalf("Int(i) = %d, %v", i, ok)
	}
	if f, ok := v.Float("f"); !ok || f != 2.5 {
		t.Fatalf("Float(f) = %v, %v", f, ok)
	}
	if b, ok := v.Bool("yes"); !ok || !b {
		t.Fatalf("Bool(yes) = %v, %v", b, ok)
	}
	if b, ok := v.Bool("no"); !ok || b {
		t.Fatalf("Bool(no) = %v, %v", b, ok)
	}
	if s, ok := v.Str("s"); !ok || string(s) != "hello" {
		t.Fatalf("Str(s) = %q, %v", s, ok)
	}
	if b, ok := v.Bytes("b"); !ok || !bytes.Equal(b, []byte{7, 8}) {
		t.Fatalf("Bytes(b) = %v, %v", b, ok)
	}
	if rec, ok := v.Record("rec"); !ok || !Equal(rec, Record{"inner": int64(1)}) {
		t.Fatalf("Record(rec) = %v, %v", rec, ok)
	}
	if val, ok := v.Value("nil"); !ok || val != nil {
		t.Fatalf("Value(nil) = %v, %v", val, ok)
	}
	if raw, ok := v.Raw("u"); !ok || !bytes.Equal(raw, MustEncode(uint64(99))) {
		t.Fatalf("Raw(u) = %x, %v", raw, ok)
	}
}

func TestViewMissesAndTypeMismatches(t *testing.T) {
	data, _ := EncodeMessage(NewMessage("m", Record{"s": "x", "u": uint64(1)}))
	v := mustParse(t, data)
	if _, ok := v.Uint("absent"); ok {
		t.Fatal("Uint(absent) hit")
	}
	if _, ok := v.Uint("s"); ok {
		t.Fatal("Uint on string field hit")
	}
	if _, ok := v.Int("u"); ok {
		t.Fatal("Int on uint field hit")
	}
	if _, ok := v.Str("u"); ok {
		t.Fatal("Str on uint field hit")
	}
	if _, ok := v.Bytes("s"); ok {
		t.Fatal("Bytes on string field hit")
	}
	if _, ok := v.Bool("s"); ok {
		t.Fatal("Bool on string field hit")
	}
	if _, ok := v.Float("s"); ok {
		t.Fatal("Float on string field hit")
	}
	if _, ok := v.Record("s"); ok {
		t.Fatal("Record on string field hit")
	}
	// "zz" sorts after every present key: exercises the early-exit scan.
	if _, ok := v.Raw("zz"); ok {
		t.Fatal("Raw(zz) hit")
	}
}

func TestViewMessageMaterialization(t *testing.T) {
	in := NewMessage("full", Record{
		"a": int64(1), "b": "two", "c": List{true, nil},
	})
	data, _ := EncodeMessage(in)
	v := mustParse(t, data)
	got, err := v.Message()
	if err != nil {
		t.Fatalf("Message: %v", err)
	}
	if got.Name != in.Name || !reflect.DeepEqual(got.Fields, in.Fields) {
		t.Fatalf("materialized %v, want %v", got, in)
	}
}

func TestParseMessageRejectsCorrupt(t *testing.T) {
	good, _ := EncodeMessage(NewMessage("m", Record{"k": "v"}))
	cases := map[string][]byte{
		"empty":           nil,
		"name not string": MustEncode(uint64(1)),
		"no fields":       MustEncode("m"),
		"fields not record": append(MustEncode("m"),
			MustEncode("not-a-record")...),
		"trailing":  append(append([]byte{}, good...), 0x00),
		"truncated": good[:len(good)-1],
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseMessage(data); err == nil {
				t.Fatalf("ParseMessage(% x) succeeded", data)
			}
		})
	}
}

// TestParseMessageAgreesWithDecodeMessage feeds random mutations to both
// parsers. ParseMessage accepts a subset of what DecodeMessage accepts:
// everything it accepts must also decode legacily to a codec-equal
// message, and the only inputs it may additionally reject are
// non-canonical ones (out-of-order or duplicate keys, which no encoder
// in this package produces) — so swapping call sites onto the view path
// cannot change how any encoder-produced wire message is handled.
func TestParseMessageAgreesWithDecodeMessage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base, _ := EncodeMessage(NewMessage("mw.event", Record{
		"topic": "t", "name": "n", "fields": Record{"x": int64(1)},
	}))
	for iter := 0; iter < 2000; iter++ {
		data := append([]byte{}, base...)
		for k := 0; k < 1+rng.Intn(3); k++ {
			switch rng.Intn(3) {
			case 0:
				data[rng.Intn(len(data))] = byte(rng.Intn(256))
			case 1:
				data = data[:rng.Intn(len(data)+1)]
			case 2:
				data = append(data, byte(rng.Intn(256)))
			}
			if len(data) == 0 {
				break
			}
		}
		legacy, legacyErr := DecodeMessage(data)
		view, viewErr := ParseMessage(data)
		switch {
		case viewErr == nil && legacyErr != nil:
			t.Fatalf("iter %d: view accepted % x, legacy rejected: %v", iter, data, legacyErr)
		case viewErr == nil:
			vm, err := view.Message()
			if err != nil {
				t.Fatalf("iter %d: view materialization failed: %v", iter, err)
			}
			if vm.Name != legacy.Name || !Equal(Value(vm.Fields), Value(legacy.Fields)) {
				t.Fatalf("iter %d: view decoded %v, legacy %v", iter, vm, legacy)
			}
		case legacyErr == nil:
			// The only permitted extra rejection is non-canonicality.
			if !errors.Is(viewErr, ErrNonCanonical) {
				t.Fatalf("iter %d: view rejected legacy-accepted % x with %v (want ErrNonCanonical)",
					iter, data, viewErr)
			}
		}
	}
}

func TestParseMessageRejectsNonCanonical(t *testing.T) {
	// Hand-build messages with out-of-order and duplicate keys: the
	// legacy decoder tolerates both (map overwrite), the view rejects
	// them so its sorted-scan lookup is exact.
	pair := func(key string, val []byte) []byte {
		out := append([]byte{tagString, byte(len(key))}, key...)
		return append(out, val...)
	}
	msg := func(pairs ...[]byte) []byte {
		out := append(MustEncode("m"), tagRecord, byte(len(pairs)))
		for _, p := range pairs {
			out = append(out, p...)
		}
		return out
	}
	unsorted := msg(pair("b", MustEncode(int64(1))), pair("a", MustEncode(int64(2))))
	duplicate := msg(pair("a", []byte{tagNil}), pair("a", MustEncode(int64(5))))
	for name, data := range map[string][]byte{"unsorted": unsorted, "duplicate": duplicate} {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeMessage(data); err != nil {
				t.Fatalf("legacy decoder must tolerate %s keys: %v", name, err)
			}
			if _, err := ParseMessage(data); !errors.Is(err, ErrNonCanonical) {
				t.Fatalf("ParseMessage err = %v, want ErrNonCanonical", err)
			}
		})
	}
}

func TestSkipValueErrors(t *testing.T) {
	deep := []byte{}
	for i := 0; i < maxDepth+2; i++ {
		deep = append(deep, tagList, 1)
	}
	deep = append(deep, tagNil)
	if _, err := skipValue(deep, 0); !errors.Is(err, ErrDepth) {
		t.Fatalf("err = %v, want ErrDepth", err)
	}
	if _, err := skipValue(nil, 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if _, err := skipValue([]byte{0xEE}, 0); !errors.Is(err, ErrBadTag) {
		t.Fatalf("err = %v, want ErrBadTag", err)
	}
}

// eventVisitor records the walk as a flat trace for assertions.
type eventVisitor struct {
	trace []string
	fail  string // event name to fail on, "" = never
}

func (v *eventVisitor) emit(s string) error {
	v.trace = append(v.trace, s)
	if v.fail == s {
		return errors.New("visitor abort")
	}
	return nil
}

func (v *eventVisitor) Nil() error              { return v.emit("nil") }
func (v *eventVisitor) Bool(b bool) error       { return v.emit(boolName(b)) }
func (v *eventVisitor) Int(x int64) error       { return v.emit("int") }
func (v *eventVisitor) Uint(x uint64) error     { return v.emit("uint") }
func (v *eventVisitor) Float(f float64) error   { return v.emit("float") }
func (v *eventVisitor) Str(b []byte) error      { return v.emit("str:" + string(b)) }
func (v *eventVisitor) Bytes(b []byte) error    { return v.emit("bytes") }
func (v *eventVisitor) ListStart(n int) error   { return v.emit("[") }
func (v *eventVisitor) ListEnd() error          { return v.emit("]") }
func (v *eventVisitor) RecordStart(n int) error { return v.emit("{") }
func (v *eventVisitor) Key(k []byte) error      { return v.emit("key:" + string(k)) }
func (v *eventVisitor) RecordEnd() error        { return v.emit("}") }

func boolName(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func TestDecodeInto(t *testing.T) {
	data := MustEncode(Record{
		"a": List{int64(1), "x", nil, true},
		"b": uint64(2),
		"f": 1.5,
		"z": []byte{1},
	})
	vis := &eventVisitor{}
	if err := DecodeInto(data, vis); err != nil {
		t.Fatalf("DecodeInto: %v", err)
	}
	want := []string{
		"{", "key:a", "[", "int", "str:x", "nil", "true", "]",
		"key:b", "uint", "key:f", "float", "key:z", "bytes", "}",
	}
	if !reflect.DeepEqual(vis.trace, want) {
		t.Fatalf("trace = %v, want %v", vis.trace, want)
	}
}

func TestDecodeIntoTrailingAndAbort(t *testing.T) {
	data := append(MustEncode(int64(1)), 0x00)
	if err := DecodeInto(data, &eventVisitor{}); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
	n, err := DecodePrefixInto(data, &eventVisitor{})
	if err != nil || n != 2 {
		t.Fatalf("DecodePrefixInto = %d, %v", n, err)
	}
	// Visitor errors abort the walk.
	nested := MustEncode(Record{"k": List{"deep"}})
	vis := &eventVisitor{fail: "str:deep"}
	if err := DecodeInto(nested, vis); err == nil {
		t.Fatal("expected visitor abort to propagate")
	}
}

// Property: DecodeInto visits exactly the values Decode materializes,
// for random value trees.
func TestPropertyDecodeIntoMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 200; iter++ {
		in := randomValue(rng, 3)
		if f, ok := in.(float64); ok && math.IsNaN(f) {
			continue
		}
		data, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		vis := &rebuildVisitor{}
		if err := DecodeInto(data, vis); err != nil {
			t.Fatalf("iter %d: DecodeInto: %v", iter, err)
		}
		out := vis.result()
		if !Equal(in, out) {
			t.Fatalf("iter %d: rebuilt %#v, want %#v", iter, out, in)
		}
	}
}

// rebuildVisitor reconstructs the boxed value from visitor events — the
// inverse bridge used to cross-check DecodeInto against Decode.
type rebuildVisitor struct {
	stack []any    // *List or *Record frames
	keys  []string // pending key per record frame
	root  Value
	has   bool
}

func (v *rebuildVisitor) push(x Value) error {
	if len(v.stack) == 0 {
		v.root, v.has = x, true
		return nil
	}
	switch top := v.stack[len(v.stack)-1].(type) {
	case *List:
		*top = append(*top, x)
	case *Record:
		(*top)[v.keys[len(v.keys)-1]] = x
	}
	return nil
}

func (v *rebuildVisitor) result() Value { return v.root }

func (v *rebuildVisitor) Nil() error            { return v.push(nil) }
func (v *rebuildVisitor) Bool(b bool) error     { return v.push(b) }
func (v *rebuildVisitor) Int(x int64) error     { return v.push(x) }
func (v *rebuildVisitor) Uint(x uint64) error   { return v.push(x) }
func (v *rebuildVisitor) Float(f float64) error { return v.push(f) }
func (v *rebuildVisitor) Str(b []byte) error    { return v.push(string(b)) }
func (v *rebuildVisitor) Bytes(b []byte) error  { return v.push(append([]byte{}, b...)) }

func (v *rebuildVisitor) ListStart(n int) error {
	l := make(List, 0, n)
	v.stack = append(v.stack, &l)
	return nil
}

func (v *rebuildVisitor) ListEnd() error {
	l := v.stack[len(v.stack)-1].(*List)
	v.stack = v.stack[:len(v.stack)-1]
	return v.push(*l)
}

func (v *rebuildVisitor) RecordStart(n int) error {
	r := make(Record, n)
	v.stack = append(v.stack, &r)
	v.keys = append(v.keys, "")
	return nil
}

func (v *rebuildVisitor) Key(k []byte) error {
	v.keys[len(v.keys)-1] = string(k)
	return nil
}

func (v *rebuildVisitor) RecordEnd() error {
	r := v.stack[len(v.stack)-1].(*Record)
	v.stack = v.stack[:len(v.stack)-1]
	v.keys = v.keys[:len(v.keys)-1]
	return v.push(*r)
}
