package core

import "fmt"

// Absence forbids an event during an interval: between Open and the
// matching Close (same key), Forbidden must not occur. In the
// floor-control service it encodes the cooperative-subscriber assumption
// that a holder does not re-request a resource it already holds.
type Absence struct {
	ConstraintName string
	ConstraintDesc string
	ScopeKind      Scope
	Open           string
	Close          string
	Forbidden      string
	Key            KeyFunc
}

var _ Constraint = (*Absence)(nil)

// Name implements Constraint.
func (a *Absence) Name() string { return a.ConstraintName }

// Scope implements Constraint.
func (a *Absence) Scope() Scope { return a.ScopeKind }

// Description implements Constraint.
func (a *Absence) Description() string {
	if a.ConstraintDesc != "" {
		return a.ConstraintDesc
	}
	return fmt.Sprintf("%s must not occur between %s and %s (same key)", a.Forbidden, a.Open, a.Close)
}

// NewMonitor implements Constraint.
func (a *Absence) NewMonitor() Monitor {
	return &absenceMonitor{spec: a, open: make(map[string]int)}
}

type absenceMonitor struct {
	spec *Absence
	open map[string]int
}

func (m *absenceMonitor) Observe(e Event) error {
	key, ok := m.spec.Key(e)
	if !ok {
		return nil
	}
	switch e.Primitive {
	case m.spec.Open:
		m.open[key]++
	case m.spec.Close:
		if m.open[key] > 0 {
			m.open[key]--
		}
	}
	// The forbidden primitive may coincide with neither, either or both of
	// the delimiters; check after interval bookkeeping so that an opening
	// event that is itself forbidden is caught on re-entry only.
	if e.Primitive == m.spec.Forbidden && e.Primitive != m.spec.Open && m.open[key] > 0 {
		ev := e
		return &ViolationError{
			Constraint: m.spec.ConstraintName,
			Event:      &ev,
			Detail:     fmt.Sprintf("%s during open %s/%s interval for key %q", m.spec.Forbidden, m.spec.Open, m.spec.Close, key),
		}
	}
	return nil
}

func (m *absenceMonitor) AtEnd() error { return nil }
