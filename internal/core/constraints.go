package core

import (
	"fmt"
)

// KeyFunc extracts a correlation key from an event — typically the resource
// identifier, or the (SAP, resource) pair for local constraints. The second
// result reports whether the event carries a key at all.
type KeyFunc func(Event) (string, bool)

// KeyParam correlates events by one string parameter (e.g. "resid").
func KeyParam(param string) KeyFunc {
	return func(e Event) (string, bool) {
		v, ok := e.Params[param]
		if !ok {
			return "", false
		}
		s, ok := v.(string)
		return s, ok
	}
}

// KeySAPAndParam correlates events by SAP plus one string parameter, the
// usual shape of the paper's *local* constraints ("for a given resource
// identification", at a given access point).
func KeySAPAndParam(param string) KeyFunc {
	inner := KeyParam(param)
	return func(e Event) (string, bool) {
		k, ok := inner(e)
		if !ok {
			return "", false
		}
		return e.SAP.String() + "/" + k, true
	}
}

// Precedes is a safety constraint: an occurrence of Enabled consumes a
// prior unmatched occurrence of Trigger with the same key. It encodes
// "granted may only occur after request" and, symmetrically, "free may
// only occur after granted".
type Precedes struct {
	ConstraintName string
	ConstraintDesc string
	ScopeKind      Scope
	Trigger        string
	Enabled        string
	Key            KeyFunc
	// AllowPendingMany, when false, additionally rejects a second Trigger
	// while one is already pending for the same key (no double request).
	AllowPendingMany bool
	// NonConsuming makes Enabled a pure precondition check: it requires a
	// pending Trigger but does not consume it, so one trigger can enable
	// many occurrences (multicast delivery, repeated reads under a lease).
	NonConsuming bool
}

var _ Constraint = (*Precedes)(nil)

// Name implements Constraint.
func (p *Precedes) Name() string { return p.ConstraintName }

// Scope implements Constraint.
func (p *Precedes) Scope() Scope { return p.ScopeKind }

// Description implements Constraint.
func (p *Precedes) Description() string {
	if p.ConstraintDesc != "" {
		return p.ConstraintDesc
	}
	return fmt.Sprintf("%s may only occur after an unmatched %s (same key)", p.Enabled, p.Trigger)
}

// NewMonitor implements Constraint.
func (p *Precedes) NewMonitor() Monitor {
	return &precedesMonitor{spec: p, pending: make(map[string]int)}
}

type precedesMonitor struct {
	spec    *Precedes
	pending map[string]int
}

func (m *precedesMonitor) Observe(e Event) error {
	switch e.Primitive {
	case m.spec.Trigger:
		key, ok := m.spec.Key(e)
		if !ok {
			return nil
		}
		if !m.spec.AllowPendingMany && m.pending[key] > 0 {
			ev := e
			return &ViolationError{
				Constraint: m.spec.ConstraintName,
				Event:      &ev,
				Detail:     fmt.Sprintf("%s re-issued while already pending for key %q", m.spec.Trigger, key),
			}
		}
		m.pending[key]++
	case m.spec.Enabled:
		key, ok := m.spec.Key(e)
		if !ok {
			return nil
		}
		if m.pending[key] == 0 {
			ev := e
			return &ViolationError{
				Constraint: m.spec.ConstraintName,
				Event:      &ev,
				Detail:     fmt.Sprintf("%s without prior %s for key %q", m.spec.Enabled, m.spec.Trigger, key),
			}
		}
		if !m.spec.NonConsuming {
			m.pending[key]--
		}
	}
	return nil
}

func (m *precedesMonitor) AtEnd() error { return nil }

// EventuallyFollows is a liveness constraint: every occurrence of Trigger
// must eventually be followed by Response with the same key — the paper's
// "the execution of granted eventually follows the execution of request".
// Violations are reported at the end of the observation window.
type EventuallyFollows struct {
	ConstraintName string
	ConstraintDesc string
	ScopeKind      Scope
	Trigger        string
	Response       string
	Key            KeyFunc
}

var _ Constraint = (*EventuallyFollows)(nil)

// Name implements Constraint.
func (f *EventuallyFollows) Name() string { return f.ConstraintName }

// Scope implements Constraint.
func (f *EventuallyFollows) Scope() Scope { return f.ScopeKind }

// Description implements Constraint.
func (f *EventuallyFollows) Description() string {
	if f.ConstraintDesc != "" {
		return f.ConstraintDesc
	}
	return fmt.Sprintf("the execution of %s eventually follows the execution of %s (same key)", f.Response, f.Trigger)
}

// NewMonitor implements Constraint.
func (f *EventuallyFollows) NewMonitor() Monitor {
	return &eventuallyMonitor{spec: f, pending: make(map[string]int)}
}

type eventuallyMonitor struct {
	spec    *EventuallyFollows
	pending map[string]int
}

func (m *eventuallyMonitor) Observe(e Event) error {
	switch e.Primitive {
	case m.spec.Trigger:
		if key, ok := m.spec.Key(e); ok {
			m.pending[key]++
		}
	case m.spec.Response:
		if key, ok := m.spec.Key(e); ok && m.pending[key] > 0 {
			m.pending[key]--
		}
	}
	return nil
}

func (m *eventuallyMonitor) AtEnd() error {
	for key, n := range m.pending {
		if n > 0 {
			return &ViolationError{
				Constraint: m.spec.ConstraintName,
				Detail:     fmt.Sprintf("%d %s(s) for key %q never followed by %s", n, m.spec.Trigger, key, m.spec.Response),
			}
		}
	}
	return nil
}

// MutualExclusion is the paper's remote constraint: between an Acquire and
// the matching Release, no other SAP may Acquire the same resource — "a
// resource is only granted to one subscriber at a time".
type MutualExclusion struct {
	ConstraintName string
	ConstraintDesc string
	Acquire        string
	Release        string
	// Key extracts the contended resource (remote scope: SAP-independent).
	Key KeyFunc
}

var _ Constraint = (*MutualExclusion)(nil)

// Name implements Constraint.
func (x *MutualExclusion) Name() string { return x.ConstraintName }

// Scope implements Constraint. Mutual exclusion is inherently remote.
func (x *MutualExclusion) Scope() Scope { return ScopeRemote }

// Description implements Constraint.
func (x *MutualExclusion) Description() string {
	if x.ConstraintDesc != "" {
		return x.ConstraintDesc
	}
	return fmt.Sprintf("a resource is %s to at most one SAP at a time (%s releases)", x.Acquire, x.Release)
}

// NewMonitor implements Constraint.
func (x *MutualExclusion) NewMonitor() Monitor {
	return &mutexMonitor{spec: x, holder: make(map[string]SAP)}
}

type mutexMonitor struct {
	spec   *MutualExclusion
	holder map[string]SAP
}

func (m *mutexMonitor) Observe(e Event) error {
	key, ok := m.spec.Key(e)
	if !ok {
		return nil
	}
	switch e.Primitive {
	case m.spec.Acquire:
		if holder, held := m.holder[key]; held {
			ev := e
			return &ViolationError{
				Constraint: m.spec.ConstraintName,
				Event:      &ev,
				Detail:     fmt.Sprintf("resource %q already held by %s", key, holder),
			}
		}
		m.holder[key] = e.SAP
	case m.spec.Release:
		holder, held := m.holder[key]
		if !held {
			ev := e
			return &ViolationError{
				Constraint: m.spec.ConstraintName,
				Event:      &ev,
				Detail:     fmt.Sprintf("release of %q which is not held", key),
			}
		}
		if holder != e.SAP {
			ev := e
			return &ViolationError{
				Constraint: m.spec.ConstraintName,
				Event:      &ev,
				Detail:     fmt.Sprintf("release of %q by %s but holder is %s", key, e.SAP, holder),
			}
		}
		delete(m.holder, key)
	}
	return nil
}

func (m *mutexMonitor) AtEnd() error { return nil }
