// Package core implements the paper's primary contribution: the *service
// concept* as a first-class, machine-checkable design artifact.
//
// A service specification (ServiceSpec) defines, exactly as §2 and §4.2 of
// the paper prescribe:
//
//   - the *service primitives* that occur at service access points (SAPs),
//     with their parameters ("request, granted and free, with the resource
//     identification as parameter");
//   - the *roles* users play at those SAPs ("the identification of the
//     subscriber is implied by the identification of the access point");
//   - the *relationships between service primitives*, split into local
//     constraints (ordering at one SAP) and remote constraints (global,
//     e.g. "a resource is only granted to one subscriber at a time").
//
// The package also provides the machinery that makes a specification
// useful: an Observer that watches primitive executions at runtime and
// checks every constraint online, trace recording for offline analysis,
// and a Provider interface that lets application parts be written once
// against the service and executed over any conforming implementation —
// the paper's core argument for why "the design of the application is not
// influenced by the choice of a protocol solution" (§5).
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/codec"
)

// Direction distinguishes who initiates a primitive at the SAP boundary.
type Direction int

// Directions. FromUser primitives are submitted by the service user
// (e.g. request, free); ToUser primitives are delivered by the service
// provider (e.g. granted).
const (
	FromUser Direction = iota + 1
	ToUser
)

func (d Direction) String() string {
	switch d {
	case FromUser:
		return "from-user"
	case ToUser:
		return "to-user"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// ParamKind is the type of a primitive parameter.
type ParamKind int

// Parameter kinds supported by service specifications.
const (
	KindString ParamKind = iota + 1
	KindInt
	KindBool
	KindStringList
)

func (k ParamKind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindStringList:
		return "list<string>"
	default:
		return fmt.Sprintf("ParamKind(%d)", int(k))
	}
}

// ParamDef declares one parameter of a service primitive.
type ParamDef struct {
	Name string
	Kind ParamKind
}

// PrimitiveDef declares a service primitive: its name, its direction at
// the SAP, and its parameters.
type PrimitiveDef struct {
	Name      string
	Direction Direction
	Params    []ParamDef
}

// Signature renders the primitive in the paper's interface style, e.g.
// "request(resid: string)".
func (p PrimitiveDef) Signature() string {
	parts := make([]string, len(p.Params))
	for i, param := range p.Params {
		parts[i] = param.Name + ": " + param.Kind.String()
	}
	return p.Name + "(" + strings.Join(parts, ", ") + ")"
}

// RoleDef declares a role users may play at SAPs (e.g. "subscriber").
type RoleDef struct {
	Name string
	// Min and Max bound how many SAPs of this role a deployment may have;
	// Max <= 0 means unbounded.
	Min, Max int
}

// SAP identifies a service access point. Per the paper, the user identity
// is implied by the SAP where a primitive is executed.
type SAP struct {
	Role string
	ID   string
}

func (s SAP) String() string { return s.Role + ":" + s.ID }

// Event records one primitive execution at a SAP at a virtual instant.
type Event struct {
	At        time.Duration
	SAP       SAP
	Primitive string
	Params    codec.Record
}

// Label renders the event as an LTS label, parameters in sorted order:
// "granted@subscriber:s1(resid=r1)".
func (e Event) Label() string {
	keys := make([]string, 0, len(e.Params))
	for k := range e.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(e.Primitive)
	sb.WriteByte('@')
	sb.WriteString(e.SAP.String())
	sb.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%v", k, e.Params[k])
	}
	sb.WriteByte(')')
	return sb.String()
}

func (e Event) String() string {
	return fmt.Sprintf("%8v %s", e.At, e.Label())
}

// Trace is a time-ordered sequence of events.
type Trace []Event

// Labels projects the trace onto LTS labels.
func (t Trace) Labels() []string {
	out := make([]string, len(t))
	for i, e := range t {
		out[i] = e.Label()
	}
	return out
}

// Filter returns the sub-trace of events satisfying keep.
func (t Trace) Filter(keep func(Event) bool) Trace {
	var out Trace
	for _, e := range t {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// AtSAP returns the local sub-trace observed at one SAP.
func (t Trace) AtSAP(sap SAP) Trace {
	return t.Filter(func(e Event) bool { return e.SAP == sap })
}

// String renders the trace one event per line.
func (t Trace) String() string {
	var sb strings.Builder
	for _, e := range t {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Scope classifies a constraint as local (about the order of primitives at
// a single SAP) or remote (about the global relationship across SAPs).
type Scope int

// Constraint scopes, matching the paper's "local constraint" / "remote
// constraint" vocabulary in §4.2.
const (
	ScopeLocal Scope = iota + 1
	ScopeRemote
)

func (s Scope) String() string {
	switch s {
	case ScopeLocal:
		return "local"
	case ScopeRemote:
		return "remote"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// A Monitor checks one constraint online, event by event. Observe returns
// a non-nil error on a safety violation. AtEnd reports liveness violations
// outstanding when the observation window closes.
type Monitor interface {
	Observe(Event) error
	AtEnd() error
}

// Constraint is a named, scoped relationship between service primitives
// that every conforming implementation must maintain.
type Constraint interface {
	Name() string
	Scope() Scope
	Description() string
	// NewMonitor returns a fresh online checker for one execution.
	NewMonitor() Monitor
}

// ViolationError describes a constraint violation, carrying the violating
// event for diagnostics.
type ViolationError struct {
	Constraint string
	Event      *Event // nil for end-of-trace (liveness) violations
	Detail     string
}

func (v *ViolationError) Error() string {
	if v.Event != nil {
		return fmt.Sprintf("constraint %q violated by %s: %s", v.Constraint, v.Event.Label(), v.Detail)
	}
	return fmt.Sprintf("constraint %q violated at end of trace: %s", v.Constraint, v.Detail)
}

// AsViolation extracts a *ViolationError from err, if present.
func AsViolation(err error) (*ViolationError, bool) {
	var v *ViolationError
	ok := errors.As(err, &v)
	return v, ok
}
