package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/sim"
)

// testSpec returns a floor-control-shaped specification, mirroring the
// paper's Figure 5.
func testSpec() *ServiceSpec {
	return &ServiceSpec{
		Name:        "floor-control",
		Description: "coordinated exclusive access to named resources",
		Roles:       []RoleDef{{Name: "subscriber", Min: 2}},
		Primitives: []PrimitiveDef{
			{Name: "request", Direction: FromUser, Params: []ParamDef{{Name: "resid", Kind: KindString}}},
			{Name: "granted", Direction: ToUser, Params: []ParamDef{{Name: "resid", Kind: KindString}}},
			{Name: "free", Direction: FromUser, Params: []ParamDef{{Name: "resid", Kind: KindString}}},
		},
		Constraints: []Constraint{
			&Precedes{
				ConstraintName: "granted-follows-request",
				ScopeKind:      ScopeLocal,
				Trigger:        "request",
				Enabled:        "granted",
				Key:            KeySAPAndParam("resid"),
			},
			&Precedes{
				ConstraintName: "free-follows-granted",
				ScopeKind:      ScopeLocal,
				Trigger:        "granted",
				Enabled:        "free",
				Key:            KeySAPAndParam("resid"),
			},
			&MutualExclusion{
				ConstraintName: "exclusive-grant",
				Acquire:        "granted",
				Release:        "free",
				Key:            KeyParam("resid"),
			},
			&EventuallyFollows{
				ConstraintName: "request-eventually-granted",
				ScopeKind:      ScopeLocal,
				Trigger:        "request",
				Response:       "granted",
				Key:            KeySAPAndParam("resid"),
			},
		},
	}
}

func sap(id string) SAP { return SAP{Role: "subscriber", ID: id} }

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestSpecValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*ServiceSpec)
		want   string
	}{
		{"unnamed service", func(s *ServiceSpec) { s.Name = "" }, "must be named"},
		{"no primitives", func(s *ServiceSpec) { s.Primitives = nil }, "no primitives"},
		{"dup primitive", func(s *ServiceSpec) { s.Primitives = append(s.Primitives, s.Primitives[0]) }, "twice"},
		{"unnamed primitive", func(s *ServiceSpec) { s.Primitives[0].Name = "" }, "unnamed primitive"},
		{"bad direction", func(s *ServiceSpec) { s.Primitives[0].Direction = 0 }, "invalid direction"},
		{"dup param", func(s *ServiceSpec) {
			s.Primitives[0].Params = append(s.Primitives[0].Params, s.Primitives[0].Params[0])
		}, "parameter"},
		{"dup role", func(s *ServiceSpec) { s.Roles = append(s.Roles, s.Roles[0]) }, "role"},
		{"unnamed role", func(s *ServiceSpec) { s.Roles[0].Name = "" }, "unnamed role"},
		{"role min>max", func(s *ServiceSpec) { s.Roles[0].Min = 5; s.Roles[0].Max = 2 }, "min 5 > max 2"},
		{"nil constraint", func(s *ServiceSpec) { s.Constraints = append(s.Constraints, nil) }, "nil constraint"},
		{"dup constraint", func(s *ServiceSpec) { s.Constraints = append(s.Constraints, s.Constraints[0]) }, "constraint"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := testSpec()
			tt.mutate(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("err = %v, want contains %q", err, tt.want)
			}
		})
	}
}

func TestPrimitiveAndRoleLookup(t *testing.T) {
	s := testSpec()
	if p, ok := s.Primitive("request"); !ok || p.Direction != FromUser {
		t.Fatalf("Primitive(request) = %+v, %v", p, ok)
	}
	if _, ok := s.Primitive("nope"); ok {
		t.Fatal("unknown primitive found")
	}
	if r, ok := s.Role("subscriber"); !ok || r.Min != 2 {
		t.Fatalf("Role(subscriber) = %+v, %v", r, ok)
	}
	if _, ok := s.Role("controller"); ok {
		t.Fatal("unknown role found")
	}
}

func TestCheckEvent(t *testing.T) {
	s := testSpec()
	good := Event{SAP: sap("s1"), Primitive: "request", Params: codec.Record{"resid": "r1"}}
	if err := s.CheckEvent(good); err != nil {
		t.Fatalf("good event rejected: %v", err)
	}
	tests := []struct {
		name string
		e    Event
		want error
	}{
		{"unknown primitive", Event{SAP: sap("s1"), Primitive: "steal", Params: codec.Record{}}, ErrUnknownPrimitive},
		{"unknown role", Event{SAP: SAP{Role: "martian", ID: "m"}, Primitive: "request", Params: codec.Record{"resid": "r"}}, ErrUnknownRole},
		{"missing param", Event{SAP: sap("s1"), Primitive: "request", Params: codec.Record{}}, ErrBadParams},
		{"extra param", Event{SAP: sap("s1"), Primitive: "request", Params: codec.Record{"resid": "r", "x": "y"}}, ErrBadParams},
		{"wrong kind", Event{SAP: sap("s1"), Primitive: "request", Params: codec.Record{"resid": int64(7)}}, ErrBadParams},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := s.CheckEvent(tt.e); !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestCheckKindAll(t *testing.T) {
	spec := &ServiceSpec{
		Name: "kinds",
		Primitives: []PrimitiveDef{{
			Name:      "p",
			Direction: FromUser,
			Params: []ParamDef{
				{Name: "s", Kind: KindString},
				{Name: "i", Kind: KindInt},
				{Name: "b", Kind: KindBool},
				{Name: "l", Kind: KindStringList},
			},
		}},
	}
	e := Event{SAP: SAP{Role: "r", ID: "1"}, Primitive: "p", Params: codec.Record{
		"s": "x", "i": int64(3), "b": true, "l": codec.StringList([]string{"a"}),
	}}
	if err := spec.CheckEvent(e); err != nil {
		t.Fatalf("all-kinds event rejected: %v", err)
	}
	e.Params["i"] = "not an int"
	if err := spec.CheckEvent(e); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v, want ErrBadParams", err)
	}
}

func TestEventLabel(t *testing.T) {
	e := Event{
		SAP:       sap("s1"),
		Primitive: "granted",
		Params:    codec.Record{"resid": "r1", "attempt": int64(2)},
	}
	want := "granted@subscriber:s1(attempt=2,resid=r1)"
	if got := e.Label(); got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := Trace{
		{SAP: sap("s1"), Primitive: "request", Params: codec.Record{"resid": "r1"}},
		{SAP: sap("s2"), Primitive: "request", Params: codec.Record{"resid": "r2"}},
		{SAP: sap("s1"), Primitive: "granted", Params: codec.Record{"resid": "r1"}},
	}
	if got := tr.AtSAP(sap("s1")); len(got) != 2 {
		t.Fatalf("AtSAP = %d events, want 2", len(got))
	}
	labels := tr.Labels()
	if len(labels) != 3 || labels[0] != "request@subscriber:s1(resid=r1)" {
		t.Fatalf("Labels = %v", labels)
	}
	if s := tr.String(); !strings.Contains(s, "granted@subscriber:s1") {
		t.Fatalf("String = %q", s)
	}
}

func TestDirectionScopeKindStrings(t *testing.T) {
	if FromUser.String() != "from-user" || ToUser.String() != "to-user" {
		t.Fatal("direction strings")
	}
	if !strings.Contains(Direction(9).String(), "9") {
		t.Fatal("unknown direction string")
	}
	if ScopeLocal.String() != "local" || ScopeRemote.String() != "remote" {
		t.Fatal("scope strings")
	}
	if !strings.Contains(Scope(7).String(), "7") {
		t.Fatal("unknown scope string")
	}
	if KindString.String() != "string" || KindStringList.String() != "list<string>" {
		t.Fatal("kind strings")
	}
	if !strings.Contains(ParamKind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
}

func TestSignatureAndDocument(t *testing.T) {
	s := testSpec()
	if sig := s.Primitives[0].Signature(); sig != "request(resid: string)" {
		t.Fatalf("Signature = %q", sig)
	}
	doc := s.Document()
	for _, want := range []string{
		"service floor-control",
		"subscriber [2..∞]",
		"from-user  request(resid: string)",
		"[remote] exclusive-grant",
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("Document missing %q:\n%s", want, doc)
		}
	}
}

// observe is a test helper driving an observer through a scripted trace.
func observe(t *testing.T, events []Event) (*Observer, error) {
	t.Helper()
	k := sim.NewKernel()
	obs, err := NewObserver(testSpec(), k)
	if err != nil {
		t.Fatalf("NewObserver: %v", err)
	}
	for _, e := range events {
		_ = obs.Observe(e.SAP, e.Primitive, e.Params) //nolint:errcheck // collected via Complete
	}
	return obs, obs.Complete()
}

func ev(sapID, prim, res string) Event {
	return Event{SAP: sap(sapID), Primitive: prim, Params: codec.Record{"resid": res}}
}

func TestObserverConformingRun(t *testing.T) {
	_, err := observe(t, []Event{
		ev("s1", "request", "r1"),
		ev("s2", "request", "r1"),
		ev("s1", "granted", "r1"),
		ev("s1", "free", "r1"),
		ev("s2", "granted", "r1"),
		ev("s2", "free", "r1"),
	})
	if err != nil {
		t.Fatalf("conforming run flagged: %v", err)
	}
}

func TestObserverGrantedWithoutRequest(t *testing.T) {
	obs, err := observe(t, []Event{ev("s1", "granted", "r1")})
	if err == nil {
		t.Fatal("granted without request not flagged")
	}
	v, ok := AsViolation(err)
	if !ok || v.Constraint != "granted-follows-request" {
		t.Fatalf("violation = %v", err)
	}
	if len(obs.Violations()) == 0 {
		t.Fatal("violations list empty")
	}
}

func TestObserverDoubleGrant(t *testing.T) {
	_, err := observe(t, []Event{
		ev("s1", "request", "r1"),
		ev("s2", "request", "r1"),
		ev("s1", "granted", "r1"),
		ev("s2", "granted", "r1"), // while s1 still holds
	})
	v, ok := AsViolation(err)
	if !ok {
		t.Fatalf("err = %v, want violation", err)
	}
	if v.Constraint != "exclusive-grant" {
		t.Fatalf("constraint = %q, want exclusive-grant", v.Constraint)
	}
	if v.Event == nil || v.Event.SAP != sap("s2") {
		t.Fatalf("violating event = %v", v.Event)
	}
}

func TestObserverFreeWithoutGrant(t *testing.T) {
	_, err := observe(t, []Event{
		ev("s1", "request", "r1"),
		ev("s1", "free", "r1"),
	})
	v, ok := AsViolation(err)
	if !ok || v.Constraint != "free-follows-granted" {
		t.Fatalf("violation = %v", err)
	}
}

func TestObserverForeignRelease(t *testing.T) {
	_, err := observe(t, []Event{
		ev("s1", "request", "r1"),
		ev("s1", "granted", "r1"),
		ev("s2", "request", "r1"),
		ev("s2", "granted", "r2"), // wrong resource; fine for mutex on r1
		ev("s2", "free", "r1"),    // s2 releasing s1's resource
	})
	if err == nil {
		t.Fatal("foreign release not flagged")
	}
}

func TestObserverLivenessViolation(t *testing.T) {
	obs, err := observe(t, []Event{ev("s1", "request", "r1")})
	if err == nil {
		t.Fatal("unanswered request not flagged at end of trace")
	}
	v, ok := AsViolation(err)
	if !ok || v.Constraint != "request-eventually-granted" {
		t.Fatalf("violation = %v", err)
	}
	if v.Event != nil {
		t.Fatal("liveness violation should carry no event")
	}
	if obs.Err() == nil {
		t.Fatal("Err should report the violation after Complete")
	}
}

func TestObserverDoubleRequestSameKey(t *testing.T) {
	_, err := observe(t, []Event{
		ev("s1", "request", "r1"),
		ev("s1", "request", "r1"),
		ev("s1", "granted", "r1"),
		ev("s1", "free", "r1"),
	})
	if err == nil {
		t.Fatal("double pending request not flagged")
	}
}

func TestObserverDistinctResourcesIndependent(t *testing.T) {
	_, err := observe(t, []Event{
		ev("s1", "request", "r1"),
		ev("s2", "request", "r2"),
		ev("s1", "granted", "r1"),
		ev("s2", "granted", "r2"), // different resource: allowed
		ev("s1", "free", "r1"),
		ev("s2", "free", "r2"),
	})
	if err != nil {
		t.Fatalf("independent resources flagged: %v", err)
	}
}

func TestObserverTraceRecording(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(testSpec(), k)
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(5*time.Millisecond, func() {
		_ = obs.Observe(sap("s1"), "request", codec.Record{"resid": "r1"}) //nolint:errcheck
	})
	k.Schedule(9*time.Millisecond, func() {
		_ = obs.Observe(sap("s1"), "granted", codec.Record{"resid": "r1"}) //nolint:errcheck
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	tr := obs.Trace()
	if len(tr) != 2 || obs.EventCount() != 2 {
		t.Fatalf("trace = %v", tr)
	}
	if tr[0].At != 5*time.Millisecond || tr[1].At != 9*time.Millisecond {
		t.Fatalf("timestamps = %v, %v", tr[0].At, tr[1].At)
	}
}

func TestObserverStrictValidation(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(testSpec(), k, WithEventValidation())
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Observe(sap("s1"), "bogus", codec.Record{}); !errors.Is(err, ErrUnknownPrimitive) {
		t.Fatalf("err = %v, want ErrUnknownPrimitive", err)
	}
}

func TestObserverConstructorErrors(t *testing.T) {
	k := sim.NewKernel()
	bad := testSpec()
	bad.Name = ""
	if _, err := NewObserver(bad, k); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := NewObserver(testSpec(), nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestConstraintDescriptions(t *testing.T) {
	for _, c := range testSpec().Constraints {
		if c.Description() == "" {
			t.Fatalf("constraint %q has empty description", c.Name())
		}
	}
	custom := &Precedes{ConstraintName: "x", ConstraintDesc: "custom text", Trigger: "a", Enabled: "b", Key: KeyParam("k")}
	if custom.Description() != "custom text" {
		t.Fatal("explicit description ignored")
	}
	mx := &MutualExclusion{ConstraintName: "m", ConstraintDesc: "mx text", Acquire: "a", Release: "r", Key: KeyParam("k")}
	if mx.Description() != "mx text" {
		t.Fatal("mutex explicit description ignored")
	}
	ef := &EventuallyFollows{ConstraintName: "e", ConstraintDesc: "ef text", Trigger: "a", Response: "b", Key: KeyParam("k")}
	if ef.Description() != "ef text" {
		t.Fatal("eventually explicit description ignored")
	}
}

func TestKeyFuncs(t *testing.T) {
	e := ev("s1", "request", "r1")
	if k, ok := KeyParam("resid")(e); !ok || k != "r1" {
		t.Fatalf("KeyParam = %q, %v", k, ok)
	}
	if k, ok := KeySAPAndParam("resid")(e); !ok || k != "subscriber:s1/r1" {
		t.Fatalf("KeySAPAndParam = %q, %v", k, ok)
	}
	if _, ok := KeyParam("missing")(e); ok {
		t.Fatal("missing param should not produce key")
	}
	if _, ok := KeySAPAndParam("missing")(e); ok {
		t.Fatal("missing param should not produce SAP key")
	}
	e.Params["num"] = int64(3)
	if _, ok := KeyParam("num")(e); ok {
		t.Fatal("non-string param should not produce key")
	}
}

func TestViolationErrorFormatting(t *testing.T) {
	e := ev("s1", "granted", "r1")
	withEvent := &ViolationError{Constraint: "c", Event: &e, Detail: "d"}
	if !strings.Contains(withEvent.Error(), "granted@subscriber:s1") {
		t.Fatalf("Error() = %q", withEvent.Error())
	}
	atEnd := &ViolationError{Constraint: "c", Detail: "d"}
	if !strings.Contains(atEnd.Error(), "end of trace") {
		t.Fatalf("Error() = %q", atEnd.Error())
	}
	if _, ok := AsViolation(errors.New("plain")); ok {
		t.Fatal("plain error treated as violation")
	}
}

func TestNonConsumingPrecedes(t *testing.T) {
	spec := &ServiceSpec{
		Name: "multicast",
		Primitives: []PrimitiveDef{
			{Name: "say", Direction: FromUser, Params: []ParamDef{{Name: "msgid", Kind: KindString}}},
			{Name: "deliver", Direction: ToUser, Params: []ParamDef{{Name: "msgid", Kind: KindString}}},
		},
		Constraints: []Constraint{&Precedes{
			ConstraintName: "no-spurious-delivery",
			ScopeKind:      ScopeRemote,
			Trigger:        "say",
			Enabled:        "deliver",
			Key:            KeyParam("msgid"),
			NonConsuming:   true,
		}},
	}
	k := sim.NewKernel()
	obs, err := NewObserver(spec, k)
	if err != nil {
		t.Fatal(err)
	}
	params := codec.Record{"msgid": "m1"}
	if err := obs.Observe(SAP{Role: "p", ID: "1"}, "say", params); err != nil {
		t.Fatal(err)
	}
	// One say enables arbitrarily many deliveries.
	for i := 0; i < 3; i++ {
		id := SAP{Role: "p", ID: fmt.Sprintf("%d", i+1)}
		if err := obs.Observe(id, "deliver", params); err != nil {
			t.Fatalf("delivery %d flagged: %v", i, err)
		}
	}
	// But an unsaid message may not be delivered.
	if err := obs.Observe(SAP{Role: "p", ID: "1"}, "deliver", codec.Record{"msgid": "ghost"}); err == nil {
		t.Fatal("spurious delivery not flagged")
	}
}
