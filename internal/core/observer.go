package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
)

// Clock supplies the current virtual time to the observer; *sim.Kernel
// satisfies it.
type Clock interface {
	Now() time.Duration
}

// Observer watches service-primitive executions at the SAP boundary and
// checks every constraint of a specification online. It also records the
// global trace, which offline tooling (LTS refinement, metrics) consumes.
//
// The observer is the runtime embodiment of the paper's claim that a
// service can be "assessed formally": conforming solutions pass through it
// unchanged; non-conforming ones are caught at the first violating event.
type Observer struct {
	spec  *ServiceSpec
	clock Clock

	mu         sync.Mutex
	trace      Trace
	monitors   []Monitor
	violations []error
	strictKind bool
}

// ObserverOption configures an Observer.
type ObserverOption func(*Observer)

// WithEventValidation makes the observer also validate each event against
// the primitive declarations (unknown primitives, wrong parameter kinds).
func WithEventValidation() ObserverOption {
	return func(o *Observer) { o.strictKind = true }
}

// NewObserver creates an observer for a validated specification.
func NewObserver(spec *ServiceSpec, clock Clock, opts ...ObserverOption) (*Observer, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("observer: invalid spec: %w", err)
	}
	if clock == nil {
		return nil, errors.New("observer: nil clock")
	}
	o := &Observer{spec: spec, clock: clock}
	for _, c := range spec.Constraints {
		o.monitors = append(o.monitors, c.NewMonitor())
	}
	for _, opt := range opts {
		opt(o)
	}
	return o, nil
}

// Spec returns the specification being observed.
func (o *Observer) Spec() *ServiceSpec { return o.spec }

// Observe records the execution of a primitive at a SAP and checks it
// against every constraint. It returns the first violation, which is also
// retained (see Err and Violations). Observe never blocks the observed
// system: violations are reported, not enforced.
func (o *Observer) Observe(sap SAP, primitive string, params codec.Record) error {
	e := Event{At: o.clock.Now(), SAP: sap, Primitive: primitive, Params: params}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.trace = append(o.trace, e)
	var first error
	if o.strictKind {
		if err := o.spec.CheckEvent(e); err != nil {
			first = err
			o.violations = append(o.violations, err)
		}
	}
	for _, m := range o.monitors {
		if err := m.Observe(e); err != nil {
			if first == nil {
				first = err
			}
			o.violations = append(o.violations, err)
		}
	}
	return first
}

// Complete closes the observation window, running end-of-trace (liveness)
// checks. It returns the first violation found over the whole run.
func (o *Observer) Complete() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, m := range o.monitors {
		if err := m.AtEnd(); err != nil {
			o.violations = append(o.violations, err)
		}
	}
	if len(o.violations) > 0 {
		return o.violations[0]
	}
	return nil
}

// Err returns the first violation observed so far, or nil.
func (o *Observer) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.violations) > 0 {
		return o.violations[0]
	}
	return nil
}

// Violations returns all violations observed so far.
func (o *Observer) Violations() []error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]error(nil), o.violations...)
}

// Trace returns a copy of the recorded global trace.
func (o *Observer) Trace() Trace {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append(Trace(nil), o.trace...)
}

// EventCount returns the number of observed events without copying.
func (o *Observer) EventCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.trace)
}

// Provider is the runtime face of a service, as seen by a user part at its
// SAP. FromUser primitives are submitted with Submit; ToUser primitives
// arrive on the handler registered with Attach.
//
// This interface is the concrete payoff of the service concept: an
// application part written against Provider runs unchanged over *any*
// implementation of the service — any of the paper's protocol solutions
// (a), (b) or (c) — which is exactly the §5 argument that the service
// "shields the application from the way in which the service is
// implemented".
type Provider interface {
	// Submit executes a from-user primitive at the given SAP.
	Submit(sap SAP, primitive string, params codec.Record) error
	// Attach registers the handler that receives to-user primitives
	// delivered at the given SAP. A SAP has at most one handler; attaching
	// twice replaces it.
	Attach(sap SAP, handler func(primitive string, params codec.Record))
}
