package core

import (
	"fmt"
	"time"
)

// Capacity generalizes mutual exclusion to k concurrent holders: at most
// Limit distinct SAPs may be between Acquire and Release for the same key
// at once. Limit 1 is MutualExclusion without the holder identity checks.
// The paper's §5 argues QoS-like aspects of interactions deserve separate,
// explicit treatment; Capacity is the simplest such resource-sharing
// policy.
type Capacity struct {
	ConstraintName string
	ConstraintDesc string
	Acquire        string
	Release        string
	Key            KeyFunc
	Limit          int
}

var _ Constraint = (*Capacity)(nil)

// Name implements Constraint.
func (c *Capacity) Name() string { return c.ConstraintName }

// Scope implements Constraint: capacity is inherently remote.
func (c *Capacity) Scope() Scope { return ScopeRemote }

// Description implements Constraint.
func (c *Capacity) Description() string {
	if c.ConstraintDesc != "" {
		return c.ConstraintDesc
	}
	return fmt.Sprintf("at most %d SAPs may hold the same key between %s and %s", c.Limit, c.Acquire, c.Release)
}

// NewMonitor implements Constraint.
func (c *Capacity) NewMonitor() Monitor {
	return &capacityMonitor{spec: c, holders: make(map[string]map[SAP]struct{})}
}

type capacityMonitor struct {
	spec    *Capacity
	holders map[string]map[SAP]struct{}
}

func (m *capacityMonitor) Observe(e Event) error {
	key, ok := m.spec.Key(e)
	if !ok {
		return nil
	}
	switch e.Primitive {
	case m.spec.Acquire:
		set := m.holders[key]
		if set == nil {
			set = make(map[SAP]struct{})
			m.holders[key] = set
		}
		if _, already := set[e.SAP]; already {
			ev := e
			return &ViolationError{
				Constraint: m.spec.ConstraintName,
				Event:      &ev,
				Detail:     fmt.Sprintf("%s already holds key %q", e.SAP, key),
			}
		}
		if len(set) >= m.spec.Limit {
			ev := e
			return &ViolationError{
				Constraint: m.spec.ConstraintName,
				Event:      &ev,
				Detail:     fmt.Sprintf("capacity %d exceeded for key %q", m.spec.Limit, key),
			}
		}
		set[e.SAP] = struct{}{}
	case m.spec.Release:
		set := m.holders[key]
		if _, holds := set[e.SAP]; !holds {
			ev := e
			return &ViolationError{
				Constraint: m.spec.ConstraintName,
				Event:      &ev,
				Detail:     fmt.Sprintf("%s releases key %q it does not hold", e.SAP, key),
			}
		}
		delete(set, e.SAP)
	}
	return nil
}

func (m *capacityMonitor) AtEnd() error { return nil }

// Deadline is a timed constraint: every Response must follow its matching
// Trigger (same key, same SAP, FIFO per key) within Within of virtual
// time. Liveness (that a response comes at all) remains the job of
// EventuallyFollows; Deadline flags responses that come too late, and, at
// the end of the observation window, triggers whose deadline had already
// expired unanswered.
type Deadline struct {
	ConstraintName string
	ConstraintDesc string
	ScopeKind      Scope
	Trigger        string
	Response       string
	Key            KeyFunc
	Within         time.Duration
}

var _ Constraint = (*Deadline)(nil)

// Name implements Constraint.
func (d *Deadline) Name() string { return d.ConstraintName }

// Scope implements Constraint.
func (d *Deadline) Scope() Scope { return d.ScopeKind }

// Description implements Constraint.
func (d *Deadline) Description() string {
	if d.ConstraintDesc != "" {
		return d.ConstraintDesc
	}
	return fmt.Sprintf("%s follows %s within %v (same key)", d.Response, d.Trigger, d.Within)
}

// NewMonitor implements Constraint.
func (d *Deadline) NewMonitor() Monitor {
	return &deadlineMonitor{spec: d, pending: make(map[string][]time.Duration)}
}

type deadlineMonitor struct {
	spec    *Deadline
	pending map[string][]time.Duration
	last    time.Duration
}

func (m *deadlineMonitor) Observe(e Event) error {
	if e.At > m.last {
		m.last = e.At
	}
	key, ok := m.spec.Key(e)
	if !ok {
		return nil
	}
	switch e.Primitive {
	case m.spec.Trigger:
		m.pending[key] = append(m.pending[key], e.At)
	case m.spec.Response:
		q := m.pending[key]
		if len(q) == 0 {
			return nil // unmatched response: Precedes' business, not ours
		}
		started := q[0]
		m.pending[key] = q[1:]
		if elapsed := e.At - started; elapsed > m.spec.Within {
			ev := e
			return &ViolationError{
				Constraint: m.spec.ConstraintName,
				Event:      &ev,
				Detail:     fmt.Sprintf("response after %v, deadline %v (key %q)", elapsed, m.spec.Within, key),
			}
		}
	}
	return nil
}

func (m *deadlineMonitor) AtEnd() error {
	for key, q := range m.pending {
		for _, started := range q {
			if m.last-started > m.spec.Within {
				return &ViolationError{
					Constraint: m.spec.ConstraintName,
					Detail: fmt.Sprintf("trigger at %v for key %q still unanswered %v past its deadline",
						started, key, m.last-started-m.spec.Within),
				}
			}
		}
	}
	return nil
}
