package core

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/codec"
	"repro/internal/sim"
)

func capacitySpec(limit int) *ServiceSpec {
	return &ServiceSpec{
		Name: "k-shared",
		Primitives: []PrimitiveDef{
			{Name: "granted", Direction: ToUser, Params: []ParamDef{{Name: "resid", Kind: KindString}}},
			{Name: "free", Direction: FromUser, Params: []ParamDef{{Name: "resid", Kind: KindString}}},
		},
		Constraints: []Constraint{&Capacity{
			ConstraintName: "k-holders",
			Acquire:        "granted",
			Release:        "free",
			Key:            KeyParam("resid"),
			Limit:          limit,
		}},
	}
}

func TestCapacityAllowsUpToLimit(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(capacitySpec(2), k)
	if err != nil {
		t.Fatal(err)
	}
	params := codec.Record{"resid": "r1"}
	if err := obs.Observe(sap("s1"), "granted", params); err != nil {
		t.Fatal(err)
	}
	if err := obs.Observe(sap("s2"), "granted", params); err != nil {
		t.Fatalf("second holder within capacity flagged: %v", err)
	}
	if err := obs.Observe(sap("s3"), "granted", params); err == nil {
		t.Fatal("third holder beyond capacity 2 not flagged")
	}
	// Release one; a new holder fits again.
	if err := obs.Observe(sap("s1"), "free", params); err != nil {
		t.Fatal(err)
	}
	if err := obs.Observe(sap("s4"), "granted", params); err != nil {
		t.Fatalf("holder after release flagged: %v", err)
	}
}

func TestCapacityDoubleAcquireSameSAP(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(capacitySpec(3), k)
	if err != nil {
		t.Fatal(err)
	}
	params := codec.Record{"resid": "r1"}
	_ = obs.Observe(sap("s1"), "granted", params) //nolint:errcheck
	if err := obs.Observe(sap("s1"), "granted", params); err == nil {
		t.Fatal("double acquire by same SAP not flagged")
	}
}

func TestCapacityForeignRelease(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(capacitySpec(2), k)
	if err != nil {
		t.Fatal(err)
	}
	params := codec.Record{"resid": "r1"}
	if err := obs.Observe(sap("s1"), "free", params); err == nil {
		t.Fatal("release without hold not flagged")
	}
}

func TestCapacityDistinctKeysIndependent(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(capacitySpec(1), k)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Observe(sap("s1"), "granted", codec.Record{"resid": "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := obs.Observe(sap("s2"), "granted", codec.Record{"resid": "r2"}); err != nil {
		t.Fatalf("distinct key flagged: %v", err)
	}
}

func TestCapacityDescription(t *testing.T) {
	c := &Capacity{ConstraintName: "c", Acquire: "a", Release: "r", Key: KeyParam("k"), Limit: 3}
	if !strings.Contains(c.Description(), "3") {
		t.Fatalf("Description = %q", c.Description())
	}
	if c.Scope() != ScopeRemote {
		t.Fatal("capacity should be remote scope")
	}
	c.ConstraintDesc = "custom"
	if c.Description() != "custom" {
		t.Fatal("explicit description ignored")
	}
}

// Property: with limit k and any interleaving of grants over one key,
// the monitor flags exactly the grants that would exceed k concurrent
// holders (oracle: replay with a counter).
func TestPropertyCapacityOracle(t *testing.T) {
	prop := func(ops []bool, limitRaw uint8) bool {
		limit := int(limitRaw%3) + 1
		m := (&Capacity{
			ConstraintName: "cap", Acquire: "acq", Release: "rel",
			Key: KeyParam("k"), Limit: limit,
		}).NewMonitor()
		holders := map[string]bool{}
		nextSAP := 0
		for _, isAcquire := range ops {
			if isAcquire {
				id := SAP{Role: "r", ID: string(rune('a' + nextSAP%26))}
				nextSAP++
				e := Event{SAP: id, Primitive: "acq", Params: codec.Record{"k": "x"}}
				err := m.Observe(e)
				wantErr := holders[id.ID] || len(holders) >= limit
				if (err != nil) != wantErr {
					return false
				}
				if err == nil {
					holders[id.ID] = true
				}
			} else {
				// Release an arbitrary holder if any.
				var victim string
				for h := range holders {
					victim = h
					break
				}
				if victim == "" {
					continue
				}
				e := Event{SAP: SAP{Role: "r", ID: victim}, Primitive: "rel", Params: codec.Record{"k": "x"}}
				if err := m.Observe(e); err != nil {
					return false
				}
				delete(holders, victim)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func deadlineSpec(within time.Duration) *ServiceSpec {
	return &ServiceSpec{
		Name: "timed",
		Primitives: []PrimitiveDef{
			{Name: "request", Direction: FromUser, Params: []ParamDef{{Name: "resid", Kind: KindString}}},
			{Name: "granted", Direction: ToUser, Params: []ParamDef{{Name: "resid", Kind: KindString}}},
		},
		Constraints: []Constraint{&Deadline{
			ConstraintName: "grant-deadline",
			ScopeKind:      ScopeLocal,
			Trigger:        "request",
			Response:       "granted",
			Key:            KeySAPAndParam("resid"),
			Within:         10 * time.Millisecond,
		}},
	}
}

func TestDeadlineMet(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(deadlineSpec(10*time.Millisecond), k)
	if err != nil {
		t.Fatal(err)
	}
	params := codec.Record{"resid": "r1"}
	k.Schedule(0, func() { _ = obs.Observe(sap("s1"), "request", params) })                  //nolint:errcheck
	k.Schedule(5*time.Millisecond, func() { _ = obs.Observe(sap("s1"), "granted", params) }) //nolint:errcheck
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := obs.Complete(); err != nil {
		t.Fatalf("timely response flagged: %v", err)
	}
}

func TestDeadlineMissed(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(deadlineSpec(10*time.Millisecond), k)
	if err != nil {
		t.Fatal(err)
	}
	params := codec.Record{"resid": "r1"}
	k.Schedule(0, func() { _ = obs.Observe(sap("s1"), "request", params) })                   //nolint:errcheck
	k.Schedule(25*time.Millisecond, func() { _ = obs.Observe(sap("s1"), "granted", params) }) //nolint:errcheck
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	verr := obs.Complete()
	if verr == nil {
		t.Fatal("late response not flagged")
	}
	v, ok := AsViolation(verr)
	if !ok || v.Constraint != "grant-deadline" {
		t.Fatalf("violation = %v", verr)
	}
}

func TestDeadlineExpiredPendingAtEnd(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(deadlineSpec(10*time.Millisecond), k)
	if err != nil {
		t.Fatal(err)
	}
	params := codec.Record{"resid": "r1"}
	k.Schedule(0, func() { _ = obs.Observe(sap("s1"), "request", params) }) //nolint:errcheck
	// A later unrelated event moves the monitor's clock past the deadline.
	k.Schedule(50*time.Millisecond, func() {
		_ = obs.Observe(sap("s2"), "request", codec.Record{"resid": "r2"}) //nolint:errcheck
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	verr := obs.Complete()
	if verr == nil {
		t.Fatal("expired pending trigger not flagged at end")
	}
	if v, ok := AsViolation(verr); !ok || v.Event != nil {
		t.Fatalf("want end-of-trace violation, got %v", verr)
	}
}

func TestDeadlineUnmatchedResponseIgnored(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(deadlineSpec(10*time.Millisecond), k)
	if err != nil {
		t.Fatal(err)
	}
	// Response without trigger: Deadline leaves this to Precedes.
	if err := obs.Observe(sap("s1"), "granted", codec.Record{"resid": "r1"}); err != nil {
		t.Fatalf("unmatched response flagged by deadline: %v", err)
	}
}

func TestDeadlineDescriptionAndScope(t *testing.T) {
	d := &Deadline{ConstraintName: "d", ScopeKind: ScopeLocal, Trigger: "a", Response: "b", Key: KeyParam("k"), Within: time.Second}
	if !strings.Contains(d.Description(), "1s") {
		t.Fatalf("Description = %q", d.Description())
	}
	if d.Scope() != ScopeLocal {
		t.Fatal("scope not honoured")
	}
	d.ConstraintDesc = "custom"
	if d.Description() != "custom" {
		t.Fatal("explicit description ignored")
	}
}

// TestWorkloadMeetsDeadline closes the loop with the floor-control shape:
// a spec extended with a generous Deadline passes a real workload. (The
// full integration lives in internal/floorcontrol; this keeps core
// self-contained with a hand trace.)
func TestDeadlineFIFOPerKey(t *testing.T) {
	k := sim.NewKernel()
	obs, err := NewObserver(deadlineSpec(10*time.Millisecond), k)
	if err != nil {
		t.Fatal(err)
	}
	params := codec.Record{"resid": "r1"}
	// Two requests, two responses: FIFO matching means the first response
	// answers the first request.
	k.Schedule(0, func() { _ = obs.Observe(sap("s1"), "request", params) })                   //nolint:errcheck
	k.Schedule(8*time.Millisecond, func() { _ = obs.Observe(sap("s1"), "granted", params) })  //nolint:errcheck
	k.Schedule(9*time.Millisecond, func() { _ = obs.Observe(sap("s1"), "request", params) })  //nolint:errcheck
	k.Schedule(15*time.Millisecond, func() { _ = obs.Observe(sap("s1"), "granted", params) }) //nolint:errcheck
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := obs.Complete(); err != nil {
		t.Fatalf("FIFO-matched timely responses flagged: %v", err)
	}
}

func TestAbsenceConstraint(t *testing.T) {
	spec := &ServiceSpec{
		Name: "held",
		Primitives: []PrimitiveDef{
			{Name: "request", Direction: FromUser, Params: []ParamDef{{Name: "resid", Kind: KindString}}},
			{Name: "granted", Direction: ToUser, Params: []ParamDef{{Name: "resid", Kind: KindString}}},
			{Name: "free", Direction: FromUser, Params: []ParamDef{{Name: "resid", Kind: KindString}}},
		},
		Constraints: []Constraint{&Absence{
			ConstraintName: "no-request-while-held",
			ScopeKind:      ScopeLocal,
			Open:           "granted",
			Close:          "free",
			Forbidden:      "request",
			Key:            KeySAPAndParam("resid"),
		}},
	}
	k := sim.NewKernel()
	obs, err := NewObserver(spec, k)
	if err != nil {
		t.Fatal(err)
	}
	params := codec.Record{"resid": "r1"}
	for _, prim := range []string{"request", "granted"} {
		if err := obs.Observe(sap("s1"), prim, params); err != nil {
			t.Fatalf("%s flagged: %v", prim, err)
		}
	}
	// Re-request while held: violation.
	if err := obs.Observe(sap("s1"), "request", params); err == nil {
		t.Fatal("request during held interval not flagged")
	}
	// Different SAP or resource during the interval: allowed (local key).
	if err := obs.Observe(sap("s2"), "request", params); err != nil {
		t.Fatalf("other SAP flagged: %v", err)
	}
	if err := obs.Observe(sap("s1"), "request", codec.Record{"resid": "r2"}); err != nil {
		t.Fatalf("other resource flagged: %v", err)
	}
	// Close the interval; request is fine again.
	if err := obs.Observe(sap("s1"), "free", params); err != nil {
		t.Fatal(err)
	}
	if err := obs.Observe(sap("s1"), "request", params); err != nil {
		t.Fatalf("request after free flagged: %v", err)
	}
}

func TestAbsenceDescriptionAndScope(t *testing.T) {
	a := &Absence{ConstraintName: "a", ScopeKind: ScopeRemote, Open: "o", Close: "c", Forbidden: "f", Key: KeyParam("k")}
	if !strings.Contains(a.Description(), "must not occur") {
		t.Fatalf("Description = %q", a.Description())
	}
	if a.Scope() != ScopeRemote {
		t.Fatal("scope not honoured")
	}
	a.ConstraintDesc = "custom"
	if a.Description() != "custom" {
		t.Fatal("explicit description ignored")
	}
}
