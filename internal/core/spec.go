package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/codec"
)

// Validation errors.
var (
	ErrUnknownPrimitive = errors.New("core: unknown primitive")
	ErrUnknownRole      = errors.New("core: unknown role")
	ErrBadParams        = errors.New("core: primitive parameters do not match declaration")
)

// ServiceSpec is a complete service definition: the paper's "service
// definition" milestone (Figure 11). It is the platform-independent — and,
// per §6.1, *paradigm-independent* — reference point of the design
// trajectory.
type ServiceSpec struct {
	Name        string
	Description string
	Roles       []RoleDef
	Primitives  []PrimitiveDef
	Constraints []Constraint
}

// Validate checks internal consistency of the specification itself.
func (s *ServiceSpec) Validate() error {
	if s.Name == "" {
		return errors.New("core: service spec must be named")
	}
	if len(s.Primitives) == 0 {
		return fmt.Errorf("core: service %q declares no primitives", s.Name)
	}
	seenPrim := make(map[string]struct{}, len(s.Primitives))
	for _, p := range s.Primitives {
		if p.Name == "" {
			return fmt.Errorf("core: service %q has unnamed primitive", s.Name)
		}
		if _, dup := seenPrim[p.Name]; dup {
			return fmt.Errorf("core: service %q declares primitive %q twice", s.Name, p.Name)
		}
		seenPrim[p.Name] = struct{}{}
		if p.Direction != FromUser && p.Direction != ToUser {
			return fmt.Errorf("core: primitive %q has invalid direction", p.Name)
		}
		seenParam := make(map[string]struct{}, len(p.Params))
		for _, param := range p.Params {
			if _, dup := seenParam[param.Name]; dup {
				return fmt.Errorf("core: primitive %q declares parameter %q twice", p.Name, param.Name)
			}
			seenParam[param.Name] = struct{}{}
		}
	}
	seenRole := make(map[string]struct{}, len(s.Roles))
	for _, r := range s.Roles {
		if r.Name == "" {
			return fmt.Errorf("core: service %q has unnamed role", s.Name)
		}
		if _, dup := seenRole[r.Name]; dup {
			return fmt.Errorf("core: service %q declares role %q twice", s.Name, r.Name)
		}
		seenRole[r.Name] = struct{}{}
		if r.Max > 0 && r.Min > r.Max {
			return fmt.Errorf("core: role %q has min %d > max %d", r.Name, r.Min, r.Max)
		}
	}
	seenCon := make(map[string]struct{}, len(s.Constraints))
	for _, c := range s.Constraints {
		if c == nil {
			return fmt.Errorf("core: service %q has nil constraint", s.Name)
		}
		if _, dup := seenCon[c.Name()]; dup {
			return fmt.Errorf("core: service %q declares constraint %q twice", s.Name, c.Name())
		}
		seenCon[c.Name()] = struct{}{}
	}
	return nil
}

// Primitive looks up a primitive declaration by name.
func (s *ServiceSpec) Primitive(name string) (PrimitiveDef, bool) {
	for _, p := range s.Primitives {
		if p.Name == name {
			return p, true
		}
	}
	return PrimitiveDef{}, false
}

// Role looks up a role declaration by name.
func (s *ServiceSpec) Role(name string) (RoleDef, bool) {
	for _, r := range s.Roles {
		if r.Name == name {
			return r, true
		}
	}
	return RoleDef{}, false
}

// CheckEvent validates that an event is well-formed with respect to the
// specification: known role, known primitive, parameters matching the
// declaration (no missing, no extra, kinds correct).
func (s *ServiceSpec) CheckEvent(e Event) error {
	if _, ok := s.Role(e.SAP.Role); !ok && len(s.Roles) > 0 {
		return fmt.Errorf("%w: %q (event %s)", ErrUnknownRole, e.SAP.Role, e.Label())
	}
	p, ok := s.Primitive(e.Primitive)
	if !ok {
		return fmt.Errorf("%w: %q (event %s)", ErrUnknownPrimitive, e.Primitive, e.Label())
	}
	if len(e.Params) != len(p.Params) {
		return fmt.Errorf("%w: %q got %d params, declared %d", ErrBadParams, p.Name, len(e.Params), len(p.Params))
	}
	for _, decl := range p.Params {
		v, present := e.Params[decl.Name]
		if !present {
			return fmt.Errorf("%w: %q missing parameter %q", ErrBadParams, p.Name, decl.Name)
		}
		if err := checkKind(decl.Kind, v); err != nil {
			return fmt.Errorf("%w: %q parameter %q: %v", ErrBadParams, p.Name, decl.Name, err)
		}
	}
	return nil
}

func checkKind(kind ParamKind, v codec.Value) error {
	switch kind {
	case KindString:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("want string, got %T", v)
		}
	case KindInt:
		switch v.(type) {
		case int, int32, int64:
		default:
			return fmt.Errorf("want int, got %T", v)
		}
	case KindBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("want bool, got %T", v)
		}
	case KindStringList:
		if _, err := codec.ToStringSlice(v); err != nil {
			return fmt.Errorf("want list<string>: %v", err)
		}
	default:
		return fmt.Errorf("unknown kind %v", kind)
	}
	return nil
}

// Document renders the specification in the style of the paper's Figure 5:
// primitives with signatures, then the constraints.
func (s *ServiceSpec) Document() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "service %s\n", s.Name)
	if s.Description != "" {
		fmt.Fprintf(&sb, "  %s\n", s.Description)
	}
	if len(s.Roles) > 0 {
		sb.WriteString("roles:\n")
		for _, r := range s.Roles {
			max := "∞"
			if r.Max > 0 {
				max = fmt.Sprintf("%d", r.Max)
			}
			fmt.Fprintf(&sb, "  %s [%d..%s]\n", r.Name, r.Min, max)
		}
	}
	sb.WriteString("primitives (occur @ SAP):\n")
	for _, p := range s.Primitives {
		fmt.Fprintf(&sb, "  %-10s %s\n", p.Direction, p.Signature())
	}
	if len(s.Constraints) > 0 {
		sb.WriteString("constraints:\n")
		for _, c := range s.Constraints {
			fmt.Fprintf(&sb, "  [%s] %s: %s\n", c.Scope(), c.Name(), c.Description())
		}
	}
	return sb.String()
}
