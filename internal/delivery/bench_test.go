package delivery_test

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// BenchmarkCalibrate is the fixed arithmetic workload cmd/benchcmp uses
// (-normalize Calibrate) to factor machine speed out of cross-host
// baseline comparisons.
func BenchmarkCalibrate(b *testing.B) {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	benchSink = x
}

var benchSink uint64

// pubSubStack assembles a middleware platform over the raw datagram
// network (the pure routing/demux stack: no reliability machinery) with
// subs subscriber nodes on one topic, and returns the platform, kernel
// and publisher address. DispatchOverhead is zero so the benchmarks
// isolate per-message routing cost rather than modelled platform delay.
// Subscribers attach through sub (SubscribeTopicView for the zero-copy
// plane, SubscribeTopic for the materializing consumer path).
func pubSubStack(b *testing.B, subs int, sub func(p *middleware.Platform, node middleware.Addr) error) (*middleware.Platform, *sim.Kernel, middleware.Addr) {
	b.Helper()
	kernel := sim.NewKernel(sim.WithSeed(1))
	net := network.New(kernel)
	profile := middleware.Profile{
		Name:     "bench-pubsub",
		Patterns: []middleware.Pattern{middleware.PatternOneway, middleware.PatternPubSub},
	}
	p := middleware.New(kernel, protocol.NewUnreliableDatagram(net), profile, "broker")
	for i := 0; i < subs; i++ {
		if err := sub(p, middleware.Addr(fmt.Sprintf("sub%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	return p, kernel, middleware.Addr("pub")
}

// drain runs the kernel until the event queue is empty.
func drain(b *testing.B, kernel *sim.Kernel) {
	b.Helper()
	if _, err := kernel.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchPublishDrain is the shared measurement loop: one publish fully
// drained per iteration, with a warm-up round before the timer starts so
// pools and runtimes are populated.
func benchPublishDrain(b *testing.B, p *middleware.Platform, kernel *sim.Kernel, pub middleware.Addr, delivered *int, subs int) {
	b.Helper()
	ev := codec.NewMessage("grant", codec.Record{"resource": "r1", "seq": uint64(7)})
	if err := p.Publish(pub, "floor", ev); err != nil {
		b.Fatal(err)
	}
	drain(b, kernel)
	*delivered = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Publish(pub, "floor", ev); err != nil {
			b.Fatal(err)
		}
		drain(b, kernel)
	}
	b.StopTimer()
	if *delivered != subs*b.N {
		b.Fatalf("delivered %d events, want %d", *delivered, subs*b.N)
	}
}

// BenchmarkDeliveryPath is the representative end-to-end path of the
// routing/demux plane: one publish marshalled at the publisher, carried
// to the broker node, demultiplexed, re-framed and fanned out to 8
// subscriber nodes, each delivery demultiplexed again and handed to the
// application's zero-copy view sink. One iteration = one publish fully
// drained (9 wire messages, 9 deliveries); allocs/op must stay 0 — that
// is the acceptance criterion of the dense tables. This is the number
// the ±20% CI gate and the README performance table track.
func BenchmarkDeliveryPath(b *testing.B) {
	delivered := 0
	p, kernel, pub := pubSubStack(b, 8, func(p *middleware.Platform, node middleware.Addr) error {
		return p.SubscribeTopicView("floor", node, func(v codec.MsgView) { delivered++ })
	})
	benchPublishDrain(b, p, kernel, pub, &delivered, 8)
}

// BenchmarkDeliveryPathMaterialized is the same 8-subscriber path with
// materializing SubscribeTopic sinks: it additionally pays one
// codec.Message materialization per delivery at the application boundary
// (a retainable map-backed record — the cost is in the consumer handoff,
// not the routing plane). Tracked so regressions in the compatibility
// path stay visible next to the zero-copy one.
func BenchmarkDeliveryPathMaterialized(b *testing.B) {
	delivered := 0
	p, kernel, pub := pubSubStack(b, 8, func(p *middleware.Platform, node middleware.Addr) error {
		return p.SubscribeTopic("floor", node, func(m codec.Message) { delivered++ })
	})
	benchPublishDrain(b, p, kernel, pub, &delivered, 8)
}

// benchBrokerFanout measures how broker fan-out cost scales with the
// subscriber count on the zero-copy plane: topic resolution, the dense
// subscriber fan-out into the transport's batch path, and per-node event
// demultiplexing.
func benchBrokerFanout(b *testing.B, subs int) {
	delivered := 0
	p, kernel, pub := pubSubStack(b, subs, func(p *middleware.Platform, node middleware.Addr) error {
		return p.SubscribeTopicView("floor", node, func(v codec.MsgView) { delivered++ })
	})
	benchPublishDrain(b, p, kernel, pub, &delivered, subs)
	b.ReportMetric(float64(subs), "subscribers")
}

func BenchmarkBrokerFanout8(b *testing.B)  { benchBrokerFanout(b, 8) }
func BenchmarkBrokerFanout64(b *testing.B) { benchBrokerFanout(b, 64) }

// BenchmarkReliableWindow measures the go-back-N reliability layer's
// per-message cost on a lossless link: one Send enqueued on the flow,
// transmitted, delivered in order at the peer, and cumulatively acked —
// window bookkeeping, flow-table lookups and the hold-ring check
// included. One iteration = one data PDU + one ack, fully drained.
func BenchmarkReliableWindow(b *testing.B) {
	kernel := sim.NewKernel(sim.WithSeed(1))
	net := network.New(kernel)
	rd := protocol.NewReliableDatagram(kernel, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{})
	delivered := 0
	if err := rd.Attach("a", func(src protocol.Addr, pdu []byte) {}); err != nil {
		b.Fatal(err)
	}
	if err := rd.Attach("b", func(src protocol.Addr, pdu []byte) { delivered++ }); err != nil {
		b.Fatal(err)
	}
	payload := []byte("0123456789abcdef0123456789abcdef")
	if err := rd.Send("a", "b", payload); err != nil {
		b.Fatal(err)
	}
	drain(b, kernel)
	delivered = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rd.Send("a", "b", payload); err != nil {
			b.Fatal(err)
		}
		drain(b, kernel)
	}
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d PDUs, want %d", delivered, b.N)
	}
}
