// Package delivery holds the end-to-end delivery-path benchmark suite:
// the per-message cost of the routing/demux plane between the sim kernel
// (internal/sim) and the application — network slot routing, protocol
// demultiplexing and the middleware broker fan-out — measured over full
// stacks assembled exactly as the floor-control workloads assemble them.
//
// The benchmarks are a permanent performance surface: cmd/benchcmp
// compares them against the committed BENCH_path.json baseline in the CI
// bench-regression job (±20% geomean, allocation regressions fail).
// Names are load-bearing — renaming one silently drops it from the gate
// until the baseline is refreshed with `make bench-baseline-path`.
//
// This suite measures the flat broker at small fan-outs (8–64
// subscribers); the XL fan-out regime — the federated broker tree at
// tens of thousands of sinks — has its own suite and baseline in
// internal/fanout (BENCH_xl.json, `make bench-baseline-xl`).
package delivery
