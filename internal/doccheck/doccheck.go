// Package doccheck validates relative links and heading anchors in the
// repository's markdown documentation. It is the library behind
// cmd/linkcheck (make linkcheck): every [text](target) whose target is
// not an absolute URL must name an existing file relative to the
// document, and every #fragment — on the document itself or on a linked
// markdown file — must match a heading's GitHub-style anchor.
package doccheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// Problem is one broken link: the document that contains it, the line it
// appears on (1-based), the raw link target, and what is wrong with it.
type Problem struct {
	File   string
	Line   int
	Target string
	Reason string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s:%d: link %q: %s", p.File, p.Line, p.Target, p.Reason)
}

var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// CheckFile validates every relative link in one markdown document and
// returns the problems found (nil for a clean document). Absolute URLs
// (any scheme://, mailto:) are not checked — the repository's docs must
// stay verifiable offline.
func CheckFile(path string) ([]Problem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []Problem
	dir := filepath.Dir(path)
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if reason := checkTarget(path, dir, target); reason != "" {
				problems = append(problems, Problem{File: path, Line: i + 1, Target: target, Reason: reason})
			}
		}
	}
	return problems, nil
}

// CheckFiles runs CheckFile over every path and concatenates the
// problems in argument order.
func CheckFiles(paths []string) ([]Problem, error) {
	var problems []Problem
	for _, p := range paths {
		ps, err := CheckFile(p)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	return problems, nil
}

// checkTarget validates one relative link target against the filesystem
// and, for fragments, against the target document's headings. It returns
// the failure reason, or "" when the target resolves.
func checkTarget(doc, dir, target string) string {
	file, frag, _ := strings.Cut(target, "#")
	resolved := doc
	if file != "" {
		resolved = filepath.Join(dir, file)
		info, err := os.Stat(resolved)
		if err != nil {
			return "file does not exist"
		}
		if frag == "" {
			return ""
		}
		if info.IsDir() || !strings.HasSuffix(resolved, ".md") {
			return "anchor on a non-markdown target"
		}
	}
	anchors, err := headingAnchors(resolved)
	if err != nil {
		return "cannot read anchor target"
	}
	if !anchors[strings.ToLower(frag)] {
		return "no heading with this anchor"
	}
	return ""
}

var nonAnchorRE = regexp.MustCompile(`[^a-z0-9 _-]`)

// headingAnchors extracts the GitHub-style anchor set of a markdown
// file: every heading lowercased, punctuation stripped, spaces turned
// into hyphens, with -1, -2, … suffixes for repeated headings.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	counts := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if text == "" || !strings.HasPrefix(text, " ") {
			continue
		}
		a := strings.ToLower(strings.TrimSpace(text))
		a = nonAnchorRE.ReplaceAllString(a, "")
		a = strings.ReplaceAll(a, " ", "-")
		if n := counts[a]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", a, n)] = true
		} else {
			anchors[a] = true
		}
		counts[a]++
	}
	return anchors, nil
}
