package doccheck

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFileCleanDocument(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Other Doc\n\n## Deep Dive: §1.7, really!\n")
	doc := write(t, dir, "doc.md", `# Title

See [other](other.md), [a heading](other.md#deep-dive-17-really),
[self](#title), [web](https://example.com/x#y), and [mail](mailto:a@b).

`+"```"+`
[not a link](missing.md) — inside a code fence
`+"```"+`
`)
	problems, err := CheckFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("unexpected problem: %s", p)
	}
}

func TestCheckFileBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "other.md", "# Other\n")
	write(t, dir, "data.csv", "a,b\n")
	doc := write(t, dir, "doc.md", `# Title
[gone](missing.md)
[bad anchor](other.md#nope)
[bad self anchor](#also-nope)
[anchor on csv](data.csv#x)
`)
	problems, err := CheckFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 4 {
		t.Fatalf("got %d problems, want 4: %v", len(problems), problems)
	}
	wantLines := []int{2, 3, 4, 5}
	wantReasons := []string{
		"file does not exist",
		"no heading with this anchor",
		"no heading with this anchor",
		"anchor on a non-markdown target",
	}
	for i, p := range problems {
		if p.Line != wantLines[i] || p.Reason != wantReasons[i] {
			t.Errorf("problem %d = %s, want line %d reason %q", i, p, wantLines[i], wantReasons[i])
		}
	}
}

func TestHeadingAnchorsDuplicates(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "d.md", "# Setup\n## Setup\n### Setup\n")
	anchors, err := headingAnchors(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"setup", "setup-1", "setup-2"} {
		if !anchors[want] {
			t.Errorf("anchor %q missing (got %v)", want, anchors)
		}
	}
}

func TestCheckFilesPropagatesReadError(t *testing.T) {
	if _, err := CheckFiles([]string{"does-not-exist.md"}); err == nil {
		t.Fatal("expected an error for a missing document")
	}
}
