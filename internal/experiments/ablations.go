package experiments

import (
	"fmt"
	"time"

	"repro/internal/chat"
	"repro/internal/floorcontrol"
	"repro/internal/metrics"
)

// AblationPollingSweep sweeps the polling interval under contention: the
// §5 trade-off made quantitative. Short intervals buy latency with message
// blow-up; the callback solutions sit at the Pareto corner.
func AblationPollingSweep(seed int64) (*Report, error) {
	table := metrics.NewTable("Ablation A1 — polling interval sweep (4 subscribers, 1 contended resource)",
		"solution", "poll interval", "net msgs", "lat mean", "lat p95")
	base := floorcontrol.Config{
		Subscribers: 4,
		Resources:   1,
		Cycles:      5,
		Seed:        seed,
	}
	intervals := []time.Duration{
		2 * time.Millisecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		20 * time.Millisecond,
		50 * time.Millisecond,
	}
	for _, name := range []string{"mw-polling", "proto-polling"} {
		for _, iv := range intervals {
			cfg := base
			cfg.Solution = name
			cfg.PollInterval = iv
			res, err := floorcontrol.RunWorkload(cfg)
			if err != nil {
				return nil, err
			}
			if res.ConformanceErr != nil {
				return nil, fmt.Errorf("a1: %s@%v: %w", name, iv, res.ConformanceErr)
			}
			table.AddRow(name, iv.String(),
				fmt.Sprintf("%d", res.NetMessages),
				res.AcquireLatency.Mean().Round(10*time.Microsecond).String(),
				res.AcquireLatency.P95().Round(10*time.Microsecond).String())
		}
	}
	for _, name := range []string{"mw-callback", "proto-callback"} {
		cfg := base
		cfg.Solution = name
		res, err := floorcontrol.RunWorkload(cfg)
		if err != nil {
			return nil, err
		}
		table.AddRow(name, "- (event driven)",
			fmt.Sprintf("%d", res.NetMessages),
			res.AcquireLatency.Mean().Round(10*time.Microsecond).String(),
			res.AcquireLatency.P95().Round(10*time.Microsecond).String())
	}
	return &Report{
		ID:    "A1",
		Title: "polling interval vs message count and latency",
		Table: table,
		Notes: []string{"polling approaches callback latency only as the interval shrinks, paying proportionally in wire messages"},
	}, nil
}

// AblationScaling grows the subscriber count: token-ring message cost
// grows with ring size regardless of demand; callback cost tracks demand.
func AblationScaling(seed int64) (*Report, error) {
	table := metrics.NewTable("Ablation A2 — scaling subscribers (1 contended resource, 3 cycles each)",
		"solution", "subscribers", "net msgs", "msgs/cycle", "lat mean")
	for _, name := range []string{"mw-callback", "mw-token", "proto-callback", "proto-token"} {
		for _, subs := range []int{2, 4, 8} {
			res, err := floorcontrol.RunWorkload(floorcontrol.Config{
				Solution:    name,
				Subscribers: subs,
				Resources:   1,
				Cycles:      3,
				Seed:        seed,
			})
			if err != nil {
				return nil, err
			}
			if res.ConformanceErr != nil {
				return nil, fmt.Errorf("a2: %s@%d: %w", name, subs, res.ConformanceErr)
			}
			table.AddRow(name, fmt.Sprintf("%d", subs),
				fmt.Sprintf("%d", res.NetMessages),
				fmt.Sprintf("%.1f", float64(res.NetMessages)/float64(res.Completed)),
				res.AcquireLatency.Mean().Round(10*time.Microsecond).String())
		}
	}
	return &Report{
		ID:    "A2",
		Title: "message complexity as the subscriber set grows",
		Table: table,
		Notes: []string{"token circulation cost grows with ring size independent of contention; callback cost tracks demand"},
	}, nil
}

// AblationLoss raises datagram loss: the reliable-datagram layer (itself a
// protocol designed against a service) masks loss from every solution
// above it.
func AblationLoss(seed int64) (*Report, error) {
	table := metrics.NewTable("Ablation A3 — datagram loss masked by the reliability layer",
		"solution", "loss rate", "cycles", "net msgs", "lat p95", "conformance")
	for _, name := range []string{"proto-callback", "mda-rpc-corba-like"} {
		for _, loss := range []float64{0, 0.1, 0.3} {
			res, err := floorcontrol.RunWorkload(floorcontrol.Config{
				Solution:    name,
				Subscribers: 3,
				Resources:   2,
				Cycles:      4,
				Seed:        seed,
				LossRate:    loss,
			})
			if err != nil {
				return nil, err
			}
			conf := "conforms"
			if res.ConformanceErr != nil {
				conf = "VIOLATION"
			}
			table.AddRow(name, fmt.Sprintf("%.0f%%", loss*100),
				fmt.Sprintf("%d/%d", res.Completed, res.Expected),
				fmt.Sprintf("%d", res.NetMessages),
				res.AcquireLatency.P95().Round(10*time.Microsecond).String(),
				conf)
			if res.ConformanceErr != nil {
				return nil, fmt.Errorf("a3: %s@%.0f%%: %w", name, loss*100, res.ConformanceErr)
			}
		}
	}
	return &Report{
		ID:    "A3",
		Title: "loss tolerance through layering",
		Table: table,
		Notes: []string{"retransmission traffic rises with loss; the service above stays conformant — the layering principle at work"},
	}, nil
}

// CaseStudyChat runs the second case study (internal/chat) across its
// implementation paths — the sequencer protocol and the chat PIM on all
// four concrete platforms — extending the paper's "applicability through
// case studies" future work into a measured table.
func CaseStudyChat(seed int64) (*Report, error) {
	table := metrics.NewTable("Case study — totally ordered chat (3 participants × 4 messages, 10% loss)",
		"implementation", "deliveries", "net msgs", "own-delivery mean", "conformance")
	run := func(label, platform string) error {
		res, err := chat.Run(chat.Config{
			Participants: 3,
			MessagesEach: 4,
			LossRate:     0.1,
			Seed:         seed,
			Platform:     platform,
		})
		if err != nil {
			return err
		}
		if res.ConformanceErr != nil {
			return fmt.Errorf("case study %s: %w", label, res.ConformanceErr)
		}
		table.AddRow(label,
			fmt.Sprintf("%d/%d", res.Delivered, res.Said*3),
			fmt.Sprintf("%d", res.NetMessages),
			res.DeliveryLatency.Mean().Round(10*time.Microsecond).String(),
			"conforms")
		return nil
	}
	if err := run("sequencer-protocol", ""); err != nil {
		return nil, err
	}
	for _, target := range []string{"rpc-corba-like", "rpc-rmi-like", "msg-jms-like", "queue-mq-like"} {
		if err := run("mda-"+target, target); err != nil {
			return nil, err
		}
	}
	return &Report{
		ID:    "C1",
		Title: "second case study: ordered chat via protocol and via the MDA trajectory",
		Table: table,
		Notes: []string{
			"total order, no spurious delivery and self-delivery liveness verified online in every row",
			"recursive platforms (rmi, mq) show the familiar adapter wire amplification",
		},
	}, nil
}
