// Package experiments regenerates every figure of the paper as a printed,
// measured artifact, plus three ablations. The paper is conceptual — its
// figures are structural diagrams and design alternatives, not measurement
// plots — so each experiment executes the structure the figure depicts and
// reports the quantities that substantiate the paper's qualitative claims
// (see DESIGN.md §3 for the full index and EXPERIMENTS.md for recorded
// outcomes).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/floorcontrol"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
)

// Report is the printed outcome of one experiment.
type Report struct {
	ID    string
	Title string
	Table *metrics.Table
	Notes []string
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	sb.WriteString(r.Table.String())
	for _, n := range r.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Generator produces one report deterministically from a seed.
type Generator func(seed int64) (*Report, error)

// Descriptor is the scenario descriptor of one experiment: a stable ID, a
// short title for listings, and the generator. Sweep harnesses (see
// internal/runner) consume descriptors rather than bare generator
// functions.
type Descriptor struct {
	ID    string
	Title string
	Gen   Generator
}

// All returns every experiment descriptor in DESIGN.md order.
func All() []Descriptor {
	return []Descriptor{
		{"F1", "model of a distributed system", Fig1DistributedSystem},
		{"F2", "protocol-centred paradigm, traffic per boundary", Fig2ProtocolParadigm},
		{"F3", "middleware-centred paradigm, interaction patterns", Fig3MiddlewareParadigm},
		{"F4", "middleware-centred floor-control solutions", Fig4MiddlewareSolutions},
		{"F5", "floor-control service conformance", Fig5ServiceConformance},
		{"F6", "protocol-centred floor-control solutions", Fig6ProtocolSolutions},
		{"F7", "scattering of interaction functionality", Fig7Scattering},
		{"F8", "middleware view: swapping the interaction system", Fig8MiddlewareView},
		{"F9", "application-dependent interaction system view", Fig9InteractionSystemView},
		{"F10", "MDA trajectory: one PIM, four platforms", Fig10Trajectory},
		{"F11", "service milestones in the design trajectory", Fig11Milestones},
		{"F12", "recursive abstract-platform realization", Fig12Recursion},
		{"A1", "ablation: polling interval sweep", AblationPollingSweep},
		{"A2", "ablation: subscriber scaling", AblationScaling},
		{"A3", "ablation: loss tolerance", AblationLoss},
		{"C1", "case study: ordered chat", CaseStudyChat},
	}
}

// ByID finds a generator.
func ByID(id string) (Generator, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e.Gen, true
		}
	}
	return nil, false
}

// Fig1DistributedSystem reproduces Figure 1: a distributed system as
// interacting application parts. Each part sends one message to every
// other part over the simulated network.
func Fig1DistributedSystem(seed int64) (*Report, error) {
	kernel := sim.NewKernel(sim.WithSeed(seed))
	net := network.New(kernel, network.WithDefaultLink(network.LinkConfig{Latency: time.Millisecond}))
	const parts = 4
	received := make(map[network.NodeID]int, parts)
	nodes := make([]network.NodeID, parts)
	for i := 0; i < parts; i++ {
		id := network.NodeID(fmt.Sprintf("app-part-%d", i+1))
		nodes[i] = id
		if err := net.AddNode(id, func(dst network.NodeID) network.Handler {
			return func(network.NodeID, []byte) { received[dst]++ }
		}(id)); err != nil {
			return nil, err
		}
	}
	for _, src := range nodes {
		for _, dst := range nodes {
			if src != dst {
				if err := net.Send(src, dst, []byte("hello from "+src)); err != nil {
					return nil, err
				}
			}
		}
	}
	if _, err := kernel.Run(); err != nil {
		return nil, err
	}
	table := metrics.NewTable("Figure 1 — model of a distributed system (application)",
		"app part", "messages received")
	for _, id := range nodes {
		table.AddRow(string(id), fmt.Sprintf("%d", received[id]))
	}
	st := net.Stats()
	return &Report{
		ID:    "F1",
		Title: "distributed application parts interacting over the simulated network",
		Table: table,
		Notes: []string{fmt.Sprintf("network totals: sent=%d delivered=%d bytes=%d", st.Sent, st.Delivered, st.BytesSent)},
	}, nil
}

// Fig5ServiceConformance reproduces Figure 5: the floor-control service
// definition, shown with the conformance machinery accepting a valid run
// and rejecting each class of violation.
func Fig5ServiceConformance(seed int64) (*Report, error) {
	kernel := sim.NewKernel(sim.WithSeed(seed))
	spec := floorcontrol.Spec()
	scenarios := []struct {
		name   string
		events [][3]string // sub, primitive, resource
		wantOK bool
	}{
		{"conforming cycle", [][3]string{
			{"s1", "request", "r1"}, {"s1", "granted", "r1"}, {"s1", "free", "r1"},
		}, true},
		{"granted without request", [][3]string{
			{"s1", "granted", "r1"},
		}, false},
		{"double grant (remote constraint)", [][3]string{
			{"s1", "request", "r1"}, {"s2", "request", "r1"},
			{"s1", "granted", "r1"}, {"s2", "granted", "r1"},
		}, false},
		{"free before granted", [][3]string{
			{"s1", "request", "r1"}, {"s1", "free", "r1"},
		}, false},
		{"request never granted (liveness)", [][3]string{
			{"s1", "request", "r1"},
		}, false},
	}
	table := metrics.NewTable("Figure 5 — the floor-control service, checked",
		"scenario", "verdict", "violated constraint")
	for _, sc := range scenarios {
		obs, err := core.NewObserver(spec, kernel)
		if err != nil {
			return nil, err
		}
		for _, e := range sc.events {
			_ = obs.Observe(floorcontrol.SubscriberSAP(e[0]), e[1], map[string]any{"resid": e[2]}) //nolint:errcheck
		}
		verr := obs.Complete()
		verdict := "conforms"
		constraint := "-"
		if verr != nil {
			verdict = "violation"
			if v, ok := core.AsViolation(verr); ok {
				constraint = v.Constraint
			}
		}
		if (verr == nil) != sc.wantOK {
			return nil, fmt.Errorf("scenario %q: verdict %v, want ok=%v", sc.name, verr, sc.wantOK)
		}
		table.AddRow(sc.name, verdict, constraint)
	}
	return &Report{
		ID:    "F5",
		Title: "floor-control service definition with machine-checked constraints",
		Table: table,
		Notes: []string{"service document:\n" + spec.Document()},
	}, nil
}

// solutionRow renders the standard measurement row for one workload run.
func solutionRow(table *metrics.Table, res *floorcontrol.Result) {
	conf := "conforms"
	if res.ConformanceErr != nil {
		conf = "VIOLATION: " + res.ConformanceErr.Error()
	}
	table.AddRow(
		res.Solution,
		res.Figure,
		fmt.Sprintf("%d/%d", res.Completed, res.Expected),
		fmt.Sprintf("%d", res.ParadigmMessages),
		fmt.Sprintf("%d", res.NetMessages),
		fmt.Sprintf("%d", res.NetBytes),
		res.AcquireLatency.Mean().Round(10*time.Microsecond).String(),
		res.AcquireLatency.P95().Round(10*time.Microsecond).String(),
		conf,
	)
}

func solutionTable(title string) *metrics.Table {
	return metrics.NewTable(title,
		"solution", "figure", "cycles", "paradigm msgs", "net msgs", "net bytes", "lat mean", "lat p95", "conformance")
}

// fig46 runs a set of solutions under the standard comparison workload.
func fig46(id, title string, names []string, seed int64) (*Report, error) {
	table := solutionTable(title)
	cfg := floorcontrol.Config{
		Subscribers: 4,
		Resources:   2,
		Cycles:      6,
		Seed:        seed,
	}
	for _, name := range names {
		cfg.Solution = name
		res, err := floorcontrol.RunWorkload(cfg)
		if err != nil {
			return nil, err
		}
		solutionRow(table, res)
	}
	return &Report{
		ID:    id,
		Title: title,
		Table: table,
		Notes: []string{"workload: 4 subscribers × 6 cycles over 2 resources; 1ms links; identical seed per solution"},
	}, nil
}

// Fig4MiddlewareSolutions reproduces Figure 4: the three middleware-centred
// floor-control solutions under identical load.
func Fig4MiddlewareSolutions(seed int64) (*Report, error) {
	return fig46("F4", "Figure 4 — middleware-centred solutions (callback, polling, token)",
		[]string{"mw-callback", "mw-polling", "mw-token"}, seed)
}

// Fig6ProtocolSolutions reproduces Figure 6: the three protocol-centred
// solutions under the same load as Figure 4.
func Fig6ProtocolSolutions(seed int64) (*Report, error) {
	return fig46("F6", "Figure 6 — protocol-centred solutions (callback, polling, token)",
		[]string{"proto-callback", "proto-polling", "proto-token"}, seed)
}

// Fig7Scattering reproduces Figure 7: where the interaction functionality
// resides, per solution.
func Fig7Scattering(seed int64) (*Report, error) {
	const subs = 4
	table := metrics.NewTable("Figure 7 — interaction functionality scattered across application parts (4 subscribers)",
		"solution", "paradigm", "ops in app parts", "ops in controller part", "ops in interaction system", "scattering index")
	sols := floorcontrol.Solutions()
	for _, m := range floorcontrol.MDASolutions() {
		sols = append(sols, m)
	}
	for _, s := range sols {
		sc := s.Scattering(subs)
		table.AddRow(
			s.Name(),
			string(s.Paradigm()),
			fmt.Sprintf("%d", sc.AppPartOps),
			fmt.Sprintf("%d", sc.ControllerOps),
			fmt.Sprintf("%d", sc.InteractionSystemOps),
			fmt.Sprintf("%.2f", sc.Index()),
		)
	}
	return &Report{
		ID:    "F7",
		Title: "structural residence of interaction functionality",
		Table: table,
		Notes: []string{
			"index 1.00 = fully scattered into application parts (middleware paradigm)",
			"index 0.00 = fully concentrated behind the service boundary (protocol paradigm and MDA trajectory)",
			fmt.Sprintf("(seed %d unused: the metric is structural, not stochastic)", seed),
		},
	}, nil
}
