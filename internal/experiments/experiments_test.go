package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsProduceReports(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Gen(42)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report id %q, want %q", rep.ID, e.ID)
			}
			out := rep.String()
			if !strings.Contains(out, rep.Title) {
				t.Fatalf("%s: rendered report missing title", e.ID)
			}
			if len(out) < 100 {
				t.Fatalf("%s: suspiciously small report:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("F4"); !ok {
		t.Fatal("F4 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestExperimentCount(t *testing.T) {
	// 12 figures + 3 ablations + 1 case study.
	if got := len(All()); got != 16 {
		t.Fatalf("experiments = %d, want 16", got)
	}
}

func TestFig7ShapeHolds(t *testing.T) {
	rep, err := Fig7Scattering(1)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	// Middleware rows index 1.00, protocol and MDA rows 0.00.
	if !strings.Contains(out, "1.00") || !strings.Contains(out, "0.00") {
		t.Fatalf("scattering contrast missing:\n%s", out)
	}
}

func TestFig12ShapeHolds(t *testing.T) {
	rep, err := Fig12Recursion(7)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"direct", "recursive", "async-over-sync", "async-over-queue"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig12 report missing %q:\n%s", want, out)
		}
	}
}

func TestDeterministicReports(t *testing.T) {
	// Reports with the same seed must render identically.
	for _, id := range []string{"F4", "F6", "F10"} {
		gen, _ := ByID(id)
		a, err := gen(9)
		if err != nil {
			t.Fatal(err)
		}
		b, err := gen(9)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s: nondeterministic report", id)
		}
	}
}
