package experiments

import (
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/floorcontrol"
	"repro/internal/mda"
	"repro/internal/metrics"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/svc"
)

// Fig2ProtocolParadigm reproduces Figure 2: user parts over protocol
// entities over a lower-level service. A two-layer stack is assembled —
// the floor-control callback protocol over the reliable-datagram protocol
// over a lossy physical network — and the traffic at each boundary is
// reported.
func Fig2ProtocolParadigm(seed int64) (*Report, error) {
	kernel := sim.NewKernel(sim.WithSeed(seed))
	net := network.New(kernel, network.WithDefaultLink(network.LinkConfig{
		Latency:  time.Millisecond,
		LossRate: 0.2,
	}))
	observer, err := core.NewObserver(floorcontrol.Spec(), kernel)
	if err != nil {
		return nil, err
	}
	reliable := protocol.NewReliableDatagram(kernel, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{})
	env := &floorcontrol.Env{
		Time:        kernel,
		Net:         net,
		Observer:    observer,
		Subscribers: floorcontrol.SubscriberNames(3),
		Resources:   floorcontrol.ResourceNames(1),
		Lower:       reliable,
	}
	parts, err := (&floorcontrol.ProtoCallback{}).Build(env)
	if err != nil {
		return nil, err
	}
	done := 0
	for _, sub := range env.Subscribers {
		part := parts[sub]
		res := "r1"
		part.Acquire(res, func(p floorcontrol.AppPart, r string) func() {
			return func() {
				kernel.Schedule(2*time.Millisecond, func() {
					p.Release(r)
					done++
				})
			}
		}(part, res))
	}
	if _, err := kernel.Run(); err != nil {
		return nil, err
	}
	if verr := observer.Complete(); verr != nil {
		return nil, fmt.Errorf("fig2: conformance: %w", verr)
	}
	table := metrics.NewTable("Figure 2 — protocol-centred structure, traffic per boundary",
		"boundary", "unit", "count")
	table.AddRow("service (SAP primitives)", "primitives", fmt.Sprintf("%d", observer.EventCount()))
	layerStats := env.Layer.Stats()
	table.AddRow("application protocol", "PDUs sent", fmt.Sprintf("%d", layerStats.PDUsSent))
	rs := reliable.Stats()
	table.AddRow("reliable-datagram layer", "data+acks sent", fmt.Sprintf("%d", rs.DataSent+rs.AcksSent))
	table.AddRow("reliable-datagram layer", "retransmits", fmt.Sprintf("%d", rs.Retransmits))
	ns := net.Stats()
	table.AddRow("physical network (20% loss)", "datagrams sent", fmt.Sprintf("%d", ns.Sent))
	table.AddRow("physical network (20% loss)", "datagrams dropped", fmt.Sprintf("%d", ns.Dropped))
	return &Report{
		ID:    "F2",
		Title: "layered protocol structure: each layer's service visible at its boundary",
		Table: table,
		Notes: []string{fmt.Sprintf("%d/%d acquire cycles completed; conformance verified at the service boundary", done, 3)},
	}, nil
}

// Fig3MiddlewareParadigm reproduces Figure 3: components interacting
// through the interaction patterns a middleware platform offers, one row
// per pattern — all of them driven through typed svc ports, the
// application-facing face of the platform.
func Fig3MiddlewareParadigm(seed int64) (*Report, error) {
	kernel := sim.NewKernel(sim.WithSeed(seed))
	net := network.New(kernel, network.WithDefaultLink(network.LinkConfig{Latency: time.Millisecond}))
	transport := protocol.NewReliableDatagram(kernel, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{})
	platform := middleware.New(kernel, transport, middleware.ProfileCORBALike, "broker")

	service, err := svc.New(&core.ServiceSpec{
		Name:        "fig3-patterns",
		Description: "one operation per middleware interaction pattern",
		Primitives: []core.PrimitiveDef{
			{Name: "echo", Direction: core.FromUser, Params: []core.ParamDef{{Name: "i", Kind: core.KindInt}}},
			{Name: "put", Direction: core.FromUser, Params: []core.ParamDef{{Name: "i", Kind: core.KindInt}}},
			{Name: "flash", Direction: core.ToUser},
		},
	})
	if err != nil {
		return nil, err
	}
	b, err := service.Bind(platform,
		middleware.PatternRPC, middleware.PatternOneway, middleware.PatternPubSub)
	if err != nil {
		return nil, err
	}

	// The server component: a typed export echoing its argument record.
	identity := func(r codec.Record) codec.Record { return r }
	e, err := b.NewExport("server", "node-s")
	if err != nil {
		return nil, err
	}
	err = svc.HandleOp(e, "echo", nil, identity,
		func(req codec.Record, respond func(codec.Record, error)) { respond(req, nil) })
	if err != nil {
		return nil, err
	}
	err = svc.HandleOp(e, "put", nil, identity,
		func(req codec.Record, respond func(codec.Record, error)) { respond(req, nil) })
	if err != nil {
		return nil, err
	}
	if err := e.Register(); err != nil {
		return nil, err
	}

	rpcDone, onewayDone, eventsDone := 0, 0, 0
	for _, node := range []middleware.Addr{"node-a", "node-b"} {
		if _, err := svc.NewTopicSource(b, "news", node,
			func(codec.MsgView) (struct{}, error) { return struct{}{}, nil },
			func(struct{}) { eventsDone++ }); err != nil {
			return nil, err
		}
	}
	echoPort, err := svc.NewPort(b, "server", "echo", identity, func(r codec.Record) (codec.Record, error) { return r, nil })
	if err != nil {
		return nil, err
	}
	putSink, err := svc.NewOnewaySink(b, "server", "put", identity)
	if err != nil {
		return nil, err
	}
	newsSink, err := svc.NewTopicSink(b, "news", func(struct{}) codec.Message { return codec.NewMessage("flash", nil) })
	if err != nil {
		return nil, err
	}
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if err := echoPort.Call("node-c", codec.Record{"i": int64(i)},
			func(codec.Record, error) { rpcDone++ }); err != nil {
			return nil, err
		}
		if err := putSink.Send("node-c", codec.Record{"i": int64(i)}); err != nil {
			return nil, err
		}
		onewayDone++
		if err := newsSink.Send("node-c", struct{}{}); err != nil {
			return nil, err
		}
	}
	if _, err := kernel.Run(); err != nil {
		return nil, err
	}
	st := platform.Stats()
	table := metrics.NewTable("Figure 3 — middleware-centred structure, one row per interaction pattern",
		"pattern", "interactions", "wire messages (implicit protocol)")
	table.AddRow("request/response", fmt.Sprintf("%d calls, %d replies", st.Calls, st.Replies), fmt.Sprintf("%d", 2*st.Calls))
	table.AddRow("message passing (oneway)", fmt.Sprintf("%d", st.Oneways), fmt.Sprintf("%d", st.Oneways))
	table.AddRow("events (pub/sub)", fmt.Sprintf("%d published, %d delivered", st.Publishes, st.EventDeliver), fmt.Sprintf("%d", st.Publishes+st.EventDeliver))
	if rpcDone != rounds {
		return nil, fmt.Errorf("fig3: rpc completed %d of %d", rpcDone, rounds)
	}
	return &Report{
		ID:    "F3",
		Title: "components interacting through middleware interaction patterns",
		Table: table,
		Notes: []string{
			fmt.Sprintf("total wire messages %d, bytes %d — the middleware 'transforms' the interactions into (implicit) protocols (§3)", st.WireMessages, st.WireBytes),
		},
	}, nil
}

// Fig8MiddlewareView reproduces Figure 8: the interaction system *provided
// by the middleware* as a separate object of design. The middleware's
// internal transport is swapped (reliable-datagram protocol vs raw
// datagrams) under the same components; the application-level trace is
// unchanged.
func Fig8MiddlewareView(seed int64) (*Report, error) {
	base := floorcontrol.Config{
		Solution:    "mw-callback",
		Subscribers: 3,
		Resources:   2,
		Cycles:      4,
		Seed:        seed,
	}
	overReliable, err := floorcontrol.RunWorkload(base)
	if err != nil {
		return nil, err
	}
	raw := base
	raw.RawTransport = true
	overRaw, err := floorcontrol.RunWorkload(raw)
	if err != nil {
		return nil, err
	}
	same := traceLabelsEqual(overReliable.Trace, overRaw.Trace)
	table := metrics.NewTable("Figure 8 — middleware transport swapped beneath unchanged components",
		"middleware internal transport", "net msgs", "net bytes", "app-level trace")
	table.AddRow("reliable-datagram protocol", fmt.Sprintf("%d", overReliable.NetMessages), fmt.Sprintf("%d", overReliable.NetBytes), "baseline")
	verdict := "identical to baseline"
	if !same {
		verdict = "DIFFERS (unexpected)"
	}
	table.AddRow("raw datagrams (lossless)", fmt.Sprintf("%d", overRaw.NetMessages), fmt.Sprintf("%d", overRaw.NetBytes), verdict)
	if !same {
		return nil, fmt.Errorf("fig8: app-level traces differ across middleware transports")
	}
	return &Report{
		ID:    "F8",
		Title: "the middleware-provided interaction system as a separate object of design",
		Table: table,
		Notes: []string{"identical primitive sequences at every SAP: components are insulated from the middleware's internal protocol choice"},
	}, nil
}

func traceLabelsEqual(a, b core.Trace) bool {
	la, lb := a.Labels(), b.Labels()
	if len(la) != len(lb) {
		return false
	}
	for i := range la {
		if la[i] != lb[i] {
			return false
		}
	}
	return true
}

// Fig9InteractionSystemView reproduces Figure 9: the application-dependent
// interaction system as a separate object of design. The three protocol
// solutions are swapped behind the same service boundary; the user parts
// (one shared implementation) and their SAP-local disciplines are
// unchanged, and every run satisfies the same service.
func Fig9InteractionSystemView(seed int64) (*Report, error) {
	spec := floorcontrol.ServiceLTS(floorcontrol.SubscriberNames(2), floorcontrol.ResourceNames(1))
	table := metrics.NewTable("Figure 9 — protocol swapped behind the same floor-control service",
		"interaction system", "PDU types", "net msgs", "service trace in service LTS", "app part impl")
	for _, name := range []string{"proto-callback", "proto-polling", "proto-token"} {
		res, err := floorcontrol.RunWorkload(floorcontrol.Config{
			Solution:    name,
			Subscribers: 2,
			Resources:   1,
			Cycles:      3,
			Seed:        seed,
		})
		if err != nil {
			return nil, err
		}
		accepted := spec.Accepts(res.Trace.Labels())
		verdict := "accepted"
		if !accepted {
			return nil, fmt.Errorf("fig9: %s trace rejected by service LTS", name)
		}
		pduTypes := map[string]int{
			"proto-callback": 3, // request, granted, free
			"proto-polling":  3, // is_available_req, is_available_resp, free
			"proto-token":    1, // pass
		}
		table.AddRow(name, fmt.Sprintf("%d", pduTypes[name]), fmt.Sprintf("%d", res.NetMessages), verdict, "serviceAppPart (shared)")
	}
	return &Report{
		ID:    "F9",
		Title: "the application-dependent interaction system as a separate object of design",
		Table: table,
		Notes: []string{"all three protocols implement the same service: user parts are written once against core.Provider"},
	}, nil
}

// Fig10Trajectory reproduces Figure 10: one platform-independent design
// realized down both branches of the platform-selection tree, executed and
// verified on all four concrete platforms.
func Fig10Trajectory(seed int64) (*Report, error) {
	table := metrics.NewTable("Figure 10 — MDA design trajectory: one PIM, four concrete platforms",
		"concrete platform", "class", "realization", "net msgs", "lat mean", "conformance")
	for _, target := range mda.ConcretePlatforms() {
		sol := &floorcontrol.MDASolution{Target: target}
		res, err := floorcontrol.RunWorkloadWith(sol, floorcontrol.Config{
			Subscribers: 3,
			Resources:   2,
			Cycles:      5,
			Seed:        seed,
		})
		if err != nil {
			return nil, err
		}
		conf := "conforms"
		if res.ConformanceErr != nil {
			return nil, fmt.Errorf("fig10: %s: %w", target.Name, res.ConformanceErr)
		}
		realization := "direct"
		if dep := sol.Deployment(); dep != nil && !dep.Realization().Direct {
			realization = dep.MessagingName()
		}
		table.AddRow(target.Name, target.Class, realization,
			fmt.Sprintf("%d", res.NetMessages),
			res.AcquireLatency.Mean().Round(10*time.Microsecond).String(),
			conf)
	}
	return &Report{
		ID:    "F10",
		Title: "platform selection: RPC-based and asynchronous-messaging branches from one PIM",
		Table: table,
		Notes: []string{"the same platform-independent service logic and the same user parts ran in all four rows"},
	}, nil
}

// Fig11Milestones reproduces Figure 11: the design-trajectory milestones
// and their artifacts for one target.
func Fig11Milestones(seed int64) (*Report, error) {
	pim := floorcontrol.PIM(floorcontrol.ResourceNames(2))
	target, _ := mda.ConcretePlatformByName("rpc-corba-like")
	steps, _, err := mda.PlanTrajectory(pim, target)
	if err != nil {
		return nil, err
	}
	table := metrics.NewTable("Figure 11 — milestones in the model-driven design trajectory",
		"milestone", "artifact")
	for _, s := range steps {
		table.AddRow(string(s.Milestone), s.Detail)
	}
	return &Report{
		ID:    "F11",
		Title: "service definition and platform-independent service design as milestones",
		Table: table,
		Notes: []string{fmt.Sprintf("(seed %d unused: milestones are deterministic design artifacts)", seed)},
	}, nil
}

// Fig12Recursion reproduces Figure 12: recursive application of the
// service concept. For every concrete platform the realization decision is
// shown, and measured adapter overhead is reported relative to the direct
// realization.
func Fig12Recursion(seed int64) (*Report, error) {
	pim := floorcontrol.PIM(floorcontrol.ResourceNames(2))
	table := metrics.NewTable("Figure 12 — recursive application of the service concept",
		"concrete platform", "realization", "abstract-platform service logic", "net msgs", "overhead vs direct")
	var baseline float64
	type row struct {
		name, realization, adapters string
		msgs                        uint64
	}
	var rows []row
	for _, target := range mda.ConcretePlatforms() {
		_, realization, err := mda.PlanTrajectory(pim, target)
		if err != nil {
			return nil, err
		}
		res, err := floorcontrol.RunWorkload(floorcontrol.Config{
			Solution:    "mda-" + target.Name,
			Subscribers: 3,
			Resources:   2,
			Cycles:      5,
			Seed:        seed,
		})
		if err != nil {
			return nil, err
		}
		if res.ConformanceErr != nil {
			return nil, fmt.Errorf("fig12: %s: %w", target.Name, res.ConformanceErr)
		}
		kind, adapters := "direct", "-"
		if !realization.Direct {
			kind = "recursive"
			names := make([]string, len(realization.Adapters))
			for i, a := range realization.Adapters {
				names[i] = a.Rule.Name
			}
			adapters = join(names)
		} else if baseline == 0 {
			baseline = float64(res.NetMessages)
		}
		rows = append(rows, row{target.Name, kind, adapters, res.NetMessages})
	}
	for _, r := range rows {
		overhead := "1.00×"
		if baseline > 0 {
			overhead = fmt.Sprintf("%.2f×", float64(r.msgs)/baseline)
		}
		table.AddRow(r.name, r.realization, r.adapters, fmt.Sprintf("%d", r.msgs), overhead)
	}
	return &Report{
		ID:    "F12",
		Title: "abstract-platform realization: direct conformance vs recursive service design",
		Table: table,
		Notes: []string{
			"recursive realizations stay conformant; their cost is the adapter's wire amplification",
			"the alternative — direct transformation with no preserved border — is the middleware paradigm of Figure 4 (compare F4 vs F10 rows)",
		},
	}, nil
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "+"
		}
		out += p
	}
	return out
}
