package fanout_test

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// BenchmarkCalibrate is the fixed arithmetic workload cmd/benchcmp uses
// (-normalize Calibrate) to factor machine speed out of cross-host
// baseline comparisons.
func BenchmarkCalibrate(b *testing.B) {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	benchSink = x
}

var benchSink uint64

// benchFanout measures the steady-state publish path of a pre-built
// fan-out world: one publish fully drained per iteration, delivered to
// subs sinks spread over nodes subscriber nodes, through a federated
// tree with the given leaf count (0 = flat broker baseline). Reports
// bytes/client — simulated wire bytes per subscriber per event, the
// encode-once number BENCH_xl.json gates.
func benchFanout(b *testing.B, subs, nodes, leaves int) {
	b.Helper()
	kernel := sim.NewKernel(sim.WithSeed(1))
	net := network.New(kernel)
	profile := middleware.Profile{
		Name:     "bench-fanout",
		Patterns: []middleware.Pattern{middleware.PatternPubSub},
	}
	var opts []middleware.Option
	leafAddrs := make([]middleware.Addr, leaves)
	for i := range leafAddrs {
		leafAddrs[i] = middleware.Addr(fmt.Sprintf("leaf%d", i))
	}
	if leaves > 0 {
		opts = append(opts, middleware.WithFederation(leafAddrs...))
	}
	p := middleware.New(kernel, protocol.NewUnreliableDatagram(net), profile, "root", opts...)
	for _, leaf := range leafAddrs {
		if _, err := p.AttachRuntime(leaf); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := p.AttachRuntime("root"); err != nil {
		b.Fatal(err)
	}
	delivered := 0
	sink := func(v codec.MsgView) { delivered++ }
	for s := 0; s < subs; s++ {
		node := middleware.Addr(fmt.Sprintf("h%d", s%nodes))
		if err := p.SubscribeTopicView("feed", node, sink); err != nil {
			b.Fatal(err)
		}
	}
	drain := func() {
		if _, err := kernel.Run(); err != nil {
			b.Fatal(err)
		}
	}
	ev := codec.NewMessage("ev", codec.Record{"seq": uint64(7), "pad": make([]byte, 128)})
	if err := p.Publish("pub", "feed", ev); err != nil {
		b.Fatal(err)
	}
	drain()
	delivered = 0
	base := net.Stats().BytesSent
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Publish("pub", "feed", ev); err != nil {
			b.Fatal(err)
		}
		drain()
	}
	b.StopTimer()
	if delivered != subs*b.N {
		b.Fatalf("delivered %d events, want %d", delivered, subs*b.N)
	}
	bytes := net.Stats().BytesSent - base
	b.ReportMetric(float64(bytes)/float64(b.N)/float64(subs), "bytes/client")
	b.ReportMetric(float64(subs), "subscribers")
}

// BenchmarkFanoutFederated is the XL headline: 65,536 sinks on 1,024
// subscriber nodes behind a 4-leaf federation tree. One iteration = one
// publish fully drained (1 + 4 + 1024 wire messages, 65,536 sink fires).
func BenchmarkFanoutFederated(b *testing.B) { benchFanout(b, 65536, 1024, 4) }

// BenchmarkFanoutFlat is the same sink population on the flat
// single-broker platform, one sink per node (the flat broker has no
// per-node dedup) — the baseline the federation tree is measured
// against: 65,536 wire messages per publish instead of 1,029.
func BenchmarkFanoutFlat(b *testing.B) { benchFanout(b, 65536, 65536, 0) }
