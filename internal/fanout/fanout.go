// Package fanout is the XL pub/sub fan-out workload: one publisher, one
// federated broker tree, and up to a million subscriber sinks spread over
// dense subscriber nodes. It is the scenario the hierarchical broker
// federation (middleware.WithFederation) and the streaming metrics plane
// exist for — populations where any per-subscriber allocation on the
// publish path, or any retained per-sample metric state, would dominate
// memory.
//
// The workload is deterministic in Config: equal configs produce equal
// Results, for any Shards value (the engine is an execution parameter,
// exactly as in the floor-control workload). Deployment order is pinned
// so transport endpoint ids equal network slots equal attach order:
// leaves first (slots 0..L-1), then the root broker, then the publisher,
// then the subscriber nodes. With Leaves == Shards, every leaf therefore
// owns exactly the subscriber slots of its own engine shard and the whole
// leaf→subscriber fan-out is shard-local work.
package fanout

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/metrics"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/sim/shard"
)

// Config parameterizes one fan-out execution. Zero fields take the
// defaults in applyDefaults, so the zero Config is runnable.
type Config struct {
	// Subscribers is the total sink population; sinks are spread
	// round-robin over Nodes subscriber nodes (Subscribers/Nodes sinks
	// per node share one wire delivery — the per-node dedup the
	// federated broker does).
	Subscribers int
	// Nodes is the subscriber node count — the wire fan-out width.
	Nodes int
	// Leaves is the federation tree's leaf broker count; 0 runs the
	// flat single-broker platform (the comparison baseline). Only the
	// federated broker dedups wire deliveries per node: the flat broker
	// sends one wire message per subscription and demuxes each to every
	// co-located sink, so flat baselines should use Nodes == Subscribers
	// (one sink per node) to keep Delivered == Expected.
	Leaves int
	// Events is the number of publishes, spaced Interval apart.
	Events int
	// PayloadBytes pads each event with an opaque payload of this size.
	PayloadBytes int
	// Interval is the virtual time between publishes. It must exceed
	// the tree's delivery depth (3 × Latency) so publishes never
	// overlap; applyDefaults enforces that.
	Interval time.Duration
	// Latency configures every network link.
	Latency time.Duration
	// Shards selects the execution engine exactly as in the
	// floor-control workload: 0 or 1 runs one sim kernel, K>1 shards
	// the network across K kernels. Never part of scenario identity —
	// results are byte-identical for every K.
	Shards int
	// Seed fixes the simulation; equal seeds give identical runs.
	Seed int64
}

func (c *Config) applyDefaults() {
	if c.Subscribers <= 0 {
		c.Subscribers = 64
	}
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Nodes > c.Subscribers {
		c.Nodes = c.Subscribers
	}
	if c.Events <= 0 {
		c.Events = 4
	}
	if c.PayloadBytes < 0 {
		c.PayloadBytes = 0
	}
	if c.Latency <= 0 {
		c.Latency = time.Millisecond
	}
	if c.Interval <= 3*c.Latency {
		c.Interval = 4 * c.Latency
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result reports one fan-out execution. Every field is a deterministic
// function of the Config — no wall-clock anywhere.
type Result struct {
	// Delivered counts sink invocations; Expected is
	// Subscribers × Events. A lossless fabric delivers everything.
	Delivered uint64
	Expected  uint64
	// WireMessages/WireBytes are the middleware's own accounting:
	// publisher→root, root→leaf, and leaf→subscriber-node messages
	// (one per node, not per sink — federation dedups per node).
	WireMessages uint64
	WireBytes    uint64
	// NetMessages/NetBytes count everything on the simulated wire.
	NetMessages uint64
	NetBytes    uint64
	// KernelEvents is the platform-neutral proxy for computational work.
	KernelEvents uint64
	// VirtualDuration is the virtual time consumed by the run.
	VirtualDuration time.Duration
	// BytesPerClient is NetBytes / Subscribers — the whole-run wire
	// cost per subscriber, the O(1)-per-client headline number.
	BytesPerClient float64
	// Latency is the publish→sink delivery latency distribution
	// (streaming histogram: O(1) memory per sample).
	Latency metrics.Histogram
}

// Run executes the fan-out workload. The run is deterministic in Config.
func Run(cfg Config) (*Result, error) {
	cfg.applyDefaults()

	var engine sim.Engine = sim.NewKernel(sim.WithSeed(cfg.Seed))
	if cfg.Shards > 1 {
		engine = shard.NewGroup(cfg.Shards, shard.WithSeed(cfg.Seed))
	}
	net := network.New(engine, network.WithDefaultLink(network.LinkConfig{Latency: cfg.Latency}))
	transport := protocol.NewUnreliableDatagram(net)
	profile := middleware.Profile{
		Name:     "fanout",
		Patterns: []middleware.Pattern{middleware.PatternPubSub},
	}
	var opts []middleware.Option
	leaves := make([]middleware.Addr, cfg.Leaves)
	for i := range leaves {
		leaves[i] = middleware.Addr(fmt.Sprintf("leaf%d", i))
	}
	if len(leaves) > 0 {
		opts = append(opts, middleware.WithFederation(leaves...))
	}
	p := middleware.New(engine, transport, profile, "root", opts...)

	// Pin attach order — and therefore transport lows / network slots:
	// leaves 0..L-1, root, publisher, then subscriber nodes. leaf = low
	// mod L then maps leaf i to slot residue i, which is also the
	// sharded engine's slot-affinity partition.
	for _, leaf := range leaves {
		if _, err := p.AttachRuntime(leaf); err != nil {
			return nil, fmt.Errorf("fanout: attach %s: %w", leaf, err)
		}
	}
	if _, err := p.AttachRuntime("root"); err != nil {
		return nil, fmt.Errorf("fanout: attach root: %w", err)
	}
	pub := middleware.Addr("pub")
	if _, err := p.AttachRuntime(pub); err != nil {
		return nil, fmt.Errorf("fanout: attach pub: %w", err)
	}

	res := &Result{Expected: uint64(cfg.Subscribers) * uint64(cfg.Events)}

	// One shared sink closure serves every subscription: per-client
	// state stays O(1) (the platform's demux entry) and the engine's
	// serial dispatch makes the shared counters race-free at any K.
	// curPub is valid because Interval > delivery depth, so no two
	// publishes are ever in flight together.
	var curPub time.Duration
	sink := func(v codec.MsgView) {
		res.Delivered++
		res.Latency.Add(engine.Now() - curPub)
	}
	const topic = "feed"
	for s := 0; s < cfg.Subscribers; s++ {
		node := middleware.Addr(fmt.Sprintf("h%d", s%cfg.Nodes))
		if err := p.SubscribeTopicView(topic, node, sink); err != nil {
			return nil, fmt.Errorf("fanout: subscribe %s: %w", node, err)
		}
	}

	pad := make([]byte, cfg.PayloadBytes)
	var pubErr error
	for e := 0; e < cfg.Events; e++ {
		seq := uint64(e)
		engine.ScheduleFunc(time.Duration(e+1)*cfg.Interval, func() {
			curPub = engine.Now()
			ev := codec.NewMessage("ev", codec.Record{"seq": seq, "pad": pad})
			if err := p.Publish(pub, topic, ev); err != nil && pubErr == nil {
				pubErr = err
			}
		})
	}

	if _, err := engine.Run(); err != nil && !errors.Is(err, sim.ErrStopped) {
		return nil, fmt.Errorf("fanout: run: %w", err)
	}
	if pubErr != nil {
		return nil, fmt.Errorf("fanout: publish: %w", pubErr)
	}

	res.VirtualDuration = engine.Now()
	res.KernelEvents = engine.Executed()
	mst := p.Stats()
	res.WireMessages = mst.WireMessages
	res.WireBytes = mst.WireBytes
	nst := net.Stats()
	res.NetMessages = nst.Sent
	res.NetBytes = nst.BytesSent
	res.BytesPerClient = float64(res.NetBytes) / float64(cfg.Subscribers)
	return res, nil
}
