package fanout

import (
	"testing"
	"time"
)

// TestFanoutDelivery pins the basic accounting of a federated run:
// every sink fires once per publish, the latency histogram sees every
// delivery, and middleware wire accounting matches the tree shape.
func TestFanoutDelivery(t *testing.T) {
	cfg := Config{Subscribers: 24, Nodes: 6, Leaves: 2, Events: 3, PayloadBytes: 32}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Expected || res.Expected != 24*3 {
		t.Fatalf("Delivered = %d, Expected = %d, want both 72", res.Delivered, res.Expected)
	}
	if got := res.Latency.Count(); uint64(got) != res.Delivered {
		t.Fatalf("latency histogram saw %d samples, want %d", got, res.Delivered)
	}
	// Wire messages per publish: pub→root, root→each of 2 leaves,
	// leaf→each of 6 subscriber nodes (per-node dedup: 4 sinks per node
	// share one delivery).
	want := uint64(3) * uint64(1+2+6)
	if res.WireMessages != want {
		t.Fatalf("WireMessages = %d, want %d", res.WireMessages, want)
	}
	// Federated delivery depth is 3 hops at 1ms default link latency.
	if min := res.Latency.Min(); min != 3*time.Millisecond {
		t.Fatalf("min delivery latency = %s, want 3ms (3 hops)", time.Duration(min))
	}
}

// TestFanoutFlatBaseline runs the same population on the flat broker
// (Leaves = 0, one sink per node — the flat broker has no per-node
// dedup): identical delivery counts, one hop less depth.
func TestFanoutFlatBaseline(t *testing.T) {
	cfg := Config{Subscribers: 24, Nodes: 24, Leaves: 0, Events: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Expected {
		t.Fatalf("Delivered = %d, want %d", res.Delivered, res.Expected)
	}
	if min := res.Latency.Min(); min != 2*time.Millisecond {
		t.Fatalf("min delivery latency = %s, want 2ms (2 hops)", time.Duration(min))
	}
}

// TestFanoutShardsByteIdentical pins the execution-parameter contract:
// the sharded engine at K=4 produces the exact numbers a single kernel
// does, down to the rendered summary line.
func TestFanoutShardsByteIdentical(t *testing.T) {
	base := Config{Subscribers: 64, Nodes: 16, Leaves: 4, Events: 5, PayloadBytes: 64}
	run := func(shards int) (*Result, string, map[string]float64) {
		cfg := base
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, res.SummaryLine(), res.Summary()
	}
	_, line1, sum1 := run(1)
	_, line4, sum4 := run(4)
	if line1 != line4 {
		t.Fatalf("summary lines diverge:\nK=1: %s\nK=4: %s", line1, line4)
	}
	if len(sum1) != len(sum4) {
		t.Fatalf("summary key sets diverge: %d vs %d", len(sum1), len(sum4))
	}
	for k, v := range sum1 {
		if sum4[k] != v {
			t.Errorf("summary[%q]: K=1 %v, K=4 %v", k, v, sum4[k])
		}
	}
}

// TestFanoutScenarioID pins the identity contract: Shards never appears,
// defaults are canonicalized.
func TestFanoutScenarioID(t *testing.T) {
	a := Config{Subscribers: 100, Nodes: 10, Leaves: 2, Events: 3, PayloadBytes: 16}
	b := a
	b.Shards = 8
	if a.ScenarioID() != b.ScenarioID() {
		t.Fatalf("Shards leaked into scenario identity: %q vs %q", a.ScenarioID(), b.ScenarioID())
	}
	want := "fanout/subs=100/nodes=10/leaves=2/events=3/payload=16"
	if got := a.ScenarioID(); got != want {
		t.Fatalf("ScenarioID = %q, want %q", got, want)
	}
	if got := (Config{}).ScenarioID(); got != "fanout/subs=64/nodes=8/leaves=0/events=4/payload=0" {
		t.Fatalf("zero-config ScenarioID = %q", got)
	}
}
