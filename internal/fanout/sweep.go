package fanout

import (
	"fmt"
	"time"
)

// ScenarioID renders the canonical scenario identifier for the config.
// Shards is deliberately excluded: it is an execution parameter, results
// are byte-identical for every value, so it must never perturb derived
// seeds or sweep output (the same contract as floorcontrol.Config).
func (c Config) ScenarioID() string {
	d := c
	d.applyDefaults()
	return fmt.Sprintf("fanout/subs=%d/nodes=%d/leaves=%d/events=%d/payload=%d",
		d.Subscribers, d.Nodes, d.Leaves, d.Events, d.PayloadBytes)
}

// Params returns the descriptive parameter labels carried into sweep
// reports.
func (c Config) Params() map[string]string {
	d := c
	d.applyDefaults()
	return map[string]string{
		"workload":    "fanout",
		"subscribers": fmt.Sprintf("%d", d.Subscribers),
		"nodes":       fmt.Sprintf("%d", d.Nodes),
		"leaves":      fmt.Sprintf("%d", d.Leaves),
		"events":      fmt.Sprintf("%d", d.Events),
		"payload":     fmt.Sprintf("%d", d.PayloadBytes),
	}
}

// Summary flattens the Result into named numeric measurements, the
// aggregation unit of a scenario sweep. Keys are stable; values are
// deterministic functions of the Config.
func (r *Result) Summary() map[string]float64 {
	return map[string]float64{
		"delivered":        float64(r.Delivered),
		"expected":         float64(r.Expected),
		"wire_msgs":        float64(r.WireMessages),
		"wire_bytes":       float64(r.WireBytes),
		"net_msgs":         float64(r.NetMessages),
		"net_bytes":        float64(r.NetBytes),
		"kernel_events":    float64(r.KernelEvents),
		"bytes_per_client": r.BytesPerClient,
		"deliver_mean_us":  float64(r.Latency.Mean()) / float64(time.Microsecond),
		"deliver_p99_us":   float64(r.Latency.P99()) / float64(time.Microsecond),
		"virtual_ms":       float64(r.VirtualDuration) / float64(time.Millisecond),
	}
}

// SummaryLine renders the one-line human-readable form of the Result.
func (r *Result) SummaryLine() string {
	return fmt.Sprintf("fanout: %d/%d deliveries, %d wire msgs, %d net bytes (%.1f B/client), deliver mean %s p99 %s",
		r.Delivered, r.Expected, r.WireMessages, r.NetBytes, r.BytesPerClient,
		r.Latency.Mean().Round(10*time.Microsecond),
		r.Latency.P99().Round(10*time.Microsecond))
}
