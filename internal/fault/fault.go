// Package fault derives deterministic fault schedules for churn
// experiments: given a churn specification, a node list, and a seeded
// RNG, Schedule produces the full crash/restart (and optionally
// partition/heal) event sequence for a run up front. The schedule is a
// pure function of its inputs — the per-scenario seed and the fault
// parameters — which is what lets the churn band stay byte-identical at
// any worker count and shard count: fault draws come from a dedicated
// stream and never perturb the engine RNG that feeds link jitter and
// workload think times.
//
// The package is deliberately free of any simulator dependency: it emits
// plain (offset, kind, node) events. internal/network's FaultPlan binds
// a schedule to a live network and timebase.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Kind discriminates fault events.
type Kind uint8

const (
	// Crash fail-stops a node: it emits nothing, receives nothing, and
	// in-flight traffic toward it is dropped.
	Crash Kind = iota
	// Restart brings a crashed node back under a fresh incarnation.
	Restart
	// Partition cuts the directed link Node→Peer.
	Partition
	// Heal restores the directed link Node→Peer.
	Heal
)

// String returns the kind's name for logs and test failures.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	default:
		return fmt.Sprintf("fault.Kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault: at offset At from the start of the run,
// Kind happens to Node (Peer names the far end for partition/heal and is
// empty for crash/restart).
type Event struct {
	At   time.Duration
	Kind Kind
	Node string
	Peer string
}

// Spec parameterises a fault schedule. Rates are per-second; zero rates
// disable the corresponding fault class.
type Spec struct {
	// CrashRate is the expected number of crashes per node per second of
	// up-time (exponential inter-crash times).
	CrashRate float64
	// MTTR is the mean time to restart after a crash (exponential).
	// Required positive when CrashRate is.
	MTTR time.Duration
	// PartitionRate is the expected number of partitions per directed
	// node pair per second of connected time.
	PartitionRate float64
	// MTTH is the mean time to heal after a partition (exponential).
	// Required positive when PartitionRate is.
	MTTH time.Duration
	// Horizon bounds the schedule: no event is emitted at or beyond it.
	// A node whose restart (or heal) would land past the horizon simply
	// stays down — an unhealed fault, which the churn band reports as
	// availability loss, not a violation.
	Horizon time.Duration
}

func (s Spec) validate() error {
	if s.CrashRate < 0 || s.PartitionRate < 0 {
		return fmt.Errorf("fault: negative rate (crash %v, partition %v)", s.CrashRate, s.PartitionRate)
	}
	if s.CrashRate > 0 && s.MTTR <= 0 {
		return fmt.Errorf("fault: CrashRate %v requires positive MTTR (got %v)", s.CrashRate, s.MTTR)
	}
	if s.PartitionRate > 0 && s.MTTH <= 0 {
		return fmt.Errorf("fault: PartitionRate %v requires positive MTTH (got %v)", s.PartitionRate, s.MTTH)
	}
	if s.Horizon < 0 {
		return fmt.Errorf("fault: negative horizon %v", s.Horizon)
	}
	return nil
}

// Enabled reports whether the spec produces any faults at all — the
// cheap gate churn-aware code uses to stay behaviourally inert (no extra
// RNG draws, no extra events) on fault-free runs.
func (s Spec) Enabled() bool {
	return (s.CrashRate > 0 || s.PartitionRate > 0) && s.Horizon > 0
}

// Schedule derives the complete fault schedule for nodes over the spec's
// horizon. Per-node (and, when enabled, per-directed-pair) alternating
// up/down renewal processes are drawn in deterministic order — nodes in
// slice order, pairs in nested slice order — from rng, then merged into
// one event list sorted by (At, Kind, Node, Peer). Calling it twice with
// equal inputs yields equal schedules.
func Schedule(spec Spec, nodes []string, rng *rand.Rand) ([]Event, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if !spec.Enabled() || len(nodes) == 0 {
		return nil, nil
	}
	var events []Event
	if spec.CrashRate > 0 {
		for _, node := range nodes {
			events = drawAlternating(events, rng, spec.CrashRate, spec.MTTR, spec.Horizon,
				Crash, Restart, node, "")
		}
	}
	if spec.PartitionRate > 0 {
		for _, src := range nodes {
			for _, dst := range nodes {
				if src == dst {
					continue
				}
				events = drawAlternating(events, rng, spec.PartitionRate, spec.MTTH, spec.Horizon,
					Partition, Heal, src, dst)
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Peer < b.Peer
	})
	return events, nil
}

// drawAlternating appends one subject's alternating fault/repair renewal
// process: exponential up-times at rate upRate, exponential down-times
// with mean repairMean, truncated at horizon. A repair that would land
// past the horizon is not emitted — the subject stays failed.
func drawAlternating(events []Event, rng *rand.Rand, upRate float64, repairMean, horizon time.Duration, fail, repair Kind, node, peer string) []Event {
	t := time.Duration(0)
	for {
		up := time.Duration(rng.ExpFloat64() / upRate * float64(time.Second))
		t += up
		if t >= horizon {
			return events
		}
		events = append(events, Event{At: t, Kind: fail, Node: node, Peer: peer})
		down := time.Duration(rng.ExpFloat64() * float64(repairMean))
		t += down
		if t >= horizon {
			return events
		}
		events = append(events, Event{At: t, Kind: repair, Node: node, Peer: peer})
	}
}
