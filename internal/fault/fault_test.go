package fault

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestFaultScheduleDeterministic: equal inputs yield equal schedules,
// alternation is correct per subject, and the horizon truncates.
func TestFaultScheduleDeterministic(t *testing.T) {
	spec := Spec{
		CrashRate: 2.0,
		MTTR:      200 * time.Millisecond,
		Horizon:   10 * time.Second,
	}
	nodes := []string{"a", "b", "c"}
	ev1, err := Schedule(spec, nodes, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := Schedule(spec, nodes, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("same seed produced different schedules")
	}
	if len(ev1) == 0 {
		t.Fatal("expected events over a 10s horizon at rate 2/s")
	}
	last := make(map[string]Kind)
	for i, ev := range ev1 {
		if ev.At >= spec.Horizon {
			t.Fatalf("event %d at %v beyond horizon", i, ev.At)
		}
		if i > 0 && ev.At < ev1[i-1].At {
			t.Fatalf("events not sorted at %d", i)
		}
		prev, seen := last[ev.Node]
		switch ev.Kind {
		case Crash:
			if seen && prev == Crash {
				t.Fatalf("double crash for %s", ev.Node)
			}
		case Restart:
			if !seen || prev != Crash {
				t.Fatalf("restart without crash for %s", ev.Node)
			}
		}
		last[ev.Node] = ev.Kind
	}
	ev3, err := Schedule(spec, nodes, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ev1, ev3) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestFaultScheduleValidation: invalid specs are rejected, disabled
// specs yield nil.
func TestFaultScheduleValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Schedule(Spec{CrashRate: -1}, []string{"a"}, rng); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := Schedule(Spec{CrashRate: 1, Horizon: time.Second}, []string{"a"}, rng); err == nil {
		t.Fatal("zero MTTR with positive rate accepted")
	}
	if _, err := Schedule(Spec{PartitionRate: 1, Horizon: time.Second}, []string{"a"}, rng); err == nil {
		t.Fatal("zero MTTH with positive partition rate accepted")
	}
	ev, err := Schedule(Spec{}, []string{"a"}, rng)
	if err != nil || ev != nil {
		t.Fatalf("disabled spec: ev=%v err=%v, want nil/nil", ev, err)
	}
	if (Spec{CrashRate: 1, MTTR: time.Second, Horizon: time.Second}).Enabled() == false {
		t.Fatal("crash spec not Enabled")
	}
	if (Spec{}).Enabled() {
		t.Fatal("empty spec Enabled")
	}
}
