package floorcontrol

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// churnConfig is the shared base workload for the churn tests: a
// contended four-subscriber deployment under a 2-crashes-per-second
// fault plan with 200 ms repairs.
func churnConfig(sol string, seed int64) Config {
	return Config{
		Solution:    sol,
		Subscribers: 4,
		Resources:   2,
		Cycles:      4,
		Seed:        seed,
		Deadline:    8 * time.Second,
		CrashRate:   2,
		MTTR:        200 * time.Millisecond,
	}
}

// TestChurnAllSolutionsSafe is the headline robustness result: every one
// of the ten solutions runs under crash/restart churn with ZERO safety
// violations. Liveness loss — cycles that never complete because a grant
// died with a node — is legal and shows up as availability < 1, never as
// a monitor violation with a triggering event.
func TestChurnAllSolutionsSafe(t *testing.T) {
	for _, name := range AllSolutionNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := RunWorkload(churnConfig(name, 42))
			if err != nil {
				t.Fatalf("RunWorkload: %v", err)
			}
			if !res.Churn {
				t.Fatal("Result.Churn not set")
			}
			if !res.SafetyOK {
				t.Fatalf("%d safety violations under churn; conformance: %v\ntrace:\n%s",
					res.SafetyViolations, res.ConformanceErr, res.Trace)
			}
			if res.Crashes == 0 {
				t.Fatal("fault plan fired no crashes")
			}
			if res.Offered == 0 {
				t.Fatal("no acquires offered")
			}
			if res.Availability <= 0 || res.Availability > 1 {
				t.Fatalf("availability %v out of (0, 1]", res.Availability)
			}
			sum := res.Summary()
			for _, k := range []string{"offered", "served", "availability", "crashes", "safety_ok"} {
				if _, ok := sum[k]; !ok {
					t.Errorf("Summary missing churn key %q", k)
				}
			}
			if sum["safety_ok"] != 1 {
				t.Errorf("safety_ok = %v, want 1", sum["safety_ok"])
			}
		})
	}
}

// TestChurnRetryingSolutionsServeEverything: the middleware solutions
// carry idempotent retry machinery, so under moderate churn every
// offered acquire is eventually granted — the run completes all cycles
// even though nodes crash throughout.
func TestChurnRetryingSolutionsServeEverything(t *testing.T) {
	res, err := RunWorkload(churnConfig("mw-callback", 42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != res.Offered || res.Offered != res.Expected {
		t.Fatalf("served %d of %d offered (%d expected): retries did not recover",
			res.Served, res.Offered, res.Expected)
	}
	if res.ConformanceErr != nil {
		t.Fatalf("conformance under churn: %v", res.ConformanceErr)
	}
}

// TestChurnDeterminism: a churn run is a pure function of its Config —
// identical configs yield identical traces and metrics, crashes and all.
func TestChurnDeterminism(t *testing.T) {
	for _, name := range []string{"mw-callback", "mw-token", "proto-token"} {
		a, err := RunWorkload(churnConfig(name, 7))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunWorkload(churnConfig(name, 7))
		if err != nil {
			t.Fatal(err)
		}
		la, lb := a.Trace.Labels(), b.Trace.Labels()
		if len(la) != len(lb) {
			t.Fatalf("%s: trace lengths differ: %d vs %d", name, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%s: traces diverge at %d: %q vs %q", name, i, la[i], lb[i])
			}
		}
		if a.Crashes != b.Crashes || a.Served != b.Served || a.NetMessages != b.NetMessages {
			t.Fatalf("%s: metrics differ across identical churn runs", name)
		}
	}
}

// TestChurnShardIdentity: the fault plan rides the same deterministic
// engine as everything else, so a churn run is byte-identical whether it
// executes on a single kernel or a four-shard group.
func TestChurnShardIdentity(t *testing.T) {
	for _, name := range []string{"mw-callback", "mw-polling", "proto-token", "mda-queue-mq-like"} {
		cfg := churnConfig(name, 7)
		a, err := RunWorkload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards = 4
		b, err := RunWorkload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		la, lb := a.Trace.Labels(), b.Trace.Labels()
		if len(la) != len(lb) {
			t.Fatalf("%s: K=1 vs K=4 trace lengths differ: %d vs %d", name, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%s: K=1 vs K=4 traces diverge at %d", name, i)
			}
		}
		if a.Crashes != b.Crashes || a.Served != b.Served || a.Availability != b.Availability {
			t.Fatalf("%s: K=1 vs K=4 churn metrics differ:\n%+v\n%+v", name, a.Summary(), b.Summary())
		}
	}
}

// TestChurnFailoverImprovesAvailability compares the two rebind policies
// over a seed ensemble: live-rebinding the controller onto a standby
// node at the crash instant must beat waiting out the repair on average.
// (Individual seeds can go either way — a failover run explores a
// different trajectory — so the assertion is on the ensemble mean.)
func TestChurnFailoverImprovesAvailability(t *testing.T) {
	for _, name := range []string{"mw-callback", "mw-polling"} {
		var noneSum, failSum float64
		const seeds = 10
		for seed := int64(0); seed < seeds; seed++ {
			cfg := churnConfig(name, seed)
			cfg.CrashRate = 5
			cfg.MTTR = 500 * time.Millisecond
			none, err := RunWorkload(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.RebindPolicy = RebindFailover
			fo, err := RunWorkload(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !none.SafetyOK || !fo.SafetyOK {
				t.Fatalf("%s seed %d: safety violations (none=%v failover=%v)",
					name, seed, none.SafetyViolations, fo.SafetyViolations)
			}
			noneSum += none.Availability
			failSum += fo.Availability
		}
		if failSum <= noneSum {
			t.Errorf("%s: failover mean availability %.3f not above no-rebind %.3f",
				name, failSum/seeds, noneSum/seeds)
		}
	}
}

// TestChurnRebindPolicyValidation: unknown policies are rejected up
// front; the failover policy on a symmetric solution (no controller to
// re-home) is accepted and inert.
func TestChurnRebindPolicyValidation(t *testing.T) {
	cfg := churnConfig("mw-callback", 1)
	cfg.RebindPolicy = "bogus"
	if _, err := RunWorkload(cfg); err == nil {
		t.Fatal("bogus rebind policy accepted")
	}
	cfg = churnConfig("mw-token", 1)
	cfg.RebindPolicy = RebindFailover
	res, err := RunWorkload(cfg)
	if err != nil {
		t.Fatalf("failover on symmetric solution: %v", err)
	}
	if !res.SafetyOK {
		t.Fatalf("safety violations: %d", res.SafetyViolations)
	}
}

// TestChurnScenarioIdentity: churn parameters are workload identity —
// they fork scenario IDs (and hence derived seeds) and surface as
// params, in contrast to Shards which never does.
func TestChurnScenarioIdentity(t *testing.T) {
	base := churnConfig("mw-callback", 0)
	id := base.ScenarioID()
	want := "/crash=2/mttr=200ms"
	if !strings.Contains(id, want) {
		t.Fatalf("ScenarioID %q missing %q", id, want)
	}
	fo := base
	fo.RebindPolicy = RebindFailover
	if fo.ScenarioID() == id {
		t.Fatal("rebind policy does not fork the scenario ID")
	}
	if !strings.Contains(fo.ScenarioID(), "/rebind=failover") {
		t.Fatalf("ScenarioID %q missing rebind policy", fo.ScenarioID())
	}
	sharded := base
	sharded.Shards = 4
	if sharded.ScenarioID() != id {
		t.Fatal("Shards leaked into the scenario ID")
	}
	var faultFree Config
	faultFree.Solution = "mw-callback"
	if strings.Contains(faultFree.ScenarioID(), "crash") {
		t.Fatalf("fault-free ScenarioID %q mentions churn", faultFree.ScenarioID())
	}
	p := base.Params()
	if p["crash_rate"] != "2" || p["mttr"] != "200ms" || p["rebind"] != RebindNone {
		t.Fatalf("Params missing churn fields: %v", p)
	}
	if _, ok := faultFree.Params()["crash_rate"]; ok {
		t.Fatal("fault-free Params mention churn")
	}
}

// TestChurnFaultFreeResultOmitsChurnFields: without a crash rate the
// Result carries no churn bookkeeping and the Summary no churn keys —
// the fault-free report surface is exactly what it was before the churn
// engine existed.
func TestChurnFaultFreeResultOmitsChurnFields(t *testing.T) {
	res, err := RunWorkload(Config{Solution: "mw-callback", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Churn || res.Offered != 0 || res.Crashes != 0 {
		t.Fatalf("fault-free run carries churn bookkeeping: %+v", res)
	}
	if _, ok := res.Summary()["availability"]; ok {
		t.Fatal("fault-free Summary has availability")
	}
}

// TestChurnTraceRefinesSafetyLTS closes the formal loop under churn: the
// recorded trace of a churned execution is still a trace of the
// safety-only service LTS (liveness is deliberately excluded — a crash
// may orphan a request forever, which the safety LTS accepts as a
// prefix).
func TestChurnTraceRefinesSafetyLTS(t *testing.T) {
	subs, ress := 3, 2
	spec := ServiceLTS(SubscriberNames(subs), ResourceNames(ress))
	for _, name := range AllSolutionNames() {
		for seed := int64(0); seed < 3; seed++ {
			cfg := Config{
				Solution: name, Subscribers: subs, Resources: ress, Cycles: 3,
				Seed: seed, Deadline: 8 * time.Second,
				CrashRate: 5, MTTR: 300 * time.Millisecond,
			}
			res, err := RunWorkload(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.SafetyOK {
				t.Fatalf("%s seed %d: safety violations", name, seed)
			}
			if !spec.Accepts(res.Trace.Labels()) {
				t.Fatalf("%s seed %d: churned trace not accepted by safety LTS\n%s",
					name, seed, res.Trace)
			}
		}
	}
}

// TestChurnViolationClassification pins the safety/liveness split the
// availability metric rests on: a liveness violation (no triggering
// event) is not counted as a safety violation.
func TestChurnViolationClassification(t *testing.T) {
	res, err := RunWorkload(churnConfig("proto-token", 42))
	if err != nil {
		t.Fatal(err)
	}
	if res.ConformanceErr == nil {
		t.Skip("seed produced a fully live run; liveness classification untestable here")
	}
	ve, ok := core.AsViolation(res.ConformanceErr)
	if !ok {
		t.Fatalf("conformance error is not a violation: %v", res.ConformanceErr)
	}
	if ve.Event != nil {
		t.Fatalf("churned proto-token produced a safety violation: %v", ve)
	}
	if !res.SafetyOK {
		t.Fatal("liveness violation was classified as safety")
	}
}
