package floorcontrol

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sim"
)

// safetySpec is Spec() with the liveness constraint removed: the LTS
// encodes safety only (any prefix of a legal behaviour is a legal trace),
// so the cross-check below must compare against safety monitors only.
func safetySpec() *core.ServiceSpec {
	s := Spec()
	var kept []core.Constraint
	for _, c := range s.Constraints {
		if _, isLive := c.(*core.EventuallyFollows); !isLive {
			kept = append(kept, c)
		}
	}
	s.Constraints = kept
	return s
}

// TestPropertyLTSAgreesWithMonitors is the formal cross-validation: two
// independent encodings of the floor-control service — the generated
// behaviour LTS and the online constraint monitors — must accept exactly
// the same event sequences. Random traces (valid and invalid alike)
// exercise both.
func TestPropertyLTSAgreesWithMonitors(t *testing.T) {
	subs := SubscriberNames(2)
	ress := ResourceNames(2)
	spec := ServiceLTS(subs, ress)

	prop := func(seed int64, length uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(length%20) + 1

		kernel := sim.NewKernel()
		obs, err := core.NewObserver(safetySpec(), kernel)
		if err != nil {
			return false
		}
		var labels []string
		monitorsOK := true
		for i := 0; i < n; i++ {
			sub := subs[rng.Intn(len(subs))]
			res := ress[rng.Intn(len(ress))]
			prim := []string{PrimRequest, PrimGranted, PrimFree}[rng.Intn(3)]
			e := core.Event{
				SAP:       SubscriberSAP(sub),
				Primitive: prim,
				Params:    codec.Record{ParamResource: res},
			}
			labels = append(labels, e.Label())
			if obs.Observe(e.SAP, e.Primitive, e.Params) != nil {
				monitorsOK = false
				break // monitors reject at first violation; LTS must reject the same prefix
			}
		}
		ltsOK := spec.Accepts(labels)
		return ltsOK == monitorsOK
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyExecutedTracesAlwaysAccepted drives random small workloads
// through random solutions and requires LTS acceptance every time — the
// fuzzing face of the conformance result.
func TestPropertyExecutedTracesAlwaysAccepted(t *testing.T) {
	names := []string{
		"mw-callback", "mw-polling", "mw-token",
		"proto-callback", "proto-polling", "proto-token",
		"mda-rpc-rmi-like", "mda-queue-mq-like",
	}
	spec := ServiceLTS(SubscriberNames(2), ResourceNames(1))
	prop := func(seed int64, which uint8, cycles uint8) bool {
		res, err := RunWorkload(Config{
			Solution:    names[int(which)%len(names)],
			Subscribers: 2,
			Resources:   1,
			Cycles:      int(cycles%3) + 1,
			Seed:        seed,
		})
		if err != nil {
			return false
		}
		if res.ConformanceErr != nil {
			return false
		}
		return spec.Accepts(res.Trace.Labels())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyChurnedTracesRefineSafetyLTS extends the cross-check to
// the churn engine: random crash/heal schedules over random solutions
// must still produce traces the safety LTS accepts, with zero safety
// violations from the online monitors. Liveness is deliberately out of
// scope — a crash may orphan a request forever, and the safety LTS
// accepts that prefix; what may never appear is a grant that breaks
// mutual exclusion or a free without a grant (the failure modes a buggy
// retry/dedup scheme would introduce).
func TestPropertyChurnedTracesRefineSafetyLTS(t *testing.T) {
	names := []string{
		"mw-callback", "mw-polling", "mw-token",
		"proto-callback", "proto-polling", "proto-token",
		"mda-rpc-corba-like", "mda-msg-jms-like",
	}
	spec := ServiceLTS(SubscriberNames(3), ResourceNames(2))
	prop := func(seed int64, which, sev uint8) bool {
		res, err := RunWorkload(Config{
			Solution:    names[int(which)%len(names)],
			Subscribers: 3,
			Resources:   2,
			Cycles:      2,
			Seed:        seed,
			Deadline:    6 * time.Second,
			CrashRate:   0.5 + float64(sev%8),
			MTTR:        time.Duration(sev%4+1) * 100 * time.Millisecond,
		})
		if err != nil {
			return false
		}
		if !res.SafetyOK {
			return false
		}
		return spec.Accepts(res.Trace.Labels())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
