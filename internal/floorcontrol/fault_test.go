package floorcontrol

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// buildProtoEnv assembles a proto-callback deployment with direct access
// to the network for fault injection.
func buildProtoEnv(t *testing.T, seed int64, subs, resources int) (*sim.Kernel, *network.Network, *core.Observer, map[string]AppPart) {
	t.Helper()
	kernel := sim.NewKernel(sim.WithSeed(seed))
	net := network.New(kernel, network.WithDefaultLink(network.LinkConfig{Latency: time.Millisecond}))
	observer, err := core.NewObserver(Spec(), kernel)
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{
		Time:          kernel,
		Net:           net,
		Observer:      observer,
		Subscribers:   SubscriberNames(subs),
		Resources:     ResourceNames(resources),
		PollInterval:  5 * time.Millisecond,
		TokenHopDelay: 2 * time.Millisecond,
		Lower:         protocol.NewReliableDatagram(kernel, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{}),
	}
	parts, err := (&ProtoCallback{}).Build(env)
	if err != nil {
		t.Fatal(err)
	}
	return kernel, net, observer, parts
}

// TestPartitionHealedPreservesService injects a partition between a
// subscriber and the controller mid-acquisition; after healing, the
// reliability layer retransmits through and the service completes
// conformantly — distribution faults are masked below the service
// boundary.
func TestPartitionHealedPreservesService(t *testing.T) {
	kernel, net, observer, parts := buildProtoEnv(t, 3, 2, 1)

	granted := map[string]bool{}
	released := map[string]bool{}
	for _, sub := range SubscriberNames(2) {
		sub := sub
		part := parts[sub]
		kernel.Schedule(0, func() {
			part.Acquire("r1", func() {
				granted[sub] = true
				kernel.Schedule(5*time.Millisecond, func() {
					part.Release("r1")
					released[sub] = true
				})
			})
		})
	}
	// Cut s2 ↔ ctrl just before its request would reach the controller.
	net.PartitionBoth("s2", "ctrl")
	kernel.Schedule(60*time.Millisecond, func() { net.HealBoth("s2", "ctrl") })

	if _, err := kernel.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !granted["s1"] || !granted["s2"] {
		t.Fatalf("grants = %v; healing did not recover the partitioned subscriber", granted)
	}
	if !released["s1"] || !released["s2"] {
		t.Fatalf("releases = %v", released)
	}
	if err := observer.Complete(); err != nil {
		t.Fatalf("conformance after partition+heal: %v", err)
	}
	if st := net.Stats(); st.Dropped == 0 {
		t.Fatal("partition dropped nothing; fault not exercised")
	}
}

// TestPartitionNeverHealedIsLivenessViolation shows the complementary
// outcome: an unhealed partition cannot violate safety (no double grant),
// only liveness — and the observer attributes it correctly.
func TestPartitionNeverHealedIsLivenessViolation(t *testing.T) {
	kernel, net, observer, parts := buildProtoEnv(t, 5, 2, 1)
	net.PartitionBoth("s2", "ctrl")

	s1done := false
	kernel.Schedule(0, func() {
		parts["s1"].Acquire("r1", func() {
			kernel.Schedule(5*time.Millisecond, func() {
				parts["s1"].Release("r1")
				s1done = true
			})
		})
	})
	kernel.Schedule(0, func() {
		parts["s2"].Acquire("r1", func() {
			t.Error("partitioned subscriber was granted")
		})
	})
	if _, err := kernel.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	kernel.Stop() // retransmit timers would run forever
	if !s1done {
		t.Fatal("healthy subscriber blocked by peer's partition")
	}
	verr := observer.Complete()
	if verr == nil {
		t.Fatal("unanswered request not flagged")
	}
	v, ok := core.AsViolation(verr)
	if !ok || v.Constraint != "request-eventually-granted" {
		t.Fatalf("violation = %v, want liveness constraint", verr)
	}
}

// TestFairnessReported checks the new fairness measurements: under a
// symmetric workload every solution should serve subscribers roughly
// evenly (index near 1), and the per-subscriber histograms partition the
// global one.
func TestFairnessReported(t *testing.T) {
	for _, name := range []string{"mw-callback", "proto-callback", "proto-token"} {
		res, err := RunWorkload(Config{Solution: name, Subscribers: 4, Cycles: 6, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		if res.FairnessIndex < 0.5 || res.FairnessIndex > 1.0 {
			t.Fatalf("%s: fairness index %v implausible", name, res.FairnessIndex)
		}
		total := 0
		for _, h := range res.LatencyBySubscriber {
			total += h.Count()
		}
		if total != res.AcquireLatency.Count() {
			t.Fatalf("%s: per-subscriber samples %d != global %d", name, total, res.AcquireLatency.Count())
		}
	}
}

// replayTrace re-checks a recorded trace against a (possibly stricter)
// specification using the original event timestamps.
func replayTrace(t *testing.T, spec *core.ServiceSpec, trace core.Trace) error {
	t.Helper()
	clock := &replayClock{}
	obs, err := core.NewObserver(spec, clock)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range trace {
		clock.now = e.At
		_ = obs.Observe(e.SAP, e.Primitive, e.Params) //nolint:errcheck
	}
	return obs.Complete()
}

type replayClock struct{ now time.Duration }

func (c *replayClock) Now() time.Duration { return c.now }

// TestQoSSpecOverRecordedTraces replays real workload traces against a
// spec extended with QoS constraints (deadline, capacity) — the §5 point
// that QoS aspects can be addressed separately, at the service level.
func TestQoSSpecOverRecordedTraces(t *testing.T) {
	strict := Spec()
	strict.Constraints = append(strict.Constraints,
		&core.Deadline{
			ConstraintName: "grant-within-2s",
			ScopeKind:      core.ScopeLocal,
			Trigger:        PrimRequest,
			Response:       PrimGranted,
			Key:            core.KeySAPAndParam(ParamResource),
			Within:         2 * time.Second,
		},
		&core.Capacity{
			ConstraintName: "single-holder",
			Acquire:        PrimGranted,
			Release:        PrimFree,
			Key:            core.KeyParam(ParamResource),
			Limit:          1,
		},
	)
	if err := strict.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"proto-callback", "mw-token", "mda-queue-mq-like"} {
		res, err := RunWorkload(Config{Solution: name, Seed: 4, Cycles: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := replayTrace(t, strict, res.Trace); err != nil {
			t.Fatalf("%s: QoS-extended spec violated: %v", name, err)
		}
	}
	// A tight deadline catches the token solution's circulation latency.
	tight := Spec()
	tight.Constraints = append(tight.Constraints, &core.Deadline{
		ConstraintName: "grant-within-1us",
		ScopeKind:      core.ScopeLocal,
		Trigger:        PrimRequest,
		Response:       PrimGranted,
		Key:            core.KeySAPAndParam(ParamResource),
		Within:         time.Microsecond,
	})
	res, err := RunWorkload(Config{Solution: "proto-token", Seed: 4, Cycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := replayTrace(t, tight, res.Trace); err == nil {
		t.Fatal("1µs grant deadline should be violated by token circulation")
	}
}

// TestHistogramIntegrationSanity guards the metrics coupling end to end.
func TestHistogramIntegrationSanity(t *testing.T) {
	res, err := RunWorkload(Config{Solution: "proto-callback", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var h metrics.Histogram
	for _, sub := range res.LatencyBySubscriber {
		for q := 0.0; q <= 1.0; q += 0.5 {
			h.Add(sub.Quantile(q))
		}
	}
	if h.Count() == 0 || h.Max() < h.Min() {
		t.Fatal("histogram invariants broken")
	}
}
