// Package floorcontrol implements the paper's running example (§4): "the
// floor-control problem", in which "several application parts share a set
// of named resources [that] can only be used by a single application part
// at a time".
//
// The package contains:
//
//   - the floor-control *service definition* (Figure 5): primitives
//     request/granted/free with the paper's two local constraints and one
//     remote constraint, plus a generated behaviour LTS;
//   - the three middleware-centred solutions of Figure 4 — (a)
//     callback-based, (b) polling-based, (c) token-based — built on the
//     internal/middleware component platform;
//   - the three protocol-centred solutions of Figure 6 — the same three
//     coordination styles as explicit protocols over a reliable-datagram
//     lower service, exposed to user parts through the floor-control
//     service boundary (core.Provider);
//   - a workload driver that executes any solution under an identical
//     acquire/hold/release load, verifying service conformance online and
//     measuring the wire and latency footprint (the quantitative form of
//     the paper's §5 comparison).
package floorcontrol

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/lts"
)

// RoleSubscriber is the single role of the floor-control service.
const RoleSubscriber = "subscriber"

// Primitive names of the floor-control service (Figure 5).
const (
	PrimRequest = "request"
	PrimGranted = "granted"
	PrimFree    = "free"
)

// ParamResource is the resource-identification parameter carried by every
// primitive.
const ParamResource = "resid"

// Spec returns the floor-control service definition of Figure 5:
//
//	request (ResourceId resid);   from-user
//	granted (ResourceId resid);   to-user
//	free    (ResourceId resid);   from-user
//	occur @ SAP subscriber_id
//
// with the paper's constraints: granted eventually follows request
// (local), free follows granted (local), and a resource is only granted to
// one subscriber at a time (remote).
func Spec() *core.ServiceSpec {
	return &core.ServiceSpec{
		Name:        "floor-control",
		Description: "coordinated, exclusive, non-preemptive access to named shared resources",
		Roles:       []core.RoleDef{{Name: RoleSubscriber, Min: 2}},
		Primitives: []core.PrimitiveDef{
			{Name: PrimRequest, Direction: core.FromUser, Params: []core.ParamDef{{Name: ParamResource, Kind: core.KindString}}},
			{Name: PrimGranted, Direction: core.ToUser, Params: []core.ParamDef{{Name: ParamResource, Kind: core.KindString}}},
			{Name: PrimFree, Direction: core.FromUser, Params: []core.ParamDef{{Name: ParamResource, Kind: core.KindString}}},
		},
		Constraints: []core.Constraint{
			&core.Precedes{
				ConstraintName: "granted-follows-request",
				ConstraintDesc: "the execution of granted follows the execution of request (for a given resource identification)",
				ScopeKind:      core.ScopeLocal,
				Trigger:        PrimRequest,
				Enabled:        PrimGranted,
				Key:            core.KeySAPAndParam(ParamResource),
			},
			&core.Precedes{
				ConstraintName: "free-follows-granted",
				ConstraintDesc: "the execution of free follows the execution of granted (for a given resource identification)",
				ScopeKind:      core.ScopeLocal,
				Trigger:        PrimGranted,
				Enabled:        PrimFree,
				Key:            core.KeySAPAndParam(ParamResource),
			},
			&core.MutualExclusion{
				ConstraintName: "exclusive-grant",
				ConstraintDesc: "a resource is only granted to one subscriber at a time",
				Acquire:        PrimGranted,
				Release:        PrimFree,
				Key:            core.KeyParam(ParamResource),
			},
			&core.EventuallyFollows{
				ConstraintName: "request-eventually-granted",
				ConstraintDesc: "the execution of granted eventually follows the execution of request (liveness; subscribers are cooperative)",
				ScopeKind:      core.ScopeLocal,
				Trigger:        PrimRequest,
				Response:       PrimGranted,
				Key:            core.KeySAPAndParam(ParamResource),
			},
			&core.Absence{
				ConstraintName: "no-request-while-held",
				ConstraintDesc: "a subscriber does not re-request a resource it currently holds (cooperative use, §4)",
				ScopeKind:      core.ScopeLocal,
				Open:           PrimGranted,
				Close:          PrimFree,
				Forbidden:      PrimRequest,
				Key:            core.KeySAPAndParam(ParamResource),
			},
		},
	}
}

// SubscriberSAP names the SAP of one subscriber.
func SubscriberSAP(id string) core.SAP { return core.SAP{Role: RoleSubscriber, ID: id} }

// eventLabel renders an event label in the same form core.Event.Label
// produces, for LTS construction.
func eventLabel(prim, sub, res string) string {
	return fmt.Sprintf("%s@%s:%s(%s=%s)", prim, RoleSubscriber, sub, ParamResource, res)
}

// ServiceLTS generates the behaviour LTS of the floor-control service for
// a concrete deployment (subscriber ids × resource ids): the state space
// of all constraint-respecting interleavings. Recorded execution traces
// are checked against it by trace refinement — the formal assessment the
// paper asks for ("this can be assessed formally", §2).
//
// The state space is exponential in subscribers × resources; keep the
// deployment small (it is a specification artifact, not a runtime one).
func ServiceLTS(subscribers, resources []string) *lts.LTS {
	b := lts.NewBuilder("floor-control-service")

	// A subscriber's state per resource: 0 idle, 1 requested, 2 held.
	type cfg struct {
		state string // concatenated digits, index = sub*len(resources)+res
	}
	idle := make([]byte, len(subscribers)*len(resources))
	for i := range idle {
		idle[i] = '0'
	}
	start := cfg{string(idle)}
	name := func(c cfg) string { return c.state }

	created := map[cfg]lts.State{start: b.State(name(start))}
	b.Final(created[start])
	work := []cfg{start}
	heldBy := func(c cfg, res int) int {
		for s := range subscribers {
			if c.state[s*len(resources)+res] == '2' {
				return s
			}
		}
		return -1
	}
	for len(work) > 0 {
		c := work[0]
		work = work[1:]
		from := created[c]
		step := func(label string, next cfg) {
			to, ok := created[next]
			if !ok {
				to = b.State(name(next))
				created[next] = to
				// Final whenever nothing is requested or held.
				allIdle := true
				for i := 0; i < len(next.state); i++ {
					if next.state[i] != '0' {
						allIdle = false
						break
					}
				}
				if allIdle {
					b.Final(to)
				}
				work = append(work, next)
			}
			b.Transition(from, label, to)
		}
		for s, sub := range subscribers {
			for r, res := range resources {
				i := s*len(resources) + r
				switch c.state[i] {
				case '0': // idle: may request
					next := []byte(c.state)
					next[i] = '1'
					step(eventLabel(PrimRequest, sub, res), cfg{string(next)})
				case '1': // requested: may be granted if nobody holds res
					if heldBy(c, r) == -1 {
						next := []byte(c.state)
						next[i] = '2'
						step(eventLabel(PrimGranted, sub, res), cfg{string(next)})
					}
				case '2': // held: may free
					next := []byte(c.state)
					next[i] = '0'
					step(eventLabel(PrimFree, sub, res), cfg{string(next)})
				}
			}
		}
	}
	return b.MustBuild()
}

// observedProvider wraps a core.Provider so that every primitive crossing
// the SAP boundary is also reported to the conformance observer. User
// parts stay oblivious: they see a plain Provider.
type observedProvider struct {
	inner core.Provider
	obs   *core.Observer
}

var _ core.Provider = (*observedProvider)(nil)

// ObserveProvider decorates provider with conformance observation.
func ObserveProvider(provider core.Provider, obs *core.Observer) core.Provider {
	return &observedProvider{inner: provider, obs: obs}
}

func (o *observedProvider) Submit(sap core.SAP, primitive string, params codec.Record) error {
	_ = o.obs.Observe(sap, primitive, params) //nolint:errcheck // violations surface via Observer.Err
	return o.inner.Submit(sap, primitive, params)
}

func (o *observedProvider) Attach(sap core.SAP, handler func(string, codec.Record)) {
	o.inner.Attach(sap, func(primitive string, params codec.Record) {
		_ = o.obs.Observe(sap, primitive, params) //nolint:errcheck
		handler(primitive, params)
	})
}

// Scattering quantifies the paper's Figure 7: where does the interaction
// functionality of a solution live? Counts are *structural* — they count
// the coordination-specific operations (component operations, polling
// loops, token handling, PDU handlers) each solution implements, split by
// residence.
type Scattering struct {
	// AppPartOps counts interaction operations resident in each
	// subscriber's application part.
	AppPartOps int
	// ControllerOps counts interaction operations in a controller that is
	// itself an application part (middleware solutions only: "an
	// application part plays the role of a controller", §4.1).
	ControllerOps int
	// InteractionSystemOps counts operations inside the dedicated
	// interaction system (protocol entities behind the service boundary).
	InteractionSystemOps int
}

// Index returns the fraction of interaction functionality resident in
// application parts: 1.0 = fully scattered (middleware solutions),
// 0.0 = fully concentrated in the interaction system (protocol solutions).
func (s Scattering) Index() float64 {
	total := s.AppPartOps + s.ControllerOps + s.InteractionSystemOps
	if total == 0 {
		return 0
	}
	return float64(s.AppPartOps+s.ControllerOps) / float64(total)
}
