package floorcontrol

import (
	"strings"
	"testing"

	"repro/internal/lts"
	"repro/internal/middleware"
)

func TestSpecIsValid(t *testing.T) {
	if err := Spec().Validate(); err != nil {
		t.Fatalf("Spec invalid: %v", err)
	}
}

func TestSpecDocumentMatchesFigure5(t *testing.T) {
	doc := Spec().Document()
	for _, want := range []string{
		"request(resid: string)",
		"granted(resid: string)",
		"free(resid: string)",
		"a resource is only granted to one subscriber at a time",
		"[local]",
		"[remote]",
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("spec document missing %q:\n%s", want, doc)
		}
	}
}

func TestSubscriberSAP(t *testing.T) {
	sap := SubscriberSAP("s1")
	if sap.Role != RoleSubscriber || sap.ID != "s1" {
		t.Fatalf("SAP = %+v", sap)
	}
}

func TestServiceLTSSmallDeployment(t *testing.T) {
	l := ServiceLTS([]string{"s1", "s2"}, []string{"r1"})
	// 2 subscribers × 1 resource: each sub has 3 states, minus double-held.
	// 3*3 - 1 = 8 states.
	if l.NumStates() != 8 {
		t.Fatalf("NumStates = %d, want 8", l.NumStates())
	}
	if dl := l.Deadlocks(); len(dl) != 0 {
		t.Fatalf("service LTS has deadlocks: %v", dl)
	}
	ok := []string{
		eventLabel(PrimRequest, "s1", "r1"),
		eventLabel(PrimRequest, "s2", "r1"),
		eventLabel(PrimGranted, "s1", "r1"),
		eventLabel(PrimFree, "s1", "r1"),
		eventLabel(PrimGranted, "s2", "r1"),
		eventLabel(PrimFree, "s2", "r1"),
	}
	if !l.Accepts(ok) {
		t.Fatal("valid interleaving rejected")
	}
	bad := []string{
		eventLabel(PrimRequest, "s1", "r1"),
		eventLabel(PrimRequest, "s2", "r1"),
		eventLabel(PrimGranted, "s1", "r1"),
		eventLabel(PrimGranted, "s2", "r1"), // double grant
	}
	if l.Accepts(bad) {
		t.Fatal("double grant accepted by service LTS")
	}
}

func TestServiceLTSGrantRequiresRequest(t *testing.T) {
	l := ServiceLTS([]string{"s1"}, []string{"r1"})
	if l.Accepts([]string{eventLabel(PrimGranted, "s1", "r1")}) {
		t.Fatal("grant without request accepted")
	}
	if !l.Accepts([]string{
		eventLabel(PrimRequest, "s1", "r1"),
		eventLabel(PrimGranted, "s1", "r1"),
		eventLabel(PrimFree, "s1", "r1"),
		eventLabel(PrimRequest, "s1", "r1"),
	}) {
		t.Fatal("valid cycle rejected")
	}
}

func TestServiceLTSIndependentResources(t *testing.T) {
	l := ServiceLTS([]string{"s1", "s2"}, []string{"r1", "r2"})
	ok := []string{
		eventLabel(PrimRequest, "s1", "r1"),
		eventLabel(PrimRequest, "s2", "r2"),
		eventLabel(PrimGranted, "s1", "r1"),
		eventLabel(PrimGranted, "s2", "r2"),
	}
	if !l.Accepts(ok) {
		t.Fatal("concurrent holds of distinct resources rejected")
	}
}

func TestSolutionsRegistry(t *testing.T) {
	sols := Solutions()
	if len(sols) != 6 {
		t.Fatalf("Solutions() = %d, want 6", len(sols))
	}
	seen := map[string]bool{}
	for _, s := range sols {
		if seen[s.Name()] {
			t.Fatalf("duplicate solution %q", s.Name())
		}
		seen[s.Name()] = true
		if s.Figure() == "" {
			t.Fatalf("%s has no figure reference", s.Name())
		}
		got, ok := SolutionByName(s.Name())
		if !ok || got.Name() != s.Name() {
			t.Fatalf("SolutionByName(%q) failed", s.Name())
		}
	}
	if _, ok := SolutionByName("nope"); ok {
		t.Fatal("unknown solution found")
	}
	// Exactly three per paradigm, one per style.
	for _, paradigm := range []Paradigm{ParadigmMiddleware, ParadigmProtocol} {
		styles := map[Style]bool{}
		for _, s := range sols {
			if s.Paradigm() == paradigm {
				styles[s.Style()] = true
			}
		}
		if len(styles) != 3 {
			t.Fatalf("paradigm %s has styles %v, want 3", paradigm, styles)
		}
	}
}

func TestRunWorkloadAllSolutionsConform(t *testing.T) {
	for _, s := range Solutions() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			res, err := RunWorkload(Config{Solution: s.Name(), Seed: 42})
			if err != nil {
				t.Fatalf("RunWorkload: %v", err)
			}
			if res.Completed != res.Expected {
				t.Fatalf("completed %d of %d", res.Completed, res.Expected)
			}
			if res.ConformanceErr != nil {
				t.Fatalf("conformance violation: %v\ntrace:\n%s", res.ConformanceErr, res.Trace)
			}
			if res.AcquireLatency.Count() != res.Expected {
				t.Fatalf("latency samples %d, want %d", res.AcquireLatency.Count(), res.Expected)
			}
			if res.NetMessages == 0 || res.ParadigmMessages == 0 {
				t.Fatalf("no traffic counted: %+v", res)
			}
			if res.Paradigm != s.Paradigm() || res.Style != s.Style() {
				t.Fatalf("result identity mismatch: %+v", res)
			}
		})
	}
}

func TestRunWorkloadUnknownSolution(t *testing.T) {
	if _, err := RunWorkload(Config{Solution: "nope"}); err == nil {
		t.Fatal("unknown solution accepted")
	}
}

func TestRunWorkloadDeterminism(t *testing.T) {
	for _, name := range []string{"mw-callback", "proto-token"} {
		a, err := RunWorkload(Config{Solution: name, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunWorkload(Config{Solution: name, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		la, lb := a.Trace.Labels(), b.Trace.Labels()
		if len(la) != len(lb) {
			t.Fatalf("%s: trace lengths differ: %d vs %d", name, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%s: traces diverge at %d: %q vs %q", name, i, la[i], lb[i])
			}
		}
		if a.NetMessages != b.NetMessages || a.VirtualDuration != b.VirtualDuration {
			t.Fatalf("%s: metrics differ across identical runs", name)
		}
	}
}

func TestRunWorkloadSeedsDiffer(t *testing.T) {
	a, err := RunWorkload(Config{Solution: "proto-callback", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(Config{Solution: "proto-callback", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.VirtualDuration == b.VirtualDuration && a.NetMessages == b.NetMessages {
		t.Log("note: different seeds produced identical aggregate metrics (possible but unlikely)")
	}
}

// TestTraceRefinesServiceLTS closes the formal loop: the recorded
// execution trace of every solution is a trace of the service LTS.
func TestTraceRefinesServiceLTS(t *testing.T) {
	subs, ress := 2, 1
	spec := ServiceLTS(SubscriberNames(subs), ResourceNames(ress))
	for _, s := range Solutions() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			res, err := RunWorkload(Config{
				Solution:    s.Name(),
				Subscribers: subs,
				Resources:   ress,
				Cycles:      3,
				Seed:        13,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ConformanceErr != nil {
				t.Fatalf("online conformance: %v", res.ConformanceErr)
			}
			labels := res.Trace.Labels()
			if !spec.Accepts(labels) {
				t.Fatalf("trace rejected by service LTS:\n%s", strings.Join(labels, "\n"))
			}
		})
	}
}

// TestProtocolSwapLeavesAppPartUnchanged is Figure 9: the three protocol
// solutions share one application-part implementation, and every SAP-local
// trace follows the same request→granted→free discipline.
func TestProtocolSwapLeavesAppPartUnchanged(t *testing.T) {
	for _, name := range []string{"proto-callback", "proto-polling", "proto-token"} {
		res, err := RunWorkload(Config{Solution: name, Subscribers: 2, Resources: 1, Cycles: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range SubscriberNames(2) {
			local := res.Trace.AtSAP(SubscriberSAP(sub))
			if len(local)%3 != 0 {
				t.Fatalf("%s/%s: local trace not whole cycles:\n%s", name, sub, local)
			}
			for i := 0; i < len(local); i += 3 {
				if local[i].Primitive != PrimRequest || local[i+1].Primitive != PrimGranted || local[i+2].Primitive != PrimFree {
					t.Fatalf("%s/%s: cycle %d malformed:\n%s", name, sub, i/3, local)
				}
			}
		}
	}
}

func TestScatteringContrast(t *testing.T) {
	const n = 4
	for _, s := range Solutions() {
		sc := s.Scattering(n)
		idx := sc.Index()
		switch s.Paradigm() {
		case ParadigmMiddleware:
			if idx != 1.0 {
				t.Errorf("%s: scattering index = %.2f, want 1.0 (all in app parts)", s.Name(), idx)
			}
		case ParadigmProtocol:
			if idx != 0.0 {
				t.Errorf("%s: scattering index = %.2f, want 0.0 (all in interaction system)", s.Name(), idx)
			}
			if sc.InteractionSystemOps == 0 {
				t.Errorf("%s: interaction system empty", s.Name())
			}
		}
	}
	if (Scattering{}).Index() != 0 {
		t.Error("zero scattering should index 0")
	}
}

func TestWorkloadUnderLoss(t *testing.T) {
	// The reliable transport must keep every solution conformant and
	// complete under 20% datagram loss.
	for _, name := range []string{"mw-callback", "proto-callback", "proto-token"} {
		res, err := RunWorkload(Config{Solution: name, Seed: 9, LossRate: 0.2, Cycles: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Completed != res.Expected {
			t.Fatalf("%s: completed %d of %d under loss", name, res.Completed, res.Expected)
		}
		if res.ConformanceErr != nil {
			t.Fatalf("%s: conformance under loss: %v", name, res.ConformanceErr)
		}
	}
}

func TestWorkloadHighContention(t *testing.T) {
	// Many subscribers, one resource: the paper's mutual-exclusion core.
	for _, s := range Solutions() {
		res, err := RunWorkload(Config{
			Solution:    s.Name(),
			Subscribers: 6,
			Resources:   1,
			Cycles:      3,
			Seed:        21,
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Completed != res.Expected || res.ConformanceErr != nil {
			t.Fatalf("%s under contention: completed=%d/%d err=%v",
				s.Name(), res.Completed, res.Expected, res.ConformanceErr)
		}
	}
}

func TestNamesHelpers(t *testing.T) {
	subs := SubscriberNames(3)
	if len(subs) != 3 || subs[0] != "s1" || subs[2] != "s3" {
		t.Fatalf("SubscriberNames = %v", subs)
	}
	ress := ResourceNames(2)
	if len(ress) != 2 || ress[1] != "r2" {
		t.Fatalf("ResourceNames = %v", ress)
	}
}

func TestBuildRequiresSubstrate(t *testing.T) {
	env := &Env{} // no platform, no lower service
	if _, err := (&MWCallback{}).Build(env); err == nil {
		t.Fatal("mw solution built without platform")
	}
	if _, err := (&ProtoCallback{}).Build(env); err == nil {
		t.Fatal("protocol solution built without lower service")
	}
}

func TestResourceQueue(t *testing.T) {
	q := newResourceQueue([]string{"r1"})
	if !q.known("r1") || q.known("r2") {
		t.Fatal("known() wrong")
	}
	if !q.tryAcquire("s1", "r1") {
		t.Fatal("acquire of free resource failed")
	}
	if q.tryAcquire("s2", "r1") {
		t.Fatal("double acquire succeeded")
	}
	q.enqueue("s2", "r1")
	q.enqueue("s3", "r1")
	next, ok, err := q.release("s1", "r1")
	if err != nil || !ok || next != "s2" {
		t.Fatalf("release = %q, %v, %v", next, ok, err)
	}
	if _, _, err := q.release("s1", "r1"); err == nil {
		t.Fatal("foreign release accepted")
	}
	next, ok, err = q.release("s2", "r1")
	if err != nil || !ok || next != "s3" {
		t.Fatalf("second release = %q, %v, %v", next, ok, err)
	}
	next, ok, err = q.release("s3", "r1")
	if err != nil || ok || next != "" {
		t.Fatalf("final release = %q, %v, %v", next, ok, err)
	}
}

// TestObserveProviderReportsBothDirections ensures the SAP decorator
// observes submissions and deliveries.
func TestObserveProviderReportsBothDirections(t *testing.T) {
	res, err := RunWorkload(Config{Solution: "proto-callback", Subscribers: 2, Resources: 1, Cycles: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var from, to int
	for _, e := range res.Trace {
		switch e.Primitive {
		case PrimRequest, PrimFree:
			from++
		case PrimGranted:
			to++
		}
	}
	if from != 4 || to != 2 {
		t.Fatalf("from-user=%d to-user=%d, want 4/2", from, to)
	}
}

func TestMiddlewareSolutionsRequireMatchingProfile(t *testing.T) {
	// The middleware solutions assume remote invocation (§4.1); an
	// MQ-like profile cannot build them.
	_, err := RunWorkload(Config{Solution: "mw-callback", Seed: 1, Profile: middleware.ProfileMQLike})
	if err == nil {
		t.Fatal("mw-callback built on a queue-only platform")
	}
}

func TestTraceRefinementViaLTSRefines(t *testing.T) {
	// Build a linear LTS from an executed trace and check full trace
	// refinement (not just membership) against the service LTS.
	res, err := RunWorkload(Config{Solution: "proto-polling", Subscribers: 2, Resources: 1, Cycles: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	b := lts.NewBuilder("executed-trace")
	prev := b.State("t0")
	for i, label := range res.Trace.Labels() {
		next := b.State("t" + string(rune('a'+i%26)) + SubscriberNames(1)[0] + fmtInt(i))
		b.Transition(prev, label, next)
		prev = next
	}
	b.Final(prev)
	impl := b.MustBuild()
	spec := ServiceLTS(SubscriberNames(2), ResourceNames(1))
	r := lts.TraceRefines(impl, spec)
	if !r.Holds {
		t.Fatalf("trace refinement failed: %v", r.Counterexample)
	}
}

// fmtInt avoids importing strconv in tests for one call site.
func fmtInt(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}
