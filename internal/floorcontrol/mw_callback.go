package floorcontrol

import (
	"fmt"
	"sync"

	"repro/internal/middleware"
	"repro/internal/svc"
)

// MWCallback is the callback-based middleware solution of Figure 4(a):
// "the controller is a singleton component that has an interface with a
// request_permission operation. ... Eventually, when the resource is to be
// granted to the subscriber, a grant operation of the subscriber's
// interface is invoked by the controller. When the subscriber wants to
// release the resource, a free operation of the controller's interface is
// invoked."
//
// Interaction functionality resident in application parts (Figure 7): the
// subscriber part must expose a grant callback interface and invoke
// request_permission/free; the controller is itself an application part
// centralizing the coordination. All of it programs against typed svc
// ports — the raw platform surface never appears in the solution.
type MWCallback struct{}

var _ Solution = (*MWCallback)(nil)

// Name implements Solution.
func (*MWCallback) Name() string { return "mw-callback" }

// Paradigm implements Solution.
func (*MWCallback) Paradigm() Paradigm { return ParadigmMiddleware }

// Style implements Solution.
func (*MWCallback) Style() Style { return StyleCallback }

// Figure implements Solution.
func (*MWCallback) Figure() string { return "Fig 4(a)" }

// Scattering implements Solution: per subscriber part, 3 interaction
// operations (request_permission invocation, grant callback
// implementation, free invocation); the controller part implements 3
// (request_permission, free, grant invocation logic).
func (*MWCallback) Scattering(n int) Scattering {
	return Scattering{AppPartOps: 3 * n, ControllerOps: 3}
}

// Build implements Solution.
func (s *MWCallback) Build(env *Env) (map[string]AppPart, error) {
	b, err := bindService(env, s.Name())
	if err != nil {
		return nil, err
	}
	ctrl := &callbackController{env: env, q: newResourceQueue(env.Resources),
		grants: make(map[string]*svc.Port[grantArgs, ack], len(env.Subscribers))}
	if err := ctrl.export(b); err != nil {
		return nil, fmt.Errorf("floorcontrol: register controller: %w", err)
	}
	// The controller-facing ports carry the caller's node per call, so one
	// shared port per operation serves every subscriber part; only the
	// grant callback ports differ per subscriber (distinct targets).
	request, err := svc.NewPort[ctrlArgs, ack](b, "controller", "request_permission", encCtrlArgs, nil)
	if err != nil {
		return nil, err
	}
	free, err := svc.NewPort[ctrlArgs, ack](b, "controller", "free", encCtrlArgs, nil)
	if err != nil {
		return nil, err
	}
	parts := make(map[string]AppPart, len(env.Subscribers))
	for _, sub := range env.Subscribers {
		part := &mwCallbackPart{env: env, sub: sub, pending: make(map[string]func()),
			request: request, free: free}
		if err := part.export(b); err != nil {
			return nil, fmt.Errorf("floorcontrol: register subscriber %q: %w", sub, err)
		}
		if ctrl.grants[sub], err = svc.NewPort[grantArgs, ack](b, subObjRef(sub), "grant", encGrantArgs, nil); err != nil {
			return nil, err
		}
		parts[sub] = part
	}
	return parts, nil
}

// callbackController is the singleton controller component, exported as
// typed request_permission/free operations; it grants through one typed
// callback port per subscriber.
type callbackController struct {
	env    *Env
	grants map[string]*svc.Port[grantArgs, ack]

	mu sync.Mutex
	q  *resourceQueue
}

// export hosts the controller's typed operations at ctrlNode.
func (c *callbackController) export(b *svc.Binding) error {
	e, err := b.NewExport("controller", ctrlNode)
	if err != nil {
		return err
	}
	if err := svc.HandleOp(e, "request_permission", decCtrlArgs, encAck, c.requestPermission); err != nil {
		return err
	}
	if err := svc.HandleOp(e, "free", decCtrlArgs, encAck, c.free); err != nil {
		return err
	}
	return e.Register()
}

func (c *callbackController) requestPermission(a ctrlArgs, respond func(ack, error)) {
	c.mu.Lock()
	if !c.q.known(a.Res) {
		c.mu.Unlock()
		respond(ack{}, fmt.Errorf("unknown resource %q", a.Res))
		return
	}
	granted := c.q.tryAcquire(a.Sub, a.Res)
	if !granted {
		c.q.enqueue(a.Sub, a.Res)
	}
	c.mu.Unlock()
	respond(ack{}, nil) // intention registered
	if granted {
		c.grant(a.Sub, a.Res)
	}
}

func (c *callbackController) free(a ctrlArgs, respond func(ack, error)) {
	c.mu.Lock()
	next, ok, err := c.q.release(a.Sub, a.Res)
	c.mu.Unlock()
	if err != nil {
		respond(ack{}, err)
		return
	}
	respond(ack{}, nil)
	if ok {
		c.grant(next, a.Res)
	}
}

// grant invokes the grant operation of the subscriber's callback
// interface through the typed port.
func (c *callbackController) grant(sub, res string) {
	err := c.grants[sub].Call(ctrlNode, grantArgs{Res: res}, nil)
	if err != nil {
		// Unknown subscriber object: deployment error surfaced in tests.
		panic(fmt.Sprintf("floorcontrol: grant to %q: %v", sub, err))
	}
}

// mwCallbackPart is one subscriber's application part. The grant callback
// interface it must expose, and the ports it must invoke, are the
// interaction functionality the paradigm scatters into it.
type mwCallbackPart struct {
	env     *Env
	sub     string
	request *svc.Port[ctrlArgs, ack]
	free    *svc.Port[ctrlArgs, ack]

	mu      sync.Mutex
	pending map[string]func() // resource → completion
}

var _ AppPart = (*mwCallbackPart)(nil)

// export hosts the part's grant callback interface.
func (p *mwCallbackPart) export(b *svc.Binding) error {
	e, err := b.NewExport(subObjRef(p.sub), middleware.Addr(p.sub))
	if err != nil {
		return err
	}
	if err := svc.HandleOp(e, "grant", decGrantArgs, encAck, p.onGrant); err != nil {
		return err
	}
	return e.Register()
}

func (p *mwCallbackPart) onGrant(a grantArgs, respond func(ack, error)) {
	p.mu.Lock()
	done := p.pending[a.Res]
	delete(p.pending, a.Res)
	p.mu.Unlock()
	respond(ack{}, nil)
	p.env.observe(p.sub, PrimGranted, a.Res)
	if done != nil {
		done()
	}
}

// Acquire implements AppPart.
func (p *mwCallbackPart) Acquire(res string, done func()) {
	p.env.observe(p.sub, PrimRequest, res)
	p.mu.Lock()
	p.pending[res] = done
	p.mu.Unlock()
	err := p.request.Call(middleware.Addr(p.sub), ctrlArgs{Sub: p.sub, Res: res}, nil)
	if err != nil {
		panic(fmt.Sprintf("floorcontrol: request_permission from %q: %v", p.sub, err))
	}
}

// Release implements AppPart.
func (p *mwCallbackPart) Release(res string) {
	p.env.observe(p.sub, PrimFree, res)
	err := p.free.Call(middleware.Addr(p.sub), ctrlArgs{Sub: p.sub, Res: res}, nil)
	if err != nil {
		panic(fmt.Sprintf("floorcontrol: free from %q: %v", p.sub, err))
	}
}
