package floorcontrol

import (
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/middleware"
)

// MWCallback is the callback-based middleware solution of Figure 4(a):
// "the controller is a singleton component that has an interface with a
// request_permission operation. ... Eventually, when the resource is to be
// granted to the subscriber, a grant operation of the subscriber's
// interface is invoked by the controller. When the subscriber wants to
// release the resource, a free operation of the controller's interface is
// invoked."
//
// Interaction functionality resident in application parts (Figure 7): the
// subscriber part must expose a grant callback interface and invoke
// request_permission/free; the controller is itself an application part
// centralizing the coordination.
type MWCallback struct{}

var _ Solution = (*MWCallback)(nil)

// Name implements Solution.
func (*MWCallback) Name() string { return "mw-callback" }

// Paradigm implements Solution.
func (*MWCallback) Paradigm() Paradigm { return ParadigmMiddleware }

// Style implements Solution.
func (*MWCallback) Style() Style { return StyleCallback }

// Figure implements Solution.
func (*MWCallback) Figure() string { return "Fig 4(a)" }

// Scattering implements Solution: per subscriber part, 3 interaction
// operations (request_permission invocation, grant callback
// implementation, free invocation); the controller part implements 3
// (request_permission, free, grant invocation logic).
func (*MWCallback) Scattering(n int) Scattering {
	return Scattering{AppPartOps: 3 * n, ControllerOps: 3}
}

// Build implements Solution.
func (s *MWCallback) Build(env *Env) (map[string]AppPart, error) {
	if err := requireRPCPlatform(env, s.Name()); err != nil {
		return nil, err
	}
	ctrl := &callbackController{env: env, q: newResourceQueue(env.Resources)}
	if err := env.Platform.Register("controller", ctrlNode, ctrl); err != nil {
		return nil, fmt.Errorf("floorcontrol: register controller: %w", err)
	}
	parts := make(map[string]AppPart, len(env.Subscribers))
	for _, sub := range env.Subscribers {
		part := &mwCallbackPart{env: env, sub: sub, pending: make(map[string]func())}
		if err := env.Platform.Register(subObjRef(sub), middleware.Addr(sub), part.component()); err != nil {
			return nil, fmt.Errorf("floorcontrol: register subscriber %q: %w", sub, err)
		}
		parts[sub] = part
	}
	return parts, nil
}

// callbackController is the singleton controller component.
type callbackController struct {
	env *Env

	mu sync.Mutex
	q  *resourceQueue
}

var _ middleware.Object = (*callbackController)(nil)

// Dispatch implements middleware.Object.
func (c *callbackController) Dispatch(op string, args codec.Record, reply middleware.Reply) {
	sub, _ := args["subid"].(string)
	res, _ := args[ParamResource].(string)
	switch op {
	case "request_permission":
		c.mu.Lock()
		if !c.q.known(res) {
			c.mu.Unlock()
			reply(nil, fmt.Errorf("unknown resource %q", res))
			return
		}
		granted := c.q.tryAcquire(sub, res)
		if !granted {
			c.q.enqueue(sub, res)
		}
		c.mu.Unlock()
		reply(codec.Record{}, nil) // intention registered
		if granted {
			c.grant(sub, res)
		}
	case "free":
		c.mu.Lock()
		next, ok, err := c.q.release(sub, res)
		c.mu.Unlock()
		if err != nil {
			reply(nil, err)
			return
		}
		reply(codec.Record{}, nil)
		if ok {
			c.grant(next, res)
		}
	default:
		reply(nil, fmt.Errorf("%w: %q", middleware.ErrUnknownOperation, op))
	}
}

// grant invokes the grant operation of the subscriber's callback
// interface.
func (c *callbackController) grant(sub, res string) {
	err := c.env.Platform.Invoke(ctrlNode, subObjRef(sub), "grant",
		codec.Record{ParamResource: res}, nil)
	if err != nil {
		// Unknown subscriber object: deployment error surfaced in tests.
		panic(fmt.Sprintf("floorcontrol: grant to %q: %v", sub, err))
	}
}

// mwCallbackPart is one subscriber's application part. The grant callback
// interface it must expose, and the invocations it must issue, are the
// interaction functionality the paradigm scatters into it.
type mwCallbackPart struct {
	env *Env
	sub string

	mu      sync.Mutex
	pending map[string]func() // resource → completion
}

var _ AppPart = (*mwCallbackPart)(nil)

// component returns the part's middleware-facing callback interface.
func (p *mwCallbackPart) component() middleware.Object {
	return middleware.ObjectFunc(func(op string, args codec.Record, reply middleware.Reply) {
		if op != "grant" {
			reply(nil, fmt.Errorf("%w: %q", middleware.ErrUnknownOperation, op))
			return
		}
		res, _ := args[ParamResource].(string)
		p.mu.Lock()
		done := p.pending[res]
		delete(p.pending, res)
		p.mu.Unlock()
		reply(codec.Record{}, nil)
		p.env.observe(p.sub, PrimGranted, res)
		if done != nil {
			done()
		}
	})
}

// Acquire implements AppPart.
func (p *mwCallbackPart) Acquire(res string, done func()) {
	p.env.observe(p.sub, PrimRequest, res)
	p.mu.Lock()
	p.pending[res] = done
	p.mu.Unlock()
	err := p.env.Platform.Invoke(middleware.Addr(p.sub), "controller", "request_permission",
		codec.Record{"subid": p.sub, ParamResource: res}, nil)
	if err != nil {
		panic(fmt.Sprintf("floorcontrol: request_permission from %q: %v", p.sub, err))
	}
}

// Release implements AppPart.
func (p *mwCallbackPart) Release(res string) {
	p.env.observe(p.sub, PrimFree, res)
	err := p.env.Platform.Invoke(middleware.Addr(p.sub), "controller", "free",
		codec.Record{"subid": p.sub, ParamResource: res}, nil)
	if err != nil {
		panic(fmt.Sprintf("floorcontrol: free from %q: %v", p.sub, err))
	}
}
