package floorcontrol

import (
	"fmt"
	"sync"

	"repro/internal/middleware"
	"repro/internal/svc"
)

// MWCallback is the callback-based middleware solution of Figure 4(a):
// "the controller is a singleton component that has an interface with a
// request_permission operation. ... Eventually, when the resource is to be
// granted to the subscriber, a grant operation of the subscriber's
// interface is invoked by the controller. When the subscriber wants to
// release the resource, a free operation of the controller's interface is
// invoked."
//
// Interaction functionality resident in application parts (Figure 7): the
// subscriber part must expose a grant callback interface and invoke
// request_permission/free; the controller is itself an application part
// centralizing the coordination. All of it programs against typed svc
// ports — the raw platform surface never appears in the solution.
type MWCallback struct {
	ctrl *callbackController // set by Build
}

var _ Solution = (*MWCallback)(nil)
var _ ControllerFailover = (*MWCallback)(nil)

// Name implements Solution.
func (*MWCallback) Name() string { return "mw-callback" }

// Paradigm implements Solution.
func (*MWCallback) Paradigm() Paradigm { return ParadigmMiddleware }

// Style implements Solution.
func (*MWCallback) Style() Style { return StyleCallback }

// Figure implements Solution.
func (*MWCallback) Figure() string { return "Fig 4(a)" }

// Scattering implements Solution: per subscriber part, 3 interaction
// operations (request_permission invocation, grant callback
// implementation, free invocation); the controller part implements 3
// (request_permission, free, grant invocation logic).
func (*MWCallback) Scattering(n int) Scattering {
	return Scattering{AppPartOps: 3 * n, ControllerOps: 3}
}

// ControllerNode implements ControllerFailover.
func (s *MWCallback) ControllerNode() middleware.Addr { return s.ctrl.node() }

// Failover implements ControllerFailover: re-home the controller export
// onto node. The queue state lives in the component, not the node, so it
// survives the move — the paper's centralized coordinator made mobile by
// the platform's live rebinding.
func (s *MWCallback) Failover(node middleware.Addr) error { return s.ctrl.failover(node) }

// Build implements Solution.
func (s *MWCallback) Build(env *Env) (map[string]AppPart, error) {
	b, err := bindService(env, s.Name())
	if err != nil {
		return nil, err
	}
	ctrl := &callbackController{env: env, q: newResourceQueue(env.Resources),
		grants: make(map[string]*svc.Port[grantArgs, ack], len(env.Subscribers)),
		home:   ctrlNode, seen: make(seenSeqs), reqSeq: make(map[string]uint64)}
	if err := ctrl.export(b); err != nil {
		return nil, fmt.Errorf("floorcontrol: register controller: %w", err)
	}
	s.ctrl = ctrl
	// The controller-facing ports carry the caller's node per call, so one
	// shared port per operation serves every subscriber part; only the
	// grant callback ports differ per subscriber (distinct targets).
	request, err := svc.NewPort[ctrlArgs, ack](b, "controller", "request_permission", encCtrlArgs, nil)
	if err != nil {
		return nil, err
	}
	free, err := svc.NewPort[ctrlArgs, ack](b, "controller", "free", encCtrlArgs, nil)
	if err != nil {
		return nil, err
	}
	parts := make(map[string]AppPart, len(env.Subscribers))
	for _, sub := range env.Subscribers {
		part := &mwCallbackPart{env: env, sub: sub, pending: make(map[string]pendingGrant),
			request: request, free: free}
		if err := part.export(b); err != nil {
			return nil, fmt.Errorf("floorcontrol: register subscriber %q: %w", sub, err)
		}
		if ctrl.grants[sub], err = svc.NewPort[grantArgs, ack](b, subObjRef(sub), "grant", encGrantArgs, nil); err != nil {
			return nil, err
		}
		parts[sub] = part
	}
	return parts, nil
}

// callbackController is the singleton controller component, exported as
// typed request_permission/free operations; it grants through one typed
// callback port per subscriber.
type callbackController struct {
	env    *Env
	exp    *svc.Export
	grants map[string]*svc.Port[grantArgs, ack]

	mu   sync.Mutex
	q    *resourceQueue
	home middleware.Addr // current hosting node (moves on failover)
	seen seenSeqs
	// reqSeq remembers the Seq of each subscriber's outstanding request,
	// so a grant issued later (when a waiter is promoted on free) echoes
	// the request it answers.
	reqSeq map[string]uint64
}

// export hosts the controller's typed operations at ctrlNode.
func (c *callbackController) export(b *svc.Binding) error {
	e, err := b.NewExport("controller", ctrlNode)
	if err != nil {
		return err
	}
	if err := svc.HandleOp(e, "request_permission", decCtrlArgs, encAck, c.requestPermission); err != nil {
		return err
	}
	if err := svc.HandleOp(e, "free", decCtrlArgs, encAck, c.free); err != nil {
		return err
	}
	c.exp = e
	return e.Register()
}

// node returns the controller's current hosting node.
func (c *callbackController) node() middleware.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.home
}

// failover re-homes the controller export onto node and routes future
// grants from there.
func (c *callbackController) failover(node middleware.Addr) error {
	if err := c.exp.Rebind(node); err != nil {
		return err
	}
	c.mu.Lock()
	c.home = node
	c.mu.Unlock()
	return nil
}

func (c *callbackController) requestPermission(a ctrlArgs, respond func(ack, error)) {
	c.mu.Lock()
	if !c.q.known(a.Res) {
		c.mu.Unlock()
		respond(ack{}, fmt.Errorf("unknown resource %q", a.Res))
		return
	}
	if c.seen.dup(a.Sub, a.Seq) {
		// At-least-once redelivery: the intention is already registered
		// (the first ack was lost to a crash) and a grant is delivered
		// or in retry. Ack again without touching the queue.
		c.mu.Unlock()
		respond(ack{}, nil)
		return
	}
	c.reqSeq[a.Sub] = a.Seq
	granted := c.q.tryAcquire(a.Sub, a.Res)
	if !granted {
		c.q.enqueue(a.Sub, a.Res)
	}
	c.mu.Unlock()
	respond(ack{}, nil) // intention registered
	if granted {
		c.grant(a.Sub, a.Res, a.Seq)
	}
}

func (c *callbackController) free(a ctrlArgs, respond func(ack, error)) {
	c.mu.Lock()
	if c.seen.dup(a.Sub, a.Seq) {
		// Redelivered free: already released (and possibly re-granted).
		c.mu.Unlock()
		respond(ack{}, nil)
		return
	}
	next, ok, err := c.q.release(a.Sub, a.Res)
	var nextSeq uint64
	if ok {
		nextSeq = c.reqSeq[next]
	}
	c.mu.Unlock()
	if err != nil {
		respond(ack{}, err)
		return
	}
	respond(ack{}, nil)
	if ok {
		c.grant(next, a.Res, nextSeq)
	}
}

// grant invokes the grant operation of the subscriber's callback
// interface through the typed port; seq echoes the request being
// answered. Fault-free, a submission failure is a deployment bug and
// panics. Under churn the grant is the only copy of the decision, so a
// transient call failure — the subscriber crashed with the grant
// pending, the controller's own node down (a crashed node cannot
// transmit, so the platform fails its invokes fast), or the ack lost —
// re-arms it after a poll interval. Redelivery is safe because the
// subscriber dedups grants by Seq when the first copy did land.
func (c *callbackController) grant(sub, res string, seq uint64) {
	c.mu.Lock()
	home := c.home
	c.mu.Unlock()
	var cont func(ack, error)
	if c.env.Churn {
		cont = func(_ ack, err error) {
			switch {
			case err == nil:
			case retryable(err):
				c.env.Time.ScheduleFunc(c.env.PollInterval, func() { c.grant(sub, res, seq) })
			default:
				panic(fmt.Sprintf("floorcontrol: grant to %q: %v", sub, err))
			}
		}
	}
	if err := c.grants[sub].Call(home, grantArgs{Res: res, Seq: seq}, cont); err != nil {
		panic(fmt.Sprintf("floorcontrol: grant to %q: %v", sub, err))
	}
}

// pendingGrant is one outstanding acquire at a subscriber part: the
// completion to run and the Seq of the request it belongs to (zero
// fault-free), so duplicate grants from churn retries can be discarded.
type pendingGrant struct {
	done func()
	seq  uint64
}

// mwCallbackPart is one subscriber's application part. The grant callback
// interface it must expose, and the ports it must invoke, are the
// interaction functionality the paradigm scatters into it.
type mwCallbackPart struct {
	env     *Env
	sub     string
	request *svc.Port[ctrlArgs, ack]
	free    *svc.Port[ctrlArgs, ack]

	mu      sync.Mutex
	pending map[string]pendingGrant // resource → outstanding acquire
	seq     uint64                  // submission counter (churn only)
}

var _ AppPart = (*mwCallbackPart)(nil)

// export hosts the part's grant callback interface.
func (p *mwCallbackPart) export(b *svc.Binding) error {
	e, err := b.NewExport(subObjRef(p.sub), middleware.Addr(p.sub))
	if err != nil {
		return err
	}
	if err := svc.HandleOp(e, "grant", decGrantArgs, encAck, p.onGrant); err != nil {
		return err
	}
	return e.Register()
}

func (p *mwCallbackPart) onGrant(a grantArgs, respond func(ack, error)) {
	p.mu.Lock()
	pend, ok := p.pending[a.Res]
	match := ok && pend.seq == a.Seq
	if match {
		delete(p.pending, a.Res)
	}
	p.mu.Unlock()
	respond(ack{}, nil)
	if p.env.Churn && !match {
		// Duplicate grant: a churn retry whose first copy landed before
		// this part crashed (the ack was lost). The grant was already
		// observed and acted on — possibly even freed — so this copy
		// must not touch the trace or wake the driver.
		return
	}
	p.env.observe(p.sub, PrimGranted, a.Res)
	if pend.done != nil {
		pend.done()
	}
}

// Acquire implements AppPart.
func (p *mwCallbackPart) Acquire(res string, done func()) {
	p.env.observe(p.sub, PrimRequest, res)
	args := ctrlArgs{Sub: p.sub, Res: res}
	p.mu.Lock()
	if p.env.Churn {
		p.seq++
		args.Seq = p.seq
	}
	p.pending[res] = pendingGrant{done: done, seq: args.Seq}
	p.mu.Unlock()
	sendCtrl(p.env, p.request, middleware.Addr(p.sub), args, "request_permission")
}

// Release implements AppPart.
func (p *mwCallbackPart) Release(res string) {
	p.env.observe(p.sub, PrimFree, res)
	args := ctrlArgs{Sub: p.sub, Res: res}
	if p.env.Churn {
		p.mu.Lock()
		p.seq++
		args.Seq = p.seq
		p.mu.Unlock()
	}
	sendCtrl(p.env, p.free, middleware.Addr(p.sub), args, "free")
}
