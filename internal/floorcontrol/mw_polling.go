package floorcontrol

import (
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/middleware"
)

// MWPolling is the polling-based middleware solution of Figure 4(b): "the
// subscribers poll the controller for a certain resource by invoking the
// operation is_available, which returns the Boolean value true when the
// resource is available, and false otherwise. When the subscriber wants to
// release the resource, the operation free of the controller's interface
// is invoked."
//
// is_available is implemented test-and-set: a true reply simultaneously
// assigns the resource to the caller, otherwise two pollers could both
// read "available" and violate mutual exclusion.
//
// This is the solution §5 criticizes most directly: "the subscriber
// application parts must continuously poll for a resource, in contrast
// with the protocol solution (b), where ... the service is responsible for
// 'polling'." The polling loop lives *inside the application part* here.
type MWPolling struct{}

var _ Solution = (*MWPolling)(nil)

// Name implements Solution.
func (*MWPolling) Name() string { return "mw-polling" }

// Paradigm implements Solution.
func (*MWPolling) Paradigm() Paradigm { return ParadigmMiddleware }

// Style implements Solution.
func (*MWPolling) Style() Style { return StylePolling }

// Figure implements Solution.
func (*MWPolling) Figure() string { return "Fig 4(b)" }

// Scattering implements Solution: per subscriber part, 4 interaction
// operations (polling loop, is_available invocation, reply inspection,
// free invocation); the controller implements 2 (is_available, free).
func (*MWPolling) Scattering(n int) Scattering {
	return Scattering{AppPartOps: 4 * n, ControllerOps: 2}
}

// Build implements Solution.
func (s *MWPolling) Build(env *Env) (map[string]AppPart, error) {
	if err := requireRPCPlatform(env, s.Name()); err != nil {
		return nil, err
	}
	ctrl := &pollingController{q: newResourceQueue(env.Resources)}
	if err := env.Platform.Register("controller", ctrlNode, ctrl); err != nil {
		return nil, fmt.Errorf("floorcontrol: register controller: %w", err)
	}
	parts := make(map[string]AppPart, len(env.Subscribers))
	for _, sub := range env.Subscribers {
		parts[sub] = &mwPollingPart{env: env, sub: sub}
	}
	return parts, nil
}

// pollingController answers availability probes with test-and-set
// semantics. It keeps no wait queues: waiting is the pollers' problem,
// which is precisely the structural weakness the paper highlights.
type pollingController struct {
	mu sync.Mutex
	q  *resourceQueue
}

var _ middleware.Object = (*pollingController)(nil)

// Dispatch implements middleware.Object.
func (c *pollingController) Dispatch(op string, args codec.Record, reply middleware.Reply) {
	sub, _ := args["subid"].(string)
	res, _ := args[ParamResource].(string)
	switch op {
	case "is_available":
		c.mu.Lock()
		if !c.q.known(res) {
			c.mu.Unlock()
			reply(nil, fmt.Errorf("unknown resource %q", res))
			return
		}
		got := c.q.tryAcquire(sub, res)
		c.mu.Unlock()
		reply(codec.Record{"available": got}, nil)
	case "free":
		c.mu.Lock()
		_, _, err := c.q.release(sub, res)
		c.mu.Unlock()
		if err != nil {
			reply(nil, err)
			return
		}
		reply(codec.Record{}, nil)
	default:
		reply(nil, fmt.Errorf("%w: %q", middleware.ErrUnknownOperation, op))
	}
}

// mwPollingPart is one subscriber's application part, with the polling
// loop inside it.
type mwPollingPart struct {
	env *Env
	sub string
}

var _ AppPart = (*mwPollingPart)(nil)

// Acquire implements AppPart: poll until is_available returns true.
func (p *mwPollingPart) Acquire(res string, done func()) {
	p.env.observe(p.sub, PrimRequest, res)
	p.poll(res, done)
}

func (p *mwPollingPart) poll(res string, done func()) {
	err := p.env.Platform.Invoke(middleware.Addr(p.sub), "controller", "is_available",
		codec.Record{"subid": p.sub, ParamResource: res},
		func(result codec.Record, err error) {
			if err != nil {
				panic(fmt.Sprintf("floorcontrol: is_available from %q: %v", p.sub, err))
			}
			if avail, _ := result["available"].(bool); avail {
				p.env.observe(p.sub, PrimGranted, res)
				done()
				return
			}
			p.env.Kernel.Schedule(p.env.PollInterval, func() { p.poll(res, done) })
		})
	if err != nil {
		panic(fmt.Sprintf("floorcontrol: is_available invoke from %q: %v", p.sub, err))
	}
}

// Release implements AppPart.
func (p *mwPollingPart) Release(res string) {
	p.env.observe(p.sub, PrimFree, res)
	err := p.env.Platform.Invoke(middleware.Addr(p.sub), "controller", "free",
		codec.Record{"subid": p.sub, ParamResource: res}, nil)
	if err != nil {
		panic(fmt.Sprintf("floorcontrol: free from %q: %v", p.sub, err))
	}
}
