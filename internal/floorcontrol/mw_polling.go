package floorcontrol

import (
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/middleware"
	"repro/internal/svc"
)

// MWPolling is the polling-based middleware solution of Figure 4(b): "the
// subscribers poll the controller for a certain resource by invoking the
// operation is_available, which returns the Boolean value true when the
// resource is available, and false otherwise. When the subscriber wants to
// release the resource, the operation free of the controller's interface
// is invoked."
//
// is_available is implemented test-and-set: a true reply simultaneously
// assigns the resource to the caller, otherwise two pollers could both
// read "available" and violate mutual exclusion.
//
// This is the solution §5 criticizes most directly: "the subscriber
// application parts must continuously poll for a resource, in contrast
// with the protocol solution (b), where ... the service is responsible for
// 'polling'." The polling loop lives *inside the application part* here,
// driving a typed is_available port.
type MWPolling struct {
	ctrl *pollingController // set by Build
}

var _ Solution = (*MWPolling)(nil)
var _ ControllerFailover = (*MWPolling)(nil)

// Name implements Solution.
func (*MWPolling) Name() string { return "mw-polling" }

// Paradigm implements Solution.
func (*MWPolling) Paradigm() Paradigm { return ParadigmMiddleware }

// Style implements Solution.
func (*MWPolling) Style() Style { return StylePolling }

// Figure implements Solution.
func (*MWPolling) Figure() string { return "Fig 4(b)" }

// Scattering implements Solution: per subscriber part, 4 interaction
// operations (polling loop, is_available invocation, reply inspection,
// free invocation); the controller implements 2 (is_available, free).
func (*MWPolling) Scattering(n int) Scattering {
	return Scattering{AppPartOps: 4 * n, ControllerOps: 2}
}

// ControllerNode implements ControllerFailover.
func (s *MWPolling) ControllerNode() middleware.Addr { return s.ctrl.node() }

// Failover implements ControllerFailover: re-home the controller export
// onto node. The holder table moves with the component, so grants held
// before the crash stay valid.
func (s *MWPolling) Failover(node middleware.Addr) error { return s.ctrl.failover(node) }

// availReply is the typed reply of the is_available probe.
type availReply struct {
	Available bool
}

func encAvailReply(a availReply) codec.Record {
	return codec.Record{"available": a.Available}
}

func decAvailReply(r codec.Record) (availReply, error) {
	avail, _ := r["available"].(bool)
	return availReply{Available: avail}, nil
}

// Build implements Solution.
func (s *MWPolling) Build(env *Env) (map[string]AppPart, error) {
	b, err := bindService(env, s.Name())
	if err != nil {
		return nil, err
	}
	ctrl := &pollingController{q: newResourceQueue(env.Resources), home: ctrlNode,
		seen: make(seenSeqs), holderSeq: make(map[string]uint64, len(env.Resources))}
	if err := ctrl.export(b); err != nil {
		return nil, fmt.Errorf("floorcontrol: register controller: %w", err)
	}
	s.ctrl = ctrl
	// One shared port per controller operation: Call carries the polling
	// subscriber's node, so the parts need no private ports.
	isAvailable, err := svc.NewPort(b, "controller", "is_available", encCtrlArgs, decAvailReply)
	if err != nil {
		return nil, err
	}
	free, err := svc.NewPort[ctrlArgs, ack](b, "controller", "free", encCtrlArgs, nil)
	if err != nil {
		return nil, err
	}
	parts := make(map[string]AppPart, len(env.Subscribers))
	for _, sub := range env.Subscribers {
		parts[sub] = &mwPollingPart{env: env, sub: sub, isAvailable: isAvailable, free: free}
	}
	return parts, nil
}

// pollingController answers availability probes with test-and-set
// semantics. It keeps no wait queues: waiting is the pollers' problem,
// which is precisely the structural weakness the paper highlights.
type pollingController struct {
	exp *svc.Export

	mu   sync.Mutex
	q    *resourceQueue
	home middleware.Addr
	seen seenSeqs
	// holderSeq remembers the Seq of the probe that acquired each
	// resource. A redelivered probe of that same acquire (its true reply
	// was lost to a crash) is answered true again; a probe of a *new*
	// acquire that finds the subscriber still registered as holder — its
	// previous free is still in redelivery limbo — reads unavailable,
	// exactly as if another subscriber held it.
	holderSeq map[string]uint64
}

// export hosts the controller's typed operations at ctrlNode.
func (c *pollingController) export(b *svc.Binding) error {
	e, err := b.NewExport("controller", ctrlNode)
	if err != nil {
		return err
	}
	if err := svc.HandleOp(e, "is_available", decCtrlArgs, encAvailReply, c.isAvailable); err != nil {
		return err
	}
	if err := svc.HandleOp(e, "free", decCtrlArgs, encAck, c.free); err != nil {
		return err
	}
	c.exp = e
	return e.Register()
}

// node returns the controller's current hosting node.
func (c *pollingController) node() middleware.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.home
}

// failover re-homes the controller export onto node.
func (c *pollingController) failover(node middleware.Addr) error {
	if err := c.exp.Rebind(node); err != nil {
		return err
	}
	c.mu.Lock()
	c.home = node
	c.mu.Unlock()
	return nil
}

func (c *pollingController) isAvailable(a ctrlArgs, respond func(availReply, error)) {
	c.mu.Lock()
	if !c.q.known(a.Res) {
		c.mu.Unlock()
		respond(availReply{}, fmt.Errorf("unknown resource %q", a.Res))
		return
	}
	if a.Seq != 0 && c.q.holder[a.Res] == a.Sub && c.holderSeq[a.Res] == a.Seq {
		// Redelivered probe of the test-and-set that already acquired.
		c.mu.Unlock()
		respond(availReply{Available: true}, nil)
		return
	}
	got := c.q.tryAcquire(a.Sub, a.Res)
	if got {
		c.holderSeq[a.Res] = a.Seq
	}
	c.mu.Unlock()
	respond(availReply{Available: got}, nil)
}

func (c *pollingController) free(a ctrlArgs, respond func(ack, error)) {
	c.mu.Lock()
	if c.seen.dup(a.Sub, a.Seq) {
		// Redelivered free: already released.
		c.mu.Unlock()
		respond(ack{}, nil)
		return
	}
	_, _, err := c.q.release(a.Sub, a.Res)
	c.mu.Unlock()
	if err != nil {
		respond(ack{}, err)
		return
	}
	respond(ack{}, nil)
}

// mwPollingPart is one subscriber's application part, with the polling
// loop inside it.
type mwPollingPart struct {
	env         *Env
	sub         string
	isAvailable *svc.Port[ctrlArgs, availReply]
	free        *svc.Port[ctrlArgs, ack]

	mu  sync.Mutex
	seq uint64 // submission counter (churn only)
}

var _ AppPart = (*mwPollingPart)(nil)

// Acquire implements AppPart: poll until is_available returns true.
func (p *mwPollingPart) Acquire(res string, done func()) {
	p.env.observe(p.sub, PrimRequest, res)
	var seq uint64
	if p.env.Churn {
		p.mu.Lock()
		p.seq++
		seq = p.seq
		p.mu.Unlock()
	}
	p.poll(res, done, seq)
}

// poll drives one logical acquire; every probe of the loop carries the
// acquire's Seq. Under churn a transient probe failure — controller down,
// or the probe interrupted by a crash — re-polls instead of panicking:
// the test-and-set is idempotent per acquire because the controller keys
// the holder by Seq, so a lost true reply is recovered by the next probe.
func (p *mwPollingPart) poll(res string, done func(), seq uint64) {
	err := p.isAvailable.Call(middleware.Addr(p.sub), ctrlArgs{Sub: p.sub, Res: res, Seq: seq},
		func(result availReply, err error) {
			if err != nil {
				if p.env.Churn && retryable(err) {
					p.env.Time.ScheduleFunc(p.env.PollInterval, func() { p.poll(res, done, seq) })
					return
				}
				panic(fmt.Sprintf("floorcontrol: is_available from %q: %v", p.sub, err))
			}
			if result.Available {
				p.env.observe(p.sub, PrimGranted, res)
				done()
				return
			}
			p.env.Time.ScheduleFunc(p.env.PollInterval, func() { p.poll(res, done, seq) })
		})
	if err != nil {
		panic(fmt.Sprintf("floorcontrol: is_available invoke from %q: %v", p.sub, err))
	}
}

// Release implements AppPart.
func (p *mwPollingPart) Release(res string) {
	p.env.observe(p.sub, PrimFree, res)
	args := ctrlArgs{Sub: p.sub, Res: res}
	if p.env.Churn {
		p.mu.Lock()
		p.seq++
		args.Seq = p.seq
		p.mu.Unlock()
	}
	sendCtrl(p.env, p.free, middleware.Addr(p.sub), args, "free")
}
