package floorcontrol

import (
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/middleware"
	"repro/internal/svc"
)

// MWPolling is the polling-based middleware solution of Figure 4(b): "the
// subscribers poll the controller for a certain resource by invoking the
// operation is_available, which returns the Boolean value true when the
// resource is available, and false otherwise. When the subscriber wants to
// release the resource, the operation free of the controller's interface
// is invoked."
//
// is_available is implemented test-and-set: a true reply simultaneously
// assigns the resource to the caller, otherwise two pollers could both
// read "available" and violate mutual exclusion.
//
// This is the solution §5 criticizes most directly: "the subscriber
// application parts must continuously poll for a resource, in contrast
// with the protocol solution (b), where ... the service is responsible for
// 'polling'." The polling loop lives *inside the application part* here,
// driving a typed is_available port.
type MWPolling struct{}

var _ Solution = (*MWPolling)(nil)

// Name implements Solution.
func (*MWPolling) Name() string { return "mw-polling" }

// Paradigm implements Solution.
func (*MWPolling) Paradigm() Paradigm { return ParadigmMiddleware }

// Style implements Solution.
func (*MWPolling) Style() Style { return StylePolling }

// Figure implements Solution.
func (*MWPolling) Figure() string { return "Fig 4(b)" }

// Scattering implements Solution: per subscriber part, 4 interaction
// operations (polling loop, is_available invocation, reply inspection,
// free invocation); the controller implements 2 (is_available, free).
func (*MWPolling) Scattering(n int) Scattering {
	return Scattering{AppPartOps: 4 * n, ControllerOps: 2}
}

// availReply is the typed reply of the is_available probe.
type availReply struct {
	Available bool
}

func encAvailReply(a availReply) codec.Record {
	return codec.Record{"available": a.Available}
}

func decAvailReply(r codec.Record) (availReply, error) {
	avail, _ := r["available"].(bool)
	return availReply{Available: avail}, nil
}

// Build implements Solution.
func (s *MWPolling) Build(env *Env) (map[string]AppPart, error) {
	b, err := bindService(env, s.Name())
	if err != nil {
		return nil, err
	}
	ctrl := &pollingController{q: newResourceQueue(env.Resources)}
	if err := ctrl.export(b); err != nil {
		return nil, fmt.Errorf("floorcontrol: register controller: %w", err)
	}
	// One shared port per controller operation: Call carries the polling
	// subscriber's node, so the parts need no private ports.
	isAvailable, err := svc.NewPort(b, "controller", "is_available", encCtrlArgs, decAvailReply)
	if err != nil {
		return nil, err
	}
	free, err := svc.NewPort[ctrlArgs, ack](b, "controller", "free", encCtrlArgs, nil)
	if err != nil {
		return nil, err
	}
	parts := make(map[string]AppPart, len(env.Subscribers))
	for _, sub := range env.Subscribers {
		parts[sub] = &mwPollingPart{env: env, sub: sub, isAvailable: isAvailable, free: free}
	}
	return parts, nil
}

// pollingController answers availability probes with test-and-set
// semantics. It keeps no wait queues: waiting is the pollers' problem,
// which is precisely the structural weakness the paper highlights.
type pollingController struct {
	mu sync.Mutex
	q  *resourceQueue
}

// export hosts the controller's typed operations at ctrlNode.
func (c *pollingController) export(b *svc.Binding) error {
	e, err := b.NewExport("controller", ctrlNode)
	if err != nil {
		return err
	}
	if err := svc.HandleOp(e, "is_available", decCtrlArgs, encAvailReply, c.isAvailable); err != nil {
		return err
	}
	if err := svc.HandleOp(e, "free", decCtrlArgs, encAck, c.free); err != nil {
		return err
	}
	return e.Register()
}

func (c *pollingController) isAvailable(a ctrlArgs, respond func(availReply, error)) {
	c.mu.Lock()
	if !c.q.known(a.Res) {
		c.mu.Unlock()
		respond(availReply{}, fmt.Errorf("unknown resource %q", a.Res))
		return
	}
	got := c.q.tryAcquire(a.Sub, a.Res)
	c.mu.Unlock()
	respond(availReply{Available: got}, nil)
}

func (c *pollingController) free(a ctrlArgs, respond func(ack, error)) {
	c.mu.Lock()
	_, _, err := c.q.release(a.Sub, a.Res)
	c.mu.Unlock()
	if err != nil {
		respond(ack{}, err)
		return
	}
	respond(ack{}, nil)
}

// mwPollingPart is one subscriber's application part, with the polling
// loop inside it.
type mwPollingPart struct {
	env         *Env
	sub         string
	isAvailable *svc.Port[ctrlArgs, availReply]
	free        *svc.Port[ctrlArgs, ack]
}

var _ AppPart = (*mwPollingPart)(nil)

// Acquire implements AppPart: poll until is_available returns true.
func (p *mwPollingPart) Acquire(res string, done func()) {
	p.env.observe(p.sub, PrimRequest, res)
	p.poll(res, done)
}

func (p *mwPollingPart) poll(res string, done func()) {
	err := p.isAvailable.Call(middleware.Addr(p.sub), ctrlArgs{Sub: p.sub, Res: res},
		func(result availReply, err error) {
			if err != nil {
				panic(fmt.Sprintf("floorcontrol: is_available from %q: %v", p.sub, err))
			}
			if result.Available {
				p.env.observe(p.sub, PrimGranted, res)
				done()
				return
			}
			p.env.Time.ScheduleFunc(p.env.PollInterval, func() { p.poll(res, done) })
		})
	if err != nil {
		panic(fmt.Sprintf("floorcontrol: is_available invoke from %q: %v", p.sub, err))
	}
}

// Release implements AppPart.
func (p *mwPollingPart) Release(res string) {
	p.env.observe(p.sub, PrimFree, res)
	err := p.free.Call(middleware.Addr(p.sub), ctrlArgs{Sub: p.sub, Res: res}, nil)
	if err != nil {
		panic(fmt.Sprintf("floorcontrol: free from %q: %v", p.sub, err))
	}
}
