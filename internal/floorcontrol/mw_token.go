package floorcontrol

import (
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/middleware"
	"repro/internal/svc"
)

// MWToken is the token-based (symmetric) middleware solution of Figure
// 4(c): "a list with the set of available resources circulates among the
// subscribers. Each subscriber examines the list ..., removes the
// identifier of the resource desired and forwards the list invoking an
// operation in the interface of the following subscriber. When a
// subscriber wants to release a resource, it inserts the resource
// identifier to be released in the list." The subscriber set is known a
// priori (no ring management, per the paper's simplification).
//
// Every subscriber part exposes a typed pass(set<ResourceId>) operation
// and drives a pass port to its ring successor — the token manipulation
// is the interaction functionality scattered across all application
// parts.
type MWToken struct{}

var _ Solution = (*MWToken)(nil)

// Name implements Solution.
func (*MWToken) Name() string { return "mw-token" }

// Paradigm implements Solution.
func (*MWToken) Paradigm() Paradigm { return ParadigmMiddleware }

// Style implements Solution.
func (*MWToken) Style() Style { return StyleToken }

// Figure implements Solution.
func (*MWToken) Figure() string { return "Fig 4(c)" }

// Scattering implements Solution: per subscriber part, 3 interaction
// operations (pass implementation, token examination/manipulation,
// forward invocation). There is no controller.
func (*MWToken) Scattering(n int) Scattering {
	return Scattering{AppPartOps: 3 * n}
}

// tokenArgs is the typed circulating token: the availability list.
type tokenArgs struct {
	Available []string
	// Gen is the token's hop generation under churn: it increments on
	// every forward, so each part sees strictly increasing generations
	// and can discard an at-least-once redelivered pass (a churn retry
	// whose first copy landed) — the one failure that would fork the
	// token into two. Zero fault-free and then kept off the wire, so
	// fault-free encodings stay byte-identical to the pre-churn token.
	Gen uint64
}

func encTokenArgs(t tokenArgs) codec.Record {
	r := codec.Record{"available": codec.StringList(t.Available)}
	if t.Gen != 0 {
		r["gen"] = int64(t.Gen)
	}
	return r
}

func decTokenArgs(r codec.Record) (tokenArgs, error) {
	avail, err := codec.ToStringSlice(r["available"])
	if err != nil {
		return tokenArgs{}, fmt.Errorf("malformed token: %w", err)
	}
	gen, _ := r["gen"].(int64)
	return tokenArgs{Available: avail, Gen: uint64(gen)}, nil
}

// Build implements Solution. The token starts at the first subscriber
// carrying every resource.
func (s *MWToken) Build(env *Env) (map[string]AppPart, error) {
	b, err := bindService(env, s.Name())
	if err != nil {
		return nil, err
	}
	if len(env.Subscribers) == 0 {
		return nil, fmt.Errorf("floorcontrol: %s requires at least one subscriber", s.Name())
	}
	parts := make(map[string]AppPart, len(env.Subscribers))
	ring := make([]*mwTokenPart, len(env.Subscribers))
	for i, sub := range env.Subscribers {
		part := &mwTokenPart{env: env, sub: sub}
		if err := part.export(b); err != nil {
			return nil, fmt.Errorf("floorcontrol: register subscriber %q: %w", sub, err)
		}
		parts[sub] = part
		ring[i] = part
	}
	// The pass ports close the ring once every object is registered.
	for i, part := range ring {
		next := env.Subscribers[(i+1)%len(env.Subscribers)]
		if part.pass, err = svc.NewPort[tokenArgs, ack](b, subObjRef(next), "pass", encTokenArgs, nil); err != nil {
			return nil, err
		}
		part.next = next
	}
	// Inject the initial token at the first subscriber. Under churn the
	// token carries generation 1 from the start so every hop is dedupable.
	initial := append([]string(nil), env.Resources...)
	var startGen uint64
	if env.Churn {
		startGen = 1
	}
	env.Time.ScheduleFunc(0, func() { ring[0].onToken(initial, startGen) })
	return parts, nil
}

// mwTokenPart is one subscriber's application part in the symmetric
// solution.
type mwTokenPart struct {
	env  *Env
	sub  string
	next string
	pass *svc.Port[tokenArgs, ack]

	mu        sync.Mutex
	wantRes   string
	wantDone  func()
	toRelease []string
	seenGen   uint64 // highest token generation accepted (churn only)
}

var _ AppPart = (*mwTokenPart)(nil)

// export exposes the pass operation to the previous subscriber in the
// ring.
func (p *mwTokenPart) export(b *svc.Binding) error {
	e, err := b.NewExport(subObjRef(p.sub), middleware.Addr(p.sub))
	if err != nil {
		return err
	}
	if err := svc.HandleOp(e, "pass", decTokenArgs, encAck, p.onPass); err != nil {
		return err
	}
	return e.Register()
}

func (p *mwTokenPart) onPass(t tokenArgs, respond func(ack, error)) {
	if t.Gen != 0 {
		p.mu.Lock()
		dup := t.Gen <= p.seenGen
		if !dup {
			p.seenGen = t.Gen
		}
		p.mu.Unlock()
		if dup {
			// At-least-once redelivery of a pass whose first copy landed:
			// the token has moved on. Acknowledging without acting keeps
			// exactly one token alive on the ring.
			respond(ack{}, nil)
			return
		}
	}
	respond(ack{}, nil)
	p.onToken(t.Available, t.Gen)
}

// onToken examines the circulating availability list, takes a wanted
// resource, inserts releases, and forwards the token after the hop delay.
// gen is the generation this part received the token at (zero fault-free);
// the forwarded token carries gen+1.
func (p *mwTokenPart) onToken(avail []string, gen uint64) {
	p.mu.Lock()
	// Insert releases accumulated since the last visit.
	avail = append(avail, p.toRelease...)
	p.toRelease = nil
	// Take the wanted resource if present.
	var granted func()
	var grantedRes string
	if p.wantRes != "" {
		for i, r := range avail {
			if r == p.wantRes {
				avail = append(avail[:i], avail[i+1:]...)
				granted = p.wantDone
				grantedRes = p.wantRes
				p.wantRes, p.wantDone = "", nil
				break
			}
		}
	}
	p.mu.Unlock()
	if granted != nil {
		p.env.observe(p.sub, PrimGranted, grantedRes)
		granted()
	}
	forward := append([]string(nil), avail...)
	nextGen := gen
	if gen != 0 {
		nextGen = gen + 1
	}
	p.env.Time.ScheduleFunc(p.env.TokenHopDelay, func() { p.forward(forward, nextGen) })
}

// forward passes the token to the ring successor. Fault-free, a
// submission failure is a deployment bug and panics. Under churn the
// token is the single carrier of liveness, so a transient pass failure —
// successor down, this part's own node down (a crashed node cannot
// transmit, so the platform fails its invokes fast), or the pass
// interrupted by a crash — is retried with the same generation after a
// hop delay; the successor's generation dedup makes redelivery safe when
// the first copy did land.
func (p *mwTokenPart) forward(avail []string, gen uint64) {
	var cont func(ack, error)
	if p.env.Churn {
		cont = func(_ ack, err error) {
			switch {
			case err == nil:
			case retryable(err):
				p.env.Time.ScheduleFunc(p.env.TokenHopDelay, func() { p.forward(avail, gen) })
			default:
				panic(fmt.Sprintf("floorcontrol: pass from %q to %q: %v", p.sub, p.next, err))
			}
		}
	}
	if err := p.pass.Call(middleware.Addr(p.sub), tokenArgs{Available: avail, Gen: gen}, cont); err != nil {
		panic(fmt.Sprintf("floorcontrol: pass from %q to %q: %v", p.sub, p.next, err))
	}
}

// Acquire implements AppPart: registers interest; the token visit grants.
func (p *mwTokenPart) Acquire(res string, done func()) {
	p.env.observe(p.sub, PrimRequest, res)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wantRes != "" {
		panic(fmt.Sprintf("floorcontrol: %q has outstanding acquire of %q", p.sub, p.wantRes))
	}
	p.wantRes, p.wantDone = res, done
}

// Release implements AppPart: the identifier re-enters the list at the
// next token visit.
func (p *mwTokenPart) Release(res string) {
	p.env.observe(p.sub, PrimFree, res)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.toRelease = append(p.toRelease, res)
}
