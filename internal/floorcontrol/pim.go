package floorcontrol

import (
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/mda"
	"repro/internal/middleware"
)

// ParadigmMDA marks solutions produced by the model-driven trajectory —
// the paper's §6 "combined use of the paradigms": service logic designed
// protocol-style behind the service boundary, deployed on a reusable
// middleware platform.
const ParadigmMDA Paradigm = "mda"

// PIM returns the platform-independent service design of the floor-control
// service: the Figure 11 artifact. The service logic is callback-style
// (controller + per-SAP agents) written against the abstract async-message
// concept; the abstract platform requires exactly that concept, so the
// Figure 10 trajectory can realize it on all four concrete platforms —
// directly on CORBA-like/JMS-like, recursively (Figure 12) on
// RMI-like (async-over-sync) and MQ-like (async-over-queue).
func PIM(resources []string) *mda.PIM {
	resources = append([]string(nil), resources...)
	return &mda.PIM{
		Name:    "floor-control-pim",
		Service: Spec(),
		Abstract: mda.AbstractPlatform{
			Name:     "directed-messaging",
			Requires: []mda.Concept{mda.ConceptAsyncMessage},
		},
		Build: func(plan mda.Plan) (*mda.Logic, error) {
			if len(plan.SAPs) == 0 {
				return nil, fmt.Errorf("floorcontrol: PIM needs at least one SAP")
			}
			logic := &mda.Logic{
				Components: make(map[mda.ComponentID]mda.Component),
				Placement:  make(map[mda.ComponentID]middleware.Addr),
				SAPBinding: make(map[core.SAP]mda.ComponentID),
			}
			const controller = mda.ComponentID("controller")
			logic.Components[controller] = &pimController{q: newResourceQueue(resources)}
			logic.Placement[controller] = ctrlNode
			for _, sap := range plan.SAPs {
				id := mda.ComponentID("agent:" + sap.ID)
				logic.Components[id] = &pimAgent{controller: controller}
				logic.Placement[id] = middleware.Addr(sap.ID)
				logic.SAPBinding[sap] = id
			}
			return logic, nil
		},
	}
}

// pimController is the platform-independent coordinator logic: the same
// coordination as the callback protocol entity, expressed over abstract
// directed messages instead of PDUs.
type pimController struct {
	ctx *mda.LogicContext

	mu sync.Mutex
	q  *resourceQueue
}

var _ mda.Component = (*pimController)(nil)

// Start implements mda.Component.
func (c *pimController) Start(ctx *mda.LogicContext) error {
	c.ctx = ctx
	return nil
}

// FromUser implements mda.Component; the controller serves no SAP.
func (c *pimController) FromUser(primitive string, _ codec.Record) error {
	return fmt.Errorf("floorcontrol: controller logic has no service user (got %q)", primitive)
}

// OnMessage implements mda.Component.
func (c *pimController) OnMessage(from mda.ComponentID, msg codec.Message) error {
	res, _ := msg.Fields[ParamResource].(string)
	switch msg.Name {
	case "request":
		c.mu.Lock()
		if !c.q.known(res) {
			c.mu.Unlock()
			return fmt.Errorf("floorcontrol: request for unknown resource %q", res)
		}
		granted := c.q.tryAcquire(string(from), res)
		if !granted {
			c.q.enqueue(string(from), res)
		}
		c.mu.Unlock()
		if granted {
			return c.grant(from, res)
		}
		return nil
	case "free":
		c.mu.Lock()
		next, ok, err := c.q.release(string(from), res)
		c.mu.Unlock()
		if err != nil {
			return err
		}
		if ok {
			return c.grant(mda.ComponentID(next), res)
		}
		return nil
	default:
		return fmt.Errorf("floorcontrol: unexpected message %q at controller logic", msg.Name)
	}
}

func (c *pimController) grant(to mda.ComponentID, res string) error {
	return c.ctx.Send(to, codec.NewMessage("granted", codec.Record{ParamResource: res}))
}

// pimAgent is the per-SAP service logic: it maps service primitives to
// abstract messages and back.
type pimAgent struct {
	controller mda.ComponentID
	ctx        *mda.LogicContext
}

var _ mda.Component = (*pimAgent)(nil)

// Start implements mda.Component.
func (a *pimAgent) Start(ctx *mda.LogicContext) error {
	a.ctx = ctx
	return nil
}

// FromUser implements mda.Component.
func (a *pimAgent) FromUser(primitive string, params codec.Record) error {
	res, _ := params[ParamResource].(string)
	switch primitive {
	case PrimRequest:
		return a.ctx.Send(a.controller, codec.NewMessage("request", codec.Record{ParamResource: res}))
	case PrimFree:
		return a.ctx.Send(a.controller, codec.NewMessage("free", codec.Record{ParamResource: res}))
	default:
		return fmt.Errorf("floorcontrol: unexpected primitive %q", primitive)
	}
}

// OnMessage implements mda.Component.
func (a *pimAgent) OnMessage(_ mda.ComponentID, msg codec.Message) error {
	if msg.Name != "granted" {
		return fmt.Errorf("floorcontrol: unexpected message %q at agent logic", msg.Name)
	}
	res, _ := msg.Fields[ParamResource].(string)
	a.ctx.DeliverToUser(PrimGranted, codec.Record{ParamResource: res})
	return nil
}

// MDASolution is a floor-control implementation produced by the MDA
// trajectory: the PIM deployed on one concrete platform. It plugs into the
// same workload harness as the six hand-built solutions, which is how
// Figure 10 becomes measurable.
type MDASolution struct {
	Target mda.ConcretePlatform

	// deployment is set by Build for statistics collection.
	deployment *mda.Deployment
}

var _ Solution = (*MDASolution)(nil)

// NewMDASolution returns the trajectory solution for a named concrete
// platform.
func NewMDASolution(platformName string) (*MDASolution, error) {
	target, ok := mda.ConcretePlatformByName(platformName)
	if !ok {
		return nil, fmt.Errorf("floorcontrol: unknown concrete platform %q", platformName)
	}
	return &MDASolution{Target: target}, nil
}

// Name implements Solution.
func (s *MDASolution) Name() string { return "mda-" + s.Target.Name }

// Paradigm implements Solution.
func (*MDASolution) Paradigm() Paradigm { return ParadigmMDA }

// Style implements Solution: the PIM logic is callback-style.
func (*MDASolution) Style() Style { return StyleCallback }

// Figure implements Solution.
func (*MDASolution) Figure() string { return "Fig 10-12" }

// Scattering implements Solution: app parts carry nothing (the generic
// service app part is reused); the service logic plus any adapter layer
// live behind the service boundary.
func (s *MDASolution) Scattering(int) Scattering {
	ops := 3 + 3 // controller logic + agent logic handlers
	if real, err := mda.Realize(PIM(nil).Abstract, s.Target, mda.DefaultRules()); err == nil {
		ops += len(real.Adapters)
	}
	return Scattering{InteractionSystemOps: ops}
}

// Build implements Solution.
func (s *MDASolution) Build(env *Env) (map[string]AppPart, error) {
	if env.Lower == nil {
		return nil, fmt.Errorf("floorcontrol: %s requires a lower-level service", s.Name())
	}
	saps := make([]core.SAP, len(env.Subscribers))
	for i, sub := range env.Subscribers {
		saps[i] = SubscriberSAP(sub)
	}
	dep, err := mda.Deploy(env.Time, env.Lower, PIM(env.Resources), s.Target, mda.Plan{SAPs: saps})
	if err != nil {
		return nil, fmt.Errorf("floorcontrol: deploy %s: %w", s.Name(), err)
	}
	s.deployment = dep
	env.Platform = dep.Platform()
	provider := ObserveProvider(dep, env.Observer)
	parts := make(map[string]AppPart, len(env.Subscribers))
	for _, sub := range env.Subscribers {
		parts[sub] = newServiceAppPart(provider, SubscriberSAP(sub))
	}
	return parts, nil
}

// Deployment returns the deployment created by the last Build, for
// realization introspection in experiments.
func (s *MDASolution) Deployment() *mda.Deployment { return s.deployment }

// MDASolutions returns trajectory solutions for all four concrete
// platforms, in Figure 10 order.
func MDASolutions() []*MDASolution {
	platforms := mda.ConcretePlatforms()
	out := make([]*MDASolution, len(platforms))
	for i, p := range platforms {
		out[i] = &MDASolution{Target: p}
	}
	return out
}
