package floorcontrol

import (
	"strings"
	"testing"

	"repro/internal/mda"
)

func TestPIMValidates(t *testing.T) {
	if err := PIM(ResourceNames(2)).Validate(); err != nil {
		t.Fatalf("floor-control PIM invalid: %v", err)
	}
}

func TestPIMTrajectoryOnAllPlatforms(t *testing.T) {
	pim := PIM(ResourceNames(2))
	for _, target := range mda.ConcretePlatforms() {
		steps, real, err := mda.PlanTrajectory(pim, target)
		if err != nil {
			t.Fatalf("%s: %v", target.Name, err)
		}
		if len(steps) != 5 {
			t.Fatalf("%s: %d steps", target.Name, len(steps))
		}
		switch target.Name {
		case "rpc-corba-like", "msg-jms-like":
			if !real.Direct {
				t.Fatalf("%s: want direct realization", target.Name)
			}
		case "rpc-rmi-like", "queue-mq-like":
			if real.Direct {
				t.Fatalf("%s: want recursive realization", target.Name)
			}
		}
	}
}

func TestMDASolutionsRegistry(t *testing.T) {
	sols := MDASolutions()
	if len(sols) != 4 {
		t.Fatalf("MDASolutions = %d, want 4", len(sols))
	}
	for _, s := range sols {
		if !strings.HasPrefix(s.Name(), "mda-") {
			t.Fatalf("name = %q", s.Name())
		}
		if s.Paradigm() != ParadigmMDA {
			t.Fatalf("%s paradigm = %q", s.Name(), s.Paradigm())
		}
		byName, ok := SolutionByName(s.Name())
		if !ok || byName.Name() != s.Name() {
			t.Fatalf("SolutionByName(%q) failed", s.Name())
		}
		sc := s.Scattering(5)
		if sc.Index() != 0 {
			t.Fatalf("%s: MDA solutions keep app parts clean, index = %v", s.Name(), sc.Index())
		}
	}
	if _, ok := SolutionByName("mda-unknown-platform"); ok {
		t.Fatal("bogus MDA solution resolved")
	}
	if _, err := NewMDASolution("nope"); err == nil {
		t.Fatal("NewMDASolution accepted unknown platform")
	}
}

func TestMDAWorkloadsConformOnAllPlatforms(t *testing.T) {
	spec := ServiceLTS(SubscriberNames(2), ResourceNames(1))
	for _, s := range MDASolutions() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			res, err := RunWorkload(Config{
				Solution:    s.Name(),
				Subscribers: 2,
				Resources:   1,
				Cycles:      3,
				Seed:        11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != res.Expected {
				t.Fatalf("completed %d of %d", res.Completed, res.Expected)
			}
			if res.ConformanceErr != nil {
				t.Fatalf("conformance: %v", res.ConformanceErr)
			}
			if !spec.Accepts(res.Trace.Labels()) {
				t.Fatal("trace rejected by service LTS")
			}
		})
	}
}

func TestMDAAdapterOverheadShape(t *testing.T) {
	// Figure 12's measurable claim: recursive realizations cost more wire
	// messages than direct ones, while remaining conformant.
	run := func(name string) *Result {
		res, err := RunWorkload(Config{Solution: name, Seed: 5, Cycles: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.ConformanceErr != nil {
			t.Fatalf("%s: %v", name, res.ConformanceErr)
		}
		return res
	}
	direct := run("mda-rpc-corba-like")
	recursive := run("mda-rpc-rmi-like")
	queued := run("mda-queue-mq-like")
	if recursive.NetMessages <= direct.NetMessages {
		t.Fatalf("async-over-sync (%d msgs) should exceed direct oneway (%d msgs)",
			recursive.NetMessages, direct.NetMessages)
	}
	if queued.NetMessages <= direct.NetMessages {
		t.Fatalf("async-over-queue (%d msgs) should exceed direct oneway (%d msgs)",
			queued.NetMessages, direct.NetMessages)
	}
	if queued.AcquireLatency.Mean() <= direct.AcquireLatency.Mean() {
		t.Fatalf("broker indirection should add latency: %v vs %v",
			queued.AcquireLatency.Mean(), direct.AcquireLatency.Mean())
	}
}

func TestMDADeploymentIntrospection(t *testing.T) {
	s, err := NewMDASolution("queue-mq-like")
	if err != nil {
		t.Fatal(err)
	}
	if s.Deployment() != nil {
		t.Fatal("deployment set before Build")
	}
	if _, err := RunWorkloadWith(s, Config{Seed: 2, Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	dep := s.Deployment()
	if dep == nil {
		t.Fatal("deployment not recorded")
	}
	if dep.MessagingName() != "async-over-queue" {
		t.Fatalf("messaging = %q", dep.MessagingName())
	}
}
