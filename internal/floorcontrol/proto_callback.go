package floorcontrol

import (
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/protocol"
)

// ProtoCallback is the asymmetric protocol solution of Figure 6(a),
// mirroring the callback-based middleware solution. PDUs:
//
//	request (subid, resid)
//	granted (resid)
//	free    (resid)
//
// A controller protocol entity centralizes coordination; subscriber
// protocol entities translate service primitives to PDUs and back. All of
// this lives behind the floor-control service boundary: the user parts
// never see it.
type ProtoCallback struct{}

var _ Solution = (*ProtoCallback)(nil)

// Name implements Solution.
func (*ProtoCallback) Name() string { return "proto-callback" }

// Paradigm implements Solution.
func (*ProtoCallback) Paradigm() Paradigm { return ParadigmProtocol }

// Style implements Solution.
func (*ProtoCallback) Style() Style { return StyleCallback }

// Figure implements Solution.
func (*ProtoCallback) Figure() string { return "Fig 6(a)" }

// Scattering implements Solution: the app parts contain no interaction
// functionality (they execute service primitives only); the interaction
// system comprises 3 subscriber-entity handlers and 3 controller-entity
// handlers.
func (*ProtoCallback) Scattering(n int) Scattering {
	return Scattering{InteractionSystemOps: 3 + 3}
}

// Build implements Solution.
func (s *ProtoCallback) Build(env *Env) (map[string]AppPart, error) {
	return buildProtocolSolution(env, s.Name(), func(layer *protocol.Layer) error {
		ctrl := &callbackCtrlEntity{q: newResourceQueue(env.Resources)}
		if err := layer.AddEntity(ctrlNode, ctrl); err != nil {
			return fmt.Errorf("floorcontrol: add controller entity: %w", err)
		}
		for _, sub := range env.Subscribers {
			if err := layer.AddEntity(protocol.Addr(sub), &callbackSubEntity{controller: ctrlNode}); err != nil {
				return fmt.Errorf("floorcontrol: add subscriber entity %q: %w", sub, err)
			}
		}
		return nil
	})
}

// callbackSubEntity translates between service primitives and PDUs at one
// subscriber's access point.
type callbackSubEntity struct {
	controller protocol.Addr
	ctx        *protocol.Context
}

var _ protocol.Entity = (*callbackSubEntity)(nil)

// Init implements protocol.Entity.
func (e *callbackSubEntity) Init(ctx *protocol.Context) error {
	e.ctx = ctx
	return nil
}

// FromUser implements protocol.Entity.
func (e *callbackSubEntity) FromUser(primitive string, params codec.Record) error {
	res, _ := params[ParamResource].(string)
	switch primitive {
	case PrimRequest:
		return e.ctx.SendPDU(e.controller, codec.NewMessage("request",
			codec.Record{"subid": string(e.ctx.Self()), ParamResource: res}))
	case PrimFree:
		return e.ctx.SendPDU(e.controller, codec.NewMessage("free",
			codec.Record{"subid": string(e.ctx.Self()), ParamResource: res}))
	default:
		return fmt.Errorf("floorcontrol: unexpected primitive %q", primitive)
	}
}

// FromPeer implements protocol.Entity.
func (e *callbackSubEntity) FromPeer(_ protocol.Addr, pdu codec.Message) error {
	if pdu.Name != "granted" {
		return fmt.Errorf("floorcontrol: unexpected PDU %q at subscriber entity", pdu.Name)
	}
	res, _ := pdu.Fields[ParamResource].(string)
	e.ctx.DeliverToUser(PrimGranted, codec.Record{ParamResource: res})
	return nil
}

// callbackCtrlEntity is the controller protocol entity: holder and FIFO
// queue per resource, granting by PDU.
type callbackCtrlEntity struct {
	ctx *protocol.Context

	mu sync.Mutex
	q  *resourceQueue
}

var _ protocol.Entity = (*callbackCtrlEntity)(nil)

// Init implements protocol.Entity.
func (e *callbackCtrlEntity) Init(ctx *protocol.Context) error {
	e.ctx = ctx
	return nil
}

// FromUser implements protocol.Entity: the controller has no local user.
func (e *callbackCtrlEntity) FromUser(primitive string, _ codec.Record) error {
	return fmt.Errorf("floorcontrol: controller entity has no service user (got %q)", primitive)
}

// FromPeer implements protocol.Entity.
func (e *callbackCtrlEntity) FromPeer(src protocol.Addr, pdu codec.Message) error {
	sub, _ := pdu.Fields["subid"].(string)
	res, _ := pdu.Fields[ParamResource].(string)
	switch pdu.Name {
	case "request":
		e.mu.Lock()
		if !e.q.known(res) {
			e.mu.Unlock()
			return fmt.Errorf("floorcontrol: request for unknown resource %q", res)
		}
		granted := e.q.tryAcquire(sub, res)
		if !granted {
			e.q.enqueue(sub, res)
		}
		e.mu.Unlock()
		if granted {
			return e.grant(sub, res)
		}
		return nil
	case "free":
		e.mu.Lock()
		next, ok, err := e.q.release(sub, res)
		e.mu.Unlock()
		if err != nil {
			return err
		}
		if ok {
			return e.grant(next, res)
		}
		return nil
	default:
		return fmt.Errorf("floorcontrol: unexpected PDU %q at controller entity from %s", pdu.Name, src)
	}
}

func (e *callbackCtrlEntity) grant(sub, res string) error {
	return e.ctx.SendPDU(protocol.Addr(sub), codec.NewMessage("granted",
		codec.Record{ParamResource: res}))
}
