package floorcontrol

import (
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/protocol"
)

// serviceAppPart is THE application part of every protocol-centred
// solution. It is written once, against the floor-control service
// (core.Provider), and is reused unchanged by the callback, polling and
// token protocols — the executable form of the paper's §5 claim that "the
// design of the application is not influenced by the choice of a protocol
// solution (the presented protocol solutions provide the same service)".
type serviceAppPart struct {
	provider core.Provider
	sap      core.SAP

	mu      sync.Mutex
	pending map[string]func() // resource → completion
}

var _ AppPart = (*serviceAppPart)(nil)

// newServiceAppPart attaches the part to its SAP.
func newServiceAppPart(provider core.Provider, sap core.SAP) *serviceAppPart {
	p := &serviceAppPart{provider: provider, sap: sap, pending: make(map[string]func())}
	provider.Attach(sap, p.onPrimitive)
	return p
}

func (p *serviceAppPart) onPrimitive(primitive string, params codec.Record) {
	if primitive != PrimGranted {
		return
	}
	res, _ := params[ParamResource].(string)
	p.mu.Lock()
	done := p.pending[res]
	delete(p.pending, res)
	p.mu.Unlock()
	if done != nil {
		done()
	}
}

// Acquire implements AppPart by executing the request primitive.
func (p *serviceAppPart) Acquire(res string, done func()) {
	p.mu.Lock()
	p.pending[res] = done
	p.mu.Unlock()
	if err := p.provider.Submit(p.sap, PrimRequest, codec.Record{ParamResource: res}); err != nil {
		panic(fmt.Sprintf("floorcontrol: request at %s: %v", p.sap, err))
	}
}

// Release implements AppPart by executing the free primitive.
func (p *serviceAppPart) Release(res string) {
	if err := p.provider.Submit(p.sap, PrimFree, codec.Record{ParamResource: res}); err != nil {
		panic(fmt.Sprintf("floorcontrol: free at %s: %v", p.sap, err))
	}
}

// buildProtocolSolution is the shared assembly for the three protocol
// solutions: create the layer, install entities, bind SAPs, wrap the
// service boundary with conformance observation, and hand every
// subscriber the same generic app part.
func buildProtocolSolution(env *Env, name string, install func(layer *protocol.Layer) error) (map[string]AppPart, error) {
	if env.Lower == nil {
		return nil, fmt.Errorf("floorcontrol: %s requires a lower-level service", name)
	}
	layer := protocol.NewLayer(name, env.Time, env.Lower)
	env.Layer = layer
	if err := install(layer); err != nil {
		return nil, err
	}
	binding := protocol.NewServiceBinding(layer)
	for _, sub := range env.Subscribers {
		if err := binding.Bind(SubscriberSAP(sub), protocol.Addr(sub)); err != nil {
			return nil, fmt.Errorf("floorcontrol: bind SAP %q: %w", sub, err)
		}
	}
	provider := ObserveProvider(binding, env.Observer)
	parts := make(map[string]AppPart, len(env.Subscribers))
	for _, sub := range env.Subscribers {
		parts[sub] = newServiceAppPart(provider, SubscriberSAP(sub))
	}
	return parts, nil
}
