package floorcontrol

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/protocol"
)

// ProtoPolling is the asymmetric protocol solution of Figure 6(b),
// mirroring the polling-based middleware solution. PDUs:
//
//	is_available_req  (subid, resid)
//	is_available_resp (resid, available bool)
//	free              (subid, resid)
//
// The decisive difference from MWPolling, emphasized in §5: "the
// subscriber requests the resource and the service is responsible for
// 'polling'." The polling loop lives inside the subscriber *protocol
// entity* — behind the service boundary — so the user part executes a
// single request primitive and simply waits for granted. Same wire
// behaviour, different residence of the interaction functionality.
type ProtoPolling struct{}

var _ Solution = (*ProtoPolling)(nil)

// Name implements Solution.
func (*ProtoPolling) Name() string { return "proto-polling" }

// Paradigm implements Solution.
func (*ProtoPolling) Paradigm() Paradigm { return ParadigmProtocol }

// Style implements Solution.
func (*ProtoPolling) Style() Style { return StylePolling }

// Figure implements Solution.
func (*ProtoPolling) Figure() string { return "Fig 6(b)" }

// Scattering implements Solution: app parts 0; subscriber entity carries
// 4 handlers (request→poll loop, response handling, free, timer), the
// controller entity 2.
func (*ProtoPolling) Scattering(n int) Scattering {
	return Scattering{InteractionSystemOps: 4 + 2}
}

// Build implements Solution.
func (s *ProtoPolling) Build(env *Env) (map[string]AppPart, error) {
	return buildProtocolSolution(env, s.Name(), func(layer *protocol.Layer) error {
		ctrl := &pollingCtrlEntity{q: newResourceQueue(env.Resources)}
		if err := layer.AddEntity(ctrlNode, ctrl); err != nil {
			return fmt.Errorf("floorcontrol: add controller entity: %w", err)
		}
		for _, sub := range env.Subscribers {
			e := &pollingSubEntity{controller: ctrlNode, interval: env.PollInterval}
			if err := layer.AddEntity(protocol.Addr(sub), e); err != nil {
				return fmt.Errorf("floorcontrol: add subscriber entity %q: %w", sub, err)
			}
		}
		return nil
	})
}

// pollingSubEntity polls the controller on the user's behalf.
type pollingSubEntity struct {
	controller protocol.Addr
	interval   time.Duration
	ctx        *protocol.Context

	mu      sync.Mutex
	waiting map[string]bool // resources being polled for
}

var _ protocol.Entity = (*pollingSubEntity)(nil)

// Init implements protocol.Entity.
func (e *pollingSubEntity) Init(ctx *protocol.Context) error {
	e.ctx = ctx
	e.waiting = make(map[string]bool)
	return nil
}

// FromUser implements protocol.Entity.
func (e *pollingSubEntity) FromUser(primitive string, params codec.Record) error {
	res, _ := params[ParamResource].(string)
	switch primitive {
	case PrimRequest:
		e.mu.Lock()
		e.waiting[res] = true
		e.mu.Unlock()
		return e.probe(res)
	case PrimFree:
		return e.ctx.SendPDU(e.controller, codec.NewMessage("free",
			codec.Record{"subid": string(e.ctx.Self()), ParamResource: res}))
	default:
		return fmt.Errorf("floorcontrol: unexpected primitive %q", primitive)
	}
}

func (e *pollingSubEntity) probe(res string) error {
	return e.ctx.SendPDU(e.controller, codec.NewMessage("is_available_req",
		codec.Record{"subid": string(e.ctx.Self()), ParamResource: res}))
}

// FromPeer implements protocol.Entity.
func (e *pollingSubEntity) FromPeer(_ protocol.Addr, pdu codec.Message) error {
	if pdu.Name != "is_available_resp" {
		return fmt.Errorf("floorcontrol: unexpected PDU %q at polling subscriber entity", pdu.Name)
	}
	res, _ := pdu.Fields[ParamResource].(string)
	avail, _ := pdu.Fields["available"].(bool)
	e.mu.Lock()
	waiting := e.waiting[res]
	if avail && waiting {
		delete(e.waiting, res)
	}
	e.mu.Unlock()
	if !waiting {
		return nil // stale response
	}
	if avail {
		e.ctx.DeliverToUser(PrimGranted, codec.Record{ParamResource: res})
		return nil
	}
	e.ctx.Schedule(e.interval, func() {
		e.mu.Lock()
		still := e.waiting[res]
		e.mu.Unlock()
		if still {
			_ = e.probe(res) //nolint:errcheck // probe failure retried on next interval
		}
	})
	return nil
}

// pollingCtrlEntity answers probes test-and-set, mirroring the middleware
// polling controller.
type pollingCtrlEntity struct {
	ctx *protocol.Context

	mu sync.Mutex
	q  *resourceQueue
}

var _ protocol.Entity = (*pollingCtrlEntity)(nil)

// Init implements protocol.Entity.
func (e *pollingCtrlEntity) Init(ctx *protocol.Context) error {
	e.ctx = ctx
	return nil
}

// FromUser implements protocol.Entity.
func (e *pollingCtrlEntity) FromUser(primitive string, _ codec.Record) error {
	return fmt.Errorf("floorcontrol: controller entity has no service user (got %q)", primitive)
}

// FromPeer implements protocol.Entity.
func (e *pollingCtrlEntity) FromPeer(src protocol.Addr, pdu codec.Message) error {
	sub, _ := pdu.Fields["subid"].(string)
	res, _ := pdu.Fields[ParamResource].(string)
	switch pdu.Name {
	case "is_available_req":
		e.mu.Lock()
		if !e.q.known(res) {
			e.mu.Unlock()
			return fmt.Errorf("floorcontrol: probe for unknown resource %q", res)
		}
		got := e.q.tryAcquire(sub, res)
		e.mu.Unlock()
		return e.ctx.SendPDU(protocol.Addr(sub), codec.NewMessage("is_available_resp",
			codec.Record{ParamResource: res, "available": got}))
	case "free":
		e.mu.Lock()
		_, _, err := e.q.release(sub, res)
		e.mu.Unlock()
		return err
	default:
		return fmt.Errorf("floorcontrol: unexpected PDU %q at polling controller from %s", pdu.Name, src)
	}
}
