package floorcontrol

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/protocol"
)

// ProtoToken is the symmetric protocol solution of Figure 6(c), mirroring
// the token-based middleware solution with a single PDU:
//
//	pass (list of resid)
//
// Subscriber protocol entities form a logical ring. The availability list
// circulates; an entity whose user has a pending request removes the
// wanted identifier and delivers granted; identifiers freed by the user
// re-enter the list at the entity's next token possession. The user part,
// as with every protocol solution, sees only request/granted/free.
type ProtoToken struct{}

var _ Solution = (*ProtoToken)(nil)

// Name implements Solution.
func (*ProtoToken) Name() string { return "proto-token" }

// Paradigm implements Solution.
func (*ProtoToken) Paradigm() Paradigm { return ParadigmProtocol }

// Style implements Solution.
func (*ProtoToken) Style() Style { return StyleToken }

// Figure implements Solution.
func (*ProtoToken) Figure() string { return "Fig 6(c)" }

// Scattering implements Solution: app parts 0; each ring position is one
// entity with 3 handlers, but the entity is part of the interaction
// system, not the app part — so the count stays constant and fully
// system-resident.
func (*ProtoToken) Scattering(n int) Scattering {
	return Scattering{InteractionSystemOps: 3}
}

// Build implements Solution.
func (s *ProtoToken) Build(env *Env) (map[string]AppPart, error) {
	if len(env.Subscribers) == 0 {
		return nil, fmt.Errorf("floorcontrol: %s requires at least one subscriber", s.Name())
	}
	return buildProtocolSolution(env, s.Name(), func(layer *protocol.Layer) error {
		entities := make([]*tokenSubEntity, len(env.Subscribers))
		for i, sub := range env.Subscribers {
			next := env.Subscribers[(i+1)%len(env.Subscribers)]
			e := &tokenSubEntity{next: protocol.Addr(next), hop: env.TokenHopDelay}
			if err := layer.AddEntity(protocol.Addr(sub), e); err != nil {
				return fmt.Errorf("floorcontrol: add token entity %q: %w", sub, err)
			}
			entities[i] = e
		}
		// Inject the initial token, carrying all resources, at the first
		// ring position.
		initial := append([]string(nil), env.Resources...)
		env.Time.ScheduleFunc(0, func() { entities[0].onToken(initial) })
		return nil
	})
}

// tokenSubEntity is one ring position.
type tokenSubEntity struct {
	next protocol.Addr
	hop  time.Duration
	ctx  *protocol.Context

	mu        sync.Mutex
	wantRes   string
	toRelease []string
}

var _ protocol.Entity = (*tokenSubEntity)(nil)

// Init implements protocol.Entity.
func (e *tokenSubEntity) Init(ctx *protocol.Context) error {
	e.ctx = ctx
	return nil
}

// FromUser implements protocol.Entity.
func (e *tokenSubEntity) FromUser(primitive string, params codec.Record) error {
	res, _ := params[ParamResource].(string)
	switch primitive {
	case PrimRequest:
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.wantRes != "" {
			return fmt.Errorf("floorcontrol: outstanding request for %q", e.wantRes)
		}
		e.wantRes = res
		return nil
	case PrimFree:
		e.mu.Lock()
		defer e.mu.Unlock()
		e.toRelease = append(e.toRelease, res)
		return nil
	default:
		return fmt.Errorf("floorcontrol: unexpected primitive %q", primitive)
	}
}

// FromPeer implements protocol.Entity.
func (e *tokenSubEntity) FromPeer(_ protocol.Addr, pdu codec.Message) error {
	if pdu.Name != "pass" {
		return fmt.Errorf("floorcontrol: unexpected PDU %q at token entity", pdu.Name)
	}
	avail, err := codec.ToStringSlice(pdu.Fields["available"])
	if err != nil {
		return fmt.Errorf("floorcontrol: malformed token: %w", err)
	}
	e.onToken(avail)
	return nil
}

// onToken applies releases, takes a wanted resource, and forwards.
func (e *tokenSubEntity) onToken(avail []string) {
	e.mu.Lock()
	avail = append(avail, e.toRelease...)
	e.toRelease = nil
	grantedRes := ""
	if e.wantRes != "" {
		for i, r := range avail {
			if r == e.wantRes {
				avail = append(avail[:i], avail[i+1:]...)
				grantedRes = e.wantRes
				e.wantRes = ""
				break
			}
		}
	}
	e.mu.Unlock()
	if grantedRes != "" {
		e.ctx.DeliverToUser(PrimGranted, codec.Record{ParamResource: grantedRes})
	}
	forward := append([]string(nil), avail...)
	e.ctx.Schedule(e.hop, func() {
		err := e.ctx.SendPDU(e.next, codec.NewMessage("pass",
			codec.Record{"available": codec.StringList(forward)}))
		if err != nil {
			panic(fmt.Sprintf("floorcontrol: token pass to %q: %v", e.next, err))
		}
	})
}
