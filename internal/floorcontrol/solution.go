package floorcontrol

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/svc"
)

// Paradigm identifies which of the paper's two design paradigms a solution
// follows.
type Paradigm string

// Paradigms.
const (
	ParadigmMiddleware Paradigm = "middleware"
	ParadigmProtocol   Paradigm = "protocol"
)

// Style identifies the coordination style, matching the paper's (a), (b),
// (c) alternatives in Figures 4 and 6.
type Style string

// Coordination styles.
const (
	StyleCallback Style = "callback"
	StylePolling  Style = "polling"
	StyleToken    Style = "token"
)

// AppPart is the face of one subscriber's application part, as the
// workload driver sees it. Implementations differ per solution — that
// asymmetry is the point: for protocol solutions a single generic app part
// (written against core.Provider) serves all three styles, whereas every
// middleware solution needs its own app-part logic (the scattered
// interaction functionality of Figure 7).
type AppPart interface {
	// Acquire obtains exclusive access to the resource; done runs when
	// access is granted. At most one outstanding Acquire per app part
	// (subscribers are cooperative, §4).
	Acquire(res string, done func())
	// Release returns a resource previously granted.
	Release(res string)
}

// Env is the substrate a solution builds on. The workload driver prepares
// it; Build wires components or protocol entities into it.
type Env struct {
	// Time is the engine the whole stack schedules on — a *sim.Kernel
	// for single-threaded runs, a shard.Group for sharded ones.
	Time     sim.Timebase
	Net      *network.Network
	Observer *core.Observer

	// Subscribers and Resources name the deployment.
	Subscribers []string
	Resources   []string

	// PollInterval is used by polling-style solutions; TokenHopDelay by
	// token-style solutions.
	PollInterval  time.Duration
	TokenHopDelay time.Duration

	// Platform is set for middleware solutions.
	Platform *middleware.Platform
	// Lower is the reliable-datagram lower service for protocol solutions.
	Lower protocol.LowerService
	// Layer is set by protocol solutions for PDU statistics.
	Layer *protocol.Layer
}

// observe reports a service-primitive execution at a subscriber's SAP to
// the conformance observer.
func (e *Env) observe(sub, primitive, res string) {
	_ = e.Observer.Observe(SubscriberSAP(sub), primitive, codec.Record{ParamResource: res}) //nolint:errcheck // violations surface via Observer.Err
}

// Solution is one of the six floor-control implementations.
type Solution interface {
	// Name is the unique solution identifier, e.g. "mw-callback".
	Name() string
	Paradigm() Paradigm
	Style() Style
	// Figure returns the paper figure the solution reproduces, e.g.
	// "Fig 4(a)".
	Figure() string
	// Scattering reports where the interaction functionality lives for a
	// deployment of n subscribers (totals, not per-part).
	Scattering(n int) Scattering
	// Build wires the solution into env and returns the application part
	// of every subscriber.
	Build(env *Env) (map[string]AppPart, error)
}

// Solutions returns all six solutions in paper order: Figure 4 (a,b,c)
// then Figure 6 (a,b,c).
func Solutions() []Solution {
	return []Solution{
		&MWCallback{},
		&MWPolling{},
		&MWToken{},
		&ProtoCallback{},
		&ProtoPolling{},
		&ProtoToken{},
	}
}

// SolutionByName finds a solution by its identifier. Names of the form
// "mda-<concrete-platform>" resolve to trajectory solutions (see
// MDASolutions).
func SolutionByName(name string) (Solution, bool) {
	for _, s := range Solutions() {
		if s.Name() == name {
			return s, true
		}
	}
	if rest, ok := strings.CutPrefix(name, "mda-"); ok {
		if s, err := NewMDASolution(rest); err == nil {
			return s, true
		}
	}
	return nil, false
}

// ctrlNode is the hosting node of asymmetric-solution controllers.
const ctrlNode = "ctrl"

// bindService declares the floor-control service over the env's
// middleware platform and returns the typed-port binding every
// middleware solution programs against. The bind profile-checks the
// paper's §4.1 assumption ("we assume a component middleware that
// supports remote invocation"): a profile without RPC fails with
// svc.ErrUnsupportedPattern.
func bindService(env *Env, solution string) (*svc.Binding, error) {
	if env.Platform == nil {
		return nil, fmt.Errorf("floorcontrol: %s requires a middleware platform", solution)
	}
	service, err := svc.New(Spec())
	if err != nil {
		return nil, fmt.Errorf("floorcontrol: %s: %w", solution, err)
	}
	b, err := service.Bind(env.Platform, middleware.PatternRPC)
	if err != nil {
		return nil, fmt.Errorf("floorcontrol: %s requires remote invocation: %w", solution, err)
	}
	return b, nil
}

// subObjRef names a subscriber's component object on the middleware
// platform.
func subObjRef(sub string) middleware.ObjRef {
	return middleware.ObjRef("sub:" + sub)
}

// ctrlArgs is the typed request of the asymmetric controller operations
// (request_permission, is_available, free): the subscriber identity plus
// the resource identification every floor-control primitive carries.
type ctrlArgs struct {
	Sub string
	Res string
}

func encCtrlArgs(a ctrlArgs) codec.Record {
	return codec.Record{"subid": a.Sub, ParamResource: a.Res}
}

func decCtrlArgs(r codec.Record) (ctrlArgs, error) {
	sub, _ := r["subid"].(string)
	res, _ := r[ParamResource].(string)
	return ctrlArgs{Sub: sub, Res: res}, nil
}

// grantArgs is the typed payload of the controller→subscriber grant
// callback.
type grantArgs struct {
	Res string
}

func encGrantArgs(a grantArgs) codec.Record {
	return codec.Record{ParamResource: a.Res}
}

func decGrantArgs(r codec.Record) (grantArgs, error) {
	res, _ := r[ParamResource].(string)
	return grantArgs{Res: res}, nil
}

// ack is the empty acknowledgement reply of void operations.
type ack struct{}

func encAck(ack) codec.Record { return codec.Record{} }

// resourceQueue is the controller-side bookkeeping shared by the two
// asymmetric coordination styles: current holder and FIFO waiters, per
// resource.
type resourceQueue struct {
	holder  map[string]string   // resource → subscriber ("" = free)
	waiters map[string][]string // resource → FIFO of subscribers
}

func newResourceQueue(resources []string) *resourceQueue {
	q := &resourceQueue{
		holder:  make(map[string]string, len(resources)),
		waiters: make(map[string][]string, len(resources)),
	}
	for _, r := range resources {
		q.holder[r] = ""
	}
	return q
}

// known reports whether the resource is managed.
func (q *resourceQueue) known(res string) bool {
	_, ok := q.holder[res]
	return ok
}

// tryAcquire grants res to sub if free, returning success.
func (q *resourceQueue) tryAcquire(sub, res string) bool {
	if q.holder[res] != "" {
		return false
	}
	q.holder[res] = sub
	return true
}

// enqueue adds sub to the FIFO for res.
func (q *resourceQueue) enqueue(sub, res string) {
	q.waiters[res] = append(q.waiters[res], sub)
}

// release frees res held by sub and pops the next waiter (who becomes the
// holder), returning the new holder and whether there is one. It returns
// an error when sub does not hold res — a protocol violation by the
// caller.
func (q *resourceQueue) release(sub, res string) (string, bool, error) {
	if q.holder[res] != sub {
		return "", false, fmt.Errorf("floorcontrol: %q released %q held by %q", sub, res, q.holder[res])
	}
	q.holder[res] = ""
	w := q.waiters[res]
	if len(w) == 0 {
		return "", false, nil
	}
	next := w[0]
	q.waiters[res] = w[1:]
	q.holder[res] = next
	return next, true, nil
}
