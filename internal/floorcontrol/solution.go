package floorcontrol

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/svc"
)

// Paradigm identifies which of the paper's two design paradigms a solution
// follows.
type Paradigm string

// Paradigms.
const (
	ParadigmMiddleware Paradigm = "middleware"
	ParadigmProtocol   Paradigm = "protocol"
)

// Style identifies the coordination style, matching the paper's (a), (b),
// (c) alternatives in Figures 4 and 6.
type Style string

// Coordination styles.
const (
	StyleCallback Style = "callback"
	StylePolling  Style = "polling"
	StyleToken    Style = "token"
)

// AppPart is the face of one subscriber's application part, as the
// workload driver sees it. Implementations differ per solution — that
// asymmetry is the point: for protocol solutions a single generic app part
// (written against core.Provider) serves all three styles, whereas every
// middleware solution needs its own app-part logic (the scattered
// interaction functionality of Figure 7).
type AppPart interface {
	// Acquire obtains exclusive access to the resource; done runs when
	// access is granted. At most one outstanding Acquire per app part
	// (subscribers are cooperative, §4).
	Acquire(res string, done func())
	// Release returns a resource previously granted.
	Release(res string)
}

// Env is the substrate a solution builds on. The workload driver prepares
// it; Build wires components or protocol entities into it.
type Env struct {
	// Time is the engine the whole stack schedules on — a *sim.Kernel
	// for single-threaded runs, a shard.Group for sharded ones.
	Time     sim.Timebase
	Net      *network.Network
	Observer *core.Observer

	// Subscribers and Resources name the deployment.
	Subscribers []string
	Resources   []string

	// PollInterval is used by polling-style solutions; TokenHopDelay by
	// token-style solutions.
	PollInterval  time.Duration
	TokenHopDelay time.Duration

	// Platform is set for middleware solutions.
	Platform *middleware.Platform
	// Lower is the reliable-datagram lower service for protocol solutions.
	Lower protocol.LowerService
	// Layer is set by protocol solutions for PDU statistics.
	Layer *protocol.Layer

	// Churn is set when the workload runs under a crash/restart fault
	// plan. Solutions then arm their recovery machinery — idempotent
	// retries, probe deadlines, token redelivery dedup. The machinery
	// must stay fully inert when Churn is false: fault-free runs keep
	// their exact historical event streams and wire bytes (the golden
	// band hashes pin this).
	Churn bool
}

// observe reports a service-primitive execution at a subscriber's SAP to
// the conformance observer.
func (e *Env) observe(sub, primitive, res string) {
	_ = e.Observer.Observe(SubscriberSAP(sub), primitive, codec.Record{ParamResource: res}) //nolint:errcheck // violations surface via Observer.Err
}

// Solution is one of the six floor-control implementations.
type Solution interface {
	// Name is the unique solution identifier, e.g. "mw-callback".
	Name() string
	Paradigm() Paradigm
	Style() Style
	// Figure returns the paper figure the solution reproduces, e.g.
	// "Fig 4(a)".
	Figure() string
	// Scattering reports where the interaction functionality lives for a
	// deployment of n subscribers (totals, not per-part).
	Scattering(n int) Scattering
	// Build wires the solution into env and returns the application part
	// of every subscriber.
	Build(env *Env) (map[string]AppPart, error)
}

// Solutions returns all six solutions in paper order: Figure 4 (a,b,c)
// then Figure 6 (a,b,c).
func Solutions() []Solution {
	return []Solution{
		&MWCallback{},
		&MWPolling{},
		&MWToken{},
		&ProtoCallback{},
		&ProtoPolling{},
		&ProtoToken{},
	}
}

// SolutionByName finds a solution by its identifier. Names of the form
// "mda-<concrete-platform>" resolve to trajectory solutions (see
// MDASolutions).
func SolutionByName(name string) (Solution, bool) {
	for _, s := range Solutions() {
		if s.Name() == name {
			return s, true
		}
	}
	if rest, ok := strings.CutPrefix(name, "mda-"); ok {
		if s, err := NewMDASolution(rest); err == nil {
			return s, true
		}
	}
	return nil, false
}

// ctrlNode is the hosting node of asymmetric-solution controllers.
const ctrlNode = "ctrl"

// ctrlStandby is the node a failover rebind policy re-homes a crashed
// controller onto. It is never part of the fault plan, so a failed-over
// controller stays up for the rest of the run.
const ctrlStandby = "ctrl2"

// Rebind policies for controller-node crashes (Config.RebindPolicy).
const (
	// RebindNone waits out the crashed controller's MTTR: callers fail
	// fast with ErrUnavailable and retry until the node restarts.
	RebindNone = "none"
	// RebindFailover re-homes the controller export onto ctrlStandby at
	// the instant its node crashes (live rebinding).
	RebindFailover = "failover"
)

// ControllerFailover is the optional Solution extension for the
// asymmetric middleware solutions, whose coordination state lives in a
// controller component on a single node — the paradigm's built-in single
// point of failure. Implementers opt that node into the churn fault plan
// and expose the live-rebinding move the failover policy performs.
// Protocol and MDA solutions keep their coordination behind the service
// boundary with no per-solution recovery hook, so only their subscriber
// nodes churn.
type ControllerFailover interface {
	// ControllerNode returns the controller's current hosting node.
	ControllerNode() middleware.Addr
	// Failover re-homes the controller component onto node, carrying its
	// coordination state. The churn driver calls it at the instant the
	// controller's node crashes under RebindFailover.
	Failover(node middleware.Addr) error
}

// retryable reports whether a churn-time call failure is transient: the
// callee node is down (fail-fast, or the call interrupted by its crash)
// or the reply was lost to the wire (call timeout). An application-level
// rejection is not retryable — no redelivery can fix it.
func retryable(err error) bool {
	return errors.Is(err, svc.ErrUnavailable) || errors.Is(err, svc.ErrTimeout)
}

// sendCtrl invokes a void controller operation through a shared typed
// port. Fault-free, a submission failure is a deployment bug and panics.
// Under churn a transient failure — controller crashed and not yet
// restarted or failed over, the call interrupted mid-flight by a crash,
// or the reply lost — is retried after a poll interval until it gets
// through. Retries resend args verbatim, Seq included: at-least-once
// submission is safe because the controllers dedup stamped submissions
// (seenSeqs) and acknowledge duplicates as successes.
func sendCtrl(env *Env, port *svc.Port[ctrlArgs, ack], from middleware.Addr, args ctrlArgs, op string) {
	var cont func(ack, error)
	if env.Churn {
		cont = func(_ ack, err error) {
			switch {
			case err == nil:
			case retryable(err):
				env.Time.ScheduleFunc(env.PollInterval, func() { sendCtrl(env, port, from, args, op) })
			default:
				panic(fmt.Sprintf("floorcontrol: %s from %q: %v", op, from, err))
			}
		}
	}
	if err := port.Call(from, args, cont); err != nil {
		panic(fmt.Sprintf("floorcontrol: %s from %q: %v", op, from, err))
	}
}

// bindService declares the floor-control service over the env's
// middleware platform and returns the typed-port binding every
// middleware solution programs against. The bind profile-checks the
// paper's §4.1 assumption ("we assume a component middleware that
// supports remote invocation"): a profile without RPC fails with
// svc.ErrUnsupportedPattern.
func bindService(env *Env, solution string) (*svc.Binding, error) {
	if env.Platform == nil {
		return nil, fmt.Errorf("floorcontrol: %s requires a middleware platform", solution)
	}
	service, err := svc.New(Spec())
	if err != nil {
		return nil, fmt.Errorf("floorcontrol: %s: %w", solution, err)
	}
	b, err := service.Bind(env.Platform, middleware.PatternRPC)
	if err != nil {
		return nil, fmt.Errorf("floorcontrol: %s requires remote invocation: %w", solution, err)
	}
	return b, nil
}

// subObjRef names a subscriber's component object on the middleware
// platform.
func subObjRef(sub string) middleware.ObjRef {
	return middleware.ObjRef("sub:" + sub)
}

// ctrlArgs is the typed request of the asymmetric controller operations
// (request_permission, is_available, free): the subscriber identity plus
// the resource identification every floor-control primitive carries.
type ctrlArgs struct {
	Sub string
	Res string
	// Seq identifies the logical submission under churn so controllers
	// can absorb at-least-once redelivery: every retry of one operation
	// carries the Seq of the original. Each subscriber part stamps its
	// submissions from a private counter, so (Sub, Seq) is unique per
	// logical operation. Zero fault-free — unstamped submissions are
	// never deduped and stay off the wire, keeping fault-free encodings
	// byte-identical to the pre-churn protocol.
	Seq uint64
}

func encCtrlArgs(a ctrlArgs) codec.Record {
	r := codec.Record{"subid": a.Sub, ParamResource: a.Res}
	if a.Seq != 0 {
		r["seq"] = int64(a.Seq)
	}
	return r
}

func decCtrlArgs(r codec.Record) (ctrlArgs, error) {
	sub, _ := r["subid"].(string)
	res, _ := r[ParamResource].(string)
	seq, _ := r["seq"].(int64)
	return ctrlArgs{Sub: sub, Res: res, Seq: uint64(seq)}, nil
}

// seenSeqs records which stamped subscriber submissions a controller has
// already processed, absorbing at-least-once redelivery under churn.
// Retries can arrive after later fresh submissions from the same
// subscriber (a limbo free redelivered after the next cycle's request),
// so this must be an exact per-subscriber set — a high-watermark would
// silently drop the reordered original. Callers serialize access under
// the controller mutex.
type seenSeqs map[string]map[uint64]struct{}

// dup reports whether (sub, seq) was already processed, recording fresh
// stamped submissions. Unstamped (fault-free) submissions never dedup.
func (s seenSeqs) dup(sub string, seq uint64) bool {
	if seq == 0 {
		return false
	}
	m := s[sub]
	if m == nil {
		m = make(map[uint64]struct{})
		s[sub] = m
	}
	if _, ok := m[seq]; ok {
		return true
	}
	m[seq] = struct{}{}
	return false
}

// grantArgs is the typed payload of the controller→subscriber grant
// callback.
type grantArgs struct {
	Res string
	// Seq echoes the Seq of the request being answered, so the
	// subscriber can discard a duplicate grant (a churn retry whose
	// first copy landed before the subscriber crashed) instead of
	// mistaking it for the answer to a later request. Zero fault-free.
	Seq uint64
}

func encGrantArgs(a grantArgs) codec.Record {
	r := codec.Record{ParamResource: a.Res}
	if a.Seq != 0 {
		r["seq"] = int64(a.Seq)
	}
	return r
}

func decGrantArgs(r codec.Record) (grantArgs, error) {
	res, _ := r[ParamResource].(string)
	seq, _ := r["seq"].(int64)
	return grantArgs{Res: res, Seq: uint64(seq)}, nil
}

// ack is the empty acknowledgement reply of void operations.
type ack struct{}

func encAck(ack) codec.Record { return codec.Record{} }

// resourceQueue is the controller-side bookkeeping shared by the two
// asymmetric coordination styles: current holder and FIFO waiters, per
// resource.
type resourceQueue struct {
	holder  map[string]string   // resource → subscriber ("" = free)
	waiters map[string][]string // resource → FIFO of subscribers
}

func newResourceQueue(resources []string) *resourceQueue {
	q := &resourceQueue{
		holder:  make(map[string]string, len(resources)),
		waiters: make(map[string][]string, len(resources)),
	}
	for _, r := range resources {
		q.holder[r] = ""
	}
	return q
}

// known reports whether the resource is managed.
func (q *resourceQueue) known(res string) bool {
	_, ok := q.holder[res]
	return ok
}

// tryAcquire grants res to sub if free, returning success.
func (q *resourceQueue) tryAcquire(sub, res string) bool {
	if q.holder[res] != "" {
		return false
	}
	q.holder[res] = sub
	return true
}

// enqueue adds sub to the FIFO for res.
func (q *resourceQueue) enqueue(sub, res string) {
	q.waiters[res] = append(q.waiters[res], sub)
}

// release frees res held by sub and pops the next waiter (who becomes the
// holder), returning the new holder and whether there is one. It returns
// an error when sub does not hold res — a protocol violation by the
// caller.
func (q *resourceQueue) release(sub, res string) (string, bool, error) {
	if q.holder[res] != sub {
		return "", false, fmt.Errorf("floorcontrol: %q released %q held by %q", sub, res, q.holder[res])
	}
	q.holder[res] = ""
	w := q.waiters[res]
	if len(w) == 0 {
		return "", false, nil
	}
	next := w[0]
	q.waiters[res] = w[1:]
	q.holder[res] = next
	return next, true, nil
}
