package floorcontrol

import (
	"fmt"
	"strings"
	"time"
)

// AllSolutionNames returns the identifiers of every floor-control
// implementation in paper order: the six Figure 4/6 solutions followed by
// the four MDA trajectory solutions.
func AllSolutionNames() []string {
	names := make([]string, 0, 10)
	for _, s := range Solutions() {
		names = append(names, s.Name())
	}
	for _, m := range MDASolutions() {
		names = append(names, m.Name())
	}
	return names
}

// ScenarioID renders a stable identifier for the workload the Config
// describes, suitable as a sweep-scenario key. The core
// solution/size/loss tuple always appears; every other parameter appears
// only when its effective (post-default) value deviates from the default,
// so an explicitly-set default yields the same ID — and hence the same
// derived seed — as an unset field, and any two Configs describing
// different workloads get distinct IDs (middleware profiles are keyed by
// Profile.Name; two custom profiles sharing a name collide). The Seed is
// deliberately excluded: the sweep runner derives each scenario's seed
// from this ID. Shards is excluded too — it selects the execution
// engine, not the workload, and results are byte-identical for every
// value, so folding it in would needlessly fork derived seeds.
func (c Config) ScenarioID() string {
	d := c
	d.applyDefaults()
	var def Config
	def.applyDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s/subs=%d/res=%d/cycles=%d/loss=%g", d.Solution, d.Subscribers, d.Resources, d.Cycles, d.LossRate)
	if d.ThinkTime != def.ThinkTime {
		fmt.Fprintf(&sb, "/think=%s", d.ThinkTime)
	}
	if d.HoldTime != def.HoldTime {
		fmt.Fprintf(&sb, "/hold=%s", d.HoldTime)
	}
	if d.PollInterval != def.PollInterval {
		fmt.Fprintf(&sb, "/poll=%s", d.PollInterval)
	}
	if d.TokenHopDelay != def.TokenHopDelay {
		fmt.Fprintf(&sb, "/hop=%s", d.TokenHopDelay)
	}
	if d.Latency != def.Latency {
		fmt.Fprintf(&sb, "/lat=%s", d.Latency)
	}
	if d.Deadline != def.Deadline {
		fmt.Fprintf(&sb, "/deadline=%s", d.Deadline)
	}
	if d.Profile.Name != def.Profile.Name {
		fmt.Fprintf(&sb, "/profile=%s", d.Profile.Name)
	}
	if d.RawTransport {
		sb.WriteString("/raw")
	}
	// Churn parameters ARE workload identity — unlike Shards, which only
	// selects the execution engine, a different crash rate or MTTR is a
	// different experiment and must fork the scenario ID (and hence the
	// derived seed and the fault schedule).
	if d.CrashRate > 0 {
		fmt.Fprintf(&sb, "/crash=%g/mttr=%s", d.CrashRate, d.MTTR)
		if d.RebindPolicy != RebindNone {
			fmt.Fprintf(&sb, "/rebind=%s", d.RebindPolicy)
		}
		if d.AcquireTimeout != time.Second {
			fmt.Fprintf(&sb, "/acqto=%s", d.AcquireTimeout)
		}
	}
	return sb.String()
}

// Params returns the workload parameters as labelled strings for sweep
// reporting (CSV columns, JSON fields).
func (c Config) Params() map[string]string {
	d := c
	d.applyDefaults()
	p := map[string]string{
		"solution":    d.Solution,
		"subscribers": fmt.Sprintf("%d", d.Subscribers),
		"resources":   fmt.Sprintf("%d", d.Resources),
		"cycles":      fmt.Sprintf("%d", d.Cycles),
		"loss":        fmt.Sprintf("%g", d.LossRate),
	}
	if d.CrashRate > 0 {
		p["crash_rate"] = fmt.Sprintf("%g", d.CrashRate)
		p["mttr"] = d.MTTR.String()
		p["rebind"] = d.RebindPolicy
	}
	return p
}

// Summary flattens the Result into named numeric measurements — the
// aggregation unit of a scenario sweep. Keys are stable; values are
// deterministic functions of the Config (never wall-clock).
func (r *Result) Summary() map[string]float64 {
	conforms := 1.0
	if r.ConformanceErr != nil {
		conforms = 0
	}
	m := map[string]float64{
		"completed":       float64(r.Completed),
		"expected":        float64(r.Expected),
		"net_msgs":        float64(r.NetMessages),
		"net_bytes":       float64(r.NetBytes),
		"paradigm_msgs":   float64(r.ParadigmMessages),
		"kernel_events":   float64(r.KernelEvents),
		"acquire_mean_us": float64(r.AcquireLatency.Mean()) / float64(time.Microsecond),
		"acquire_p95_us":  float64(r.AcquireLatency.P95()) / float64(time.Microsecond),
		"fairness":        r.FairnessIndex,
		"virtual_ms":      float64(r.VirtualDuration) / float64(time.Millisecond),
		"conforms":        conforms,
	}
	if r.Churn {
		safetyOK := 0.0
		if r.SafetyOK {
			safetyOK = 1
		}
		m["offered"] = float64(r.Offered)
		m["served"] = float64(r.Served)
		m["availability"] = r.Availability
		m["crashes"] = float64(r.Crashes)
		m["safety_ok"] = safetyOK
	}
	return m
}

// SummaryLine renders the one-line human-readable form of the Result used
// as a sweep scenario's text artifact.
func (r *Result) SummaryLine() string {
	conf := "conforms"
	if r.ConformanceErr != nil {
		conf = "VIOLATION: " + r.ConformanceErr.Error()
	}
	line := fmt.Sprintf("%s [%s/%s]: %d/%d cycles, %d net msgs, %d bytes, acquire mean %s p95 %s, fairness %.3f, %s",
		r.Solution, r.Paradigm, r.Style,
		r.Completed, r.Expected, r.NetMessages, r.NetBytes,
		r.AcquireLatency.Mean().Round(10*time.Microsecond),
		r.AcquireLatency.P95().Round(10*time.Microsecond),
		r.FairnessIndex, conf)
	if r.Churn {
		safety := "safety ok"
		if !r.SafetyOK {
			safety = fmt.Sprintf("SAFETY VIOLATIONS: %d", r.SafetyViolations)
		}
		line += fmt.Sprintf(", churn: %d/%d served (availability %.3f), %d crashes, %s",
			r.Served, r.Offered, r.Availability, r.Crashes, safety)
	}
	return line
}
