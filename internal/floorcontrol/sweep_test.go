package floorcontrol

import (
	"testing"
	"time"
)

func TestAllSolutionNamesResolve(t *testing.T) {
	names := AllSolutionNames()
	if len(names) != 10 {
		t.Fatalf("got %d solution names, want 10", len(names))
	}
	for _, name := range names {
		if _, ok := SolutionByName(name); !ok {
			t.Errorf("AllSolutionNames lists %q but SolutionByName cannot resolve it", name)
		}
	}
}

// TestScenarioIDDistinguishesWorkloads guards the sweep-key contract:
// Configs describing different workloads must never collide on one ID
// (they would share a derived seed and be rejected as duplicates), while
// an explicitly-set default must yield the same ID as an unset field.
func TestScenarioIDDistinguishesWorkloads(t *testing.T) {
	base := Config{Solution: "mw-polling"}
	variants := []Config{
		{Solution: "mw-polling", ThinkTime: 40 * time.Millisecond},
		{Solution: "mw-polling", HoldTime: 40 * time.Millisecond},
		{Solution: "mw-polling", PollInterval: 40 * time.Millisecond},
		{Solution: "mw-polling", TokenHopDelay: 40 * time.Millisecond},
		{Solution: "mw-polling", Latency: 40 * time.Millisecond},
		{Solution: "mw-polling", Deadline: time.Hour},
		{Solution: "mw-polling", RawTransport: true},
		{Solution: "mw-polling", Subscribers: 5},
		{Solution: "mw-polling", LossRate: 0.2},
	}
	seen := map[string]int{base.ScenarioID(): -1}
	for i, v := range variants {
		id := v.ScenarioID()
		if prev, dup := seen[id]; dup {
			t.Errorf("variant %d collides with %d on ID %q", i, prev, id)
		}
		seen[id] = i
	}

	// Explicitly setting a field to its default must not change the ID.
	explicit := Config{Solution: "mw-polling", PollInterval: 10 * time.Millisecond, Latency: time.Millisecond}
	if got, want := explicit.ScenarioID(), base.ScenarioID(); got != want {
		t.Errorf("explicit defaults changed the ID: %q vs %q", got, want)
	}

	// Seed must not leak into the ID: equal workloads under different
	// seeds are the same scenario.
	seeded := base
	seeded.Seed = 99
	if seeded.ScenarioID() != base.ScenarioID() {
		t.Error("Seed leaked into the scenario ID")
	}
	// Suffix forms as documented: base ID plus the deviating parameter.
	if got, want := variants[0].ScenarioID(), base.ScenarioID()+"/think=40ms"; got != want {
		t.Errorf("suffix form: got %q, want %q", got, want)
	}
}
