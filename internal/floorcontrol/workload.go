package floorcontrol

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/sim/shard"
)

// Config parameterizes one workload execution. Zero fields take the
// defaults below, so Config{Solution: "mw-callback"} is runnable.
type Config struct {
	// Solution names the implementation to exercise (see Solutions).
	Solution string
	// Subscribers and Resources size the deployment.
	Subscribers int
	Resources   int
	// Cycles is the number of acquire/hold/release rounds per subscriber.
	Cycles int
	// ThinkTime is the mean idle time between cycles; HoldTime the mean
	// time a granted resource is held. Both are jittered uniformly in
	// [0.5×, 1.5×].
	ThinkTime time.Duration
	HoldTime  time.Duration
	// PollInterval drives polling-style solutions; TokenHopDelay is the
	// per-hop forwarding delay of token-style solutions.
	PollInterval  time.Duration
	TokenHopDelay time.Duration
	// Latency and LossRate configure every network link.
	Latency  time.Duration
	LossRate float64
	// Seed fixes the simulation; equal seeds give identical runs.
	Seed int64
	// Deadline aborts a stuck run (virtual time). Liveness violations are
	// then reported by the conformance observer.
	Deadline time.Duration
	// Profile selects the middleware platform profile for middleware
	// solutions; defaults to ProfileCORBALike (the paper's "component
	// middleware that supports remote invocation").
	Profile middleware.Profile
	// Shards selects the execution engine: 0 or 1 runs the scenario on a
	// single sim kernel, K>1 shards the network across K kernels behind
	// the same Timebase seam (internal/sim/shard). Shards is an execution
	// parameter, not part of scenario identity: results are byte-identical
	// for every K, so it never appears in scenario IDs or sweep output.
	Shards int
	// CrashRate enables churn: each fault subject (every subscriber node,
	// plus the controller node of solutions that support failover) crashes
	// at this rate per second of virtual time, alternating with repairs of
	// mean duration MTTR. Zero disables the fault plan entirely — churn
	// parameters ARE workload identity (unlike Shards), so they appear in
	// scenario IDs and fold into derived seeds.
	CrashRate float64
	// MTTR is the mean time to repair a crashed node. Defaults to 100ms
	// when churn is enabled.
	MTTR time.Duration
	// RebindPolicy selects what happens when a failover-capable solution's
	// controller node crashes: RebindNone (default) waits out the repair,
	// RebindFailover live-rebinds the controller onto a standby node at
	// the crash instant.
	RebindPolicy string
	// AcquireTimeout bounds one acquire attempt under churn: a grant that
	// takes longer is charged as an availability loss (the cycle still
	// waits for the grant, returns the resource, and moves on, so the
	// coordination protocol never sees a cancelled acquire). Defaults to
	// 1s when churn is enabled.
	AcquireTimeout time.Duration
	// RawTransport, when true, runs the solution's substrate directly over
	// the unreliable datagram service instead of the reliable-datagram
	// layer. It is the Figure 8 experiment: swapping the interaction
	// system *below* the middleware/service boundary. Only sensible on
	// lossless links.
	RawTransport bool
}

func (c *Config) applyDefaults() {
	if c.Subscribers <= 0 {
		c.Subscribers = 3
	}
	if c.Resources <= 0 {
		c.Resources = 2
	}
	if c.Cycles <= 0 {
		c.Cycles = 5
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 20 * time.Millisecond
	}
	if c.HoldTime <= 0 {
		c.HoldTime = 10 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Millisecond
	}
	if c.TokenHopDelay <= 0 {
		c.TokenHopDelay = 2 * time.Millisecond
	}
	if c.Latency <= 0 {
		c.Latency = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Deadline <= 0 {
		c.Deadline = 5 * time.Minute
	}
	if c.Profile.Name == "" {
		c.Profile = middleware.ProfileCORBALike
	}
	if c.RebindPolicy == "" {
		c.RebindPolicy = RebindNone
	}
	if c.CrashRate > 0 {
		if c.MTTR <= 0 {
			c.MTTR = 100 * time.Millisecond
		}
		if c.AcquireTimeout <= 0 {
			c.AcquireTimeout = time.Second
		}
	}
}

// SubscriberNames returns the subscriber identifiers for a deployment of
// n: "s1".."sN".
func SubscriberNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%d", i+1)
	}
	return out
}

// ResourceNames returns the resource identifiers "r1".."rN".
func ResourceNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("r%d", i+1)
	}
	return out
}

// Result reports one workload execution.
type Result struct {
	Solution string
	Paradigm Paradigm
	Style    Style
	Figure   string

	// Completed counts finished acquire/hold/release cycles; Expected is
	// Subscribers × Cycles.
	Completed int
	Expected  int
	// AcquireLatency measures request→granted per cycle.
	AcquireLatency metrics.Histogram
	// LatencyBySubscriber holds each subscriber's own acquisition
	// histogram; FairnessIndex is Jain's index over the per-subscriber
	// mean latencies (1.0 = perfectly even service).
	LatencyBySubscriber map[string]*metrics.Histogram
	FairnessIndex       float64
	// VirtualDuration is the virtual time consumed until completion (or
	// deadline).
	VirtualDuration time.Duration
	// NetMessages/NetBytes count *everything* on the simulated wire,
	// including transport acks and retransmissions — the level playing
	// field across paradigms.
	NetMessages uint64
	NetBytes    uint64
	// ParadigmMessages counts messages at the paradigm's own level:
	// middleware wire messages, or application-protocol PDUs.
	ParadigmMessages uint64
	// KernelEvents is a platform-neutral proxy for computational work.
	KernelEvents uint64
	// ConformanceErr is the first service-constraint violation, nil for a
	// conforming run.
	ConformanceErr error
	// Trace is the recorded service trace (for offline LTS refinement).
	Trace core.Trace
	// Scattering is the structural Figure-7 metric for this deployment.
	Scattering Scattering

	// Churn reports whether the run executed under a fault plan; the
	// fields below are only populated then.
	Churn bool
	// Offered counts acquire attempts; Served counts grants that landed
	// within AcquireTimeout. Availability is Served/Offered (1 when
	// nothing was offered).
	Offered      int
	Served       int
	Availability float64
	// Crashes counts fault-plan crash events fired during the run.
	Crashes int
	// SafetyViolations counts conformance violations that are NOT
	// end-of-trace liveness misses: under churn, starvation is expected
	// (it is the availability loss being measured), but a safety
	// violation — a grant without request, two simultaneous holders —
	// means the recovery machinery corrupted the coordination. SafetyOK
	// is the gate the churn band enforces.
	SafetyViolations int
	SafetyOK         bool
}

// faultSeedSalt decorrelates the fault plan's RNG stream from the
// engine's, which is seeded with the same cfg.Seed.
const faultSeedSalt = 0x6661756c74 // "fault"

// scheduleChurn derives the deterministic fault plan for a churn run and
// schedules it on the network. Subjects are every subscriber node plus —
// only for solutions exposing ControllerFailover — the controller node:
// those solutions carry the asymmetric paradigm's single point of
// failure along with recovery machinery to survive losing it, while
// protocol and MDA solutions keep their coordination behind the service
// boundary with no per-solution recovery hook, so only their subscriber
// nodes churn. The plan is drawn from a salted RNG independent of the
// engine and of shard count, so churn runs stay byte-identical for
// every K.
func scheduleChurn(cfg Config, sol Solution, env *Env, res *Result,
	transport protocol.LowerService, crashedSub map[string]bool, parked map[string]func()) error {
	rb, rebindable := sol.(ControllerFailover)
	subjects := append([]string(nil), env.Subscribers...)
	var ctrlHome middleware.Addr
	if rebindable {
		ctrlHome = rb.ControllerNode()
		subjects = append(subjects, string(ctrlHome))
	}
	if env.Platform != nil {
		// Pure-client nodes (e.g. polling subscribers, which export no
		// callback object) attach lazily on their first call — after the
		// fault plan is scheduled. The plan may only reference nodes the
		// network knows, so attach every subject now.
		for _, s := range subjects {
			if err := env.Platform.AttachNode(middleware.Addr(s)); err != nil {
				return fmt.Errorf("floorcontrol: attach fault subject %q: %w", s, err)
			}
		}
	}
	spec := fault.Spec{CrashRate: cfg.CrashRate, MTTR: cfg.MTTR, Horizon: cfg.Deadline}
	rng := rand.New(rand.NewSource(cfg.Seed ^ faultSeedSalt))
	events, err := fault.Schedule(spec, subjects, rng)
	if err != nil {
		return fmt.Errorf("floorcontrol: fault schedule: %w", err)
	}
	rdp, _ := transport.(*protocol.ReliableDatagram)
	isSub := make(map[string]bool, len(env.Subscribers))
	for _, s := range env.Subscribers {
		isSub[s] = true
	}
	plan := &network.FaultPlan{
		Events: events,
		OnCrash: func(id network.NodeID) {
			name := string(id)
			res.Crashes++
			if env.Platform != nil {
				env.Platform.NodeDown(middleware.Addr(name))
			}
			if isSub[name] {
				crashedSub[name] = true
			}
			if rebindable && cfg.RebindPolicy == RebindFailover && middleware.Addr(name) == ctrlHome {
				// Live rebinding at the crash instant: the controller
				// component moves to the standby node, which is never a
				// fault subject, so the coordinator stays reachable for
				// the rest of the run.
				if err := rb.Failover(ctrlStandby); err != nil {
					panic(fmt.Sprintf("floorcontrol: failover to %q: %v", ctrlStandby, err))
				}
				ctrlHome = ctrlStandby
			}
		},
		OnRestart: func(id network.NodeID) {
			name := string(id)
			if rdp != nil {
				// Tear down transport flows of the old incarnation: stale
				// retransmit timers and half-open flows must not leak into
				// the restarted node's traffic.
				rdp.NoteRestart(protocol.Addr(name))
			}
			if env.Platform != nil {
				env.Platform.NodeUp(middleware.Addr(name))
			}
			if crashedSub[name] {
				delete(crashedSub, name)
				if k := parked[name]; k != nil {
					delete(parked, name)
					k()
				}
			}
		},
	}
	if err := env.Net.ScheduleFaultPlan(plan); err != nil {
		return fmt.Errorf("floorcontrol: fault plan: %w", err)
	}
	return nil
}

// RunWorkload executes the named solution under the configured workload
// and returns measurements. The run is deterministic in Config.
func RunWorkload(cfg Config) (*Result, error) {
	sol, ok := SolutionByName(cfg.Solution)
	if !ok {
		return nil, fmt.Errorf("floorcontrol: unknown solution %q", cfg.Solution)
	}
	return RunWorkloadWith(sol, cfg)
}

// RunWorkloadWith is RunWorkload for a caller-supplied Solution instance —
// useful when the caller needs to introspect the solution after the run
// (e.g. an MDASolution's deployment).
func RunWorkloadWith(sol Solution, cfg Config) (*Result, error) {
	cfg.applyDefaults()

	var engine sim.Engine = sim.NewKernel(sim.WithSeed(cfg.Seed))
	if cfg.Shards > 1 {
		engine = shard.NewGroup(cfg.Shards, shard.WithSeed(cfg.Seed))
	}
	net := network.New(engine, network.WithDefaultLink(network.LinkConfig{
		Latency:  cfg.Latency,
		LossRate: cfg.LossRate,
	}))
	observer, err := core.NewObserver(Spec(), engine)
	if err != nil {
		return nil, fmt.Errorf("floorcontrol: observer: %w", err)
	}

	churn := cfg.CrashRate > 0
	if churn && cfg.RebindPolicy != RebindNone && cfg.RebindPolicy != RebindFailover {
		return nil, fmt.Errorf("floorcontrol: unknown rebind policy %q", cfg.RebindPolicy)
	}

	env := &Env{
		Time:          engine,
		Net:           net,
		Observer:      observer,
		Subscribers:   SubscriberNames(cfg.Subscribers),
		Resources:     ResourceNames(cfg.Resources),
		PollInterval:  cfg.PollInterval,
		TokenHopDelay: cfg.TokenHopDelay,
		Churn:         churn,
	}
	var transport protocol.LowerService = protocol.NewReliableDatagram(engine, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{})
	if cfg.RawTransport {
		transport = protocol.NewUnreliableDatagram(net)
	}
	switch sol.Paradigm() {
	case ParadigmMiddleware:
		env.Platform = middleware.New(engine, transport, cfg.Profile, "mw-broker")
	case ParadigmProtocol, ParadigmMDA:
		env.Lower = transport
	}

	parts, err := sol.Build(env)
	if err != nil {
		return nil, fmt.Errorf("floorcontrol: build %s: %w", sol.Name(), err)
	}

	res := &Result{
		Solution:            sol.Name(),
		Paradigm:            sol.Paradigm(),
		Style:               sol.Style(),
		Figure:              sol.Figure(),
		Expected:            cfg.Subscribers * cfg.Cycles,
		Scattering:          sol.Scattering(cfg.Subscribers),
		LatencyBySubscriber: make(map[string]*metrics.Histogram, cfg.Subscribers),
	}
	for _, sub := range env.Subscribers {
		res.LatencyBySubscriber[sub] = &metrics.Histogram{}
	}

	// jitter returns d scaled uniformly into [0.5d, 1.5d).
	jitter := func(d time.Duration) time.Duration {
		if d <= 0 {
			return 0
		}
		return d/2 + time.Duration(engine.Rand().Int63n(int64(d)))
	}

	// Frozen-node discipline: while a subscriber's node is crashed, its
	// driver does nothing — a dead process neither acquires nor releases.
	// The (at most one, the driver is sequential per subscriber) driver
	// continuation that fires during the outage is parked and resumes at
	// the restart instant. Both maps stay empty fault-free.
	crashedSub := make(map[string]bool, cfg.Subscribers)
	parked := make(map[string]func(), cfg.Subscribers)
	step := func(sub string, fn func()) {
		if crashedSub[sub] {
			parked[sub] = fn
			return
		}
		fn()
	}

	remaining := res.Expected
	var runCycle func(sub string, part AppPart, cycle int)
	advance := func(sub string, part AppPart, cycle int) {
		remaining--
		if remaining == 0 {
			engine.Stop()
		} else if cycle+1 < cfg.Cycles {
			runCycle(sub, part, cycle+1)
		}
	}
	runCycle = func(sub string, part AppPart, cycle int) {
		engine.ScheduleFunc(jitter(cfg.ThinkTime), func() {
			step(sub, func() {
				target := env.Resources[engine.Rand().Intn(len(env.Resources))]
				start := engine.Now()
				if churn {
					res.Offered++
				}
				granted, timedOut := false, false
				part.Acquire(target, func() {
					if granted {
						return
					}
					granted = true
					if timedOut {
						// The grant outlived the acquire deadline; the cycle
						// was already charged as an availability loss. Return
						// the resource immediately and move on — the driver
						// never abandons an acquire, so every solution keeps
						// its one-outstanding-acquire invariant.
						step(sub, func() {
							part.Release(target)
							advance(sub, part, cycle)
						})
						return
					}
					elapsed := engine.Now() - start
					if churn {
						res.Served++
					}
					res.AcquireLatency.Add(elapsed)
					res.LatencyBySubscriber[sub].Add(elapsed)
					engine.ScheduleFunc(jitter(cfg.HoldTime), func() {
						step(sub, func() {
							part.Release(target)
							res.Completed++
							advance(sub, part, cycle)
						})
					})
				})
				if churn {
					engine.ScheduleFunc(cfg.AcquireTimeout, func() {
						if !granted {
							timedOut = true
						}
					})
				}
			})
		})
	}
	for _, sub := range env.Subscribers {
		part, ok := parts[sub]
		if !ok {
			return nil, fmt.Errorf("floorcontrol: %s built no app part for %q", sol.Name(), sub)
		}
		runCycle(sub, part, 0)
	}
	engine.ScheduleFunc(cfg.Deadline, func() { engine.Stop() })

	if churn {
		if err := scheduleChurn(cfg, sol, env, res, transport, crashedSub, parked); err != nil {
			return nil, err
		}
	}

	if _, err := engine.Run(); err != nil && !errors.Is(err, sim.ErrStopped) {
		return nil, fmt.Errorf("floorcontrol: run %s: %w", sol.Name(), err)
	}

	res.VirtualDuration = engine.Now()
	res.KernelEvents = engine.Executed()
	st := net.Stats()
	res.NetMessages = st.Sent
	res.NetBytes = st.BytesSent
	switch {
	case env.Layer != nil:
		res.ParadigmMessages = env.Layer.Stats().PDUsSent
	case env.Platform != nil:
		res.ParadigmMessages = env.Platform.Stats().WireMessages
	}
	res.ConformanceErr = observer.Complete()
	res.Trace = observer.Trace()
	if churn {
		res.Churn = true
		// Liveness misses (end-of-trace violations, Event == nil) are the
		// availability loss churn measures; anything else — a violation
		// anchored at a trace event, or a non-violation error — is a
		// safety breach the recovery machinery must never produce.
		for _, v := range observer.Violations() {
			if ve, ok := core.AsViolation(v); !ok || ve.Event != nil {
				res.SafetyViolations++
			}
		}
		res.SafetyOK = res.SafetyViolations == 0
		res.Availability = 1
		if res.Offered > 0 {
			res.Availability = float64(res.Served) / float64(res.Offered)
		}
	}
	// Collect means in deployment order, not map order: float addition is
	// not associative, so Jain's index would otherwise wobble at the last
	// ulp from run to run.
	means := make([]float64, 0, len(res.LatencyBySubscriber))
	for _, sub := range env.Subscribers {
		means = append(means, float64(res.LatencyBySubscriber[sub].Mean()))
	}
	res.FairnessIndex = metrics.Jain(means)
	return res, nil
}
