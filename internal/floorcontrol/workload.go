package floorcontrol

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/middleware"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/sim/shard"
)

// Config parameterizes one workload execution. Zero fields take the
// defaults below, so Config{Solution: "mw-callback"} is runnable.
type Config struct {
	// Solution names the implementation to exercise (see Solutions).
	Solution string
	// Subscribers and Resources size the deployment.
	Subscribers int
	Resources   int
	// Cycles is the number of acquire/hold/release rounds per subscriber.
	Cycles int
	// ThinkTime is the mean idle time between cycles; HoldTime the mean
	// time a granted resource is held. Both are jittered uniformly in
	// [0.5×, 1.5×].
	ThinkTime time.Duration
	HoldTime  time.Duration
	// PollInterval drives polling-style solutions; TokenHopDelay is the
	// per-hop forwarding delay of token-style solutions.
	PollInterval  time.Duration
	TokenHopDelay time.Duration
	// Latency and LossRate configure every network link.
	Latency  time.Duration
	LossRate float64
	// Seed fixes the simulation; equal seeds give identical runs.
	Seed int64
	// Deadline aborts a stuck run (virtual time). Liveness violations are
	// then reported by the conformance observer.
	Deadline time.Duration
	// Profile selects the middleware platform profile for middleware
	// solutions; defaults to ProfileCORBALike (the paper's "component
	// middleware that supports remote invocation").
	Profile middleware.Profile
	// Shards selects the execution engine: 0 or 1 runs the scenario on a
	// single sim kernel, K>1 shards the network across K kernels behind
	// the same Timebase seam (internal/sim/shard). Shards is an execution
	// parameter, not part of scenario identity: results are byte-identical
	// for every K, so it never appears in scenario IDs or sweep output.
	Shards int
	// RawTransport, when true, runs the solution's substrate directly over
	// the unreliable datagram service instead of the reliable-datagram
	// layer. It is the Figure 8 experiment: swapping the interaction
	// system *below* the middleware/service boundary. Only sensible on
	// lossless links.
	RawTransport bool
}

func (c *Config) applyDefaults() {
	if c.Subscribers <= 0 {
		c.Subscribers = 3
	}
	if c.Resources <= 0 {
		c.Resources = 2
	}
	if c.Cycles <= 0 {
		c.Cycles = 5
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 20 * time.Millisecond
	}
	if c.HoldTime <= 0 {
		c.HoldTime = 10 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Millisecond
	}
	if c.TokenHopDelay <= 0 {
		c.TokenHopDelay = 2 * time.Millisecond
	}
	if c.Latency <= 0 {
		c.Latency = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Deadline <= 0 {
		c.Deadline = 5 * time.Minute
	}
	if c.Profile.Name == "" {
		c.Profile = middleware.ProfileCORBALike
	}
}

// SubscriberNames returns the subscriber identifiers for a deployment of
// n: "s1".."sN".
func SubscriberNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%d", i+1)
	}
	return out
}

// ResourceNames returns the resource identifiers "r1".."rN".
func ResourceNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("r%d", i+1)
	}
	return out
}

// Result reports one workload execution.
type Result struct {
	Solution string
	Paradigm Paradigm
	Style    Style
	Figure   string

	// Completed counts finished acquire/hold/release cycles; Expected is
	// Subscribers × Cycles.
	Completed int
	Expected  int
	// AcquireLatency measures request→granted per cycle.
	AcquireLatency metrics.Histogram
	// LatencyBySubscriber holds each subscriber's own acquisition
	// histogram; FairnessIndex is Jain's index over the per-subscriber
	// mean latencies (1.0 = perfectly even service).
	LatencyBySubscriber map[string]*metrics.Histogram
	FairnessIndex       float64
	// VirtualDuration is the virtual time consumed until completion (or
	// deadline).
	VirtualDuration time.Duration
	// NetMessages/NetBytes count *everything* on the simulated wire,
	// including transport acks and retransmissions — the level playing
	// field across paradigms.
	NetMessages uint64
	NetBytes    uint64
	// ParadigmMessages counts messages at the paradigm's own level:
	// middleware wire messages, or application-protocol PDUs.
	ParadigmMessages uint64
	// KernelEvents is a platform-neutral proxy for computational work.
	KernelEvents uint64
	// ConformanceErr is the first service-constraint violation, nil for a
	// conforming run.
	ConformanceErr error
	// Trace is the recorded service trace (for offline LTS refinement).
	Trace core.Trace
	// Scattering is the structural Figure-7 metric for this deployment.
	Scattering Scattering
}

// RunWorkload executes the named solution under the configured workload
// and returns measurements. The run is deterministic in Config.
func RunWorkload(cfg Config) (*Result, error) {
	sol, ok := SolutionByName(cfg.Solution)
	if !ok {
		return nil, fmt.Errorf("floorcontrol: unknown solution %q", cfg.Solution)
	}
	return RunWorkloadWith(sol, cfg)
}

// RunWorkloadWith is RunWorkload for a caller-supplied Solution instance —
// useful when the caller needs to introspect the solution after the run
// (e.g. an MDASolution's deployment).
func RunWorkloadWith(sol Solution, cfg Config) (*Result, error) {
	cfg.applyDefaults()

	var engine sim.Engine = sim.NewKernel(sim.WithSeed(cfg.Seed))
	if cfg.Shards > 1 {
		engine = shard.NewGroup(cfg.Shards, shard.WithSeed(cfg.Seed))
	}
	net := network.New(engine, network.WithDefaultLink(network.LinkConfig{
		Latency:  cfg.Latency,
		LossRate: cfg.LossRate,
	}))
	observer, err := core.NewObserver(Spec(), engine)
	if err != nil {
		return nil, fmt.Errorf("floorcontrol: observer: %w", err)
	}

	env := &Env{
		Time:          engine,
		Net:           net,
		Observer:      observer,
		Subscribers:   SubscriberNames(cfg.Subscribers),
		Resources:     ResourceNames(cfg.Resources),
		PollInterval:  cfg.PollInterval,
		TokenHopDelay: cfg.TokenHopDelay,
	}
	var transport protocol.LowerService = protocol.NewReliableDatagram(engine, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{})
	if cfg.RawTransport {
		transport = protocol.NewUnreliableDatagram(net)
	}
	switch sol.Paradigm() {
	case ParadigmMiddleware:
		env.Platform = middleware.New(engine, transport, cfg.Profile, "mw-broker")
	case ParadigmProtocol, ParadigmMDA:
		env.Lower = transport
	}

	parts, err := sol.Build(env)
	if err != nil {
		return nil, fmt.Errorf("floorcontrol: build %s: %w", sol.Name(), err)
	}

	res := &Result{
		Solution:            sol.Name(),
		Paradigm:            sol.Paradigm(),
		Style:               sol.Style(),
		Figure:              sol.Figure(),
		Expected:            cfg.Subscribers * cfg.Cycles,
		Scattering:          sol.Scattering(cfg.Subscribers),
		LatencyBySubscriber: make(map[string]*metrics.Histogram, cfg.Subscribers),
	}
	for _, sub := range env.Subscribers {
		res.LatencyBySubscriber[sub] = &metrics.Histogram{}
	}

	// jitter returns d scaled uniformly into [0.5d, 1.5d).
	jitter := func(d time.Duration) time.Duration {
		if d <= 0 {
			return 0
		}
		return d/2 + time.Duration(engine.Rand().Int63n(int64(d)))
	}

	remaining := res.Expected
	var runCycle func(sub string, part AppPart, cycle int)
	runCycle = func(sub string, part AppPart, cycle int) {
		engine.ScheduleFunc(jitter(cfg.ThinkTime), func() {
			target := env.Resources[engine.Rand().Intn(len(env.Resources))]
			start := engine.Now()
			part.Acquire(target, func() {
				elapsed := engine.Now() - start
				res.AcquireLatency.Add(elapsed)
				res.LatencyBySubscriber[sub].Add(elapsed)
				engine.ScheduleFunc(jitter(cfg.HoldTime), func() {
					part.Release(target)
					res.Completed++
					remaining--
					if remaining == 0 {
						engine.Stop()
					} else if cycle+1 < cfg.Cycles {
						runCycle(sub, part, cycle+1)
					}
				})
			})
		})
	}
	for _, sub := range env.Subscribers {
		part, ok := parts[sub]
		if !ok {
			return nil, fmt.Errorf("floorcontrol: %s built no app part for %q", sol.Name(), sub)
		}
		runCycle(sub, part, 0)
	}
	engine.ScheduleFunc(cfg.Deadline, func() { engine.Stop() })

	if _, err := engine.Run(); err != nil && !errors.Is(err, sim.ErrStopped) {
		return nil, fmt.Errorf("floorcontrol: run %s: %w", sol.Name(), err)
	}

	res.VirtualDuration = engine.Now()
	res.KernelEvents = engine.Executed()
	st := net.Stats()
	res.NetMessages = st.Sent
	res.NetBytes = st.BytesSent
	switch {
	case env.Layer != nil:
		res.ParadigmMessages = env.Layer.Stats().PDUsSent
	case env.Platform != nil:
		res.ParadigmMessages = env.Platform.Stats().WireMessages
	}
	res.ConformanceErr = observer.Complete()
	res.Trace = observer.Trace()
	// Collect means in deployment order, not map order: float addition is
	// not associative, so Jain's index would otherwise wobble at the last
	// ulp from run to run.
	means := make([]float64, 0, len(res.LatencyBySubscriber))
	for _, sub := range env.Subscribers {
		means = append(means, float64(res.LatencyBySubscriber[sub].Mean()))
	}
	res.FairnessIndex = metrics.Jain(means)
	return res, nil
}
