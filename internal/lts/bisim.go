package lts

import (
	"fmt"
	"sort"
	"strings"
)

// Bisimilar checks strong bisimilarity of the initial states of a and b
// by partition refinement over the disjoint union. Strong bisimulation
// treats tau like any other label; use Hide + Determinize + TraceRefines
// for weak (trace) comparisons.
func Bisimilar(a, b *LTS) bool {
	// Disjoint union: states of a keep their index, states of b are
	// shifted by a.NumStates().
	offset := a.NumStates()
	total := offset + b.NumStates()
	out := make([][]Transition, total)
	for s := 0; s < a.NumStates(); s++ {
		out[s] = a.out[s]
	}
	for s := 0; s < b.NumStates(); s++ {
		ts := make([]Transition, len(b.out[s]))
		for i, tr := range b.out[s] {
			ts[i] = Transition{Label: tr.Label, To: tr.To + State(offset)}
		}
		out[offset+s] = ts
	}
	classes := partitionRefine(total, out)
	return classes[a.initial] == classes[int(b.initial)+offset]
}

// partitionRefine computes the coarsest strong-bisimulation partition,
// returning a class index per state.
func partitionRefine(n int, out [][]Transition) []int {
	classes := make([]int, n)
	for {
		// Signature of a state: sorted multiset of (label, class of
		// successor). Use a set (not multiset): bisimulation cares about
		// reachability per class, not edge multiplicity.
		sigs := make([]string, n)
		for s := 0; s < n; s++ {
			set := make(map[string]struct{}, len(out[s]))
			for _, tr := range out[s] {
				set[tr.Label+"→"+fmt.Sprintf("%d", classes[tr.To])] = struct{}{}
			}
			parts := make([]string, 0, len(set))
			for k := range set {
				parts = append(parts, k)
			}
			sort.Strings(parts)
			sigs[s] = fmt.Sprintf("%d|%s", classes[s], strings.Join(parts, ";"))
		}
		next := make(map[string]int)
		newClasses := make([]int, n)
		for s := 0; s < n; s++ {
			id, ok := next[sigs[s]]
			if !ok {
				id = len(next)
				next[sigs[s]] = id
			}
			newClasses[s] = id
		}
		same := true
		for s := 0; s < n; s++ {
			if newClasses[s] != classes[s] {
				same = false
				break
			}
		}
		classes = newClasses
		if same {
			return classes
		}
	}
}

// Minimize returns the bisimulation quotient of l: the smallest LTS
// strongly bisimilar to it. State names are the sorted member names of
// each class.
func (l *LTS) Minimize() *LTS {
	classes := partitionRefine(l.NumStates(), l.out)
	members := make(map[int][]string)
	for s := 0; s < l.NumStates(); s++ {
		members[classes[s]] = append(members[classes[s]], l.names[s])
	}
	b := NewBuilder(l.name + " (min)")
	className := func(c int) string {
		names := members[c]
		sort.Strings(names)
		return "{" + strings.Join(names, ",") + "}"
	}
	// Create the initial class first so it becomes the initial state.
	created := map[int]State{}
	order := []int{classes[l.initial]}
	for s := 0; s < l.NumStates(); s++ {
		order = append(order, classes[s])
	}
	for _, c := range order {
		if _, ok := created[c]; !ok {
			created[c] = b.State(className(c))
		}
	}
	type edge struct {
		from  State
		label string
		to    State
	}
	seen := make(map[edge]struct{})
	for s := 0; s < l.NumStates(); s++ {
		from := created[classes[s]]
		for _, tr := range l.out[s] {
			e := edge{from, tr.Label, created[classes[tr.To]]}
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			b.Transition(e.from, e.label, e.to)
		}
	}
	for s := range l.final {
		b.Final(created[classes[s]])
	}
	return b.MustBuild()
}

// DOT renders the LTS in Graphviz dot format for visualization.
func (l *LTS) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", l.name)
	fmt.Fprintf(&sb, "  __start [shape=point];\n")
	for s := range l.names {
		shape := "circle"
		if _, ok := l.final[State(s)]; ok {
			shape = "doublecircle"
		}
		fmt.Fprintf(&sb, "  s%d [label=%q, shape=%s];\n", s, l.names[s], shape)
	}
	fmt.Fprintf(&sb, "  __start -> s%d;\n", int(l.initial))
	for s, ts := range l.out {
		for _, tr := range ts {
			fmt.Fprintf(&sb, "  s%d -> s%d [label=%q];\n", s, int(tr.To), tr.Label)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
