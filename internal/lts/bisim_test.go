package lts

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBisimilarIdentical(t *testing.T) {
	if !Bisimilar(simpleSpec(), simpleSpec()) {
		t.Fatal("identical systems not bisimilar")
	}
}

func TestBisimilarUnrolledCycle(t *testing.T) {
	// One cycle vs the same cycle unrolled twice: strongly bisimilar.
	b := NewBuilder("unrolled")
	s0 := b.State("0")
	s1 := b.State("1")
	s2 := b.State("2")
	s3 := b.State("3")
	s4 := b.State("4")
	s5 := b.State("5")
	b.Transition(s0, "request", s1)
	b.Transition(s1, "granted", s2)
	b.Transition(s2, "free", s3)
	b.Transition(s3, "request", s4)
	b.Transition(s4, "granted", s5)
	b.Transition(s5, "free", s0)
	if !Bisimilar(simpleSpec(), b.MustBuild()) {
		t.Fatal("unrolled cycle should be bisimilar to the cycle")
	}
}

func TestNotBisimilarClassicExample(t *testing.T) {
	// a.(b+c) vs a.b + a.c: trace equivalent but NOT bisimilar — the
	// classic distinguishing example.
	left := NewBuilder("a.(b+c)")
	l0 := left.State("0")
	l1 := left.State("1")
	l2 := left.State("2")
	left.Transition(l0, "a", l1)
	left.Transition(l1, "b", l2)
	left.Transition(l1, "c", l2)
	right := NewBuilder("a.b+a.c")
	r0 := right.State("0")
	r1 := right.State("1")
	r2 := right.State("2")
	r3 := right.State("3")
	right.Transition(r0, "a", r1)
	right.Transition(r0, "a", r2)
	right.Transition(r1, "b", r3)
	right.Transition(r2, "c", r3)
	ll, rr := left.MustBuild(), right.MustBuild()
	if Bisimilar(ll, rr) {
		t.Fatal("a.(b+c) and a.b+a.c must not be strongly bisimilar")
	}
	// But they ARE trace equivalent.
	if !TraceRefines(ll, rr).Holds || !TraceRefines(rr, ll).Holds {
		t.Fatal("the classic pair should be trace equivalent")
	}
}

func TestNotBisimilarDifferentLabels(t *testing.T) {
	a := NewBuilder("a")
	a0 := a.State("0")
	a1 := a.State("1")
	a.Transition(a0, "x", a1)
	b := NewBuilder("b")
	b0 := b.State("0")
	b1 := b.State("1")
	b.Transition(b0, "y", b1)
	if Bisimilar(a.MustBuild(), b.MustBuild()) {
		t.Fatal("different labels cannot be bisimilar")
	}
}

func TestMinimizeCollapsesEquivalentStates(t *testing.T) {
	// Two parallel equivalent branches collapse to one.
	b := NewBuilder("dup")
	s0 := b.State("0")
	p := b.State("p")
	q := b.State("q")
	end := b.State("end")
	b.Transition(s0, "a", p)
	b.Transition(s0, "a", q)
	b.Transition(p, "b", end)
	b.Transition(q, "b", end)
	b.Final(end)
	l := b.MustBuild()
	min := l.Minimize()
	if min.NumStates() != 3 {
		t.Fatalf("minimized to %d states, want 3:\n%s", min.NumStates(), min)
	}
	if !Bisimilar(l, min) {
		t.Fatal("minimization broke bisimilarity")
	}
	if len(min.Deadlocks()) != 0 {
		t.Fatal("final marking lost in minimization")
	}
}

func TestMinimizeServiceLTSIdempotent(t *testing.T) {
	l := simpleSpec()
	min := l.Minimize()
	if !Bisimilar(l, min) {
		t.Fatal("quotient not bisimilar to original")
	}
	again := min.Minimize()
	if again.NumStates() != min.NumStates() {
		t.Fatalf("minimize not idempotent: %d then %d states", min.NumStates(), again.NumStates())
	}
}

func TestDOT(t *testing.T) {
	dot := simpleSpec().DOT()
	for _, want := range []string{"digraph", "rankdir=LR", `label="request"`, "doublecircle", "__start -> s0"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// Property: every LTS is bisimilar to itself and to its own quotient, and
// the quotient never has more states.
func TestPropertyMinimizeSound(t *testing.T) {
	prop := func(edges []struct {
		From, To uint8
		Label    uint8
	}) bool {
		if len(edges) == 0 {
			return true
		}
		b := NewBuilder("rand")
		labels := []string{"a", "b", "c"}
		for _, e := range edges {
			from := b.State(string(rune('A' + e.From%6)))
			to := b.State(string(rune('A' + e.To%6)))
			b.Transition(from, labels[e.Label%3], to)
		}
		l := b.MustBuild()
		min := l.Minimize()
		return min.NumStates() <= l.NumStates() && Bisimilar(l, min) && Bisimilar(l, l)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
