// Package lts implements labelled transition systems: the formal substrate
// the paper calls for in its conclusions ("a formal basis to develop
// techniques for testing or proving the correctness of service designs").
//
// A service specification induces an LTS over service-primitive labels; a
// protocol or middleware solution, executed in simulation, produces traces
// over the same labels. Conformance is trace inclusion: every visible trace
// of the implementation must be a trace of the service. The package
// provides construction, tau-abstraction, determinization, parallel
// composition, bounded trace enumeration, deadlock detection and a
// trace-refinement check with counterexample extraction.
package lts

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Tau is the invisible (internal) action label. Tau transitions are
// skipped by trace semantics.
const Tau = "τ"

// ErrNoStates is returned when an operation requires a non-empty LTS.
var ErrNoStates = errors.New("lts: system has no states")

// State identifies a state within one LTS. States are dense indices
// assigned by the builder.
type State int

// Transition is a labelled edge.
type Transition struct {
	Label string
	To    State
}

// LTS is an immutable labelled transition system. Build one with Builder.
type LTS struct {
	name    string
	initial State
	names   []string           // state index → display name
	out     [][]Transition     // state index → ordered transitions
	final   map[State]struct{} // states where termination is acceptable
}

// Builder constructs an LTS incrementally. The zero value is ready to use.
type Builder struct {
	name   string
	names  []string
	out    [][]Transition
	final  map[State]struct{}
	byName map[string]State
}

// NewBuilder returns a builder for a system with the given display name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		final:  make(map[State]struct{}),
		byName: make(map[string]State),
	}
}

// State returns the state with the given display name, creating it on first
// use. The first state ever created is the initial state.
func (b *Builder) State(name string) State {
	if s, ok := b.byName[name]; ok {
		return s
	}
	s := State(len(b.names))
	b.names = append(b.names, name)
	b.out = append(b.out, nil)
	b.byName[name] = s
	return s
}

// Transition adds an edge from → to with the given label.
func (b *Builder) Transition(from State, label string, to State) {
	b.out[from] = append(b.out[from], Transition{Label: label, To: to})
}

// Final marks a state as an acceptable termination point; Deadlocks will
// not report it.
func (b *Builder) Final(s State) { b.final[s] = struct{}{} }

// Build freezes the builder into an immutable LTS. It returns ErrNoStates
// for an empty builder.
func (b *Builder) Build() (*LTS, error) {
	if len(b.names) == 0 {
		return nil, ErrNoStates
	}
	out := make([][]Transition, len(b.out))
	for i, ts := range b.out {
		out[i] = append([]Transition(nil), ts...)
	}
	final := make(map[State]struct{}, len(b.final))
	for s := range b.final {
		final[s] = struct{}{}
	}
	return &LTS{name: b.name, initial: 0, names: append([]string(nil), b.names...), out: out, final: final}, nil
}

// MustBuild is Build for statically correct construction; it panics on
// error.
func (b *Builder) MustBuild() *LTS {
	l, err := b.Build()
	if err != nil {
		panic(err)
	}
	return l
}

// Name returns the display name of the system.
func (l *LTS) Name() string { return l.name }

// Initial returns the initial state.
func (l *LTS) Initial() State { return l.initial }

// NumStates returns the number of states.
func (l *LTS) NumStates() int { return len(l.names) }

// NumTransitions returns the number of edges.
func (l *LTS) NumTransitions() int {
	n := 0
	for _, ts := range l.out {
		n += len(ts)
	}
	return n
}

// StateName returns the display name of a state.
func (l *LTS) StateName(s State) string {
	if int(s) < 0 || int(s) >= len(l.names) {
		return fmt.Sprintf("<invalid state %d>", int(s))
	}
	return l.names[s]
}

// Outgoing returns a copy of a state's transitions.
func (l *LTS) Outgoing(s State) []Transition {
	if int(s) < 0 || int(s) >= len(l.out) {
		return nil
	}
	return append([]Transition(nil), l.out[s]...)
}

// Alphabet returns the sorted set of visible (non-tau) labels.
func (l *LTS) Alphabet() []string {
	set := make(map[string]struct{})
	for _, ts := range l.out {
		for _, tr := range ts {
			if tr.Label != Tau {
				set[tr.Label] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for lab := range set {
		out = append(out, lab)
	}
	sort.Strings(out)
	return out
}

// tauClosure expands a state set with everything reachable via tau
// transitions. The result is sorted and deduplicated.
func (l *LTS) tauClosure(states []State) []State {
	seen := make(map[State]struct{}, len(states))
	stack := append([]State(nil), states...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		for _, tr := range l.out[s] {
			if tr.Label == Tau {
				stack = append(stack, tr.To)
			}
		}
	}
	out := make([]State, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// after returns the tau-closed state set reached from set by one visible
// label. Tau is not a visible label and yields no successor set.
func (l *LTS) after(set []State, label string) []State {
	if label == Tau {
		return nil
	}
	var next []State
	for _, s := range set {
		for _, tr := range l.out[s] {
			if tr.Label == label {
				next = append(next, tr.To)
			}
		}
	}
	if len(next) == 0 {
		return nil
	}
	return l.tauClosure(next)
}

// Accepts reports whether trace (a sequence of visible labels) is a trace
// of l, i.e. whether some run of l exhibits it modulo tau.
func (l *LTS) Accepts(trace []string) bool {
	set := l.tauClosure([]State{l.initial})
	for _, label := range trace {
		set = l.after(set, label)
		if len(set) == 0 {
			return false
		}
	}
	return true
}

// Traces enumerates all visible traces of length <= maxLen, lexicographically
// sorted and deduplicated. It is intended for small specification systems;
// the result size is bounded by maxTraces to stay safe on cyclic systems.
func (l *LTS) Traces(maxLen, maxTraces int) [][]string {
	type node struct {
		set   []State
		trace []string
	}
	seen := make(map[string]struct{})
	var out [][]string
	queue := []node{{set: l.tauClosure([]State{l.initial})}}
	record := func(tr []string) bool {
		key := strings.Join(tr, "\x00")
		if _, ok := seen[key]; ok {
			return true
		}
		seen[key] = struct{}{}
		out = append(out, append([]string(nil), tr...))
		return len(out) < maxTraces
	}
	if !record(nil) {
		return out
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if len(n.trace) >= maxLen {
			continue
		}
		labels := make(map[string]struct{})
		for _, s := range n.set {
			for _, tr := range l.out[s] {
				if tr.Label != Tau {
					labels[tr.Label] = struct{}{}
				}
			}
		}
		sorted := make([]string, 0, len(labels))
		for lab := range labels {
			sorted = append(sorted, lab)
		}
		sort.Strings(sorted)
		for _, lab := range sorted {
			next := l.after(n.set, lab)
			tr := append(append([]string(nil), n.trace...), lab)
			if !record(tr) {
				return out
			}
			queue = append(queue, node{set: next, trace: tr})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i], "\x00") < strings.Join(out[j], "\x00")
	})
	return out
}

// Deadlocks returns reachable non-final states with no outgoing
// transitions, in state order.
func (l *LTS) Deadlocks() []State {
	var out []State
	seen := make(map[State]struct{})
	stack := []State{l.initial}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		if len(l.out[s]) == 0 {
			if _, isFinal := l.final[s]; !isFinal {
				out = append(out, s)
			}
		}
		for _, tr := range l.out[s] {
			stack = append(stack, tr.To)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Determinize applies the subset construction over visible labels,
// producing a deterministic LTS that accepts exactly the same traces.
func (l *LTS) Determinize() *LTS {
	b := NewBuilder(l.name + " (det)")
	key := func(set []State) string {
		parts := make([]string, len(set))
		for i, s := range set {
			parts[i] = fmt.Sprintf("%d", int(s))
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	start := l.tauClosure([]State{l.initial})
	work := [][]State{start}
	created := map[string]State{key(start): b.State(key(start))}
	for len(work) > 0 {
		set := work[0]
		work = work[1:]
		from := created[key(set)]
		labels := make(map[string]struct{})
		for _, s := range set {
			for _, tr := range l.out[s] {
				if tr.Label != Tau {
					labels[tr.Label] = struct{}{}
				}
			}
		}
		sorted := make([]string, 0, len(labels))
		for lab := range labels {
			sorted = append(sorted, lab)
		}
		sort.Strings(sorted)
		for _, lab := range sorted {
			next := l.after(set, lab)
			k := key(next)
			to, ok := created[k]
			if !ok {
				to = b.State(k)
				created[k] = to
				work = append(work, next)
			}
			b.Transition(from, lab, to)
		}
	}
	return b.MustBuild()
}

// Compose builds the parallel composition of a and b synchronizing on the
// given label set: synchronized labels fire jointly; all other labels
// (including tau) interleave.
func Compose(a, b *LTS, sync []string) *LTS {
	syncSet := make(map[string]struct{}, len(sync))
	for _, s := range sync {
		syncSet[s] = struct{}{}
	}
	type pair struct{ sa, sb State }
	builder := NewBuilder(a.name + " || " + b.name)
	name := func(p pair) string {
		return "(" + a.StateName(p.sa) + "," + b.StateName(p.sb) + ")"
	}
	start := pair{a.initial, b.initial}
	created := map[pair]State{start: builder.State(name(start))}
	work := []pair{start}
	for len(work) > 0 {
		p := work[0]
		work = work[1:]
		from := created[p]
		add := func(label string, q pair) {
			to, ok := created[q]
			if !ok {
				to = builder.State(name(q))
				created[q] = to
				work = append(work, q)
			}
			builder.Transition(from, label, to)
		}
		for _, tr := range a.out[p.sa] {
			if _, isSync := syncSet[tr.Label]; isSync {
				for _, tb := range b.out[p.sb] {
					if tb.Label == tr.Label {
						add(tr.Label, pair{tr.To, tb.To})
					}
				}
			} else {
				add(tr.Label, pair{tr.To, p.sb})
			}
		}
		for _, tb := range b.out[p.sb] {
			if _, isSync := syncSet[tb.Label]; !isSync {
				add(tb.Label, pair{p.sa, tb.To})
			}
		}
	}
	// Composite state is final when both components are final.
	for p, s := range created {
		_, fa := a.final[p.sa]
		_, fb := b.final[p.sb]
		if fa && fb {
			builder.Final(s)
		}
	}
	return builder.MustBuild()
}

// Hide replaces the given labels with tau, abstracting them from the
// visible behaviour (service boundary abstraction: hiding PDU exchanges
// leaves only service primitives visible).
func (l *LTS) Hide(labels ...string) *LTS {
	hidden := make(map[string]struct{}, len(labels))
	for _, lab := range labels {
		hidden[lab] = struct{}{}
	}
	b := NewBuilder(l.name)
	for i := range l.names {
		b.State(l.names[i])
	}
	for s, ts := range l.out {
		for _, tr := range ts {
			label := tr.Label
			if _, ok := hidden[label]; ok {
				label = Tau
			}
			b.Transition(State(s), label, tr.To)
		}
	}
	for s := range l.final {
		b.Final(s)
	}
	return b.MustBuild()
}

// HidePrefix is Hide for every visible label with the given prefix. It is
// the usual way to hide a whole PDU alphabet ("pdu:").
func (l *LTS) HidePrefix(prefix string) *LTS {
	var labels []string
	for _, lab := range l.Alphabet() {
		if strings.HasPrefix(lab, prefix) {
			labels = append(labels, lab)
		}
	}
	return l.Hide(labels...)
}

// RefinementResult reports the outcome of a trace-refinement check.
type RefinementResult struct {
	// Holds is true when every trace of the implementation is a trace of
	// the specification.
	Holds bool
	// Counterexample, when Holds is false, is a shortest implementation
	// trace rejected by the specification (the last label is the offending
	// one).
	Counterexample []string
	// StatesExplored counts product states visited by the check.
	StatesExplored int
}

// TraceRefines checks trace refinement: impl ⊑tr spec. Both systems may be
// nondeterministic and contain tau. The check walks the synchronous product
// of impl against the determinized spec, breadth-first, so a reported
// counterexample is shortest.
func TraceRefines(impl, spec *LTS) RefinementResult {
	dspec := spec.Determinize()
	type cfg struct {
		implSet string
		specSt  State
	}
	key := func(set []State) string {
		parts := make([]string, len(set))
		for i, s := range set {
			parts[i] = fmt.Sprintf("%d", int(s))
		}
		return strings.Join(parts, ",")
	}
	// Map determinized spec states to transition lookup.
	specNext := func(s State, label string) (State, bool) {
		for _, tr := range dspec.out[s] {
			if tr.Label == label {
				return tr.To, true
			}
		}
		return 0, false
	}
	type node struct {
		implSet []State
		specSt  State
		trace   []string
	}
	start := node{implSet: impl.tauClosure([]State{impl.initial}), specSt: dspec.initial}
	seen := map[cfg]struct{}{{key(start.implSet), start.specSt}: {}}
	queue := []node{start}
	explored := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		explored++
		labels := make(map[string]struct{})
		for _, s := range n.implSet {
			for _, tr := range impl.out[s] {
				if tr.Label != Tau {
					labels[tr.Label] = struct{}{}
				}
			}
		}
		sorted := make([]string, 0, len(labels))
		for lab := range labels {
			sorted = append(sorted, lab)
		}
		sort.Strings(sorted)
		for _, lab := range sorted {
			specTo, ok := specNext(n.specSt, lab)
			if !ok {
				return RefinementResult{
					Holds:          false,
					Counterexample: append(append([]string(nil), n.trace...), lab),
					StatesExplored: explored,
				}
			}
			implNext := impl.after(n.implSet, lab)
			c := cfg{key(implNext), specTo}
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			queue = append(queue, node{
				implSet: implNext,
				specSt:  specTo,
				trace:   append(append([]string(nil), n.trace...), lab),
			})
		}
	}
	return RefinementResult{Holds: true, StatesExplored: explored}
}

// String renders the LTS in a stable textual form useful in tests and
// golden files.
func (l *LTS) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "lts %q: %d states, %d transitions\n", l.name, l.NumStates(), l.NumTransitions())
	for s := range l.names {
		marker := " "
		if State(s) == l.initial {
			marker = ">"
		}
		fmt.Fprintf(&sb, "%s %s\n", marker, l.names[s])
		for _, tr := range l.out[s] {
			fmt.Fprintf(&sb, "    --%s--> %s\n", tr.Label, l.names[tr.To])
		}
	}
	return sb.String()
}
