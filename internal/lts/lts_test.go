package lts

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// simpleSpec builds the canonical request→granted→free cycle over one
// resource — the skeleton of the floor-control service behaviour.
func simpleSpec() *LTS {
	b := NewBuilder("spec")
	idle := b.State("idle")
	requested := b.State("requested")
	held := b.State("held")
	b.Transition(idle, "request", requested)
	b.Transition(requested, "granted", held)
	b.Transition(held, "free", idle)
	b.Final(idle)
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	l := simpleSpec()
	if l.NumStates() != 3 || l.NumTransitions() != 3 {
		t.Fatalf("states=%d transitions=%d", l.NumStates(), l.NumTransitions())
	}
	if l.StateName(l.Initial()) != "idle" {
		t.Fatalf("initial = %q", l.StateName(l.Initial()))
	}
	if got := l.Alphabet(); !reflect.DeepEqual(got, []string{"free", "granted", "request"}) {
		t.Fatalf("alphabet = %v", got)
	}
}

func TestBuilderStateDedup(t *testing.T) {
	b := NewBuilder("x")
	s1 := b.State("a")
	s2 := b.State("a")
	if s1 != s2 {
		t.Fatal("same name produced distinct states")
	}
}

func TestEmptyBuilder(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); !errors.Is(err, ErrNoStates) {
		t.Fatalf("err = %v, want ErrNoStates", err)
	}
}

func TestStateNameOutOfRange(t *testing.T) {
	l := simpleSpec()
	if got := l.StateName(State(99)); !strings.Contains(got, "invalid") {
		t.Fatalf("StateName(99) = %q", got)
	}
	if l.Outgoing(State(99)) != nil {
		t.Fatal("Outgoing out of range should be nil")
	}
}

func TestAccepts(t *testing.T) {
	l := simpleSpec()
	tests := []struct {
		trace []string
		want  bool
	}{
		{nil, true},
		{[]string{"request"}, true},
		{[]string{"request", "granted"}, true},
		{[]string{"request", "granted", "free"}, true},
		{[]string{"request", "granted", "free", "request"}, true},
		{[]string{"granted"}, false},
		{[]string{"request", "free"}, false},
		{[]string{"request", "request"}, false},
		{[]string{"unknown"}, false},
	}
	for _, tt := range tests {
		if got := l.Accepts(tt.trace); got != tt.want {
			t.Errorf("Accepts(%v) = %v, want %v", tt.trace, got, tt.want)
		}
	}
}

func TestTauAbstraction(t *testing.T) {
	b := NewBuilder("with-tau")
	s0 := b.State("0")
	s1 := b.State("1")
	s2 := b.State("2")
	b.Transition(s0, Tau, s1)
	b.Transition(s1, "a", s2)
	l := b.MustBuild()
	if !l.Accepts([]string{"a"}) {
		t.Fatal("tau prefix should be invisible")
	}
	if l.Accepts([]string{Tau}) {
		t.Fatal("tau must not be a visible label")
	}
}

func TestHide(t *testing.T) {
	b := NewBuilder("proto")
	s0 := b.State("0")
	s1 := b.State("1")
	s2 := b.State("2")
	b.Transition(s0, "request", s1)
	b.Transition(s1, "pdu:grant", s2)
	b.Transition(s2, "granted", s0)
	l := b.MustBuild()
	hidden := l.HidePrefix("pdu:")
	if !hidden.Accepts([]string{"request", "granted"}) {
		t.Fatal("hidden PDU label should become tau")
	}
	if hidden.Accepts([]string{"request", "pdu:grant"}) {
		t.Fatal("hidden label still visible")
	}
	// Original is untouched.
	if !l.Accepts([]string{"request", "pdu:grant", "granted"}) {
		t.Fatal("Hide mutated the receiver")
	}
}

func TestTraces(t *testing.T) {
	l := simpleSpec()
	got := l.Traces(3, 100)
	want := [][]string{
		nil,
		{"request"},
		{"request", "granted"},
		{"request", "granted", "free"},
	}
	if len(got) != len(want) {
		t.Fatalf("Traces = %v, want %v", got, want)
	}
	for i := range want {
		if strings.Join(got[i], " ") != strings.Join(want[i], " ") {
			t.Fatalf("Traces[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTracesBounded(t *testing.T) {
	l := simpleSpec()
	got := l.Traces(100, 10)
	if len(got) > 10 {
		t.Fatalf("maxTraces not honoured: %d", len(got))
	}
}

func TestDeadlocks(t *testing.T) {
	b := NewBuilder("dead")
	s0 := b.State("0")
	stuck := b.State("stuck")
	done := b.State("done")
	b.Transition(s0, "a", stuck)
	b.Transition(s0, "b", done)
	b.Final(done)
	l := b.MustBuild()
	dl := l.Deadlocks()
	if len(dl) != 1 || l.StateName(dl[0]) != "stuck" {
		t.Fatalf("Deadlocks = %v", dl)
	}
}

func TestDeadlocksNoneInCycle(t *testing.T) {
	if dl := simpleSpec().Deadlocks(); len(dl) != 0 {
		t.Fatalf("cycle has no deadlock, got %v", dl)
	}
}

func TestDeterminize(t *testing.T) {
	// Nondeterministic: two 'a' edges to different continuations.
	b := NewBuilder("nd")
	s0 := b.State("0")
	s1 := b.State("1")
	s2 := b.State("2")
	s3 := b.State("3")
	b.Transition(s0, "a", s1)
	b.Transition(s0, "a", s2)
	b.Transition(s1, "b", s3)
	b.Transition(s2, "c", s3)
	l := b.MustBuild()
	d := l.Determinize()
	for _, trace := range [][]string{{"a"}, {"a", "b"}, {"a", "c"}} {
		if !d.Accepts(trace) {
			t.Fatalf("determinized rejects %v", trace)
		}
	}
	if d.Accepts([]string{"b"}) {
		t.Fatal("determinized accepts bogus trace")
	}
	// Determinism: no state has two edges with one label.
	for s := 0; s < d.NumStates(); s++ {
		seen := map[string]bool{}
		for _, tr := range d.Outgoing(State(s)) {
			if seen[tr.Label] {
				t.Fatalf("state %d has duplicate label %q", s, tr.Label)
			}
			seen[tr.Label] = true
		}
	}
}

func TestCompose(t *testing.T) {
	// Two users of one shared action "sync"; local actions interleave.
	ab := NewBuilder("A")
	a0 := ab.State("a0")
	a1 := ab.State("a1")
	a2 := ab.State("a2")
	ab.Transition(a0, "localA", a1)
	ab.Transition(a1, "sync", a2)
	bb := NewBuilder("B")
	b0 := bb.State("b0")
	b1 := bb.State("b1")
	b2 := bb.State("b2")
	bb.Transition(b0, "localB", b1)
	bb.Transition(b1, "sync", b2)
	c := Compose(ab.MustBuild(), bb.MustBuild(), []string{"sync"})
	if !c.Accepts([]string{"localA", "localB", "sync"}) {
		t.Fatal("composition rejects valid interleaving")
	}
	if !c.Accepts([]string{"localB", "localA", "sync"}) {
		t.Fatal("composition rejects other interleaving")
	}
	if c.Accepts([]string{"sync"}) {
		t.Fatal("sync fired before both components ready")
	}
	if c.Accepts([]string{"localA", "sync"}) {
		t.Fatal("sync fired with B not ready")
	}
}

func TestComposeFinalStates(t *testing.T) {
	ab := NewBuilder("A")
	a0 := ab.State("a0")
	ab.Final(a0)
	bb := NewBuilder("B")
	b0 := bb.State("b0")
	bb.Final(b0)
	c := Compose(ab.MustBuild(), bb.MustBuild(), nil)
	if len(c.Deadlocks()) != 0 {
		t.Fatal("composition of two final states should be final (no deadlock)")
	}
}

func TestTraceRefinesHolds(t *testing.T) {
	spec := simpleSpec()
	// Implementation with internal steps between request and granted.
	b := NewBuilder("impl")
	i0 := b.State("0")
	i1 := b.State("1")
	i2 := b.State("2")
	i3 := b.State("3")
	i4 := b.State("4")
	b.Transition(i0, "request", i1)
	b.Transition(i1, Tau, i2) // e.g. PDU exchange, hidden
	b.Transition(i2, "granted", i3)
	b.Transition(i3, "free", i4)
	b.Transition(i4, Tau, i0)
	res := TraceRefines(b.MustBuild(), spec)
	if !res.Holds {
		t.Fatalf("refinement should hold, counterexample %v", res.Counterexample)
	}
	if res.StatesExplored == 0 {
		t.Fatal("no states explored")
	}
}

func TestTraceRefinesCounterexample(t *testing.T) {
	spec := simpleSpec()
	// Implementation that can grant without a request.
	b := NewBuilder("bad")
	i0 := b.State("0")
	i1 := b.State("1")
	b.Transition(i0, "granted", i1)
	res := TraceRefines(b.MustBuild(), spec)
	if res.Holds {
		t.Fatal("refinement should fail")
	}
	if len(res.Counterexample) != 1 || res.Counterexample[0] != "granted" {
		t.Fatalf("counterexample = %v, want [granted]", res.Counterexample)
	}
}

func TestTraceRefinesShortestCounterexample(t *testing.T) {
	spec := simpleSpec()
	b := NewBuilder("bad2")
	i0 := b.State("0")
	i1 := b.State("1")
	i2 := b.State("2")
	i3 := b.State("3")
	// Long valid path plus a short invalid one.
	b.Transition(i0, "request", i1)
	b.Transition(i1, "granted", i2)
	b.Transition(i2, "granted", i3) // double grant: invalid at depth 3
	b.Transition(i0, "free", i3)    // invalid at depth 1
	res := TraceRefines(b.MustBuild(), spec)
	if res.Holds {
		t.Fatal("refinement should fail")
	}
	if len(res.Counterexample) != 1 {
		t.Fatalf("counterexample %v not shortest", res.Counterexample)
	}
}

func TestTraceRefinesWithNondeterministicSpec(t *testing.T) {
	// Spec: after "a", either "b" or "c" depending on invisible choice.
	sb := NewBuilder("ndspec")
	s0 := sb.State("0")
	s1 := sb.State("1")
	s2 := sb.State("2")
	s3 := sb.State("3")
	sb.Transition(s0, "a", s1)
	sb.Transition(s0, "a", s2)
	sb.Transition(s1, "b", s3)
	sb.Transition(s2, "c", s3)
	spec := sb.MustBuild()
	ib := NewBuilder("impl")
	i0 := ib.State("0")
	i1 := ib.State("1")
	i2 := ib.State("2")
	ib.Transition(i0, "a", i1)
	ib.Transition(i1, "c", i2)
	res := TraceRefines(ib.MustBuild(), spec)
	if !res.Holds {
		t.Fatalf("trace refinement over nondeterministic spec should hold; cex %v", res.Counterexample)
	}
}

func TestStringRendering(t *testing.T) {
	s := simpleSpec().String()
	for _, want := range []string{"lts \"spec\"", "> idle", "--request-->"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

// Property: every enumerated trace is accepted, and refinement against self
// always holds.
func TestPropertyTracesAcceptedAndSelfRefine(t *testing.T) {
	prop := func(edges []struct {
		From, To uint8
		Label    uint8
	}) bool {
		if len(edges) == 0 {
			return true
		}
		b := NewBuilder("rand")
		labels := []string{"a", "b", "c", Tau}
		for _, e := range edges {
			from := b.State(string(rune('A' + e.From%5)))
			to := b.State(string(rune('A' + e.To%5)))
			b.Transition(from, labels[e.Label%4], to)
		}
		l := b.MustBuild()
		for _, tr := range l.Traces(4, 200) {
			if !l.Accepts(tr) {
				return false
			}
		}
		return TraceRefines(l, l).Holds
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTraceRefines(b *testing.B) {
	spec := simpleSpec()
	impl := simpleSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !TraceRefines(impl, spec).Holds {
			b.Fatal("refinement failed")
		}
	}
}
