package mda

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/middleware"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/svc"
)

// ComponentID identifies one instance of platform-independent service
// logic within a deployment, e.g. "controller" or "agent:s1".
type ComponentID string

// Component is platform-independent service logic. It reacts to abstract
// directed messages and — when bound to a SAP — to service primitives. It
// sends messages and delivers to-user primitives through its LogicContext,
// never touching a concrete platform API: that is what makes it
// platform-independent.
type Component interface {
	// Start runs once at deployment, before traffic.
	Start(ctx *LogicContext) error
	// OnMessage reacts to a directed message from another component.
	OnMessage(from ComponentID, msg codec.Message) error
	// FromUser reacts to a from-user service primitive (SAP-bound
	// components only; others may reject).
	FromUser(primitive string, params codec.Record) error
}

// Logic is an instantiated set of components with placement and SAP
// bindings.
type Logic struct {
	// Components maps every instance to its implementation.
	Components map[ComponentID]Component
	// Placement assigns each instance a hosting node.
	Placement map[ComponentID]middleware.Addr
	// SAPBinding attaches SAPs to the component serving them.
	SAPBinding map[core.SAP]ComponentID
}

// LogicContext is a component's window on the deployment.
type LogicContext struct {
	dep  *Deployment
	self ComponentID
}

// Self returns the component's id.
func (c *LogicContext) Self() ComponentID { return c.self }

// Send transmits a directed message to another component through the
// realized abstract platform.
func (c *LogicContext) Send(to ComponentID, msg codec.Message) error {
	return c.dep.messaging.send(c.self, to, msg)
}

// DeliverToUser executes a to-user service primitive at the SAP bound to
// this component. It is a no-op without a binding or handler.
func (c *LogicContext) DeliverToUser(primitive string, params codec.Record) {
	c.dep.deliverToUser(c.self, primitive, params)
}

// Schedule runs fn after a virtual delay. The returned ref cancels
// without pinning a timer allocation; callers that do not need to
// cancel may discard it.
func (c *LogicContext) Schedule(d time.Duration, fn func()) sim.TimerRef {
	return c.dep.tb.ScheduleFuncRef(d, fn)
}

// messaging is the realized async-message concept: how directed messages
// actually travel on a given concrete platform.
type messaging interface {
	// name identifies the realization for diagnostics.
	name() string
	// send delivers msg from one component to another.
	send(from, to ComponentID, msg codec.Message) error
}

// Deployment is a running PSI: the PIM's logic instantiated on a concrete
// platform. Its service boundary is a core.Provider. All middleware
// interactions of the deployed logic flow through the typed svc port
// binding — the raw platform surface stays an SPI underneath.
type Deployment struct {
	tb          sim.Timebase
	platform    *middleware.Platform
	ports       *svc.Binding
	pim         *PIM
	realization Realization
	logic       *Logic
	messaging   messaging

	// registered and queued make the endpoint installers idempotent, so
	// Rerealize can re-run them when migrating to a platform whose
	// realization needs endpoints the first deployment never installed.
	registered map[ComponentID]bool
	queued     map[ComponentID]bool

	mu      sync.Mutex
	sapOf   map[ComponentID]core.SAP
	binding map[core.SAP]ComponentID
	upcalls map[core.SAP]func(string, codec.Record)
}

var _ core.Provider = (*Deployment)(nil)

// Platform exposes the underlying middleware platform (for statistics).
func (d *Deployment) Platform() *middleware.Platform { return d.platform }

// Realization reports how the abstract platform was realized.
func (d *Deployment) Realization() Realization { return d.realization }

// MessagingName reports the active async-message realization
// ("native-oneway", "async-over-sync", "async-over-queue").
func (d *Deployment) MessagingName() string { return d.messaging.name() }

// Submit implements core.Provider.
func (d *Deployment) Submit(sap core.SAP, primitive string, params codec.Record) error {
	d.mu.Lock()
	id, ok := d.binding[sap]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("mda: SAP %s not bound", sap)
	}
	comp := d.logic.Components[id]
	if err := comp.FromUser(primitive, params); err != nil {
		return fmt.Errorf("mda: %s at %s: %w", primitive, sap, err)
	}
	return nil
}

// Attach implements core.Provider.
func (d *Deployment) Attach(sap core.SAP, handler func(string, codec.Record)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.upcalls[sap] = handler
}

func (d *Deployment) deliverToUser(id ComponentID, primitive string, params codec.Record) {
	d.mu.Lock()
	sap, ok := d.sapOf[id]
	var fn func(string, codec.Record)
	if ok {
		fn = d.upcalls[sap]
	}
	d.mu.Unlock()
	if fn != nil {
		fn(primitive, params)
	}
}

// onDelivered routes an inbound abstract message to its component.
func (d *Deployment) onDelivered(to ComponentID, from ComponentID, msg codec.Message) {
	comp, ok := d.logic.Components[to]
	if !ok {
		return
	}
	_ = comp.OnMessage(from, msg) //nolint:errcheck // component errors are design errors surfaced in tests
}

// Deploy realizes pim on the target platform over the given transport and
// instantiates its logic: milestones MilestoneAbstractRealization and
// MilestonePSI made executable.
func Deploy(tb sim.Timebase, transport protocol.LowerService, pim *PIM, target ConcretePlatform, plan Plan) (*Deployment, error) {
	if tb == nil || transport == nil {
		return nil, errors.New("mda: Deploy requires a timebase and transport")
	}
	_, realization, err := PlanTrajectory(pim, target)
	if err != nil {
		return nil, err
	}
	logic, err := pim.Build(plan)
	if err != nil {
		return nil, fmt.Errorf("mda: build logic for %q: %w", pim.Name, err)
	}
	if err := validateLogic(logic, plan); err != nil {
		return nil, err
	}
	platform := middleware.New(tb, transport, target.Profile, "mda-broker")
	service, err := svc.New(pim.Service)
	if err != nil {
		return nil, fmt.Errorf("mda: declare service %q: %w", pim.Service.Name, err)
	}
	binding, err := service.Bind(platform)
	if err != nil {
		return nil, fmt.Errorf("mda: bind service %q: %w", pim.Service.Name, err)
	}
	d := &Deployment{
		tb:          tb,
		platform:    platform,
		ports:       binding,
		pim:         pim,
		realization: realization,
		logic:       logic,
		registered:  make(map[ComponentID]bool, len(logic.Components)),
		queued:      make(map[ComponentID]bool, len(logic.Components)),
		sapOf:       make(map[ComponentID]core.SAP, len(logic.SAPBinding)),
		binding:     make(map[core.SAP]ComponentID, len(logic.SAPBinding)),
		upcalls:     make(map[core.SAP]func(string, codec.Record)),
	}
	for sap, id := range logic.SAPBinding {
		d.binding[sap] = id
		d.sapOf[id] = sap
	}
	if err := d.installMessaging(target); err != nil {
		return nil, err
	}
	for id, comp := range logic.Components {
		if err := comp.Start(&LogicContext{dep: d, self: id}); err != nil {
			return nil, fmt.Errorf("mda: start component %q: %w", id, err)
		}
	}
	return d, nil
}

func validateLogic(logic *Logic, plan Plan) error {
	if logic == nil || len(logic.Components) == 0 {
		return errors.New("mda: logic has no components")
	}
	for id := range logic.Components {
		if _, ok := logic.Placement[id]; !ok {
			return fmt.Errorf("mda: component %q has no placement", id)
		}
	}
	for sap, id := range logic.SAPBinding {
		if _, ok := logic.Components[id]; !ok {
			return fmt.Errorf("mda: SAP %s bound to unknown component %q", sap, id)
		}
	}
	for _, sap := range plan.SAPs {
		if _, ok := logic.SAPBinding[sap]; !ok {
			return fmt.Errorf("mda: plan SAP %s not bound by logic", sap)
		}
	}
	return nil
}

// installMessaging selects and wires the async-message realization matching
// the concrete platform — the deployed form of the realization's adapters.
// Receive endpoints are installed first, then the typed send endpoints
// (sinks or ports) are built once per target component.
func (d *Deployment) installMessaging(target ConcretePlatform) error {
	switch {
	case target.Profile.Supports(middleware.PatternOneway):
		if err := d.registerObjects(); err != nil {
			return err
		}
		m, err := newOnewayMessaging(d)
		if err != nil {
			return err
		}
		d.messaging = m
		return nil
	case target.Profile.Supports(middleware.PatternRPC):
		if err := d.registerObjects(); err != nil {
			return err
		}
		m, err := newSyncMessaging(d)
		if err != nil {
			return err
		}
		d.messaging = m
		return nil
	case target.Profile.Supports(middleware.PatternQueue):
		if err := d.subscribeQueues(); err != nil {
			return err
		}
		m, err := newQueueMessaging(d)
		if err != nil {
			return err
		}
		d.messaging = m
		return nil
	default:
		return fmt.Errorf("%w: platform %q offers no usable pattern", ErrUnrealizable, target.Name)
	}
}

// objRef names a component's middleware object.
func objRef(id ComponentID) middleware.ObjRef { return middleware.ObjRef("logic:" + string(id)) }

// queueName names a component's inbound queue in the queue realization.
func queueName(id ComponentID) string { return "mda.q." + string(id) }

// wireEnvelope is the typed wire form of an abstract directed message:
// the sending component, the message name, and the payload record.
type wireEnvelope struct {
	From   ComponentID
	Name   string
	Fields codec.Record
}

// encEnvelope marshals the envelope into the deliver operation's
// parameter record (nil payloads travel as empty records, as the legacy
// envelope did).
func encEnvelope(e wireEnvelope) codec.Record {
	fields := e.Fields
	if fields == nil {
		fields = codec.Record{}
	}
	return codec.Record{"from": string(e.From), "name": e.Name, "fields": fields}
}

// decEnvelope unmarshals a deliver parameter record.
func decEnvelope(r codec.Record) (wireEnvelope, error) {
	from, _ := r["from"].(string)
	name, _ := r["name"].(string)
	fields, _ := r["fields"].(map[string]codec.Value)
	return wireEnvelope{From: ComponentID(from), Name: name, Fields: fields}, nil
}

// encQueueEnvelope marshals the envelope as the mda.msg queue message of
// the async-over-queue adapter.
func encQueueEnvelope(e wireEnvelope) codec.Message {
	return codec.NewMessage("mda.msg", encEnvelope(e))
}

// decQueueEnvelope unmarshals one queued mda.msg.
func decQueueEnvelope(m codec.Message) (wireEnvelope, error) {
	return decEnvelope(m.Fields)
}

// registerObjects hosts each component as a typed export exposing the
// generic deliver operation. Idempotent: components already hosted from
// an earlier realization are kept as they are.
func (d *Deployment) registerObjects() error {
	for id := range d.logic.Components {
		id := id
		if d.registered[id] {
			continue
		}
		e, err := d.ports.NewExport(objRef(id), d.logic.Placement[id])
		if err != nil {
			return fmt.Errorf("mda: register %q: %w", id, err)
		}
		err = svc.HandleOp(e, "deliver", decEnvelope, func(struct{}) codec.Record { return codec.Record{} },
			func(env wireEnvelope, respond func(struct{}, error)) {
				respond(struct{}{}, nil)
				d.onDelivered(id, env.From, codec.NewMessage(env.Name, env.Fields))
			})
		if err != nil {
			return fmt.Errorf("mda: register %q: %w", id, err)
		}
		if err := e.Register(); err != nil {
			return fmt.Errorf("mda: register %q: %w", id, err)
		}
		d.registered[id] = true
	}
	return nil
}

// subscribeQueues declares and consumes one queue per component through
// typed queue sources. Idempotent, like registerObjects.
func (d *Deployment) subscribeQueues() error {
	for id := range d.logic.Components {
		id := id
		if d.queued[id] {
			continue
		}
		if err := d.ports.DeclareQueue(queueName(id)); err != nil {
			return fmt.Errorf("mda: declare queue for %q: %w", id, err)
		}
		_, err := svc.NewQueueSource(d.ports, queueName(id), d.logic.Placement[id],
			decQueueEnvelope,
			func(env wireEnvelope) {
				d.onDelivered(id, env.From, codec.NewMessage(env.Name, env.Fields))
			})
		if err != nil {
			return fmt.Errorf("mda: subscribe queue for %q: %w", id, err)
		}
		d.queued[id] = true
	}
	return nil
}

// Rerealize migrates the running deployment onto a different concrete
// platform mid-run — the MDA trajectory replayed live: the platform
// profile is swapped, any endpoints the new realization needs are
// installed (existing ones are kept, the installers are idempotent), and
// directed messages switch to the new platform's async-message adapter.
// Interactions already in flight complete under the old realization;
// component state is untouched — this is a platform migration, not a
// redeployment.
func (d *Deployment) Rerealize(target ConcretePlatform) error {
	_, realization, err := PlanTrajectory(d.pim, target)
	if err != nil {
		return err
	}
	d.platform.SetProfile(target.Profile)
	if err := d.installMessaging(target); err != nil {
		return err
	}
	d.realization = realization
	return nil
}

// sendNode resolves the hosting node of a sending component.
func (d *Deployment) sendNode(from ComponentID) (middleware.Addr, error) {
	node, ok := d.logic.Placement[from]
	if !ok {
		return "", fmt.Errorf("mda: unplaced sender %q", from)
	}
	return node, nil
}

// onewayMessaging realizes async-message natively (CORBA-like oneway,
// JMS-like message passing): one typed oneway sink per target component.
type onewayMessaging struct {
	d     *Deployment
	sinks map[ComponentID]*svc.Sink[wireEnvelope]
}

var _ messaging = (*onewayMessaging)(nil)

func newOnewayMessaging(d *Deployment) (*onewayMessaging, error) {
	m := &onewayMessaging{d: d, sinks: make(map[ComponentID]*svc.Sink[wireEnvelope], len(d.logic.Components))}
	for id := range d.logic.Components {
		sink, err := svc.NewOnewaySink(d.ports, objRef(id), "deliver", encEnvelope)
		if err != nil {
			return nil, fmt.Errorf("mda: oneway sink for %q: %w", id, err)
		}
		m.sinks[id] = sink
	}
	return m, nil
}

func (m *onewayMessaging) name() string { return "native-oneway" }

func (m *onewayMessaging) send(from, to ComponentID, msg codec.Message) error {
	node, err := m.d.sendNode(from)
	if err != nil {
		return err
	}
	sink, ok := m.sinks[to]
	if !ok {
		return fmt.Errorf("mda: unknown target %q", to)
	}
	return sink.Send(node, wireEnvelope{From: from, Name: msg.Name, Fields: msg.Fields})
}

// syncMessaging is the async-over-sync adapter (Figure 12 recursion on the
// RMI-like platform): the directed message is a synchronous void
// invocation whose reply is discarded — one typed RPC port per target.
type syncMessaging struct {
	d     *Deployment
	ports map[ComponentID]*svc.Port[wireEnvelope, struct{}]
}

var _ messaging = (*syncMessaging)(nil)

func newSyncMessaging(d *Deployment) (*syncMessaging, error) {
	m := &syncMessaging{d: d, ports: make(map[ComponentID]*svc.Port[wireEnvelope, struct{}], len(d.logic.Components))}
	for id := range d.logic.Components {
		port, err := svc.NewPort[wireEnvelope, struct{}](d.ports, objRef(id), "deliver", encEnvelope, nil)
		if err != nil {
			return nil, fmt.Errorf("mda: sync port for %q: %w", id, err)
		}
		m.ports[id] = port
	}
	return m, nil
}

func (m *syncMessaging) name() string { return "async-over-sync" }

func (m *syncMessaging) send(from, to ComponentID, msg codec.Message) error {
	node, err := m.d.sendNode(from)
	if err != nil {
		return err
	}
	port, ok := m.ports[to]
	if !ok {
		return fmt.Errorf("mda: unknown target %q", to)
	}
	return port.Call(node, wireEnvelope{From: from, Name: msg.Name, Fields: msg.Fields}, nil)
}

// queueMessaging is the async-over-queue adapter (Figure 12 recursion on
// the MQ-like platform): one inbound queue per component, fed through
// typed queue sinks.
type queueMessaging struct {
	d     *Deployment
	sinks map[ComponentID]*svc.Sink[wireEnvelope]
}

var _ messaging = (*queueMessaging)(nil)

func newQueueMessaging(d *Deployment) (*queueMessaging, error) {
	m := &queueMessaging{d: d, sinks: make(map[ComponentID]*svc.Sink[wireEnvelope], len(d.logic.Components))}
	for id := range d.logic.Components {
		sink, err := svc.NewQueueSink(d.ports, queueName(id), encQueueEnvelope)
		if err != nil {
			return nil, fmt.Errorf("mda: queue sink for %q: %w", id, err)
		}
		m.sinks[id] = sink
	}
	return m, nil
}

func (m *queueMessaging) name() string { return "async-over-queue" }

func (m *queueMessaging) send(from, to ComponentID, msg codec.Message) error {
	node, err := m.d.sendNode(from)
	if err != nil {
		return err
	}
	sink, ok := m.sinks[to]
	if !ok {
		return fmt.Errorf("mda: unknown target %q", to)
	}
	return sink.Send(node, wireEnvelope{From: from, Name: msg.Name, Fields: msg.Fields})
}
