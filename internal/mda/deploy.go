package mda

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/middleware"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// ComponentID identifies one instance of platform-independent service
// logic within a deployment, e.g. "controller" or "agent:s1".
type ComponentID string

// Component is platform-independent service logic. It reacts to abstract
// directed messages and — when bound to a SAP — to service primitives. It
// sends messages and delivers to-user primitives through its LogicContext,
// never touching a concrete platform API: that is what makes it
// platform-independent.
type Component interface {
	// Start runs once at deployment, before traffic.
	Start(ctx *LogicContext) error
	// OnMessage reacts to a directed message from another component.
	OnMessage(from ComponentID, msg codec.Message) error
	// FromUser reacts to a from-user service primitive (SAP-bound
	// components only; others may reject).
	FromUser(primitive string, params codec.Record) error
}

// Logic is an instantiated set of components with placement and SAP
// bindings.
type Logic struct {
	// Components maps every instance to its implementation.
	Components map[ComponentID]Component
	// Placement assigns each instance a hosting node.
	Placement map[ComponentID]middleware.Addr
	// SAPBinding attaches SAPs to the component serving them.
	SAPBinding map[core.SAP]ComponentID
}

// LogicContext is a component's window on the deployment.
type LogicContext struct {
	dep  *Deployment
	self ComponentID
}

// Self returns the component's id.
func (c *LogicContext) Self() ComponentID { return c.self }

// Send transmits a directed message to another component through the
// realized abstract platform.
func (c *LogicContext) Send(to ComponentID, msg codec.Message) error {
	return c.dep.messaging.send(c.self, to, msg)
}

// DeliverToUser executes a to-user service primitive at the SAP bound to
// this component. It is a no-op without a binding or handler.
func (c *LogicContext) DeliverToUser(primitive string, params codec.Record) {
	c.dep.deliverToUser(c.self, primitive, params)
}

// Schedule runs fn after a virtual delay.
func (c *LogicContext) Schedule(d time.Duration, fn func()) *sim.Timer {
	return c.dep.kernel.Schedule(d, fn)
}

// messaging is the realized async-message concept: how directed messages
// actually travel on a given concrete platform.
type messaging interface {
	// name identifies the realization for diagnostics.
	name() string
	// send delivers msg from one component to another.
	send(from, to ComponentID, msg codec.Message) error
}

// Deployment is a running PSI: the PIM's logic instantiated on a concrete
// platform. Its service boundary is a core.Provider.
type Deployment struct {
	kernel      *sim.Kernel
	platform    *middleware.Platform
	realization Realization
	logic       *Logic
	messaging   messaging

	mu      sync.Mutex
	sapOf   map[ComponentID]core.SAP
	binding map[core.SAP]ComponentID
	upcalls map[core.SAP]func(string, codec.Record)
}

var _ core.Provider = (*Deployment)(nil)

// Platform exposes the underlying middleware platform (for statistics).
func (d *Deployment) Platform() *middleware.Platform { return d.platform }

// Realization reports how the abstract platform was realized.
func (d *Deployment) Realization() Realization { return d.realization }

// MessagingName reports the active async-message realization
// ("native-oneway", "async-over-sync", "async-over-queue").
func (d *Deployment) MessagingName() string { return d.messaging.name() }

// Submit implements core.Provider.
func (d *Deployment) Submit(sap core.SAP, primitive string, params codec.Record) error {
	d.mu.Lock()
	id, ok := d.binding[sap]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("mda: SAP %s not bound", sap)
	}
	comp := d.logic.Components[id]
	if err := comp.FromUser(primitive, params); err != nil {
		return fmt.Errorf("mda: %s at %s: %w", primitive, sap, err)
	}
	return nil
}

// Attach implements core.Provider.
func (d *Deployment) Attach(sap core.SAP, handler func(string, codec.Record)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.upcalls[sap] = handler
}

func (d *Deployment) deliverToUser(id ComponentID, primitive string, params codec.Record) {
	d.mu.Lock()
	sap, ok := d.sapOf[id]
	var fn func(string, codec.Record)
	if ok {
		fn = d.upcalls[sap]
	}
	d.mu.Unlock()
	if fn != nil {
		fn(primitive, params)
	}
}

// onDelivered routes an inbound abstract message to its component.
func (d *Deployment) onDelivered(to ComponentID, from ComponentID, msg codec.Message) {
	comp, ok := d.logic.Components[to]
	if !ok {
		return
	}
	_ = comp.OnMessage(from, msg) //nolint:errcheck // component errors are design errors surfaced in tests
}

// Deploy realizes pim on the target platform over the given transport and
// instantiates its logic: milestones MilestoneAbstractRealization and
// MilestonePSI made executable.
func Deploy(kernel *sim.Kernel, transport protocol.LowerService, pim *PIM, target ConcretePlatform, plan Plan) (*Deployment, error) {
	if kernel == nil || transport == nil {
		return nil, errors.New("mda: Deploy requires kernel and transport")
	}
	_, realization, err := PlanTrajectory(pim, target)
	if err != nil {
		return nil, err
	}
	logic, err := pim.Build(plan)
	if err != nil {
		return nil, fmt.Errorf("mda: build logic for %q: %w", pim.Name, err)
	}
	if err := validateLogic(logic, plan); err != nil {
		return nil, err
	}
	platform := middleware.New(kernel, transport, target.Profile, "mda-broker")
	d := &Deployment{
		kernel:      kernel,
		platform:    platform,
		realization: realization,
		logic:       logic,
		sapOf:       make(map[ComponentID]core.SAP, len(logic.SAPBinding)),
		binding:     make(map[core.SAP]ComponentID, len(logic.SAPBinding)),
		upcalls:     make(map[core.SAP]func(string, codec.Record)),
	}
	for sap, id := range logic.SAPBinding {
		d.binding[sap] = id
		d.sapOf[id] = sap
	}
	if err := d.installMessaging(target); err != nil {
		return nil, err
	}
	for id, comp := range logic.Components {
		if err := comp.Start(&LogicContext{dep: d, self: id}); err != nil {
			return nil, fmt.Errorf("mda: start component %q: %w", id, err)
		}
	}
	return d, nil
}

func validateLogic(logic *Logic, plan Plan) error {
	if logic == nil || len(logic.Components) == 0 {
		return errors.New("mda: logic has no components")
	}
	for id := range logic.Components {
		if _, ok := logic.Placement[id]; !ok {
			return fmt.Errorf("mda: component %q has no placement", id)
		}
	}
	for sap, id := range logic.SAPBinding {
		if _, ok := logic.Components[id]; !ok {
			return fmt.Errorf("mda: SAP %s bound to unknown component %q", sap, id)
		}
	}
	for _, sap := range plan.SAPs {
		if _, ok := logic.SAPBinding[sap]; !ok {
			return fmt.Errorf("mda: plan SAP %s not bound by logic", sap)
		}
	}
	return nil
}

// installMessaging selects and wires the async-message realization matching
// the concrete platform — the deployed form of the realization's adapters.
func (d *Deployment) installMessaging(target ConcretePlatform) error {
	switch {
	case target.Profile.Supports(middleware.PatternOneway):
		d.messaging = &onewayMessaging{d: d}
		return d.registerObjects()
	case target.Profile.Supports(middleware.PatternRPC):
		d.messaging = &syncMessaging{d: d}
		return d.registerObjects()
	case target.Profile.Supports(middleware.PatternQueue):
		d.messaging = &queueMessaging{d: d}
		return d.subscribeQueues()
	default:
		return fmt.Errorf("%w: platform %q offers no usable pattern", ErrUnrealizable, target.Name)
	}
}

// objRef names a component's middleware object.
func objRef(id ComponentID) middleware.ObjRef { return middleware.ObjRef("logic:" + string(id)) }

// queueName names a component's inbound queue in the queue realization.
func queueName(id ComponentID) string { return "mda.q." + string(id) }

// registerObjects hosts each component as a middleware object exposing
// the generic deliver operation.
func (d *Deployment) registerObjects() error {
	for id := range d.logic.Components {
		id := id
		obj := middleware.ObjectFunc(func(op string, args codec.Record, reply middleware.Reply) {
			if op != "deliver" {
				reply(nil, fmt.Errorf("%w: %q", middleware.ErrUnknownOperation, op))
				return
			}
			reply(codec.Record{}, nil)
			from, _ := args["from"].(string)
			name, _ := args["name"].(string)
			fields, _ := args["fields"].(map[string]codec.Value)
			d.onDelivered(id, ComponentID(from), codec.NewMessage(name, fields))
		})
		if err := d.platform.Register(objRef(id), d.logic.Placement[id], obj); err != nil {
			return fmt.Errorf("mda: register %q: %w", id, err)
		}
	}
	return nil
}

// subscribeQueues declares and consumes one queue per component.
func (d *Deployment) subscribeQueues() error {
	for id := range d.logic.Components {
		id := id
		if err := d.platform.QueueDeclare(queueName(id)); err != nil {
			return fmt.Errorf("mda: declare queue for %q: %w", id, err)
		}
		err := d.platform.QueueSubscribe(queueName(id), d.logic.Placement[id], func(m codec.Message) {
			from, _ := m.Fields["from"].(string)
			name, _ := m.Fields["name"].(string)
			fields, _ := m.Fields["fields"].(map[string]codec.Value)
			d.onDelivered(id, ComponentID(from), codec.NewMessage(name, fields))
		})
		if err != nil {
			return fmt.Errorf("mda: subscribe queue for %q: %w", id, err)
		}
	}
	return nil
}

// envelope wraps an abstract message for the wire.
func envelope(from ComponentID, msg codec.Message) codec.Record {
	fields := msg.Fields
	if fields == nil {
		fields = codec.Record{}
	}
	return codec.Record{"from": string(from), "name": msg.Name, "fields": fields}
}

// onewayMessaging realizes async-message natively (CORBA-like oneway,
// JMS-like message passing).
type onewayMessaging struct{ d *Deployment }

var _ messaging = (*onewayMessaging)(nil)

func (m *onewayMessaging) name() string { return "native-oneway" }

func (m *onewayMessaging) send(from, to ComponentID, msg codec.Message) error {
	node, ok := m.d.logic.Placement[from]
	if !ok {
		return fmt.Errorf("mda: unplaced sender %q", from)
	}
	return m.d.platform.InvokeOneway(node, objRef(to), "deliver", envelope(from, msg))
}

// syncMessaging is the async-over-sync adapter (Figure 12 recursion on the
// RMI-like platform): the directed message is a synchronous void
// invocation whose reply is discarded.
type syncMessaging struct{ d *Deployment }

var _ messaging = (*syncMessaging)(nil)

func (m *syncMessaging) name() string { return "async-over-sync" }

func (m *syncMessaging) send(from, to ComponentID, msg codec.Message) error {
	node, ok := m.d.logic.Placement[from]
	if !ok {
		return fmt.Errorf("mda: unplaced sender %q", from)
	}
	return m.d.platform.Invoke(node, objRef(to), "deliver", envelope(from, msg), nil)
}

// queueMessaging is the async-over-queue adapter (Figure 12 recursion on
// the MQ-like platform): one inbound queue per component.
type queueMessaging struct{ d *Deployment }

var _ messaging = (*queueMessaging)(nil)

func (m *queueMessaging) name() string { return "async-over-queue" }

func (m *queueMessaging) send(from, to ComponentID, msg codec.Message) error {
	node, ok := m.d.logic.Placement[from]
	if !ok {
		return fmt.Errorf("mda: unplaced sender %q", from)
	}
	return m.d.platform.QueuePut(node, queueName(to), codec.NewMessage("mda.msg", envelope(from, msg)))
}
