package mda

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// echoLogic replies "pong" to every "ping" message, echoing the payload.
type echoLogic struct {
	ctx *LogicContext
}

var _ Component = (*echoLogic)(nil)

func (e *echoLogic) Start(ctx *LogicContext) error { e.ctx = ctx; return nil }

func (e *echoLogic) FromUser(primitive string, _ codec.Record) error {
	return fmt.Errorf("echo logic has no SAP (got %q)", primitive)
}

func (e *echoLogic) OnMessage(from ComponentID, msg codec.Message) error {
	if msg.Name != "ping" {
		return fmt.Errorf("unexpected message %q", msg.Name)
	}
	return e.ctx.Send(from, codec.NewMessage("pong", msg.Fields))
}

// echoAgent binds a SAP to the echo server.
type echoAgent struct {
	server ComponentID
	ctx    *LogicContext
}

var _ Component = (*echoAgent)(nil)

func (a *echoAgent) Start(ctx *LogicContext) error { a.ctx = ctx; return nil }

func (a *echoAgent) FromUser(primitive string, params codec.Record) error {
	if primitive != "ping" {
		return fmt.Errorf("unexpected primitive %q", primitive)
	}
	return a.ctx.Send(a.server, codec.NewMessage("ping", params))
}

func (a *echoAgent) OnMessage(_ ComponentID, msg codec.Message) error {
	if msg.Name != "pong" {
		return fmt.Errorf("unexpected message %q", msg.Name)
	}
	a.ctx.DeliverToUser("pong", msg.Fields)
	return nil
}

func deployEcho(t *testing.T, platformName string) (*sim.Kernel, *Deployment) {
	t.Helper()
	kernel := sim.NewKernel(sim.WithSeed(3))
	net := network.New(kernel, network.WithDefaultLink(network.LinkConfig{Latency: time.Millisecond}))
	transport := protocol.NewReliableDatagram(kernel, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{})
	target, ok := ConcretePlatformByName(platformName)
	if !ok {
		t.Fatalf("platform %q unknown", platformName)
	}
	sap := core.SAP{Role: "user", ID: "u1"}
	dep, err := Deploy(kernel, transport, testPIM(t), target, Plan{SAPs: []core.SAP{sap}})
	if err != nil {
		t.Fatalf("Deploy on %s: %v", platformName, err)
	}
	return kernel, dep
}

func TestDeployEchoOnAllPlatforms(t *testing.T) {
	wantMessaging := map[string]string{
		"rpc-corba-like": "native-oneway",
		"rpc-rmi-like":   "async-over-sync",
		"msg-jms-like":   "native-oneway",
		"queue-mq-like":  "async-over-queue",
	}
	for _, p := range ConcretePlatforms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			kernel, dep := deployEcho(t, p.Name)
			if dep.MessagingName() != wantMessaging[p.Name] {
				t.Fatalf("messaging = %q, want %q", dep.MessagingName(), wantMessaging[p.Name])
			}
			sap := core.SAP{Role: "user", ID: "u1"}
			var got []codec.Record
			dep.Attach(sap, func(prim string, params codec.Record) {
				if prim == "pong" {
					got = append(got, params)
				}
			})
			if err := dep.Submit(sap, "ping", codec.Record{"n": int64(7)}); err != nil {
				t.Fatal(err)
			}
			if _, err := kernel.Run(); err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0]["n"] != int64(7) {
				t.Fatalf("pongs = %v", got)
			}
			if dep.Platform().Stats().WireMessages == 0 {
				t.Fatal("no wire traffic")
			}
		})
	}
}

func TestAdapterWireCostVisible(t *testing.T) {
	// The recursion's cost claim: one logical round trip costs 2 wire
	// messages on oneway platforms, 4 with async-over-sync (reply per
	// invocation), 4 with async-over-queue (broker hop per message).
	cost := map[string]uint64{}
	for _, name := range []string{"rpc-corba-like", "rpc-rmi-like", "queue-mq-like"} {
		kernel, dep := deployEcho(t, name)
		sap := core.SAP{Role: "user", ID: "u1"}
		dep.Attach(sap, func(string, codec.Record) {})
		if err := dep.Submit(sap, "ping", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := kernel.Run(); err != nil {
			t.Fatal(err)
		}
		cost[name] = dep.Platform().Stats().WireMessages
	}
	if cost["rpc-corba-like"] != 2 {
		t.Fatalf("oneway round trip = %d wire messages, want 2", cost["rpc-corba-like"])
	}
	if cost["rpc-rmi-like"] != 4 {
		t.Fatalf("async-over-sync round trip = %d wire messages, want 4", cost["rpc-rmi-like"])
	}
	if cost["queue-mq-like"] != 4 {
		t.Fatalf("async-over-queue round trip = %d wire messages, want 4", cost["queue-mq-like"])
	}
}

func TestDeployValidation(t *testing.T) {
	kernel := sim.NewKernel()
	net := network.New(kernel)
	transport := protocol.NewUnreliableDatagram(net)
	corba, _ := ConcretePlatformByName("rpc-corba-like")

	if _, err := Deploy(nil, transport, testPIM(t), corba, Plan{}); err == nil {
		t.Fatal("nil kernel accepted")
	}
	if _, err := Deploy(kernel, nil, testPIM(t), corba, Plan{}); err == nil {
		t.Fatal("nil transport accepted")
	}

	badPIM := testPIM(t)
	badPIM.Build = func(Plan) (*Logic, error) { return &Logic{}, nil }
	if _, err := Deploy(kernel, transport, badPIM, corba, Plan{}); err == nil {
		t.Fatal("empty logic accepted")
	}

	noPlacement := testPIM(t)
	noPlacement.Build = func(Plan) (*Logic, error) {
		return &Logic{Components: map[ComponentID]Component{"x": &echoLogic{}}}, nil
	}
	if _, err := Deploy(kernel, transport, noPlacement, corba, Plan{}); err == nil {
		t.Fatal("unplaced component accepted")
	}

	badBinding := testPIM(t)
	badBinding.Build = func(Plan) (*Logic, error) {
		return &Logic{
			Components: map[ComponentID]Component{"x": &echoLogic{}},
			Placement:  map[ComponentID]middlewareAddr{"x": "n"},
			SAPBinding: map[core.SAP]ComponentID{{Role: "u", ID: "1"}: "ghost"},
		}, nil
	}
	if _, err := Deploy(kernel, transport, badBinding, corba, Plan{}); err == nil {
		t.Fatal("binding to unknown component accepted")
	}

	sap := core.SAP{Role: "user", ID: "u1"}
	buildErr := testPIM(t)
	buildErr.Build = func(Plan) (*Logic, error) { return nil, errors.New("boom") }
	if _, err := Deploy(kernel, transport, buildErr, corba, Plan{SAPs: []core.SAP{sap}}); err == nil {
		t.Fatal("builder error swallowed")
	}

	unboundSAP := testPIM(t)
	orig := unboundSAP.Build
	unboundSAP.Build = func(p Plan) (*Logic, error) {
		logic, err := orig(Plan{}) // ignore the plan's SAPs
		return logic, err
	}
	if _, err := Deploy(kernel, transport, unboundSAP, corba, Plan{SAPs: []core.SAP{sap}}); err == nil {
		t.Fatal("plan SAP left unbound accepted")
	}
}

// middlewareAddr mirrors middleware.Addr for the test above without an
// extra import alias.
type middlewareAddr = protocol.Addr

func TestSubmitUnboundSAP(t *testing.T) {
	_, dep := deployEcho(t, "rpc-corba-like")
	err := dep.Submit(core.SAP{Role: "user", ID: "ghost"}, "ping", nil)
	if err == nil {
		t.Fatal("submit at unbound SAP accepted")
	}
}

func TestRealizationAccessors(t *testing.T) {
	_, dep := deployEcho(t, "queue-mq-like")
	r := dep.Realization()
	if r.Direct || len(r.Adapters) != 1 {
		t.Fatalf("realization = %+v", r)
	}
	if r.Concrete.Name != "queue-mq-like" {
		t.Fatalf("concrete = %q", r.Concrete.Name)
	}
}
