// Package mda implements the paper's §6: the combined use of the
// protocol-centred and middleware-centred paradigms in a model-driven
// design trajectory with defined milestones.
//
// The trajectory's artifacts are executable, not just documents:
//
//   - A PIM (platform-independent service design, Figure 11) couples a
//     service definition (internal/core), platform-independent service
//     logic (Component implementations written against an abstract
//     messaging concept), and an AbstractPlatform definition — the set of
//     platform Concepts the logic relies on.
//   - A ConcretePlatform pairs a middleware profile with the Concepts it
//     provides (the leaves of Figure 10: CORBA-like and RMI-like under the
//     RPC-based class, JMS-like and MQ-like under asynchronous messaging).
//   - Realize performs *abstract-platform realization* (Figure 12): each
//     concept the abstract platform requires is matched against the
//     concrete platform; missing concepts are realized recursively through
//     adapter rules — "abstract-platform service logic" layered on the
//     concrete platform, with the abstract-platform definition functioning
//     as the service definition of the recursion.
//   - Deploy instantiates the PIM's logic on the realized platform,
//     yielding a running system whose service boundary is a core.Provider
//     — the PSI, executable and conformance-checkable.
package mda

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/middleware"
)

// Concept names a platform capability that platform-independent models may
// rely on and platforms may provide. Concepts are the currency of
// platform-independence: "for each concept represented in a
// platform-independent model, there should be a corresponding concept or a
// corresponding combination of concepts in the target platform" (§6).
type Concept string

// The concept vocabulary.
const (
	// ConceptSyncInvocation is request/response remote invocation.
	ConceptSyncInvocation Concept = "sync-invocation"
	// ConceptAsyncMessage is directed, fire-and-forget message passing to
	// a named component.
	ConceptAsyncMessage Concept = "async-message"
	// ConceptQueueing is store-and-forward named queues.
	ConceptQueueing Concept = "queueing"
	// ConceptEventChannel is publish/subscribe event distribution.
	ConceptEventChannel Concept = "event-channel"
)

// AbstractPlatform is the abstract-platform definition of Figure 11: the
// concepts the platform-independent service logic is written against. "The
// choice of abstract platform definition must consider the portability
// requirements since it will define the characteristics of the platform
// upon which service components may rely."
type AbstractPlatform struct {
	Name     string
	Requires []Concept
}

// ConcretePlatform is an available reusable platform: a middleware profile
// plus the concepts it provides directly.
type ConcretePlatform struct {
	Name string
	// Class is the platform class in the Figure 10 trajectory tree:
	// "rpc-based" or "async-messaging".
	Class    string
	Profile  middleware.Profile
	Provides []Concept
}

// provides reports whether the platform offers c directly.
func (p ConcretePlatform) provides(c Concept) bool {
	for _, x := range p.Provides {
		if x == c {
			return true
		}
	}
	return false
}

// ConcretePlatforms returns the four concrete platforms of the Figure 10
// trajectory.
func ConcretePlatforms() []ConcretePlatform {
	return []ConcretePlatform{
		{
			Name:     middleware.ProfileCORBALike.Name,
			Class:    "rpc-based",
			Profile:  middleware.ProfileCORBALike,
			Provides: []Concept{ConceptSyncInvocation, ConceptAsyncMessage, ConceptEventChannel},
		},
		{
			Name:     middleware.ProfileRMILike.Name,
			Class:    "rpc-based",
			Profile:  middleware.ProfileRMILike,
			Provides: []Concept{ConceptSyncInvocation},
		},
		{
			Name:     middleware.ProfileJMSLike.Name,
			Class:    "async-messaging",
			Profile:  middleware.ProfileJMSLike,
			Provides: []Concept{ConceptAsyncMessage, ConceptQueueing, ConceptEventChannel},
		},
		{
			Name:     middleware.ProfileMQLike.Name,
			Class:    "async-messaging",
			Profile:  middleware.ProfileMQLike,
			Provides: []Concept{ConceptQueueing},
		},
	}
}

// ConcretePlatformByName looks a predefined concrete platform up.
func ConcretePlatformByName(name string) (ConcretePlatform, bool) {
	for _, p := range ConcretePlatforms() {
		if p.Name == name {
			return p, true
		}
	}
	return ConcretePlatform{}, false
}

// AdapterRule declares that one concept can be realized on top of others —
// the knowledge base behind recursive abstract-platform realization.
type AdapterRule struct {
	// Realizes is the concept the adapter provides.
	Realizes Concept
	// Using lists the concepts the adapter itself relies on (the
	// recursion: these may in turn need adapters).
	Using []Concept
	// Name identifies the adapter ("async-over-sync").
	Name string
	// Description explains the mechanism for documentation output.
	Description string
	// WireCost is the number of wire messages one adapted logical message
	// costs, for planning documentation (measured costs come from runs).
	WireCost int
}

// DefaultRules is the built-in adapter knowledge base.
func DefaultRules() []AdapterRule {
	return []AdapterRule{
		{
			Realizes:    ConceptAsyncMessage,
			Using:       []Concept{ConceptSyncInvocation},
			Name:        "async-over-sync",
			Description: "directed message sent as a synchronous void invocation; the reply is discarded",
			WireCost:    2,
		},
		{
			Realizes:    ConceptAsyncMessage,
			Using:       []Concept{ConceptQueueing},
			Name:        "async-over-queue",
			Description: "one queue per target component; send enqueues, the target consumes",
			WireCost:    2,
		},
		{
			Realizes:    ConceptSyncInvocation,
			Using:       []Concept{ConceptAsyncMessage},
			Name:        "sync-over-async",
			Description: "request/response correlation identifiers over two directed messages",
			WireCost:    2,
		},
		{
			Realizes:    ConceptEventChannel,
			Using:       []Concept{ConceptAsyncMessage},
			Name:        "events-over-async",
			Description: "subscription registry component fanning events out as directed messages",
			WireCost:    2,
		},
	}
}

// AdapterUse records one adapter selected during realization, with the
// concept chain that justified it.
type AdapterUse struct {
	Rule AdapterRule
	// For is the required concept this use (possibly transitively)
	// supports.
	For Concept
	// Depth is the recursion depth (1 = directly bridging a required
	// concept).
	Depth int
}

// Realization is the outcome of matching an abstract platform against a
// concrete platform.
type Realization struct {
	Abstract AbstractPlatform
	Concrete ConcretePlatform
	// Direct is true when every required concept is provided natively
	// ("this may be straightforward when the selected platform conforms
	// (directly) to the abstract platform definition", §6).
	Direct bool
	// Adapters lists the abstract-platform service logic synthesized by
	// the recursion, in resolution order.
	Adapters []AdapterUse
}

// ErrUnrealizable is returned when no adapter chain can bridge a required
// concept.
var ErrUnrealizable = errors.New("mda: abstract platform not realizable on concrete platform")

// Realize matches the abstract-platform definition with a concrete
// platform definition (Figure 12). Missing concepts are bridged with
// adapter rules, recursively: an adapter's own requirements are resolved
// the same way, with the abstract-platform definition functioning as
// service definition for the recursion. A cycle or an unbridgeable concept
// yields ErrUnrealizable.
func Realize(abstract AbstractPlatform, concrete ConcretePlatform, rules []AdapterRule) (Realization, error) {
	r := Realization{Abstract: abstract, Concrete: concrete, Direct: true}
	for _, need := range abstract.Requires {
		if err := realizeConcept(need, need, concrete, rules, 1, map[Concept]bool{}, &r); err != nil {
			return Realization{}, err
		}
	}
	return r, nil
}

func realizeConcept(need, root Concept, concrete ConcretePlatform, rules []AdapterRule, depth int, visiting map[Concept]bool, r *Realization) error {
	if concrete.provides(need) {
		return nil
	}
	if visiting[need] {
		return fmt.Errorf("%w: concept %q is cyclically dependent", ErrUnrealizable, need)
	}
	visiting[need] = true
	defer delete(visiting, need)
	for _, rule := range rules {
		if rule.Realizes != need {
			continue
		}
		ok := true
		for _, dep := range rule.Using {
			if err := realizeConcept(dep, root, concrete, rules, depth+1, visiting, r); err != nil {
				ok = false
				break
			}
		}
		if ok {
			r.Direct = false
			r.Adapters = append(r.Adapters, AdapterUse{Rule: rule, For: root, Depth: depth})
			return nil
		}
	}
	return fmt.Errorf("%w: no adapter realizes %q on %q", ErrUnrealizable, need, concrete.Name)
}

// Describe renders the realization for documentation output.
func (r Realization) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "abstract platform %q on concrete platform %q (%s class)\n",
		r.Abstract.Name, r.Concrete.Name, r.Concrete.Class)
	if r.Direct {
		sb.WriteString("  direct: concrete platform conforms to the abstract platform definition\n")
		return sb.String()
	}
	sb.WriteString("  recursive service design (abstract-platform service logic):\n")
	for _, a := range r.Adapters {
		fmt.Fprintf(&sb, "    [depth %d, for %s] %s: %s (wire cost ×%d)\n",
			a.Depth, a.For, a.Rule.Name, a.Rule.Description, a.Rule.WireCost)
	}
	return sb.String()
}

// Milestone names the design-trajectory milestones of §6.
type Milestone string

// Milestones in trajectory order (Figure 11 and the §6 list).
const (
	MilestoneServiceDefinition   Milestone = "service-definition"
	MilestonePIServiceDesign     Milestone = "platform-independent-service-design"
	MilestonePlatformSelection   Milestone = "platform-selection"
	MilestoneAbstractRealization Milestone = "abstract-platform-realization"
	MilestonePSI                 Milestone = "platform-specific-implementation"
)

// TrajectoryStep is one milestone with its artifact description.
type TrajectoryStep struct {
	Milestone Milestone
	Detail    string
}

// PlanTrajectory lays out the milestones for realizing pim on target,
// returning the steps and the realization decision. It fails when the
// service definition is invalid or the abstract platform is unrealizable —
// design errors caught at the design level, before any deployment.
func PlanTrajectory(pim *PIM, target ConcretePlatform) ([]TrajectoryStep, Realization, error) {
	if err := pim.Validate(); err != nil {
		return nil, Realization{}, fmt.Errorf("mda: invalid PIM: %w", err)
	}
	real, err := Realize(pim.Abstract, target, DefaultRules())
	if err != nil {
		return nil, Realization{}, err
	}
	steps := []TrajectoryStep{
		{MilestoneServiceDefinition, fmt.Sprintf("service %q: %d primitives, %d constraints (middleware-platform-independent and paradigm-independent)",
			pim.Service.Name, len(pim.Service.Primitives), len(pim.Service.Constraints))},
		{MilestonePIServiceDesign, fmt.Sprintf("service logic %q against abstract platform %q requiring %v",
			pim.Name, pim.Abstract.Name, pim.Abstract.Requires)},
		{MilestonePlatformSelection, fmt.Sprintf("target %q (%s class)", target.Name, target.Class)},
	}
	if real.Direct {
		steps = append(steps, TrajectoryStep{MilestoneAbstractRealization,
			"direct: concrete platform conforms to the abstract-platform definition"})
	} else {
		names := make([]string, len(real.Adapters))
		for i, a := range real.Adapters {
			names[i] = a.Rule.Name
		}
		steps = append(steps, TrajectoryStep{MilestoneAbstractRealization,
			fmt.Sprintf("recursive: abstract-platform service logic %v", names)})
	}
	steps = append(steps, TrajectoryStep{MilestonePSI,
		fmt.Sprintf("deployable service %q on %q", pim.Service.Name, target.Profile.Name)})
	return steps, real, nil
}

// Validate checks the PIM's internal consistency.
func (p *PIM) Validate() error {
	if p == nil {
		return errors.New("mda: nil PIM")
	}
	if p.Name == "" {
		return errors.New("mda: PIM must be named")
	}
	if p.Service == nil {
		return fmt.Errorf("mda: PIM %q has no service definition", p.Name)
	}
	if err := p.Service.Validate(); err != nil {
		return fmt.Errorf("mda: PIM %q service: %w", p.Name, err)
	}
	if len(p.Abstract.Requires) == 0 {
		return fmt.Errorf("mda: PIM %q abstract platform requires no concepts", p.Name)
	}
	if p.Build == nil {
		return fmt.Errorf("mda: PIM %q has no logic builder", p.Name)
	}
	return nil
}

// PIM is a platform-independent service design (Figure 11): service
// definition + platform-independent service logic + abstract-platform
// definition.
type PIM struct {
	Name     string
	Service  *core.ServiceSpec
	Abstract AbstractPlatform
	// Build instantiates the service logic for a deployment plan.
	Build func(plan Plan) (*Logic, error)
}

// Plan describes the deployment a PIM is instantiated for.
type Plan struct {
	// SAPs are the service access points the deployment serves.
	SAPs []core.SAP
	// NodeOf maps each SAP to its hosting node; nil defaults to the SAP ID.
	NodeOf func(core.SAP) middleware.Addr
}

// nodeOf resolves the hosting node of a SAP.
func (p Plan) nodeOf(sap core.SAP) middleware.Addr {
	if p.NodeOf != nil {
		return p.NodeOf(sap)
	}
	return middleware.Addr(sap.ID)
}
