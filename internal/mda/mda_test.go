package mda

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/middleware"
)

func abstractRequiring(concepts ...Concept) AbstractPlatform {
	return AbstractPlatform{Name: "test-abstract", Requires: concepts}
}

func mustPlatform(t *testing.T, name string) ConcretePlatform {
	t.Helper()
	p, ok := ConcretePlatformByName(name)
	if !ok {
		t.Fatalf("platform %q not found", name)
	}
	return p
}

func TestConcretePlatformsCoverFigure10(t *testing.T) {
	platforms := ConcretePlatforms()
	if len(platforms) != 4 {
		t.Fatalf("platforms = %d, want 4", len(platforms))
	}
	classes := map[string]int{}
	for _, p := range platforms {
		classes[p.Class]++
		if p.Profile.Name != p.Name {
			t.Fatalf("platform %q profile mismatch %q", p.Name, p.Profile.Name)
		}
	}
	if classes["rpc-based"] != 2 || classes["async-messaging"] != 2 {
		t.Fatalf("classes = %v, want 2+2 (Figure 10)", classes)
	}
	if _, ok := ConcretePlatformByName("nope"); ok {
		t.Fatal("unknown platform found")
	}
}

func TestRealizeDirect(t *testing.T) {
	for _, name := range []string{"rpc-corba-like", "msg-jms-like"} {
		r, err := Realize(abstractRequiring(ConceptAsyncMessage), mustPlatform(t, name), DefaultRules())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Direct || len(r.Adapters) != 0 {
			t.Fatalf("%s: want direct realization, got %+v", name, r)
		}
		if !strings.Contains(r.Describe(), "direct") {
			t.Fatalf("%s: Describe = %q", name, r.Describe())
		}
	}
}

func TestRealizeRecursive(t *testing.T) {
	tests := []struct {
		platform string
		adapter  string
	}{
		{"rpc-rmi-like", "async-over-sync"},
		{"queue-mq-like", "async-over-queue"},
	}
	for _, tt := range tests {
		r, err := Realize(abstractRequiring(ConceptAsyncMessage), mustPlatform(t, tt.platform), DefaultRules())
		if err != nil {
			t.Fatalf("%s: %v", tt.platform, err)
		}
		if r.Direct {
			t.Fatalf("%s: expected recursive realization", tt.platform)
		}
		if len(r.Adapters) != 1 || r.Adapters[0].Rule.Name != tt.adapter {
			t.Fatalf("%s: adapters = %+v, want %s", tt.platform, r.Adapters, tt.adapter)
		}
		if r.Adapters[0].Depth != 1 || r.Adapters[0].For != ConceptAsyncMessage {
			t.Fatalf("%s: adapter metadata = %+v", tt.platform, r.Adapters[0])
		}
		if !strings.Contains(r.Describe(), tt.adapter) {
			t.Fatalf("%s: Describe = %q", tt.platform, r.Describe())
		}
	}
}

func TestRealizeTransitive(t *testing.T) {
	// sync-invocation on MQ-like: sync-over-async needs async-message,
	// which itself needs async-over-queue — two levels of recursion.
	r, err := Realize(abstractRequiring(ConceptSyncInvocation), mustPlatform(t, "queue-mq-like"), DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Adapters) != 2 {
		t.Fatalf("adapters = %+v, want chain of 2", r.Adapters)
	}
	// Inner adapter resolved first (deeper).
	if r.Adapters[0].Rule.Name != "async-over-queue" || r.Adapters[0].Depth != 2 {
		t.Fatalf("inner adapter = %+v", r.Adapters[0])
	}
	if r.Adapters[1].Rule.Name != "sync-over-async" || r.Adapters[1].Depth != 1 {
		t.Fatalf("outer adapter = %+v", r.Adapters[1])
	}
}

func TestRealizeEventChannelOnRMI(t *testing.T) {
	// event-channel on RMI-like: events-over-async → async-over-sync.
	r, err := Realize(abstractRequiring(ConceptEventChannel), mustPlatform(t, "rpc-rmi-like"), DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(r.Adapters))
	for i, a := range r.Adapters {
		names[i] = a.Rule.Name
	}
	want := []string{"async-over-sync", "events-over-async"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("adapter chain = %v, want %v", names, want)
	}
}

func TestRealizeUnrealizable(t *testing.T) {
	// queueing has no adapter rule: unrealizable on RPC-only platforms.
	_, err := Realize(abstractRequiring(ConceptQueueing), mustPlatform(t, "rpc-rmi-like"), DefaultRules())
	if !errors.Is(err, ErrUnrealizable) {
		t.Fatalf("err = %v, want ErrUnrealizable", err)
	}
}

func TestRealizeCycleDetection(t *testing.T) {
	rules := []AdapterRule{
		{Realizes: "a", Using: []Concept{"b"}, Name: "a-over-b"},
		{Realizes: "b", Using: []Concept{"a"}, Name: "b-over-a"},
	}
	_, err := Realize(abstractRequiring("a"), ConcretePlatform{Name: "bare"}, rules)
	if !errors.Is(err, ErrUnrealizable) {
		t.Fatalf("err = %v, want ErrUnrealizable on cycle", err)
	}
}

func TestRealizeMultipleRequirements(t *testing.T) {
	r, err := Realize(
		abstractRequiring(ConceptAsyncMessage, ConceptSyncInvocation),
		mustPlatform(t, "rpc-corba-like"), DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Direct {
		t.Fatalf("corba provides both; got %+v", r)
	}
}

func testPIM(t *testing.T) *PIM {
	t.Helper()
	spec := &core.ServiceSpec{
		Name: "echo-service",
		Primitives: []core.PrimitiveDef{
			{Name: "ping", Direction: core.FromUser},
			{Name: "pong", Direction: core.ToUser},
		},
	}
	return &PIM{
		Name:     "echo-pim",
		Service:  spec,
		Abstract: abstractRequiring(ConceptAsyncMessage),
		Build: func(plan Plan) (*Logic, error) {
			logic := &Logic{
				Components: map[ComponentID]Component{},
				Placement:  map[ComponentID]middleware.Addr{},
				SAPBinding: map[core.SAP]ComponentID{},
			}
			logic.Components["echo"] = &echoLogic{}
			logic.Placement["echo"] = "server"
			for _, sap := range plan.SAPs {
				id := ComponentID("agent:" + sap.ID)
				logic.Components[id] = &echoAgent{server: "echo"}
				logic.Placement[id] = plan.nodeOf(sap)
				logic.SAPBinding[sap] = id
			}
			return logic, nil
		},
	}
}

func TestPIMValidate(t *testing.T) {
	if err := testPIM(t).Validate(); err != nil {
		t.Fatalf("valid PIM rejected: %v", err)
	}
	var nilPIM *PIM
	if err := nilPIM.Validate(); err == nil {
		t.Fatal("nil PIM accepted")
	}
	tests := []struct {
		name   string
		mutate func(*PIM)
	}{
		{"unnamed", func(p *PIM) { p.Name = "" }},
		{"no service", func(p *PIM) { p.Service = nil }},
		{"invalid service", func(p *PIM) { p.Service.Primitives = nil }},
		{"no concepts", func(p *PIM) { p.Abstract.Requires = nil }},
		{"no builder", func(p *PIM) { p.Build = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testPIM(t)
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatal("invalid PIM accepted")
			}
		})
	}
}

func TestPlanTrajectorySteps(t *testing.T) {
	steps, real, err := PlanTrajectory(testPIM(t), mustPlatform(t, "rpc-rmi-like"))
	if err != nil {
		t.Fatal(err)
	}
	if real.Direct {
		t.Fatal("RMI-like should need recursion for async-message")
	}
	wantOrder := []Milestone{
		MilestoneServiceDefinition,
		MilestonePIServiceDesign,
		MilestonePlatformSelection,
		MilestoneAbstractRealization,
		MilestonePSI,
	}
	if len(steps) != len(wantOrder) {
		t.Fatalf("steps = %d, want %d", len(steps), len(wantOrder))
	}
	for i, m := range wantOrder {
		if steps[i].Milestone != m {
			t.Fatalf("step %d = %s, want %s", i, steps[i].Milestone, m)
		}
		if steps[i].Detail == "" {
			t.Fatalf("step %d has no detail", i)
		}
	}
	if !strings.Contains(steps[3].Detail, "async-over-sync") {
		t.Fatalf("realization step detail = %q", steps[3].Detail)
	}
}

func TestPlanTrajectoryRejectsInvalidPIM(t *testing.T) {
	p := testPIM(t)
	p.Build = nil
	if _, _, err := PlanTrajectory(p, mustPlatform(t, "rpc-corba-like")); err == nil {
		t.Fatal("invalid PIM planned")
	}
}

func TestPlanTrajectoryUnrealizable(t *testing.T) {
	p := testPIM(t)
	p.Abstract.Requires = []Concept{ConceptQueueing}
	if _, _, err := PlanTrajectory(p, mustPlatform(t, "rpc-rmi-like")); !errors.Is(err, ErrUnrealizable) {
		t.Fatalf("err = %v, want ErrUnrealizable", err)
	}
}
