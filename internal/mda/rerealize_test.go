package mda

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
)

// TestRerealizeMidRun: a running deployment migrates between concrete
// platforms without losing component state or service: the profile is
// swapped, the async-message adapter is replaced, and traffic flows
// through the new realization.
func TestRerealizeMidRun(t *testing.T) {
	cases := []struct {
		from, to      string
		wantMessaging string
	}{
		// oneway → queue: the queue endpoints are installed live.
		{"rpc-corba-like", "queue-mq-like", "async-over-queue"},
		// queue → oneway: the component objects are registered live.
		{"queue-mq-like", "rpc-corba-like", "native-oneway"},
		// oneway → sync: same objects, new adapter.
		{"rpc-corba-like", "rpc-rmi-like", "async-over-sync"},
	}
	for _, tc := range cases {
		t.Run(tc.from+"→"+tc.to, func(t *testing.T) {
			kernel, dep := deployEcho(t, tc.from)
			sap := core.SAP{Role: "user", ID: "u1"}
			var got []codec.Record
			dep.Attach(sap, func(prim string, params codec.Record) {
				if prim == "pong" {
					got = append(got, params)
				}
			})
			if err := dep.Submit(sap, "ping", codec.Record{"n": int64(1)}); err != nil {
				t.Fatal(err)
			}
			if _, err := kernel.Run(); err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 {
				t.Fatalf("pre-migration pongs = %v", got)
			}

			target, ok := ConcretePlatformByName(tc.to)
			if !ok {
				t.Fatalf("platform %q unknown", tc.to)
			}
			if err := dep.Rerealize(target); err != nil {
				t.Fatalf("Rerealize onto %s: %v", tc.to, err)
			}
			if dep.MessagingName() != tc.wantMessaging {
				t.Fatalf("messaging = %q, want %q", dep.MessagingName(), tc.wantMessaging)
			}
			if dep.Platform().Profile().Name != tc.to {
				t.Fatalf("profile = %q, want %q", dep.Platform().Profile().Name, tc.to)
			}
			if dep.Realization().Concrete.Name != tc.to {
				t.Fatalf("realization platform = %q, want %q", dep.Realization().Concrete.Name, tc.to)
			}

			if err := dep.Submit(sap, "ping", codec.Record{"n": int64(2)}); err != nil {
				t.Fatal(err)
			}
			if _, err := kernel.Run(); err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 || got[1]["n"] != int64(2) {
				t.Fatalf("post-migration pongs = %v", got)
			}
		})
	}
}

// TestRerealizeIdempotent: migrating to the same platform twice installs
// nothing twice and keeps serving.
func TestRerealizeIdempotent(t *testing.T) {
	kernel, dep := deployEcho(t, "rpc-corba-like")
	target, _ := ConcretePlatformByName("rpc-corba-like")
	if err := dep.Rerealize(target); err != nil {
		t.Fatal(err)
	}
	if err := dep.Rerealize(target); err != nil {
		t.Fatal(err)
	}
	sap := core.SAP{Role: "user", ID: "u1"}
	pongs := 0
	dep.Attach(sap, func(prim string, _ codec.Record) {
		if prim == "pong" {
			pongs++
		}
	})
	if err := dep.Submit(sap, "ping", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if pongs != 1 {
		t.Fatalf("pongs = %d, want 1", pongs)
	}
}
