// Package metrics provides the small measurement toolkit the experiment
// harness uses: streaming latency histograms over virtual time, fairness
// indices, and fixed-width tables for reproducing the paper's figures as
// printed artifacts.
//
// Histogram is fully online: it never stores more than a bounded number
// of raw samples regardless of how many are added, so sweep memory stays
// flat as client populations grow into the millions. Aggregates that the
// sweep CSVs depend on (Count, Mean, Min, Max, and quantiles up to
// sketchK samples) are exact; beyond sketchK samples quantiles degrade
// gracefully with a documented deterministic rank-error bound.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
	"unicode/utf8"
)

// sketchK is the per-level capacity of the quantile sketch. While a
// histogram holds at most sketchK samples the sketch is just a sorted
// array and every quantile is exact — byte-identical to sorting all
// samples and taking the nearest rank. Past sketchK samples, levels
// compact deterministically and the worst-case quantile rank error is
// bounded by errBound.
const sketchK = 4096

// errBound returns the worst-case rank error of Quantile for a
// histogram holding n samples: zero while n <= sketchK, and at most
// (ceil(log2(n/k))+1) * n/k afterwards (k = sketchK). Each compaction
// of level i (items of weight 2^i) perturbs any rank by at most 2^i,
// and level i compacts at most n/(k*2^i) times, so the per-level
// contribution telescopes to n/k across ceil(log2(n/k))+1 live levels.
// At n = 2^20 that is 9*256 = 2304 ranks, under 0.25% of the
// population.
func errBound(n int64) int64 {
	if n <= sketchK {
		return 0
	}
	levels := int64(1)
	for m := n; m > sketchK; m >>= 1 {
		levels++
	}
	return levels * (n / sketchK)
}

// Histogram accumulates duration samples online and answers summary
// queries. The zero value is ready to use.
//
// Count, Mean, Min, and Max are always exact. Quantile (and P50, P95,
// P99) is exact while at most sketchK (4096) samples have been added;
// afterwards it answers from a deterministic multi-level compaction
// sketch whose worst-case rank error is documented on errBound. Memory
// is O(sketchK * log(n/sketchK)) regardless of n, so per-client and
// aggregate histograms stay flat as populations grow.
//
// Determinism: compaction keeps alternating elements of each sorted
// level with a per-level offset that toggles on every compaction — no
// randomness anywhere — so two runs that Add the same samples in the
// same order answer identical quantiles.
type Histogram struct {
	count int64
	sum   int64 // exact running sum in nanoseconds
	min   int64
	max   int64

	// Welford online moments: mean and sum of squared deviations (M2),
	// accumulated in arrival order (deterministic for deterministic
	// workloads).
	mean float64
	m2   float64

	// levels[i] holds sketch items of weight 2^i. levels[0] is the
	// insertion buffer; total stored weight always equals count.
	levels    [][]int64
	compacted bool   // true once any compaction happened (quantiles now approximate)
	sorted0   bool   // levels[0] known-sorted (exact mode fast path)
	coins     uint64 // per-level compaction offset toggles (bit i = level i)
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	v := int64(d)
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	delta := float64(v) - h.mean
	h.mean += delta / float64(h.count)
	h.m2 += delta * (float64(v) - h.mean)
	if len(h.levels) == 0 {
		h.levels = append(h.levels, make([]int64, 0, 16))
	}
	h.levels[0] = append(h.levels[0], v)
	h.sorted0 = false
	if len(h.levels[0]) > sketchK {
		h.compactLevel(0)
	}
}

// compactLevel sorts level i and promotes alternating elements (weight
// doubled) to level i+1, cascading if that level overflows. An odd
// trailing element stays behind so total weight is preserved exactly.
func (h *Histogram) compactLevel(i int) {
	lv := h.levels[i]
	sortInt64s(lv)
	pairs := lv
	var hold int64
	odd := len(lv)%2 == 1
	if odd {
		hold = lv[len(lv)-1]
		pairs = lv[:len(lv)-1]
	}
	off := int((h.coins >> uint(i)) & 1)
	h.coins ^= 1 << uint(i)
	promoted := make([]int64, 0, len(pairs)/2)
	for j := off; j < len(pairs); j += 2 {
		promoted = append(promoted, pairs[j])
	}
	h.levels[i] = h.levels[i][:0]
	if odd {
		h.levels[i] = append(h.levels[i], hold)
	}
	if i+1 >= len(h.levels) {
		h.levels = append(h.levels, nil)
	}
	h.levels[i+1] = append(h.levels[i+1], promoted...)
	h.compacted = true
	if len(h.levels[i+1]) > sketchK {
		h.compactLevel(i + 1)
	}
}

// retained reports how many raw values the sketch currently stores —
// bounded by sketchK per level regardless of Count.
func (h *Histogram) retained() int {
	n := 0
	for _, lv := range h.levels {
		n += len(lv)
	}
	return n
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return int(h.count) }

// Mean returns the arithmetic mean, or zero when empty. It is computed
// from an exact integer sum, not the sketch, so it is exact at any
// population size.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Variance returns the population variance in ns², computed online via
// Welford's algorithm, or zero when fewer than two samples were added.
func (h *Histogram) Variance() float64 {
	if h.count < 2 {
		return 0
	}
	return h.m2 / float64(h.count)
}

// StdDev returns the population standard deviation, derived from the
// Welford M2 accumulator, or zero when fewer than two samples were
// added.
func (h *Histogram) StdDev() time.Duration {
	return time.Duration(math.Sqrt(h.Variance()))
}

// ensureSorted0 sorts the insertion buffer once per mutation epoch
// (exact-mode fast path, used only before any compaction).
func (h *Histogram) ensureSorted0() {
	if !h.sorted0 {
		sortInt64s(h.levels[0])
		h.sorted0 = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest rank, or
// zero when empty. Exact while Count <= sketchK; afterwards answered
// from the compaction sketch with worst-case rank error errBound(n).
// The extreme ranks are always exact: q=0 returns Min and q=1 returns
// Max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(h.count-1) + 0.5)
	if !h.compacted {
		h.ensureSorted0()
		return time.Duration(h.levels[0][target])
	}
	if target <= 0 {
		return time.Duration(h.min)
	}
	if target >= h.count-1 {
		return time.Duration(h.max)
	}
	return time.Duration(h.rankSelect(target))
}

// rankSelect answers the nearest-rank query over the weighted sketch:
// each item at level i covers 2^i consecutive ranks, total weight is
// exactly count, and the item whose rank interval contains target is
// returned.
func (h *Histogram) rankSelect(target int64) int64 {
	type vw struct {
		v int64
		w int64
	}
	items := make([]vw, 0, h.retained())
	for i, lv := range h.levels {
		w := int64(1) << uint(i)
		for _, v := range lv {
			items = append(items, vw{v, w})
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].v < items[b].v })
	var acc int64
	for _, it := range items {
		if target < acc+it.w {
			return it.v
		}
		acc += it.w
	}
	return h.max
}

// P50 is the median (see Quantile for the exactness regime and the
// sketch error bound).
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 is the 95th percentile (see Quantile for the exactness regime
// and the sketch error bound).
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 is the 99th percentile (see Quantile for the exactness regime
// and the sketch error bound).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Max returns the largest sample (exact at any size), or zero when
// empty.
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Min returns the smallest sample (exact at any size), or zero when
// empty.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Summary renders "mean=… p50=… p95=… max=… (n=…)".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%v p50=%v p95=%v max=%v (n=%d)",
		h.Mean().Round(time.Microsecond),
		h.P50().Round(time.Microsecond),
		h.P95().Round(time.Microsecond),
		h.Max().Round(time.Microsecond),
		h.Count())
}

// sortInt64s sorts an int64 slice ascending.
func sortInt64s(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Table accumulates rows and renders them with aligned columns — the
// printed form of every reproduced figure.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title line and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; missing cells render empty, extra cells are
// kept and widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table. Column widths are measured in runes, not
// bytes, so multi-byte UTF-8 cells (µs durations, accented names)
// align correctly.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Jain computes Jain's fairness index over non-negative allocations:
// (Σx)² / (n·Σx²), which is 1.0 for perfectly equal shares and approaches
// 1/n under maximal skew. Empty or all-zero input yields 0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
