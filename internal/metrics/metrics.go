// Package metrics provides the small measurement toolkit the experiment
// harness uses: latency histograms over virtual time, counters, and
// fixed-width tables for reproducing the paper's figures as printed
// artifacts.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Histogram accumulates duration samples and answers summary queries.
// The zero value is ready to use.
type Histogram struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the arithmetic mean, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// ensureSorted sorts the backing slice once per mutation epoch.
func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank, or zero
// when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.ensureSorted()
	idx := int(q*float64(len(h.samples)-1) + 0.5)
	return h.samples[idx]
}

// P50 is the median.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 is the 95th percentile.
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 is the 99th percentile.
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Max returns the largest sample, or zero when empty.
func (h *Histogram) Max() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[len(h.samples)-1]
}

// Min returns the smallest sample, or zero when empty.
func (h *Histogram) Min() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[0]
}

// Summary renders "mean=… p50=… p95=… max=… (n=…)".
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%v p50=%v p95=%v max=%v (n=%d)",
		h.Mean().Round(time.Microsecond),
		h.P50().Round(time.Microsecond),
		h.P95().Round(time.Microsecond),
		h.Max().Round(time.Microsecond),
		h.Count())
}

// Table accumulates rows and renders them with aligned columns — the
// printed form of every reproduced figure.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title line and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; missing cells render empty, extra cells are
// kept and widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Jain computes Jain's fairness index over non-negative allocations:
// (Σx)² / (n·Σx²), which is 1.0 for perfectly equal shares and approaches
// 1/n under maximal skew. Empty or all-zero input yields 0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
