package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.P50() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram should answer zeros")
	}
	if !strings.Contains(h.Summary(), "n=0") {
		t.Fatalf("Summary = %q", h.Summary())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{3, 1, 2, 5, 4} {
		h.Add(d * time.Millisecond)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 3*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.P50() != 3*time.Millisecond {
		t.Fatalf("P50 = %v", h.P50())
	}
	if h.Min() != time.Millisecond || h.Max() != 5*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramAddAfterQuery(t *testing.T) {
	var h Histogram
	h.Add(10 * time.Millisecond)
	_ = h.P50()
	h.Add(time.Millisecond)
	if h.Min() != time.Millisecond {
		t.Fatal("sample added after query lost")
	}
}

func TestQuantileClamps(t *testing.T) {
	var h Histogram
	h.Add(1)
	h.Add(2)
	if h.Quantile(-1) != h.Min() {
		t.Fatal("q<0 should clamp to min")
	}
	if h.Quantile(2) != h.Max() {
		t.Fatal("q>1 should clamp to max")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Add(time.Duration(v) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "solution", "msgs", "latency")
	tb.AddRow("callback", "120", "4ms")
	tb.AddRow("polling", "2400", "55ms")
	out := tb.String()
	for _, want := range []string{"Figure X", "solution", "callback", "2400", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1")
	tb.AddRow("1", "2", "3")
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
}

func TestJain(t *testing.T) {
	if got := Jain(nil); got != 0 {
		t.Fatalf("Jain(nil) = %v", got)
	}
	if got := Jain([]float64{0, 0}); got != 0 {
		t.Fatalf("Jain(zeros) = %v", got)
	}
	if got := Jain([]float64{5, 5, 5, 5}); got != 1 {
		t.Fatalf("Jain(equal) = %v, want 1", got)
	}
	skewed := Jain([]float64{10, 0, 0, 0})
	if skewed < 0.24 || skewed > 0.26 {
		t.Fatalf("Jain(max skew over 4) = %v, want 0.25", skewed)
	}
	mid := Jain([]float64{4, 6})
	if mid <= skewed || mid >= 1 {
		t.Fatalf("Jain(mild skew) = %v, want between", mid)
	}
}
