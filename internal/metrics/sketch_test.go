package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

// exactQuantile is the pre-streaming reference: sort everything, take
// the nearest rank.
func exactQuantile(sorted []int64, q float64) int64 {
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}

// TestSketchExactBelowK pins that the sketch is byte-identical to the
// sorted-sample nearest-rank implementation while n <= sketchK. The
// sweep CSVs depend on this: default/large band histograms never
// exceed ~1k samples, so the metrics rework must not move a single
// quantile there.
func TestSketchExactBelowK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	ref := make([]int64, 0, sketchK)
	for i := 0; i < sketchK; i++ {
		v := rng.Int63n(1_000_000_000)
		h.Add(time.Duration(v))
		ref = append(ref, v)
	}
	sorted := append([]int64(nil), ref...)
	sortInt64s(sorted)
	for q := 0.0; q <= 1.0; q += 0.001 {
		got := int64(h.Quantile(q))
		want := exactQuantile(sorted, q)
		if got != want {
			t.Fatalf("Quantile(%v) = %d, want exact %d (n=%d)", q, got, want, h.Count())
		}
	}
	if h.compacted {
		t.Fatal("histogram compacted at n == sketchK; exactness contract broken")
	}
}

// rankError returns the distance (in ranks) from target to the rank
// interval that value v occupies in the exact sorted sample.
func rankError(sorted []int64, v int64, target int) int {
	lo := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	if lo >= hi {
		// v not present in the exact sample — cannot happen: the sketch
		// only stores values that were added.
		return len(sorted)
	}
	if target < lo {
		return lo - target
	}
	if target > hi-1 {
		return target - (hi - 1)
	}
	return 0
}

// TestSketchErrorBound cross-checks sketch quantiles against exact
// sorted-sample quantiles on randomized seeded inputs well past the
// compaction threshold, asserting the documented worst-case rank error
// bound from errBound.
func TestSketchErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n sketch cross-check")
	}
	cases := []struct {
		name string
		n    int
		gen  func(*rand.Rand) int64
	}{
		{"uniform", 200_000, func(r *rand.Rand) int64 { return r.Int63n(1_000_000_000) }},
		{"exponential", 200_000, func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 1e6) }},
		{"clustered", 1 << 20, func(r *rand.Rand) int64 { return r.Int63n(64) * 1_000_000 }},
	}
	quantiles := []float64{0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for _, tc := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			var h Histogram
			ref := make([]int64, 0, tc.n)
			for i := 0; i < tc.n; i++ {
				v := tc.gen(rng)
				h.Add(time.Duration(v))
				ref = append(ref, v)
			}
			sortInt64s(ref)
			bound := int(errBound(int64(tc.n)))
			if bound <= 0 {
				t.Fatalf("%s: errBound(%d) = %d, want positive past sketchK", tc.name, tc.n, bound)
			}
			for _, q := range quantiles {
				got := int64(h.Quantile(q))
				target := int(q*float64(tc.n-1) + 0.5)
				if e := rankError(ref, got, target); e > bound {
					t.Errorf("%s seed=%d: Quantile(%v) rank error %d exceeds documented bound %d",
						tc.name, seed, q, e, bound)
				}
			}
			if h.Min() != time.Duration(ref[0]) || h.Max() != time.Duration(ref[len(ref)-1]) {
				t.Errorf("%s seed=%d: Min/Max drifted: %v/%v", tc.name, seed, h.Min(), h.Max())
			}
			if h.Mean() != time.Duration(sum(ref)/int64(tc.n)) {
				t.Errorf("%s seed=%d: Mean not exact", tc.name, seed)
			}
		}
	}
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestSketchDeterministic pins that two histograms fed the same
// sequence answer identical quantiles — the compaction schedule has no
// hidden nondeterminism.
func TestSketchDeterministic(t *testing.T) {
	build := func() *Histogram {
		rng := rand.New(rand.NewSource(42))
		var h Histogram
		for i := 0; i < 50_000; i++ {
			h.Add(time.Duration(rng.Int63n(1e9)))
		}
		return &h
	}
	a, b := build(), build()
	for q := 0.0; q <= 1.0; q += 0.01 {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("Quantile(%v) differs across identical runs", q)
		}
	}
}

// TestHistogramMemoryFlat pins the O(1)-per-client claim: a histogram
// fed 2^20 samples retains a bounded number of raw values.
func TestHistogramMemoryFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	n := 1 << 20
	for i := 0; i < n; i++ {
		h.Add(time.Duration(rng.Int63n(1e9)))
	}
	if h.Count() != n {
		t.Fatalf("Count = %d", h.Count())
	}
	if got, limit := h.retained(), 12*sketchK; got > limit {
		t.Fatalf("retained %d raw values after %d adds, want <= %d", got, n, limit)
	}
}

func TestStdDev(t *testing.T) {
	var h Histogram
	if h.StdDev() != 0 || h.Variance() != 0 {
		t.Fatal("empty histogram should answer zero moments")
	}
	h.Add(2)
	if h.StdDev() != 0 {
		t.Fatal("single sample has zero stddev")
	}
	h.Add(4)
	h.Add(4)
	h.Add(4)
	h.Add(5)
	h.Add(5)
	h.Add(7)
	h.Add(9)
	// Population variance of {2,4,4,4,5,5,7,9} is 4.
	if v := h.Variance(); v < 3.999 || v > 4.001 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if sd := h.StdDev(); sd != 2 {
		t.Fatalf("StdDev = %v, want 2ns", sd)
	}
	if h.Sum() != 40 {
		t.Fatalf("Sum = %v, want 40", h.Sum())
	}
}

// TestTableRuneWidths pins the multi-byte column fix: cells containing
// multi-byte runes (µ, é) must not skew column alignment, which the old
// byte-length measurement did.
func TestTableRuneWidths(t *testing.T) {
	tb := NewTable("", "col", "next")
	tb.AddRow("µµµµ", "x")
	tb.AddRow("abcd", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	// Layout without a title: header, separator, then the two data rows.
	// Both data rows have equal-rune-width first cells, so the second
	// column must start at the same rune offset in both lines.
	offsetOf := func(line, cell string) int {
		i := strings.Index(line, cell)
		if i < 0 {
			t.Fatalf("line %q missing cell %q", line, cell)
		}
		return utf8.RuneCountInString(line[:i])
	}
	if a, b := offsetOf(lines[2], "x"), offsetOf(lines[3], "y"); a != b {
		t.Fatalf("second column misaligned: rune offsets %d vs %d\n%s", a, b, out)
	}
	// The separator spans the rune width of the table, which equals the
	// rune width of each padded data row.
	if want := utf8.RuneCountInString(lines[2]); len(lines[1]) != want {
		t.Fatalf("separator width %d != row rune width %d:\n%s", len(lines[1]), want, out)
	}
}
