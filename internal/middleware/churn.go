package middleware

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/codec"
)

// ErrUnavailable reports that the hosting node of an invocation target is
// down (crashed and not yet restarted). RPCs against a down node fail
// fast with this error instead of burning the full call timeout; pending
// calls whose callee crashes mid-flight are failed the moment the crash
// is observed (NodeDown). Callers distinguish it from ErrCallTimeout to
// drive retry/rebind policy.
var ErrUnavailable = errors.New("middleware: node unavailable")

// NodeDown marks a platform node as crashed. Every pending RPC whose
// callee OR caller is hosted there fails immediately with ErrUnavailable:
// the restarted incarnation has no server-side call state (the reply can
// never arrive), and no client-side call state either (a reply to a
// crashed caller could never be consumed). Continuations fire in call-id
// order (oldest first) so the failure cascade is deterministic. Unknown
// or never-attached nodes are a no-op.
//
// NodeDown is middleware-side bookkeeping only: it does not touch the
// network. Churn drivers call it from their crash hooks, alongside the
// transport-level teardown (protocol.ReliableDatagram.NoteRestart).
func (p *Platform) NodeDown(node Addr) {
	p.mu.Lock()
	id, ok := p.nodes[node]
	if !ok {
		p.mu.Unlock()
		return
	}
	p.downNodes[id] = true
	var ids []uint64
	for cid, pc := range p.pending {
		if pc.node == id || pc.caller == id {
			ids = append(ids, cid)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	conts := make([]func(codec.Record, error), 0, len(ids))
	for _, cid := range ids {
		pc := p.pending[cid]
		pc.timer.Cancel() // zero ref is an inert no-op
		delete(p.pending, cid)
		conts = append(conts, pc.cont)
	}
	p.stats.Unavailables += uint64(len(conts))
	p.mu.Unlock()
	for _, cont := range conts {
		cont(nil, fmt.Errorf("%w: %s crashed", ErrUnavailable, node))
	}
}

// AttachNode eagerly attaches the platform runtime at node. Normally
// attachment is lazy — the first Register or Invoke touching a node
// brings its receiver up — but a fault plan must reference only nodes
// the network already knows, so churn drivers pre-attach every fault
// subject before scheduling crashes (a pure-client node like a polling
// subscriber would otherwise not exist until its first call fires).
// Idempotent.
func (p *Platform) AttachNode(node Addr) error {
	_, err := p.ensureRuntime(node)
	return err
}

// NodeUp clears the down mark set by NodeDown. Churn drivers call it
// from their restart hooks; objects hosted at the node become invokable
// again (the restarted incarnation keeps its registrations — state
// recovery is the application's concern, not the platform's).
func (p *Platform) NodeUp(node Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.nodes[node]; ok {
		p.downNodes[id] = false
	}
}

// Down reports whether the node is currently marked down.
func (p *Platform) Down(node Addr) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, ok := p.nodes[node]
	return ok && p.downNodes[id]
}

// Rebind migrates an object reference to a new hosting node — the live-
// rebinding half of the churn story: a failover policy re-homes a
// crashed component's reference and subsequent Invokes route to the new
// node. Calls already in flight to the old home are unaffected (they
// fail via NodeDown or time out). The object implementation itself is
// replaced too, because the new home generally hosts a fresh instance.
func (p *Platform) Rebind(ref ObjRef, node Addr, obj Object) error {
	if obj == nil {
		return fmt.Errorf("middleware: nil object for %q", ref)
	}
	nodeID, err := p.ensureRuntime(node)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.objects[ref]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, ref)
	}
	p.objects[ref] = registration{nodeID: nodeID, obj: obj}
	return nil
}

// SetProfile swaps the platform's profile mid-run — the lever the MDA
// engine pulls when a deployment is re-realized onto a different
// concrete platform. Interactions already in flight complete under the
// old profile's timers; new interactions are gated and priced by the new
// one.
func (p *Platform) SetProfile(profile Profile) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.profile = profile
}
