package middleware

import (
	"errors"
	"testing"
	"time"

	"repro/internal/codec"
)

// TestInvokeDownNodeFailsFast: an RPC against a node marked down fails
// asynchronously with ErrUnavailable instead of burning the call
// timeout.
func TestInvokeDownNodeFailsFast(t *testing.T) {
	profile := ProfileRMILike
	profile.CallTimeout = time.Second
	k, p := newPlatform(t, profile, 0)
	if err := p.Register("server", "node-s", echoObject()); err != nil {
		t.Fatal(err)
	}
	p.NodeDown("node-s")
	if !p.Down("node-s") || p.Down("node-c") {
		t.Fatal("Down misreports")
	}
	var callErr error
	var at time.Duration
	err := p.Invoke("node-c", "server", "echo", nil, func(_ codec.Record, e error) {
		callErr, at = e, k.Now()
	})
	if err != nil {
		t.Fatalf("Invoke returned a synchronous error: %v", err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(callErr, ErrUnavailable) {
		t.Fatalf("callErr = %v, want ErrUnavailable", callErr)
	}
	if at >= profile.CallTimeout {
		t.Fatalf("failure at %v — waited out the timeout instead of failing fast", at)
	}
	if st := p.Stats(); st.Unavailables != 1 || st.Timeouts != 0 {
		t.Fatalf("stats = %+v, want Unavailables=1 Timeouts=0", st)
	}
}

// TestNodeDownFailsPendingCalls: calls already in flight when the callee
// crashes fail immediately with ErrUnavailable, their timeout timers are
// cancelled, and continuations fire in call-id order.
func TestNodeDownFailsPendingCalls(t *testing.T) {
	profile := ProfileRMILike
	profile.CallTimeout = time.Second
	k, p := newPlatform(t, profile, 0)
	// A server that never replies: calls stay pending until churn.
	if err := p.Register("server", "node-s", ObjectFunc(func(string, codec.Record, Reply) {})); err != nil {
		t.Fatal(err)
	}
	var errs []error
	for i := 0; i < 3; i++ {
		if err := p.Invoke("node-c", "server", "hang", nil, func(_ codec.Record, e error) {
			errs = append(errs, e)
		}); err != nil {
			t.Fatal(err)
		}
	}
	k.ScheduleFunc(10*time.Millisecond, func() { p.NodeDown("node-s") })
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(errs) != 3 {
		t.Fatalf("got %d continuations, want 3", len(errs))
	}
	for i, e := range errs {
		if !errors.Is(e, ErrUnavailable) {
			t.Fatalf("errs[%d] = %v, want ErrUnavailable", i, e)
		}
	}
	st := p.Stats()
	if st.Unavailables != 3 {
		t.Fatalf("Unavailables = %d, want 3", st.Unavailables)
	}
	// Timers were cancelled: no timeout fires at 1s.
	if st.Timeouts != 0 {
		t.Fatalf("Timeouts = %d, want 0 (timers must be cancelled)", st.Timeouts)
	}
}

// TestNodeUpRestoresService: after NodeUp the same registration serves
// again — restart keeps registrations, state recovery is the app's
// concern.
func TestNodeUpRestoresService(t *testing.T) {
	k, p := newPlatform(t, ProfileRMILike, 0)
	if err := p.Register("server", "node-s", echoObject()); err != nil {
		t.Fatal(err)
	}
	p.NodeDown("node-s")
	p.NodeUp("node-s")
	var result codec.Record
	var callErr error
	if err := p.Invoke("node-c", "server", "echo", codec.Record{"x": int64(1)}, func(r codec.Record, e error) {
		result, callErr = r, e
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr != nil || result["echoed"] != true {
		t.Fatalf("result=%v err=%v", result, callErr)
	}
}

// TestRebindMovesObject: Rebind re-homes a reference to a new node and
// instance; subsequent invokes route there.
func TestRebindMovesObject(t *testing.T) {
	k, p := newPlatform(t, ProfileRMILike, 0)
	if err := p.Register("server", "node-s", echoObject()); err != nil {
		t.Fatal(err)
	}
	if err := p.Rebind("ghost", "node-t", echoObject()); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("Rebind unknown ref: %v, want ErrUnknownObject", err)
	}
	served := ""
	takeover := ObjectFunc(func(op string, args codec.Record, reply Reply) {
		served = op
		reply(codec.Record{"home": "node-t"}, nil)
	})
	if err := p.Rebind("server", "node-t", takeover); err != nil {
		t.Fatal(err)
	}
	if home, ok := p.Resolve("server"); !ok || home != "node-t" {
		t.Fatalf("Resolve = %q/%v, want node-t", home, ok)
	}
	var result codec.Record
	if err := p.Invoke("node-c", "server", "echo", nil, func(r codec.Record, e error) {
		if e != nil {
			t.Error(e)
		}
		result = r
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if served != "echo" || result["home"] != "node-t" {
		t.Fatalf("served=%q result=%v, want the rebound instance", served, result)
	}
}

// TestSetProfileMidRun: re-realizing onto a platform without RPC gates
// new invocations while leaving completed ones untouched.
func TestSetProfileMidRun(t *testing.T) {
	k, p := newPlatform(t, ProfileCORBALike, 0)
	if err := p.Register("server", "node-s", echoObject()); err != nil {
		t.Fatal(err)
	}
	if err := p.Invoke("node-c", "server", "echo", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	p.SetProfile(ProfileMQLike)
	if got := p.Profile().Name; got != ProfileMQLike.Name {
		t.Fatalf("Profile = %q, want %q", got, ProfileMQLike.Name)
	}
	err := p.Invoke("node-c", "server", "echo", nil, nil)
	if !errors.Is(err, ErrPatternUnsupported) {
		t.Fatalf("Invoke under queue-only profile: %v, want ErrPatternUnsupported", err)
	}
}
