package middleware

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// The tests in this file pin the dense subscriber/queue tables: view
// sinks, dynamic subscription after traffic has started, and sink
// ordering across mixed sink kinds.

func densePlatform(t *testing.T) (*Platform, *sim.Kernel) {
	t.Helper()
	kernel := sim.NewKernel(sim.WithSeed(11))
	net := network.New(kernel)
	profile := Profile{
		Name:     "test-dense",
		Patterns: []Pattern{PatternRPC, PatternOneway, PatternQueue, PatternPubSub},
	}
	return New(kernel, protocol.NewUnreliableDatagram(net), profile, "broker"), kernel
}

func drainKernel(t *testing.T, kernel *sim.Kernel) {
	t.Helper()
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeTopicView delivers an event into a zero-copy view sink
// and checks the envelope fields read correctly through the view.
func TestSubscribeTopicView(t *testing.T) {
	p, kernel := densePlatform(t)
	var gotTopic, gotName string
	var gotSeq uint64
	events := 0
	err := p.SubscribeTopicView("floor", "n1", func(v codec.MsgView) {
		events++
		topic, _ := v.Str("topic")
		name, _ := v.Str("name")
		gotTopic, gotName = string(topic), string(name)
		fields, ok := v.Record("fields")
		if !ok {
			t.Error("event view has no fields record")
			return
		}
		if s, ok := fields["seq"].(uint64); ok {
			gotSeq = s
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := codec.NewMessage("grant", codec.Record{"seq": uint64(42)})
	if err := p.Publish("pub", "floor", msg); err != nil {
		t.Fatal(err)
	}
	drainKernel(t, kernel)
	if events != 1 || gotTopic != "floor" || gotName != "grant" || gotSeq != 42 {
		t.Fatalf("view sink saw events=%d topic=%q name=%q seq=%d", events, gotTopic, gotName, gotSeq)
	}
}

// TestSubscribeAfterTraffic subscribes a second node after events have
// already flowed and checks the dense fan-out tables pick it up.
func TestSubscribeAfterTraffic(t *testing.T) {
	p, kernel := densePlatform(t)
	counts := map[string]int{}
	sub := func(node Addr) {
		if err := p.SubscribeTopic("floor", node, func(m codec.Message) {
			counts[string(node)]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	sub("n1")
	msg := codec.NewMessage("grant", codec.Record{"seq": uint64(1)})
	if err := p.Publish("pub", "floor", msg); err != nil {
		t.Fatal(err)
	}
	drainKernel(t, kernel)
	sub("n2") // late subscriber, new runtime node, after traffic
	if err := p.Publish("pub", "floor", msg); err != nil {
		t.Fatal(err)
	}
	drainKernel(t, kernel)
	if counts["n1"] != 2 || counts["n2"] != 1 {
		t.Fatalf("counts = %v, want n1:2 n2:1", counts)
	}
	st := p.Stats()
	if st.EventDeliver != 3 {
		t.Fatalf("EventDeliver = %d, want 3", st.EventDeliver)
	}
}

// TestMixedSinksSubscriptionOrder registers a view sink and a message
// sink for the same topic on one node and checks both fire, in
// subscription order, off a single wire event.
func TestMixedSinksSubscriptionOrder(t *testing.T) {
	p, kernel := densePlatform(t)
	var order []string
	if err := p.SubscribeTopicView("floor", "n1", func(v codec.MsgView) {
		order = append(order, "view")
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.SubscribeTopic("floor", "n1", func(m codec.Message) {
		order = append(order, "msg")
	}); err != nil {
		t.Fatal(err)
	}
	msg := codec.NewMessage("grant", codec.Record{})
	if err := p.Publish("pub", "floor", msg); err != nil {
		t.Fatal(err)
	}
	drainKernel(t, kernel)
	// Two subscriptions on one node → the node receives two wire events,
	// each firing both sinks (the legacy per-subscription fan-out
	// semantics, preserved by the dense tables).
	want := []string{"view", "msg", "view", "msg"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestViewSinkNil pins the nil-sink validation of the view variant.
func TestViewSinkNil(t *testing.T) {
	p, _ := densePlatform(t)
	if err := p.SubscribeTopicView("floor", "n1", nil); err == nil {
		t.Fatal("nil view sink accepted")
	}
}
