package middleware

import (
	"fmt"

	"repro/internal/codec"
)

// ErrFederation reports federation misconfiguration (non-indexed
// transport, subscribing at a broker address, …).
var ErrFederation = fmt.Errorf("middleware: federation")

// Option configures a Platform at construction time.
type Option func(*Platform)

// WithFederation federates the platform's pub/sub broker into a
// two-level tree: the broker address passed to New becomes the root,
// and each leaf address owns a dense shard of subscriber nodes. A
// published event travels publisher→root once, root→leaf once per
// non-empty leaf, and leaf→subscribers over the transport's indexed
// fan-out (SendMultiIndexed) — the leaf re-sends the received event
// bytes verbatim, so the event is encoded exactly once at the root no
// matter how many million subscribers it reaches.
//
// Subscribers are assigned to leaves by transport endpoint id:
// leaf = low % len(leaves). Over protocol.UnreliableDatagram endpoint
// ids equal network slots, so with len(leaves) equal to the engine's
// shard count K this composes with the sharded engine's default
// partition (slot % K): a leaf and every subscriber it fans out to
// live on the same shard, and the entire leaf→subscriber fan-out is
// shard-local work. Only the publisher→root and root→leaf hops cross
// shards.
//
// Per-client subscription state is O(1): one int32 in the leaf's shard
// row, one bit in the topic's membership set, and one demux sink at
// the node — all in amortized-growth slices that are reused for the
// platform's lifetime. Events are forwarded once per subscriber node
// (the membership bit dedups nodes with several sinks); handleEvent
// then demuxes to every matching sink at the node, so EventDeliver
// counts subscriber nodes, not subscriptions, on the federated path.
//
// Federation requires a transport implementing protocol.IndexedLower
// and applies to the pub/sub pattern only; queues stay on the root
// broker. Leaf and root addresses must not themselves Subscribe.
func WithFederation(leaves ...Addr) Option {
	return func(p *Platform) {
		if len(leaves) == 0 {
			return
		}
		p.fed = &federation{
			leaves:  leaves,
			leafIDs: make([]int32, len(leaves)),
			topics:  make(map[string]*fedTopic),
		}
		for i := range p.fed.leafIDs {
			p.fed.leafIDs[i] = -1
		}
	}
}

// federation is the broker tree's root-side state: the leaf table and
// the per-topic shard rows. Guarded by Platform.mu.
type federation struct {
	leaves  []Addr
	leafIDs []int32 // platform node id per leaf, -1 until attached
	topics  map[string]*fedTopic
}

// fedTopic is one topic's federated subscriber table: a dense row of
// subscriber-node transport ids per leaf, plus a membership bitset
// that dedups nodes carrying several sinks. Rows grow amortized and
// are never rebuilt — per-client cost is one int32 and one bit.
type fedTopic struct {
	shards [][]int32 // leaf index → subscriber node lows, enrolment order
	member []uint64  // bitset over transport lows
	nodes  uint64    // enrolled subscriber nodes across all leaves
}

// enroll adds a subscriber node (by transport low id) to the topic,
// returning its leaf index. Idempotent per node: re-enrolment of a
// node already in a shard row is a bit test.
func (ft *fedTopic) enroll(low int32, leaves int) int {
	li := int(low) % leaves
	w, b := int(low)>>6, uint(low)&63
	for w >= len(ft.member) {
		ft.member = append(ft.member, 0)
	}
	if ft.member[w]&(1<<b) == 0 {
		ft.member[w] |= 1 << b
		ft.shards[li] = append(ft.shards[li], low)
		ft.nodes++
	}
	return li
}

// leafIndexOfLocked reports which leaf (if any) the platform node id
// belongs to. Caller holds p.mu. The leaf table is small (typically
// the engine's shard count), so a linear scan beats any index.
func (p *Platform) leafIndexOfLocked(nodeID int32) int {
	if p.fed == nil {
		return -1
	}
	for i, id := range p.fed.leafIDs {
		if id == nodeID {
			return i
		}
	}
	return -1
}

// AttachRuntime eagerly attaches the platform runtime at node and
// returns its transport endpoint id (-1 on non-indexed transports).
// Attachment normally happens lazily on first use; XL deployments call
// this to pin attach order — and therefore transport endpoint ids and
// shard affinity — before traffic starts.
func (p *Platform) AttachRuntime(node Addr) (int32, error) {
	id, err := p.ensureRuntime(node)
	if err != nil {
		return -1, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodeLows[id], nil
}

// fedSubscribe is the federated half of subscribeTopic: the subscriber
// node is enrolled in its leaf's dense shard row (O(1) state) and the
// sink joins the node's demux table.
func (p *Platform) fedSubscribe(topic string, node Addr, sink eventSink) error {
	if p.itransport == nil {
		return fmt.Errorf("%w: transport has no indexed plane", ErrFederation)
	}
	if node == p.broker {
		return fmt.Errorf("%w: %q is the root broker; it cannot subscribe", ErrFederation, node)
	}
	for _, leaf := range p.fed.leaves {
		if node == leaf {
			return fmt.Errorf("%w: %q is a leaf broker; it cannot subscribe", ErrFederation, node)
		}
	}
	nodeID, err := p.ensureRuntime(node)
	if err != nil {
		return err
	}
	if _, err := p.ensureRuntime(p.broker); err != nil {
		return err
	}
	p.mu.Lock()
	low := p.nodeLows[nodeID]
	if low < 0 {
		p.mu.Unlock()
		return fmt.Errorf("%w: node %q has no transport endpoint id", ErrFederation, node)
	}
	ft := p.fed.topics[topic]
	if ft == nil {
		ft = &fedTopic{shards: make([][]int32, len(p.fed.leaves))}
		p.fed.topics[topic] = ft
	}
	li := ft.enroll(low, len(p.fed.leaves))
	leaf := p.fed.leaves[li]
	p.eventSinks[nodeID] = append(p.eventSinks[nodeID], sink)
	p.mu.Unlock()
	// The leaf runtime must be live before the first publish reaches it.
	if _, err := p.ensureRuntime(leaf); err != nil {
		return err
	}
	return nil
}

// fedPublish is the root half of the federated pub/sub hot path: the
// event envelope is re-framed once (raw-splice, exactly as the flat
// broker does) and the single buffer is sent to every leaf whose shard
// has subscribers — O(leaves) wire work at the root regardless of
// subscriber population.
func (p *Platform) fedPublish(v *codec.MsgView) {
	topic, _ := v.Str("topic")
	p.mu.Lock()
	ft := p.fed.topics[string(topic)]
	if ft == nil || ft.nodes == 0 {
		p.mu.Unlock()
		return
	}
	var fromLow int32 = -1
	if p.brokerID >= 0 {
		fromLow = p.nodeLows[p.brokerID]
	}
	p.mu.Unlock()
	rawName, ok := v.Raw("name")
	if !ok {
		rawName = codec.RawNil
	}
	rawFields, ok := v.Raw("fields")
	if !ok {
		rawFields = codec.RawNil
	}
	rawTopic, ok := v.Raw("topic")
	if !ok {
		rawTopic = codec.RawNil
	}
	buf := codec.GetBuffer()
	e := schemaEvent.Encoder(buf.B[:0])
	e.Raw("fields", rawFields)
	e.Raw("name", rawName)
	e.Raw("topic", rawTopic)
	data, err := e.Finish()
	if err != nil {
		buf.Release()
		return
	}
	for li := range p.fed.leaves {
		p.mu.Lock()
		empty := len(ft.shards[li]) == 0
		var leafAddr Addr
		var leafLow int32 = -1
		if !empty {
			leafAddr = p.fed.leaves[li]
			if id := p.fed.leafIDs[li]; id >= 0 {
				leafLow = p.nodeLows[id]
			}
		}
		p.mu.Unlock()
		if empty {
			continue
		}
		//nolint:errcheck // event delivery failure = event loss, acceptable for pub/sub sim
		_ = p.sendData(p.broker, fromLow, leafAddr, leafLow, data)
	}
	buf.B = data
	buf.Release()
}

// fedForward is the leaf half of the hot path: an event arriving at a
// leaf broker is re-sent verbatim — the received wire bytes, no parse
// beyond the topic probe, no re-encode — to the leaf's dense shard row
// through the transport's indexed fan-out. Legal because the
// LowerService.Send contract copies synchronously, so the pooled
// delivery buffer the bytes alias is free to recycle afterwards.
//
//repolint:hotpath
func (p *Platform) fedForward(li int32, v *codec.MsgView, data []byte) {
	topic, _ := v.Str("topic")
	p.mu.Lock()
	ft := p.fed.topics[string(topic)]
	var row []int32
	if ft != nil {
		row = ft.shards[li]
	}
	if len(row) == 0 {
		p.mu.Unlock()
		return
	}
	p.stats.EventDeliver += uint64(len(row))
	p.stats.WireMessages += uint64(len(row))
	p.stats.WireBytes += uint64(len(row)) * uint64(len(data))
	leafLow := p.nodeLows[p.fed.leafIDs[li]]
	p.mu.Unlock()
	//nolint:errcheck // event delivery failure = event loss, acceptable for pub/sub sim
	_ = p.itransport.SendMultiIndexed(leafLow, row, data)
}
