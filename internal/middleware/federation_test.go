package middleware

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// The tests in this file pin the federated broker tree: leaf shard
// assignment, encode-once forwarding, per-node dedup, wire accounting,
// and the configuration errors.

func federatedPlatform(t *testing.T, leaves ...Addr) (*Platform, *sim.Kernel) {
	t.Helper()
	kernel := sim.NewKernel(sim.WithSeed(11))
	net := network.New(kernel)
	profile := Profile{
		Name:     "test-fed",
		Patterns: []Pattern{PatternQueue, PatternPubSub},
	}
	p := New(kernel, protocol.NewUnreliableDatagram(net), profile, "root", WithFederation(leaves...))
	// Pin attach order: leaves first (transport ids 0..L-1), then the
	// root — the deployment order XL scenarios use so leaf id % L maps
	// every leaf to its own shard row.
	for _, leaf := range leaves {
		if _, err := p.AttachRuntime(leaf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.AttachRuntime("root"); err != nil {
		t.Fatal(err)
	}
	return p, kernel
}

// TestFederatedFanout publishes through a two-leaf tree and checks
// every sink fires exactly once per publish, across both leaf shards.
func TestFederatedFanout(t *testing.T) {
	p, kernel := federatedPlatform(t, "leaf0", "leaf1")
	const nodes = 8
	got := make(map[string]int)
	for i := 0; i < nodes; i++ {
		node := Addr(fmt.Sprintf("n%d", i))
		if err := p.SubscribeTopic("ticks", node, func(m codec.Message) {
			if m.Name != "tick" {
				t.Errorf("node %s got message %q", node, m.Name)
			}
			got[string(node)]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	const events = 3
	for e := 0; e < events; e++ {
		if err := p.Publish("pub", "ticks", codec.NewMessage("tick", codec.Record{"seq": uint64(e)})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != nodes {
		t.Fatalf("only %d of %d nodes saw events", len(got), nodes)
	}
	for node, n := range got {
		if n != events {
			t.Errorf("node %s saw %d events, want %d", node, n, events)
		}
	}
	st := p.Stats()
	if st.EventDeliver != uint64(nodes*events) {
		t.Errorf("EventDeliver = %d, want %d", st.EventDeliver, nodes*events)
	}
	// Wire messages per publish: pub→root, root→each non-empty leaf,
	// leaf→each subscriber node.
	wantWire := uint64(events) * uint64(1+2+nodes)
	if st.WireMessages != wantWire {
		t.Errorf("WireMessages = %d, want %d", st.WireMessages, wantWire)
	}
	if st.Publishes != events {
		t.Errorf("Publishes = %d, want %d", st.Publishes, events)
	}
}

// TestFederatedNodeDedup subscribes several sinks at one node and
// checks the leaf forwards one wire message per node, demuxed to every
// sink — the federated path must not multiply wire traffic by sinks.
func TestFederatedNodeDedup(t *testing.T) {
	p, kernel := federatedPlatform(t, "leaf0")
	var aView, aMsg, b int
	if err := p.SubscribeTopicView("floor", "shared", func(v codec.MsgView) { aView++ }); err != nil {
		t.Fatal(err)
	}
	if err := p.SubscribeTopic("floor", "shared", func(m codec.Message) { aMsg++ }); err != nil {
		t.Fatal(err)
	}
	if err := p.SubscribeTopic("floor", "other", func(m codec.Message) { b++ }); err != nil {
		t.Fatal(err)
	}
	if err := p.Publish("pub", "floor", codec.NewMessage("grant", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if aView != 1 || aMsg != 1 || b != 1 {
		t.Fatalf("sink fires = %d/%d/%d, want 1/1/1", aView, aMsg, b)
	}
	st := p.Stats()
	// pub→root, root→leaf0, leaf0→{shared, other}: the shared node gets
	// ONE wire message for its two sinks.
	if st.WireMessages != 4 {
		t.Fatalf("WireMessages = %d, want 4 (per-node dedup)", st.WireMessages)
	}
	if st.EventDeliver != 2 {
		t.Fatalf("EventDeliver = %d, want 2 subscriber nodes", st.EventDeliver)
	}
}

// TestFederatedShardAssignment checks leaf = transport id % L: with
// leaves attached first, subscriber nodes land on the leaf owning
// their slot residue, which is what co-locates the fan-out with the
// sharded engine's slot % K partition.
func TestFederatedShardAssignment(t *testing.T) {
	p, kernel := federatedPlatform(t, "leaf0", "leaf1")
	// Attach subscribers in a known order: transport ids 3, 4, 5, 6
	// (leaves hold 0-1, root holds 2).
	subs := []Addr{"s3", "s4", "s5", "s6"}
	for _, s := range subs {
		if err := p.SubscribeTopic("t", s, func(m codec.Message) {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Publish("pub", "t", codec.NewMessage("e", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	ft := p.fed.topics["t"]
	shard0, shard1 := ft.shards[0], ft.shards[1]
	p.mu.Unlock()
	want0, want1 := []int32{4, 6}, []int32{3, 5}
	if len(shard0) != len(want0) || shard0[0] != want0[0] || shard0[1] != want0[1] {
		t.Fatalf("leaf0 shard = %v, want %v", shard0, want0)
	}
	if len(shard1) != len(want1) || shard1[0] != want1[0] || shard1[1] != want1[1] {
		t.Fatalf("leaf1 shard = %v, want %v", shard1, want1)
	}
}

// TestFederatedMatchesFlatDeliveries runs the same pub/sub scenario
// flat and federated and requires identical per-sink delivery
// sequences — federation changes the wire topology, not observable
// delivery semantics.
func TestFederatedMatchesFlatDeliveries(t *testing.T) {
	run := func(federated bool) map[string][]uint64 {
		kernel := sim.NewKernel(sim.WithSeed(5))
		net := network.New(kernel)
		profile := Profile{Name: "cmp", Patterns: []Pattern{PatternPubSub}}
		var opts []Option
		if federated {
			opts = append(opts, WithFederation("leaf0", "leaf1", "leaf2"))
		}
		p := New(kernel, protocol.NewUnreliableDatagram(net), profile, "root", opts...)
		got := make(map[string][]uint64)
		for i := 0; i < 6; i++ {
			node := Addr(fmt.Sprintf("n%d", i))
			if err := p.SubscribeTopic("x", node, func(m codec.Message) {
				seq, _ := m.Fields["seq"].(uint64)
				got[string(node)] = append(got[string(node)], seq)
			}); err != nil {
				t.Fatal(err)
			}
		}
		for e := 0; e < 5; e++ {
			if err := p.Publish("pub", "x", codec.NewMessage("e", codec.Record{"seq": uint64(e)})); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := kernel.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	flat, fed := run(false), run(true)
	if len(flat) != len(fed) {
		t.Fatalf("node sets differ: flat %d, federated %d", len(flat), len(fed))
	}
	for node, seqs := range flat {
		fs := fed[node]
		if len(fs) != len(seqs) {
			t.Fatalf("node %s: flat saw %v, federated saw %v", node, seqs, fs)
		}
		for i := range seqs {
			if seqs[i] != fs[i] {
				t.Fatalf("node %s delivery %d: flat %d, federated %d", node, i, seqs[i], fs[i])
			}
		}
	}
}

// TestFederationQueuesUnaffected pins that queues stay on the root
// broker under federation.
func TestFederationQueuesUnaffected(t *testing.T) {
	p, kernel := federatedPlatform(t, "leaf0")
	if err := p.QueueDeclare("work"); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := p.QueueSubscribe("work", "consumer", func(m codec.Message) {
		got = append(got, m.Name)
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.QueuePut("producer", "work", codec.NewMessage("job", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "job" {
		t.Fatalf("queue delivered %v, want [job]", got)
	}
}

// TestFederationErrors pins the configuration guard rails.
func TestFederationErrors(t *testing.T) {
	p, _ := federatedPlatform(t, "leaf0", "leaf1")
	if err := p.SubscribeTopic("t", "leaf1", func(m codec.Message) {}); !errors.Is(err, ErrFederation) {
		t.Fatalf("subscribing at a leaf: err = %v, want ErrFederation", err)
	}
	if err := p.SubscribeTopic("t", "root", func(m codec.Message) {}); !errors.Is(err, ErrFederation) {
		t.Fatalf("subscribing at the root: err = %v, want ErrFederation", err)
	}

	// A transport without the indexed plane cannot federate.
	kernel := sim.NewKernel()
	net := network.New(kernel)
	nameOnly := struct{ protocol.LowerService }{protocol.NewUnreliableDatagram(net)}
	q := New(kernel, nameOnly, Profile{Name: "x", Patterns: []Pattern{PatternPubSub}}, "root",
		WithFederation("leaf0"))
	if err := q.SubscribeTopic("t", "n1", func(m codec.Message) {}); !errors.Is(err, ErrFederation) {
		t.Fatalf("non-indexed transport: err = %v, want ErrFederation", err)
	}

	// WithFederation with no leaves is a no-op, not a broken tree.
	r := New(kernel, protocol.NewUnreliableDatagram(net), Profile{Name: "y", Patterns: []Pattern{PatternPubSub}}, "root2",
		WithFederation())
	if r.fed != nil {
		t.Fatal("zero-leaf federation should leave the flat broker")
	}
}
