// Package middleware implements the middleware-centred (distributed
// computing) paradigm of the paper's §3: "system parts interact through a
// limited set of interaction patterns offered by a middleware platform."
//
// The Platform offers four interaction patterns — request/response (RPC),
// one-way message passing, named message queues, and publish/subscribe
// events — gated by a Profile that models a concrete platform class
// (CORBA-like, RMI-like, JMS-like, MQ-like; the leaves of the paper's
// Figure 10 trajectory). Components are registered objects addressed by
// reference; invocations are marshalled with internal/codec and carried by
// an *implicit wire protocol* over a protocol.LowerService, which realizes
// the paper's observation that "the middleware-centred paradigm is somehow
// dependent on the protocol-centred paradigm: ... the middleware
// 'transforms' the interactions into (implicit) protocols."
//
// Every platform node gets a dense small-int id when its runtime
// attaches; subscriber and consumer tables are compact index sets
// resolved once at subscribe time, and when the transport supports the
// dense plane (protocol.IndexedLower) the whole steady-state wire path —
// receive demux, broker fan-out, reply routing — runs on slot-indexed
// tables with no map lookups and no allocations.
//
// # SPI, not API
//
// The Platform's raw interaction methods (Invoke, InvokeOneway,
// QueuePut, Publish, Register, Subscribe*) are the *service-provider
// interface* of the middleware plane. Applications — the case studies,
// the examples, the MDA engine — program against the typed service-port
// façade in internal/svc, which binds a core.ServiceSpec to a Platform
// and exposes Port/Sink/Source/Export endpoints over these methods.
// Only internal/svc, this package's tests, and the delivery-path
// benchmarks call the raw surface directly.
package middleware

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Errors reported by platform operations.
var (
	ErrPatternUnsupported = errors.New("middleware: interaction pattern not supported by platform profile")
	ErrUnknownObject      = errors.New("middleware: unknown object reference")
	ErrDuplicateObject    = errors.New("middleware: object reference already registered")
	ErrUnknownQueue       = errors.New("middleware: unknown queue")
	ErrDuplicateQueue     = errors.New("middleware: queue already declared")
	ErrUnknownOperation   = errors.New("middleware: unknown operation")
	ErrCallTimeout        = errors.New("middleware: call timed out")
	ErrRemote             = errors.New("middleware: remote exception")
)

// Pattern enumerates the interaction patterns a middleware platform may
// offer (§3: "request/response, message passing and message queues", plus
// event sources and sinks).
type Pattern int

// Interaction patterns.
const (
	PatternRPC Pattern = iota + 1
	PatternOneway
	PatternQueue
	PatternPubSub
)

// String renders the pattern as its lowercase wire/profile name.
func (p Pattern) String() string {
	switch p {
	case PatternRPC:
		return "rpc"
	case PatternOneway:
		return "oneway"
	case PatternQueue:
		return "queue"
	case PatternPubSub:
		return "pubsub"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Addr is a hosting location on the simulated network.
type Addr = protocol.Addr

// ObjRef names a registered component object, platform-wide.
type ObjRef string

// Reply delivers the outcome of an RPC dispatch back to the platform. A
// nil error with a nil result is valid (void operation).
type Reply func(result codec.Record, err error)

// Object is a component's dispatch interface: the platform invokes
// operations by name. Dispatch may reply asynchronously (it is given the
// reply continuation), which lets components implement callback-style
// coordination such as deferred grants.
type Object interface {
	Dispatch(op string, args codec.Record, reply Reply)
}

// ObjectFunc adapts a function to the Object interface.
type ObjectFunc func(op string, args codec.Record, reply Reply)

// Dispatch implements Object.
func (f ObjectFunc) Dispatch(op string, args codec.Record, reply Reply) { f(op, args, reply) }

// Profile models a concrete middleware platform class: which interaction
// patterns it offers and its per-interaction overhead. Profiles are what
// the MDA engine's concrete-platform definitions point at.
type Profile struct {
	// Name identifies the platform class (e.g. "rpc-corba-like"); it is
	// the key ProfileByName resolves and the label carried into scenario
	// IDs.
	Name string
	// Patterns supported by this platform class.
	Patterns []Pattern
	// DispatchOverhead is added (virtual time) to every dispatched
	// interaction, modelling marshalling/demultiplexing cost.
	DispatchOverhead time.Duration
	// CallTimeout bounds RPC completion; zero disables timeouts.
	CallTimeout time.Duration
}

// Supports reports whether the profile offers the pattern.
func (p Profile) Supports(pattern Pattern) bool {
	for _, x := range p.Patterns {
		if x == pattern {
			return true
		}
	}
	return false
}

// Predefined platform profiles: the concrete platforms at the leaves of
// the paper's Figure 10 ("CORBA, JavaRMI" under RPC-based; "MQSeries, JMS"
// under asynchronous messaging).
var (
	// ProfileCORBALike: full-featured object middleware — RPC, oneway and
	// events (CORBA Notification-style).
	ProfileCORBALike = Profile{
		Name:             "rpc-corba-like",
		Patterns:         []Pattern{PatternRPC, PatternOneway, PatternPubSub},
		DispatchOverhead: 200 * time.Microsecond,
	}
	// ProfileRMILike: synchronous remote invocation only.
	ProfileRMILike = Profile{
		Name:             "rpc-rmi-like",
		Patterns:         []Pattern{PatternRPC},
		DispatchOverhead: 150 * time.Microsecond,
	}
	// ProfileJMSLike: message-oriented — queues and topics, no RPC.
	ProfileJMSLike = Profile{
		Name:             "msg-jms-like",
		Patterns:         []Pattern{PatternOneway, PatternQueue, PatternPubSub},
		DispatchOverhead: 120 * time.Microsecond,
	}
	// ProfileMQLike: store-and-forward queues only.
	ProfileMQLike = Profile{
		Name:             "queue-mq-like",
		Patterns:         []Pattern{PatternQueue},
		DispatchOverhead: 100 * time.Microsecond,
	}
)

// Profiles returns all predefined profiles in trajectory order.
func Profiles() []Profile {
	return []Profile{ProfileCORBALike, ProfileRMILike, ProfileJMSLike, ProfileMQLike}
}

// ProfileByName looks a predefined profile up by name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Stats counts platform work per pattern plus wire totals.
type Stats struct {
	// Calls and Replies count RPC requests dispatched and replies
	// delivered; Oneways counts fire-and-forget invocations.
	Calls   uint64
	Replies uint64
	Oneways uint64
	// QueuePuts and QueueDeliver count queue enqueues and consumer
	// deliveries.
	QueuePuts    uint64
	QueueDeliver uint64
	// Publishes counts topic publishes; EventDeliver counts event
	// deliveries — per matching subscription on the flat broker, per
	// subscriber node on the federated path (which forwards one wire
	// message per node and demuxes to every co-located sink).
	Publishes    uint64
	EventDeliver uint64
	// Timeouts counts RPC deadline expirations.
	Timeouts uint64
	// Unavailables counts RPCs failed fast with ErrUnavailable because
	// the callee node was down (NodeDown) at invoke time or crashed
	// while the call was pending.
	Unavailables uint64
	// WireMessages and WireBytes total every middleware-level message
	// handed to the transport, across all patterns.
	WireMessages uint64
	WireBytes    uint64
}

// registration is a hosted object; the hosting node is held by dense id.
type registration struct {
	nodeID int32
	obj    Object
}

// pendingCall tracks an outstanding RPC at the caller side. The callee
// node id lets NodeDown fail calls whose server crashed before replying;
// the caller node id lets it fail calls whose client crashed — the
// restarted incarnation has no client-side call state either, so the
// reply could never be consumed.
type pendingCall struct {
	cont   func(codec.Record, error)
	timer  sim.TimerRef // call timeout; zero ref = none armed
	node   int32        // callee's platform node id
	caller int32        // caller's platform node id
}

// queueConsumer is one queue subscription, resolved to a dense node id
// for the broker's round-robin pick; the consumer callback itself lives
// in the node's queueSinks demux table.
type queueConsumer struct {
	nodeID int32
}

type queueState struct {
	// consumers in subscription order; delivery is round-robin.
	consumers []queueConsumer
	nextRR    int
	// backlog holds messages put before any consumer subscribed.
	backlog []codec.Message
}

// topicState holds one topic's subscriber table: the per-subscription
// fan-out targets are resolved to node addresses and transport ids once
// at subscribe time, so Publish fans the encoded event out over dense
// slices with no per-message table walks.
type topicState struct {
	nodes  []Addr  // one entry per subscription, in subscription order
	lows   []int32 // transport endpoint ids parallel to nodes
	allLow bool    // every entry of lows is resolved (dense fan-out usable)
}

// eventSink is one node-local topic subscription (the demux side of the
// pub/sub pattern). Exactly one of fn/viewFn is set.
type eventSink struct {
	topic  string
	fn     func(codec.Message)
	viewFn func(codec.MsgView)
}

// queueSink is one node-local queue consumption endpoint.
type queueSink struct {
	queue string
	fn    func(codec.Message)
}

// deferredWire is a pooled deferred-dispatch record: when the profile
// models dispatch overhead, the wire bytes are copied into a pooled
// buffer and handled after the virtual delay. The closure is built once
// per pooled object, so deferral allocates nothing in steady state.
type deferredWire struct {
	p       *Platform
	srcAddr Addr
	srcLow  int32
	atID    int32
	buf     *codec.Buffer
	fn      func()
	next    *deferredWire
}

func (d *deferredWire) run() {
	d.p.handleWire(d.srcAddr, d.srcLow, d.atID, d.buf.B)
	buf := d.buf
	d.buf = nil
	d.srcAddr = ""
	buf.Release()
	d.p.mu.Lock()
	d.next = d.p.freeDeferred
	d.p.freeDeferred = d
	d.p.mu.Unlock()
}

// Platform is a simulated middleware platform instance spanning the
// network. Create one with New, register component objects with Register,
// and interact through the pattern methods.
type Platform struct {
	tb         sim.Timebase
	kern       *sim.Kernel // non-nil when tb is a bare kernel: devirtualized hot path
	transport  protocol.LowerService
	itransport protocol.IndexedLower // non-nil when transport has the dense plane
	profile    Profile
	broker     Addr

	mu        sync.Mutex
	objects   map[ObjRef]registration
	nodes     map[Addr]int32 // runtime intern: addr → platform node id
	nodeAddrs []Addr         // node id → addr
	nodeLows  []int32        // node id → transport endpoint id (-1 unresolved)
	brokerID  int32          // platform node id of the broker (-1 until attached)

	eventSinks [][]eventSink // node id → topic subscriptions at that node
	queueSinks [][]queueSink // node id → queue consumers at that node
	downNodes  []bool        // node id → marked down by NodeDown

	pending  map[uint64]pendingCall
	nextCall uint64
	queues   map[string]*queueState
	topics   map[string]*topicState

	freeDeferred *deferredWire
	stats        Stats

	// fed is non-nil when the pub/sub broker is federated into a
	// two-level tree (see WithFederation).
	fed *federation
}

// New creates a platform over transport. The broker address hosts the
// platform's queue/topic broker; it is attached lazily on first use.
// Options (WithFederation, …) configure the platform before any
// runtime attaches.
func New(tb sim.Timebase, transport protocol.LowerService, profile Profile, broker Addr, opts ...Option) *Platform {
	it, _ := transport.(protocol.IndexedLower)
	kern, _ := tb.(*sim.Kernel)
	p := &Platform{
		tb:         tb,
		kern:       kern,
		transport:  transport,
		itransport: it,
		profile:    profile,
		broker:     broker,
		brokerID:   -1,
		objects:    make(map[ObjRef]registration),
		nodes:      make(map[Addr]int32),
		pending:    make(map[uint64]pendingCall),
		queues:     make(map[string]*queueState),
		topics:     make(map[string]*topicState),
	}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

// scheduleFunc and scheduleFuncRef route timer arming through the
// concrete kernel when the timebase is one: the per-message dispatch
// and call-timeout paths are hot, and the interface call defeats
// inlining (see network.scheduleBatch for the same trade).
//
//repolint:hotpath
func (p *Platform) scheduleFunc(delay time.Duration, fn func()) {
	if p.kern != nil {
		p.kern.ScheduleFunc(delay, fn)
		return
	}
	p.tb.ScheduleFunc(delay, fn)
}

//repolint:hotpath
func (p *Platform) scheduleFuncRef(delay time.Duration, fn func()) sim.TimerRef {
	if p.kern != nil {
		return p.kern.ScheduleFuncRef(delay, fn)
	}
	return p.tb.ScheduleFuncRef(delay, fn)
}

// Profile returns the platform's profile.
func (p *Platform) Profile() Profile { return p.profile }

// Time returns the platform's timebase.
func (p *Platform) Time() sim.Timebase { return p.tb }

// Stats returns a snapshot of platform counters.
func (p *Platform) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ensureRuntime attaches the platform's wire-protocol receiver on a node
// and returns the node's dense platform id. Caller must NOT hold p.mu.
func (p *Platform) ensureRuntime(node Addr) (int32, error) {
	p.mu.Lock()
	if id, ok := p.nodes[node]; ok {
		p.mu.Unlock()
		return id, nil
	}
	id := int32(len(p.nodeAddrs))
	p.nodes[node] = id
	p.nodeAddrs = append(p.nodeAddrs, node)
	p.nodeLows = append(p.nodeLows, -1)
	p.eventSinks = append(p.eventSinks, nil)
	p.queueSinks = append(p.queueSinks, nil)
	p.downNodes = append(p.downNodes, false)
	if node == p.broker {
		p.brokerID = id
	}
	if p.fed != nil {
		for i, leaf := range p.fed.leaves {
			if node == leaf {
				p.fed.leafIDs[i] = id
			}
		}
	}
	p.mu.Unlock()
	if p.itransport != nil {
		low, err := p.itransport.AttachIndexed(node, func(srcLow int32, data []byte) {
			p.onWire("", srcLow, id, data)
		})
		if err != nil {
			return id, fmt.Errorf("middleware: attach runtime at %q: %w", node, err)
		}
		p.mu.Lock()
		p.nodeLows[id] = low
		p.mu.Unlock()
		return id, nil
	}
	if err := p.transport.Attach(node, func(src Addr, data []byte) {
		p.onWire(src, -1, id, data)
	}); err != nil {
		return id, fmt.Errorf("middleware: attach runtime at %q: %w", node, err)
	}
	return id, nil
}

// Register hosts obj at node under ref.
func (p *Platform) Register(ref ObjRef, node Addr, obj Object) error {
	if obj == nil {
		return fmt.Errorf("middleware: nil object for %q", ref)
	}
	nodeID, err := p.ensureRuntime(node)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.objects[ref]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateObject, ref)
	}
	p.objects[ref] = registration{nodeID: nodeID, obj: obj}
	return nil
}

// Resolve reports the hosting node of an object reference — the naming
// service every middleware provides.
func (p *Platform) Resolve(ref ObjRef) (Addr, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	reg, ok := p.objects[ref]
	if !ok {
		return "", false
	}
	return p.nodeAddrs[reg.nodeID], true
}

// sendData transmits one already-encoded wire message, counting it. The
// transport copies synchronously (LowerService.Send contract), so data
// may live in a pooled scratch buffer the caller recycles on return.
// When both endpoint ids are resolved and the transport is indexed, the
// send rides the dense plane.
//
//repolint:hotpath
func (p *Platform) sendData(from Addr, fromLow int32, to Addr, toLow int32, data []byte) error {
	p.mu.Lock()
	p.stats.WireMessages++
	p.stats.WireBytes += uint64(len(data))
	p.mu.Unlock()
	var err error
	if p.itransport != nil && fromLow >= 0 && toLow >= 0 {
		err = p.itransport.SendIndexed(fromLow, toLow, data)
	} else {
		err = p.transport.Send(from, to, data)
	}
	if err != nil {
		return fmt.Errorf("middleware: wire send %s→%s: %w", from, to, err) //repolint:allow alloc -- cold: transport refused the send
	}
	return nil
}

// sendMultiData transmits one encoded message to every destination in
// order — the fan-out path behind pub/sub event delivery: the message is
// marshalled once by the caller and the single buffer serves every
// subscriber. On an indexed transport with every destination resolved,
// the fan-out rides the dense batch path (all deliveries scheduled under
// a single kernel lock); otherwise it degrades to the name-addressed
// MultiSender or a Send loop with identical semantics. Wire counters
// advance exactly as if sendData were called once per destination.
//
//repolint:hotpath
func (p *Platform) sendMultiData(from Addr, fromLow int32, tos []Addr, toLows []int32, allLow bool, data []byte) error {
	if len(tos) == 0 {
		return nil
	}
	p.mu.Lock()
	p.stats.WireMessages += uint64(len(tos))
	p.stats.WireBytes += uint64(len(tos)) * uint64(len(data))
	p.mu.Unlock()
	if p.itransport != nil && fromLow >= 0 && allLow {
		if err := p.itransport.SendMultiIndexed(fromLow, toLows, data); err != nil {
			return fmt.Errorf("middleware: wire fan-out from %s: %w", from, err) //repolint:allow alloc -- cold: transport refused the fan-out
		}
		return nil
	}
	if ms, ok := p.transport.(protocol.MultiSender); ok {
		if err := ms.SendMulti(from, tos, data); err != nil {
			return fmt.Errorf("middleware: wire fan-out from %s: %w", from, err) //repolint:allow alloc -- cold: transport refused the fan-out
		}
		return nil
	}
	var firstErr error
	for _, to := range tos {
		if err := p.transport.Send(from, to, data); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("middleware: wire send %s→%s: %w", from, to, err) //repolint:allow alloc -- cold: transport refused the send
		}
	}
	return firstErr
}

// nodeRefLocked returns the address and transport id of a platform node.
// Caller holds p.mu.
func (p *Platform) nodeRefLocked(id int32) (Addr, int32) {
	return p.nodeAddrs[id], p.nodeLows[id]
}

// brokerRef returns the broker's address and transport id (-1 when the
// broker runtime is not attached yet — the name-addressed fallback then
// reports the same unknown-node error the legacy path did).
func (p *Platform) brokerRef() (Addr, int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.brokerID < 0 {
		return p.broker, -1
	}
	return p.broker, p.nodeLows[p.brokerID]
}
