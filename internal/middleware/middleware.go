// Package middleware implements the middleware-centred (distributed
// computing) paradigm of the paper's §3: "system parts interact through a
// limited set of interaction patterns offered by a middleware platform."
//
// The Platform offers four interaction patterns — request/response (RPC),
// one-way message passing, named message queues, and publish/subscribe
// events — gated by a Profile that models a concrete platform class
// (CORBA-like, RMI-like, JMS-like, MQ-like; the leaves of the paper's
// Figure 10 trajectory). Components are registered objects addressed by
// reference; invocations are marshalled with internal/codec and carried by
// an *implicit wire protocol* over a protocol.LowerService, which realizes
// the paper's observation that "the middleware-centred paradigm is somehow
// dependent on the protocol-centred paradigm: ... the middleware
// 'transforms' the interactions into (implicit) protocols."
package middleware

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Errors reported by platform operations.
var (
	ErrPatternUnsupported = errors.New("middleware: interaction pattern not supported by platform profile")
	ErrUnknownObject      = errors.New("middleware: unknown object reference")
	ErrDuplicateObject    = errors.New("middleware: object reference already registered")
	ErrUnknownQueue       = errors.New("middleware: unknown queue")
	ErrDuplicateQueue     = errors.New("middleware: queue already declared")
	ErrUnknownOperation   = errors.New("middleware: unknown operation")
	ErrCallTimeout        = errors.New("middleware: call timed out")
	ErrRemote             = errors.New("middleware: remote exception")
)

// Pattern enumerates the interaction patterns a middleware platform may
// offer (§3: "request/response, message passing and message queues", plus
// event sources and sinks).
type Pattern int

// Interaction patterns.
const (
	PatternRPC Pattern = iota + 1
	PatternOneway
	PatternQueue
	PatternPubSub
)

func (p Pattern) String() string {
	switch p {
	case PatternRPC:
		return "rpc"
	case PatternOneway:
		return "oneway"
	case PatternQueue:
		return "queue"
	case PatternPubSub:
		return "pubsub"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Addr is a hosting location on the simulated network.
type Addr = protocol.Addr

// ObjRef names a registered component object, platform-wide.
type ObjRef string

// Reply delivers the outcome of an RPC dispatch back to the platform. A
// nil error with a nil result is valid (void operation).
type Reply func(result codec.Record, err error)

// Object is a component's dispatch interface: the platform invokes
// operations by name. Dispatch may reply asynchronously (it is given the
// reply continuation), which lets components implement callback-style
// coordination such as deferred grants.
type Object interface {
	Dispatch(op string, args codec.Record, reply Reply)
}

// ObjectFunc adapts a function to the Object interface.
type ObjectFunc func(op string, args codec.Record, reply Reply)

// Dispatch implements Object.
func (f ObjectFunc) Dispatch(op string, args codec.Record, reply Reply) { f(op, args, reply) }

// Profile models a concrete middleware platform class: which interaction
// patterns it offers and its per-interaction overhead. Profiles are what
// the MDA engine's concrete-platform definitions point at.
type Profile struct {
	Name string
	// Patterns supported by this platform class.
	Patterns []Pattern
	// DispatchOverhead is added (virtual time) to every dispatched
	// interaction, modelling marshalling/demultiplexing cost.
	DispatchOverhead time.Duration
	// CallTimeout bounds RPC completion; zero disables timeouts.
	CallTimeout time.Duration
}

// Supports reports whether the profile offers the pattern.
func (p Profile) Supports(pattern Pattern) bool {
	for _, x := range p.Patterns {
		if x == pattern {
			return true
		}
	}
	return false
}

// Predefined platform profiles: the concrete platforms at the leaves of
// the paper's Figure 10 ("CORBA, JavaRMI" under RPC-based; "MQSeries, JMS"
// under asynchronous messaging).
var (
	// ProfileCORBALike: full-featured object middleware — RPC, oneway and
	// events (CORBA Notification-style).
	ProfileCORBALike = Profile{
		Name:             "rpc-corba-like",
		Patterns:         []Pattern{PatternRPC, PatternOneway, PatternPubSub},
		DispatchOverhead: 200 * time.Microsecond,
	}
	// ProfileRMILike: synchronous remote invocation only.
	ProfileRMILike = Profile{
		Name:             "rpc-rmi-like",
		Patterns:         []Pattern{PatternRPC},
		DispatchOverhead: 150 * time.Microsecond,
	}
	// ProfileJMSLike: message-oriented — queues and topics, no RPC.
	ProfileJMSLike = Profile{
		Name:             "msg-jms-like",
		Patterns:         []Pattern{PatternOneway, PatternQueue, PatternPubSub},
		DispatchOverhead: 120 * time.Microsecond,
	}
	// ProfileMQLike: store-and-forward queues only.
	ProfileMQLike = Profile{
		Name:             "queue-mq-like",
		Patterns:         []Pattern{PatternQueue},
		DispatchOverhead: 100 * time.Microsecond,
	}
)

// Profiles returns all predefined profiles in trajectory order.
func Profiles() []Profile {
	return []Profile{ProfileCORBALike, ProfileRMILike, ProfileJMSLike, ProfileMQLike}
}

// ProfileByName looks a predefined profile up by name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Stats counts platform work per pattern plus wire totals.
type Stats struct {
	Calls        uint64
	Replies      uint64
	Oneways      uint64
	QueuePuts    uint64
	QueueDeliver uint64
	Publishes    uint64
	EventDeliver uint64
	Timeouts     uint64
	WireMessages uint64
	WireBytes    uint64
}

// registration is a hosted object.
type registration struct {
	node Addr
	obj  Object
}

// pendingCall tracks an outstanding RPC at the caller side.
type pendingCall struct {
	cont  func(codec.Record, error)
	timer *sim.Timer
}

type queueState struct {
	// consumers in subscription order; delivery is round-robin.
	consumers []queueConsumer
	nextRR    int
	// backlog holds messages put before any consumer subscribed.
	backlog []codec.Message
}

type queueConsumer struct {
	node Addr
	fn   func(codec.Message)
}

type topicState struct {
	subs []queueConsumer
}

// Platform is a simulated middleware platform instance spanning the
// network. Create one with New, register component objects with Register,
// and interact through the pattern methods.
type Platform struct {
	kernel    *sim.Kernel
	transport protocol.LowerService
	profile   Profile
	broker    Addr

	mu       sync.Mutex
	objects  map[ObjRef]registration
	runtimes map[Addr]struct{}
	pending  map[uint64]pendingCall
	nextCall uint64
	queues   map[string]*queueState
	topics   map[string]*topicState
	stats    Stats
}

// New creates a platform over transport. The broker address hosts the
// platform's queue/topic broker; it is attached lazily on first use.
func New(kernel *sim.Kernel, transport protocol.LowerService, profile Profile, broker Addr) *Platform {
	return &Platform{
		kernel:    kernel,
		transport: transport,
		profile:   profile,
		broker:    broker,
		objects:   make(map[ObjRef]registration),
		runtimes:  make(map[Addr]struct{}),
		pending:   make(map[uint64]pendingCall),
		queues:    make(map[string]*queueState),
		topics:    make(map[string]*topicState),
	}
}

// Profile returns the platform's profile.
func (p *Platform) Profile() Profile { return p.profile }

// Kernel returns the simulation kernel.
func (p *Platform) Kernel() *sim.Kernel { return p.kernel }

// Stats returns a snapshot of platform counters.
func (p *Platform) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ensureRuntime attaches the platform's wire-protocol receiver on a node.
// Caller must NOT hold p.mu.
func (p *Platform) ensureRuntime(node Addr) error {
	p.mu.Lock()
	if _, ok := p.runtimes[node]; ok {
		p.mu.Unlock()
		return nil
	}
	p.runtimes[node] = struct{}{}
	p.mu.Unlock()
	if err := p.transport.Attach(node, func(src Addr, data []byte) { p.onWire(src, node, data) }); err != nil {
		return fmt.Errorf("middleware: attach runtime at %q: %w", node, err)
	}
	return nil
}

// Register hosts obj at node under ref.
func (p *Platform) Register(ref ObjRef, node Addr, obj Object) error {
	if obj == nil {
		return fmt.Errorf("middleware: nil object for %q", ref)
	}
	if err := p.ensureRuntime(node); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.objects[ref]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateObject, ref)
	}
	p.objects[ref] = registration{node: node, obj: obj}
	return nil
}

// Resolve reports the hosting node of an object reference — the naming
// service every middleware provides.
func (p *Platform) Resolve(ref ObjRef) (Addr, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	reg, ok := p.objects[ref]
	return reg.node, ok
}

// sendData transmits one already-encoded wire message, counting it. The
// transport copies synchronously (LowerService.Send contract), so data
// may live in a pooled scratch buffer the caller recycles on return.
func (p *Platform) sendData(from, to Addr, data []byte) error {
	p.mu.Lock()
	p.stats.WireMessages++
	p.stats.WireBytes += uint64(len(data))
	p.mu.Unlock()
	if err := p.transport.Send(from, to, data); err != nil {
		return fmt.Errorf("middleware: wire send %s→%s: %w", from, to, err)
	}
	return nil
}

// sendMultiData transmits one encoded message to every destination in
// order — the fan-out path behind pub/sub event delivery: the message is
// marshalled once by the caller and the single buffer serves every
// subscriber. When the transport supports batch fan-out
// (protocol.MultiSender), all deliveries are scheduled under a single
// kernel lock; otherwise it degrades to a Send loop with identical
// semantics. Wire counters advance exactly as if sendData were called
// once per destination.
func (p *Platform) sendMultiData(from Addr, tos []Addr, data []byte) error {
	if len(tos) == 0 {
		return nil
	}
	p.mu.Lock()
	p.stats.WireMessages += uint64(len(tos))
	p.stats.WireBytes += uint64(len(tos)) * uint64(len(data))
	p.mu.Unlock()
	if ms, ok := p.transport.(protocol.MultiSender); ok {
		if err := ms.SendMulti(from, tos, data); err != nil {
			return fmt.Errorf("middleware: wire fan-out from %s: %w", from, err)
		}
		return nil
	}
	var firstErr error
	for _, to := range tos {
		if err := p.transport.Send(from, to, data); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("middleware: wire send %s→%s: %w", from, to, err)
		}
	}
	return firstErr
}
