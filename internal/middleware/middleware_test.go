package middleware

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// newPlatform builds a platform over a reliable transport on a lossless
// 1ms network.
func newPlatform(t testing.TB, profile Profile, lossRate float64) (*sim.Kernel, *Platform) {
	t.Helper()
	k := sim.NewKernel(sim.WithSeed(5))
	net := network.New(k, network.WithDefaultLink(network.LinkConfig{
		Latency:  time.Millisecond,
		LossRate: lossRate,
	}))
	transport := protocol.NewReliableDatagram(k, protocol.NewUnreliableDatagram(net), protocol.ReliableDatagramConfig{})
	return k, New(k, transport, profile, "mw-broker")
}

// echoObject replies with its arguments plus a marker.
func echoObject() Object {
	return ObjectFunc(func(op string, args codec.Record, reply Reply) {
		if op != "echo" {
			reply(nil, fmt.Errorf("%w: %q", ErrUnknownOperation, op))
			return
		}
		out := codec.Record{"echoed": true}
		for k, v := range args {
			out[k] = v
		}
		reply(out, nil)
	})
}

func TestRPCRoundTrip(t *testing.T) {
	k, p := newPlatform(t, ProfileCORBALike, 0)
	if err := p.Register("server", "node-s", echoObject()); err != nil {
		t.Fatal(err)
	}
	var result codec.Record
	var callErr error
	err := p.Invoke("node-c", "server", "echo", codec.Record{"x": int64(7)}, func(r codec.Record, e error) {
		result, callErr = r, e
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if callErr != nil {
		t.Fatalf("call error: %v", callErr)
	}
	if result["x"] != int64(7) || result["echoed"] != true {
		t.Fatalf("result = %v", result)
	}
	st := p.Stats()
	if st.Calls != 1 || st.Replies != 1 || st.WireMessages < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRPCRemoteError(t *testing.T) {
	k, p := newPlatform(t, ProfileRMILike, 0)
	if err := p.Register("server", "node-s", echoObject()); err != nil {
		t.Fatal(err)
	}
	var callErr error
	if err := p.Invoke("node-c", "server", "explode", nil, func(_ codec.Record, e error) { callErr = e }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(callErr, ErrRemote) {
		t.Fatalf("callErr = %v, want ErrRemote", callErr)
	}
}

func TestRPCUnknownObject(t *testing.T) {
	_, p := newPlatform(t, ProfileRMILike, 0)
	err := p.Invoke("node-c", "ghost", "op", nil, nil)
	if !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v, want ErrUnknownObject", err)
	}
}

func TestRPCDeferredReply(t *testing.T) {
	// The callback-based floor controller replies *later*; verify deferred
	// replies work.
	k, p := newPlatform(t, ProfileCORBALike, 0)
	var saved Reply
	deferred := ObjectFunc(func(op string, args codec.Record, reply Reply) {
		saved = reply // grant later
	})
	if err := p.Register("ctrl", "node-s", deferred); err != nil {
		t.Fatal(err)
	}
	done := false
	if err := p.Invoke("node-c", "ctrl", "request", nil, func(codec.Record, error) { done = true }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("reply before controller granted")
	}
	saved(codec.Record{"ok": true}, nil)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("deferred reply never arrived")
	}
}

func TestRPCTimeout(t *testing.T) {
	profile := ProfileRMILike
	profile.CallTimeout = 10 * time.Millisecond
	k, p := newPlatform(t, profile, 0)
	// Object that never replies.
	if err := p.Register("hang", "node-s", ObjectFunc(func(string, codec.Record, Reply) {})); err != nil {
		t.Fatal(err)
	}
	var callErr error
	if err := p.Invoke("node-c", "hang", "op", nil, func(_ codec.Record, e error) { callErr = e }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(callErr, ErrCallTimeout) {
		t.Fatalf("callErr = %v, want ErrCallTimeout", callErr)
	}
	if p.Stats().Timeouts != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestPatternGating(t *testing.T) {
	_, p := newPlatform(t, ProfileMQLike, 0) // queues only
	if err := p.Invoke("c", "x", "op", nil, nil); !errors.Is(err, ErrPatternUnsupported) {
		t.Fatalf("Invoke err = %v", err)
	}
	if err := p.InvokeOneway("c", "x", "op", nil); !errors.Is(err, ErrPatternUnsupported) {
		t.Fatalf("Oneway err = %v", err)
	}
	if err := p.Publish("c", "t", codec.NewMessage("m", nil)); !errors.Is(err, ErrPatternUnsupported) {
		t.Fatalf("Publish err = %v", err)
	}
	if err := p.SubscribeTopic("t", "c", func(codec.Message) {}); !errors.Is(err, ErrPatternUnsupported) {
		t.Fatalf("SubscribeTopic err = %v", err)
	}
	_, pq := newPlatform(t, ProfileRMILike, 0) // rpc only
	if err := pq.QueueDeclare("q"); !errors.Is(err, ErrPatternUnsupported) {
		t.Fatalf("QueueDeclare err = %v", err)
	}
	if err := pq.QueuePut("c", "q", codec.NewMessage("m", nil)); !errors.Is(err, ErrPatternUnsupported) {
		t.Fatalf("QueuePut err = %v", err)
	}
	if err := pq.QueueSubscribe("q", "c", func(codec.Message) {}); !errors.Is(err, ErrPatternUnsupported) {
		t.Fatalf("QueueSubscribe err = %v", err)
	}
}

func TestRegisterErrors(t *testing.T) {
	_, p := newPlatform(t, ProfileCORBALike, 0)
	if err := p.Register("x", "n", nil); err == nil {
		t.Fatal("nil object accepted")
	}
	if err := p.Register("x", "n", echoObject()); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("x", "n2", echoObject()); !errors.Is(err, ErrDuplicateObject) {
		t.Fatalf("err = %v, want ErrDuplicateObject", err)
	}
	if node, ok := p.Resolve("x"); !ok || node != "n" {
		t.Fatalf("Resolve = %v, %v", node, ok)
	}
	if _, ok := p.Resolve("ghost"); ok {
		t.Fatal("ghost resolved")
	}
}

func TestOneway(t *testing.T) {
	k, p := newPlatform(t, ProfileJMSLike, 0)
	var got []string
	sink := ObjectFunc(func(op string, args codec.Record, _ Reply) {
		got = append(got, fmt.Sprintf("%s:%v", op, args["v"]))
	})
	if err := p.Register("sink", "node-s", sink); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.InvokeOneway("node-c", "sink", "put", codec.Record{"v": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "put:0" || got[2] != "put:2" {
		t.Fatalf("got %v", got)
	}
	if p.Stats().Oneways != 3 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestQueueRoundRobinDelivery(t *testing.T) {
	k, p := newPlatform(t, ProfileJMSLike, 0)
	if err := p.QueueDeclare("jobs"); err != nil {
		t.Fatal(err)
	}
	if err := p.QueueDeclare("jobs"); !errors.Is(err, ErrDuplicateQueue) {
		t.Fatalf("err = %v, want ErrDuplicateQueue", err)
	}
	var c1, c2 []string
	if err := p.QueueSubscribe("jobs", "w1", func(m codec.Message) { c1 = append(c1, m.Name) }); err != nil {
		t.Fatal(err)
	}
	if err := p.QueueSubscribe("jobs", "w2", func(m codec.Message) { c2 = append(c2, m.Name) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := p.QueuePut("prod", "jobs", codec.NewMessage(fmt.Sprintf("job-%d", i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(c1)+len(c2) != 6 {
		t.Fatalf("delivered %d+%d, want 6 total", len(c1), len(c2))
	}
	if len(c1) != 3 || len(c2) != 3 {
		t.Fatalf("round robin skewed: %d vs %d", len(c1), len(c2))
	}
	st := p.Stats()
	if st.QueuePuts != 6 || st.QueueDeliver != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueBacklogBeforeSubscribe(t *testing.T) {
	k, p := newPlatform(t, ProfileMQLike, 0)
	if err := p.QueueDeclare("q"); err != nil {
		t.Fatal(err)
	}
	if err := p.QueuePut("prod", "q", codec.NewMessage("early", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := p.QueueSubscribe("q", "w", func(m codec.Message) { got = append(got, m.Name) }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "early" {
		t.Fatalf("backlog delivery = %v", got)
	}
}

func TestQueueUnknown(t *testing.T) {
	_, p := newPlatform(t, ProfileMQLike, 0)
	if err := p.QueuePut("c", "nope", codec.NewMessage("m", nil)); !errors.Is(err, ErrUnknownQueue) {
		t.Fatalf("err = %v", err)
	}
	if err := p.QueueSubscribe("nope", "c", func(codec.Message) {}); !errors.Is(err, ErrUnknownQueue) {
		t.Fatalf("err = %v", err)
	}
	if err := p.QueueSubscribe("nope", "c", nil); err == nil {
		t.Fatal("nil consumer accepted")
	}
}

func TestPubSubFanout(t *testing.T) {
	k, p := newPlatform(t, ProfileCORBALike, 0)
	var got1, got2 []string
	if err := p.SubscribeTopic("news", "n1", func(m codec.Message) { got1 = append(got1, m.Name) }); err != nil {
		t.Fatal(err)
	}
	if err := p.SubscribeTopic("news", "n2", func(m codec.Message) { got2 = append(got2, m.Name) }); err != nil {
		t.Fatal(err)
	}
	if err := p.Publish("pub", "news", codec.NewMessage("flash", codec.Record{"k": "v"})); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got1) != 1 || len(got2) != 1 {
		t.Fatalf("fanout = %v / %v", got1, got2)
	}
	st := p.Stats()
	if st.Publishes != 1 || st.EventDeliver != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPubSubNilSink(t *testing.T) {
	_, p := newPlatform(t, ProfileCORBALike, 0)
	if err := p.SubscribeTopic("t", "n", nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

func TestRPCOverLossyNetwork(t *testing.T) {
	// The reliable transport must mask 30% loss entirely.
	k, p := newPlatform(t, ProfileCORBALike, 0.3)
	if err := p.Register("server", "node-s", echoObject()); err != nil {
		t.Fatal(err)
	}
	completed := 0
	for i := 0; i < 20; i++ {
		err := p.Invoke("node-c", "server", "echo", codec.Record{"i": int64(i)}, func(r codec.Record, e error) {
			if e == nil {
				completed++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != 20 {
		t.Fatalf("completed %d of 20 over lossy-but-reliable transport", completed)
	}
}

func TestDispatchOverheadAddsLatency(t *testing.T) {
	profile := ProfileRMILike
	profile.DispatchOverhead = 5 * time.Millisecond
	k, p := newPlatform(t, profile, 0)
	if err := p.Register("server", "node-s", echoObject()); err != nil {
		t.Fatal(err)
	}
	var when time.Duration
	if err := p.Invoke("node-c", "server", "echo", nil, func(codec.Record, error) { when = k.Now() }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 2 × 1ms wire + 2 × 5ms dispatch = at least 12ms.
	if when < 12*time.Millisecond {
		t.Fatalf("reply at %v, want >= 12ms with overhead", when)
	}
}

func TestProfileByName(t *testing.T) {
	for _, want := range Profiles() {
		got, ok := ProfileByName(want.Name)
		if !ok || got.Name != want.Name {
			t.Fatalf("ProfileByName(%q) = %+v, %v", want.Name, got, ok)
		}
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("unknown profile found")
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		PatternRPC: "rpc", PatternOneway: "oneway", PatternQueue: "queue", PatternPubSub: "pubsub",
	} {
		if p.String() != want {
			t.Fatalf("Pattern %d = %q, want %q", int(p), p.String(), want)
		}
	}
	if Pattern(42).String() != "Pattern(42)" {
		t.Fatal("unknown pattern string")
	}
}

func BenchmarkRPCRoundTrip(b *testing.B) {
	b.ReportAllocs()
	k, p := newPlatform(b, ProfileRMILike, 0)
	if err := p.Register("server", "node-s", echoObject()); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		done := false
		if err := p.Invoke("node-c", "server", "echo", codec.Record{"i": int64(i)}, func(codec.Record, error) { done = true }); err != nil {
			b.Fatal(err)
		}
		if _, err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if !done {
			b.Fatal("call incomplete")
		}
	}
}

// TestPlatformOverStreamTransport runs the platform over the full §4.2
// stack: unreliable datagrams → reliable datagrams → octet stream →
// framed PDUs. The middleware is oblivious to the four layers beneath it.
func TestPlatformOverStreamTransport(t *testing.T) {
	k := sim.NewKernel(sim.WithSeed(13))
	net := network.New(k, network.WithDefaultLink(network.LinkConfig{
		Latency:  time.Millisecond,
		LossRate: 0.2,
	}))
	transport := protocol.NewStreamTransport(k, protocol.NewUnreliableDatagram(net),
		protocol.ReliableDatagramConfig{}, protocol.StreamConfig{ChunkSize: 32})
	p := New(k, transport, ProfileCORBALike, "broker")
	if err := p.Register("server", "node-s", echoObject()); err != nil {
		t.Fatal(err)
	}
	completed := 0
	for i := 0; i < 10; i++ {
		err := p.Invoke("node-c", "server", "echo", codec.Record{"i": int64(i)}, func(r codec.Record, e error) {
			if e == nil {
				completed++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != 10 {
		t.Fatalf("completed %d of 10 over the stream transport", completed)
	}
}
