package middleware

import (
	"fmt"

	"repro/internal/codec"
)

// Compiled wire-message schemas of the implicit protocol. Encoding
// through them appends straight into pooled scratch buffers — no field
// map is built and no key sorting happens per message. Field order in
// the encode calls below is the canonical (sorted) order the schemas
// enforce; the bytes are identical to the legacy EncodeMessage path.
var (
	schemaCall     = codec.CompileSchema("mw.call", "args", "id", "op", "target")
	schemaOneway   = codec.CompileSchema("mw.oneway", "args", "op", "target")
	schemaReplyOK  = codec.CompileSchema("mw.reply", "id", "result")
	schemaReplyErr = codec.CompileSchema("mw.reply", "error", "id")
	schemaEnqueue  = codec.CompileSchema("mw.enqueue", "fields", "name", "queue")
	schemaDeliver  = codec.CompileSchema("mw.deliver", "fields", "name", "queue")
	schemaPublish  = codec.CompileSchema("mw.publish", "fields", "name", "topic")
	schemaEvent    = codec.CompileSchema("mw.event", "fields", "name", "topic")
)

// finishSend completes an encode into buf and transmits it from→to,
// recycling the buffer either way.
func (p *Platform) finishSend(buf *codec.Buffer, e *codec.Encoder, from Addr, fromLow int32, to Addr, toLow int32) error {
	data, err := e.Finish()
	if err != nil {
		buf.Release()
		return fmt.Errorf("middleware: marshal: %w", err)
	}
	sendErr := p.sendData(from, fromLow, to, toLow, data)
	buf.B = data
	buf.Release()
	return sendErr
}

// Invoke performs a request/response interaction (the RPC pattern): the
// operation is marshalled, carried to the object's hosting node by the
// implicit wire protocol, dispatched, and the reply returned to cont. The
// caller's identity is the node it invokes from, matching the paper's
// remote-invocation component middleware of §4.1.
//
// Invoke is asynchronous in virtual time (the simulation has no blocking);
// cont runs when the reply arrives, or with ErrCallTimeout if the profile
// sets a timeout that expires first.
func (p *Platform) Invoke(from Addr, target ObjRef, op string, args codec.Record, cont func(codec.Record, error)) error {
	if !p.profile.Supports(PatternRPC) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternRPC, p.profile.Name)
	}
	if cont == nil {
		cont = func(codec.Record, error) {}
	}
	fromID, err := p.ensureRuntime(from)
	if err != nil {
		return err
	}
	p.mu.Lock()
	reg, ok := p.objects[target]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownObject, target)
	}
	if p.downNodes[reg.nodeID] || p.downNodes[fromID] {
		// Fail fast, but asynchronously: callers treat a synchronous
		// Invoke error as a programming mistake, while ErrUnavailable is
		// an operational outcome that belongs on the continuation. The
		// caller's own node being down fails the same way — a crashed
		// node cannot transmit, so letting the call proceed would leak a
		// request the wire silently drops and a pending entry nothing
		// ever resolves.
		down := p.nodeAddrs[reg.nodeID]
		if p.downNodes[fromID] {
			down = p.nodeAddrs[fromID]
		}
		p.stats.Unavailables++
		p.mu.Unlock()
		p.scheduleFunc(0, func() {
			cont(nil, fmt.Errorf("%w: %s is down", ErrUnavailable, down))
		})
		return nil
	}
	p.nextCall++
	id := p.nextCall
	pc := pendingCall{cont: cont, node: reg.nodeID, caller: fromID}
	if p.profile.CallTimeout > 0 {
		pc.timer = p.scheduleFuncRef(p.profile.CallTimeout, func() { p.onCallTimeout(id) })
	}
	p.pending[id] = pc
	p.stats.Calls++
	fromLow := p.nodeLows[fromID]
	to, toLow := p.nodeRefLocked(reg.nodeID)
	p.mu.Unlock()

	buf := codec.GetBuffer()
	e := schemaCall.Encoder(buf.B[:0])
	e.Value("args", args)
	e.Uint("id", id)
	e.Str("op", op)
	e.Str("target", string(target))
	if err := p.finishSend(buf, &e, from, fromLow, to, toLow); err != nil {
		p.mu.Lock()
		if pc, ok := p.pending[id]; ok {
			pc.timer.Cancel() // zero ref is an inert no-op
			delete(p.pending, id)
		}
		p.mu.Unlock()
		return err
	}
	return nil
}

func (p *Platform) onCallTimeout(id uint64) {
	p.mu.Lock()
	pc, ok := p.pending[id]
	if ok {
		delete(p.pending, id)
		p.stats.Timeouts++
	}
	p.mu.Unlock()
	if ok {
		pc.cont(nil, fmt.Errorf("%w: call %d", ErrCallTimeout, id))
	}
}

// InvokeOneway performs fire-and-forget message passing to an object's
// operation: no reply, no delivery confirmation to the caller.
func (p *Platform) InvokeOneway(from Addr, target ObjRef, op string, args codec.Record) error {
	if !p.profile.Supports(PatternOneway) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternOneway, p.profile.Name)
	}
	fromID, err := p.ensureRuntime(from)
	if err != nil {
		return err
	}
	p.mu.Lock()
	reg, ok := p.objects[target]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownObject, target)
	}
	p.stats.Oneways++
	fromLow := p.nodeLows[fromID]
	to, toLow := p.nodeRefLocked(reg.nodeID)
	p.mu.Unlock()
	buf := codec.GetBuffer()
	e := schemaOneway.Encoder(buf.B[:0])
	e.Value("args", args)
	e.Str("op", op)
	e.Str("target", string(target))
	return p.finishSend(buf, &e, from, fromLow, to, toLow)
}

// QueueDeclare creates a named queue at the platform broker.
func (p *Platform) QueueDeclare(name string) error {
	if !p.profile.Supports(PatternQueue) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternQueue, p.profile.Name)
	}
	if _, err := p.ensureRuntime(p.broker); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.queues[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateQueue, name)
	}
	p.queues[name] = &queueState{}
	return nil
}

// QueuePut enqueues a message. The message travels to the broker node on
// the wire, then onward to one consumer (round-robin among subscribers),
// modelling point-to-point MOM semantics.
func (p *Platform) QueuePut(from Addr, queue string, m codec.Message) error {
	if !p.profile.Supports(PatternQueue) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternQueue, p.profile.Name)
	}
	fromID, err := p.ensureRuntime(from)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if _, ok := p.queues[queue]; !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownQueue, queue)
	}
	p.stats.QueuePuts++
	fromLow := p.nodeLows[fromID]
	p.mu.Unlock()
	to, toLow := p.brokerRef()
	buf := codec.GetBuffer()
	e := schemaEnqueue.Encoder(buf.B[:0])
	e.Value("fields", m.Fields)
	e.Str("name", m.Name)
	e.Str("queue", queue)
	return p.finishSend(buf, &e, from, fromLow, to, toLow)
}

// QueueSubscribe adds a consumer for a queue. Each message goes to exactly
// one consumer; multiple consumers share the queue round-robin. Messages
// put before any subscription are retained and delivered on first
// subscribe. The consumer's node is resolved to dense ids here, once, so
// deliveries walk no tables.
func (p *Platform) QueueSubscribe(queue string, node Addr, fn func(codec.Message)) error {
	if !p.profile.Supports(PatternQueue) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternQueue, p.profile.Name)
	}
	if fn == nil {
		return fmt.Errorf("middleware: nil consumer for queue %q", queue)
	}
	nodeID, err := p.ensureRuntime(node)
	if err != nil {
		return err
	}
	if _, err := p.ensureRuntime(p.broker); err != nil {
		return err
	}
	p.mu.Lock()
	q, ok := p.queues[queue]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownQueue, queue)
	}
	q.consumers = append(q.consumers, queueConsumer{nodeID: nodeID})
	p.queueSinks[nodeID] = append(p.queueSinks[nodeID], queueSink{queue: queue, fn: fn})
	backlog := q.backlog
	q.backlog = nil
	p.mu.Unlock()
	for _, m := range backlog {
		p.deliverQueued(queue, m)
	}
	return nil
}

// deliverQueued routes one queued message from the broker to the next
// consumer.
func (p *Platform) deliverQueued(queue string, m codec.Message) {
	p.mu.Lock()
	q, ok := p.queues[queue]
	if !ok {
		p.mu.Unlock()
		return
	}
	if len(q.consumers) == 0 {
		q.backlog = append(q.backlog, m)
		p.mu.Unlock()
		return
	}
	c := q.consumers[q.nextRR%len(q.consumers)]
	q.nextRR++
	p.stats.QueueDeliver++
	to, toLow := p.nodeRefLocked(c.nodeID)
	var fromLow int32 = -1
	if p.brokerID >= 0 {
		fromLow = p.nodeLows[p.brokerID]
	}
	p.mu.Unlock()
	buf := codec.GetBuffer()
	e := schemaDeliver.Encoder(buf.B[:0])
	e.Value("fields", m.Fields)
	e.Str("name", m.Name)
	e.Str("queue", queue)
	//nolint:errcheck // broker delivery failure = message loss, acceptable for MOM sim
	_ = p.finishSend(buf, &e, p.broker, fromLow, to, toLow)
}

// Publish sends a message to every subscriber of a topic (event
// source/sink pattern).
func (p *Platform) Publish(from Addr, topic string, m codec.Message) error {
	if !p.profile.Supports(PatternPubSub) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternPubSub, p.profile.Name)
	}
	fromID, err := p.ensureRuntime(from)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.stats.Publishes++
	fromLow := p.nodeLows[fromID]
	p.mu.Unlock()
	to, toLow := p.brokerRef()
	buf := codec.GetBuffer()
	e := schemaPublish.Encoder(buf.B[:0])
	e.Value("fields", m.Fields)
	e.Str("name", m.Name)
	e.Str("topic", topic)
	return p.finishSend(buf, &e, from, fromLow, to, toLow)
}

// SubscribeTopic registers an event sink for a topic. Events arrive
// materialized as codec.Message values the sink may retain.
func (p *Platform) SubscribeTopic(topic string, node Addr, fn func(codec.Message)) error {
	if fn == nil {
		return fmt.Errorf("middleware: nil sink for topic %q", topic)
	}
	return p.subscribeTopic(topic, node, eventSink{topic: topic, fn: fn})
}

// SubscribeTopicView registers a zero-copy event sink: the sink receives
// a codec.MsgView over the mw.event envelope (fields "topic", "name",
// "fields") aliasing the transport's pooled delivery buffer. The view
// and every byte slice read through it are valid only until the sink
// returns; retain with an explicit copy (or use SubscribeTopic, whose
// materialized messages are safe to keep). This is the demux path with
// zero per-event allocations.
func (p *Platform) SubscribeTopicView(topic string, node Addr, fn func(v codec.MsgView)) error {
	if fn == nil {
		return fmt.Errorf("middleware: nil sink for topic %q", topic)
	}
	return p.subscribeTopic(topic, node, eventSink{topic: topic, viewFn: fn})
}

// subscribeTopic resolves the subscriber node to dense ids and appends it
// to the topic's fan-out table and the node's demux table — the
// "resolved once at subscribe time" half of the pub/sub fast path.
func (p *Platform) subscribeTopic(topic string, node Addr, sink eventSink) error {
	if !p.profile.Supports(PatternPubSub) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternPubSub, p.profile.Name)
	}
	if p.fed != nil {
		return p.fedSubscribe(topic, node, sink)
	}
	nodeID, err := p.ensureRuntime(node)
	if err != nil {
		return err
	}
	if _, err := p.ensureRuntime(p.broker); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.topics[topic]
	if t == nil {
		t = &topicState{allLow: true}
		p.topics[topic] = t
	}
	low := p.nodeLows[nodeID]
	t.nodes = append(t.nodes, node)
	t.lows = append(t.lows, low)
	if low < 0 {
		t.allLow = false
	}
	p.eventSinks[nodeID] = append(p.eventSinks[nodeID], sink)
	return nil
}

// onWire is the platform runtime's receive path at a node, keyed by the
// node's dense id (srcLow is the transport id of the sender on indexed
// transports, -1 otherwise — exactly one of srcAddr/srcLow is valid).
// The wire bytes alias the transport's pooled delivery buffer, so when
// dispatch overhead defers the work, the bytes are copied into a pooled
// buffer carried by a pooled deferred-dispatch record that lives exactly
// until the deferred handler finishes.
func (p *Platform) onWire(srcAddr Addr, srcLow, atID int32, data []byte) {
	overhead := p.profile.DispatchOverhead
	if overhead > 0 {
		p.mu.Lock()
		d := p.freeDeferred
		if d != nil {
			p.freeDeferred = d.next
			d.next = nil
		} else {
			d = &deferredWire{p: p}
			d.fn = d.run
		}
		p.mu.Unlock()
		d.srcAddr, d.srcLow, d.atID = srcAddr, srcLow, atID
		buf := codec.GetBuffer()
		buf.B = append(buf.B[:0], data...)
		d.buf = buf
		p.scheduleFunc(overhead, d.fn)
		return
	}
	p.handleWire(srcAddr, srcLow, atID, data)
}

// handleWire demarshals the implicit protocol through a zero-copy view
// and dispatches per message type. Corrupt wire messages are dropped.
func (p *Platform) handleWire(srcAddr Addr, srcLow, atID int32, data []byte) {
	v, err := codec.ParseMessage(data)
	if err != nil {
		return // corrupt wire message: drop
	}
	switch string(v.Name()) {
	case "mw.call":
		p.handleCall(srcAddr, srcLow, atID, &v)
	case "mw.reply":
		p.handleReply(&v)
	case "mw.oneway":
		p.handleOneway(atID, &v)
	case "mw.enqueue":
		p.handleEnqueue(&v)
	case "mw.deliver":
		p.handleDeliver(atID, &v)
	case "mw.publish":
		p.handlePublish(&v)
	case "mw.event":
		if p.fed != nil {
			p.mu.Lock()
			li := p.leafIndexOfLocked(atID)
			p.mu.Unlock()
			if li >= 0 {
				p.fedForward(int32(li), &v, data)
				return
			}
		}
		p.handleEvent(atID, &v)
	}
}

// lookupLocal finds the object registration for a wire message's target,
// verifying it is hosted at the receiving node (a dense-id compare). The
// args record is materialized (copied) here: it crosses into application
// code via Object.Dispatch and may be retained.
func (p *Platform) lookupLocal(atID int32, v *codec.MsgView) (Object, string, codec.Record, bool) {
	target, _ := v.Str("target")
	op, _ := v.Str("op")
	args, _ := v.Record("args")
	p.mu.Lock()
	reg, ok := p.objects[ObjRef(target)]
	p.mu.Unlock()
	if !ok || reg.nodeID != atID {
		return nil, "", nil, false
	}
	return reg.obj, string(op), args, true
}

// replyRef resolves where a reply from node atID back to the caller
// should travel: the receiving node's address/low id plus the caller's.
func (p *Platform) replyRef(atID int32) (Addr, int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodeAddrs[atID], p.nodeLows[atID]
}

func (p *Platform) handleCall(srcAddr Addr, srcLow, atID int32, v *codec.MsgView) {
	id, _ := v.Uint("id")
	obj, op, args, ok := p.lookupLocal(atID, v)
	if !ok {
		at, atLow := p.replyRef(atID)
		buf := codec.GetBuffer()
		e := schemaReplyErr.Encoder(buf.B[:0])
		e.Str("error", "unknown object at node")
		e.Uint("id", id)
		_ = p.finishSend(buf, &e, at, atLow, srcAddr, srcLow) //nolint:errcheck
		return
	}
	obj.Dispatch(op, args, func(result codec.Record, err error) {
		p.mu.Lock()
		p.stats.Replies++
		p.mu.Unlock()
		at, atLow := p.replyRef(atID)
		buf := codec.GetBuffer()
		if err != nil {
			e := schemaReplyErr.Encoder(buf.B[:0])
			e.Str("error", err.Error())
			e.Uint("id", id)
			_ = p.finishSend(buf, &e, at, atLow, srcAddr, srcLow) //nolint:errcheck
			return
		}
		if result == nil {
			result = codec.Record{}
		}
		e := schemaReplyOK.Encoder(buf.B[:0])
		e.Uint("id", id)
		e.Value("result", result)
		_ = p.finishSend(buf, &e, at, atLow, srcAddr, srcLow) //nolint:errcheck
	})
}

func (p *Platform) handleReply(v *codec.MsgView) {
	id, _ := v.Uint("id")
	p.mu.Lock()
	pc, ok := p.pending[id]
	if ok {
		delete(p.pending, id)
		pc.timer.Cancel() // zero ref is an inert no-op
	}
	p.mu.Unlock()
	if !ok {
		return // late reply after timeout
	}
	if _, hasErr := v.Raw("error"); hasErr {
		s, _ := v.Str("error")
		pc.cont(nil, fmt.Errorf("%w: %s", ErrRemote, s))
		return
	}
	result, _ := v.Record("result")
	pc.cont(result, nil)
}

func (p *Platform) handleOneway(atID int32, v *codec.MsgView) {
	obj, op, args, ok := p.lookupLocal(atID, v)
	if !ok {
		return
	}
	obj.Dispatch(op, args, func(codec.Record, error) {}) // replies discarded
}

func (p *Platform) handleEnqueue(v *codec.MsgView) {
	queue, _ := v.Str("queue")
	name, _ := v.Str("name")
	fields, _ := v.Record("fields")
	p.deliverQueued(string(queue), codec.NewMessage(string(name), fields))
}

// handleDeliver demultiplexes a queue delivery at the consuming node: the
// node's dense consumer table is scanned for the queue (nodes consume
// from a handful of queues; the name compare takes Go's pointer-equality
// fast path for interned literals) and the first matching consumer —
// subscription order, as the legacy table produced — gets the message.
func (p *Platform) handleDeliver(atID int32, v *codec.MsgView) {
	queue, _ := v.Str("queue")
	p.mu.Lock()
	sinks := p.queueSinks[atID]
	p.mu.Unlock()
	var fn func(codec.Message)
	for i := range sinks {
		if sinks[i].queue == string(queue) {
			fn = sinks[i].fn
			break
		}
	}
	if fn != nil {
		name, _ := v.Str("name")
		fields, _ := v.Record("fields")
		fn(codec.NewMessage(string(name), fields))
	}
}

// handlePublish is the broker half of the pub/sub hot path: the event
// envelope is re-framed as mw.event by splicing the raw name and fields
// bytes out of the incoming view — the application payload is never
// rematerialized at the broker — and the single encoded buffer fans out
// to every subscriber node over the topic's dense tables resolved at
// subscribe time (one string-keyed topic probe per publish; everything
// after it is slice-indexed).
func (p *Platform) handlePublish(v *codec.MsgView) {
	if p.fed != nil {
		p.fedPublish(v)
		return
	}
	topic, _ := v.Str("topic")
	p.mu.Lock()
	t := p.topics[string(topic)]
	var (
		nodes  []Addr
		lows   []int32
		allLow bool
	)
	if t != nil && len(t.nodes) > 0 {
		nodes, lows, allLow = t.nodes, t.lows, t.allLow
		p.stats.EventDeliver += uint64(len(nodes))
	}
	var fromLow int32 = -1
	if p.brokerID >= 0 {
		fromLow = p.nodeLows[p.brokerID]
	}
	p.mu.Unlock()
	if len(nodes) == 0 {
		return
	}
	rawName, ok := v.Raw("name")
	if !ok {
		rawName = codec.RawNil
	}
	rawFields, ok := v.Raw("fields")
	if !ok {
		rawFields = codec.RawNil
	}
	rawTopic, ok := v.Raw("topic")
	if !ok {
		rawTopic = codec.RawNil
	}
	buf := codec.GetBuffer()
	e := schemaEvent.Encoder(buf.B[:0])
	e.Raw("fields", rawFields)
	e.Raw("name", rawName)
	e.Raw("topic", rawTopic)
	data, err := e.Finish()
	if err != nil {
		buf.Release()
		return
	}
	//nolint:errcheck // event delivery failure = event loss, acceptable for pub/sub sim
	_ = p.sendMultiData(p.broker, fromLow, nodes, lows, allLow, data)
	buf.B = data
	buf.Release()
}

// handleEvent demultiplexes an event at a subscriber node over the
// node's dense sink table: view sinks receive the envelope in place
// (zero-copy, zero-alloc); message sinks share one materialization per
// event, exactly as the legacy path did. Sinks fire in subscription
// order.
func (p *Platform) handleEvent(atID int32, v *codec.MsgView) {
	topic, _ := v.Str("topic")
	p.mu.Lock()
	sinks := p.eventSinks[atID]
	p.mu.Unlock()
	var msg codec.Message
	built := false
	for i := range sinks {
		s := &sinks[i]
		if s.topic != string(topic) {
			continue
		}
		if s.viewFn != nil {
			s.viewFn(*v)
			continue
		}
		if !built {
			name, _ := v.Str("name")
			fields, _ := v.Record("fields")
			msg = codec.NewMessage(string(name), fields)
			built = true
		}
		s.fn(msg)
	}
}
