package middleware

import (
	"fmt"

	"repro/internal/codec"
)

// Invoke performs a request/response interaction (the RPC pattern): the
// operation is marshalled, carried to the object's hosting node by the
// implicit wire protocol, dispatched, and the reply returned to cont. The
// caller's identity is the node it invokes from, matching the paper's
// remote-invocation component middleware of §4.1.
//
// Invoke is asynchronous in virtual time (the simulation has no blocking);
// cont runs when the reply arrives, or with ErrCallTimeout if the profile
// sets a timeout that expires first.
func (p *Platform) Invoke(from Addr, target ObjRef, op string, args codec.Record, cont func(codec.Record, error)) error {
	if !p.profile.Supports(PatternRPC) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternRPC, p.profile.Name)
	}
	if cont == nil {
		cont = func(codec.Record, error) {}
	}
	if err := p.ensureRuntime(from); err != nil {
		return err
	}
	p.mu.Lock()
	reg, ok := p.objects[target]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownObject, target)
	}
	p.nextCall++
	id := p.nextCall
	pc := pendingCall{cont: cont}
	if p.profile.CallTimeout > 0 {
		pc.timer = p.kernel.Schedule(p.profile.CallTimeout, func() { p.onCallTimeout(id) })
	}
	p.pending[id] = pc
	p.stats.Calls++
	p.mu.Unlock()

	msg := codec.NewMessage("mw.call", codec.Record{
		"id":     id,
		"target": string(target),
		"op":     op,
		"args":   codec.Record(args),
	})
	if err := p.send(from, reg.node, msg); err != nil {
		p.mu.Lock()
		if pc, ok := p.pending[id]; ok {
			if pc.timer != nil {
				pc.timer.Cancel()
			}
			delete(p.pending, id)
		}
		p.mu.Unlock()
		return err
	}
	return nil
}

func (p *Platform) onCallTimeout(id uint64) {
	p.mu.Lock()
	pc, ok := p.pending[id]
	if ok {
		delete(p.pending, id)
		p.stats.Timeouts++
	}
	p.mu.Unlock()
	if ok {
		pc.cont(nil, fmt.Errorf("%w: call %d", ErrCallTimeout, id))
	}
}

// InvokeOneway performs fire-and-forget message passing to an object's
// operation: no reply, no delivery confirmation to the caller.
func (p *Platform) InvokeOneway(from Addr, target ObjRef, op string, args codec.Record) error {
	if !p.profile.Supports(PatternOneway) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternOneway, p.profile.Name)
	}
	if err := p.ensureRuntime(from); err != nil {
		return err
	}
	p.mu.Lock()
	reg, ok := p.objects[target]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownObject, target)
	}
	p.stats.Oneways++
	p.mu.Unlock()
	msg := codec.NewMessage("mw.oneway", codec.Record{
		"target": string(target),
		"op":     op,
		"args":   codec.Record(args),
	})
	return p.send(from, reg.node, msg)
}

// QueueDeclare creates a named queue at the platform broker.
func (p *Platform) QueueDeclare(name string) error {
	if !p.profile.Supports(PatternQueue) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternQueue, p.profile.Name)
	}
	if err := p.ensureRuntime(p.broker); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.queues[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateQueue, name)
	}
	p.queues[name] = &queueState{}
	return nil
}

// QueuePut enqueues a message. The message travels to the broker node on
// the wire, then onward to one consumer (round-robin among subscribers),
// modelling point-to-point MOM semantics.
func (p *Platform) QueuePut(from Addr, queue string, m codec.Message) error {
	if !p.profile.Supports(PatternQueue) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternQueue, p.profile.Name)
	}
	if err := p.ensureRuntime(from); err != nil {
		return err
	}
	p.mu.Lock()
	if _, ok := p.queues[queue]; !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownQueue, queue)
	}
	p.stats.QueuePuts++
	p.mu.Unlock()
	wire := codec.NewMessage("mw.enqueue", codec.Record{
		"queue":  queue,
		"name":   m.Name,
		"fields": codec.Record(m.Fields),
	})
	return p.send(from, p.broker, wire)
}

// QueueSubscribe adds a consumer for a queue. Each message goes to exactly
// one consumer; multiple consumers share the queue round-robin. Messages
// put before any subscription are retained and delivered on first
// subscribe.
func (p *Platform) QueueSubscribe(queue string, node Addr, fn func(codec.Message)) error {
	if !p.profile.Supports(PatternQueue) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternQueue, p.profile.Name)
	}
	if fn == nil {
		return fmt.Errorf("middleware: nil consumer for queue %q", queue)
	}
	if err := p.ensureRuntime(node); err != nil {
		return err
	}
	if err := p.ensureRuntime(p.broker); err != nil {
		return err
	}
	p.mu.Lock()
	q, ok := p.queues[queue]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownQueue, queue)
	}
	q.consumers = append(q.consumers, queueConsumer{node: node, fn: fn})
	backlog := q.backlog
	q.backlog = nil
	p.mu.Unlock()
	for _, m := range backlog {
		p.deliverQueued(queue, m)
	}
	return nil
}

// deliverQueued routes one queued message from the broker to the next
// consumer.
func (p *Platform) deliverQueued(queue string, m codec.Message) {
	p.mu.Lock()
	q, ok := p.queues[queue]
	if !ok {
		p.mu.Unlock()
		return
	}
	if len(q.consumers) == 0 {
		q.backlog = append(q.backlog, m)
		p.mu.Unlock()
		return
	}
	c := q.consumers[q.nextRR%len(q.consumers)]
	q.nextRR++
	p.stats.QueueDeliver++
	p.mu.Unlock()
	wire := codec.NewMessage("mw.deliver", codec.Record{
		"queue":  queue,
		"name":   m.Name,
		"fields": codec.Record(m.Fields),
	})
	_ = p.send(p.broker, c.node, wire) //nolint:errcheck // broker delivery failure = message loss, acceptable for MOM sim
}

// Publish sends a message to every subscriber of a topic (event
// source/sink pattern).
func (p *Platform) Publish(from Addr, topic string, m codec.Message) error {
	if !p.profile.Supports(PatternPubSub) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternPubSub, p.profile.Name)
	}
	if err := p.ensureRuntime(from); err != nil {
		return err
	}
	p.mu.Lock()
	p.stats.Publishes++
	p.mu.Unlock()
	wire := codec.NewMessage("mw.publish", codec.Record{
		"topic":  topic,
		"name":   m.Name,
		"fields": codec.Record(m.Fields),
	})
	return p.send(from, p.broker, wire)
}

// SubscribeTopic registers an event sink for a topic.
func (p *Platform) SubscribeTopic(topic string, node Addr, fn func(codec.Message)) error {
	if !p.profile.Supports(PatternPubSub) {
		return fmt.Errorf("%w: %s on %q", ErrPatternUnsupported, PatternPubSub, p.profile.Name)
	}
	if fn == nil {
		return fmt.Errorf("middleware: nil sink for topic %q", topic)
	}
	if err := p.ensureRuntime(node); err != nil {
		return err
	}
	if err := p.ensureRuntime(p.broker); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.topics[topic]
	if t == nil {
		t = &topicState{}
		p.topics[topic] = t
	}
	t.subs = append(t.subs, queueConsumer{node: node, fn: fn})
	return nil
}

// onWire is the platform runtime's receive path at a node: it demarshals
// the implicit protocol and dispatches per message type.
func (p *Platform) onWire(src, at Addr, data []byte) {
	msg, err := codec.DecodeMessage(data)
	if err != nil {
		return // corrupt wire message: drop
	}
	overhead := p.profile.DispatchOverhead
	handle := func() { p.handleWire(src, at, msg) }
	if overhead > 0 {
		p.kernel.ScheduleFunc(overhead, handle)
	} else {
		handle()
	}
}

func (p *Platform) handleWire(src, at Addr, msg codec.Message) {
	switch msg.Name {
	case "mw.call":
		p.handleCall(src, at, msg)
	case "mw.reply":
		p.handleReply(msg)
	case "mw.oneway":
		p.handleOneway(at, msg)
	case "mw.enqueue":
		p.handleEnqueue(msg)
	case "mw.deliver":
		p.handleDeliver(at, msg)
	case "mw.publish":
		p.handlePublish(msg)
	case "mw.event":
		p.handleEvent(at, msg)
	}
}

// lookupLocal finds the object registration for a wire message's target,
// verifying it is hosted at the receiving node.
func (p *Platform) lookupLocal(at Addr, msg codec.Message) (Object, string, codec.Record, bool) {
	targetV, _ := msg.Get("target")
	opV, _ := msg.Get("op")
	argsV, _ := msg.Get("args")
	target, _ := targetV.(string)
	op, _ := opV.(string)
	args, _ := argsV.(map[string]codec.Value)
	p.mu.Lock()
	reg, ok := p.objects[ObjRef(target)]
	p.mu.Unlock()
	if !ok || reg.node != at {
		return nil, "", nil, false
	}
	return reg.obj, op, args, true
}

func (p *Platform) handleCall(src, at Addr, msg codec.Message) {
	idV, _ := msg.Get("id")
	id, _ := idV.(uint64)
	obj, op, args, ok := p.lookupLocal(at, msg)
	if !ok {
		reply := codec.NewMessage("mw.reply", codec.Record{
			"id": id, "error": "unknown object at node",
		})
		_ = p.send(at, src, reply) //nolint:errcheck
		return
	}
	obj.Dispatch(op, args, func(result codec.Record, err error) {
		fields := codec.Record{"id": id}
		if err != nil {
			fields["error"] = err.Error()
		} else {
			if result == nil {
				result = codec.Record{}
			}
			fields["result"] = codec.Record(result)
		}
		p.mu.Lock()
		p.stats.Replies++
		p.mu.Unlock()
		_ = p.send(at, src, codec.NewMessage("mw.reply", fields)) //nolint:errcheck
	})
}

func (p *Platform) handleReply(msg codec.Message) {
	idV, _ := msg.Get("id")
	id, _ := idV.(uint64)
	p.mu.Lock()
	pc, ok := p.pending[id]
	if ok {
		delete(p.pending, id)
		if pc.timer != nil {
			pc.timer.Cancel()
		}
	}
	p.mu.Unlock()
	if !ok {
		return // late reply after timeout
	}
	if errV, hasErr := msg.Get("error"); hasErr {
		s, _ := errV.(string)
		pc.cont(nil, fmt.Errorf("%w: %s", ErrRemote, s))
		return
	}
	resultV, _ := msg.Get("result")
	result, _ := resultV.(map[string]codec.Value)
	pc.cont(result, nil)
}

func (p *Platform) handleOneway(at Addr, msg codec.Message) {
	obj, op, args, ok := p.lookupLocal(at, msg)
	if !ok {
		return
	}
	obj.Dispatch(op, args, func(codec.Record, error) {}) // replies discarded
}

func (p *Platform) handleEnqueue(msg codec.Message) {
	queueV, _ := msg.Get("queue")
	queue, _ := queueV.(string)
	nameV, _ := msg.Get("name")
	name, _ := nameV.(string)
	fieldsV, _ := msg.Get("fields")
	fields, _ := fieldsV.(map[string]codec.Value)
	p.deliverQueued(queue, codec.NewMessage(name, fields))
}

func (p *Platform) handleDeliver(at Addr, msg codec.Message) {
	queueV, _ := msg.Get("queue")
	queue, _ := queueV.(string)
	nameV, _ := msg.Get("name")
	name, _ := nameV.(string)
	fieldsV, _ := msg.Get("fields")
	fields, _ := fieldsV.(map[string]codec.Value)
	p.mu.Lock()
	q := p.queues[queue]
	var fn func(codec.Message)
	if q != nil {
		for _, c := range q.consumers {
			if c.node == at {
				fn = c.fn
				break
			}
		}
	}
	p.mu.Unlock()
	if fn != nil {
		fn(codec.NewMessage(name, fields))
	}
}

func (p *Platform) handlePublish(msg codec.Message) {
	topicV, _ := msg.Get("topic")
	topic, _ := topicV.(string)
	p.mu.Lock()
	t := p.topics[topic]
	var nodes []Addr
	if t != nil {
		nodes = make([]Addr, len(t.subs))
		for i, s := range t.subs {
			nodes[i] = s.node
		}
		p.stats.EventDeliver += uint64(len(nodes))
	}
	p.mu.Unlock()
	if len(nodes) == 0 {
		return
	}
	nameV, _ := msg.Get("name")
	fieldsV, _ := msg.Get("fields")
	wire := codec.NewMessage("mw.event", codec.Record{
		"topic":  topic,
		"name":   nameV,
		"fields": fieldsV,
	})
	_ = p.sendMulti(p.broker, nodes, wire) //nolint:errcheck // event delivery failure = event loss, acceptable for pub/sub sim
}

func (p *Platform) handleEvent(at Addr, msg codec.Message) {
	topicV, _ := msg.Get("topic")
	topic, _ := topicV.(string)
	nameV, _ := msg.Get("name")
	name, _ := nameV.(string)
	fieldsV, _ := msg.Get("fields")
	fields, _ := fieldsV.(map[string]codec.Value)
	p.mu.Lock()
	t := p.topics[topic]
	var fns []func(codec.Message)
	if t != nil {
		for _, s := range t.subs {
			if s.node == at {
				fns = append(fns, s.fn)
			}
		}
	}
	p.mu.Unlock()
	for _, fn := range fns {
		fn(codec.NewMessage(name, fields))
	}
}
