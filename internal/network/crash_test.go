package network

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/sim/shard"
)

// TestCrashDropsTraffic: a crashed node neither sends nor receives, and
// both directions count as drops, not deliveries.
func TestCrashDropsTraffic(t *testing.T) {
	k, n, cap := newPair(t, LinkConfig{Latency: time.Millisecond})
	if err := n.Crash("b"); err != nil {
		t.Fatal(err)
	}
	if !n.Crashed("b") || n.Crashed("a") {
		t.Fatalf("Crashed: a=%v b=%v, want false/true", n.Crashed("a"), n.Crashed("b"))
	}
	if err := n.Send("a", "b", []byte("to-dead")); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("b", "a", []byte("from-dead")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cap.payloads) != 0 {
		t.Fatalf("delivered %q to a crashed node", cap.payloads)
	}
	st := n.Stats()
	if st.Sent != 2 || st.Dropped != 2 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want Sent=2 Dropped=2 Delivered=0", st)
	}
}

// TestCrashDropsInFlight: a datagram already on the wire when the
// destination crashes is dropped at arrival — even if the node has
// restarted by then, because the restart is a fresh incarnation.
func TestCrashDropsInFlight(t *testing.T) {
	k, n, cap := newPair(t, LinkConfig{Latency: 10 * time.Millisecond})
	if err := n.Send("a", "b", []byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	k.ScheduleFunc(2*time.Millisecond, func() {
		if err := n.Crash("b"); err != nil {
			t.Error(err)
		}
	})
	k.ScheduleFunc(4*time.Millisecond, func() {
		if err := n.Restart("b"); err != nil {
			t.Error(err)
		}
		// A fresh send to the restarted incarnation must deliver.
		if err := n.Send("a", "b", []byte("post-restart")); err != nil {
			t.Error(err)
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cap.payloads) != 1 || string(cap.payloads[0]) != "post-restart" {
		t.Fatalf("payloads = %q, want only post-restart", cap.payloads)
	}
	st := n.Stats()
	if st.Dropped != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v, want Dropped=1 Delivered=1", st)
	}
}

// TestRestartIncarnation: incarnations are 1-based and bump per restart;
// lifecycle misuse errors are typed.
func TestRestartIncarnation(t *testing.T) {
	_, n, _ := newPair(t, LinkConfig{})
	if inc := n.Incarnation("b"); inc != 1 {
		t.Fatalf("initial incarnation = %d, want 1", inc)
	}
	s, _ := n.SlotOf("b")
	if inc := n.IncarnationOfSlot(s); inc != 1 {
		t.Fatalf("initial slot incarnation = %d, want 1", inc)
	}
	if err := n.Restart("b"); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("Restart on live node: %v, want ErrNotCrashed", err)
	}
	if err := n.Crash("b"); err != nil {
		t.Fatal(err)
	}
	if err := n.Crash("b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("double Crash: %v, want ErrCrashed", err)
	}
	if err := n.Restart("b"); err != nil {
		t.Fatal(err)
	}
	if inc := n.Incarnation("b"); inc != 2 {
		t.Fatalf("incarnation after restart = %d, want 2", inc)
	}
	if !n.CrashedSlot(-1) == false || n.CrashedSlot(s) {
		t.Fatalf("CrashedSlot misreports")
	}
	if err := n.Crash("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Crash unknown: %v, want ErrUnknownNode", err)
	}
	if err := n.Restart("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Restart unknown: %v, want ErrUnknownNode", err)
	}
	if inc := n.Incarnation("nope"); inc != 0 {
		t.Fatalf("unknown incarnation = %d, want 0", inc)
	}
	if inc := n.IncarnationOfSlot(99); inc != 0 {
		t.Fatalf("out-of-range slot incarnation = %d, want 0", inc)
	}
}

// TestScheduleFaultPlan: plan events fire at their virtual times, mutate
// network state, and invoke the lifecycle hooks in order.
func TestScheduleFaultPlan(t *testing.T) {
	k, n, cap := newPair(t, LinkConfig{Latency: time.Millisecond})
	var log []string
	plan := &FaultPlan{
		Events: []fault.Event{
			{At: 5 * time.Millisecond, Kind: fault.Crash, Node: "b"},
			{At: 8 * time.Millisecond, Kind: fault.Partition, Node: "a", Peer: "b"},
			{At: 15 * time.Millisecond, Kind: fault.Restart, Node: "b"},
			{At: 20 * time.Millisecond, Kind: fault.Heal, Node: "a", Peer: "b"},
		},
		OnCrash:   func(id NodeID) { log = append(log, "crash:"+string(id)+"@"+k.Now().String()) },
		OnRestart: func(id NodeID) { log = append(log, "restart:"+string(id)+"@"+k.Now().String()) },
	}
	if err := n.ScheduleFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	// t=0: delivered normally. t=6ms: dropped (b crashed). t=16ms:
	// dropped (a→b partitioned). t=21ms: delivered (healed, restarted).
	send := func(at time.Duration, msg string) {
		k.ScheduleFunc(at, func() {
			if err := n.Send("a", "b", []byte(msg)); err != nil {
				t.Error(err)
			}
		})
	}
	send(0, "up")
	send(6*time.Millisecond, "crashed")
	send(16*time.Millisecond, "partitioned")
	send(21*time.Millisecond, "healed")
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"crash:b@5ms", "restart:b@15ms"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("hook log = %v, want %v", log, want)
	}
	var got []string
	for _, p := range cap.payloads {
		got = append(got, string(p))
	}
	if !reflect.DeepEqual(got, []string{"up", "healed"}) {
		t.Fatalf("delivered %v, want [up healed]", got)
	}
	if n.Incarnation("b") != 2 {
		t.Fatalf("incarnation = %d, want 2", n.Incarnation("b"))
	}
}

// TestScheduleFaultPlanUnknownNode: the whole plan is rejected before
// anything is scheduled.
func TestScheduleFaultPlanUnknownNode(t *testing.T) {
	k, n, _ := newPair(t, LinkConfig{})
	err := n.ScheduleFaultPlan(&FaultPlan{Events: []fault.Event{
		{At: time.Millisecond, Kind: fault.Crash, Node: "ghost"},
	}})
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if err := n.ScheduleFaultPlan(nil); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashShardAffinity: fault events and deliveries stay deterministic
// on a sharded engine — the same crash scenario yields identical
// delivery counts at K=1 and K=4.
func TestCrashShardAffinity(t *testing.T) {
	run := func(shards int) Stats {
		var eng sim.Engine = sim.NewKernel(sim.WithSeed(42))
		if shards > 1 {
			eng = shard.NewGroup(shards, shard.WithSeed(42))
		}
		n := New(eng, WithDefaultLink(LinkConfig{Latency: time.Millisecond}))
		const nodes = 8
		for i := 0; i < nodes; i++ {
			id := NodeID(string(rune('a' + i)))
			if err := n.AddNode(id, func(NodeID, []byte) {}); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(9))
		names := make([]string, nodes)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		events, err := fault.Schedule(fault.Spec{
			CrashRate: 20,
			MTTR:      20 * time.Millisecond,
			Horizon:   500 * time.Millisecond,
		}, names, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.ScheduleFaultPlan(&FaultPlan{Events: events}); err != nil {
			t.Fatal(err)
		}
		// A ring of periodic sends so traffic crosses every shard
		// boundary while nodes churn underneath it.
		for i := 0; i < nodes; i++ {
			src := NodeID(names[i])
			dst := NodeID(names[(i+1)%nodes])
			for tick := time.Duration(0); tick < 500*time.Millisecond; tick += 7 * time.Millisecond {
				eng.ScheduleFunc(tick, func() {
					_ = n.Send(src, dst, []byte("tick"))
				})
			}
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return n.Stats()
	}
	s1 := run(1)
	s4 := run(4)
	if s1 != s4 {
		t.Fatalf("stats diverge across shard counts: K=1 %+v, K=4 %+v", s1, s4)
	}
	if s1.Dropped == 0 {
		t.Fatal("churn scenario produced no drops — faults not applied?")
	}
}
