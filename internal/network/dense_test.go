package network

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// The tests in this file pin the dense routing plane's edge cases:
// dynamic registration growing the link grid mid-run, partition toggling
// between slot-addressed sends, and the slot plane consuming randomness
// exactly as the name-addressed plane does (the property the sweep's
// byte-identical CSV rests on).

// TestRegisterAfterTrafficGridGrowth registers nodes after traffic has
// started — enough of them to force a grid rebuild — and checks that
// pre-registration link configuration, existing slots, and in-flight
// style traffic all survive the growth.
func TestRegisterAfterTrafficGridGrowth(t *testing.T) {
	kernel := sim.NewKernel()
	n := New(kernel, WithDefaultLink(LinkConfig{Latency: time.Millisecond}))

	got := make(map[NodeID]int)
	handler := func(dst NodeID) SlotHandler {
		return func(src Slot, payload []byte) { got[dst]++ }
	}
	a, err := n.Register("a", handler("a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register("b", handler("b"))
	if err != nil {
		t.Fatal(err)
	}
	// Configure a link for a node that does not exist yet: it must take
	// effect when the node registers (here: a partitioned link, the most
	// observable configuration).
	if err := n.SetLink("a", "late", LinkConfig{Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	n.Partition("a", "late")

	// Traffic before growth.
	if err := n.SendSlot(a, b, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if got["b"] != 1 {
		t.Fatalf("b got %d datagrams before growth, want 1", got["b"])
	}

	// Register past the initial grid width (4) to force a rebuild.
	var late Slot
	for _, id := range []NodeID{"c", "d", "late", "f"} {
		s, err := n.Register(id, handler(id))
		if err != nil {
			t.Fatal(err)
		}
		if id == "late" {
			late = s
		}
	}
	if s, ok := n.SlotOf("a"); !ok || s != a {
		t.Fatalf("slot of a changed across growth: %d → %d", a, s)
	}
	if n.NumSlots() != 6 {
		t.Fatalf("NumSlots = %d, want 6", n.NumSlots())
	}

	// The pre-registration partition must be live in the rebuilt grid.
	if err := n.SendSlot(a, late, []byte("cut")); err != nil {
		t.Fatal(err)
	}
	// And existing links still work.
	if err := n.SendSlot(a, b, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if got["late"] != 0 {
		t.Fatalf("late got %d datagrams through a partitioned link, want 0", got["late"])
	}
	if got["b"] != 2 {
		t.Fatalf("b got %d datagrams after growth, want 2", got["b"])
	}
	st := n.Stats()
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}

// TestPartitionToggleMidRun toggles a partition on and off between
// slot-addressed sends inside one kernel run and checks exactly the
// right datagrams are lost.
func TestPartitionToggleMidRun(t *testing.T) {
	kernel := sim.NewKernel()
	n := New(kernel)
	var got []string
	a, err := n.Register("a", func(src Slot, payload []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register("b", func(src Slot, payload []byte) {
		got = append(got, string(payload))
	})
	if err != nil {
		t.Fatal(err)
	}
	send := func(msg string) {
		if err := n.SendSlot(a, b, []byte(msg)); err != nil {
			t.Errorf("send %q: %v", msg, err)
		}
	}
	send("before")
	kernel.ScheduleFunc(2*time.Millisecond, func() {
		n.Partition("a", "b")
		send("during")
	})
	kernel.ScheduleFunc(4*time.Millisecond, func() {
		n.Heal("a", "b")
		send("after")
	})
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "before" || got[1] != "after" {
		t.Fatalf("delivered %q, want [before after]", got)
	}
	if st := n.Stats(); st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}

// TestSlotPlaneMatchesNamePlane drives two identical lossy/jittery
// networks from the same seed, one through the name-addressed Send and
// one through SendSlot, and requires identical delivery traces: the slot
// plane must consume kernel randomness exactly like the compatibility
// plane (the invariant behind the sweep's byte-identical CSV).
func TestSlotPlaneMatchesNamePlane(t *testing.T) {
	run := func(useSlots bool) ([]string, Stats) {
		kernel := sim.NewKernel(sim.WithSeed(77))
		n := New(kernel, WithDefaultLink(LinkConfig{
			Latency:       time.Millisecond,
			Jitter:        3 * time.Millisecond,
			LossRate:      0.3,
			DuplicateRate: 0.2,
		}))
		var got []string
		if err := n.AddNode("a", func(src NodeID, p []byte) {}); err != nil {
			t.Fatal(err)
		}
		if err := n.AddNode("b", func(src NodeID, p []byte) {
			got = append(got, string(p))
		}); err != nil {
			t.Fatal(err)
		}
		a, _ := n.SlotOf("a")
		b, _ := n.SlotOf("b")
		for i := 0; i < 40; i++ {
			payload := []byte{byte(i)}
			var err error
			if useSlots {
				err = n.SendSlot(a, b, payload)
			} else {
				err = n.Send("a", "b", payload)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := kernel.Run(); err != nil {
			t.Fatal(err)
		}
		return got, n.Stats()
	}
	gotName, statsName := run(false)
	gotSlot, statsSlot := run(true)
	if statsName != statsSlot {
		t.Fatalf("stats diverge: name=%+v slot=%+v", statsName, statsSlot)
	}
	if len(gotName) != len(gotSlot) {
		t.Fatalf("delivery counts diverge: %d vs %d", len(gotName), len(gotSlot))
	}
	for i := range gotName {
		if gotName[i] != gotSlot[i] {
			t.Fatalf("delivery %d diverges: %q vs %q", i, gotName[i], gotSlot[i])
		}
	}
}

// TestLazyRowsStayNil pins the O(N) memory claim of the link plane: a
// fabric using only the default link materializes no rows at all, and
// explicit configuration materializes exactly the configured sources.
func TestLazyRowsStayNil(t *testing.T) {
	kernel := sim.NewKernel()
	n := New(kernel)
	const nodes = 512
	sink := func(src Slot, payload []byte) {}
	for i := 0; i < nodes; i++ {
		if _, err := n.Register(NodeID(fmt.Sprintf("n%d", i)), sink); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.SendSlot(0, Slot(nodes-1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	materialized := 0
	for _, row := range n.rows {
		if row != nil {
			materialized++
		}
	}
	n.mu.Unlock()
	if materialized != 0 {
		t.Fatalf("default-link fabric materialized %d rows, want 0", materialized)
	}
	// One SetLink and one Partition materialize exactly those source rows.
	if err := n.SetLink("n3", "n4", LinkConfig{Latency: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	n.Partition("n7", "n8")
	n.mu.Lock()
	materialized = 0
	for _, row := range n.rows {
		if row != nil {
			materialized++
		}
	}
	n.mu.Unlock()
	if materialized != 2 {
		t.Fatalf("materialized %d rows, want 2 (n3 and n7)", materialized)
	}
	// Partitioned traffic drops; healed traffic flows again.
	s7, _ := n.SlotOf("n7")
	s8, _ := n.SlotOf("n8")
	if err := n.SendSlot(s7, s8, []byte("drop")); err != nil {
		t.Fatal(err)
	}
	n.Heal("n7", "n8")
	if err := n.SendSlot(s7, s8, []byte("flow")); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
}
