package network

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// FaultPlan binds a pre-drawn fault schedule (internal/fault) to a live
// network: ScheduleFaultPlan turns every event into a timebase event that
// mutates network state at its virtual time. The hooks let higher layers
// react in the same instant — tear down reliable flows, fail pending
// RPCs, rebind services — after the network-level state change has been
// applied.
//
// Determinism: each event is stamped with the affinity of the affected
// node's slot (the partition source for link faults), so on a sharded
// engine the state change executes on the shard that owns that node and
// orders deterministically against its deliveries and sends. Event times
// are drawn at nanosecond granularity from a dedicated RNG stream, so
// collisions with traffic on other shards do not occur in practice; the
// churn band's K=1-vs-K=4 byte-identity gate is the empirical check.
type FaultPlan struct {
	Events []fault.Event
	// OnCrash runs immediately after the node is crashed, at the event's
	// virtual time.
	OnCrash func(id NodeID)
	// OnRestart runs immediately after the node is restarted (its
	// incarnation already bumped), at the event's virtual time.
	OnRestart func(id NodeID)
}

// ScheduleFaultPlan schedules every event of the plan on the network's
// timebase, relative to the current virtual time. All referenced nodes
// must already be registered (their slots provide the affinity stamps);
// an unknown node fails the whole call before anything is scheduled.
//
// A plan event that is invalid when it fires (crashing a crashed node,
// restarting a live one) panics: schedules from fault.Schedule alternate
// correctly by construction, so this only trips on a scheduling bug, and
// a deterministic panic beats a silently diverging run.
func (n *Network) ScheduleFaultPlan(p *FaultPlan) error {
	if p == nil || len(p.Events) == 0 {
		return nil
	}
	entries := make([]sim.BatchEntry, 0, len(p.Events))
	for _, ev := range p.Events {
		id := NodeID(ev.Node)
		slot, ok := n.SlotOf(id)
		if !ok {
			return fmt.Errorf("%w: fault plan references %q", ErrUnknownNode, ev.Node)
		}
		var fn func()
		switch ev.Kind {
		case fault.Crash:
			fn = func() {
				if err := n.Crash(id); err != nil {
					panic(fmt.Sprintf("network: fault plan: %v", err))
				}
				if p.OnCrash != nil {
					p.OnCrash(id)
				}
			}
		case fault.Restart:
			fn = func() {
				if err := n.Restart(id); err != nil {
					panic(fmt.Sprintf("network: fault plan: %v", err))
				}
				if p.OnRestart != nil {
					p.OnRestart(id)
				}
			}
		case fault.Partition:
			peer := NodeID(ev.Peer)
			fn = func() { n.Partition(id, peer) }
		case fault.Heal:
			peer := NodeID(ev.Peer)
			fn = func() { n.Heal(id, peer) }
		default:
			return fmt.Errorf("network: fault plan: unknown event kind %v", ev.Kind)
		}
		entries = append(entries, sim.BatchEntry{Delay: ev.At, Fn: fn, Aff: sim.AffinityOf(slot)})
	}
	n.tb.ScheduleBatch(entries)
	return nil
}
