// Package network simulates the physical interconnection underlying every
// experiment in this repository: the "lower level service [that] provides
// physical interconnection and (reliable or unreliable) data transfer
// between protocol entities" (paper, §2).
//
// The network is a set of named nodes joined by configurable links. A link
// models latency, jitter, probabilistic loss and duplication, and an
// optional MTU. Delivery is scheduled on a sim.Kernel, so all behaviour is
// deterministic for a fixed seed.
//
// The service offered at this level is an *unreliable datagram* service:
// higher layers (internal/protocol) build reliable datagram delivery on top
// of it, exactly as the protocol-centred paradigm prescribes.
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/sim"
)

// Common errors.
var (
	ErrUnknownNode   = errors.New("network: unknown node")
	ErrDuplicateNode = errors.New("network: node already registered")
	ErrTooLarge      = errors.New("network: payload exceeds link MTU")
)

// NodeID names a node on the simulated network.
type NodeID string

// Handler receives datagrams delivered to a node.
//
// The payload slice is a pooled delivery buffer owned by the network: it
// is valid only until the handler returns, after which it is recycled
// for an unrelated datagram. Handlers that keep payload bytes beyond the
// call (buffering, reassembly) must copy them; decoding with
// internal/codec's materializing APIs copies implicitly, while MsgView
// accessors alias and must not outlive the call.
type Handler func(src NodeID, payload []byte)

// LinkConfig describes the behaviour of a directed link.
type LinkConfig struct {
	// Latency is the base one-way delay.
	Latency time.Duration
	// Jitter adds a uniformly random delay in [0, Jitter). Jitter larger
	// than the inter-send gap causes reordering, which is intended.
	Jitter time.Duration
	// LossRate is the probability in [0,1] that a datagram is dropped.
	LossRate float64
	// DuplicateRate is the probability in [0,1] that a datagram is
	// delivered twice.
	DuplicateRate float64
	// MTU, when positive, bounds payload size; larger sends fail with
	// ErrTooLarge. Zero means unlimited.
	MTU int
}

// validate reports configuration errors early rather than at send time.
func (c LinkConfig) validate() error {
	if c.Latency < 0 || c.Jitter < 0 {
		return fmt.Errorf("network: negative latency/jitter (%v/%v)", c.Latency, c.Jitter)
	}
	if c.LossRate < 0 || c.LossRate > 1 {
		return fmt.Errorf("network: loss rate %v out of [0,1]", c.LossRate)
	}
	if c.DuplicateRate < 0 || c.DuplicateRate > 1 {
		return fmt.Errorf("network: duplicate rate %v out of [0,1]", c.DuplicateRate)
	}
	if c.MTU < 0 {
		return fmt.Errorf("network: negative MTU %d", c.MTU)
	}
	return nil
}

// Stats is a snapshot of network-wide counters. Duplicated deliveries count
// once as sent and twice as delivered.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	BytesSent uint64
}

// Option configures a Network.
type Option func(*Network)

// WithDefaultLink sets the link configuration used for node pairs without
// an explicit SetLink call. The default is 1ms latency, no jitter, no loss.
func WithDefaultLink(cfg LinkConfig) Option {
	return func(n *Network) { n.defaultLink = cfg }
}

// Network is the simulated interconnection fabric. Create one with New.
type Network struct {
	kernel      *sim.Kernel
	defaultLink LinkConfig

	mu        sync.Mutex
	nodes     map[NodeID]Handler
	links     map[linkKey]LinkConfig
	partition map[linkKey]bool
	stats     Stats
}

type linkKey struct{ src, dst NodeID }

// New creates a network scheduled on kernel.
func New(kernel *sim.Kernel, opts ...Option) *Network {
	n := &Network{
		kernel:      kernel,
		defaultLink: LinkConfig{Latency: time.Millisecond},
		nodes:       make(map[NodeID]Handler),
		links:       make(map[linkKey]LinkConfig),
		partition:   make(map[linkKey]bool),
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Kernel returns the simulation kernel the network schedules on.
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// AddNode registers a node and its delivery handler.
func (n *Network) AddNode(id NodeID, h Handler) error {
	if h == nil {
		return fmt.Errorf("network: nil handler for node %q", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	n.nodes[id] = h
	return nil
}

// SetHandler replaces the delivery handler of an existing node.
func (n *Network) SetHandler(id NodeID, h Handler) error {
	if h == nil {
		return fmt.Errorf("network: nil handler for node %q", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	n.nodes[id] = h
	return nil
}

// Nodes returns the registered node ids in unspecified order.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}

// SetLink configures the directed link src→dst.
func (n *Network) SetLink(src, dst NodeID, cfg LinkConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{src, dst}] = cfg
	return nil
}

// SetLinkBoth configures both directions between a and b.
func (n *Network) SetLinkBoth(a, b NodeID, cfg LinkConfig) error {
	if err := n.SetLink(a, b, cfg); err != nil {
		return err
	}
	return n.SetLink(b, a, cfg)
}

// Partition cuts (or, with healed=false... see Heal) the directed link
// src→dst: datagrams are silently dropped, as in a network partition.
func (n *Network) Partition(src, dst NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition[linkKey{src, dst}] = true
}

// PartitionBoth cuts both directions between a and b.
func (n *Network) PartitionBoth(a, b NodeID) {
	n.Partition(a, b)
	n.Partition(b, a)
}

// Heal restores the directed link src→dst after a Partition.
func (n *Network) Heal(src, dst NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partition, linkKey{src, dst})
}

// HealBoth restores both directions between a and b.
func (n *Network) HealBoth(a, b NodeID) {
	n.Heal(a, b)
	n.Heal(b, a)
}

// linkFor returns the effective configuration of the src→dst link.
func (n *Network) linkFor(src, dst NodeID) LinkConfig {
	if cfg, ok := n.links[linkKey{src, dst}]; ok {
		return cfg
	}
	return n.defaultLink
}

// Send transmits payload from src to dst as an unreliable datagram. The
// payload is copied, so the caller may reuse its buffer. Send never blocks;
// delivery (if any) happens later in virtual time.
func (n *Network) Send(src, dst NodeID, payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[src]; !ok {
		return fmt.Errorf("%w: source %q", ErrUnknownNode, src)
	}
	var batch [2]sim.BatchEntry
	entries, err := n.transmitLocked(n.kernel.Rand(), src, dst, payload, batch[:0])
	if err != nil {
		return err
	}
	n.kernel.ScheduleBatch(entries)
	return nil
}

// SendMulti transmits payload from src to every destination in order,
// with per-destination link behaviour exactly as if Send were called once
// per destination (same random-draw order, so traces are unchanged), but
// schedules all resulting deliveries through the kernel's batch path in a
// single lock acquisition. Destinations that fail validation (unknown
// node, MTU) are skipped; the first such error is returned after all
// other destinations have been processed.
func (n *Network) SendMulti(src NodeID, dsts []NodeID, payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[src]; !ok {
		return fmt.Errorf("%w: source %q", ErrUnknownNode, src)
	}
	var firstErr error
	rng := n.kernel.Rand()
	entries := make([]sim.BatchEntry, 0, len(dsts))
	for _, dst := range dsts {
		var err error
		entries, err = n.transmitLocked(rng, src, dst, payload, entries)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	n.kernel.ScheduleBatch(entries)
	return firstErr
}

// transmitLocked validates one src→dst datagram, applies partition, loss
// and duplication, and appends the resulting delivery events (0, 1 or 2)
// to entries. It must be called with n.mu held, and consumes kernel
// randomness in a fixed order (loss, jitter, duplicate, duplicate jitter)
// to keep traces deterministic.
func (n *Network) transmitLocked(rng *rand.Rand, src, dst NodeID, payload []byte, entries []sim.BatchEntry) ([]sim.BatchEntry, error) {
	if _, ok := n.nodes[dst]; !ok {
		return entries, fmt.Errorf("%w: destination %q", ErrUnknownNode, dst)
	}
	cfg := n.linkFor(src, dst)
	if cfg.MTU > 0 && len(payload) > cfg.MTU {
		return entries, fmt.Errorf("%w: %d > %d (link %s→%s)", ErrTooLarge, len(payload), cfg.MTU, src, dst)
	}
	n.stats.Sent++
	n.stats.BytesSent += uint64(len(payload))
	if n.partition[linkKey{src, dst}] {
		n.stats.Dropped++
		return entries, nil
	}
	if cfg.LossRate > 0 && rng.Float64() < cfg.LossRate {
		n.stats.Dropped++
		return entries, nil
	}
	buf := codec.GetBuffer()
	buf.B = append(buf.B[:0], payload...)
	entries = append(entries, n.deliveryLocked(rng, src, dst, cfg, buf))
	if cfg.DuplicateRate > 0 && rng.Float64() < cfg.DuplicateRate {
		dup := codec.GetBuffer()
		dup.B = append(dup.B[:0], payload...)
		entries = append(entries, n.deliveryLocked(rng, src, dst, cfg, dup))
	}
	return entries, nil
}

// deliveryLocked draws the link jitter and builds the delivery event for
// one datagram copy. It must be called with n.mu held. The pooled buffer
// is recycled as soon as the handler returns (see Handler's aliasing
// contract).
func (n *Network) deliveryLocked(rng *rand.Rand, src, dst NodeID, cfg LinkConfig, buf *codec.Buffer) sim.BatchEntry {
	delay := cfg.Latency
	if cfg.Jitter > 0 {
		delay += time.Duration(rng.Int63n(int64(cfg.Jitter)))
	}
	return sim.BatchEntry{Delay: delay, Fn: func() {
		n.mu.Lock()
		h, ok := n.nodes[dst]
		if ok {
			n.stats.Delivered++
		}
		n.mu.Unlock()
		if ok {
			h(src, buf.B)
		}
		buf.Release()
	}}
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the network counters; experiments call it between
// warm-up and measurement phases.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}
