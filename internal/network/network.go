// Package network simulates the physical interconnection underlying every
// experiment in this repository: the "lower level service [that] provides
// physical interconnection and (reliable or unreliable) data transfer
// between protocol entities" (paper, §2).
//
// The network is a set of named nodes joined by configurable links. A link
// models latency, jitter, probabilistic loss and duplication, and an
// optional MTU. Delivery is scheduled on a sim.Timebase (a single kernel
// or a sharded group), so all behaviour is deterministic for a fixed
// seed; deliveries carry the destination slot as their affinity, which
// is how a sharded engine routes them to the shard owning the receiver.
//
// The service offered at this level is an *unreliable datagram* service:
// higher layers (internal/protocol) build reliable datagram delivery on top
// of it, exactly as the protocol-centred paradigm prescribes.
//
// # Dense routing plane
//
// Every node receives a dense small-int Slot at registration. Handlers
// live in a slot-indexed slice and link state (config, partition flag)
// lives in lazily materialized per-source rows: a source with no
// explicit SetLink/Partition call has a nil row and pays one pointer of
// memory, so a million-node fabric with default links costs O(N), not
// O(N²). Sources that are configured get a dense fromSlot-indexed row,
// and the steady-state send and delivery paths — SendSlot,
// SendMultiSlot and the pooled delivery events they schedule — perform
// zero map lookups and zero allocations. The string-keyed API (Send,
// SendMulti, AddNode, SetLink, …) remains as the control plane and as a
// compatibility wrapper that resolves names to slots on entry.
// Registering nodes after traffic has started is supported: rows grow
// (amortised) and in-flight deliveries keep their slots, which stay
// valid for the network's lifetime.
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/sim"
)

// Common errors.
var (
	ErrUnknownNode   = errors.New("network: unknown node")
	ErrDuplicateNode = errors.New("network: node already registered")
	ErrTooLarge      = errors.New("network: payload exceeds link MTU")
	ErrBadSlot       = errors.New("network: slot out of range")
	ErrCrashed       = errors.New("network: node already crashed")
	ErrNotCrashed    = errors.New("network: node is not crashed")
)

// NodeID names a node on the simulated network.
type NodeID string

// Slot is a node's dense index, assigned at registration time. Slots
// count up from zero in registration order and stay valid for the
// network's lifetime, so slot-indexed tables in higher layers never need
// rebuilding on their account. It is an alias for int32 so higher-layer
// dense id tables ([]int32) interoperate without conversions.
type Slot = int32

// Handler receives datagrams delivered to a node.
//
// The payload slice is a pooled delivery buffer owned by the network: it
// is valid only until the handler returns, after which it is recycled
// for an unrelated datagram. Handlers that keep payload bytes beyond the
// call (buffering, reassembly) must copy them; decoding with
// internal/codec's materializing APIs copies implicitly, while MsgView
// accessors alias and must not outlive the call.
type Handler func(src NodeID, payload []byte)

// SlotHandler is the dense-plane variant of Handler: the source is
// identified by its slot, so the delivery path resolves no names. The
// same payload aliasing contract as Handler applies.
type SlotHandler func(src Slot, payload []byte)

// LinkConfig describes the behaviour of a directed link.
type LinkConfig struct {
	// Latency is the base one-way delay.
	Latency time.Duration
	// Jitter adds a uniformly random delay in [0, Jitter). Jitter larger
	// than the inter-send gap causes reordering, which is intended.
	Jitter time.Duration
	// LossRate is the probability in [0,1] that a datagram is dropped.
	LossRate float64
	// DuplicateRate is the probability in [0,1] that a datagram is
	// delivered twice.
	DuplicateRate float64
	// MTU, when positive, bounds payload size; larger sends fail with
	// ErrTooLarge. Zero means unlimited.
	MTU int
}

// validate reports configuration errors early rather than at send time.
func (c LinkConfig) validate() error {
	if c.Latency < 0 || c.Jitter < 0 {
		return fmt.Errorf("network: negative latency/jitter (%v/%v)", c.Latency, c.Jitter)
	}
	if c.LossRate < 0 || c.LossRate > 1 {
		return fmt.Errorf("network: loss rate %v out of [0,1]", c.LossRate)
	}
	if c.DuplicateRate < 0 || c.DuplicateRate > 1 {
		return fmt.Errorf("network: duplicate rate %v out of [0,1]", c.DuplicateRate)
	}
	if c.MTU < 0 {
		return fmt.Errorf("network: negative MTU %d", c.MTU)
	}
	return nil
}

// Stats is a snapshot of network-wide counters. Duplicated deliveries count
// once as sent and twice as delivered.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	BytesSent uint64
}

// Option configures a Network.
type Option func(*Network)

// WithDefaultLink sets the link configuration used for node pairs without
// an explicit SetLink call. The default is 1ms latency, no jitter, no loss.
func WithDefaultLink(cfg LinkConfig) Option {
	return func(n *Network) { n.defaultLink = cfg }
}

// linkState is one cell of a materialized link row: the effective
// directed link state between two registered slots.
type linkState struct {
	cfg LinkConfig
	// explicit marks cells configured via SetLink; others use the
	// network default.
	explicit    bool
	partitioned bool
}

// delivery is a pooled in-flight datagram: the closure scheduled on the
// kernel is built once per pooled object and reused, so steady-state
// delivery allocates nothing. dstInc is the destination's incarnation at
// send time: a delivery addressed to an earlier incarnation arrives at a
// host that crashed (and possibly restarted) while it was on the wire,
// and is dropped.
type delivery struct {
	n        *Network
	src, dst Slot
	dstInc   uint32
	buf      *codec.Buffer
	fn       func()
	next     *delivery
}

func (d *delivery) run() {
	n := d.n
	n.mu.Lock()
	var h SlotHandler
	if int(d.dst) < len(n.handlers) {
		if n.crashed[d.dst] || n.incs[d.dst] != d.dstInc {
			// The destination crashed while this datagram was in flight
			// (a restart bumps the incarnation, so the old stamp no
			// longer matches): the datagram arrives at a dead host.
			n.stats.Dropped++
		} else {
			h = n.handlers[d.dst]
		}
	}
	if h != nil {
		n.stats.Delivered++
	}
	n.mu.Unlock()
	if h != nil {
		h(d.src, d.buf.B)
	}
	buf := d.buf
	d.buf = nil
	buf.Release()
	n.mu.Lock()
	d.next = n.freeDeliveries
	n.freeDeliveries = d
	n.mu.Unlock()
}

// Network is the simulated interconnection fabric. Create one with New.
type Network struct {
	tb          sim.Timebase
	kern        *sim.Kernel // non-nil when tb is a bare kernel: devirtualized hot path
	rng         *rand.Rand  // tb.Rand(), cached: both engines return a stable source
	defaultLink LinkConfig

	mu       sync.Mutex
	slots    map[NodeID]Slot
	ids      []NodeID      // slot → name
	handlers []SlotHandler // slot → delivery handler
	crashed  []bool        // slot → node is currently crashed
	incs     []uint32      // slot → incarnation number (1-based; Restart increments)

	// rows is the lazily materialized link table: rows[src] is nil until
	// some link out of src is configured, then a dense toSlot-indexed
	// row of width rowW (a power of two grown geometrically with the
	// node count). links/partition remain the configuration source of
	// truth — they may name nodes registered later — and rows are the
	// materialized fast path over registered pairs. Default-link fabrics
	// (the common case at XL population sizes) keep every row nil and
	// cost one pointer per node.
	rows      [][]linkState
	rowW      int
	links     map[linkKey]LinkConfig
	partition map[linkKey]bool

	freeDeliveries *delivery
	scratch        []sim.BatchEntry
	stats          Stats
}

type linkKey struct{ src, dst NodeID }

// New creates a network scheduled on tb — a *sim.Kernel for
// single-threaded runs or a shard.Group for sharded ones; the network
// is written once against the Timebase seam.
func New(tb sim.Timebase, opts ...Option) *Network {
	n := &Network{
		tb:          tb,
		rng:         tb.Rand(),
		defaultLink: LinkConfig{Latency: time.Millisecond},
		slots:       make(map[NodeID]Slot),
		links:       make(map[linkKey]LinkConfig),
		partition:   make(map[linkKey]bool),
	}
	// The seam is the Timebase interface, but the overwhelmingly common
	// engine is a bare kernel; keeping the concrete pointer restores the
	// direct (inlinable) call on the per-datagram schedule path.
	n.kern, _ = tb.(*sim.Kernel)
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Time returns the timebase the network schedules on.
func (n *Network) Time() sim.Timebase { return n.tb }

// Register adds a node with a slot-addressed handler and returns its
// dense slot — the entry point of the map-free plane. Registration is
// valid at any time, including after traffic has started: the link grid
// grows to cover the new slot and existing slots are unaffected.
func (n *Network) Register(id NodeID, h SlotHandler) (Slot, error) {
	if h == nil {
		return -1, fmt.Errorf("network: nil handler for node %q", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.slots[id]; ok {
		return -1, fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	s := Slot(len(n.ids))
	n.slots[id] = s
	n.ids = append(n.ids, id)
	n.handlers = append(n.handlers, h)
	n.crashed = append(n.crashed, false)
	n.incs = append(n.incs, 1)
	n.rows = append(n.rows, nil)
	n.ensureRowWidthLocked(len(n.ids))
	n.materializeNodeLocked(id, s)
	return s, nil
}

// AddNode registers a node and its name-addressed delivery handler (the
// compatibility plane; Register is the dense equivalent).
func (n *Network) AddNode(id NodeID, h Handler) error {
	if h == nil {
		return fmt.Errorf("network: nil handler for node %q", id)
	}
	_, err := n.Register(id, n.wrapHandler(h))
	return err
}

// wrapHandler adapts a name-addressed Handler to the slot plane. The
// source name is resolved under the lock because the slot→name slice may
// be growing concurrently.
func (n *Network) wrapHandler(h Handler) SlotHandler {
	return func(src Slot, payload []byte) {
		n.mu.Lock()
		id := n.ids[src]
		n.mu.Unlock()
		h(id, payload)
	}
}

// SetHandler replaces the delivery handler of an existing node.
func (n *Network) SetHandler(id NodeID, h Handler) error {
	if h == nil {
		return fmt.Errorf("network: nil handler for node %q", id)
	}
	return n.setSlotHandler(id, n.wrapHandler(h))
}

// SetSlotHandler replaces the delivery handler of an existing node with a
// slot-addressed one.
func (n *Network) SetSlotHandler(id NodeID, h SlotHandler) error {
	if h == nil {
		return fmt.Errorf("network: nil handler for node %q", id)
	}
	return n.setSlotHandler(id, h)
}

func (n *Network) setSlotHandler(id NodeID, h SlotHandler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.slots[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	n.handlers[s] = h
	return nil
}

// SlotOf resolves a node name to its dense slot.
func (n *Network) SlotOf(id NodeID) (Slot, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.slots[id]
	return s, ok
}

// IDOf resolves a slot back to its node name. It returns "" for slots
// the network never issued.
func (n *Network) IDOf(s Slot) NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s < 0 || int(s) >= len(n.ids) {
		return ""
	}
	return n.ids[s]
}

// NumSlots returns the number of slots issued so far (slots are
// 0..NumSlots-1).
func (n *Network) NumSlots() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.ids)
}

// Nodes returns the registered node ids in unspecified order.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, len(n.ids))
	copy(out, n.ids)
	return out
}

// ensureRowWidthLocked grows the row width so materialized rows cover
// count slots. Growth is geometric and only already-materialized rows
// are copied — nil rows (the overwhelming majority at scale) cost
// nothing.
func (n *Network) ensureRowWidthLocked(count int) {
	if count <= n.rowW {
		return
	}
	w := n.rowW * 2
	if w < 4 {
		w = 4
	}
	for w < count {
		w *= 2
	}
	for i, row := range n.rows {
		if row == nil {
			continue
		}
		grown := make([]linkState, w)
		copy(grown, row)
		n.rows[i] = grown
	}
	n.rowW = w
}

// rowLocked returns the materialized link row of src, creating it on
// first use. Only sources with explicit link configuration ever get a
// row.
func (n *Network) rowLocked(src Slot) []linkState {
	if n.rows[src] == nil {
		n.rows[src] = make([]linkState, n.rowW)
	}
	return n.rows[src]
}

// materializeNodeLocked fills the link cells involving a newly
// registered node from the configuration maps (SetLink/Partition calls
// may predate registration).
func (n *Network) materializeNodeLocked(id NodeID, s Slot) {
	for k, cfg := range n.links {
		if k.src != id && k.dst != id {
			continue
		}
		si, ok1 := n.slots[k.src]
		di, ok2 := n.slots[k.dst]
		if ok1 && ok2 {
			c := &n.rowLocked(si)[di]
			c.cfg, c.explicit = cfg, true
		}
	}
	for k, cut := range n.partition {
		if !cut || (k.src != id && k.dst != id) {
			continue
		}
		si, ok1 := n.slots[k.src]
		di, ok2 := n.slots[k.dst]
		if ok1 && ok2 {
			n.rowLocked(si)[di].partitioned = true
		}
	}
}

// SetLink configures the directed link src→dst. Either endpoint may be
// registered later; the configuration takes effect when both exist.
func (n *Network) SetLink(src, dst NodeID, cfg LinkConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{src, dst}] = cfg
	if si, ok := n.slots[src]; ok {
		if di, ok := n.slots[dst]; ok {
			c := &n.rowLocked(si)[di]
			c.cfg, c.explicit = cfg, true
		}
	}
	return nil
}

// SetLinkBoth configures both directions between a and b.
func (n *Network) SetLinkBoth(a, b NodeID, cfg LinkConfig) error {
	if err := n.SetLink(a, b, cfg); err != nil {
		return err
	}
	return n.SetLink(b, a, cfg)
}

// Partition cuts the directed link src→dst: datagrams are silently
// dropped, as in a network partition. Toggling mid-run is supported and
// affects only datagrams sent after the call (in-flight deliveries
// already left the link).
func (n *Network) Partition(src, dst NodeID) {
	n.setPartition(src, dst, true)
}

// PartitionBoth cuts both directions between a and b.
func (n *Network) PartitionBoth(a, b NodeID) {
	n.Partition(a, b)
	n.Partition(b, a)
}

// Heal restores the directed link src→dst after a Partition.
func (n *Network) Heal(src, dst NodeID) {
	n.setPartition(src, dst, false)
}

// HealBoth restores both directions between a and b.
func (n *Network) HealBoth(a, b NodeID) {
	n.Heal(a, b)
	n.Heal(b, a)
}

func (n *Network) setPartition(src, dst NodeID, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cut {
		n.partition[linkKey{src, dst}] = true
	} else {
		delete(n.partition, linkKey{src, dst})
	}
	if si, ok := n.slots[src]; ok {
		if di, ok := n.slots[dst]; ok {
			if cut {
				n.rowLocked(si)[di].partitioned = true
			} else if row := n.rows[si]; row != nil {
				row[di].partitioned = false
			}
		}
	}
}

// Send transmits payload from src to dst as an unreliable datagram. The
// payload is copied, so the caller may reuse its buffer. Send never blocks;
// delivery (if any) happens later in virtual time.
//
// Send resolves both names on entry; steady-state senders should resolve
// once and use SendSlot.
func (n *Network) Send(src, dst NodeID, payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	ss, ok := n.slots[src]
	if !ok {
		return fmt.Errorf("%w: source %q", ErrUnknownNode, src)
	}
	ds, ok := n.slots[dst]
	if !ok {
		return fmt.Errorf("%w: destination %q", ErrUnknownNode, dst)
	}
	// The batch is staged in the lock-protected scratch slice: a local
	// array would escape through the Timebase interface call and put an
	// allocation on the per-datagram path.
	entries, err := n.transmitLocked(n.rng, ss, ds, payload, n.scratch[:0])
	if err != nil {
		n.scratch = entries[:0]
		return err
	}
	n.scheduleBatch(entries)
	n.scratch = entries[:0]
	return nil
}

// SendSlot is the dense-plane Send: both endpoints are named by slot and
// the whole path — link lookup, loss/jitter draws, delivery scheduling —
// performs no map lookups and no allocations in steady state.
//
//repolint:hotpath
func (n *Network) SendSlot(src, dst Slot, payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(src) >= len(n.ids) || src < 0 {
		return fmt.Errorf("%w: source %d", ErrBadSlot, src) //repolint:allow alloc -- cold: caller passed an invalid slot
	}
	if int(dst) >= len(n.ids) || dst < 0 {
		return fmt.Errorf("%w: destination %d", ErrBadSlot, dst) //repolint:allow alloc -- cold: caller passed an invalid slot
	}
	// Staged in the scratch slice, not a local array: locals escape
	// through the Timebase interface call (see Send).
	entries, err := n.transmitLocked(n.rng, src, dst, payload, n.scratch[:0])
	if err != nil {
		n.scratch = entries[:0]
		return err
	}
	n.scheduleBatch(entries)
	n.scratch = entries[:0]
	return nil
}

// SendMulti transmits payload from src to every destination in order,
// with per-destination link behaviour exactly as if Send were called once
// per destination (same random-draw order, so traces are unchanged), but
// schedules all resulting deliveries through the kernel's batch path in a
// single lock acquisition. Destinations that fail validation (unknown
// node, MTU) are skipped; the first such error is returned after all
// other destinations have been processed.
func (n *Network) SendMulti(src NodeID, dsts []NodeID, payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	ss, ok := n.slots[src]
	if !ok {
		return fmt.Errorf("%w: source %q", ErrUnknownNode, src)
	}
	var firstErr error
	rng := n.rng
	entries := n.scratch[:0]
	for _, dst := range dsts {
		ds, ok := n.slots[dst]
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: destination %q", ErrUnknownNode, dst)
			}
			continue
		}
		var err error
		entries, err = n.transmitLocked(rng, ss, ds, payload, entries)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	n.scheduleBatch(entries)
	n.scratch = entries[:0]
	return firstErr
}

// SendMultiSlot is the dense-plane SendMulti: the fan-out list is slot
// addressed and the batch scratch is reused across calls, so steady-state
// fan-out allocates nothing.
//
//repolint:hotpath
func (n *Network) SendMultiSlot(src Slot, dsts []Slot, payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(src) >= len(n.ids) || src < 0 {
		return fmt.Errorf("%w: source %d", ErrBadSlot, src) //repolint:allow alloc -- cold: caller passed an invalid slot
	}
	var firstErr error
	rng := n.rng
	entries := n.scratch[:0]
	for _, dst := range dsts {
		if int(dst) >= len(n.ids) || dst < 0 {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: destination %d", ErrBadSlot, dst) //repolint:allow alloc -- cold: caller passed an invalid slot
			}
			continue
		}
		var err error
		entries, err = n.transmitLocked(rng, src, dst, payload, entries)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	n.scheduleBatch(entries)
	n.scratch = entries[:0]
	return firstErr
}

// scheduleBatch hands a staged batch to the engine, through the direct
// kernel call when the timebase is a bare kernel (the interface call
// defeats inlining and costs measurably on the per-datagram path).
//
//repolint:hotpath
func (n *Network) scheduleBatch(entries []sim.BatchEntry) {
	if n.kern != nil {
		n.kern.ScheduleBatch(entries)
		return
	}
	n.tb.ScheduleBatch(entries)
}

// transmitLocked validates one src→dst datagram, applies partition, loss
// and duplication, and appends the resulting delivery events (0, 1 or 2)
// to entries. It must be called with n.mu held, and consumes kernel
// randomness in a fixed order (loss, jitter, duplicate, duplicate jitter)
// to keep traces deterministic.
//
//repolint:hotpath
func (n *Network) transmitLocked(rng *rand.Rand, src, dst Slot, payload []byte, entries []sim.BatchEntry) ([]sim.BatchEntry, error) {
	// Unconfigured sources have a nil row — the default-link fast path
	// that keeps link state O(N) on XL fabrics.
	var cell *linkState
	cfg := &n.defaultLink
	if row := n.rows[src]; row != nil {
		cell = &row[dst]
		if cell.explicit {
			cfg = &cell.cfg
		}
	}
	if cfg.MTU > 0 && len(payload) > cfg.MTU {
		return entries, fmt.Errorf("%w: %d > %d (link %s→%s)", ErrTooLarge, len(payload), cfg.MTU, n.ids[src], n.ids[dst]) //repolint:allow alloc -- cold: oversized datagram is rejected, not transmitted
	}
	n.stats.Sent++
	n.stats.BytesSent += uint64(len(payload))
	// Crashed endpoints drop traffic before the loss draw, exactly like a
	// partition: a crashed source emits nothing and a crashed destination
	// receives nothing (datagrams already in flight are dropped at
	// delivery time via the incarnation stamp instead).
	if (cell != nil && cell.partitioned) || n.crashed[src] || n.crashed[dst] {
		n.stats.Dropped++
		return entries, nil
	}
	if cfg.LossRate > 0 && rng.Float64() < cfg.LossRate {
		n.stats.Dropped++
		return entries, nil
	}
	buf := codec.GetBuffer()
	buf.B = append(buf.B[:0], payload...)
	entries = append(entries, n.deliveryLocked(rng, src, dst, cfg, buf))
	if cfg.DuplicateRate > 0 && rng.Float64() < cfg.DuplicateRate {
		dup := codec.GetBuffer()
		dup.B = append(dup.B[:0], payload...)
		entries = append(entries, n.deliveryLocked(rng, src, dst, cfg, dup))
	}
	return entries, nil
}

// deliveryLocked draws the link jitter and builds the delivery event for
// one datagram copy from the pooled delivery free list. It must be
// called with n.mu held. The pooled buffer is recycled as soon as the
// handler returns (see Handler's aliasing contract).
//
//repolint:hotpath
func (n *Network) deliveryLocked(rng *rand.Rand, src, dst Slot, cfg *LinkConfig, buf *codec.Buffer) sim.BatchEntry {
	delay := cfg.Latency
	if cfg.Jitter > 0 {
		delay += time.Duration(rng.Int63n(int64(cfg.Jitter)))
	}
	d := n.freeDeliveries
	if d != nil {
		n.freeDeliveries = d.next
		d.next = nil
	} else {
		d = &delivery{n: n}
		d.fn = d.run
	}
	d.src, d.dst, d.buf = src, dst, buf
	d.dstInc = n.incs[dst]
	// The affinity stamp is what turns this delivery into a boundary
	// event when dst's slot lives on another shard; the single-threaded
	// kernel ignores it.
	return sim.BatchEntry{Delay: delay, Fn: d.fn, Aff: sim.AffinityOf(dst)}
}

// Crash marks a node as crashed (fail-stop): from this instant the slot
// emits nothing, receives nothing, and every delivery already in flight
// toward it is dropped on arrival. The node's handler and slot survive —
// Restart re-attaches them under a fresh incarnation. Crashing an
// already-crashed node is an error (fault plans alternate crash/restart
// per node; a double crash indicates a scheduling bug).
func (n *Network) Crash(id NodeID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.slots[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if n.crashed[s] {
		return fmt.Errorf("%w: %q", ErrCrashed, id)
	}
	n.crashed[s] = true
	return nil
}

// Restart brings a crashed node back on the same slot with the same
// handler and a fresh incarnation number. Datagrams stamped with the old
// incarnation (sent before the crash, still in flight) are dropped on
// arrival; new traffic flows normally. Higher layers observe the
// incarnation change (IncarnationOfSlot) to tear down stale flow state.
func (n *Network) Restart(id NodeID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.slots[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if !n.crashed[s] {
		return fmt.Errorf("%w: %q", ErrNotCrashed, id)
	}
	n.crashed[s] = false
	n.incs[s]++
	return nil
}

// Crashed reports whether a node is currently crashed. Unknown nodes
// report false.
func (n *Network) Crashed(id NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.slots[id]
	return ok && n.crashed[s]
}

// CrashedSlot is the dense-plane Crashed. Out-of-range slots report
// false.
func (n *Network) CrashedSlot(s Slot) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return s >= 0 && int(s) < len(n.crashed) && n.crashed[s]
}

// Incarnation returns a node's current incarnation number (1 for a node
// that has never crashed; each Restart increments it). Unknown nodes
// report 0.
func (n *Network) Incarnation(id NodeID) uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.slots[id]
	if !ok {
		return 0
	}
	return n.incs[s]
}

// IncarnationOfSlot is the dense-plane Incarnation. Out-of-range slots
// report 0.
func (n *Network) IncarnationOfSlot(s Slot) uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s < 0 || int(s) >= len(n.incs) {
		return 0
	}
	return n.incs[s]
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the network counters; experiments call it between
// warm-up and measurement phases.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}
