package network

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

type capture struct {
	payloads [][]byte
	sources  []NodeID
	times    []time.Duration
}

func (c *capture) handler(k *sim.Kernel) Handler {
	return func(src NodeID, payload []byte) {
		c.sources = append(c.sources, src)
		// The payload aliases a pooled delivery buffer: copy to retain.
		c.payloads = append(c.payloads, append([]byte(nil), payload...))
		c.times = append(c.times, k.Now())
	}
}

func newPair(t *testing.T, cfg LinkConfig, opts ...sim.Option) (*sim.Kernel, *Network, *capture) {
	t.Helper()
	k := sim.NewKernel(opts...)
	n := New(k, WithDefaultLink(cfg))
	cap := &capture{}
	if err := n.AddNode("a", func(NodeID, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("b", cap.handler(k)); err != nil {
		t.Fatal(err)
	}
	return k, n, cap
}

func TestDeliveryWithLatency(t *testing.T) {
	k, n, cap := newPair(t, LinkConfig{Latency: 5 * time.Millisecond})
	if err := n.Send("a", "b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cap.payloads) != 1 || string(cap.payloads[0]) != "hello" {
		t.Fatalf("payloads = %q", cap.payloads)
	}
	if cap.sources[0] != "a" {
		t.Fatalf("src = %q, want a", cap.sources[0])
	}
	if cap.times[0] != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", cap.times[0])
	}
}

func TestPayloadCopiedAtBoundary(t *testing.T) {
	k, n, cap := newPair(t, LinkConfig{})
	buf := []byte("original")
	if err := n.Send("a", "b", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "MUTATED!")
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if string(cap.payloads[0]) != "original" {
		t.Fatalf("payload aliased caller buffer: %q", cap.payloads[0])
	}
}

func TestUnknownNodes(t *testing.T) {
	_, n, _ := newPair(t, LinkConfig{})
	if err := n.Send("a", "nope", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if err := n.Send("nope", "b", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestDuplicateNode(t *testing.T) {
	_, n, _ := newPair(t, LinkConfig{})
	err := n.AddNode("a", func(NodeID, []byte) {})
	if !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("err = %v, want ErrDuplicateNode", err)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	if err := n.AddNode("x", nil); err == nil {
		t.Fatal("expected error for nil handler")
	}
	if err := n.SetHandler("x", nil); err == nil {
		t.Fatal("expected error for nil handler in SetHandler")
	}
}

func TestSetHandlerUnknownNode(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	if err := n.SetHandler("ghost", func(NodeID, []byte) {}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestMTU(t *testing.T) {
	_, n, _ := newPair(t, LinkConfig{MTU: 4})
	if err := n.Send("a", "b", []byte("12345")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if err := n.Send("a", "b", []byte("1234")); err != nil {
		t.Fatalf("send at MTU: %v", err)
	}
}

func TestLossRateFullLoss(t *testing.T) {
	k, n, cap := newPair(t, LinkConfig{LossRate: 1})
	for i := 0; i < 20; i++ {
		if err := n.Send("a", "b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cap.payloads) != 0 {
		t.Fatalf("delivered %d datagrams over fully lossy link", len(cap.payloads))
	}
	st := n.Stats()
	if st.Sent != 20 || st.Dropped != 20 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLossRateStatistical(t *testing.T) {
	k, n, cap := newPair(t, LinkConfig{LossRate: 0.5}, sim.WithSeed(7))
	const total = 2000
	for i := 0; i < total; i++ {
		if err := n.Send("a", "b", []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := len(cap.payloads)
	if got < total*35/100 || got > total*65/100 {
		t.Fatalf("delivered %d of %d with 50%% loss; far outside expectation", got, total)
	}
}

func TestDuplication(t *testing.T) {
	k, n, cap := newPair(t, LinkConfig{DuplicateRate: 1})
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cap.payloads) != 2 {
		t.Fatalf("delivered %d, want duplicate delivery (2)", len(cap.payloads))
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJitterCausesReordering(t *testing.T) {
	k, n, _ := newPair(t, LinkConfig{Latency: time.Millisecond, Jitter: 10 * time.Millisecond}, sim.WithSeed(3))
	var order []byte
	if err := n.SetHandler("b", func(_ NodeID, p []byte) { order = append(order, p[0]) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := n.Send("a", "b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 50 {
		t.Fatalf("delivered %d, want 50", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("large jitter should reorder simultaneous sends")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	k, n, cap := newPair(t, LinkConfig{})
	n.PartitionBoth("a", "b")
	if err := n.Send("a", "b", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cap.payloads) != 0 {
		t.Fatal("partitioned link delivered a datagram")
	}
	n.HealBoth("a", "b")
	if err := n.Send("a", "b", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cap.payloads) != 1 || string(cap.payloads[0]) != "ok" {
		t.Fatalf("after heal got %q", cap.payloads)
	}
}

func TestPartitionIsDirected(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	var toA, toB int
	if err := n.AddNode("a", func(NodeID, []byte) { toA++ }); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("b", func(NodeID, []byte) { toB++ }); err != nil {
		t.Fatal(err)
	}
	n.Partition("a", "b")
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("b", "a", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if toB != 0 || toA != 1 {
		t.Fatalf("toA=%d toB=%d, want 1/0", toA, toB)
	}
}

func TestPerLinkConfigOverridesDefault(t *testing.T) {
	k, n, cap := newPair(t, LinkConfig{Latency: time.Millisecond})
	if err := n.SetLink("a", "b", LinkConfig{Latency: 42 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if cap.times[0] != 42*time.Millisecond {
		t.Fatalf("delivered at %v, want 42ms", cap.times[0])
	}
}

func TestLinkConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	n := New(k)
	bad := []LinkConfig{
		{Latency: -1},
		{Jitter: -1},
		{LossRate: -0.1},
		{LossRate: 1.1},
		{DuplicateRate: 2},
		{MTU: -5},
	}
	for _, cfg := range bad {
		if err := n.SetLink("a", "b", cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestStatsAndReset(t *testing.T) {
	k, n, _ := newPair(t, LinkConfig{})
	for i := 0; i < 3; i++ {
		if err := n.Send("a", "b", []byte("xyz")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Sent != 3 || st.Delivered != 3 || st.BytesSent != 9 {
		t.Fatalf("stats = %+v", st)
	}
	n.ResetStats()
	if st := n.Stats(); st.Sent != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestNodesListing(t *testing.T) {
	_, n, _ := newPair(t, LinkConfig{})
	ids := n.Nodes()
	if len(ids) != 2 {
		t.Fatalf("Nodes() = %v", ids)
	}
}

// Property: with no loss, duplication or partition, every sent datagram is
// delivered exactly once, regardless of jitter.
func TestPropertyLosslessDeliversAll(t *testing.T) {
	prop := func(seed int64, count uint8, jitterMs uint8) bool {
		k := sim.NewKernel(sim.WithSeed(seed))
		n := New(k, WithDefaultLink(LinkConfig{
			Latency: time.Millisecond,
			Jitter:  time.Duration(jitterMs) * time.Millisecond,
		}))
		delivered := 0
		if err := n.AddNode("a", func(NodeID, []byte) {}); err != nil {
			return false
		}
		if err := n.AddNode("b", func(NodeID, []byte) { delivered++ }); err != nil {
			return false
		}
		for i := 0; i < int(count); i++ {
			if err := n.Send("a", "b", []byte{byte(i)}); err != nil {
				return false
			}
		}
		if _, err := k.Run(); err != nil {
			return false
		}
		return delivered == int(count)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	k := sim.NewKernel()
	n := New(k)
	if err := n.AddNode("a", func(NodeID, []byte) {}); err != nil {
		b.Fatal(err)
	}
	if err := n.AddNode("b", func(NodeID, []byte) {}); err != nil {
		b.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := n.Send("a", "b", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
