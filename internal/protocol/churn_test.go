package protocol

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/sim"
)

// churnHarness wires a kernel, network, and reliable layer with two
// attached endpoints and a delivery log at "b".
type churnHarness struct {
	k   *sim.Kernel
	net *network.Network
	r   *ReliableDatagram
	got []string
}

func newChurnHarness(t *testing.T, seed int64, latency time.Duration) *churnHarness {
	t.Helper()
	k, n := newNet(seed, network.LinkConfig{Latency: latency})
	h := &churnHarness{k: k, net: n}
	h.r = NewReliableDatagram(k, NewUnreliableDatagram(n), ReliableDatagramConfig{})
	if err := h.r.Attach("b", func(src Addr, pdu []byte) { h.got = append(h.got, string(pdu)) }); err != nil {
		t.Fatal(err)
	}
	if err := h.r.Attach("a", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *churnHarness) at(t *testing.T, when time.Duration, fn func() error) {
	t.Helper()
	h.k.ScheduleFunc(when, func() {
		if err := fn(); err != nil {
			t.Error(err)
		}
	})
}

// TestReliableReceiverRestart: the receiver crashes with a window in
// flight and restarts under a fresh incarnation. The sender's
// retransmissions are refused (stale world), the bare ack teaches it the
// new incarnation, the flow tears down, and a fresh send restarts at
// sequence zero — delivered exactly once, with no ghost state.
func TestReliableReceiverRestart(t *testing.T) {
	h := newChurnHarness(t, 11, time.Millisecond)
	for i := 0; i < 5; i++ {
		if err := h.r.Send("a", "b", []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash before the 1ms deliveries land: the whole window is dropped
	// in flight.
	h.at(t, 500*time.Microsecond, func() error { return h.net.Crash("b") })
	h.at(t, 5*time.Millisecond, func() error {
		if err := h.net.Restart("b"); err != nil {
			return err
		}
		h.r.NoteRestart("b")
		return nil
	})
	// Well past the 50ms retransmit timeout: the retransmit round has
	// been refused and the flow torn down by the bare ack.
	h.at(t, 120*time.Millisecond, func() error { return h.r.Send("a", "b", []byte("fresh")) })
	if _, err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(h.got) != 1 || h.got[0] != "fresh" {
		t.Fatalf("delivered %v, want [fresh]: old-incarnation data must not surface", h.got)
	}
	st := h.r.Stats()
	if st.StaleDrops == 0 {
		t.Fatalf("expected stale drops from refused retransmissions: %+v", st)
	}
	if st.FlowResets == 0 {
		t.Fatalf("expected a flow reset after the incarnation change: %+v", st)
	}
}

// TestReliableSenderRestart: the sender restarts and its numbering
// resets to zero. The receiver detects the incarnation bump on the first
// fresh data PDU, resets its receive flow (old-numbering holds dropped),
// and delivers the new stream from sequence zero.
func TestReliableSenderRestart(t *testing.T) {
	h := newChurnHarness(t, 12, time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := h.r.Send("a", "b", []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h.at(t, 3*time.Millisecond, func() error { return h.net.Crash("a") })
	h.at(t, 6*time.Millisecond, func() error {
		if err := h.net.Restart("a"); err != nil {
			return err
		}
		h.r.NoteRestart("a")
		return nil
	})
	h.at(t, 10*time.Millisecond, func() error { return h.r.Send("a", "b", []byte("fresh-0")) })
	h.at(t, 11*time.Millisecond, func() error { return h.r.Send("a", "b", []byte("fresh-1")) })
	if _, err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"pre-0", "pre-1", "pre-2", "fresh-0", "fresh-1"}
	if fmt.Sprint(h.got) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v", h.got, want)
	}
	st := h.r.Stats()
	if st.FlowResets == 0 {
		t.Fatalf("receiver never reset the flow for the new incarnation: %+v", st)
	}
	if st.Duplicates != 0 {
		t.Fatalf("restart caused duplicate deliveries: %+v", st)
	}
}

// TestReliableGhostDataDropped: data from the sender's dead incarnation,
// still in flight when the new incarnation's stream is already
// established, must be discarded — not delivered and not held in the
// reorder ring (where it would later surface as a spurious delivery).
func TestReliableGhostDataDropped(t *testing.T) {
	h := newChurnHarness(t, 13, time.Millisecond)
	if err := h.r.Send("a", "b", []byte("m0")); err != nil {
		t.Fatal(err)
	}
	// Slow the a→b link so m1 (old incarnation, seq 1) is still in
	// flight when the fresh stream arrives.
	h.at(t, 2*time.Millisecond, func() error {
		return h.net.SetLink("a", "b", network.LinkConfig{Latency: 20 * time.Millisecond})
	})
	h.at(t, 3*time.Millisecond, func() error { return h.r.Send("a", "b", []byte("m1")) })
	h.at(t, 4*time.Millisecond, func() error { return h.net.Crash("a") })
	h.at(t, 5*time.Millisecond, func() error {
		if err := h.net.Restart("a"); err != nil {
			return err
		}
		h.r.NoteRestart("a")
		return h.net.SetLink("a", "b", network.LinkConfig{Latency: time.Millisecond})
	})
	// Fresh stream (incarnation 2) lands at ~7ms; ghost m1 (incarnation
	// 1, seq 1) lands at ~23ms against a flow already at incarnation 2.
	h.at(t, 6*time.Millisecond, func() error { return h.r.Send("a", "b", []byte("fresh-0")) })
	h.at(t, 30*time.Millisecond, func() error { return h.r.Send("a", "b", []byte("fresh-1")) })
	if _, err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"m0", "fresh-0", "fresh-1"}
	if fmt.Sprint(h.got) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v (ghost m1 must not surface)", h.got, want)
	}
	if st := h.r.Stats(); st.StaleDrops == 0 {
		t.Fatalf("ghost data was not counted as a stale drop: %+v", st)
	}
}

// TestReliableGhostAckDropped: an ack generated for the dead
// incarnation's flow (the receiver had not yet learned of the restart)
// must not slide the fresh flow's window — that would mark never-
// delivered fresh data as acknowledged.
func TestReliableGhostAckDropped(t *testing.T) {
	h := newChurnHarness(t, 14, time.Millisecond)
	if err := h.r.Send("a", "b", []byte("m0")); err != nil {
		t.Fatal(err)
	}
	h.at(t, 2*time.Millisecond, func() error {
		return h.net.SetLink("a", "b", network.LinkConfig{Latency: 10 * time.Millisecond})
	})
	// m1 (seq 1, incarnation 1) arrives at b at ~13ms — after a has
	// restarted — and is acked with cum=2 against incarnation 1.
	h.at(t, 3*time.Millisecond, func() error { return h.r.Send("a", "b", []byte("m1")) })
	h.at(t, 4*time.Millisecond, func() error { return h.net.Crash("a") })
	h.at(t, 5*time.Millisecond, func() error {
		if err := h.net.Restart("a"); err != nil {
			return err
		}
		h.r.NoteRestart("a")
		return nil
	})
	// The fresh flow opens at seq 0 (in flight until ~16ms) while the
	// cum=2 ghost ack lands at ~14ms; if it were honoured the fresh
	// flow's window math would be corrupted.
	h.at(t, 6*time.Millisecond, func() error { return h.r.Send("a", "b", []byte("fresh-0")) })
	h.at(t, 20*time.Millisecond, func() error { return h.r.Send("a", "b", []byte("fresh-1")) })
	if _, err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
	// m1 is legitimately delivered (sent before the crash, fail-stop
	// keeps in-flight data); then the fresh incarnation's stream resets
	// the flow and delivers from zero.
	want := []string{"m0", "m1", "fresh-0", "fresh-1"}
	if fmt.Sprint(h.got) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v", h.got, want)
	}
	if st := h.r.Stats(); st.StaleDrops == 0 {
		t.Fatalf("ghost ack was not dropped: %+v", st)
	}
}

// TestReliableNoteRestartCancelsTimers: NoteRestart must cancel the
// restarted endpoint's retransmit timers along with its flows — a stale
// timer would retransmit dead-incarnation data forever.
func TestReliableNoteRestartCancelsTimers(t *testing.T) {
	h := newChurnHarness(t, 15, time.Millisecond)
	h.net.Partition("a", "b")
	if err := h.r.Send("a", "b", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Before the 50ms retransmit timeout: tear everything down.
	h.at(t, 10*time.Millisecond, func() error {
		if err := h.net.Crash("a"); err != nil {
			return err
		}
		if err := h.net.Restart("a"); err != nil {
			return err
		}
		h.r.NoteRestart("a")
		return nil
	})
	if _, err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
	st := h.r.Stats()
	if st.Retransmits != 0 {
		t.Fatalf("stale retransmit timer survived NoteRestart: %+v", st)
	}
	if len(h.got) != 0 {
		t.Fatalf("delivered %v across a partition", h.got)
	}
}

// TestReliableChurnTeardownRace: flow teardown (CloseFlow, NoteRestart)
// racing sends and crash/restart cycles from concurrent goroutines. The
// run is not deterministic — the point is that the locking holds under
// the race detector and the kernel drains cleanly afterwards.
func TestReliableChurnTeardownRace(t *testing.T) {
	k, n := newNet(16, network.LinkConfig{Latency: time.Millisecond})
	r := NewReliableDatagram(k, NewUnreliableDatagram(n), ReliableDatagramConfig{
		RetransmitTimeout: 2 * time.Millisecond,
	})
	const peers = 8
	names := make([]Addr, peers)
	for i := range names {
		names[i] = Addr(fmt.Sprintf("n%d", i))
	}
	for _, id := range names {
		if err := r.Attach(id, func(Addr, []byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < peers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := names[g]
			dst := names[(g+1)%peers]
			payload := []byte("x")
			for i := 0; i < 300; i++ {
				_ = r.Send(src, dst, payload)
				if i%17 == 0 {
					r.CloseFlow(src, dst)
				}
				if i%29 == 0 {
					// Each goroutine owns its node, so the
					// crash/restart alternation cannot collide.
					if err := n.Crash(src); err != nil {
						t.Error(err)
						return
					}
					if err := n.Restart(src); err != nil {
						t.Error(err)
						return
					}
					r.NoteRestart(src)
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
