package protocol

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/codec"
	"repro/internal/network"
	"repro/internal/sim"
)

// The tests in this file pin the dense demux plane's edge cases: the
// out-of-order hold ring (wraparound, overflow, duplicate holds) against
// a reference model of the pre-ring map semantics, flow teardown
// reclaiming pooled flow structs, and the lazy layer-stats snapshot.

// captureLower is a non-indexed LowerService that records sends so tests
// can replay them to receivers in arbitrary order — the harness for
// driving the reliable receiver with precise arrival sequences. It also
// exercises the name-addressed fallback paths of the dense plane.
type captureLower struct {
	receivers map[Addr]Receiver
	sent      []capturedPDU
}

type capturedPDU struct {
	src, dst Addr
	pdu      []byte
}

func newCaptureLower() *captureLower {
	return &captureLower{receivers: make(map[Addr]Receiver)}
}

func (c *captureLower) Name() string { return "capture" }

func (c *captureLower) Attach(addr Addr, r Receiver) error {
	c.receivers[addr] = r
	return nil
}

func (c *captureLower) Send(src, dst Addr, pdu []byte) error {
	buf := make([]byte, len(pdu))
	copy(buf, pdu)
	c.sent = append(c.sent, capturedPDU{src: src, dst: dst, pdu: buf})
	return nil
}

// deliver replays one captured PDU to its destination's receiver.
func (c *captureLower) deliver(p capturedPDU) {
	if r := c.receivers[p.dst]; r != nil {
		r(p.src, p.pdu)
	}
}

// encodeData builds one rdp.data PDU through the public codec (the bytes
// are canonical, identical to the schema encoder's).
func encodeData(t *testing.T, seq uint64, payload string) []byte {
	t.Helper()
	data, err := codec.EncodeMessage(codec.NewMessage("rdp.data", codec.Record{
		"seq": seq, "payload": []byte(payload),
	}))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// refReceiver is the pre-refactor receive model verbatim: an expected
// counter with a map-backed hold buffer capped at limit entries. The
// ring-based receiver must match it on every arrival sequence.
type refReceiver struct {
	expected  uint64
	held      map[uint64]string
	limit     int
	delivered []string
	dups, ooo int
}

func newRefReceiver(limit int) *refReceiver {
	return &refReceiver{held: make(map[uint64]string), limit: limit}
}

func (r *refReceiver) onData(seq uint64, payload string) {
	switch {
	case seq == r.expected:
		r.expected++
		r.delivered = append(r.delivered, payload)
		for {
			next, ok := r.held[r.expected]
			if !ok {
				break
			}
			delete(r.held, r.expected)
			r.expected++
			r.delivered = append(r.delivered, next)
		}
	case seq < r.expected:
		r.dups++
	default:
		r.ooo++
		if _, dup := r.held[seq]; !dup && len(r.held) < r.limit {
			r.held[seq] = payload
		}
	}
}

// runHoldSequence feeds one arrival sequence to a fresh ReliableDatagram
// receiver (via a capture lower, so arrivals are exact) and returns the
// delivered payload order plus stats.
func runHoldSequence(t *testing.T, cfg ReliableDatagramConfig, arrivals []uint64) ([]string, ReliableStats) {
	t.Helper()
	kernel := sim.NewKernel()
	lower := newCaptureLower()
	rd := NewReliableDatagram(kernel, lower, cfg)
	var delivered []string
	if err := rd.Attach("b", func(src Addr, pdu []byte) {
		delivered = append(delivered, string(pdu))
	}); err != nil {
		t.Fatal(err)
	}
	for _, seq := range arrivals {
		pdu := encodeData(t, seq, fmt.Sprintf("p%d", seq))
		lower.deliver(capturedPDU{src: "a", dst: "b", pdu: pdu})
	}
	return delivered, rd.Stats()
}

// TestHoldRingWraparound drives the receiver across several window
// generations with out-of-order arrivals whose ring indices wrap, and
// checks delivery order, duplicate counting and hold-drain behaviour
// against the reference model.
func TestHoldRingWraparound(t *testing.T) {
	cfg := ReliableDatagramConfig{Window: 4}
	// Window 4 → ring size 4. The sequence below repeatedly opens a gap,
	// fills the ring across its wrap point, duplicates a held PDU, and
	// closes the gap.
	arrivals := []uint64{
		0,       // in order
		2, 3, 4, // held at ring idx 2,3,0 (wraps)
		2,          // duplicate hold (must not double-deliver)
		1,          // closes gap → drain 1..4
		0,          // stale duplicate
		6, 9, 7, 8, // expected=5: held at idx 2,1,3,0 (wrapped again)
		5,  // drain 5..9
		10, // in order
	}
	got, stats := runHoldSequence(t, cfg, arrivals)

	ref := newRefReceiver(16) // default ReorderBuffer = 4×Window
	for _, seq := range arrivals {
		ref.onData(seq, fmt.Sprintf("p%d", seq))
	}
	if !reflect.DeepEqual(got, ref.delivered) {
		t.Fatalf("delivery order diverges from reference:\n got  %v\n want %v", got, ref.delivered)
	}
	if int(stats.Duplicates) != ref.dups || int(stats.OutOfOrder) != ref.ooo {
		t.Fatalf("stats diverge: got dups=%d ooo=%d, reference dups=%d ooo=%d",
			stats.Duplicates, stats.OutOfOrder, ref.dups, ref.ooo)
	}
	if stats.DataDelivered != uint64(len(ref.delivered)) {
		t.Fatalf("DataDelivered = %d, want %d", stats.DataDelivered, len(ref.delivered))
	}
}

// TestHoldRingMatchesReferenceRandomized fuzz-pins the ring against the
// reference model over seeded random arrival permutations with
// duplicates, at several window/reorder-buffer shapes (including a
// ReorderBuffer smaller than the window, where the occupancy cap binds
// before the ring's horizon does).
func TestHoldRingMatchesReferenceRandomized(t *testing.T) {
	shapes := []ReliableDatagramConfig{
		{Window: 4},
		{Window: 4, ReorderBuffer: 2},
		{Window: 8, ReorderBuffer: 3},
		{Window: 16},
	}
	for si, cfg := range shapes {
		rng := rand.New(rand.NewSource(int64(1000 + si)))
		for trial := 0; trial < 50; trial++ {
			// Arrivals: a window-respecting interleaving with duplicates.
			var arrivals []uint64
			next := uint64(0)
			lowWater := uint64(0) // everything below is delivered in the reference
			for len(arrivals) < 60 {
				c := cfg
				c.applyDefaults()
				if next < lowWater+uint64(c.Window) && rng.Intn(3) > 0 {
					arrivals = append(arrivals, next)
					next++
				} else if next > lowWater {
					// Re-deliver something from the current window.
					arrivals = append(arrivals, lowWater+uint64(rng.Int63n(int64(next-lowWater))))
				}
				if next > lowWater && rng.Intn(4) == 0 {
					lowWater = next
				}
			}
			// Shuffle within a bounded horizon to create reordering that
			// still respects the go-back-N window invariant.
			for i := 1; i < len(arrivals); i++ {
				if j := i - 1 - rng.Intn(2); j >= 0 && arrivals[i] > arrivals[j] {
					arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
				}
			}
			got, stats := runHoldSequence(t, cfg, arrivals)
			c := cfg
			c.applyDefaults()
			ref := newRefReceiver(c.ReorderBuffer)
			for _, seq := range arrivals {
				ref.onData(seq, fmt.Sprintf("p%d", seq))
			}
			if !reflect.DeepEqual(got, ref.delivered) {
				t.Fatalf("shape %d trial %d: delivery diverges\n arrivals %v\n got  %v\n want %v",
					si, trial, arrivals, got, ref.delivered)
			}
			if int(stats.Duplicates) != ref.dups || int(stats.OutOfOrder) != ref.ooo {
				t.Fatalf("shape %d trial %d: stats diverge (dups %d/%d, ooo %d/%d)",
					si, trial, stats.Duplicates, ref.dups, stats.OutOfOrder, ref.ooo)
			}
		}
	}
}

// TestHoldOverflowBeyondRingHorizon feeds a sequence a conforming sender
// cannot produce (a gap larger than the window) and checks the overflow
// spill path preserves the map semantics: the far-ahead PDU is held and
// delivered when the gap finally closes.
func TestHoldOverflowBeyondRingHorizon(t *testing.T) {
	cfg := ReliableDatagramConfig{Window: 4, ReorderBuffer: 16}
	arrivals := []uint64{10} // far beyond the 4-slot ring
	for seq := uint64(0); seq <= 9; seq++ {
		arrivals = append(arrivals, seq)
	}
	got, _ := runHoldSequence(t, cfg, arrivals)
	want := make([]string, 0, 11)
	for seq := uint64(0); seq <= 10; seq++ {
		want = append(want, fmt.Sprintf("p%d", seq))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("overflow delivery diverges:\n got  %v\n want %v", got, want)
	}
}

// TestCloseFlowReclaimsAndRestarts tears a flow pair down mid-life and
// checks (a) the pooled flow structs land on the free lists, (b) a
// subsequent send starts a fresh flow at sequence zero that the peer,
// having torn down its half too, accepts — exactly the semantics a fresh
// map entry used to give, and (c) the recycled structs are reused.
func TestCloseFlowReclaimsAndRestarts(t *testing.T) {
	kernel := sim.NewKernel(sim.WithSeed(3))
	net := network.New(kernel)
	rd := NewReliableDatagram(kernel, NewUnreliableDatagram(net), ReliableDatagramConfig{})
	var got []string
	if err := rd.Attach("a", func(src Addr, pdu []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := rd.Attach("b", func(src Addr, pdu []byte) {
		got = append(got, string(pdu))
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := rd.Send("a", "b", []byte(fmt.Sprintf("first-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d PDUs before teardown, want 3", len(got))
	}

	// Tear down both halves of the pair.
	rd.CloseFlow("a", "b")
	rd.CloseFlow("b", "a")
	rd.mu.Lock()
	if rd.freeSend == nil || rd.freeRecv == nil {
		rd.mu.Unlock()
		t.Fatal("CloseFlow did not reclaim flow structs to the free lists")
	}
	aID, bID := rd.ids["a"], rd.ids["b"]
	if rd.sendRows[aID][bID] != nil || rd.recvRows[aID][bID] != nil {
		rd.mu.Unlock()
		t.Fatal("CloseFlow left flow table entries behind")
	}
	rd.mu.Unlock()

	// A fresh conversation restarts at sequence zero on recycled structs.
	if err := rd.Send("a", "b", []byte("second")); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3] != "second" {
		t.Fatalf("post-teardown delivery = %q, want trailing \"second\"", got)
	}
	rd.mu.Lock()
	if f := rd.sendRows[aID][bID]; f == nil || f.next != 1 {
		rd.mu.Unlock()
		t.Fatalf("post-teardown send flow did not restart at seq 0")
	}
	if rd.freeSend != nil {
		rd.mu.Unlock()
		t.Fatal("fresh flow did not come from the free list")
	}
	rd.mu.Unlock()
}

// TestCloseFlowClearsBroken pins that teardown resets broken-flow state:
// a flow declared dead by the retransmit limit becomes usable again
// after CloseFlow.
func TestCloseFlowClearsBroken(t *testing.T) {
	kernel := sim.NewKernel(sim.WithSeed(5))
	net := network.New(kernel)
	if err := net.SetLinkBoth("a", "b", network.LinkConfig{LossRate: 1}); err != nil {
		t.Fatal(err)
	}
	rd := NewReliableDatagram(kernel, NewUnreliableDatagram(net), ReliableDatagramConfig{
		Window: 2, MaxRetransmits: 2,
	})
	if err := rd.Attach("a", func(src Addr, pdu []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := rd.Attach("b", func(src Addr, pdu []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := rd.Send("a", "b", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if err := rd.Send("a", "b", []byte("still-doomed")); err == nil {
		t.Fatal("send on a broken flow succeeded, want error")
	}
	rd.CloseFlow("a", "b")
	if err := rd.Send("a", "b", []byte("fresh")); err != nil {
		t.Fatalf("send after CloseFlow on a previously broken flow: %v", err)
	}
}

// TestLayerStatsLazySnapshot pins the satellite fix: Stats() must not
// materialize a fresh ByType map when counters are unchanged, must
// rebuild once they change, and previously returned snapshots must stay
// immutable.
func TestLayerStatsLazySnapshot(t *testing.T) {
	l := NewLayer("test", sim.NewKernel(), newCaptureLower())
	l.mu.Lock()
	l.countLocked("pdu.x", 10, 1)
	l.countLocked("pdu.y", 20, 2)
	l.mu.Unlock()

	s1 := l.Stats()
	s2 := l.Stats()
	if reflect.ValueOf(s1.ByType).Pointer() != reflect.ValueOf(s2.ByType).Pointer() {
		t.Fatal("Stats with unchanged counters allocated a fresh ByType map")
	}
	if s1.ByType["pdu.x"] != 1 || s1.ByType["pdu.y"] != 2 {
		t.Fatalf("snapshot content wrong: %v", s1.ByType)
	}

	l.mu.Lock()
	l.countLocked("pdu.x", 10, 3)
	l.mu.Unlock()
	s3 := l.Stats()
	if reflect.ValueOf(s3.ByType).Pointer() == reflect.ValueOf(s1.ByType).Pointer() {
		t.Fatal("Stats after counter change returned the stale snapshot map")
	}
	if s3.ByType["pdu.x"] != 4 {
		t.Fatalf("rebuilt snapshot wrong: %v", s3.ByType)
	}
	if s1.ByType["pdu.x"] != 1 {
		t.Fatalf("old snapshot mutated: %v", s1.ByType)
	}
	if s3.PDUsSent != 6 || s3.BytesSent != 10+40+30 {
		t.Fatalf("scalar counters wrong: %+v", s3)
	}
}

// TestReliableIndexedPlane smoke-tests the IndexedLower surface of the
// reliability layer itself: indexed attach, id-addressed send, and id
// round-trips through EndpointID/EndpointAddr.
func TestReliableIndexedPlane(t *testing.T) {
	kernel := sim.NewKernel(sim.WithSeed(9))
	net := network.New(kernel)
	rd := NewReliableDatagram(kernel, NewUnreliableDatagram(net), ReliableDatagramConfig{})
	var gotSrc int32 = -1
	var got []string
	aID, err := rd.AttachIndexed("a", func(src int32, pdu []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	bID, err := rd.AttachIndexed("b", func(src int32, pdu []byte) {
		gotSrc = src
		got = append(got, string(pdu))
	})
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := rd.EndpointID("a"); !ok || id != aID {
		t.Fatalf("EndpointID(a) = %d,%v want %d,true", id, ok, aID)
	}
	if addr := rd.EndpointAddr(bID); addr != "b" {
		t.Fatalf("EndpointAddr(%d) = %q, want b", bID, addr)
	}
	if _, ok := rd.EndpointID("nope"); ok {
		t.Fatal("EndpointID resolved an unattached address")
	}
	if err := rd.SendIndexed(aID, bID, []byte("dense")); err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "dense" || gotSrc != aID {
		t.Fatalf("indexed delivery = %q from %d, want [dense] from %d", got, gotSrc, aID)
	}
}

// TestHoldOverflowDuplicateNotReheld pins the fix for a duplicate of an
// overflow-held PDU arriving once the window has moved its distance into
// the ring's range: it must be recognized as already held (the map
// semantics), not held a second time — which would strand the overflow
// copy and permanently inflate the occupancy count.
func TestHoldOverflowDuplicateNotReheld(t *testing.T) {
	cfg := ReliableDatagramConfig{Window: 4, ReorderBuffer: 16}
	arrivals := []uint64{
		6,       // dist 6 > ring 4 → overflow hold
		0, 1, 2, // expected → 3
		6,       // dist 3 ≤ 4: must be seen as a duplicate of the overflow hold
		3, 4, 5, // expected → 7, draining 6 exactly once
		8, 9, 7, // one more reorder round to confirm held accounting survived
		10, 11, 12, // in order
	}
	got, stats := runHoldSequence(t, cfg, arrivals)
	ref := newRefReceiver(16)
	for _, seq := range arrivals {
		ref.onData(seq, fmt.Sprintf("p%d", seq))
	}
	if !reflect.DeepEqual(got, ref.delivered) {
		t.Fatalf("delivery diverges from reference:\n got  %v\n want %v", got, ref.delivered)
	}
	if int(stats.Duplicates) != ref.dups || int(stats.OutOfOrder) != ref.ooo {
		t.Fatalf("stats diverge: got dups=%d ooo=%d, want dups=%d ooo=%d",
			stats.Duplicates, stats.OutOfOrder, ref.dups, ref.ooo)
	}
}
