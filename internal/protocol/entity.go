package protocol

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sim"
)

// Entity is a protocol entity in the sense of the paper's §2: "the
// behaviour of a protocol entity defines the service primitives between
// this entity and the service users, the service primitives between the
// protocol entity and the lower level service, and the relationships
// between these primitives."
//
// Concrete entities (the floor-control protocols of Figure 6 live in
// internal/floorcontrol) implement the three reaction points below; the
// Layer wires them to a lower service and to their local user.
type Entity interface {
	// Init is called once when the entity is added to a layer, before any
	// traffic; entities keep the context for sending PDUs and upcalls.
	Init(ctx *Context) error
	// FromUser handles a from-user service primitive executed by the local
	// user at this entity's service access point.
	FromUser(primitive string, params codec.Record) error
	// FromPeer handles a decoded PDU received from a peer entity through
	// the lower level service.
	FromPeer(src Addr, pdu codec.Message) error
}

// Context is an entity's window on its layer: its own address, PDU
// transmission, timers and the upcall to its local service user.
type Context struct {
	layer *Layer
	self  Addr
}

// Self returns the entity's address.
func (c *Context) Self() Addr { return c.self }

// Kernel returns the simulation kernel (for time-dependent behaviour).
func (c *Context) Kernel() *sim.Kernel { return c.layer.kernel }

// Schedule runs fn after a virtual delay; entities use it for polling
// intervals, hold times and timeouts.
func (c *Context) Schedule(delay time.Duration, fn func()) *sim.Timer {
	return c.layer.kernel.Schedule(delay, fn)
}

// SendPDU encodes and transmits a PDU to the peer entity at dst through
// the layer's lower service. The encoding goes into a pooled scratch
// buffer: lower services copy synchronously (see LowerService.Send), so
// the buffer is recycled before SendPDU returns.
func (c *Context) SendPDU(dst Addr, pdu codec.Message) error {
	buf := codec.GetBuffer()
	data, err := codec.AppendMessage(buf.B[:0], pdu)
	if err != nil {
		buf.Release()
		return fmt.Errorf("protocol: encode PDU %q: %w", pdu.Name, err)
	}
	c.layer.countPDU(pdu.Name, len(data))
	err = c.layer.lower.Send(c.self, dst, data)
	buf.B = data
	buf.Release()
	if err != nil {
		return fmt.Errorf("protocol: send PDU %q %s→%s: %w", pdu.Name, c.self, dst, err)
	}
	return nil
}

// SendPDUMulti encodes pdu once and transmits it to every destination in
// order — the fan-out path for broadcast-style protocol entities. When
// the lower service supports batch fan-out (MultiSender) all deliveries
// are scheduled in one call; otherwise it degrades to a Send loop with
// identical semantics (including randomness consumption, so traces are
// unchanged). Layer counters advance exactly as if SendPDU were called
// once per destination.
func (c *Context) SendPDUMulti(dsts []Addr, pdu codec.Message) error {
	if len(dsts) == 0 {
		return nil
	}
	buf := codec.GetBuffer()
	data, err := codec.AppendMessage(buf.B[:0], pdu)
	if err != nil {
		buf.Release()
		return fmt.Errorf("protocol: encode PDU %q: %w", pdu.Name, err)
	}
	defer func() {
		buf.B = data
		buf.Release()
	}()
	c.layer.countPDUs(pdu.Name, len(data), len(dsts))
	if ms, ok := c.layer.lower.(MultiSender); ok {
		if err := ms.SendMulti(c.self, dsts, data); err != nil {
			return fmt.Errorf("protocol: send PDU %q fan-out from %s: %w", pdu.Name, c.self, err)
		}
		return nil
	}
	var firstErr error
	for _, dst := range dsts {
		if err := c.layer.lower.Send(c.self, dst, data); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("protocol: send PDU %q %s→%s: %w", pdu.Name, c.self, dst, err)
		}
	}
	return firstErr
}

// DeliverToUser executes a to-user service primitive at this entity's SAP.
// It is a no-op if the user part has not attached a handler.
func (c *Context) DeliverToUser(primitive string, params codec.Record) {
	c.layer.deliverUp(c.self, primitive, params)
}

// LayerStats counts the PDU traffic a layer generated — the measurable
// footprint of a protocol solution.
type LayerStats struct {
	PDUsSent  uint64
	BytesSent uint64
	ByType    map[string]uint64
}

// Layer binds protocol entities (one per address) over a lower-level
// service: the structure the paper's Figure 2 depicts. Its upper boundary
// is a service; expose it to user parts with NewServiceBinding.
type Layer struct {
	name   string
	kernel *sim.Kernel
	lower  LowerService

	mu       sync.Mutex
	entities map[Addr]Entity
	upcalls  map[Addr]func(primitive string, params codec.Record)
	stats    LayerStats
}

// NewLayer creates an empty layer over lower.
func NewLayer(name string, kernel *sim.Kernel, lower LowerService) *Layer {
	return &Layer{
		name:     name,
		kernel:   kernel,
		lower:    lower,
		entities: make(map[Addr]Entity),
		upcalls:  make(map[Addr]func(string, codec.Record)),
		stats:    LayerStats{ByType: make(map[string]uint64)},
	}
}

// Name returns the layer's display name.
func (l *Layer) Name() string { return l.name }

// Kernel returns the layer's simulation kernel.
func (l *Layer) Kernel() *sim.Kernel { return l.kernel }

// AddEntity installs e at addr: attaches it to the lower service and
// initializes it.
func (l *Layer) AddEntity(addr Addr, e Entity) error {
	if e == nil {
		return fmt.Errorf("protocol: nil entity at %q", addr)
	}
	l.mu.Lock()
	if _, dup := l.entities[addr]; dup {
		l.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicate, addr)
	}
	l.entities[addr] = e
	l.mu.Unlock()

	if err := l.lower.Attach(addr, func(src Addr, data []byte) {
		msg, err := codec.DecodeMessage(data)
		if err != nil {
			return // undecodable PDU: drop
		}
		_ = e.FromPeer(src, msg) //nolint:errcheck // entity errors are local design errors surfaced in tests
	}); err != nil {
		return fmt.Errorf("protocol: attach %q: %w", addr, err)
	}
	if err := e.Init(&Context{layer: l, self: addr}); err != nil {
		return fmt.Errorf("protocol: init entity at %q: %w", addr, err)
	}
	return nil
}

// Entity returns the entity at addr.
func (l *Layer) Entity(addr Addr) (Entity, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entities[addr]
	return e, ok
}

// SetUpcall registers the local user handler for to-user primitives at
// addr.
func (l *Layer) SetUpcall(addr Addr, fn func(primitive string, params codec.Record)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.upcalls[addr] = fn
}

func (l *Layer) deliverUp(addr Addr, primitive string, params codec.Record) {
	l.mu.Lock()
	fn := l.upcalls[addr]
	l.mu.Unlock()
	if fn != nil {
		fn(primitive, params)
	}
}

func (l *Layer) countPDU(name string, bytes int) {
	l.countPDUs(name, bytes, 1)
}

// countPDUs counts n identical transmissions of one PDU under a single
// lock acquisition (the fan-out path).
func (l *Layer) countPDUs(name string, bytes, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.PDUsSent += uint64(n)
	l.stats.BytesSent += uint64(n) * uint64(bytes)
	l.stats.ByType[name] += uint64(n)
}

// Stats returns a snapshot of the layer counters.
func (l *Layer) Stats() LayerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	byType := make(map[string]uint64, len(l.stats.ByType))
	for k, v := range l.stats.ByType {
		byType[k] = v
	}
	return LayerStats{PDUsSent: l.stats.PDUsSent, BytesSent: l.stats.BytesSent, ByType: byType}
}

// ServiceBinding exposes a layer's upper boundary as a core.Provider by
// mapping service access points to entity addresses. This is the seam the
// paper argues for: user parts hold a Provider and never learn which
// protocol implements it.
type ServiceBinding struct {
	layer *Layer

	mu   sync.Mutex
	saps map[core.SAP]Addr
}

var _ core.Provider = (*ServiceBinding)(nil)

// NewServiceBinding creates an empty SAP→entity binding for a layer.
func NewServiceBinding(layer *Layer) *ServiceBinding {
	return &ServiceBinding{layer: layer, saps: make(map[core.SAP]Addr)}
}

// Bind associates a SAP with the entity at addr.
func (b *ServiceBinding) Bind(sap core.SAP, addr Addr) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.layer.Entity(addr); !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEntity, addr)
	}
	if _, dup := b.saps[sap]; dup {
		return fmt.Errorf("%w: SAP %s", ErrDuplicate, sap)
	}
	b.saps[sap] = addr
	return nil
}

// Submit implements core.Provider: the from-user primitive is handed to
// the entity serving the SAP.
func (b *ServiceBinding) Submit(sap core.SAP, primitive string, params codec.Record) error {
	b.mu.Lock()
	addr, ok := b.saps[sap]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotBound, sap)
	}
	e, ok := b.layer.Entity(addr)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEntity, addr)
	}
	if err := e.FromUser(primitive, params); err != nil {
		return fmt.Errorf("protocol: %s at %s: %w", primitive, sap, err)
	}
	return nil
}

// Attach implements core.Provider.
func (b *ServiceBinding) Attach(sap core.SAP, handler func(primitive string, params codec.Record)) {
	b.mu.Lock()
	addr, ok := b.saps[sap]
	b.mu.Unlock()
	if !ok {
		return
	}
	b.layer.SetUpcall(addr, handler)
}

// ErrNotBound is reported when submitting at an unbound SAP.
var ErrNotBound = errors.New("protocol: SAP not bound")
