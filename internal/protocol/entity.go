package protocol

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/sim"
)

// Entity is a protocol entity in the sense of the paper's §2: "the
// behaviour of a protocol entity defines the service primitives between
// this entity and the service users, the service primitives between the
// protocol entity and the lower level service, and the relationships
// between these primitives."
//
// Concrete entities (the floor-control protocols of Figure 6 live in
// internal/floorcontrol) implement the three reaction points below; the
// Layer wires them to a lower service and to their local user.
type Entity interface {
	// Init is called once when the entity is added to a layer, before any
	// traffic; entities keep the context for sending PDUs and upcalls.
	Init(ctx *Context) error
	// FromUser handles a from-user service primitive executed by the local
	// user at this entity's service access point.
	FromUser(primitive string, params codec.Record) error
	// FromPeer handles a decoded PDU received from a peer entity through
	// the lower level service.
	FromPeer(src Addr, pdu codec.Message) error
}

// Context is an entity's window on its layer: its own address, PDU
// transmission, timers and the upcall to its local service user. The
// entity's own dense ids (layer slot, lower endpoint id) are resolved
// once at AddEntity time and cached here, so per-PDU work touches only
// slice-indexed tables.
type Context struct {
	layer   *Layer
	self    Addr
	selfID  int32 // layer-local entity slot
	selfLow int32 // lower-service endpoint id (-1 on non-indexed lowers)
}

// Self returns the entity's address.
func (c *Context) Self() Addr { return c.self }

// Time returns the layer's timebase (for time-dependent behaviour).
func (c *Context) Time() sim.Timebase { return c.layer.tb }

// Schedule runs fn after a virtual delay; entities use it for polling
// intervals, hold times and timeouts. The returned ref cancels without
// pinning a timer allocation (see sim.TimerRef); callers that do not
// need to cancel may discard it.
func (c *Context) Schedule(delay time.Duration, fn func()) sim.TimerRef {
	return c.layer.tb.ScheduleFuncRef(delay, fn)
}

// SendPDU encodes and transmits a PDU to the peer entity at dst through
// the layer's lower service. The encoding goes into a pooled scratch
// buffer: lower services copy synchronously (see LowerService.Send), so
// the buffer is recycled before SendPDU returns.
func (c *Context) SendPDU(dst Addr, pdu codec.Message) error {
	buf := codec.GetBuffer()
	data, err := codec.AppendMessage(buf.B[:0], pdu)
	if err != nil {
		buf.Release()
		return fmt.Errorf("protocol: encode PDU %q: %w", pdu.Name, err)
	}
	err = c.layer.sendEncoded(c, dst, pdu.Name, data)
	buf.B = data
	buf.Release()
	if err != nil {
		return fmt.Errorf("protocol: send PDU %q %s→%s: %w", pdu.Name, c.self, dst, err)
	}
	return nil
}

// SendPDUMulti encodes pdu once and transmits it to every destination in
// order — the fan-out path for broadcast-style protocol entities. On an
// indexed lower with every destination resolved, the fan-out rides the
// dense batch path; otherwise it degrades to a Send loop with identical
// semantics (including randomness consumption, so traces are unchanged).
// Layer counters advance exactly as if SendPDU were called once per
// destination.
func (c *Context) SendPDUMulti(dsts []Addr, pdu codec.Message) error {
	if len(dsts) == 0 {
		return nil
	}
	buf := codec.GetBuffer()
	data, err := codec.AppendMessage(buf.B[:0], pdu)
	if err != nil {
		buf.Release()
		return fmt.Errorf("protocol: encode PDU %q: %w", pdu.Name, err)
	}
	defer func() {
		buf.B = data
		buf.Release()
	}()
	if err := c.layer.sendEncodedMulti(c, dsts, pdu.Name, data); err != nil {
		return fmt.Errorf("protocol: send PDU %q fan-out from %s: %w", pdu.Name, c.self, err)
	}
	return nil
}

// DeliverToUser executes a to-user service primitive at this entity's SAP.
// It is a no-op if the user part has not attached a handler.
func (c *Context) DeliverToUser(primitive string, params codec.Record) {
	c.layer.deliverUp(c.selfID, primitive, params)
}

// LayerStats counts the PDU traffic a layer generated — the measurable
// footprint of a protocol solution.
//
// ByType is a lazily rebuilt snapshot shared between Stats callers:
// treat it as read-only. A fresh map is materialized only when counters
// changed since the last snapshot, so polling Stats in a loop does not
// allocate.
type LayerStats struct {
	PDUsSent  uint64
	BytesSent uint64
	ByType    map[string]uint64
}

// typeCounter is one interned per-PDU-type slot. Lookup is a linear scan
// with Go's pointer-equality string fast path: PDU names are string
// literals, so the steady-state stats hot path never hashes (layers see
// a handful of PDU types; the scan beats a map well past that).
type typeCounter struct {
	name string
	n    uint64
}

// entityEntry is the per-slot state of a layer's dense entity table.
type entityEntry struct {
	addr   Addr
	entity Entity
	upcall func(primitive string, params codec.Record)
}

// Layer binds protocol entities (one per address) over a lower-level
// service: the structure the paper's Figure 2 depicts. Its upper boundary
// is a service; expose it to user parts with NewServiceBinding.
//
// Entities, upcalls and stats counters live in dense slot-indexed tables
// resolved once at AddEntity time; per-message work does at most one
// small-map probe (destination address → lower id, cached after the
// first resolution).
type Layer struct {
	name   string
	tb     sim.Timebase
	lower  LowerService
	ilower IndexedLower // non-nil when lower supports the dense plane

	mu         sync.Mutex
	ids        map[Addr]int32
	ents       []entityEntry
	lowerAddrs []Addr         // lower endpoint id → address (receive cache)
	dstLow     map[Addr]int32 // destination → lower endpoint id (send cache)
	lowScratch []int32        // fan-out scratch, reused across SendPDUMulti calls

	pdusSent  uint64
	bytesSent uint64
	types     []typeCounter
	snapshot  map[string]uint64
	snapDirty bool
}

// NewLayer creates an empty layer over lower, scheduled on tb (a
// *sim.Kernel or a shard.Group; the layer never depends on which).
func NewLayer(name string, tb sim.Timebase, lower LowerService) *Layer {
	il, _ := lower.(IndexedLower)
	return &Layer{
		name:   name,
		tb:     tb,
		lower:  lower,
		ilower: il,
		ids:    make(map[Addr]int32),
		dstLow: make(map[Addr]int32),
	}
}

// Name returns the layer's display name.
func (l *Layer) Name() string { return l.name }

// Time returns the layer's timebase.
func (l *Layer) Time() sim.Timebase { return l.tb }

// internLocked returns addr's entity slot, assigning one on first sight.
func (l *Layer) internLocked(addr Addr) int32 {
	if id, ok := l.ids[addr]; ok {
		return id
	}
	id := int32(len(l.ents))
	l.ids[addr] = id
	l.ents = append(l.ents, entityEntry{addr: addr})
	return id
}

// addrForLower resolves a lower endpoint id to its address through a
// cached dense table (one lower query per id, ever).
func (l *Layer) addrForLower(lowSrc int32) Addr {
	l.mu.Lock()
	for int(lowSrc) >= len(l.lowerAddrs) {
		l.lowerAddrs = append(l.lowerAddrs, "")
	}
	a := l.lowerAddrs[lowSrc]
	if a == "" {
		a = l.ilower.EndpointAddr(lowSrc)
		l.lowerAddrs[lowSrc] = a
	}
	l.mu.Unlock()
	return a
}

// AddEntity installs e at addr: attaches it to the lower service and
// initializes it.
func (l *Layer) AddEntity(addr Addr, e Entity) error {
	if e == nil {
		return fmt.Errorf("protocol: nil entity at %q", addr)
	}
	l.mu.Lock()
	id := l.internLocked(addr)
	if l.ents[id].entity != nil {
		l.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicate, addr)
	}
	l.ents[id].entity = e
	l.mu.Unlock()

	selfLow := int32(-1)
	if l.ilower != nil {
		lowID, err := l.ilower.AttachIndexed(addr, func(lowSrc int32, data []byte) {
			v, err := codec.ParseMessage(data)
			if err != nil {
				return // undecodable PDU: drop
			}
			msg, err := v.Message()
			if err != nil {
				return
			}
			_ = e.FromPeer(l.addrForLower(lowSrc), msg) //nolint:errcheck // entity errors are local design errors surfaced in tests
		})
		if err != nil {
			return fmt.Errorf("protocol: attach %q: %w", addr, err)
		}
		selfLow = lowID
	} else if err := l.lower.Attach(addr, func(src Addr, data []byte) {
		v, err := codec.ParseMessage(data)
		if err != nil {
			return // undecodable PDU: drop
		}
		msg, err := v.Message()
		if err != nil {
			return
		}
		_ = e.FromPeer(src, msg) //nolint:errcheck // entity errors are local design errors surfaced in tests
	}); err != nil {
		return fmt.Errorf("protocol: attach %q: %w", addr, err)
	}
	if err := e.Init(&Context{layer: l, self: addr, selfID: id, selfLow: selfLow}); err != nil {
		return fmt.Errorf("protocol: init entity at %q: %w", addr, err)
	}
	return nil
}

// Entity returns the entity at addr.
func (l *Layer) Entity(addr Addr) (Entity, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id, ok := l.ids[addr]
	if !ok || l.ents[id].entity == nil {
		return nil, false
	}
	return l.ents[id].entity, true
}

// SetUpcall registers the local user handler for to-user primitives at
// addr.
func (l *Layer) SetUpcall(addr Addr, fn func(primitive string, params codec.Record)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.internLocked(addr)
	l.ents[id].upcall = fn
}

func (l *Layer) deliverUp(id int32, primitive string, params codec.Record) {
	l.mu.Lock()
	fn := l.ents[id].upcall
	l.mu.Unlock()
	if fn != nil {
		fn(primitive, params)
	}
}

// countLocked advances the interned PDU-type counters. Caller holds l.mu.
func (l *Layer) countLocked(name string, bytes, n int) {
	l.pdusSent += uint64(n)
	l.bytesSent += uint64(n) * uint64(bytes)
	l.snapDirty = true
	for i := range l.types {
		if l.types[i].name == name {
			l.types[i].n += uint64(n)
			return
		}
	}
	l.types = append(l.types, typeCounter{name: name, n: uint64(n)})
}

// sendEncoded counts and transmits one already-encoded PDU, using the
// dense plane when the destination's lower id resolves.
func (l *Layer) sendEncoded(c *Context, dst Addr, name string, data []byte) error {
	l.mu.Lock()
	l.countLocked(name, len(data), 1)
	low := int32(-1)
	if l.ilower != nil && c.selfLow >= 0 {
		low = l.dstLowLocked(dst)
	}
	l.mu.Unlock()
	if low >= 0 {
		return l.ilower.SendIndexed(c.selfLow, low, data)
	}
	return l.lower.Send(c.self, dst, data)
}

// sendEncodedMulti counts and transmits one encoded PDU to every
// destination, through the dense batch path when every id resolves.
func (l *Layer) sendEncodedMulti(c *Context, dsts []Addr, name string, data []byte) error {
	l.mu.Lock()
	l.countLocked(name, len(data), len(dsts))
	dense := l.ilower != nil && c.selfLow >= 0
	lows := l.lowScratch[:0]
	if dense {
		for _, dst := range dsts {
			low := l.dstLowLocked(dst)
			if low < 0 {
				dense = false
				break
			}
			lows = append(lows, low)
		}
		l.lowScratch = lows[:0]
	}
	if dense {
		// The batch send happens with l.mu held so the reused scratch
		// slice cannot be clobbered by a concurrent fan-out. Lock order
		// stays acyclic: lower services never call back into the layer
		// synchronously (deliveries are kernel-scheduled).
		defer l.mu.Unlock()
		return l.ilower.SendMultiIndexed(c.selfLow, lows, data)
	}
	l.mu.Unlock()
	if ms, ok := l.lower.(MultiSender); ok {
		return ms.SendMulti(c.self, dsts, data)
	}
	var firstErr error
	for _, dst := range dsts {
		if err := l.lower.Send(c.self, dst, data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// dstLowLocked resolves a destination address to its lower endpoint id
// through the send cache. Unresolved destinations (peer not attached
// yet) are not cached, so late attachment is picked up. Caller holds
// l.mu.
func (l *Layer) dstLowLocked(dst Addr) int32 {
	if low, ok := l.dstLow[dst]; ok {
		return low
	}
	low, ok := l.ilower.EndpointID(dst)
	if !ok {
		return -1
	}
	l.dstLow[dst] = low
	return low
}

// Stats returns a snapshot of the layer counters. The ByType map is
// rebuilt lazily: unchanged counters return the same (read-only) map.
func (l *Layer) Stats() LayerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snapshot == nil || l.snapDirty {
		m := make(map[string]uint64, len(l.types))
		for _, c := range l.types {
			m[c.name] = c.n
		}
		l.snapshot = m
		l.snapDirty = false
	}
	return LayerStats{PDUsSent: l.pdusSent, BytesSent: l.bytesSent, ByType: l.snapshot}
}

// ServiceBinding exposes a layer's upper boundary as a core.Provider by
// mapping service access points to entity addresses. This is the seam the
// paper argues for: user parts hold a Provider and never learn which
// protocol implements it.
type ServiceBinding struct {
	layer *Layer

	mu   sync.Mutex
	saps map[core.SAP]sapBinding
}

// sapBinding caches the entity resolved at Bind time (entities are never
// removed from a layer), so Submit dispatches with one map probe.
type sapBinding struct {
	addr   Addr
	entity Entity
}

var _ core.Provider = (*ServiceBinding)(nil)

// NewServiceBinding creates an empty SAP→entity binding for a layer.
func NewServiceBinding(layer *Layer) *ServiceBinding {
	return &ServiceBinding{layer: layer, saps: make(map[core.SAP]sapBinding)}
}

// Bind associates a SAP with the entity at addr.
func (b *ServiceBinding) Bind(sap core.SAP, addr Addr) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.layer.Entity(addr)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEntity, addr)
	}
	if _, dup := b.saps[sap]; dup {
		return fmt.Errorf("%w: SAP %s", ErrDuplicate, sap)
	}
	b.saps[sap] = sapBinding{addr: addr, entity: e}
	return nil
}

// Submit implements core.Provider: the from-user primitive is handed to
// the entity serving the SAP.
func (b *ServiceBinding) Submit(sap core.SAP, primitive string, params codec.Record) error {
	b.mu.Lock()
	bind, ok := b.saps[sap]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotBound, sap)
	}
	if err := bind.entity.FromUser(primitive, params); err != nil {
		return fmt.Errorf("protocol: %s at %s: %w", primitive, sap, err)
	}
	return nil
}

// Attach implements core.Provider.
func (b *ServiceBinding) Attach(sap core.SAP, handler func(primitive string, params codec.Record)) {
	b.mu.Lock()
	bind, ok := b.saps[sap]
	b.mu.Unlock()
	if !ok {
		return
	}
	b.layer.SetUpcall(bind.addr, handler)
}

// ErrNotBound is reported when submitting at an unbound SAP.
var ErrNotBound = errors.New("protocol: SAP not bound")
