// Package protocol implements the protocol-centred (telecom) paradigm of
// the paper's §2: protocol entities that "communicate with each other by
// exchanging messages, often called Protocol Data Units (PDUs), through a
// lower level service", assembled into layers whose upper boundary is a
// service in the sense of internal/core.
//
// The package provides:
//
//   - LowerService: the abstraction of a lower-level data-transfer service;
//   - IndexedLower: the optional dense-id extension every built-in service
//     implements, which makes steady-state delivery map-free;
//   - UnreliableDatagram: the raw simulated network as a lower service;
//   - ReliableDatagram: a go-back-N protocol layer that turns an unreliable
//     datagram service into reliable, in-order, exactly-once delivery — the
//     "(reliable datagram)" lower service the paper's Figure 6 assumes;
//   - Entity, Context and Layer: the framework for writing application
//     protocols (the floor-control protocols of Figure 6 are Entities) and
//     exposing the layer's upper boundary as a core.Provider.
package protocol

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/network"
)

// Addr identifies a protocol entity endpoint. Addresses coincide with
// simulated network node ids.
type Addr = network.NodeID

// Errors shared by lower-service implementations.
var (
	ErrDuplicate     = errors.New("protocol: address already attached")
	ErrUnknownEntity = errors.New("protocol: unknown entity address")
)

// Receiver consumes PDUs delivered by a lower service.
//
// The pdu slice may alias a pooled delivery buffer owned by the service
// below: it is valid only until the receiver returns. Receivers that
// keep PDU bytes beyond the call must copy them (codec's materializing
// decoders copy implicitly; codec.MsgView accessors alias).
type Receiver func(src Addr, pdu []byte)

// IndexedReceiver is the dense-plane Receiver: the source endpoint is
// identified by the small-int id the lower service assigned it (see
// IndexedLower). The same pdu aliasing contract as Receiver applies.
type IndexedReceiver func(src int32, pdu []byte)

// LowerService is the paper's "lower level service": it provides
// interconnection and data transfer between protocol entities. Reliability
// properties depend on the implementation.
type LowerService interface {
	// Name identifies the service for diagnostics and metrics.
	Name() string
	// Attach registers the receiver for PDUs addressed to addr.
	Attach(addr Addr, r Receiver) error
	// Send transfers an encoded PDU from src to dst. Implementations must
	// not retain pdu after returning (copy if queueing), so callers may
	// encode into reusable scratch buffers.
	Send(src, dst Addr, pdu []byte) error
}

// MultiSender is an optional LowerService extension for fan-out: sending
// one PDU to many destinations in a single call. Implementations must
// behave exactly as repeated Send calls in destination order (including
// randomness consumption, so traces stay deterministic), but may batch the
// underlying work. Callers should type-assert and fall back to a Send
// loop when the service does not implement it.
type MultiSender interface {
	SendMulti(src Addr, dsts []Addr, pdu []byte) error
}

// IndexedLower is the optional LowerService extension behind the repo's
// map-free delivery plane: endpoints receive dense small-int ids at
// attach time, receivers are handed source ids instead of names, and the
// id-addressed send paths do zero map lookups in steady state. Ids count
// up from zero, are assigned in attach (or first-sight) order, and stay
// valid for the service's lifetime.
//
// Callers type-assert and fall back to the name-addressed LowerService
// methods when the extension is absent — behaviour is identical either
// way (including randomness consumption), only the per-message lookup
// cost differs.
type IndexedLower interface {
	LowerService
	// AttachIndexed registers r for PDUs addressed to addr and returns
	// addr's dense endpoint id. Re-attaching replaces the receiver and
	// returns the same id.
	AttachIndexed(addr Addr, r IndexedReceiver) (int32, error)
	// EndpointID resolves an attached address to its dense id.
	EndpointID(addr Addr) (int32, bool)
	// EndpointAddr resolves a dense id back to its address ("" for ids
	// the service never issued).
	EndpointAddr(id int32) Addr
	// SendIndexed is Send with both endpoints named by dense id.
	SendIndexed(src, dst int32, pdu []byte) error
	// SendMultiIndexed is the id-addressed fan-out: identical semantics
	// to repeated SendIndexed calls in destination order.
	SendMultiIndexed(src int32, dsts []int32, pdu []byte) error
}

// IncarnationProvider is an optional LowerService extension for churn:
// services whose endpoints can crash and restart report a per-endpoint
// incarnation number (1-based, bumped on every restart). ReliableDatagram
// uses it to stamp PDUs with endpoint incarnations so peers detect
// restarts and tear down stale flow state instead of ghost-acking it.
type IncarnationProvider interface {
	// IncarnationOf returns the current incarnation of the endpoint with
	// the given dense id (0 for unknown ids).
	IncarnationOf(id int32) uint32
}

// UnreliableDatagram adapts the simulated network directly: datagrams may
// be lost, duplicated or reordered according to the link configuration
// ("send and pray", §2). Its dense endpoint ids are exactly the network's
// node slots, so the indexed paths forward with no translation at all.
type UnreliableDatagram struct {
	net *network.Network

	mu       sync.Mutex
	attached map[Addr]int32 // addr → network slot
}

var (
	_ LowerService        = (*UnreliableDatagram)(nil)
	_ MultiSender         = (*UnreliableDatagram)(nil)
	_ IndexedLower        = (*UnreliableDatagram)(nil)
	_ IncarnationProvider = (*UnreliableDatagram)(nil)
)

// NewUnreliableDatagram wraps a simulated network as a lower service.
func NewUnreliableDatagram(net *network.Network) *UnreliableDatagram {
	return &UnreliableDatagram{net: net, attached: make(map[Addr]int32)}
}

// Name implements LowerService.
func (u *UnreliableDatagram) Name() string { return "unreliable-datagram" }

// Attach implements LowerService. The address is registered as a network
// node on first attach.
func (u *UnreliableDatagram) Attach(addr Addr, r Receiver) error {
	if r == nil {
		return fmt.Errorf("protocol: nil receiver for %q", addr)
	}
	_, err := u.AttachIndexed(addr, func(src int32, payload []byte) {
		r(u.net.IDOf(src), payload)
	})
	return err
}

// AttachIndexed implements IndexedLower. The returned id is the network
// slot of addr's node.
func (u *UnreliableDatagram) AttachIndexed(addr Addr, r IndexedReceiver) (int32, error) {
	if r == nil {
		return -1, fmt.Errorf("protocol: nil receiver for %q", addr)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	h := network.SlotHandler(r)
	if slot, ok := u.attached[addr]; ok {
		return slot, u.net.SetSlotHandler(addr, h)
	}
	slot, err := u.net.Register(addr, h)
	if err != nil {
		if errors.Is(err, network.ErrDuplicateNode) {
			// The node exists but was registered outside this service
			// (or by a previous wrapper): take its handler over.
			slot, _ := u.net.SlotOf(addr)
			u.attached[addr] = slot
			return slot, u.net.SetSlotHandler(addr, h)
		}
		return -1, err
	}
	u.attached[addr] = slot
	return slot, nil
}

// EndpointID implements IndexedLower.
func (u *UnreliableDatagram) EndpointID(addr Addr) (int32, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	slot, ok := u.attached[addr]
	return slot, ok
}

// EndpointAddr implements IndexedLower.
func (u *UnreliableDatagram) EndpointAddr(id int32) Addr {
	return u.net.IDOf(id)
}

// IncarnationOf implements IncarnationProvider: this service's dense ids
// are exactly the network's node slots, so the incarnation is the
// network node's.
func (u *UnreliableDatagram) IncarnationOf(id int32) uint32 {
	return u.net.IncarnationOfSlot(id)
}

// Send implements LowerService.
func (u *UnreliableDatagram) Send(src, dst Addr, pdu []byte) error {
	return u.net.Send(src, dst, pdu)
}

// SendIndexed implements IndexedLower on the network's slot plane.
func (u *UnreliableDatagram) SendIndexed(src, dst int32, pdu []byte) error {
	return u.net.SendSlot(src, dst, pdu)
}

// SendMulti implements MultiSender on the raw network's batch path: all
// deliveries of the fan-out are scheduled under one kernel lock.
func (u *UnreliableDatagram) SendMulti(src Addr, dsts []Addr, pdu []byte) error {
	return u.net.SendMulti(src, dsts, pdu)
}

// SendMultiIndexed implements IndexedLower on the network's slot batch
// path.
func (u *UnreliableDatagram) SendMultiIndexed(src int32, dsts []int32, pdu []byte) error {
	return u.net.SendMultiSlot(src, dsts, pdu)
}
