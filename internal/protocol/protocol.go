// Package protocol implements the protocol-centred (telecom) paradigm of
// the paper's §2: protocol entities that "communicate with each other by
// exchanging messages, often called Protocol Data Units (PDUs), through a
// lower level service", assembled into layers whose upper boundary is a
// service in the sense of internal/core.
//
// The package provides:
//
//   - LowerService: the abstraction of a lower-level data-transfer service;
//   - UnreliableDatagram: the raw simulated network as a lower service;
//   - ReliableDatagram: a go-back-N protocol layer that turns an unreliable
//     datagram service into reliable, in-order, exactly-once delivery — the
//     "(reliable datagram)" lower service the paper's Figure 6 assumes;
//   - Entity, Context and Layer: the framework for writing application
//     protocols (the floor-control protocols of Figure 6 are Entities) and
//     exposing the layer's upper boundary as a core.Provider.
package protocol

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/network"
)

// Addr identifies a protocol entity endpoint. Addresses coincide with
// simulated network node ids.
type Addr = network.NodeID

// Errors shared by lower-service implementations.
var (
	ErrDuplicate     = errors.New("protocol: address already attached")
	ErrUnknownEntity = errors.New("protocol: unknown entity address")
)

// Receiver consumes PDUs delivered by a lower service.
//
// The pdu slice may alias a pooled delivery buffer owned by the service
// below: it is valid only until the receiver returns. Receivers that
// keep PDU bytes beyond the call must copy them (codec's materializing
// decoders copy implicitly; codec.MsgView accessors alias).
type Receiver func(src Addr, pdu []byte)

// LowerService is the paper's "lower level service": it provides
// interconnection and data transfer between protocol entities. Reliability
// properties depend on the implementation.
type LowerService interface {
	// Name identifies the service for diagnostics and metrics.
	Name() string
	// Attach registers the receiver for PDUs addressed to addr.
	Attach(addr Addr, r Receiver) error
	// Send transfers an encoded PDU from src to dst. Implementations must
	// not retain pdu after returning (copy if queueing), so callers may
	// encode into reusable scratch buffers.
	Send(src, dst Addr, pdu []byte) error
}

// MultiSender is an optional LowerService extension for fan-out: sending
// one PDU to many destinations in a single call. Implementations must
// behave exactly as repeated Send calls in destination order (including
// randomness consumption, so traces stay deterministic), but may batch the
// underlying work. Callers should type-assert and fall back to a Send
// loop when the service does not implement it.
type MultiSender interface {
	SendMulti(src Addr, dsts []Addr, pdu []byte) error
}

// UnreliableDatagram adapts the simulated network directly: datagrams may
// be lost, duplicated or reordered according to the link configuration
// ("send and pray", §2).
type UnreliableDatagram struct {
	net *network.Network

	mu       sync.Mutex
	attached map[Addr]struct{}
}

var _ LowerService = (*UnreliableDatagram)(nil)

// NewUnreliableDatagram wraps a simulated network as a lower service.
func NewUnreliableDatagram(net *network.Network) *UnreliableDatagram {
	return &UnreliableDatagram{net: net, attached: make(map[Addr]struct{})}
}

// Name implements LowerService.
func (u *UnreliableDatagram) Name() string { return "unreliable-datagram" }

// Attach implements LowerService. The address is registered as a network
// node on first attach.
func (u *UnreliableDatagram) Attach(addr Addr, r Receiver) error {
	if r == nil {
		return fmt.Errorf("protocol: nil receiver for %q", addr)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	h := network.Handler(func(src network.NodeID, payload []byte) { r(src, payload) })
	if _, ok := u.attached[addr]; ok {
		return u.net.SetHandler(addr, h)
	}
	if err := u.net.AddNode(addr, h); err != nil {
		if errors.Is(err, network.ErrDuplicateNode) {
			return u.net.SetHandler(addr, h)
		}
		return err
	}
	u.attached[addr] = struct{}{}
	return nil
}

// Send implements LowerService.
func (u *UnreliableDatagram) Send(src, dst Addr, pdu []byte) error {
	return u.net.Send(src, dst, pdu)
}

var _ MultiSender = (*UnreliableDatagram)(nil)

// SendMulti implements MultiSender on the raw network's batch path: all
// deliveries of the fan-out are scheduled under one kernel lock.
func (u *UnreliableDatagram) SendMulti(src Addr, dsts []Addr, pdu []byte) error {
	return u.net.SendMulti(src, dsts, pdu)
}
