package protocol

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
)

func newNet(seed int64, cfg network.LinkConfig) (*sim.Kernel, *network.Network) {
	k := sim.NewKernel(sim.WithSeed(seed))
	return k, network.New(k, network.WithDefaultLink(cfg))
}

func TestUnreliableDatagramRoundTrip(t *testing.T) {
	k, n := newNet(1, network.LinkConfig{Latency: time.Millisecond})
	u := NewUnreliableDatagram(n)
	var got []string
	if err := u.Attach("b", func(src Addr, pdu []byte) {
		got = append(got, fmt.Sprintf("%s:%s", src, pdu))
	}); err != nil {
		t.Fatal(err)
	}
	if err := u.Attach("a", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Send("a", "b", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "a:ping" {
		t.Fatalf("got %v", got)
	}
}

func TestUnreliableDatagramReattach(t *testing.T) {
	k, n := newNet(1, network.LinkConfig{})
	u := NewUnreliableDatagram(n)
	first, second := 0, 0
	if err := u.Attach("x", func(Addr, []byte) { first++ }); err != nil {
		t.Fatal(err)
	}
	if err := u.Attach("x", func(Addr, []byte) { second++ }); err != nil {
		t.Fatal(err)
	}
	if err := u.Attach("y", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Send("y", "x", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if first != 0 || second != 1 {
		t.Fatalf("first=%d second=%d; reattach should replace", first, second)
	}
}

func TestUnreliableDatagramNilReceiver(t *testing.T) {
	_, n := newNet(1, network.LinkConfig{})
	u := NewUnreliableDatagram(n)
	if err := u.Attach("x", nil); err == nil {
		t.Fatal("nil receiver accepted")
	}
}

// driveReliable sends count payloads a→b over a link with the given config
// and returns the payloads delivered at b, in order.
func driveReliable(t *testing.T, seed int64, cfg network.LinkConfig, rcfg ReliableDatagramConfig, count int) ([]string, *ReliableDatagram) {
	t.Helper()
	k, n := newNet(seed, cfg)
	r := NewReliableDatagram(k, NewUnreliableDatagram(n), rcfg)
	var got []string
	if err := r.Attach("b", func(src Addr, pdu []byte) { got = append(got, string(pdu)) }); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach("a", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		if err := r.Send("a", "b", []byte(fmt.Sprintf("msg-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return got, r
}

func TestReliableDatagramLossless(t *testing.T) {
	got, r := driveReliable(t, 1, network.LinkConfig{Latency: time.Millisecond}, ReliableDatagramConfig{}, 20)
	if len(got) != 20 {
		t.Fatalf("delivered %d, want 20", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprintf("msg-%03d", i) {
			t.Fatalf("out of order at %d: %q", i, s)
		}
	}
	if st := r.Stats(); st.Retransmits != 0 {
		t.Fatalf("lossless run retransmitted: %+v", st)
	}
}

func TestReliableDatagramUnderLoss(t *testing.T) {
	cfg := network.LinkConfig{Latency: time.Millisecond, LossRate: 0.3}
	got, r := driveReliable(t, 7, cfg, ReliableDatagramConfig{}, 50)
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50 under loss", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprintf("msg-%03d", i) {
			t.Fatalf("order violated at %d: %q", i, s)
		}
	}
	if st := r.Stats(); st.Retransmits == 0 {
		t.Fatalf("30%% loss with zero retransmits is implausible: %+v", st)
	}
}

func TestReliableDatagramUnderDuplicationAndJitter(t *testing.T) {
	cfg := network.LinkConfig{
		Latency:       time.Millisecond,
		Jitter:        4 * time.Millisecond,
		DuplicateRate: 0.3,
	}
	got, r := driveReliable(t, 11, cfg, ReliableDatagramConfig{Window: 4}, 40)
	if len(got) != 40 {
		t.Fatalf("delivered %d of 40", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprintf("msg-%03d", i) {
			t.Fatalf("order violated at %d: %q", i, s)
		}
	}
	st := r.Stats()
	if st.Duplicates == 0 && st.OutOfOrder == 0 {
		t.Logf("note: no dup/ooo observed (stats %+v)", st)
	}
}

func TestReliableDatagramBidirectional(t *testing.T) {
	k, n := newNet(3, network.LinkConfig{Latency: time.Millisecond, LossRate: 0.2})
	r := NewReliableDatagram(k, NewUnreliableDatagram(n), ReliableDatagramConfig{})
	var atA, atB int
	if err := r.Attach("a", func(Addr, []byte) { atA++ }); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach("b", func(Addr, []byte) { atB++ }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := r.Send("a", "b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := r.Send("b", "a", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if atA != 25 || atB != 25 {
		t.Fatalf("atA=%d atB=%d, want 25/25", atA, atB)
	}
}

func TestReliableDatagramRetransmitLimit(t *testing.T) {
	k, n := newNet(1, network.LinkConfig{LossRate: 1})
	r := NewReliableDatagram(k, NewUnreliableDatagram(n), ReliableDatagramConfig{MaxRetransmits: 3})
	if err := r.Attach("a", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach("b", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.Send("a", "b", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Flow is now broken: next send fails.
	err := r.Send("a", "b", []byte("after"))
	if err == nil {
		t.Fatal("send on broken flow should fail")
	}
}

func TestReliableDatagramWindowRespected(t *testing.T) {
	// With a huge retransmit timeout and no acks possible (receiver never
	// attached at lower level... instead partition), only Window PDUs leave.
	k, n := newNet(1, network.LinkConfig{Latency: time.Millisecond})
	r := NewReliableDatagram(k, NewUnreliableDatagram(n), ReliableDatagramConfig{
		Window:            4,
		RetransmitTimeout: time.Hour,
	})
	if err := r.Attach("a", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach("b", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	n.PartitionBoth("a", "b")
	for i := 0; i < 10; i++ {
		if err := r.Send("a", "b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.DataSent != 4 {
		t.Fatalf("DataSent = %d, want window-limited 4", st.DataSent)
	}
}

// echoEntity is a minimal application protocol: user primitive "ping"
// sends a PDU; the peer replies; the reply surfaces as "pong" to the user.
type echoEntity struct {
	ctx  *Context
	peer Addr
}

func (e *echoEntity) Init(ctx *Context) error { e.ctx = ctx; return nil }

func (e *echoEntity) FromUser(primitive string, params codec.Record) error {
	if primitive != "ping" {
		return fmt.Errorf("echo: unknown primitive %q", primitive)
	}
	return e.ctx.SendPDU(e.peer, codec.NewMessage("echo.req", params))
}

func (e *echoEntity) FromPeer(src Addr, pdu codec.Message) error {
	switch pdu.Name {
	case "echo.req":
		return e.ctx.SendPDU(src, codec.NewMessage("echo.resp", pdu.Fields))
	case "echo.resp":
		e.ctx.DeliverToUser("pong", pdu.Fields)
		return nil
	default:
		return fmt.Errorf("echo: unknown PDU %q", pdu.Name)
	}
}

func TestLayerEchoProtocol(t *testing.T) {
	k, n := newNet(1, network.LinkConfig{Latency: 2 * time.Millisecond})
	layer := NewLayer("echo", k, NewUnreliableDatagram(n))
	if err := layer.AddEntity("a", &echoEntity{peer: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := layer.AddEntity("b", &echoEntity{peer: "a"}); err != nil {
		t.Fatal(err)
	}
	binding := NewServiceBinding(layer)
	sapA := core.SAP{Role: "user", ID: "a"}
	if err := binding.Bind(sapA, "a"); err != nil {
		t.Fatal(err)
	}
	var pongs []codec.Record
	binding.Attach(sapA, func(prim string, params codec.Record) {
		if prim == "pong" {
			pongs = append(pongs, params)
		}
	})
	if err := binding.Submit(sapA, "ping", codec.Record{"n": int64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pongs) != 1 || pongs[0]["n"] != int64(1) {
		t.Fatalf("pongs = %v", pongs)
	}
	st := layer.Stats()
	if st.PDUsSent != 2 || st.ByType["echo.req"] != 1 || st.ByType["echo.resp"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesSent == 0 {
		t.Fatal("BytesSent not counted")
	}
}

func TestLayerErrors(t *testing.T) {
	k, n := newNet(1, network.LinkConfig{})
	layer := NewLayer("x", k, NewUnreliableDatagram(n))
	if err := layer.AddEntity("a", nil); err == nil {
		t.Fatal("nil entity accepted")
	}
	if err := layer.AddEntity("a", &echoEntity{peer: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := layer.AddEntity("a", &echoEntity{peer: "b"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestServiceBindingErrors(t *testing.T) {
	k, n := newNet(1, network.LinkConfig{})
	layer := NewLayer("x", k, NewUnreliableDatagram(n))
	if err := layer.AddEntity("a", &echoEntity{peer: "b"}); err != nil {
		t.Fatal(err)
	}
	b := NewServiceBinding(layer)
	sap := core.SAP{Role: "user", ID: "1"}
	if err := b.Bind(sap, "ghost"); !errors.Is(err, ErrUnknownEntity) {
		t.Fatalf("err = %v, want ErrUnknownEntity", err)
	}
	if err := b.Submit(sap, "ping", nil); !errors.Is(err, ErrNotBound) {
		t.Fatalf("err = %v, want ErrNotBound", err)
	}
	if err := b.Bind(sap, "a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(sap, "a"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	// Attach at unbound SAP is a silent no-op.
	b.Attach(core.SAP{Role: "user", ID: "ghost"}, func(string, codec.Record) {})
	// Entity error surfaces through Submit.
	if err := b.Submit(sap, "warp", nil); err == nil {
		t.Fatal("entity error not propagated")
	}
}

// Property: reliable datagram delivers every payload exactly once, in
// order, for any loss rate < 1 and any seed.
func TestPropertyReliableDelivery(t *testing.T) {
	prop := func(seed int64, lossTenths uint8, count uint8) bool {
		loss := float64(lossTenths%8) / 10 // 0.0 .. 0.7
		n := int(count%40) + 1
		k := sim.NewKernel(sim.WithSeed(seed))
		net := network.New(k, network.WithDefaultLink(network.LinkConfig{
			Latency:  time.Millisecond,
			LossRate: loss,
		}))
		r := NewReliableDatagram(k, NewUnreliableDatagram(net), ReliableDatagramConfig{})
		var got []byte
		if err := r.Attach("b", func(_ Addr, pdu []byte) { got = append(got, pdu[0]) }); err != nil {
			return false
		}
		if err := r.Attach("a", func(Addr, []byte) {}); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if err := r.Send("a", "b", []byte{byte(i)}); err != nil {
				return false
			}
		}
		if _, err := k.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReliableDatagramThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		net := network.New(k, network.WithDefaultLink(network.LinkConfig{Latency: time.Millisecond}))
		r := NewReliableDatagram(k, NewUnreliableDatagram(net), ReliableDatagramConfig{})
		delivered := 0
		if err := r.Attach("b", func(Addr, []byte) { delivered++ }); err != nil {
			b.Fatal(err)
		}
		if err := r.Attach("a", func(Addr, []byte) {}); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			if err := r.Send("a", "b", []byte("payload")); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if delivered != 100 {
			b.Fatalf("delivered %d", delivered)
		}
	}
}
