package protocol

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/sim"
)

// ReliableDatagramConfig tunes the go-back-N reliability layer.
type ReliableDatagramConfig struct {
	// Window is the go-back-N send window per flow. Default 8.
	Window int
	// RetransmitTimeout is the per-flow retransmission timer. Default 50ms
	// of virtual time.
	RetransmitTimeout time.Duration
	// MaxRetransmits bounds retransmission attempts per PDU before the
	// flow is declared broken (0 = unlimited). Default 0.
	MaxRetransmits int
	// ReorderBuffer is how many out-of-order PDUs the receiver holds per
	// flow while waiting for a gap to fill, instead of discarding them
	// (which, under jitter-induced reordering, would force a retransmit
	// round trip per reordering). Default 4× Window. Negative disables
	// buffering (pure go-back-N receiver).
	ReorderBuffer int
}

func (c *ReliableDatagramConfig) applyDefaults() {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.RetransmitTimeout <= 0 {
		c.RetransmitTimeout = 50 * time.Millisecond
	}
	if c.ReorderBuffer == 0 {
		c.ReorderBuffer = 4 * c.Window
	}
	if c.ReorderBuffer < 0 {
		c.ReorderBuffer = 0
	}
}

// ReliableDatagram provides reliable, in-order, exactly-once datagram
// delivery over an unreliable lower service, using a go-back-N sliding
// window per directed flow. It is itself a protocol in the paper's sense —
// reliability entities cooperating through a lower-level service — and it
// is the "(reliable datagram)" substrate the floor-control protocols of
// Figure 6 assume.
//
// Wire format (codec messages):
//
//	rdp.data(seq uint64, payload bytes)
//	rdp.ack(cum uint64)   — cumulative: all seq < cum received in order
//
// Under churn (endpoint crash/restart, see IncarnationProvider) both PDU
// shapes gain two optional incarnation fields — inc (the sender's own
// incarnation) and rinc (the sender's view of the receiver's) — stamped
// only when a value exceeds 1, so fault-free traffic is byte-identical
// to the pre-churn wire format. The incarnation handshake guarantees no
// ghost acks and no stale retransmit timers across restarts: data for a
// previous incarnation of the receiver is dropped (answered by a bare
// ack carrying the new incarnation, so a retransmitting sender discovers
// the restart), acks from or to a stale incarnation are discarded, and a
// detected peer restart tears the flow down through the CloseFlow
// free-list path so the next Send restarts at sequence zero.
//
// Both PDU shapes are schema-compiled and decoded through codec.MsgView,
// and all per-flow state lives in dense tables keyed by interned small-int
// endpoint ids: the steady-state data path does zero map lookups and the
// in-flight/hold copies ride pooled buffers. ReliableDatagram implements
// IndexedLower itself, so layers above can stay on the dense plane.
type ReliableDatagram struct {
	tb     sim.Timebase
	kern   *sim.Kernel // non-nil when tb is a bare kernel: devirtualized timer arming
	lower  LowerService
	ilower IndexedLower        // non-nil when lower supports the dense plane
	incp   IncarnationProvider // non-nil when lower reports endpoint incarnations
	cfg    ReliableDatagramConfig

	mu         sync.Mutex
	ids        map[Addr]int32 // intern: any address seen (attach, send, receive)
	eps        []endpoint     // own id → endpoint state
	lowerToOwn []int32        // lower endpoint id → own id (-1 unknown)
	incs       []uint32       // own id → last known incarnation (1 until a restart is learned)
	sendRows   [][]*sendFlow  // [srcID][dstID] → flow (nil until first send)
	recvRows   [][]*recvFlow  // [srcID][dstID] → flow (src = data sender)
	freeSend   *sendFlow
	freeRecv   *recvFlow
	stats      ReliableStats
}

// endpoint is the per-address state of the dense plane.
type endpoint struct {
	addr    Addr
	recv    Receiver        // legacy receiver (nil unless attached via Attach)
	recvIdx IndexedReceiver // dense receiver (nil unless attached via AttachIndexed)
	lowID   int32           // lower service id (-1 until resolved)
}

var (
	_ LowerService = (*ReliableDatagram)(nil)
	_ IndexedLower = (*ReliableDatagram)(nil)
)

// Compiled PDU schemas (field order is canonical/sorted). The *Inc
// variants carry the incarnation pair and are used only when either
// value exceeds 1, so fault-free runs emit exactly the legacy bytes.
// Receivers look fields up by name on the parsed view, so both shapes of
// each message name decode through one path (absent fields default to
// incarnation 1).
var (
	schemaRdpData    = codec.CompileSchema("rdp.data", "seq", "payload")
	schemaRdpAck     = codec.CompileSchema("rdp.ack", "cum")
	schemaRdpDataInc = codec.CompileSchema("rdp.data", "seq", "payload", "inc", "rinc")
	schemaRdpAckInc  = codec.CompileSchema("rdp.ack", "cum", "inc", "rinc")
)

// ReliableStats counts layer-internal work: experiments use it to report
// the overhead reliability adds under loss.
type ReliableStats struct {
	DataSent      uint64
	DataDelivered uint64
	AcksSent      uint64
	Retransmits   uint64
	OutOfOrder    uint64 // received out of order (held or discarded)
	Duplicates    uint64
	StaleDrops    uint64 // PDUs from/to a dead incarnation, discarded
	FlowResets    uint64 // flows torn down after a detected peer restart
}

type sendFlow struct {
	next     uint64 // next sequence number to assign
	base     uint64 // oldest unacknowledged
	inFlight []pending
	timer    sim.TimerRef // retransmit timer; zero ref = disarmed
	timerFn  func()       // built once per flow lifetime; captures the flow ids
	retries  int
	peerInc  uint32 // receiver incarnation this flow talks to (stamped as rinc)
	broken   error  // sticky first failure; checked on every Send
	free     *sendFlow
}

// pending is one queued-or-in-flight PDU. The payload rides a pooled
// buffer released when the cumulative ack passes its sequence number.
type pending struct {
	seq uint64
	buf *codec.Buffer
}

// recvFlow tracks one directed receive flow. Out-of-order PDUs wait in a
// ring keyed by seq modulo the ring size: conforming senders only emit
// within Window of the receiver's expectation, so the ring covers every
// reachable distance without hashing. PDUs beyond the ring's horizon
// (possible only for non-conforming senders) spill into a lazily
// allocated overflow map, preserving the exact pre-ring semantics.
type recvFlow struct {
	expected uint64
	ring     []heldPDU
	held     int // ring + overflow occupancy, capped at ReorderBuffer
	overflow map[uint64]*codec.Buffer
	peerInc  uint32 // sender incarnation this flow tracks (0 until first data)
	free     *recvFlow
}

type heldPDU struct {
	seq uint64
	buf *codec.Buffer // nil = empty slot
}

// NewReliableDatagram layers reliability over lower, scheduling timers on
// tb.
func NewReliableDatagram(tb sim.Timebase, lower LowerService, cfg ReliableDatagramConfig) *ReliableDatagram {
	cfg.applyDefaults()
	il, _ := lower.(IndexedLower)
	ip, _ := lower.(IncarnationProvider)
	kern, _ := tb.(*sim.Kernel)
	return &ReliableDatagram{
		tb:     tb,
		kern:   kern,
		lower:  lower,
		ilower: il,
		incp:   ip,
		cfg:    cfg,
		ids:    make(map[Addr]int32),
	}
}

// scheduleFuncRef arms a retransmit timer through the concrete kernel
// when the timebase is one — the per-data-message path (see
// network.scheduleBatch for the same trade).
//
//repolint:hotpath
func (r *ReliableDatagram) scheduleFuncRef(delay time.Duration, fn func()) sim.TimerRef {
	if r.kern != nil {
		return r.kern.ScheduleFuncRef(delay, fn)
	}
	return r.tb.ScheduleFuncRef(delay, fn)
}

// Name implements LowerService.
func (r *ReliableDatagram) Name() string { return "reliable-datagram/" + r.lower.Name() }

// Stats returns a snapshot of the layer counters.
func (r *ReliableDatagram) Stats() ReliableStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// internLocked returns addr's dense id, assigning one on first sight.
func (r *ReliableDatagram) internLocked(addr Addr) int32 {
	if id, ok := r.ids[addr]; ok {
		return id
	}
	id := int32(len(r.eps))
	r.ids[addr] = id
	r.eps = append(r.eps, endpoint{addr: addr, lowID: -1})
	r.incs = append(r.incs, 1)
	r.sendRows = append(r.sendRows, nil)
	r.recvRows = append(r.recvRows, nil)
	return id
}

// ownIDForLower translates a lower-service endpoint id to this layer's
// id, interning the address on first sight and caching the translation so
// the steady state never hashes.
func (r *ReliableDatagram) ownIDForLower(lowSrc int32) int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for int(lowSrc) >= len(r.lowerToOwn) {
		r.lowerToOwn = append(r.lowerToOwn, -1)
	}
	if own := r.lowerToOwn[lowSrc]; own >= 0 {
		return own
	}
	addr := r.ilower.EndpointAddr(lowSrc)
	own := r.internLocked(addr)
	r.lowerToOwn[lowSrc] = own
	r.eps[own].lowID = lowSrc
	return own
}

// lowerIDLocked resolves an endpoint's lower-service id, caching it once
// found. ok=false means the peer is unknown to the lower service (not
// attached yet); callers fall back to the name-addressed send.
func (r *ReliableDatagram) lowerIDLocked(id int32) (int32, bool) {
	ep := &r.eps[id]
	if ep.lowID >= 0 {
		return ep.lowID, true
	}
	if r.ilower == nil {
		return -1, false
	}
	low, ok := r.ilower.EndpointID(ep.addr)
	if !ok {
		return -1, false
	}
	ep.lowID = low
	for int(low) >= len(r.lowerToOwn) {
		r.lowerToOwn = append(r.lowerToOwn, -1)
	}
	r.lowerToOwn[low] = id
	return low, true
}

// Attach implements LowerService.
func (r *ReliableDatagram) Attach(addr Addr, recv Receiver) error {
	if recv == nil {
		return fmt.Errorf("protocol: nil receiver for %q", addr)
	}
	r.mu.Lock()
	id := r.internLocked(addr)
	r.eps[id].recv = recv
	r.eps[id].recvIdx = nil
	r.mu.Unlock()
	return r.attachLower(addr, id)
}

// AttachIndexed implements IndexedLower: the returned id is this layer's
// dense endpoint id (receivers are handed peer ids from the same space).
func (r *ReliableDatagram) AttachIndexed(addr Addr, recv IndexedReceiver) (int32, error) {
	if recv == nil {
		return -1, fmt.Errorf("protocol: nil receiver for %q", addr)
	}
	r.mu.Lock()
	id := r.internLocked(addr)
	r.eps[id].recvIdx = recv
	r.eps[id].recv = nil
	r.mu.Unlock()
	return id, r.attachLower(addr, id)
}

// attachLower hooks this layer's receive path for addr into the lower
// service, on the dense plane when available.
func (r *ReliableDatagram) attachLower(addr Addr, id int32) error {
	if r.ilower != nil {
		lowID, err := r.ilower.AttachIndexed(addr, func(lowSrc int32, pdu []byte) {
			r.onLowerIndexed(lowSrc, id, pdu)
		})
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.eps[id].lowID = lowID
		for int(lowID) >= len(r.lowerToOwn) {
			r.lowerToOwn = append(r.lowerToOwn, -1)
		}
		r.lowerToOwn[lowID] = id
		r.mu.Unlock()
		return nil
	}
	return r.lower.Attach(addr, func(src Addr, pdu []byte) { r.onLowerAddr(src, id, pdu) })
}

// EndpointID implements IndexedLower: only attached addresses resolve.
func (r *ReliableDatagram) EndpointID(addr Addr) (int32, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.ids[addr]
	if !ok {
		return -1, false
	}
	ep := &r.eps[id]
	if ep.recv == nil && ep.recvIdx == nil {
		return -1, false
	}
	return id, true
}

// EndpointAddr implements IndexedLower.
func (r *ReliableDatagram) EndpointAddr(id int32) Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || int(id) >= len(r.eps) {
		return ""
	}
	return r.eps[id].addr
}

// sendFlowLocked returns the send flow src→dst, creating (or recycling)
// it on first use.
func (r *ReliableDatagram) sendFlowLocked(src, dst int32) *sendFlow {
	row := r.sendRows[src]
	if int(dst) >= len(row) {
		// Grow geometrically to just past dst, not to len(r.eps): on
		// star topologies (every client talking to one coordinator) a
		// dense row per client would cost O(E²) pointers at XL scale.
		need := int(dst) + 1
		if d := 2 * len(row); d > need {
			need = d
		}
		if need > len(r.eps) {
			need = len(r.eps)
		}
		grown := make([]*sendFlow, need)
		copy(grown, row)
		row = grown
		r.sendRows[src] = row
	}
	f := row[dst]
	if f == nil {
		if r.freeSend != nil {
			f = r.freeSend
			r.freeSend = f.free
			*f = sendFlow{inFlight: f.inFlight[:0]}
		} else {
			f = &sendFlow{}
		}
		f.timerFn = func() { r.onTimeout(src, dst) }
		// Baseline: the last incarnation of dst this layer has learned
		// (from NoteRestart or from the wire). If it is stale the first
		// data PDU is refused by the receiver, whose bare ack carries the
		// current incarnation — the flow tears down, the cache refreshes,
		// and the next Send starts correctly.
		f.peerInc = r.incs[dst]
		row[dst] = f
	}
	return f
}

// recvFlowLocked returns the receive flow src→dst (src is the data
// sender), creating (or recycling) it on first use.
func (r *ReliableDatagram) recvFlowLocked(src, dst int32) *recvFlow {
	row := r.recvRows[src]
	if int(dst) >= len(row) {
		// Same geometric growth as sendFlowLocked: keep per-source rows
		// proportional to the peers actually spoken to.
		need := int(dst) + 1
		if d := 2 * len(row); d > need {
			need = d
		}
		if need > len(r.eps) {
			need = len(r.eps)
		}
		grown := make([]*recvFlow, need)
		copy(grown, row)
		row = grown
		r.recvRows[src] = row
	}
	f := row[dst]
	if f == nil {
		if r.freeRecv != nil {
			f = r.freeRecv
			r.freeRecv = f.free
			ring := f.ring
			*f = recvFlow{ring: ring}
		} else {
			f = &recvFlow{}
		}
		if r.cfg.ReorderBuffer > 0 && len(f.ring) != r.cfg.Window {
			f.ring = make([]heldPDU, r.cfg.Window)
		}
		row[dst] = f
	}
	return f
}

// Send implements LowerService: payload is queued on the (src,dst) flow
// and delivered reliably and in order.
func (r *ReliableDatagram) Send(src, dst Addr, payload []byte) error {
	r.mu.Lock()
	srcID := r.internLocked(src)
	dstID := r.internLocked(dst)
	r.mu.Unlock()
	return r.SendIndexed(srcID, dstID, payload)
}

// SendIndexed implements IndexedLower: the dense-plane Send.
func (r *ReliableDatagram) SendIndexed(src, dst int32, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if src < 0 || int(src) >= len(r.eps) || dst < 0 || int(dst) >= len(r.eps) {
		return fmt.Errorf("protocol: reliable send: id out of range (%d→%d)", src, dst)
	}
	f := r.sendFlowLocked(src, dst)
	if f.broken != nil {
		return f.broken
	}
	seq := f.next
	f.next++
	buf := codec.GetBuffer()
	buf.B = append(buf.B[:0], payload...)
	f.inFlight = append(f.inFlight, pending{seq: seq, buf: buf})
	// Transmit immediately if within window.
	if seq < f.base+uint64(r.cfg.Window) {
		r.transmitLocked(src, dst, f, seq, buf.B)
	}
	r.armTimerLocked(f)
	return nil
}

// SendMultiIndexed implements IndexedLower as a SendIndexed loop: each
// destination is an independent reliable flow, so there is no batch to
// share beyond what the unreliable layer below already batches.
func (r *ReliableDatagram) SendMultiIndexed(src int32, dsts []int32, payload []byte) error {
	var firstErr error
	for _, dst := range dsts {
		if err := r.SendIndexed(src, dst, payload); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// transmitLocked sends one data PDU, encoded through the compiled schema
// into a pooled buffer (the lower service copies synchronously, so the
// buffer is recycled on return). Caller holds r.mu. Incarnation fields
// ride only when a value exceeds 1, so fault-free traffic keeps the
// legacy wire shape byte for byte.
func (r *ReliableDatagram) transmitLocked(src, dst int32, f *sendFlow, seq uint64, payload []byte) {
	buf := codec.GetBuffer()
	var data []byte
	var err error
	if inc := r.incs[src]; inc > 1 || f.peerInc > 1 {
		e := schemaRdpDataInc.Encoder(buf.B[:0])
		e.Uint("inc", uint64(inc))
		e.Bytes("payload", payload)
		e.Uint("rinc", uint64(f.peerInc))
		e.Uint("seq", seq)
		data, err = e.Finish()
	} else {
		e := schemaRdpData.Encoder(buf.B[:0])
		e.Bytes("payload", payload)
		e.Uint("seq", seq)
		data, err = e.Finish()
	}
	if err != nil {
		// Payload is opaque bytes; encoding cannot fail for valid inputs.
		panic(fmt.Sprintf("protocol: encode data PDU: %v", err))
	}
	r.stats.DataSent++
	if err := r.lowerSendLocked(src, dst, data); err != nil {
		f.broken = fmt.Errorf("protocol: flow %s→%s: %w", r.eps[src].addr, r.eps[dst].addr, err)
	}
	buf.B = data
	buf.Release()
}

// lowerSendLocked transmits raw bytes src→dst through the lower service,
// on the dense plane when both endpoint ids resolve. Caller holds r.mu.
func (r *ReliableDatagram) lowerSendLocked(src, dst int32, data []byte) error {
	if r.ilower != nil {
		ls, ok1 := r.lowerIDLocked(src)
		if ok1 {
			if ld, ok2 := r.lowerIDLocked(dst); ok2 {
				return r.ilower.SendIndexed(ls, ld, data)
			}
		}
	}
	return r.lower.Send(r.eps[src].addr, r.eps[dst].addr, data)
}

// armTimerLocked (re)arms the retransmission timer for a flow with unacked
// data. The timer rides the kernel's free-list ScheduleFuncRef path: arms
// and cancels recycle the same Timer structs, so steady-state window
// traffic schedules retransmission cover without allocating. Caller holds
// r.mu.
func (r *ReliableDatagram) armTimerLocked(f *sendFlow) {
	if len(f.inFlight) == 0 {
		f.timer.Cancel()
		f.timer = sim.TimerRef{}
		return
	}
	if f.timer.Pending() {
		return
	}
	f.timer = r.scheduleFuncRef(r.cfg.RetransmitTimeout, f.timerFn)
}

// onTimeout retransmits the whole window (go-back-N).
func (r *ReliableDatagram) onTimeout(src, dst int32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.sendRows[src][dst]
	if f == nil || len(f.inFlight) == 0 {
		return
	}
	f.retries++
	if r.cfg.MaxRetransmits > 0 && f.retries > r.cfg.MaxRetransmits {
		f.broken = fmt.Errorf("protocol: flow %s→%s: retransmit limit %d exceeded",
			r.eps[src].addr, r.eps[dst].addr, r.cfg.MaxRetransmits)
		f.timer = sim.TimerRef{}
		return
	}
	limit := f.base + uint64(r.cfg.Window)
	for _, p := range f.inFlight {
		if p.seq >= limit {
			break
		}
		r.stats.Retransmits++
		r.transmitLocked(src, dst, f, p.seq, p.buf.B)
	}
	f.timer = sim.TimerRef{}
	r.armTimerLocked(f)
}

// onLowerIndexed is the dense-plane receive path: both endpoints arrive
// as ids, translated through cached tables (no hashing in steady state).
func (r *ReliableDatagram) onLowerIndexed(lowSrc int32, dst int32, pdu []byte) {
	r.dispatch(r.ownIDForLower(lowSrc), dst, pdu)
}

// onLowerAddr is the name-addressed receive fallback for non-indexed
// lower services.
func (r *ReliableDatagram) onLowerAddr(src Addr, dst int32, pdu []byte) {
	r.mu.Lock()
	srcID := r.internLocked(src)
	r.mu.Unlock()
	r.dispatch(srcID, dst, pdu)
}

// dispatch decodes one arriving PDU and hands it to the data or ack
// handler. The view decode walks the PDU in place — pdu aliases the
// network's pooled delivery buffer, so anything retained past this call
// must be copied.
func (r *ReliableDatagram) dispatch(src, dst int32, pdu []byte) {
	v, err := codec.ParseMessage(pdu)
	if err != nil {
		return // corrupted frame: drop silently, retransmission recovers
	}
	switch {
	case v.NameIs("rdp.data"):
		r.onData(src, dst, &v)
	case v.NameIs("rdp.ack"):
		r.onAck(src, dst, &v)
	}
}

// pduIncs extracts the incarnation pair of a parsed PDU; absent fields
// (the legacy wire shape) decode as incarnation 1.
func pduIncs(v *codec.MsgView) (inc, rinc uint32) {
	inc, rinc = 1, 1
	if x, ok := v.Uint("inc"); ok {
		inc = uint32(x)
	}
	if x, ok := v.Uint("rinc"); ok {
		rinc = uint32(x)
	}
	return inc, rinc
}

func (r *ReliableDatagram) onData(src, dst int32, v *codec.MsgView) {
	seq, ok := v.Uint("seq")
	if !ok {
		return
	}
	payload, _ := v.Bytes("payload")
	inc, rinc := pduIncs(v)

	r.mu.Lock()
	myInc := r.incs[dst]
	if rinc > myInc {
		// The sender has seen a later incarnation of this endpoint than
		// the local cache knows: adopt it (incarnations are monotone)
		// rather than misclassify live traffic as stale.
		r.incs[dst] = rinc
		myInc = rinc
	}
	if rinc < myInc {
		// Addressed to a previous incarnation of this endpoint: the
		// sender's flow predates our restart. Drop the payload, but
		// answer with a bare ack carrying the current incarnation — this
		// is how a retransmitting sender discovers the restart instead
		// of retransmitting into the void forever.
		r.stats.StaleDrops++
		r.sendAckLocked(dst, src, 0, myInc, inc)
		r.mu.Unlock()
		return
	}
	f := r.recvFlowLocked(src, dst) // direction of data flow
	switch {
	case f.peerInc == 0:
		// First data on a fresh flow: baseline the sender incarnation
		// from the wire itself (a cache baseline could ghost-accept a
		// dead incarnation's stragglers).
		f.peerInc = inc
		if inc > r.incs[src] {
			r.incs[src] = inc
		}
	case inc < f.peerInc:
		// Ghost from a dead incarnation of the sender: no delivery, no
		// ack (the old incarnation is gone; nothing listens for one).
		r.stats.StaleDrops++
		r.mu.Unlock()
		return
	case inc > f.peerInc:
		// The sender restarted: its numbering reset to zero and its view
		// of this flow is gone. Reset the receive flow in place — held
		// out-of-order PDUs carry the old numbering and must never reach
		// the application — and tear down the reverse send flow, whose
		// in-flight state targets the dead incarnation.
		r.stats.FlowResets++
		f.resetLocked()
		f.peerInc = inc
		if inc > r.incs[src] {
			r.incs[src] = inc
		}
		r.closeSendFlowLocked(dst, src)
	}
	// deliver marks the common case (in-order arrival): the aliased
	// payload is handed to the receiver synchronously, with no copy and
	// no ready-slice allocation. Out-of-order payloads are copied into
	// pooled buffers before being held — they outlive this call and the
	// delivery buffer.
	deliver := false
	var drained []*codec.Buffer
	switch {
	case seq == f.expected:
		f.expected++
		deliver = true
		// Drain any buffered successors the gap was hiding.
		drained = f.drainLocked(drained)
	case seq < f.expected:
		r.stats.Duplicates++
	default:
		r.stats.OutOfOrder++
		f.holdLocked(seq, payload, r.cfg.ReorderBuffer)
	}
	if deliver {
		r.stats.DataDelivered += 1 + uint64(len(drained))
	}
	ep := &r.eps[dst]
	recv, recvIdx, srcAddr := ep.recv, ep.recvIdx, r.eps[src].addr
	// Cumulative ack of everything in order so far (sent for every data
	// PDU, so a lost ack is repaired by the next one or a retransmit).
	// It travels dst→src (reverse path).
	r.sendAckLocked(dst, src, f.expected, myInc, f.peerInc)
	r.mu.Unlock()

	if recv != nil || recvIdx != nil {
		if deliver {
			if recvIdx != nil {
				recvIdx(src, payload)
			} else {
				recv(srcAddr, payload)
			}
		}
		for _, b := range drained {
			if recvIdx != nil {
				recvIdx(src, b.B)
			} else {
				recv(srcAddr, b.B)
			}
		}
	}
	for _, b := range drained {
		b.Release()
	}
}

// holdLocked buffers one out-of-order PDU, respecting the ReorderBuffer
// occupancy cap and duplicate-hold semantics of the original map-based
// buffer.
func (f *recvFlow) holdLocked(seq uint64, payload []byte, limit int) {
	if limit <= 0 {
		return
	}
	ringCap := uint64(len(f.ring))
	if dist := seq - f.expected; ringCap > 0 && dist <= ringCap {
		slot := &f.ring[seq%ringCap]
		if slot.buf != nil {
			// Occupied: same seq = duplicate hold (drop); a different
			// seq cannot collide within the window horizon, but a
			// non-conforming sender could force it — spill over.
			if slot.seq == seq {
				return
			}
		} else {
			if f.held >= limit {
				return
			}
			if len(f.overflow) > 0 {
				// The seq may have been overflow-held while it was
				// beyond the ring horizon and re-sent now that the
				// window moved: still a duplicate hold.
				if _, dup := f.overflow[seq]; dup {
					return
				}
			}
			b := codec.GetBuffer()
			b.B = append(b.B[:0], payload...)
			*slot = heldPDU{seq: seq, buf: b}
			f.held++
			return
		}
	}
	// Beyond the ring horizon (or a forced collision): overflow map,
	// lazily allocated — never touched by conforming traffic.
	if _, dup := f.overflow[seq]; dup || f.held >= limit {
		return
	}
	if f.overflow == nil {
		f.overflow = make(map[uint64]*codec.Buffer)
	}
	b := codec.GetBuffer()
	b.B = append(b.B[:0], payload...)
	f.overflow[seq] = b
	f.held++
}

// drainLocked pops consecutively held PDUs starting at f.expected,
// advancing it past each.
func (f *recvFlow) drainLocked(drained []*codec.Buffer) []*codec.Buffer {
	ringCap := uint64(len(f.ring))
	for f.held > 0 {
		if ringCap > 0 {
			slot := &f.ring[f.expected%ringCap]
			if slot.buf != nil && slot.seq == f.expected {
				drained = append(drained, slot.buf)
				*slot = heldPDU{}
				f.held--
				f.expected++
				continue
			}
		}
		if len(f.overflow) > 0 {
			if b, ok := f.overflow[f.expected]; ok {
				delete(f.overflow, f.expected)
				drained = append(drained, b)
				f.held--
				f.expected++
				continue
			}
		}
		break
	}
	return drained
}

// sendAckLocked encodes and transmits one cumulative ack from→to (the
// reverse path of a data flow). inc is the acker's own incarnation, rinc
// the data sender's; both ride the wire only when either exceeds 1, so
// fault-free acks keep the legacy shape. Caller holds r.mu.
func (r *ReliableDatagram) sendAckLocked(from, to int32, cum uint64, inc, rinc uint32) {
	ackBuf := codec.GetBuffer()
	var data []byte
	var err error
	if inc > 1 || rinc > 1 {
		e := schemaRdpAckInc.Encoder(ackBuf.B[:0])
		e.Uint("cum", cum)
		e.Uint("inc", uint64(inc))
		e.Uint("rinc", uint64(rinc))
		data, err = e.Finish()
	} else {
		e := schemaRdpAck.Encoder(ackBuf.B[:0])
		e.Uint("cum", cum)
		data, err = e.Finish()
	}
	if err != nil {
		panic(fmt.Sprintf("protocol: encode ack PDU: %v", err))
	}
	r.stats.AcksSent++
	// Errors indicate an unregistered peer, which retransmission cannot
	// fix either; ignore.
	_ = r.lowerSendLocked(from, to, data) //nolint:errcheck
	ackBuf.B = data
	ackBuf.Release()
}

func (r *ReliableDatagram) onAck(src, dst int32, v *codec.MsgView) {
	cum, ok := v.Uint("cum")
	if !ok {
		return
	}
	inc, rinc := pduIncs(v)
	r.mu.Lock()
	defer r.mu.Unlock()
	if rinc < r.incs[dst] {
		// Ghost ack addressed to a previous incarnation of this sender:
		// our numbering restarted at zero since, so the cum value would
		// corrupt the fresh flow. Drop it — no ghost acks.
		r.stats.StaleDrops++
		return
	}
	// The ack acknowledges data flowing dst→src: send flows are keyed by
	// (sender, receiver) = (dst of ack delivery, src of ack).
	row := r.sendRows[dst]
	if int(src) >= len(row) {
		return
	}
	f := row[src]
	if f == nil {
		return
	}
	if inc != f.peerInc {
		if inc < f.peerInc {
			// Ghost ack from a dead incarnation of the receiver.
			r.stats.StaleDrops++
			return
		}
		// The receiver restarted: its receive state for this flow is
		// gone, so every unacknowledged PDU is lost and the numbering
		// must restart. Tear the flow down through the free-list path —
		// cancelling the retransmit timer — and remember the new
		// incarnation so the next Send opens a correctly-stamped flow at
		// sequence zero.
		r.stats.FlowResets++
		if inc > r.incs[src] {
			r.incs[src] = inc
		}
		r.closeSendFlowLocked(dst, src)
		return
	}
	if cum <= f.base {
		return // stale ack
	}
	// Slide the window, releasing acknowledged payload buffers, and
	// transmit newly admitted PDUs. The in-flight slice is compacted in
	// place so its storage is reused for the flow's lifetime.
	oldLimit := f.base + uint64(r.cfg.Window)
	i := 0
	for i < len(f.inFlight) && f.inFlight[i].seq < cum {
		f.inFlight[i].buf.Release()
		f.inFlight[i].buf = nil
		i++
	}
	if i > 0 {
		rem := copy(f.inFlight, f.inFlight[i:])
		tail := f.inFlight[rem:]
		for j := range tail {
			tail[j] = pending{}
		}
		f.inFlight = f.inFlight[:rem]
	}
	f.base = cum
	f.retries = 0
	newLimit := f.base + uint64(r.cfg.Window)
	for _, p := range f.inFlight {
		if p.seq >= oldLimit && p.seq < newLimit {
			r.transmitLocked(dst, src, f, p.seq, p.buf.B)
		}
	}
	f.timer.Cancel()
	f.timer = sim.TimerRef{}
	r.armTimerLocked(f)
}

// CloseFlow tears down the directed flow pair between local and peer:
// the send flow local→peer and the receive flow peer→local. Unacked
// in-flight payloads and held out-of-order PDUs are discarded (their
// pooled buffers released), the retransmission timer is cancelled, and
// the flow structs return to a free list for reuse — the reclamation
// path for long-running deployments that churn through peers. A later
// Send to the same peer starts a fresh flow at sequence zero (and clears
// any broken-flow state), exactly as if the pair had never communicated.
func (r *ReliableDatagram) CloseFlow(local, peer Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	localID, ok1 := r.ids[local]
	peerID, ok2 := r.ids[peer]
	if !ok1 || !ok2 {
		return
	}
	r.closeSendFlowLocked(localID, peerID)
	r.closeRecvFlowLocked(peerID, localID)
}

// closeSendFlowLocked tears down the send flow local→peer: unacked
// in-flight buffers are released, the retransmit timer is cancelled, and
// the flow struct returns to the free list. Caller holds r.mu.
func (r *ReliableDatagram) closeSendFlowLocked(local, peer int32) {
	row := r.sendRows[local]
	if int(peer) >= len(row) {
		return
	}
	f := row[peer]
	if f == nil {
		return
	}
	f.timer.Cancel()
	f.timer = sim.TimerRef{}
	for i := range f.inFlight {
		f.inFlight[i].buf.Release()
		f.inFlight[i] = pending{}
	}
	f.inFlight = f.inFlight[:0]
	f.timerFn = nil
	f.broken = nil
	f.free = r.freeSend
	r.freeSend = f
	row[peer] = nil
}

// closeRecvFlowLocked tears down the receive flow sender→local,
// releasing held out-of-order buffers and returning the struct to the
// free list. Caller holds r.mu.
func (r *ReliableDatagram) closeRecvFlowLocked(sender, local int32) {
	row := r.recvRows[sender]
	if int(local) >= len(row) {
		return
	}
	f := row[local]
	if f == nil {
		return
	}
	f.resetLocked()
	f.free = r.freeRecv
	r.freeRecv = f
	row[local] = nil
}

// resetLocked drops every held out-of-order PDU and rewinds the flow to
// sequence zero — the in-place teardown used when the peer restarts
// mid-flow (old-numbering PDUs must never surface in the new flow).
func (f *recvFlow) resetLocked() {
	for i := range f.ring {
		if f.ring[i].buf != nil {
			f.ring[i].buf.Release()
			f.ring[i] = heldPDU{}
		}
	}
	for seq, b := range f.overflow {
		b.Release()
		delete(f.overflow, seq)
	}
	f.held = 0
	f.expected = 0
}

// NoteRestart informs the layer that the endpoint at addr crashed and
// restarted, losing all of its flow state: every send flow out of addr
// and every receive flow into addr is torn down through the CloseFlow
// free-list path (in-flight buffers released, retransmit timers
// cancelled), and addr's incarnation cache refreshes from the lower
// service's IncarnationProvider (bumping locally when the lower service
// does not report incarnations). Peers are not touched here: they
// discover the restart through the wire incarnation handshake — a stale
// data PDU is answered by a bare ack carrying the new incarnation — and
// tear their halves down lazily.
func (r *ReliableDatagram) NoteRestart(addr Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.ids[addr]
	if !ok {
		return
	}
	refreshed := false
	if r.incp != nil {
		if low, lok := r.lowerIDLocked(id); lok {
			if inc := r.incp.IncarnationOf(low); inc > 0 {
				r.incs[id] = inc
				refreshed = true
			}
		}
	}
	if !refreshed {
		r.incs[id]++
	}
	for peer := range r.sendRows[id] {
		r.closeSendFlowLocked(id, int32(peer))
	}
	for sender := range r.recvRows {
		r.closeRecvFlowLocked(int32(sender), id)
	}
}
